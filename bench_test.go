package nymix

// One testing.B benchmark per evaluation result (Figures 3-7, Table 1,
// the section 5.1 validation, and the ablations). Each iteration
// regenerates the full experiment from a fresh seed; custom metrics
// report the experiment's headline numbers so `go test -bench` output
// doubles as a results table.

import (
	"testing"

	"nymix/internal/experiments"
)

func BenchmarkFigure3(b *testing.B) {
	var slope, saving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		slope = (rows[7].UsedAfterMB - rows[0].UsedAfterMB) / 7
		saving = rows[7].SavedMB
	}
	b.ReportMetric(slope, "MB/nymbox")
	b.ReportMetric(saving, "MB-ksm-saved@8")
}

func BenchmarkFigure4(b *testing.B) {
	var overhead, smtGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		overhead = 100 * (1 - rows[1].Accumulated/rows[0].Accumulated)
		smtGain = 100 * (rows[8].Accumulated/rows[8].Expected - 1)
	}
	b.ReportMetric(overhead, "%virt-overhead")
	b.ReportMetric(smtGain, "%smt-gain@8")
}

func BenchmarkFigure5(b *testing.B) {
	var single, eight, torOverhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		single = rows[0].ActualSec
		eight = rows[7].ActualSec
		torOverhead = 100 * experiments.TorFixedOverhead(rows)
	}
	b.ReportMetric(single, "s-download@1")
	b.ReportMetric(eight, "s-download@8")
	b.ReportMetric(torOverhead, "%tor-overhead")
}

func BenchmarkFigure6(b *testing.B) {
	var fbFinal, anonShare float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure6(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Site == "facebook.com" {
				fbFinal = s.SizesMB[len(s.SizesMB)-1]
				anonShare = 100 * s.AnonShare
			}
		}
	}
	b.ReportMetric(fbFinal, "MB-facebook@10")
	b.ReportMetric(anonShare, "%anonvm-share")
}

func BenchmarkFigure7(b *testing.B) {
	var fresh, preTor float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Config {
			case "fresh":
				fresh = r.Total().Seconds()
			case "pre-configured":
				preTor = r.StartTor.Seconds()
			}
		}
	}
	b.ReportMetric(fresh, "s-fresh-total")
	b.ReportMetric(preTor, "s-warm-tor-start")
}

func BenchmarkTable1(b *testing.B) {
	var vistaRepair, win8Size float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Version {
			case "Windows Vista":
				vistaRepair = r.RepairS
			case "Windows 8":
				win8Size = r.SizeMB
			}
		}
	}
	b.ReportMetric(vistaRepair, "s-vista-repair")
	b.ReportMetric(win8Size, "MB-win8-cow")
}

func BenchmarkValidation(b *testing.B) {
	passed := 0.0
	for i := 0; i < b.N; i++ {
		report, err := experiments.Validation(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if report.Passed() {
			passed = 1
		} else {
			passed = 0
		}
	}
	b.ReportMetric(passed, "passed")
}

func BenchmarkAblationGuardExposure(b *testing.B) {
	var rot30 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationGuardExposure(uint64(i+1), 0.05)
		for _, r := range rows {
			if r.Sessions == 30 {
				rot30 = r.Rotating
			}
		}
	}
	b.ReportMetric(rot30, "p-exposed@30-sessions")
}

func BenchmarkAblationStaining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStaining(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLinkage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLinkage(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVaultIncremental(b *testing.B) {
	var steady, cycle2Up, cycle2Full float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.VaultIncremental(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		steady = 100 * experiments.VaultSteadyStateFrac(rows)
		cycle2Up = rows[1].UploadedMB
		cycle2Full = rows[1].MonolithicMB
	}
	b.ReportMetric(cycle2Up, "MB-upload@cycle2")
	b.ReportMetric(cycle2Full, "MB-monolithic@cycle2")
	b.ReportMetric(steady, "%wire-vs-monolithic")
}

func BenchmarkAblationBuddies(b *testing.B) {
	var gatedFinal float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationBuddies(uint64(i+1), 4, 12)
		gatedFinal = float64(rows[len(rows)-1].GatedCandidates)
	}
	b.ReportMetric(gatedFinal, "gated-set@12-rounds")
}

func BenchmarkFleetShards(b *testing.B) {
	var ramp, migrations, wireMB float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FleetShards(uint64(i+1), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		ramp = rows[0].TimeToRunning.Seconds() // least-reserved over 4 hosts
		migrations = float64(rows[1].Migrations)
		wireMB = rows[1].MigrationWireMB
	}
	b.ReportMetric(ramp, "s-to-running@1024x4")
	b.ReportMetric(migrations, "rebalance-migrations")
	b.ReportMetric(wireMB, "MB-cross-host-wire")
}

func BenchmarkElastic(b *testing.B) {
	var grows, drainMoves, stalledFixed, p95SysAdmit float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Elastic(uint64(i+1), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		grows = float64(res.GrowEvents)
		drainMoves = float64(res.DrainMoves)
		stalledFixed = float64(res.FixedStalled)
		for _, r := range res.Rows {
			if r.Mode == "elastic" && r.Class == "system" {
				p95SysAdmit = r.P95.Seconds()
			}
		}
		if res.LeakedBytes != 0 {
			b.Fatalf("drain leaked %d reservation bytes", res.LeakedBytes)
		}
	}
	b.ReportMetric(grows, "hosts-grown")
	b.ReportMetric(drainMoves, "drain-migrations")
	b.ReportMetric(stalledFixed, "stalled-on-fixed-pool")
	b.ReportMetric(p95SysAdmit, "s-p95-system-admit")
}

func BenchmarkSweeps(b *testing.B) {
	var wireFrac, skipRatio, p95 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SweepSteadyState(uint64(i+1), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		wireFrac = 100 * res.WireFrac
		skipRatio = res.Scheduled.DirtySkipRatio
		p95 = res.Scheduled.LatencyP95.Seconds()
		if res.WireFrac > 0.25 {
			b.Fatalf("scheduled sweeps shipped %.1f%% of the naive wire; want <= 25%%", 100*res.WireFrac)
		}
	}
	b.ReportMetric(wireFrac, "%wire-vs-naive")
	b.ReportMetric(skipRatio, "dirty-skip-ratio")
	b.ReportMetric(p95, "s-p95-sweep")
}

func BenchmarkFleetRampUp(b *testing.B) {
	var ramp256, steady256, peakRAM float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FleetRampUp(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ramp256 = last.TimeToRunning.Seconds()
		steady256 = last.SteadySaveMB
		peakRAM = last.PeakRAMGiB
	}
	b.ReportMetric(ramp256, "s-to-running@256")
	b.ReportMetric(steady256, "MB-steady-save@256")
	b.ReportMetric(peakRAM, "GiB-peakRAM@256")
}
