// Installedos: booting the machine's installed Windows as a
// (non-anonymous) nym, per paper section 3.7 and Table 1. The
// physical disk stays read-only; the repair pass and all boot writes
// land in a RAM-backed copy-on-write overlay that is discarded at the
// end, leaving no evidence Nymix ever ran — and leaving the bare-metal
// Windows untouched.
package main

import (
	"errors"
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/installedos"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

func main() {
	eng := sim.NewEngine(2014)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, version := range []installedos.Version{
		installedos.WindowsVista, installedos.Windows7, installedos.Windows8, installedos.UbuntuLinux,
	} {
		img, err := installedos.NewImage(version, map[string][]byte{
			"/users/me/wifi-passwords.txt": []byte("homenet: hunter2"),
		})
		if err != nil {
			log.Fatal(err)
		}
		eng.Go("boot-"+version.Name, func(p *sim.Proc) {
			repair, boot, err := mgr.BootInstalledOS(p, img)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s repair %6.1fs  boot %5.1fs  COW delta %5.1f MB\n",
				version.Name, repair.Seconds(), boot.Seconds(), float64(img.COWBytes())/(1<<20))
			// The familiar files are right there for SaniVM transfers.
			if _, err := img.Disk().FS().ReadFile("/users/me/wifi-passwords.txt"); err != nil {
				log.Fatal(err)
			}
		})
		eng.Run()

		// Quasi-persistent repair: keep the COW so next session skips
		// the repair...
		snap := img.SnapshotCOW()
		gen := img.Generation()
		img.DiscardSession()
		if err := img.RestoreCOW(snap, gen); err != nil {
			log.Fatal(err)
		}
		eng.Go("reboot-"+version.Name, func(p *sim.Proc) {
			_, err := img.Boot(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s rebooted from saved COW without re-repair\n", version.Name)
		})
		eng.Run()

		// ...but if the user boots the bare metal in between, the saved
		// delta is inconsistent and Nymix refuses it (section 3.7).
		img.DiscardSession()
		img.MutatePhysicalDisk()
		if err := img.RestoreCOW(snap, gen); errors.Is(err, installedos.ErrInconsistent) {
			fmt.Printf("%-14s stale COW rejected after bare-metal changes (as designed)\n\n", version.Name)
		} else {
			log.Fatalf("%s: stale COW accepted: %v", version.Name, err)
		}
	}
}
