// Dissident: Bob's scenario from paper section 2. Bob organizes
// protests from Tyrannistan via a pseudonymous Twitter account. He
// needs: a pre-configured nym whose golden snapshot lives encrypted in
// the cloud (nothing on his USB to confiscate), photos scrubbed of
// EXIF GPS/serial metadata before posting, a persistent Tor entry
// guard so boots don't compound his exposure to malicious guards, and
// amnesia if anything goes wrong mid-session.
package main

import (
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/installedos"
	"nymix/internal/nymstate"
	"nymix/internal/sanitize"
	"nymix/internal/sim"
	"nymix/internal/tracker"
	"nymix/internal/webworld"
)

func main() {
	eng := sim.NewEngine(1312)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Bob's laptop: state-mandated Windows with his protest photos on
	// the disk — full of identifying metadata.
	photo := sanitize.MakeJPEG(sanitize.EXIFMeta{
		Make: "SmartPhoneCo", Model: "SP-7", Serial: "SN-0042-TYR",
		GPSLat: "41.2995N", GPSLon: "69.2401E", Software: "PhotoApp 2.1",
	}, []byte("crowd-at-tyrannimen-square"))
	laptop, err := installedos.NewImage(installedos.Windows7, map[string][]byte{
		"/users/bob/photos/protest.jpg": photo,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Section 3.5: the guard seed is derived from the nym's password
	// and storage location, so even the ephemeral loader nym uses
	// Bob's own entry guard.
	const password = "correct-horse-tyrannistan"
	seed := nymstate.GuardSeed(password, "dropbin/bob-organizer")
	opts := core.Options{Model: core.ModelPreconfigured, GuardSeed: seed}
	dest := core.StoreDest{Provider: "dropbin", Account: "anon-77few", AccountPassword: "cloud-pw"}

	eng.Go("bob", func(p *sim.Proc) {
		// Night 1: configure the nym once and snapshot it.
		nym, err := mgr.StartNym(p, "bob-organizer", opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night 1: nym up, entry guard %s (seeded, persistent)\n",
			nym.Anonymizer().ExportState()["guard"])
		if _, err := nym.Browser().Login(p, "twitter.com", "free-tyrannistan", "tw-pw"); err != nil {
			log.Fatal(err)
		}
		size, err := mgr.StoreNym(p, nym, password, dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night 1: golden snapshot stored in the cloud (%.1f MB encrypted)\n", float64(size)/(1<<20))
		if err := mgr.TerminateNym(p, nym); err != nil {
			log.Fatal(err)
		}

		// Night 2: restore, scrub a photo through the SaniVM, post it.
		nym, err = mgr.LoadNym(p, "bob-organizer", password, opts, dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night 2: restored from cloud; guard still %s\n",
			nym.Anonymizer().ExportState()["guard"])
		report, err := mgr.TransferFile(p, laptop, "/users/bob/photos/protest.jpg", nym, sanitize.AllOptions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("night 2: SaniVM risk analysis before transfer:")
		for _, r := range report.RisksFound {
			fmt.Println("   ", r)
		}
		fmt.Printf("night 2: scrubbed (%v), residual risks: %d\n", report.Applied, len(report.Residual))
		if _, err := nym.Browser().LoginSaved(p, "twitter.com"); err != nil {
			log.Fatal(err)
		}
		scrubbed, _ := nym.AnonVM().Disk().FS().ReadFile(report.DestPath)
		if _, err := nym.Browser().Upload(p, "twitter.com", scrubbed); err != nil {
			log.Fatal(err)
		}
		fmt.Println("night 2: photo posted pseudonymously")
		if err := mgr.TerminateNym(p, nym); err != nil {
			log.Fatal(err)
		}
	})
	eng.Run()

	// The police audit: what does the server side know, and what does
	// Bob's hardware hold? Bob also has a day job — he browses as his
	// real self from the newspaper's network with an ordinary browser
	// (unique fingerprint, real address). Can the adversary connect
	// that man to the pseudonym?
	dayJob := []webworld.Visit{
		{Site: "gmail.com", SourceAddr: "newspaper-nat-203.0.113.9",
			CookieID: "ck-bob-real", Fingerprint: "ie-9/bob-workstation/1280x1024", Account: "bob.real.name"},
		{Site: "bbc.co.uk", SourceAddr: "newspaper-nat-203.0.113.9",
			CookieID: "ck-bob-real-2", Fingerprint: "ie-9/bob-workstation/1280x1024"},
	}
	cfg := tracker.DefaultConfig()
	for _, r := range world.Relays() {
		cfg.SharedAddrs[r.NodeName] = true
	}
	all := append(world.AllVisits(), world.TrackerLog()...)
	all = append(all, dayJob...)
	clusters := tracker.Link(cfg, all)
	pseudonym := tracker.Identity{Site: "twitter.com", ID: "free-tyrannistan"}
	realBob := tracker.Identity{Site: "gmail.com", ID: "bob.real.name"}
	fmt.Printf("\naudit: pseudonym linked to Bob's real identity: %v (the de-anonymization question)\n",
		tracker.Linked(clusters, pseudonym, realBob))
	fmt.Println("audit: the pseudonym's own sessions cluster together (cookie continuity — expected for a persistent nym)")
	for _, v := range world.Site("twitter.com").Visits() {
		if v.Action == "post" {
			fmt.Printf("audit: twitter saw post from %q, fingerprint %q — a relay and the Nymix crowd\n",
				v.SourceAddr, v.Fingerprint)
		}
	}
	fmt.Printf("audit: nyms on the machine: %d; memory securely erased: %.0f MB\n",
		mgr.RunningNyms(), float64(mgr.Host().Mem().Stats().ScrubbedBytes)/(1<<20))

	// Exposure math (section 3.5): Bob boots 30 nights. Fresh guards
	// each night vs. his persistent seeded guard.
	fmt.Printf("audit: 30-session malicious-guard exposure: rotating %.0f%%, Bob's persistent guard %.0f%%\n",
		100*tracker.GuardExposure(30, 0.05, true), 100*tracker.GuardExposure(30, 0.05, false))
}
