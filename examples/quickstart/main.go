// Quickstart: the smallest useful Nymix session. Boot the simulated
// host, start one ephemeral Tor nym, browse a page, inspect the
// isolation, and terminate with full amnesia.
//
// This drives one nym through core.Manager directly. The scale-out
// layers build on exactly this lifecycle: internal/fleet supervises
// hundreds of nyms on one host (`nymixctl fleet`), and
// internal/cluster shards fleets across an elastic pool of hosts with
// live migration and autoscaling (`nymixctl cluster`, `nymixctl
// elastic`).
package main

import (
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

func main() {
	// Everything runs on a deterministic discrete-event engine: same
	// seed, same session.
	eng := sim.NewEngine(42)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	eng.Go("quickstart", func(p *sim.Proc) {
		// One ephemeral nym: an AnonVM + CommVM pair with its own Tor.
		nym, err := mgr.StartNym(p, "reading-the-news", core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ph := nym.Phases()
		fmt.Printf("nymbox ready in %.1fs (boot %.1fs, tor %.1fs)\n",
			(ph.BootVM + ph.StartAnon).Seconds(), ph.BootVM.Seconds(), ph.StartAnon.Seconds())

		res, err := nym.Visit(p, "bbc.co.uk")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded bbc.co.uk: %.1f MB in %.1fs via exit %s\n",
			float64(res.Bytes)/(1<<20), res.Elapsed.Seconds(), nym.Anonymizer().ExitIdentity())

		// Structural isolation: the AnonVM cannot skip the anonymizer.
		net := world.Net()
		fmt.Printf("AnonVM -> Internet directly: %v (must be false)\n",
			net.CanReach(nym.AnonVM().Name(), "site:bbc.co.uk", "http"))
		fmt.Printf("AnonVM -> its CommVM:        %v (must be true)\n",
			net.CanReach(nym.AnonVM().Name(), nym.CommVM().Name(), "socks"))

		// Terminate: memory wiped, no trace anywhere.
		if err := mgr.TerminateNym(p, nym); err != nil {
			log.Fatal(err)
		}
		st := mgr.Host().Mem().Stats()
		fmt.Printf("terminated: %d nyms left, %.0f MB securely erased over the session\n",
			mgr.RunningNyms(), float64(st.ScrubbedBytes)/(1<<20))
		fmt.Println("next: `nymixctl fleet` runs hundreds of these under supervision;" +
			" `nymixctl elastic` autoscales a whole host pool")
	})
	eng.Run()
}
