// Censorship: Tyrannistan's ISP starts blocking Tor outright (deep
// packet inspection at the gateway). A plain Tor nym can no longer
// bootstrap — and Nymix's pluggable CommVM model (paper section 3.3)
// is exactly the answer: the same nymbox architecture runs a
// StegoTorus-camouflaged bridge (wire traffic looks like HTTPS,
// section 4) or SWEET (web over email, section 4.1) without touching
// anything else.
package main

import (
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

func main() {
	eng := sim.NewEngine(1984)
	net, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The state ISP deploys DPI at the gateway: anything classified as
	// Tor is silently dropped.
	world.Gateway().SetPolicy(func(in, out *vnet.Iface, proto string, dst *vnet.Node) bool {
		return proto != "tor"
	})
	fmt.Println("ISP deploys DPI: protocol 'tor' is now dropped at the gateway")

	eng.Go("bob", func(p *sim.Proc) {
		// Plain Tor cannot even fetch the directory any more.
		if _, err := mgr.StartNym(p, "plain-tor", core.Options{Anonymizer: "tor"}); err != nil {
			fmt.Printf("plain tor nym: %v\n", err)
		} else {
			log.Fatal("plain tor should have been censored")
		}

		// Same nymbox, camouflaged transport: the wire shows HTTPS.
		cap := mgr.Host().Uplink().Tap()
		bridged, err := mgr.StartNym(p, "bridged", core.Options{Anonymizer: "tor-bridge"})
		if err != nil {
			log.Fatalf("bridged nym: %v", err)
		}
		if _, err := bridged.Visit(p, "twitter.com"); err != nil {
			log.Fatalf("visit via bridge: %v", err)
		}
		fmt.Printf("bridged nym up: censor's capture shows protocols %v\n", cap.Protos())
		fmt.Printf("bridged nym: twitter saw source %q (still a Tor exit)\n",
			bridged.Anonymizer().ExitIdentity())
		if err := mgr.TerminateNym(p, bridged); err != nil {
			log.Fatal(err)
		}

		// And if the censor whitelists only mail, SWEET still works.
		sweet, err := mgr.StartNym(p, "mail-tunnel", core.Options{Anonymizer: "sweet"})
		if err != nil {
			log.Fatalf("sweet nym: %v", err)
		}
		res, err := sweet.Visit(p, "bbc.co.uk")
		if err != nil {
			log.Fatalf("visit via sweet: %v", err)
		}
		fmt.Printf("sweet nym: fetched bbc.co.uk in %.0fs over email (slow, but uncensorable)\n",
			res.Elapsed.Seconds())
		if err := mgr.TerminateNym(p, sweet); err != nil {
			log.Fatal(err)
		}
	})
	eng.Run()
	_ = net
}
