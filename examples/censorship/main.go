// Censorship: Tyrannistan's ISP starts blocking Tor outright (deep
// packet inspection at the gateway). A plain Tor nym can no longer
// bootstrap — and Nymix's pluggable CommVM model (paper section 3.3)
// is exactly the answer: the same nymbox architecture runs a
// StegoTorus-camouflaged bridge (wire traffic looks like HTTPS,
// section 4) or SWEET (web over email, section 4.1) without touching
// anything else. The censor here is a real vnet.DPIEngine on the host
// uplink — it classifies every flow and keeps counters — not a
// forwarding policy, so the demo ends with the censor's own measured
// tally of what it dropped and throttled.
package main

import (
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

func main() {
	eng := sim.NewEngine(1984)
	net, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The state ISP deploys a DPI engine on the uplink: anything
	// classified as Tor is silently dropped, and encrypted web is
	// throttled to 256 KB/s for good measure.
	uplink := mgr.Host().Uplink()
	dpi := vnet.NewDPI(vnet.FirstMatch(
		vnet.DropProto("tor"),
		vnet.ThrottleProto(256e3, "https"),
	))
	uplink.SetDPI(net, dpi)
	fmt.Println("ISP deploys DPI: 'tor' dropped, 'https' throttled to 256 KB/s")

	eng.Go("bob", func(p *sim.Proc) {
		// Plain Tor cannot even fetch the directory any more. The
		// failure is typed all the way down: the outer code is the
		// stalled bootstrap, the root cause is vnet.censored.
		if _, err := mgr.StartNym(p, "plain-tor", core.Options{Anonymizer: "tor"}); err != nil {
			fmt.Printf("plain tor nym: %v\n", err)
			fmt.Printf("  classified %s, censored=%v\n",
				nymerr.Classify(err), nymerr.HasCode(err, vnet.CodeCensored))
		} else {
			log.Fatal("plain tor should have been censored")
		}

		// Same nymbox, camouflaged transport: the wire shows HTTPS.
		cap := uplink.Tap()
		bridged, err := mgr.StartNym(p, "bridged", core.Options{Anonymizer: "tor-bridge"})
		if err != nil {
			log.Fatalf("bridged nym: %v", err)
		}
		res, err := bridged.Visit(p, "twitter.com")
		if err != nil {
			log.Fatalf("visit via bridge: %v", err)
		}
		fmt.Printf("bridged nym up: censor's capture shows protocols %v\n", cap.Protos())
		fmt.Printf("bridged nym: twitter in %.0fs under the throttle, saw source %q (still a Tor exit)\n",
			res.Elapsed.Seconds(), bridged.Anonymizer().ExitIdentity())
		if err := mgr.TerminateNym(p, bridged); err != nil {
			log.Fatal(err)
		}

		// And if the censor whitelists only mail, SWEET still works.
		sweet, err := mgr.StartNym(p, "mail-tunnel", core.Options{Anonymizer: "sweet"})
		if err != nil {
			log.Fatalf("sweet nym: %v", err)
		}
		res, err = sweet.Visit(p, "bbc.co.uk")
		if err != nil {
			log.Fatalf("visit via sweet: %v", err)
		}
		fmt.Printf("sweet nym: fetched bbc.co.uk in %.0fs over email (slow, but uncensorable)\n",
			res.Elapsed.Seconds())
		if err := mgr.TerminateNym(p, sweet); err != nil {
			log.Fatal(err)
		}

		// The censor's own books.
		drop, thr := dpi.Stat("tor"), dpi.Stat("https")
		fmt.Printf("censor tally: dropped %d tor flow(s) (%.1f MB), throttled %d https flow(s) (%.1f MB)\n",
			drop.Dropped, float64(drop.DroppedBytes)/(1<<20),
			thr.Throttled, float64(thr.ThrottledBytes)/(1<<20))
	})
	eng.Run()
}
