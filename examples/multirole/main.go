// Multirole: Alice's scenario from paper section 2. Alice is not
// hiding from anyone in particular — she just wants a strong wall
// between her work persona, her family life, and her unannounced
// pregnancy research. She runs three nyms simultaneously, each with
// the anonymizer that fits its sensitivity, and the ad networks that
// track her across the web cannot join the roles together.
//
// Three concurrent nyms is what one person needs; a shared service
// hosting many Alices runs the same lifecycle through internal/fleet
// (admission control, priority classes, restart supervision) and
// internal/cluster (placement across an elastic host pool, live
// migration). `nymixctl fleet` and `nymixctl elastic` script those
// layers.
package main

import (
	"fmt"
	"log"

	"nymix/internal/core"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/tracker"
	"nymix/internal/webworld"
)

func main() {
	eng := sim.NewEngine(7)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	type role struct {
		name, site, account, anonymizer string
		opts                            core.Options
	}
	roles := []role{
		// Work email: low sensitivity, incognito mode is fast.
		{"work", "gmail.com", "alice.at.work", "incognito", core.Options{Anonymizer: "incognito"}},
		// Family social life: Tor.
		{"family", "facebook.com", "alice-family", "tor", core.Options{Anonymizer: "tor"}},
		// The pregnancy research: Tor chained behind Dissent for
		// traffic-analysis resistance (section 3.3's serial CommVMs).
		{"private", "twitter.com", "quiet-reader", "dissent+tor", core.Options{Chain: []string{"dissent", "tor"}}},
	}

	eng.Go("alice", func(p *sim.Proc) {
		var nyms []*core.Nym
		for _, r := range roles {
			nym, err := mgr.StartNym(p, r.name, r.opts)
			if err != nil {
				log.Fatal(err)
			}
			nyms = append(nyms, nym)
			fmt.Printf("role %-8s -> nymbox %s/%s via %s\n",
				r.name, nym.AnonVM().Name(), nym.CommVM().Name(), nym.Anonymizer().Name())
		}
		// All three roles active at once, on one laptop.
		for i, r := range roles {
			if _, err := nyms[i].Browser().Login(p, r.site, r.account, "pw-"+r.name); err != nil {
				log.Fatal(err)
			}
			// Everyone also reads the news, which carries ad trackers.
			if _, err := nyms[i].Visit(p, "bbc.co.uk"); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("role %-8s: signed in to %s; servers saw source %q\n",
				r.name, r.site, nyms[i].Anonymizer().ExitIdentity())
		}
		for _, nym := range nyms {
			if err := mgr.TerminateNym(p, nym); err != nil {
				log.Fatal(err)
			}
		}
	})
	eng.Run()

	// The ad network's view: can doubleclick & friends join Alice's
	// roles?
	cfg := tracker.DefaultConfig()
	for _, r := range world.Relays() {
		cfg.SharedAddrs[r.NodeName] = true
	}
	for _, s := range world.DissentServers() {
		cfg.SharedAddrs[s] = true
	}
	all := append(world.AllVisits(), world.TrackerLog()...)
	clusters := tracker.Link(cfg, all)
	fmt.Printf("\ntracker view: %d observations across sites and ad networks\n", len(all))
	fmt.Println("tracker view: within one role, a nym's own cookies cluster (expected); across roles:")
	ids := map[string]tracker.Identity{
		"work":    {Site: "gmail.com", ID: "alice.at.work"},
		"family":  {Site: "facebook.com", ID: "alice-family"},
		"private": {Site: "twitter.com", ID: "quiet-reader"},
	}
	pairs := [][2]string{{"work", "family"}, {"work", "private"}, {"family", "private"}}
	anyLinked := false
	for _, pr := range pairs {
		linked := tracker.Linked(clusters, ids[pr[0]], ids[pr[1]])
		anyLinked = anyLinked || linked
		fmt.Printf("tracker view:   %-7s <-> %-7s linked: %v\n", pr[0], pr[1], linked)
	}
	if anyLinked {
		fmt.Println("tracker view: ROLE ISOLATION FAILED")
	} else {
		fmt.Println("tracker view: all three roles mutually unlinkable")
	}
	// Caveat the paper is explicit about: incognito mode exposes the
	// household address, so the work role is only pseudo-isolated.
	for _, v := range world.Site("gmail.com").Visits() {
		fmt.Printf("caveat: gmail saw the work role from %q — incognito gives no network anonymity\n", v.SourceAddr)
	}
}
