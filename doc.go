// Package nymix is a from-scratch reproduction of the Nymix
// anonymity-centric operating system architecture described in
// "Managing NymBoxes for Identity and Tracking Protection"
// (Wolinsky & Ford, 2014).
//
// Nymix gives users first-class control over pseudonyms, or nyms. Each
// nym is bound to a nymbox: a pair of virtual machines consisting of an
// AnonVM (the untrusted browsing environment) and a CommVM (the
// anonymizer, e.g. Tor), connected by a private virtual wire. A
// non-networked SaniVM scrubs files that cross from the installed OS
// into a nym, and nym state is quasi-persistent: compressed, encrypted,
// and stored anonymously in the cloud — either as a monolithic archive
// (internal/nymstate) or through NymVault (internal/vault), a
// content-addressed, deduplicating chunk store whose delta saves ship
// only what changed since the last session and can replicate or stripe
// across multiple providers.
//
// Everything the paper's prototype relied on — QEMU/KVM, OverlayFS,
// KSM, a Tor test deployment on DeterLab, Chromium workloads, cloud
// providers, installed Windows images — is rebuilt here as a
// deterministic discrete-event simulation using only the standard
// library. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-versus-measured record of every figure and table.
//
// The primary entry point is the Nym Manager in internal/core. The
// cmd/nymbench binary regenerates every evaluation result, and
// cmd/nymixctl mirrors the paper's section 3.5 user workflow.
package nymix
