package cluster

import (
	"fmt"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/sim"
)

// clusterChurn rewrites path on the member's comm disk with n bytes
// of round-varying content.
func clusterChurn(t *testing.T, m *fleet.Member, path string, round, n int) {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((round*17 + i) % 251)
	}
	if err := m.Nym().CommVM().Disk().WriteFile(path, data); err != nil {
		t.Fatalf("churn %s: %v", m.Name(), err)
	}
}

// TestOpportunisticGCReclaimsInIdleSlots: once a member's blob has
// been rewritten across two checkpoints, the superseded chunks sit
// dead at the provider. A coordinator with GC enabled must reclaim
// them from idle slots — provider token held, nothing dirty to save —
// and bill the probe wire it spent doing so.
func TestOpportunisticGCReclaimsInIdleSlots(t *testing.T) {
	eng, c := newCluster(t, 31, 2, 4<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await: %v", err)
		}
		// Two checkpoints with a full rewrite in between: v1's blob
		// chunks are garbage the moment v2's manifest lands.
		for gen := 0; gen < 2; gen++ {
			for _, h := range c.Hosts() {
				for _, m := range h.Fleet().Members() {
					clusterChurn(t, m, "/var/blob", gen, 128<<10)
					if _, err := h.Fleet().CheckpointNym(p, m.Name(), c.cfg.VaultPassword, c.cfg.DestFor(m.Name())); err != nil {
						t.Fatalf("checkpoint %s gen %d: %v", m.Name(), gen, err)
					}
				}
			}
		}
		if err := c.StartSweeps(SweepConfig{Interval: 20 * time.Second, GC: true, GCPerSlot: 1}); err != nil {
			t.Fatalf("start sweeps: %v", err)
		}
		p.Sleep(2 * time.Minute)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		rep := c.SweepReport()
		if rep.IdleSlots == 0 {
			t.Fatal("a clean pool produced no idle slots")
		}
		if rep.GCRuns < 2 {
			t.Fatalf("idle slots ran GC %d times, want >= 2 (cursor should rotate both members)", rep.GCRuns)
		}
		if rep.GCReclaimedBytes <= 0 {
			t.Fatalf("GC reclaimed %d bytes, want > 0 from the superseded rewrite", rep.GCReclaimedBytes)
		}
		if rep.GCWireBytes <= 0 {
			t.Fatal("GC billed no probe wire; reclaim is not free")
		}
		for _, err := range c.SweepErrors() {
			t.Errorf("sweep error: %v", err)
		}
	})
}

// TestClusterAdaptiveSweepDefersUnderRPO: the coordinator's adaptive
// mode defers a trickle-dirty member (under the delta target, RPO
// headroom) while still saving it before the ceiling, and the
// cluster report carries the deferral and pooled staleness telemetry.
func TestClusterAdaptiveSweepDefersUnderRPO(t *testing.T) {
	const (
		interval = 10 * time.Second
		rpo      = 100 * time.Second
	)
	eng, c := newCluster(t, 32, 2, 4<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Fatalf("await: %v", err)
		}
		// Baseline checkpoints so the steady state measures deltas.
		for _, h := range c.Hosts() {
			if _, err := h.Fleet().SaveSweep(p, c.cfg.VaultPassword, func(m *fleet.Member) core.VaultDest {
				return c.cfg.DestFor(m.Name())
			}); err != nil {
				t.Fatalf("cold save: %v", err)
			}
		}
		if err := c.StartSweeps(SweepConfig{
			Interval:         interval,
			Adaptive:         true,
			RPO:              rpo,
			TargetDeltaBytes: 64 << 10,
		}); err != nil {
			t.Fatalf("start sweeps: %v", err)
		}
		// One member trickles 1 KiB per interval — far under the 64 KiB
		// target, so only the RPO deadline can force its save.
		trickle := c.Hosts()[0].Fleet().Members()[0]
		for r := 0; r < 30; r++ {
			clusterChurn(t, trickle, fmt.Sprintf("/var/trickle-%d", r%3), r, 1<<10)
			p.Sleep(interval)
		}
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		rep := c.SweepReport()
		if rep.Deferred == 0 {
			t.Fatal("adaptive coordinator deferred nothing for a trickle-dirty member")
		}
		if rep.Saves == 0 {
			t.Fatal("trickle member was never saved; RPO deadline never fired")
		}
		if rep.StalenessMax <= interval {
			t.Fatalf("staleness max %v <= interval; deferral never stretched a save", rep.StalenessMax)
		}
		// The coordinator hands each host a two-Interval horizon, so a
		// deadline-forced save must land within RPO plus one slot.
		if limit := rpo + interval; rep.StalenessMax > limit {
			t.Fatalf("staleness max %v blew the RPO ceiling %v", rep.StalenessMax, limit)
		}
		if rep.StalenessP95 < rep.StalenessP50 || rep.StalenessP50 <= 0 {
			t.Fatalf("staleness percentiles p50=%v p95=%v malformed", rep.StalenessP50, rep.StalenessP95)
		}
		if rep.TotalChunks < rep.NewChunks || rep.TotalChunks == 0 {
			t.Fatalf("chunk accounting new=%d total=%d malformed", rep.NewChunks, rep.TotalChunks)
		}
		for _, err := range c.SweepErrors() {
			t.Errorf("sweep error: %v", err)
		}
	})
}
