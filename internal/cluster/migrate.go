package cluster

import (
	"errors"
	"fmt"

	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vault"
)

// MigrationReport describes one completed (or attempted) migration.
type MigrationReport struct {
	Name      string
	From, To  string
	Save      vault.SaveStats
	WireBytes int64 // vault bytes shipped: source upload + destination download
	Retried   bool  // restored from a prior checkpoint after a mid-migration failure
}

// MigrateNym moves a nym from its current host to dstHost, preserving
// its identity end to end:
//
//  1. the source orchestrator checkpoints the nym through the
//     NymVault (chunk dedup makes this a delta if the nym was swept
//     before);
//  2. the source nymbox is terminated and its member detached, so the
//     source releases the RAM reservation and can never resurrect the
//     nym;
//  3. the destination orchestrator admits the nym like any launch and
//     restores it from the vault checkpoint.
//
// The vault checkpoint is the migration channel AND the crash net: if
// the nym dies between the source save and the destination restore
// (or the fresh save itself fails under it), the migration falls back
// to the last recorded checkpoint and the destination restore is
// retried from there — durable state is never lost, and neither host
// leaks a reservation.
//
// The call blocks its process until the nym is Running on the
// destination or its restart budget is spent.
func (c *Cluster) MigrateNym(p *sim.Proc, name, dstHost string) (MigrationReport, error) {
	src := c.placement[name]
	if src == nil {
		return MigrationReport{}, fmt.Errorf("%w: %q", ErrUnknownNym, name)
	}
	dst := c.Host(dstHost)
	if dst == nil {
		return MigrationReport{}, fmt.Errorf("%w: %q", ErrUnknownHost, dstHost)
	}
	if dst == src {
		return MigrationReport{}, nymerr.Newf(CodeAlreadyPlaced, "cluster: %q already runs on %s", name, dstHost)
	}
	m := src.orch.Member(name)
	if m == nil {
		return MigrationReport{}, fmt.Errorf("%w: %q", ErrUnknownNym, name)
	}
	// One migration per nym at a time: a user-initiated move racing a
	// rebalance pass must lose cleanly, not fight over the teardown.
	if c.migrating[name] {
		return MigrationReport{}, nymerr.Newf(CodeMigrateConflict, "cluster: %q is already migrating", name)
	}
	c.migrating[name] = true
	defer delete(c.migrating, name)
	rep := MigrationReport{Name: name, From: src.name, To: dst.name}

	// 1. Fresh checkpoint on the source. A failure here (the nym
	// crashed under the save, the provider rejected it) is survivable
	// as long as some prior checkpoint exists.
	stats, saveErr := src.orch.CheckpointNym(p, name, c.cfg.VaultPassword, c.cfg.DestFor(name))
	if saveErr == nil {
		rep.Save = stats
		rep.WireBytes += stats.UploadedBytes
	} else {
		rep.Retried = true
	}
	cp, ok := m.Checkpoint()
	if !ok {
		// Keep the save failure in the wrap chain: %v here would strip
		// the typed cause (a vault.bad_password is not a cloud outage).
		if saveErr != nil {
			return rep, nymerr.Wrapf(CodeMigrateLost, saveErr, "cluster: migrate %q: no vault checkpoint to carry", name)
		}
		return rep, nymerr.Newf(CodeMigrateLost, "cluster: migrate %q: no vault checkpoint to carry", name)
	}

	// 2. Tear down on the source and detach. The member may be
	// mid-transition (a crash during the save put it in Restarting, or
	// its supervisor already rebooted it); drive until it is gone.
	var stopErr error
	for {
		if m.State() == fleet.StateRunning {
			if err := src.orch.Stop(p, name); err != nil {
				stopErr = err
			}
		}
		err := src.orch.Detach(name)
		if err == nil {
			break
		}
		if errors.Is(err, fleet.ErrUnknownMember) {
			// The member vanished under us — cannot happen while the
			// migrating guard holds, but never loop forever on it.
			return rep, errors.Join(nymerr.Newf(CodeMigrateLost, "cluster: migrate %q: member disappeared mid-migration", name), stopErr)
		}
		sim.Await(p, src.orch.ChangeFuture())
	}
	delete(c.placement, name)

	// 3. Restore on the destination from the carried checkpoint. A
	// destination that rejects or fails the restore must not lose the
	// nym: its durable state is still in the vault, so the launch is
	// re-queued cluster-wide and relaunches when capacity allows.
	spec := c.specs[name]
	requeue := func(cause error) (MigrationReport, error) {
		dst.orch.Detach(name) // drop a failed stub, if one was registered
		// The save-side bytes already crossed the wire; the restore's
		// download (and the migration count) are accounted when the
		// re-queued launch lands (watchRestored).
		c.migrationWire += rep.WireBytes
		c.enqueue(pendingLaunch{spec: spec, pri: spec.EffectivePriority(), cp: &cp})
		return rep, errors.Join(
			nymerr.Wrapf(CodeMigrateCrashFallback, cause,
				"cluster: migrate %q to %s (re-queued from the vault checkpoint)", name, dst.name),
			stopErr)
	}
	dm, err := dst.orch.LaunchRestored(spec, cp)
	if err != nil {
		return requeue(err)
	}
	c.placement[name] = dst
	for dm.State() != fleet.StateRunning && dm.State() != fleet.StateFailed {
		sim.Await(p, dst.orch.ChangeFuture())
	}
	if dm.State() == fleet.StateFailed {
		delete(c.placement, name)
		return requeue(fmt.Errorf("restore failed: %w", dm.LastErr()))
	}
	rep.WireBytes += dm.Nym().RestoreStats().DownloadedBytes
	c.migrations++
	c.migrationWire += rep.WireBytes
	return rep, stopErr
}
