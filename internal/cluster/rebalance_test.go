package cluster

import (
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// TestRebalanceWatermarkValidation is the regression table for the
// fillDefaults hole where an explicitly low HotShare with a defaulted
// ColdShare produced ColdShare >= HotShare — a pair under which every
// destination is simultaneously too warm to receive and cool enough
// to shed.
func TestRebalanceWatermarkValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     RebalanceConfig
		wantErr bool
	}{
		{name: "all defaults", cfg: RebalanceConfig{}},
		{name: "explicit valid pair", cfg: RebalanceConfig{HotShare: 0.9, ColdShare: 0.5}},
		// The bug: HotShare <= the 0.6 default ColdShare used to leave
		// ColdShare >= HotShare silently.
		{name: "low hot, defaulted cold", cfg: RebalanceConfig{HotShare: 0.5}},
		{name: "hot at default cold", cfg: RebalanceConfig{HotShare: 0.6}},
		{name: "cold above hot", cfg: RebalanceConfig{HotShare: 0.5, ColdShare: 0.6}, wantErr: true},
		{name: "cold equals hot", cfg: RebalanceConfig{HotShare: 0.85, ColdShare: 0.85}, wantErr: true},
		{name: "hot above one", cfg: RebalanceConfig{HotShare: 1.2}, wantErr: true},
		{name: "negative hot", cfg: RebalanceConfig{HotShare: -0.1}, wantErr: true},
		{name: "negative cold", cfg: RebalanceConfig{ColdShare: -0.1}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			err := cfg.fillDefaults()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("fillDefaults(%+v) accepted an invalid pair: %+v", tc.cfg, cfg)
				}
				if got := nymerr.Classify(err); got != CodeBadWatermarks {
					t.Fatalf("error classified %q, want %s: %v", got, CodeBadWatermarks, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("fillDefaults(%+v): %v", tc.cfg, err)
			}
			if cfg.ColdShare <= 0 || cfg.HotShare <= 0 || cfg.ColdShare >= cfg.HotShare {
				t.Fatalf("fillDefaults(%+v) left watermarks cold=%.3f hot=%.3f, want 0 < cold < hot",
					tc.cfg, cfg.ColdShare, cfg.HotShare)
			}
		})
	}
}

// TestNewRejectsInvalidWatermarks: the validation surfaces through
// cluster construction as a typed error, not a latent misconfig.
func TestNewRejectsInvalidWatermarks(t *testing.T) {
	eng := sim.NewEngine(1)
	_, world := webworld.BuildDefault(eng)
	_, err := New(eng, world, Config{
		Rebalance: RebalanceConfig{Enabled: true, HotShare: 0.5, ColdShare: 0.7},
	})
	if err == nil {
		t.Fatal("New accepted ColdShare > HotShare")
	}
	if got := nymerr.Classify(err); got != CodeBadWatermarks {
		t.Fatalf("error classified %q, want %s: %v", got, CodeBadWatermarks, err)
	}
}

// launchSerially places specs one at a time so RunningAt order — and
// therefore the rebalancer's coldest-victim order — is deterministic.
func launchSerially(t *testing.T, p *sim.Proc, c *Cluster, n int) {
	t.Helper()
	sp := specs(n, core.ModelPersistent)
	for i, s := range sp {
		if err := c.Launch(s); err != nil {
			t.Fatalf("launch %s: %v", s.Name, err)
		}
		if err := c.AwaitRunning(p, i+1); err != nil {
			t.Fatalf("await %d: %v", i+1, err)
		}
	}
}

// TestRebalancePassSkipsFailedVictim is the same-victim regression:
// when a move fails with the victim still running (here its vault
// destination never resolves, so every source save dies), the pass
// must spend its remaining budget on OTHER members instead of
// re-planning the identical victim MaxMovesPerPass times and moving
// nothing.
func TestRebalancePassSkipsFailedVictim(t *testing.T) {
	eng, c := newCluster(t, 21, 2, 4<<30, Config{
		Policy: PackFirst{},
		Rebalance: RebalanceConfig{
			Enabled:         true,
			Interval:        time.Hour, // driven manually below
			HotShare:        0.5,
			ColdShare:       0.45,
			MaxMovesPerPass: 2,
		},
		// nym00's checkpoints have nowhere to go: every migration save
		// for it fails, with the member still healthy on its host.
		DestFor: func(name string) core.VaultDest {
			providers := []string{"dropbin"}
			if name == "nym00" {
				providers = []string{"no-such-provider"}
			}
			return core.VaultDest{
				Providers:       providers,
				Account:         "acct-" + name,
				AccountPassword: "cloud-pw",
			}
		},
	})
	run(t, eng, func(p *sim.Proc) {
		launchSerially(t, p, c, 4)
		victim, dst := c.planMove(nil)
		if victim == nil || victim.Name() != "nym00" || dst == nil {
			t.Fatalf("precondition: planned victim %v, want nym00 with a destination", victim)
		}
		c.rebalancePass(p)
		if got := c.Migrations(); got != 1 {
			t.Fatalf("pass completed %d migrations, want 1 (budget burned on the failing victim)", got)
		}
		moved := c.Hosts()[1].Fleet().Members()
		if len(moved) != 1 || moved[0].Name() == "nym00" {
			t.Fatalf("cold host holds %v, want exactly one member other than nym00", moved)
		}
		if h := c.HostOf("nym00"); h == nil || h.Name() != c.Hosts()[0].Name() {
			t.Fatalf("nym00 placed on %v, want left on the hot host after its failed move", h)
		}
	})
}

// TestRebalancePassAbsorbsCrashMidSave: FailNym kills the planned
// victim in the middle of its migration checkpoint. The pass must
// absorb the failure — the remaining budget moves another member —
// and the crashed nym restarts without wedging the cluster.
func TestRebalancePassAbsorbsCrashMidSave(t *testing.T) {
	eng, c := newCluster(t, 22, 2, 4<<30, Config{
		Policy: PackFirst{},
		Rebalance: RebalanceConfig{
			Enabled:         true,
			Interval:        time.Hour, // driven manually below
			HotShare:        0.5,
			ColdShare:       0.45,
			MaxMovesPerPass: 2,
		},
	})
	eng.Go("chaos", func(p *sim.Proc) {
		// Wait for the pass's first migration to enter its source save,
		// then crash the victim under it.
		for i := 0; i < 20000; i++ {
			if c.migrating["nym00"] {
				src := c.HostOf("nym00")
				if src != nil {
					src.Fleet().FailNym(p, "nym00", nil)
				}
				return
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	run(t, eng, func(p *sim.Proc) {
		launchSerially(t, p, c, 4)
		c.rebalancePass(p)
		if got := c.Migrations(); got < 1 {
			t.Fatalf("pass completed %d migrations, want >= 1 despite the crashed victim", got)
		}
		for _, m := range c.Hosts()[1].Fleet().Members() {
			if m.Name() == "nym00" {
				t.Fatal("crashed victim migrated anyway; its save should have died with it")
			}
		}
	})
}

// TestCostAwareVictimPricing: the cost-aware planner prefers the
// member whose vault is already warm (restore priced from the chunk
// index, nothing dirty to ship) over members that were never saved —
// a cold index prices as a full-footprint restore, the most expensive
// move on the host.
func TestCostAwareVictimPricing(t *testing.T) {
	eng, c := newCluster(t, 23, 2, 4<<30, Config{
		Policy: PackFirst{},
		Rebalance: RebalanceConfig{
			Enabled: true, Interval: time.Hour,
			HotShare: 0.5, ColdShare: 0.45, CostAware: true,
		},
	})
	run(t, eng, func(p *sim.Proc) {
		launchSerially(t, p, c, 3)
		h0 := c.Hosts()[0]
		// Only nym01 has a checkpoint: its chunk index is warm and its
		// dirty delta zero, so its priced move wire is a fraction of
		// the full-footprint fallback the others get.
		if _, err := h0.Fleet().CheckpointNym(p, "nym01", c.cfg.VaultPassword, c.cfg.DestFor("nym01")); err != nil {
			t.Fatalf("checkpoint nym01: %v", err)
		}
		got := c.cheapestVictim(h0, nil)
		if got == nil || got.Name() != "nym01" {
			t.Fatalf("cheapest victim = %v, want nym01 (warm vault, clean)", got)
		}
		cost := h0.Manager().MigrationCost(got.Nym(), c.cfg.DestFor(got.Name()))
		if cost.RestoreBytes <= 0 {
			t.Fatalf("priced restore = %d bytes, want > 0 from the warm chunk index", cost.RestoreBytes)
		}
		if cost.Wire() >= got.Footprint() {
			t.Fatalf("warm move priced %d >= footprint %d; index pricing is not engaged", cost.Wire(), got.Footprint())
		}
		// With the warm member excluded, the planner falls back to a
		// cold-index member rather than returning nothing.
		if alt := c.cheapestVictim(h0, map[string]bool{"nym01": true}); alt == nil || alt.Name() == "nym01" {
			t.Fatalf("skip map ignored: got %v", alt)
		}
	})
}

// TestBatchedMovesExecuteInIdleSweepSlots: with BatchIntoSweeps the
// rebalance timer only plans; the migration itself runs inside a
// sweep slot that held the provider token with nothing dirty to save.
func TestBatchedMovesExecuteInIdleSweepSlots(t *testing.T) {
	eng, c := newCluster(t, 24, 2, 4<<30, Config{
		Policy: PackFirst{},
		Rebalance: RebalanceConfig{
			Enabled:         true,
			Interval:        10 * time.Second,
			HotShare:        0.5,
			ColdShare:       0.45,
			MaxMovesPerPass: 1,
			CostAware:       true,
			BatchIntoSweeps: true,
		},
	})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Fatalf("await: %v", err)
		}
		if err := c.StartSweeps(SweepConfig{Interval: 20 * time.Second}); err != nil {
			t.Fatalf("start sweeps: %v", err)
		}
		p.Sleep(4 * time.Minute)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		rep := c.SweepReport()
		if rep.IdleSlots == 0 {
			t.Fatal("no idle slots over 4 minutes of a settling pool")
		}
		if rep.MovesPlanned < 1 {
			t.Fatalf("rebalancer planned %d moves, want >= 1", rep.MovesPlanned)
		}
		if rep.MovesExecuted < 1 {
			t.Fatalf("idle slots executed %d batched moves, want >= 1 (planned %d, dropped %d)",
				rep.MovesExecuted, rep.MovesPlanned, rep.MovesDropped)
		}
		if c.Migrations() < 1 {
			t.Fatal("no migration completed via the batched path")
		}
		if got := c.Hosts()[1].Fleet().Running(); got < 1 {
			t.Fatalf("cold host runs %d members after batched rebalance, want >= 1", got)
		}
		// The batched path must not leave ghosts: nothing queued twice,
		// nothing stuck mid-migration.
		if len(c.migrating) != 0 {
			t.Fatalf("migrating guard not empty after settle: %v", c.migrating)
		}
		for name := range c.moveQueued {
			if h := c.HostOf(name); h == nil {
				t.Fatalf("queued move for unplaced nym %q", name)
			}
		}
	})
}
