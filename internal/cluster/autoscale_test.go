package cluster

import (
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/sim"
)

// elasticCfg is the fast-dwell autoscaler the tests run: floor of
// min, ceiling of max, decisions in simulated seconds rather than the
// production defaults.
func elasticCfg(min, max int) AutoscaleConfig {
	return AutoscaleConfig{
		Enabled:        true,
		MinHosts:       min,
		MaxHosts:       max,
		GrowDwell:      5 * time.Second,
		ProvisionDelay: 10 * time.Second,
		ShrinkShare:    0.5,
		ShrinkDwell:    15 * time.Second,
	}
}

func TestAutoscalerGrowsOnPersistentQueue(t *testing.T) {
	// One 2-slot host, six launches: the queue persists past GrowDwell,
	// so the autoscaler provisions hosts (up to MaxHosts=3) until the
	// whole wave is admitted — on a fixed pool it would stall forever.
	eng, c := newCluster(t, 51, 1, 2<<30, Config{Autoscale: elasticCfg(1, 3)})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(6, core.ModelEphemeral)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 6); err != nil {
			t.Fatalf("await across scale-up: %v", err)
		}
	})
	st := c.Snapshot()
	if st.ActiveHosts != 3 {
		t.Fatalf("active hosts = %d, want 3", st.ActiveHosts)
	}
	if st.GrowEvents != 2 {
		t.Fatalf("grow events = %d, want 2", st.GrowEvents)
	}
	if st.Running != 6 || st.QueuedClusterWide != 0 {
		t.Fatalf("running=%d queued=%d after scale-up", st.Running, st.QueuedClusterWide)
	}
	for _, ev := range c.ScaleLog() {
		if ev.Kind != "grow" {
			t.Fatalf("unexpected scale event %+v", ev)
		}
	}
}

func TestAutoscalerDrainsToFloor(t *testing.T) {
	// Three 16 GiB hosts holding two persistent nyms: the cluster share
	// sits far under the watermark, so the autoscaler drains and
	// retires hosts down to MinHosts=1, migrating both nyms onto the
	// survivor with no reservation leaked anywhere.
	eng, c := newCluster(t, 53, 3, 16<<30, Config{Autoscale: elasticCfg(1, 3)})
	fp := smallOpts(core.ModelPersistent).Footprint()
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await: %v", err)
		}
	})
	// Engine drained: every dwell fired, every drain completed, and the
	// daemons disarmed (nothing left to shrink).
	st := c.Snapshot()
	if st.ActiveHosts != 1 || st.Hosts != 1 {
		t.Fatalf("hosts = %d active / %d pool, want 1/1 after drain-to-floor", st.ActiveHosts, st.Hosts)
	}
	if st.ShrinkEvents != 2 || st.RetiredHosts != 2 {
		t.Fatalf("shrink events = %d, retired = %d, want 2/2", st.ShrinkEvents, st.RetiredHosts)
	}
	if st.Running != 2 {
		t.Fatalf("running = %d after drain, want 2", st.Running)
	}
	// Zero leaked reservations: retired hosts hold nothing, the
	// survivor holds exactly the two footprints.
	for _, h := range c.RetiredHosts() {
		if got := h.Fleet().ReservedBytes(); got != 0 {
			t.Fatalf("retired host %s leaks %d reserved bytes", h.Name(), got)
		}
		if got := h.Manager().Host().VMCount(); got != 0 {
			t.Fatalf("retired host %s still holds %d VMs", h.Name(), got)
		}
		if h.State() != HostRetired {
			t.Fatalf("retired host %s state = %v", h.Name(), h.State())
		}
	}
	if got := c.Hosts()[0].Fleet().ReservedBytes(); got != 2*fp {
		t.Fatalf("survivor reserved = %d, want %d", got, 2*fp)
	}
	// Every drained nym restored from its vault checkpoint rather than
	// booting blank: one save/load cycle per completed migration. (A
	// nym that already sat on the surviving host never moves and keeps
	// zero cycles.)
	if c.Migrations() < 1 {
		t.Fatalf("migrations = %d, want at least one drain move", c.Migrations())
	}
	moved := 0
	for _, name := range []string{"nym00", "nym01"} {
		m := c.Member(name)
		if m == nil || m.State() != fleet.StateRunning {
			t.Fatalf("%s not running after drain", name)
		}
		if m.Nym().Cycles() > 0 {
			moved++
		}
	}
	if moved != c.Migrations() {
		t.Fatalf("%d nyms carry restore cycles but %d migrations completed", moved, c.Migrations())
	}
}

// TestDrainCrashRetriesFromCheckpoint is the drain half of the
// migration crash regression: a nym dies (FailNym) while the drain's
// source-side save is in flight. The drain must fall back to the last
// recorded vault checkpoint, land the nym on the surviving host, and
// retire the drained host with zero leaked reservations.
func TestDrainCrashRetriesFromCheckpoint(t *testing.T) {
	eng, c := newCluster(t, 57, 2, 16<<30, Config{
		Fleet: fleet.Config{Restart: fleet.RestartPolicy{MaxRestarts: 0}},
	})
	fp := smallOpts(core.ModelPersistent).Footprint()
	run(t, eng, func(p *sim.Proc) {
		opts := smallOpts(core.ModelPersistent)
		opts.GuardSeed = "drainee"
		if err := c.Launch(fleet.Spec{Name: "drainee", Opts: opts}); err != nil {
			t.Fatalf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 1); err != nil {
			t.Fatalf("await: %v", err)
		}
		src := c.HostOf("drainee")
		// A durable checkpoint exists from before the crash.
		if _, err := src.Fleet().CheckpointNym(p, "drainee", "cluster-pw", core.VaultDest{
			Providers: []string{"dropbin"}, Account: "acct-drainee", AccountPassword: "cloud-pw",
		}); err != nil {
			t.Fatalf("pre-checkpoint: %v", err)
		}
		// Retire the nym's host on its own process; crash the nym while
		// the drain's fresh save is still in flight.
		var retireErr error
		done := eng.Go("retire", func(rp *sim.Proc) {
			retireErr = c.RetireHost(rp, src.Name())
		})
		p.Sleep(200 * time.Millisecond)
		if err := src.Fleet().FailNym(p, "drainee", nil); err != nil {
			t.Fatalf("inject crash: %v", err)
		}
		sim.Await(p, done)
		if retireErr != nil {
			t.Fatalf("drain did not recover from the crash: %v", retireErr)
		}
		m := c.Member("drainee")
		if m == nil || m.State() != fleet.StateRunning {
			t.Fatal("drainee not running on the surviving host")
		}
		if m.Nym().Cycles() == 0 {
			t.Error("drainee restored blank instead of from the vault checkpoint")
		}
		if src.State() != HostRetired {
			t.Errorf("source host state = %v, want retired", src.State())
		}
		if got := src.Fleet().ReservedBytes(); got != 0 {
			t.Errorf("retired host leaks %d reserved bytes", got)
		}
		if got := src.Manager().Host().VMCount(); got != 0 {
			t.Errorf("retired host still holds %d VMs", got)
		}
		if got := c.HostOf("drainee").Fleet().ReservedBytes(); got != fp {
			t.Errorf("survivor reserved = %d, want %d", got, fp)
		}
	})
}

// TestClusterPreemptionAdmitsSystemLaunch: with the pool saturated by
// ephemeral nyms and no autoscaler, a System-class launch parked in
// the cluster-wide queue triggers a preemption pass after its dwell:
// one ephemeral dies, the System nym places on the freed capacity.
func TestClusterPreemptionAdmitsSystemLaunch(t *testing.T) {
	eng, c := newCluster(t, 59, 1, 2<<30, Config{
		Preempt: PreemptConfig{Enabled: true, Dwell: 2 * time.Second},
	})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(2, core.ModelEphemeral)); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		if err := c.Launch(fleet.Spec{
			Name: "sysnym", Opts: smallOpts(core.ModelEphemeral), Priority: fleet.PrioritySystem,
		}); err != nil {
			t.Fatalf("launch system: %v", err)
		}
		for {
			m := c.Member("sysnym")
			if m != nil && (m.State() == fleet.StateRunning || m.State() == fleet.StateFailed) {
				if m.State() != fleet.StateRunning {
					t.Fatalf("system nym %v, want running", m.State())
				}
				break
			}
			c.parkOnChange(p)
		}
	})
	st := c.Snapshot()
	if st.Preempted.Terminated != 1 || st.Preempted.Evicted != 0 {
		t.Fatalf("preempted = %+v, want one terminated ephemeral", st.Preempted)
	}
}

// TestClusterQueuePriorityOrder: the cluster-wide queue dispatches by
// class, not arrival: a persistent launch queued after two ephemeral
// ones is admitted first when capacity frees, and the ephemerals keep
// their relative order behind it.
func TestClusterQueuePriorityOrder(t *testing.T) {
	eng, c := newCluster(t, 61, 1, 2<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(2, core.ModelEphemeral)); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		// Three queued launches: two ephemeral, then one persistent.
		for _, name := range []string{"eph-a", "eph-b"} {
			if err := c.Launch(fleet.Spec{Name: name, Opts: smallOpts(core.ModelEphemeral)}); err != nil {
				t.Fatalf("launch %s: %v", name, err)
			}
		}
		per := smallOpts(core.ModelPersistent)
		per.GuardSeed = "per-c"
		if err := c.Launch(fleet.Spec{Name: "per-c", Opts: per}); err != nil {
			t.Fatalf("launch per-c: %v", err)
		}
		if got := c.QueuedClusterWide(); got != 3 {
			t.Fatalf("queued = %d, want 3", got)
		}
		// Free one slot: the persistent head must take it.
		if err := c.Hosts()[0].Fleet().Stop(p, "nym00"); err != nil {
			t.Fatalf("stop: %v", err)
		}
		for c.Member("per-c") == nil || c.Member("per-c").State() != fleet.StateRunning {
			c.parkOnChange(p)
		}
		if got := c.QueuedClusterWide(); got != 2 {
			t.Fatalf("queued = %d after priority dispatch, want the two ephemerals", got)
		}
		// Free another: FIFO among equals — eph-a before eph-b.
		if err := c.Hosts()[0].Fleet().Stop(p, "nym01"); err != nil {
			t.Fatalf("stop: %v", err)
		}
		for c.Member("eph-a") == nil || c.Member("eph-a").State() != fleet.StateRunning {
			c.parkOnChange(p)
		}
		if got := c.QueuedClusterWide(); got != 1 {
			t.Fatalf("queued = %d, want eph-b still parked", got)
		}
	})
}
