package cluster

import "nymix/internal/cpusched"

func defaultChip() cpusched.Config { return cpusched.Config{Cores: 16, SMTFactor: 1.3} }

// Policy decides which host admits a launch. Pick returns nil when no
// host can take the footprint right now, which queues the launch
// cluster-wide until capacity frees.
//
// Pick is only consulted with hosts whose orchestrators expose their
// admission picture (ReservedBytes, RAMBudgetBytes, CanAdmit); it
// must not block.
type Policy interface {
	Name() string
	Pick(hosts []*Host, footprint int64) *Host
}

// LeastReserved places each nym on the admitting host with the lowest
// reserved share of its budget — the default, which keeps the pool
// evenly loaded so no host becomes a thermal or failure hot spot.
type LeastReserved struct{}

// Name implements Policy.
func (LeastReserved) Name() string { return "least-reserved" }

// Pick implements Policy.
func (LeastReserved) Pick(hosts []*Host, footprint int64) *Host {
	var best *Host
	var bestShare float64
	for _, h := range hosts {
		if !h.orch.CanAdmit(footprint) {
			continue
		}
		share := h.ReservedShare()
		if best == nil || share < bestShare {
			best, bestShare = h, share
		}
	}
	return best
}

// PackFirst fills hosts in pool order, moving to the next only when
// the current one cannot admit the footprint. It maximizes KSM page
// sharing and lets trailing hosts be powered down — and is the
// natural foil for the rebalancer, which spreads a packed pool back
// out when the lead hosts run hot.
type PackFirst struct{}

// Name implements Policy.
func (PackFirst) Name() string { return "pack-first" }

// Pick implements Policy.
func (PackFirst) Pick(hosts []*Host, footprint int64) *Host {
	for _, h := range hosts {
		if h.orch.CanAdmit(footprint) {
			return h
		}
	}
	return nil
}
