package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vm"
)

// TestClusterSweepSlotsNeverOverlap: with a single provider token, no
// two hosts are ever on the shared providers at once — even when the
// sweep interval is short enough that a host's sweep overruns its
// stagger slot.
func TestClusterSweepSlotsNeverOverlap(t *testing.T) {
	eng, c := newCluster(t, 21, 3, 4<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(9, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 9); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		// SaveAll with a deliberately tight interval: per-host sweeps
		// take seconds, stagger slots only ~4s apart — without the
		// token, windows would collide.
		if err := c.StartSweeps(SweepConfig{
			Interval: 12 * time.Second, Tokens: 1, SaveAll: true,
		}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		p.Sleep(40 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)

		slots := c.SweepSlots()
		var active []SweepSlot
		for _, s := range slots {
			if !s.Paused {
				active = append(active, s)
			}
		}
		if len(active) < 6 {
			t.Errorf("only %d host sweeps completed, want >= 6", len(active))
		}
		hosts := map[string]bool{}
		for _, s := range active {
			hosts[s.Host] = true
			if s.End <= s.Start {
				t.Errorf("round %d %s: empty sweep window [%v,%v] under SaveAll", s.Round, s.Host, s.Start, s.End)
			}
		}
		if len(hosts) != 3 {
			t.Errorf("sweeps covered %d hosts, want 3", len(hosts))
		}
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				a, b := active[i], active[j]
				if a.Host == b.Host {
					continue
				}
				if a.Start < b.End && b.Start < a.End {
					t.Errorf("hosts %s and %s swept the providers concurrently: [%v,%v] overlaps [%v,%v]",
						a.Host, b.Host, a.Start, a.End, b.Start, b.End)
				}
			}
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
}

// TestClusterSweepPausesCordonedHost: a host out of Active duty is
// skipped by the coordinator — its slots are recorded as paused and
// nothing of its state moves to the providers.
func TestClusterSweepPausesCordonedHost(t *testing.T) {
	eng, c := newCluster(t, 22, 2, 4<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		cordoned := c.Hosts()[0].Name()
		if err := c.Cordon(cordoned); err != nil {
			t.Errorf("cordon: %v", err)
			return
		}
		if err := c.StartSweeps(SweepConfig{
			Interval: 10 * time.Second, SaveAll: true,
		}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		p.Sleep(25 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)

		var paused, swept int
		for _, s := range c.SweepSlots() {
			if s.Host == cordoned {
				if !s.Paused {
					t.Errorf("cordoned host %s swept in round %d", s.Host, s.Round)
				}
				paused++
			} else if !s.Paused {
				swept++
			}
		}
		if paused == 0 || swept == 0 {
			t.Errorf("paused=%d swept=%d, want both > 0", paused, swept)
		}
		rep := c.SweepReport()
		if rep.Paused != paused {
			t.Errorf("report paused = %d, want %d", rep.Paused, paused)
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
}

// Regression: a slot pass whose saves all fail used to vanish — the
// coordinator dropped SweepOnce's error on the floor, so a dead
// provider read as a healthy round with a low save count. The
// coordinator now keeps every slot failure, typed.
func TestClusterSweepSlotRecordsSaveFailures(t *testing.T) {
	eng, c := newCluster(t, 29, 2, 4<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		// Point every save at a provider that doesn't exist: each
		// host's pass fails wholesale.
		if err := c.StartSweeps(SweepConfig{
			Interval: 10 * time.Second, SaveAll: true,
			DestFor: func(name string) core.VaultDest {
				return core.VaultDest{Providers: []string{"nowhere"}, Account: name, AccountPassword: "p"}
			},
		}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		p.Sleep(25 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	errs := c.SweepErrors()
	if len(errs) == 0 {
		t.Fatal("coordinator swallowed the failed slot passes")
	}
	for _, err := range errs {
		if !errors.Is(err, core.ErrNoProvider) {
			t.Errorf("slot error lost its cause: %v", err)
		}
		if nymerr.Classify(err) != core.CodeUnknownProvider {
			t.Errorf("slot error classified %q, want %s: %v", nymerr.Classify(err), core.CodeUnknownProvider, err)
		}
	}
	if rep := c.SweepReport(); rep.Errors == 0 {
		t.Errorf("report errors = 0 despite %d failed slots", len(errs))
	}
}

// TestSweepsInterleaveCrashMigrationPreemption is the hardening pass:
// the sweep coordinator runs on a short interval while the test
// injects a nymbox crash, live-migrates a nym between hosts, and
// forces a cluster preemption with a System-class launch. Afterwards:
// no sweep ever drove a nymbox into an illegal lifecycle state (the
// double-checkpoint failure mode), no host leaks a reservation, and
// every nym's checkpoint generation is monotonic.
func TestSweepsInterleaveCrashMigrationPreemption(t *testing.T) {
	eng, c := newCluster(t, 23, 2, 4<<30, Config{
		Preempt: PreemptConfig{Enabled: true, Dwell: 2 * time.Second},
	})
	gens := map[string]int{}
	names := []string{"nym00", "nym01", "nym02", "nym03", "nym04", "nym05"}
	sampleGens := func() {
		for _, name := range names {
			m := c.Member(name)
			if m == nil || m.Nym() == nil {
				continue
			}
			gen := m.Nym().CheckpointGen()
			if gen < gens[name] {
				t.Errorf("%s checkpoint generation went backwards: %d -> %d", name, gens[name], gen)
			}
			gens[name] = gen
		}
	}
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(6, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 6); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if err := c.StartSweeps(SweepConfig{Interval: 5 * time.Second}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		for round := 0; round < 6; round++ {
			// Keep some state churn flowing so sweeps have real work.
			m := c.Member(names[round%len(names)])
			if m != nil && m.State() == fleet.StateRunning && m.Nym() != nil {
				if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
					t.Errorf("round %d visit: %v", round, err)
				}
			}
			switch round {
			case 1:
				// Crash a running nym out from under the sweeps.
				for _, name := range names {
					mm := c.Member(name)
					if mm != nil && mm.State() == fleet.StateRunning {
						h := c.HostOf(name)
						if err := h.Fleet().FailNym(p, name, nil); err != nil {
							t.Errorf("fail %s: %v", name, err)
						}
						break
					}
				}
			case 3:
				// Live-migrate a running nym while sweeps fire.
				for _, name := range names {
					mm := c.Member(name)
					if mm == nil || mm.State() != fleet.StateRunning {
						continue
					}
					src := c.HostOf(name)
					var dst *Host
					for _, h := range c.Hosts() {
						if h != src {
							dst = h
						}
					}
					if _, err := c.MigrateNym(p, name, dst.Name()); err != nil {
						t.Errorf("migrate %s: %v", name, err)
					}
					break
				}
			case 4:
				// A System-class burst big enough to overflow both
				// hosts' headroom: the cluster queue preempts persistent
				// victims (vaulted, then evicted) while sweeps are
				// running.
				vips := make([]fleet.Spec, 12)
				for i := range vips {
					vips[i] = fleet.Spec{
						Name:     fmt.Sprintf("vip%02d", i),
						Opts:     smallOpts(core.ModelEphemeral),
						Priority: fleet.PrioritySystem,
					}
				}
				if err := c.LaunchAll(vips); err != nil {
					t.Errorf("vip launch: %v", err)
				}
			}
			p.Sleep(5 * time.Second)
			sampleGens()
		}
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		c.AwaitSettled(p)
		sampleGens()

		preempted := 0
		for _, h := range c.Hosts() {
			preempted += h.Fleet().Preemptions().Total()
		}
		if preempted == 0 {
			t.Error("System burst preempted nothing; the interleaving never exercised eviction")
		}
		for _, h := range c.Hosts() {
			for _, err := range h.Fleet().SweepErrors() {
				if errors.Is(err, vm.ErrBadState) {
					t.Errorf("host %s sweep drove a nymbox into an illegal state: %v", h.Name(), err)
				}
			}
			var want int64
			for _, m := range h.Fleet().Members() {
				switch m.State() {
				case fleet.StateRunning, fleet.StateStarting, fleet.StateQueued, fleet.StateRestarting:
					want += m.Footprint()
				}
			}
			if got := h.Fleet().ReservedBytes(); got != want {
				t.Errorf("host %s leaked reservations: reserved %d bytes, members account for %d", h.Name(), got, want)
			}
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})

	// Every failure the chaos run recorded — crash, sweep, eviction,
	// stop — must classify to a registered code: the SLO taxonomy's
	// zero-unclassified invariant.
	recorded := 0
	for _, h := range append(c.Hosts(), c.RetiredHosts()...) {
		for _, rec := range h.Fleet().Failures() {
			recorded++
			if rec.Code == "" || !nymerr.Registered(rec.Code) {
				t.Errorf("host %s: unclassified failure (member %s, op %s): %v",
					h.Name(), rec.Member, rec.Op, rec.Err)
			}
		}
	}
	if recorded == 0 {
		t.Error("chaos run recorded no failures; the crash injection never landed")
	}
	for _, err := range c.SweepErrors() {
		if nymerr.Classify(err) == "" {
			t.Errorf("untyped cluster sweep error: %v", err)
		}
	}
}
