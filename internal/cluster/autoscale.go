package cluster

import (
	"fmt"
	"time"

	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// AutoscaleConfig tunes the elastic pool daemon. The autoscaler is the
// ROADMAP's cluster-elasticity item: the pool itself grows when demand
// queues and shrinks when it ebbs, instead of being fixed at New time.
type AutoscaleConfig struct {
	// Enabled arms the daemon; a disabled autoscaler costs nothing.
	Enabled bool
	// MinHosts is the floor the pool never drains below (default: the
	// initial pool size). MaxHosts is the growth ceiling (default:
	// twice the initial pool size).
	MinHosts int
	MaxHosts int
	// GrowDwell is how long the cluster-wide queue must persist before
	// a new host is provisioned (default 10s) — a blip a teardown is
	// about to absorb should not buy a machine.
	GrowDwell time.Duration
	// ProvisionDelay models how long a new host takes to come online
	// (default 30s): image boot, network join, manager start.
	ProvisionDelay time.Duration
	// ShrinkShare is the cluster-wide reserved share below which the
	// pool is considered oversized (default 0.25).
	ShrinkShare float64
	// ShrinkDwell is how long the pool must sit under ShrinkShare
	// before a host is cordoned and drained (default 60s).
	ShrinkDwell time.Duration
}

func (a *AutoscaleConfig) fillDefaults(initial int) {
	if a.MinHosts <= 0 {
		a.MinHosts = initial
	}
	if a.MaxHosts <= 0 {
		a.MaxHosts = 2 * initial
	}
	if a.MaxHosts < a.MinHosts {
		a.MaxHosts = a.MinHosts
	}
	if a.GrowDwell <= 0 {
		a.GrowDwell = 10 * time.Second
	}
	if a.ProvisionDelay <= 0 {
		a.ProvisionDelay = 30 * time.Second
	}
	if a.ShrinkShare <= 0 || a.ShrinkShare >= 1 {
		a.ShrinkShare = 0.25
	}
	if a.ShrinkDwell <= 0 {
		a.ShrinkDwell = 60 * time.Second
	}
}

// PreemptConfig arms cluster-queue preemption: when the head of the
// cluster-wide queue has outranked running nyms for Dwell, the
// cheapest host sacrifices strictly-lower-priority members (via
// fleet.PreemptFor — ephemeral terminated, persistent vaulted and
// evicted) so the head can place. It complements the autoscaler:
// preemption admits a System launch in seconds while a new host is
// still ProvisionDelay away.
type PreemptConfig struct {
	Enabled bool
	// Dwell is how long the queue head must wait before victims die
	// (default 5s).
	Dwell time.Duration
}

func (pc *PreemptConfig) fillDefaults() {
	if pc.Dwell <= 0 {
		pc.Dwell = 5 * time.Second
	}
}

// ScaleEvent is one autoscaler (or operator) action on the pool.
type ScaleEvent struct {
	At     sim.Time
	Kind   string // "grow", "cordon", "retire", "abort"
	Host   string
	Active int // placeable hosts after the event
}

// ScaleLog returns pool scaling events in order — the hosts-over-time
// series the elastic experiment renders.
func (c *Cluster) ScaleLog() []ScaleEvent { return append([]ScaleEvent(nil), c.scaleLog...) }

func (c *Cluster) logScale(kind, host string) {
	c.scaleLog = append(c.scaleLog, ScaleEvent{
		At: c.eng.Now(), Kind: kind, Host: host, Active: c.ActiveHosts(),
	})
}

// clusterShare is the pool-wide reserved fraction of admissible budget
// over placeable hosts — the figure the shrink watermark reads.
func (c *Cluster) clusterShare() float64 {
	var reserved, budget int64
	for _, h := range c.hosts {
		if !h.placeable() {
			continue
		}
		reserved += h.orch.ReservedBytes()
		budget += h.orch.RAMBudgetBytes()
	}
	if budget <= 0 {
		return 0
	}
	return float64(reserved) / float64(budget)
}

// autoscale is the daemon's evaluation pulse, run on every cluster
// state change. Like the rebalancer and the fleet's KSM daemon it is
// state-driven: timers exist only while a grow or shrink could help,
// so a stable cluster leaves the event queue empty and the engine
// drainable.
func (c *Cluster) autoscale() {
	if !c.cfg.Autoscale.Enabled {
		return
	}
	c.checkGrow()
	c.checkShrink()
}

// checkGrow arms one provisioning decision GrowDwell past the moment
// the cluster-wide queue appeared. The pressure clock (queueSince,
// maintained by onChange) resets whenever the queue empties, so only
// a queue that *persists* buys a host.
func (c *Cluster) checkGrow() {
	a := c.cfg.Autoscale
	if len(c.pending) == 0 || c.growArmed || c.growing || c.ActiveHosts() >= a.MaxHosts {
		return
	}
	c.growArmed = true
	wait := c.queueSince + a.GrowDwell - c.eng.Now()
	c.eng.Schedule(wait, func() {
		c.growArmed = false
		if c.growing || len(c.pending) == 0 || c.queueSince < 0 || c.ActiveHosts() >= a.MaxHosts {
			c.notify() // AwaitSettled watches growArmed; wake it
			return
		}
		if c.eng.Now()-c.queueSince < a.GrowDwell {
			c.autoscale() // pressure blipped off and back on; re-dwell
			return
		}
		c.growing = true
		c.eng.Go("cluster/grow", func(p *sim.Proc) {
			p.Sleep(a.ProvisionDelay)
			h, err := c.addHost()
			c.growing = false
			if err == nil {
				c.growEvents++
				c.logScale("grow", h.name)
			}
			c.onChange() // dispatch the queue onto the new host; maybe grow again
		})
	})
}

// checkShrink arms one retire decision ShrinkDwell past the moment the
// pool went cold (reserved share under the watermark with an empty
// queue). The idle clock resets whenever load returns, so a lull
// between bursts does not cost a host.
func (c *Cluster) checkShrink() {
	a := c.cfg.Autoscale
	cold := len(c.pending) == 0 && c.ActiveHosts() > a.MinHosts &&
		c.clusterShare() < a.ShrinkShare &&
		!c.draining && !c.growing && !c.growArmed &&
		!c.rebalancing && !c.rebalScheduled
	if !cold {
		c.coldSince = -1
		return
	}
	if c.coldSince < 0 {
		c.coldSince = c.eng.Now()
	}
	if c.shrinkArmed {
		return
	}
	c.shrinkArmed = true
	wait := c.coldSince + a.ShrinkDwell - c.eng.Now()
	c.eng.Schedule(wait, func() {
		c.shrinkArmed = false
		if c.coldSince < 0 || c.draining || c.growing ||
			len(c.pending) > 0 || c.ActiveHosts() <= a.MinHosts {
			c.notify() // AwaitSettled watches shrinkArmed; wake it
			return
		}
		if c.eng.Now()-c.coldSince < a.ShrinkDwell {
			c.autoscale() // idleness blipped; re-dwell
			return
		}
		victim := c.shrinkVictim()
		if victim == nil {
			c.coldSince = -1
			c.notify()
			return
		}
		c.draining = true
		c.eng.Go("cluster/drain-"+victim.name, func(p *sim.Proc) {
			if c.retireHost(p, victim) {
				c.shrinkEvents++
			}
			c.draining = false
			c.coldSince = -1
			c.onChange() // still cold? the next pass retires another host
		})
	})
}

// shrinkVictim picks the host to retire: the least-loaded placeable
// host whose reserved bytes the rest of the pool has headroom to
// absorb — draining a host the survivors cannot hold would wedge
// mid-migration.
func (c *Cluster) shrinkVictim() *Host {
	var victim *Host
	var victimShare float64
	for _, h := range c.hosts {
		if !h.placeable() {
			continue
		}
		share := h.ReservedShare()
		if victim == nil || share < victimShare {
			victim, victimShare = h, share
		}
	}
	if victim == nil {
		return nil
	}
	var headroom int64
	for _, h := range c.hosts {
		if h != victim && h.placeable() {
			headroom += h.orch.HeadroomBytes()
		}
	}
	if headroom < victim.orch.ReservedBytes() {
		return nil
	}
	return victim
}

// Cordon marks a host unschedulable: existing nyms keep running, new
// placements go elsewhere. The rebalancer likewise stops considering
// the host.
func (c *Cluster) Cordon(name string) error {
	h := c.Host(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if h.state != HostActive {
		return nymerr.Newf(CodeHostIneligible, "cluster: host %q is %v, not cordonable", name, h.state)
	}
	h.state = HostCordoned
	c.logScale("cordon", h.name)
	c.notify()
	return nil
}

// Uncordon returns a cordoned host to service.
func (c *Cluster) Uncordon(name string) error {
	h := c.Host(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if h.state != HostCordoned {
		return nymerr.Newf(CodeHostIneligible, "cluster: host %q is %v, not cordoned", name, h.state)
	}
	h.state = HostActive
	c.onChange() // the queue may dispatch onto it again
	return nil
}

// RetireHost cordons, drains, and removes one host by name: every
// live nym is migrated off through the vault (MigrateNym's checkpoint
// fallback covers a nym that crashes mid-drain), then the empty host
// leaves the pool. It blocks the calling process until the drain
// completes and errors if the drain had to be aborted (the rest of
// the pool could not absorb the host's nyms).
func (c *Cluster) RetireHost(p *sim.Proc, name string) error {
	h := c.Host(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if h.state != HostActive && h.state != HostCordoned {
		return nymerr.Newf(CodeHostIneligible, "cluster: host %q is %v, not retirable", name, h.state)
	}
	if c.ActiveHosts() <= 1 && h.state == HostActive {
		return nymerr.Newf(CodeLastActiveHost, "cluster: refusing to retire the last active host %q", name)
	}
	if c.draining {
		return nymerr.New(CodeDrainConflict, "cluster: another drain is already in flight")
	}
	c.draining = true
	ok := c.retireHost(p, h)
	c.draining = false
	c.onChange()
	if !ok {
		return nymerr.Newf(CodeDrainStuck, "cluster: drain of %q aborted: the pool cannot absorb its nyms", name)
	}
	return nil
}

// retireHost walks one host through cordon -> drain -> retire,
// returning false if the drain had to be aborted (the host goes back
// to Active). Every live nym leaves via MigrateNym, so durable
// identity rides the vault and a crash mid-drain falls back to the
// last checkpoint; the host is removed only once it holds zero nyms
// and zero reserved bytes — a leaked reservation would survive as a
// visible accounting error on a retired host, so the invariant is
// checked here.
func (c *Cluster) retireHost(p *sim.Proc, h *Host) bool {
	if h.state == HostActive {
		h.state = HostCordoned
		c.logScale("cordon", h.name)
		c.notify()
	}
	h.state = HostDraining
	attempts := make(map[string]int)
	for {
		if c.hostQuiet(h) {
			break
		}
		m := c.nextDrainMember(h)
		if m == nil {
			// Members are mid-transition (booting, restarting, being
			// torn down); wait for them to settle into Running or a
			// terminal state.
			c.parkOnChange(p)
			continue
		}
		dst := c.drainDestination(h, m)
		if dst == nil {
			// Capacity vanished under the drain (a burst arrived).
			// Abort: the host returns to service rather than wedging.
			h.state = HostActive
			c.logScale("abort", h.name)
			c.onChange()
			return false
		}
		name := m.Name()
		if _, err := c.MigrateNym(p, name, dst.name); err != nil {
			if c.HostOf(name) != h {
				continue // it left anyway (re-queued from its checkpoint)
			}
			if attempts[name]++; attempts[name] >= 3 {
				h.state = HostActive
				c.logScale("abort", h.name)
				c.onChange()
				return false
			}
			c.parkOnChange(p)
		}
	}
	h.state = HostRetired
	for i, x := range c.hosts {
		if x == h {
			c.hosts = append(c.hosts[:i], c.hosts[i+1:]...)
			break
		}
	}
	c.retired = append(c.retired, h)
	c.logScale("retire", h.name)
	c.notify()
	return true
}

// hostQuiet reports that a host holds no live or in-flight member and
// no reservation — the retire precondition.
func (c *Cluster) hostQuiet(h *Host) bool {
	for _, m := range h.orch.Members() {
		switch m.State() {
		case fleet.StateQueued, fleet.StateStarting, fleet.StateRunning,
			fleet.StateRestarting, fleet.StateStopping:
			return false
		}
	}
	return h.orch.ReservedBytes() == 0
}

// nextDrainMember picks the next nym to move off a draining host: any
// Running member not already mid-migration.
func (c *Cluster) nextDrainMember(h *Host) *fleet.Member {
	for _, m := range h.orch.Members() {
		if m.State() == fleet.StateRunning && m.Nym() != nil && !c.migrating[m.Name()] {
			return m
		}
	}
	return nil
}

// drainDestination returns the least-reserved placeable host that can
// admit the member's footprint and wire rate, or nil —
// destinationUnder with no share ceiling: a drain takes any host with
// room.
func (c *Cluster) drainDestination(src *Host, m *fleet.Member) *Host {
	return c.destinationUnder(src, m.Footprint(), m.WireRate(), 2)
}

// needsPreempt reports whether cluster-queue preemption has work: the
// queue head outranks enough running footprint on some host to cover
// its deficit.
func (c *Cluster) needsPreempt() bool {
	if !c.cfg.Preempt.Enabled || len(c.pending) == 0 {
		return false
	}
	return c.preemptHostFor(c.pending[0]) != nil
}

// preemptHostFor picks the cheapest host that could admit the queued
// launch after preempting strictly-lower classes: among hosts whose
// headroom plus preemptible footprint covers the launch, the one with
// the most headroom already free (fewest victims die).
func (c *Cluster) preemptHostFor(pl pendingLaunch) *Host {
	fp := pl.spec.Opts.Footprint()
	var best *Host
	var bestHeadroom int64
	for _, h := range c.hosts {
		if !h.placeable() || fp > h.orch.RAMBudgetBytes() {
			continue
		}
		headroom := h.orch.HeadroomBytes()
		if headroom+h.orch.PreemptibleBytes(pl.pri) < fp {
			continue
		}
		if best == nil || headroom > bestHeadroom {
			best, bestHeadroom = h, headroom
		}
	}
	return best
}

// schedulePreempt arms one cluster-preemption decision Dwell past the
// moment the queue appeared, sharing the pressure clock with the grow
// path: provisioning relieves sustained pressure with new capacity,
// preemption relieves it *now* by sacrificing lower classes — both may
// be armed, and whichever fires first helps.
func (c *Cluster) schedulePreempt() {
	if c.preemptArmed || c.preempting || !c.needsPreempt() {
		return
	}
	c.preemptArmed = true
	wait := c.queueSince + c.cfg.Preempt.Dwell - c.eng.Now()
	c.eng.Schedule(wait, func() {
		c.preemptArmed = false
		if c.preempting || !c.needsPreempt() || c.queueSince < 0 {
			c.notify() // AwaitSettled watches preemptArmed; wake it
			return
		}
		if c.eng.Now()-c.queueSince < c.cfg.Preempt.Dwell {
			c.schedulePreempt() // pressure blipped; re-dwell
			return
		}
		c.preempting = true
		c.eng.Go("cluster/preempt", func(p *sim.Proc) {
			c.preemptPass(p)
			c.preempting = false
			c.onChange()
		})
	})
}

// preemptPass frees room for queued launches head-first until no head
// can be helped, one victim at a time: each kill releases capacity
// that the cluster dispatcher may place the head on immediately (the
// host watcher fires mid-pass), so the demand is re-read from the
// queue between kills rather than trusted across them — a pass never
// sacrifices a nym the head no longer needs.
func (c *Cluster) preemptPass(p *sim.Proc) {
	for len(c.pending) > 0 {
		head := c.pending[0]
		h := c.preemptHostFor(head)
		if h == nil {
			return
		}
		if h.orch.PreemptOne(p, head.pri) == 0 {
			return
		}
		c.dispatch()
	}
}
