package cluster

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/cloud"
	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/hypervisor"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// ClusterUplink is the default per-host uplink: a datacenter-grade
// 1 Gbit/s line rather than the paper's rate-limited 10 Mbit/s DSL.
var ClusterUplink = vnet.LinkConfig{Latency: time.Millisecond, Capacity: 1e9 / 8}

// Config parameterizes a cluster. Zero values take defaults.
type Config struct {
	// Hosts is the pool size (default 4).
	Hosts int
	// HostConfig sizes each host (default: 64 GiB, 16 cores — the
	// fleet experiment's production profile). Name is overridden per
	// host with HostPrefix.
	HostConfig hypervisor.Config
	// HostPrefix names hosts HostPrefix0..N-1 (default "shard").
	HostPrefix string
	// Uplink is each host's uplink (default ClusterUplink).
	Uplink *vnet.LinkConfig
	// Fleet configures every host's orchestrator.
	Fleet fleet.Config
	// Policy is the placement policy (default LeastReserved).
	Policy Policy
	// Rebalance configures the hot-host rebalancer (disabled unless
	// Enabled is set).
	Rebalance RebalanceConfig
	// Autoscale configures the elastic pool daemon (disabled unless
	// Enabled is set).
	Autoscale AutoscaleConfig
	// Preempt configures cluster-queue preemption (disabled unless
	// Enabled is set): a high-priority launch stuck in the cluster-wide
	// queue sacrifices lower-priority nyms on the cheapest host.
	Preempt PreemptConfig
	// VaultPassword seals migration checkpoints (default "cluster-pw").
	VaultPassword string
	// DestFor maps a nym name to its vault destination (default: one
	// pseudonymous dropbin account per nym).
	DestFor func(name string) core.VaultDest
	// ProviderQuota is the per-account cloud quota (default 2 GiB).
	ProviderQuota int64
	// RegionFor maps a host index to a hosting region. When set, each
	// host uplinks to its region's gateway router
	// (webworld.EnsureRegion) instead of the world's LAN gateway, so
	// vnet.SeverRegions can partition subsets of the pool from each
	// other or from the backbone. Nil keeps the single-LAN topology.
	RegionFor func(hostIndex int) string
}

func (c *Config) fillDefaults() error {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.HostConfig.RAMBytes == 0 && c.HostConfig.CPU.Cores == 0 {
		c.HostConfig = hypervisor.Config{RAMBytes: 64 << 30, CPU: defaultChip()}
	}
	if c.HostPrefix == "" {
		c.HostPrefix = "shard"
	}
	if c.Uplink == nil {
		c.Uplink = &ClusterUplink
	}
	if c.Policy == nil {
		c.Policy = LeastReserved{}
	}
	if c.VaultPassword == "" {
		c.VaultPassword = "cluster-pw"
	}
	if c.DestFor == nil {
		c.DestFor = func(name string) core.VaultDest {
			return core.VaultDest{
				Providers:       []string{"dropbin"},
				Account:         "acct-" + name,
				AccountPassword: "cloud-pw",
			}
		}
	}
	if c.ProviderQuota == 0 {
		c.ProviderQuota = 2 << 30
	}
	if err := c.Rebalance.fillDefaults(); err != nil {
		return err
	}
	c.Autoscale.fillDefaults(c.Hosts)
	c.Preempt.fillDefaults()
	return nil
}

// HostState is a pool member's scheduling state — the autoscaler's
// shrink path walks a host through Active -> Cordoned -> Draining ->
// Retired, and only Active hosts receive placements.
type HostState int

// Host lifecycle states.
const (
	HostActive   HostState = iota // taking placements
	HostCordoned                  // no new placements; existing nyms untouched
	HostDraining                  // live nyms being migrated off
	HostRetired                   // empty and removed from the pool
)

// String implements fmt.Stringer.
func (s HostState) String() string {
	switch s {
	case HostActive:
		return "active"
	case HostCordoned:
		return "cordoned"
	case HostDraining:
		return "draining"
	case HostRetired:
		return "retired"
	}
	return "unknown"
}

// Host is one machine in the pool: a hypervisor wrapped in its own
// Nym Manager and fleet orchestrator.
type Host struct {
	name  string
	mgr   *core.Manager
	orch  *fleet.Orchestrator
	state HostState
}

// Name returns the host's network identity.
func (h *Host) Name() string { return h.name }

// State returns the host's scheduling state.
func (h *Host) State() HostState { return h.state }

// placeable reports whether the placement layer may put new nyms here.
func (h *Host) placeable() bool { return h.state == HostActive }

// Manager returns the host's Nym Manager.
func (h *Host) Manager() *core.Manager { return h.mgr }

// Fleet returns the host's orchestrator.
func (h *Host) Fleet() *fleet.Orchestrator { return h.orch }

// ReservedShare returns the host's reserved fraction of its
// admissible budget — the figure placement and rebalancing bid with.
func (h *Host) ReservedShare() float64 {
	if h.orch.RAMBudgetBytes() <= 0 {
		return 0
	}
	return float64(h.orch.ReservedBytes()) / float64(h.orch.RAMBudgetBytes())
}

// pendingLaunch is one cluster-wide queued launch. cp is set when the
// launch restores a vault checkpoint — a migration whose destination
// restore failed re-queues here, so the nym relaunches from durable
// state as soon as any host has room.
type pendingLaunch struct {
	spec fleet.Spec
	pri  fleet.Priority
	cp   *fleet.Checkpoint
}

// Cluster owns the host pool and schedules nyms across it.
type Cluster struct {
	eng   *sim.Engine
	world *webworld.World
	cfg   Config
	hosts []*Host

	// providers is the shared cloud set every host (including ones the
	// autoscaler adds later) mounts, so any host can restore any
	// checkpoint. hostSeq numbers hosts monotonically — a retired
	// host's name is never reused.
	providers map[string]*cloud.Provider
	hostSeq   int
	retired   []*Host

	// placement maps each launched nym to the host currently
	// responsible for it; specs remembers launch options so a
	// migration can rebuild the member elsewhere; launchedAt records
	// when the cluster accepted each launch, so time-to-admit covers
	// the cluster-wide queue as well as the host-side pipeline.
	placement  map[string]*Host
	specs      map[string]fleet.Spec
	launchedAt map[string]sim.Time

	// pending is the cluster-wide admission queue, ordered by
	// descending priority, FIFO among equals.
	pending    []pendingLaunch
	peakQueued int

	// migrating guards each nym against concurrent migrations (a
	// user-initiated move racing a rebalance pass).
	migrating map[string]bool
	// launchErrs records launches the dispatcher had to drop (the
	// host's orchestrator rejected a dequeued spec) — surfaced instead
	// of silently losing the nym.
	launchErrs map[string]error

	watchers *sim.Broadcast

	migrations     int
	migrationWire  int64
	rebalScheduled bool
	rebalancing    bool

	// Cost-aware rebalance batching: moves the planner approved but
	// deferred into idle sweep slots (pendingMoves, FIFO), the
	// members currently queued (so re-planning skips them), and the
	// plan/execute/drop counters the economy telemetry reads.
	pendingMoves []plannedMove
	moveQueued   map[string]bool
	movesPlanned int

	// gcCursor rotates opportunistic VaultGC fairly over each host's
	// member list across idle slots.
	gcCursor map[string]int

	// Autoscaler state: the pressure/idle clocks (-1 while clear),
	// armed dwell timers, in-flight grow/drain work, and the scale
	// event log the elastic experiment renders.
	queueSince   sim.Time
	coldSince    sim.Time
	growArmed    bool
	growing      bool
	shrinkArmed  bool
	draining     bool
	growEvents   int
	shrinkEvents int
	scaleLog     []ScaleEvent

	// Cluster-queue preemption state, same idiom.
	preemptArmed bool
	preempting   bool

	// Sweep coordinator state (sweep.go): installed config (nil while
	// stopped), the round timer, completed round count, provider
	// tokens currently held, in-flight slot passes, and the slot log.
	sweepCfg           *SweepConfig
	sweepTimer         *sim.Timer
	sweepRounds        int
	sweepRoundsSkipped int
	sweepTokensHeld    int
	sweepInFlight      int
	slotLog            []SweepSlot
	sweepErrs          []error
}

// New builds a cluster of cfg.Hosts hosts on the world, sharing one
// cloud-provider set so vault checkpoints written through any host
// are loadable from every other.
func New(eng *sim.Engine, world *webworld.World, cfg Config) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Cluster{
		eng:        eng,
		world:      world,
		cfg:        cfg,
		placement:  make(map[string]*Host),
		specs:      make(map[string]fleet.Spec),
		launchedAt: make(map[string]sim.Time),
		migrating:  make(map[string]bool),
		moveQueued: make(map[string]bool),
		gcCursor:   make(map[string]int),
		launchErrs: make(map[string]error),
		watchers:   sim.NewBroadcast(eng),
		queueSince: -1,
		coldSince:  -1,
	}
	c.providers = core.DefaultProviders(world, cfg.ProviderQuota)
	for i := 0; i < cfg.Hosts; i++ {
		if _, err := c.addHost(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// addHost boots one more machine into the pool: its own hypervisor,
// Nym Manager, and fleet orchestrator, on the shared Internet and the
// shared provider set. The autoscaler's grow path calls it at runtime;
// New calls it for the initial pool.
func (c *Cluster) addHost() (*Host, error) {
	hostCfg := c.cfg.HostConfig
	hostCfg.Name = fmt.Sprintf("%s%d", c.cfg.HostPrefix, c.hostSeq)
	var gateway *vnet.Node
	if c.cfg.RegionFor != nil {
		if region := c.cfg.RegionFor(c.hostSeq); region != "" {
			gateway = c.world.EnsureRegion(region)
		}
	}
	mgr, err := core.NewManagerWith(c.eng, c.world, hostCfg, core.ManagerConfig{
		Uplink:    c.cfg.Uplink,
		Providers: c.providers,
		Gateway:   gateway,
	})
	if err != nil {
		return nil, err
	}
	fcfg := c.cfg.Fleet
	// Wire the orchestrator's eviction channel to the cluster's vault
	// settings, so cluster-driven preemption can vault persistent
	// victims even when the caller configured nothing fleet-side.
	if fcfg.Preempt.VaultPassword == "" {
		fcfg.Preempt.VaultPassword = c.cfg.VaultPassword
	}
	if fcfg.Preempt.DestFor == nil {
		destFor := c.cfg.DestFor
		fcfg.Preempt.DestFor = func(m *fleet.Member) core.VaultDest { return destFor(m.Name()) }
	}
	h := &Host{name: hostCfg.Name, mgr: mgr, orch: fleet.New(mgr, fcfg)}
	c.hostSeq++
	c.hosts = append(c.hosts, h)
	c.watchHost(h)
	return h, nil
}

// watchHost runs a daemon that reacts to every state change on one
// host: dispatch queued launches, arm the rebalancer, wake cluster
// waiters. The daemon parks (adding nothing to the event queue) when
// the host is quiet, so an idle cluster drains the engine.
func (c *Cluster) watchHost(h *Host) {
	c.eng.Go("cluster/watch-"+h.name, func(p *sim.Proc) {
		for {
			sim.Await(p, h.orch.ChangeFuture())
			c.onChange()
		}
	})
}

// onChange is the cluster's scheduling pulse.
func (c *Cluster) onChange() {
	c.dispatch()
	// Maintain the pressure clock: queueSince is when the current
	// episode of cluster-wide queueing began (-1 while the queue is
	// empty). The grow and preemption dwells both read it.
	if len(c.pending) > 0 {
		if c.queueSince < 0 {
			c.queueSince = c.eng.Now()
		}
	} else {
		c.queueSince = -1
	}
	c.maybeScheduleRebalance()
	c.autoscale()
	c.schedulePreempt()
	c.notify()
}

func (c *Cluster) notify() { c.watchers.Notify() }

func (c *Cluster) parkOnChange(p *sim.Proc) { c.watchers.Park(p) }

// Hosts returns the pool in fixed order (retired hosts excluded).
func (c *Cluster) Hosts() []*Host { return append([]*Host(nil), c.hosts...) }

// RetiredHosts returns hosts the autoscaler has drained and removed,
// oldest first.
func (c *Cluster) RetiredHosts() []*Host { return append([]*Host(nil), c.retired...) }

// ActiveHosts returns how many hosts currently take placements.
func (c *Cluster) ActiveHosts() int {
	n := 0
	for _, h := range c.hosts {
		if h.placeable() {
			n++
		}
	}
	return n
}

// placeableHosts returns the hosts the policy may place on.
func (c *Cluster) placeableHosts() []*Host {
	out := make([]*Host, 0, len(c.hosts))
	for _, h := range c.hosts {
		if h.placeable() {
			out = append(out, h)
		}
	}
	return out
}

// wireFits reports whether a host's wire budget could ever admit the
// rate (uncapped or within capacity).
func wireFits(h *Host, rate int64) bool {
	b := h.orch.WireBudgetRate()
	return b < 0 || rate <= b
}

// wireHosts filters hosts that can admit an idle uplink rate right
// now. Cover-traffic budgets gate placement the same way RAM headroom
// does: the policy must never park a constant-rate nym on a host whose
// wire budget is already spoken for.
func wireHosts(hosts []*Host, rate int64) []*Host {
	if rate <= 0 {
		return hosts
	}
	out := make([]*Host, 0, len(hosts))
	for _, h := range hosts {
		if h.orch.CanAdmitWire(rate) {
			out = append(out, h)
		}
	}
	return out
}

// Host returns a pool member by name, or nil.
func (c *Cluster) Host(name string) *Host {
	for _, h := range c.hosts {
		if h.name == name {
			return h
		}
	}
	return nil
}

// HostOf returns the host currently responsible for a nym, or nil.
func (c *Cluster) HostOf(name string) *Host { return c.placement[name] }

// Member returns a nym's fleet member record, or nil.
func (c *Cluster) Member(name string) *fleet.Member {
	h := c.placement[name]
	if h == nil {
		return nil
	}
	return h.orch.Member(name)
}

// Running returns live nyms across the pool.
func (c *Cluster) Running() int {
	n := 0
	for _, h := range c.hosts {
		n += h.orch.Running()
	}
	return n
}

// QueuedClusterWide returns launches the placement layer is holding
// because no host can admit them yet.
func (c *Cluster) QueuedClusterWide() int { return len(c.pending) }

// PeakQueued returns the cluster-wide queue's high-water mark.
func (c *Cluster) PeakQueued() int { return c.peakQueued }

// Migrations returns completed cross-host migrations, including
// re-queued ones once their deferred restore lands.
func (c *Cluster) Migrations() int { return c.migrations }

// MigrationWireBytes returns the cross-host wire cost of all
// migrations: vault bytes uploaded by source saves plus bytes
// downloaded by destination restores (a re-queued migration's save
// bytes are counted at requeue time, its download when it lands).
func (c *Cluster) MigrationWireBytes() int64 { return c.migrationWire }

// Launch places one nym through the policy, or queues it
// cluster-wide when every host is saturated. Like fleet.Launch it
// returns immediately; a footprint no host could ever admit fails now.
func (c *Cluster) Launch(spec fleet.Spec) error {
	if _, dup := c.specs[spec.Name]; dup {
		return nymerr.Newf(CodeDuplicateNym, "cluster: nym %q already launched", spec.Name)
	}
	fp := spec.Opts.Footprint()
	rate := fleet.WireRateFor(spec.Opts)
	feasible := false
	for _, h := range c.hosts {
		if fp <= h.orch.RAMBudgetBytes() && wireFits(h, rate) {
			feasible = true
			break
		}
	}
	if !feasible {
		return fmt.Errorf("%w: %q needs %d bytes and %d B/s of idle uplink", ErrNeverPlaceable, spec.Name, fp, rate)
	}
	c.specs[spec.Name] = spec
	c.launchedAt[spec.Name] = c.eng.Now()
	if h := c.cfg.Policy.Pick(wireHosts(c.placeableHosts(), rate), fp); h != nil {
		return c.place(h, spec, nil)
	}
	c.enqueue(pendingLaunch{spec: spec, pri: spec.EffectivePriority()})
	// A queued launch is pressure only the autoscaler or the preemptor
	// can relieve when no host motion is in flight; evaluate now.
	c.onChange()
	return nil
}

// LaunchedAt returns when the cluster accepted a launch — the zero
// point for time-to-admit, which includes cluster-wide queueing.
func (c *Cluster) LaunchedAt(name string) (sim.Time, bool) {
	t, ok := c.launchedAt[name]
	return t, ok
}

// enqueue inserts into the cluster-wide queue in priority order:
// descending class, FIFO among equals — the same discipline the
// host-side admission semaphore enforces.
func (c *Cluster) enqueue(pl pendingLaunch) {
	at := len(c.pending)
	for i, x := range c.pending {
		if x.pri < pl.pri {
			at = i
			break
		}
	}
	c.pending = append(c.pending, pendingLaunch{})
	copy(c.pending[at+1:], c.pending[at:])
	c.pending[at] = pl
	if len(c.pending) > c.peakQueued {
		c.peakQueued = len(c.pending)
	}
}

// LaunchAll places a batch, returning the first hard error (other
// members still launch).
func (c *Cluster) LaunchAll(specs []fleet.Spec) error {
	var firstErr error
	for _, spec := range specs {
		if err := c.Launch(spec); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// place hands a spec to a host's orchestrator and records ownership;
// ownership is recorded only on success, and a rejected launch's
// failed stub (fleet registers one for a hard admission error) is
// detached so the name is not stranded on the host.
func (c *Cluster) place(h *Host, spec fleet.Spec, cp *fleet.Checkpoint) error {
	var m *fleet.Member
	var err error
	if cp != nil {
		m, err = h.orch.LaunchRestored(spec, *cp)
	} else {
		m, err = h.orch.Launch(spec)
	}
	if err != nil {
		h.orch.Detach(spec.Name) // best effort; no member may exist
		return err
	}
	c.placement[spec.Name] = h
	if cp != nil {
		// This is the deferred half of a migration whose first
		// destination failed: when the restore lands, count the move
		// and its download wire so MigrationWireBytes stays honest.
		c.watchRestored(h, m)
	}
	return nil
}

// watchRestored completes a re-queued migration's accounting once its
// vault restore reaches Running on the new host.
func (c *Cluster) watchRestored(h *Host, m *fleet.Member) {
	c.eng.Go("cluster/restored-"+m.Name(), func(p *sim.Proc) {
		for m.State() != fleet.StateRunning && m.State() != fleet.StateFailed {
			sim.Await(p, h.orch.ChangeFuture())
		}
		if m.State() == fleet.StateRunning && m.Nym() != nil {
			c.migrations++
			c.migrationWire += m.Nym().RestoreStats().DownloadedBytes
			c.notify()
		}
	})
}

// dispatch drains the cluster-wide queue in priority-FIFO order while
// the policy can place its head. A launch the chosen host rejects is
// recorded in launchErrs rather than silently dropped.
func (c *Cluster) dispatch() {
	for len(c.pending) > 0 {
		head := c.pending[0]
		hosts := wireHosts(c.placeableHosts(), fleet.WireRateFor(head.spec.Opts))
		h := c.cfg.Policy.Pick(hosts, head.spec.Opts.Footprint())
		if h == nil {
			return
		}
		c.pending = c.pending[1:]
		if err := c.place(h, head.spec, head.cp); err != nil {
			c.launchErrs[head.spec.Name] = err
		}
	}
}

// LaunchErrors returns launches the dispatcher could not place on the
// host the policy chose (keyed by nym name). Empty in healthy runs.
func (c *Cluster) LaunchErrors() map[string]error {
	out := make(map[string]error, len(c.launchErrs))
	for k, v := range c.launchErrs {
		out[k] = v
	}
	return out
}

// AwaitRunning parks the caller until target nyms run simultaneously
// across the pool, erroring instead of parking forever when nothing in
// flight can close the gap.
func (c *Cluster) AwaitRunning(p *sim.Proc, target int) error {
	for {
		if c.Running() >= target {
			return nil
		}
		if !c.anyPending() {
			return nymerr.Newf(CodeRampDead, "cluster: %d/%d running and nothing pending (%d failed)",
				c.Running(), target, c.countState(fleet.StateFailed))
		}
		c.parkOnChange(p)
	}
}

// AwaitSettled parks until no launch or teardown is in flight
// anywhere in the pool, no rebalance pass is running or armed to
// fire, and the autoscaler has no grow or drain in motion — a caller
// that reads a snapshot afterwards will not have it invalidated by
// work the daemons had already scheduled.
func (c *Cluster) AwaitSettled(p *sim.Proc) {
	for c.anyPending() || c.countState(fleet.StateStopping) > 0 ||
		c.rebalancing || c.rebalScheduled ||
		c.growing || c.growArmed || c.draining || c.shrinkArmed ||
		c.preempting || c.preemptArmed {
		c.parkOnChange(p)
	}
}

// anyPending reports whether any launch can still make progress: a
// host-side member mid-flight, or a cluster-wide queued spec that the
// autoscaler or the preemptor is still able to act on.
func (c *Cluster) anyPending() bool {
	inFlight := false
	for _, h := range c.hosts {
		if h.orch.CountState(fleet.StateStarting) > 0 ||
			h.orch.CountState(fleet.StateRestarting) > 0 ||
			h.orch.CountState(fleet.StateStopping) > 0 {
			inFlight = true
			break
		}
		if h.orch.CountState(fleet.StateQueued) > 0 && !h.orch.QueueStalled() {
			inFlight = true
			break
		}
	}
	if inFlight {
		return true
	}
	if len(c.pending) > 0 {
		// Nothing is moving host-side, but the queue is still pending
		// while elastic machinery can act: a grow (armed or
		// provisioning) will add capacity, a preemption pass will free
		// some, and a drain in flight re-places what it migrates.
		if c.growing || c.growArmed || c.preempting || c.preemptArmed || c.draining {
			return true
		}
	}
	// Only the cluster queue remains: it is pending only if something
	// could still place its head — and with nothing in flight, nothing
	// will. Report stalled (not pending) so waiters error out.
	return false
}

func (c *Cluster) countState(s fleet.MemberState) int {
	n := 0
	for _, h := range c.hosts {
		n += h.orch.CountState(s)
	}
	return n
}

// StopAll tears down every running member on every host in parallel.
func (c *Cluster) StopAll(p *sim.Proc) error {
	var futs []*sim.Future[struct{}]
	var errs []error
	for _, h := range c.hosts {
		h := h
		futs = append(futs, c.eng.Go("cluster/stop-"+h.name, func(sp *sim.Proc) {
			if err := h.orch.StopAll(sp); err != nil {
				errs = append(errs, err)
			}
		}))
	}
	for _, f := range futs {
		sim.Await(p, f)
	}
	return errors.Join(errs...)
}

// Stats is a point-in-time cluster snapshot.
type Stats struct {
	Hosts              int // pool members (excluding retired)
	ActiveHosts        int // hosts taking placements
	RetiredHosts       int // hosts drained and removed by the autoscaler
	Running            int
	QueuedClusterWide  int
	PeakQueued         int
	Migrations         int
	MigrationWireBytes int64
	GrowEvents         int                // hosts the autoscaler added
	ShrinkEvents       int                // hosts the autoscaler retired
	Preempted          fleet.PreemptStats // summed over all hosts, retired included
	PerHostRunning     []int
	PerHostShare       []float64
	PeakRAMBytes       int64 // max over hosts
	// WireReservedRate sums each active host's admitted idle uplink
	// (bytes/sec) — the pool's standing cover-traffic bill.
	WireReservedRate int64
}

// Snapshot gathers Stats.
func (c *Cluster) Snapshot() Stats {
	st := Stats{
		Hosts:              len(c.hosts),
		ActiveHosts:        c.ActiveHosts(),
		RetiredHosts:       len(c.retired),
		Running:            c.Running(),
		QueuedClusterWide:  len(c.pending),
		PeakQueued:         c.peakQueued,
		Migrations:         c.migrations,
		MigrationWireBytes: c.migrationWire,
		GrowEvents:         c.growEvents,
		ShrinkEvents:       c.shrinkEvents,
	}
	for _, h := range c.hosts {
		st.PerHostRunning = append(st.PerHostRunning, h.orch.Running())
		st.PerHostShare = append(st.PerHostShare, h.ReservedShare())
		st.WireReservedRate += h.orch.WireReservedRate()
		if peak := h.orch.PeakRAMBytes(); peak > st.PeakRAMBytes {
			st.PeakRAMBytes = peak
		}
		pre := h.orch.Preemptions()
		st.Preempted.Terminated += pre.Terminated
		st.Preempted.Evicted += pre.Evicted
	}
	for _, h := range c.retired {
		pre := h.orch.Preemptions()
		st.Preempted.Terminated += pre.Terminated
		st.Preempted.Evicted += pre.Evicted
	}
	return st
}
