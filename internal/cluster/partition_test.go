package cluster

import (
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// eastWest places even-indexed hosts in "east" and odd-indexed ones
// in "west".
func eastWest(i int) string {
	if i%2 == 0 {
		return "east"
	}
	return "west"
}

// clusterVault is the vault destination the cluster's sweeps and
// migrations write to (mirrors the cluster default config).
var testVault = core.VaultDest{
	Providers: []string{"dropbin"}, Account: "acct-part", AccountPassword: "cloud-pw",
}

// assertNoLeaks sums host reservations and compares against the
// footprints of the nyms that should still be placed.
func assertNoLeaks(t *testing.T, c *Cluster, want int64) {
	t.Helper()
	var got int64
	for _, h := range c.Hosts() {
		got += h.Fleet().ReservedBytes()
	}
	if got != want {
		t.Errorf("cluster reservations = %d bytes, want %d (leak or double-release)", got, want)
	}
}

// assertAllClassified fails on any failure record without a
// registered code and on any unclassifiable sweep error.
func assertAllClassified(t *testing.T, c *Cluster) {
	t.Helper()
	for _, h := range c.Hosts() {
		for _, f := range h.Fleet().Failures() {
			if f.Code == "" {
				t.Errorf("unclassified failure on %s: %s %s: %v", h.Name(), f.Member, f.Op, f.Err)
			}
		}
	}
	for _, err := range c.SweepErrors() {
		if nymerr.Classify(err) == "" {
			t.Errorf("unclassified sweep error: %v", err)
		}
	}
}

// TestMigrationCrossesAsymmetricPeerPartition: the source host can
// reach the cloud providers but not its migration peer — and in the
// second leg, the peer cannot reach it. Because the vault is the
// migration channel (no host-to-host traffic), both moves must
// succeed without falling back to an older checkpoint, leak nothing,
// and leave every recorded failure typed.
func TestMigrationCrossesAsymmetricPeerPartition(t *testing.T) {
	eng, c := newCluster(t, 31, 2, 16<<30, Config{RegionFor: eastWest})
	net := c.Hosts()[0].Manager().World().Net()
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		east, west := c.Hosts()[0], c.Hosts()[1]
		if got := east.Manager().Host().Node().Region(); got != "east" {
			t.Fatalf("host 0 region = %q", got)
		}
		var eastNym string
		for _, m := range east.Fleet().Members() {
			eastNym = m.Name()
		}
		if eastNym == "" {
			t.Fatal("no nym placed on the east host")
		}

		// Leg 1: the source can see the providers but not the peer.
		net.SeverRegionsOneWay("east", "west")
		if net.CanReach(east.Name(), west.Name(), "probe") {
			t.Error("east->west should be dark")
		}
		if !net.CanReach(west.Name(), east.Name(), "probe") {
			t.Error("west->east should still route")
		}
		if !net.CanReach(east.Name(), "cloud:dropbin", "https") || !net.CanReach(west.Name(), "cloud:dropbin", "https") {
			t.Error("both hosts must still reach the providers")
		}
		rep, err := c.MigrateNym(p, eastNym, west.Name())
		if err != nil {
			t.Errorf("migration across peer partition: %v", err)
			return
		}
		if rep.Retried {
			t.Error("peer partition forced a checkpoint fallback — the vault channel should not care")
		}
		if c.HostOf(eastNym) != west {
			t.Error("placement not updated")
		}

		// Leg 2: the reverse asymmetry — now the destination cannot
		// reach the source.
		net.HealRegions("east", "west")
		net.SeverRegionsOneWay("west", "east")
		rep, err = c.MigrateNym(p, eastNym, east.Name())
		if err != nil {
			t.Errorf("migration against reverse partition: %v", err)
			return
		}
		if rep.Retried {
			t.Error("reverse peer partition forced a fallback")
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	assertNoLeaks(t, c, 0)
	assertAllClassified(t, c)
}

// TestSweepRoundSurvivesPeerPartition: a full peer partition between
// the hosting regions does not touch sweep traffic — sweeps only talk
// to the providers — so rounds complete on both sides with zero
// errors.
func TestSweepRoundSurvivesPeerPartition(t *testing.T) {
	eng, c := newCluster(t, 33, 2, 16<<30, Config{RegionFor: eastWest})
	net := c.Hosts()[0].Manager().World().Net()
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		net.SeverRegions("east", "west")
		if err := c.StartSweeps(SweepConfig{Interval: 15 * time.Second, Tokens: 1, SaveAll: true}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		p.Sleep(50 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		if errs := c.SweepErrors(); len(errs) != 0 {
			t.Errorf("sweeps failed under a peer-only partition: %v", errs)
		}
		hosts := map[string]bool{}
		for _, s := range c.SweepSlots() {
			if !s.Paused && s.End > s.Start {
				hosts[s.Host] = true
			}
		}
		if len(hosts) != 2 {
			t.Errorf("sweeps completed on %d hosts, want both sides of the partition", len(hosts))
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	assertNoLeaks(t, c, 0)
	assertAllClassified(t, c)
}

// TestMigrationFallsBackWhenSourceProvidersSevered: the inverse
// asymmetry — the source host keeps its peer link but loses the
// providers. The migration's fresh save fails typed, the cluster
// falls back to the last vault checkpoint, and the nym lands on the
// destination with no reservation leaked on either side.
func TestMigrationFallsBackWhenSourceProvidersSevered(t *testing.T) {
	eng, c := newCluster(t, 37, 2, 16<<30, Config{RegionFor: eastWest})
	net := c.Hosts()[0].Manager().World().Net()
	var fp int64
	run(t, eng, func(p *sim.Proc) {
		opts := smallOpts(core.ModelPersistent)
		opts.GuardSeed = "carol"
		fp = opts.Footprint()
		if err := c.Launch(fleet.Spec{Name: "carol", Opts: opts}); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		src := c.HostOf("carol")
		dst := c.Hosts()[1]
		if src == dst {
			dst = c.Hosts()[0]
		}
		// A durable checkpoint from before the partition.
		if _, err := src.Fleet().CheckpointNym(p, "carol", "cluster-pw", testVault); err != nil {
			t.Errorf("pre-checkpoint: %v", err)
			return
		}
		srcRegion := src.Manager().Host().Node().Region()
		net.SeverRegions(srcRegion, webworld.CoreRegion)
		if net.CanReach(src.Name(), "cloud:dropbin", "https") {
			t.Fatal("source should have lost the providers")
		}
		rep, err := c.MigrateNym(p, "carol", dst.Name())
		if err != nil {
			t.Errorf("migration did not recover from the provider partition: %v", err)
			return
		}
		if !rep.Retried {
			t.Error("migration claims a fresh save succeeded without provider reach")
		}
		net.HealRegions(srcRegion, webworld.CoreRegion)
		m := c.Member("carol")
		if m == nil || m.State() != fleet.StateRunning || c.HostOf("carol") != dst {
			t.Fatal("carol did not land running on the destination")
		}
		if got := src.Fleet().ReservedBytes(); got != 0 {
			t.Errorf("source leaked %d reserved bytes", got)
		}
		if got := dst.Fleet().ReservedBytes(); got != fp {
			t.Errorf("destination reservation = %d, want %d", got, fp)
		}
	})
	assertAllClassified(t, c)
}
