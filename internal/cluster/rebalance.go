package cluster

import (
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/sim"
)

// RebalanceConfig tunes the hot-host rebalancer.
type RebalanceConfig struct {
	// Enabled arms the daemon; a disabled rebalancer costs nothing.
	Enabled bool
	// Interval spaces rebalance passes (default 30s).
	Interval time.Duration
	// HotShare marks a host hot when its reserved share of budget
	// exceeds it (default 0.85).
	HotShare float64
	// ColdShare is the ceiling a destination must sit under to
	// receive a migrated nym (default 0.6) — migrating onto a warm
	// host would just move the hot spot.
	ColdShare float64
	// MaxMovesPerPass bounds migrations per pass (default 2), so a
	// pass is a nudge, not a stampede of simultaneous vault restores.
	MaxMovesPerPass int
}

func (r *RebalanceConfig) fillDefaults() {
	if r.Interval <= 0 {
		r.Interval = 30 * time.Second
	}
	if r.HotShare <= 0 || r.HotShare > 1 {
		r.HotShare = 0.85
	}
	if r.ColdShare <= 0 || r.ColdShare >= r.HotShare {
		r.ColdShare = 0.6
	}
	if r.MaxMovesPerPass <= 0 {
		r.MaxMovesPerPass = 2
	}
}

// planMove computes the next rebalance move — the hottest host that
// actually has a migratable member AND a cold destination able to
// admit it — or nils when no move is possible. Arming (rebalanceNeeded)
// and execution (rebalancePass) share this one planner, so the timer
// can never re-arm for a pass that would make zero moves: a hot host
// full of ephemeral nyms, or a cold host without admission room, does
// not count as work.
func (c *Cluster) planMove() (*fleet.Member, *Host) {
	if !c.cfg.Rebalance.Enabled {
		return nil, nil
	}
	var bestM *fleet.Member
	var bestDst *Host
	var bestShare float64
	for _, h := range c.hosts {
		// Cordoned and draining hosts belong to the autoscaler's drain
		// path; the rebalancer must not fight it over their members.
		if !h.placeable() {
			continue
		}
		share := h.ReservedShare()
		if share <= c.cfg.Rebalance.HotShare || share <= bestShare {
			continue
		}
		m := c.coldestPersistent(h)
		if m == nil {
			continue
		}
		dst := c.coldDestination(h, m)
		if dst == nil {
			continue
		}
		bestM, bestDst, bestShare = m, dst, share
	}
	return bestM, bestDst
}

// rebalanceNeeded reports whether a pass could do useful work.
func (c *Cluster) rebalanceNeeded() bool {
	m, _ := c.planMove()
	return m != nil
}

// maybeScheduleRebalance arms one pass Interval out, the same
// state-driven idiom as the fleet's KSM daemon: the timer exists only
// while a pass could help, so a balanced (or idle) cluster leaves the
// event queue empty and the engine drainable.
func (c *Cluster) maybeScheduleRebalance() {
	if c.rebalScheduled || c.rebalancing || !c.rebalanceNeeded() {
		return
	}
	c.rebalScheduled = true
	c.eng.Schedule(c.cfg.Rebalance.Interval, func() {
		c.rebalScheduled = false
		if c.rebalancing || !c.rebalanceNeeded() {
			c.notify() // AwaitSettled watches rebalScheduled; wake it
			return
		}
		c.rebalancing = true
		c.eng.Go("cluster/rebalance", func(p *sim.Proc) {
			c.rebalancePass(p)
			c.rebalancing = false
			c.onChange() // re-arm if still hot, wake waiters
		})
	})
}

// rebalancePass migrates up to MaxMovesPerPass of the coldest
// persistent nyms off the hottest hosts toward the least-loaded cold
// hosts. Migration failures are absorbed: a failed destination
// restore re-queues the nym cluster-wide from its vault checkpoint
// (see MigrateNym), and a failed source save leaves the nym where it
// was for a later pass.
func (c *Cluster) rebalancePass(p *sim.Proc) {
	for moves := 0; moves < c.cfg.Rebalance.MaxMovesPerPass; moves++ {
		victim, dst := c.planMove()
		if victim == nil {
			return
		}
		c.MigrateNym(p, victim.Name(), dst.name)
	}
}

// coldestPersistent returns the host's longest-running persistent
// member — the nym least likely to be mid-interaction, and the one
// whose vault checkpoint is most amortized — or nil. Members already
// mid-migration are skipped.
func (c *Cluster) coldestPersistent(h *Host) *fleet.Member {
	var coldest *fleet.Member
	for _, m := range h.orch.Members() {
		if m.State() != fleet.StateRunning || m.Nym() == nil || m.Nym().Model() != core.ModelPersistent {
			continue
		}
		if c.migrating[m.Name()] {
			continue
		}
		if coldest == nil || m.RunningAt() < coldest.RunningAt() {
			coldest = m
		}
	}
	return coldest
}

// coldDestination returns the least-loaded host under the cold
// watermark that can admit the member's footprint and wire rate, or
// nil.
func (c *Cluster) coldDestination(src *Host, m *fleet.Member) *Host {
	return c.destinationUnder(src, m.Footprint(), m.WireRate(), c.cfg.Rebalance.ColdShare)
}

// destinationUnder returns the least-loaded placeable host (excluding
// src) whose reserved share sits strictly under shareCeiling and that
// can admit the footprint, or nil. The rebalancer caps the ceiling at
// its cold watermark (migrating onto a warm host would just move the
// hot spot); a drain passes a ceiling above 1 — any host with room
// will do.
func (c *Cluster) destinationUnder(src *Host, footprint, wireRate int64, shareCeiling float64) *Host {
	var best *Host
	var bestShare float64
	for _, h := range c.hosts {
		if h == src || !h.placeable() || !h.orch.CanAdmit(footprint) {
			continue
		}
		if wireRate > 0 && !h.orch.CanAdmitWire(wireRate) {
			continue
		}
		share := h.ReservedShare()
		if share >= shareCeiling {
			continue
		}
		if best == nil || share < bestShare {
			best, bestShare = h, share
		}
	}
	return best
}
