package cluster

import (
	"time"

	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// RebalanceConfig tunes the hot-host rebalancer.
type RebalanceConfig struct {
	// Enabled arms the daemon; a disabled rebalancer costs nothing.
	Enabled bool
	// Interval spaces rebalance passes (default 30s).
	Interval time.Duration
	// HotShare marks a host hot when its reserved share of budget
	// exceeds it (default 0.85). Explicit values above 1 are rejected.
	HotShare float64
	// ColdShare is the ceiling a destination must sit under to
	// receive a migrated nym (default 0.6, clamped strictly below
	// HotShare) — migrating onto a warm host would just move the hot
	// spot. Explicit values at or above HotShare are rejected: such a
	// pair would happily "rebalance" onto hosts as hot as the source.
	ColdShare float64
	// MaxMovesPerPass bounds migrations per pass (default 2), so a
	// pass is a nudge, not a stampede of simultaneous vault restores.
	MaxMovesPerPass int
	// CostAware picks each pass's victim by priced wire per byte of
	// pressure relieved — vault-index restore bytes plus unsaved
	// dirty delta, over footprint — instead of the longest-running
	// member. Cheap moves (warm vault, little dirt) win over moves
	// that would re-ship a nym's whole archive.
	CostAware bool
	// BatchIntoSweeps defers approved moves into the sweep
	// coordinator's idle slots (provider token held, nothing dirty to
	// save) instead of executing them on the rebalance timer — the
	// migration wire rides windows the cadence already paid for.
	// Without a running coordinator the queue would never drain, so
	// passes execute moves directly while no coordinator is
	// installed.
	BatchIntoSweeps bool
}

func (r *RebalanceConfig) fillDefaults() error {
	if r.Interval <= 0 {
		r.Interval = 30 * time.Second
	}
	if r.HotShare < 0 || r.HotShare > 1 {
		return nymerr.Newf(CodeBadWatermarks,
			"cluster: rebalance HotShare %.2f outside (0, 1]", r.HotShare)
	}
	if r.HotShare == 0 {
		r.HotShare = 0.85
	}
	if r.ColdShare < 0 {
		return nymerr.Newf(CodeBadWatermarks,
			"cluster: rebalance ColdShare %.2f negative", r.ColdShare)
	}
	if r.ColdShare == 0 {
		// The default cold watermark must sit strictly under the hot
		// one even when HotShare was set explicitly low: a 0.5 hot
		// watermark with the plain 0.6 default would declare every
		// destination at once too warm to receive and cool enough to
		// shed, and the pass would shuttle members onto hosts hotter
		// than the watermark that made them victims.
		r.ColdShare = 0.6
		if r.ColdShare >= r.HotShare {
			r.ColdShare = 0.75 * r.HotShare
		}
	} else if r.ColdShare >= r.HotShare {
		return nymerr.Newf(CodeBadWatermarks,
			"cluster: rebalance ColdShare %.2f must be strictly under HotShare %.2f",
			r.ColdShare, r.HotShare)
	}
	if r.MaxMovesPerPass <= 0 {
		r.MaxMovesPerPass = 2
	}
	return nil
}

// plannedMove is one approved rebalance move awaiting an idle sweep
// slot. The destination is re-validated at execution time — slots may
// run long after planning, and the pool may have shifted under it.
type plannedMove struct {
	name string
	dst  string
}

// planMove computes the next rebalance move — the hottest host that
// actually has a migratable member AND a cold destination able to
// admit it — or nils when no move is possible. Arming (rebalanceNeeded)
// and execution (rebalancePass) share this one planner, so the timer
// can never re-arm for a pass that would make zero moves: a hot host
// full of ephemeral nyms, or a cold host without admission room, does
// not count as work. skip holds member names this pass already tried
// (or queued): without it a victim whose migration failed would be
// re-picked by every remaining move budget in the same pass.
func (c *Cluster) planMove(skip map[string]bool) (*fleet.Member, *Host) {
	if !c.cfg.Rebalance.Enabled {
		return nil, nil
	}
	var bestM *fleet.Member
	var bestDst *Host
	var bestShare float64
	for _, h := range c.hosts {
		// Cordoned and draining hosts belong to the autoscaler's drain
		// path; the rebalancer must not fight it over their members.
		if !h.placeable() {
			continue
		}
		share := h.ReservedShare()
		if share <= c.cfg.Rebalance.HotShare || share <= bestShare {
			continue
		}
		m := c.pickVictim(h, skip)
		if m == nil {
			continue
		}
		dst := c.coldDestination(h, m)
		if dst == nil {
			continue
		}
		bestM, bestDst, bestShare = m, dst, share
	}
	return bestM, bestDst
}

// rebalanceNeeded reports whether a pass could do useful work. Moves
// already queued for idle slots don't count: re-planning them every
// Interval would queue the same member twice.
func (c *Cluster) rebalanceNeeded() bool {
	m, _ := c.planMove(c.moveQueued)
	return m != nil
}

// maybeScheduleRebalance arms one pass Interval out, the same
// state-driven idiom as the fleet's KSM daemon: the timer exists only
// while a pass could help, so a balanced (or idle) cluster leaves the
// event queue empty and the engine drainable.
func (c *Cluster) maybeScheduleRebalance() {
	if c.rebalScheduled || c.rebalancing || !c.rebalanceNeeded() {
		return
	}
	c.rebalScheduled = true
	c.eng.Schedule(c.cfg.Rebalance.Interval, func() {
		c.rebalScheduled = false
		if c.rebalancing || !c.rebalanceNeeded() {
			c.notify() // AwaitSettled watches rebalScheduled; wake it
			return
		}
		c.rebalancing = true
		c.eng.Go("cluster/rebalance", func(p *sim.Proc) {
			c.rebalancePass(p)
			c.rebalancing = false
			c.onChange() // re-arm if still hot, wake waiters
		})
	})
}

// rebalancePass plans up to MaxMovesPerPass moves off the hottest
// hosts toward the least-loaded cold hosts. With BatchIntoSweeps (and
// a coordinator running) approved moves queue for idle sweep slots;
// otherwise each executes here. Migration failures are absorbed: a
// failed destination restore re-queues the nym cluster-wide from its
// vault checkpoint (see MigrateNym), a failed source save leaves the
// nym where it was — and the victim is skipped for the rest of this
// pass, so the budget explores other members instead of burning every
// remaining move on the same failure.
func (c *Cluster) rebalancePass(p *sim.Proc) {
	attempted := make(map[string]bool, len(c.moveQueued))
	for name := range c.moveQueued {
		attempted[name] = true
	}
	batch := c.cfg.Rebalance.BatchIntoSweeps && c.sweepCfg != nil
	for moves := 0; moves < c.cfg.Rebalance.MaxMovesPerPass; moves++ {
		victim, dst := c.planMove(attempted)
		if victim == nil {
			return
		}
		attempted[victim.Name()] = true
		c.movesPlanned++
		if batch {
			c.pendingMoves = append(c.pendingMoves, plannedMove{name: victim.Name(), dst: dst.name})
			c.moveQueued[victim.Name()] = true
			continue
		}
		c.MigrateNym(p, victim.Name(), dst.name)
	}
}

// pickVictim selects the host's next move candidate: the cheapest
// priced move under CostAware, the longest-running persistent member
// otherwise. Members already mid-migration or in skip are excluded.
func (c *Cluster) pickVictim(h *Host, skip map[string]bool) *fleet.Member {
	if c.cfg.Rebalance.CostAware {
		return c.cheapestVictim(h, skip)
	}
	return c.coldestPersistent(h, skip)
}

// coldestPersistent returns the host's longest-running persistent
// member — the nym least likely to be mid-interaction, and the one
// whose vault checkpoint is most amortized — or nil.
func (c *Cluster) coldestPersistent(h *Host, skip map[string]bool) *fleet.Member {
	var coldest *fleet.Member
	for _, m := range h.orch.Members() {
		if !c.movable(m, skip) {
			continue
		}
		if coldest == nil || m.RunningAt() < coldest.RunningAt() {
			coldest = m
		}
	}
	return coldest
}

// cheapestVictim prices every movable member on the host by the wire
// its migration would actually ship — core.MigrationCost's vault-index
// restore bytes plus the unsaved dirty delta — per byte of host
// pressure relieved (the footprint), and returns the minimum. A cold
// index prices as a full-footprint restore rather than as free: a nym
// this manager has never saved is the most expensive possible move,
// not the best one.
func (c *Cluster) cheapestVictim(h *Host, skip map[string]bool) *fleet.Member {
	var best *fleet.Member
	var bestScore float64
	for _, m := range h.orch.Members() {
		if !c.movable(m, skip) {
			continue
		}
		fp := m.Footprint()
		if fp <= 0 {
			continue
		}
		cost := h.mgr.MigrationCost(m.Nym(), c.cfg.DestFor(m.Name()))
		wire := cost.Wire()
		if cost.RestoreBytes == 0 {
			wire += fp
		}
		score := float64(wire) / float64(fp)
		if best == nil || score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// movable reports whether the member is a legal rebalance victim.
func (c *Cluster) movable(m *fleet.Member, skip map[string]bool) bool {
	if m.State() != fleet.StateRunning || m.Nym() == nil || m.Nym().Model() != core.ModelPersistent {
		return false
	}
	return !c.migrating[m.Name()] && !skip[m.Name()]
}

// coldDestination returns the least-loaded host under the cold
// watermark that can admit the member's footprint and wire rate, or
// nil.
func (c *Cluster) coldDestination(src *Host, m *fleet.Member) *Host {
	return c.destinationUnder(src, m.Footprint(), m.WireRate(), c.cfg.Rebalance.ColdShare)
}

// destinationUnder returns the least-loaded placeable host (excluding
// src) whose reserved share sits strictly under shareCeiling and that
// can admit the footprint, or nil. The rebalancer caps the ceiling at
// its cold watermark (migrating onto a warm host would just move the
// hot spot); a drain passes a ceiling above 1 — any host with room
// will do.
func (c *Cluster) destinationUnder(src *Host, footprint, wireRate int64, shareCeiling float64) *Host {
	var best *Host
	var bestShare float64
	for _, h := range c.hosts {
		if h == src || !h.placeable() || !h.orch.CanAdmit(footprint) {
			continue
		}
		if wireRate > 0 && !h.orch.CanAdmitWire(wireRate) {
			continue
		}
		share := h.ReservedShare()
		if share >= shareCeiling {
			continue
		}
		if best == nil || share < bestShare {
			best, bestShare = h, share
		}
	}
	return best
}
