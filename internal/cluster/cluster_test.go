package cluster

import (
	"fmt"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/fleet"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// smallOpts is the 400 MiB test nymbox.
func smallOpts(model core.UsageModel) core.Options {
	return core.Options{
		Model:    model,
		AnonRAM:  256 * guestos.MiB,
		AnonDisk: 64 * guestos.MiB,
		CommRAM:  64 * guestos.MiB,
		CommDisk: 16 * guestos.MiB,
	}
}

func specs(n int, model core.UsageModel) []fleet.Spec {
	out := make([]fleet.Spec, n)
	for i := range out {
		name := fmt.Sprintf("nym%02d", i)
		opts := smallOpts(model)
		if model == core.ModelPersistent {
			opts.GuardSeed = name
		}
		out[i] = fleet.Spec{Name: name, Opts: opts}
	}
	return out
}

// newCluster builds a pool of small hosts (hostRAM each, 4 cores).
func newCluster(t *testing.T, seed uint64, hosts int, hostRAM int64, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	cfg.Hosts = hosts
	cfg.HostConfig = hypervisor.Config{RAMBytes: hostRAM, CPU: cpusched.DefaultConfig()}
	c, err := New(eng, world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.Run()
}

func TestLeastReservedSpreadsAcrossHosts(t *testing.T) {
	eng, c := newCluster(t, 3, 2, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(6, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 6); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	st := c.Snapshot()
	if st.Running != 6 {
		t.Fatalf("running = %d", st.Running)
	}
	for i, n := range st.PerHostRunning {
		if n != 3 {
			t.Fatalf("host %d runs %d nyms, want an even 3/3 split (%v)", i, n, st.PerHostRunning)
		}
	}
}

func TestPackFirstFillsHostsInOrder(t *testing.T) {
	// A 2 GiB host admits two 400 MiB nymboxes (0.9 headroom minus the
	// ~715 MiB hypervisor baseline).
	eng, c := newCluster(t, 5, 2, 2<<30, Config{Policy: PackFirst{}})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(3, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	st := c.Snapshot()
	if st.PerHostRunning[0] != 2 || st.PerHostRunning[1] != 1 {
		t.Fatalf("pack-first placement = %v, want [2 1]", st.PerHostRunning)
	}
}

func TestClusterWideQueueDispatchesWhenCapacityFrees(t *testing.T) {
	// Two 2-nym hosts, six launches: four place, two queue cluster-wide.
	eng, c := newCluster(t, 7, 2, 2<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(6, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await 4: %v", err)
		}
		if got := c.QueuedClusterWide(); got != 2 {
			t.Errorf("cluster queue = %d, want 2", got)
		}
		// No host-local queueing: the placement layer holds the overflow.
		for _, h := range c.Hosts() {
			if q := h.Fleet().QueuedLaunches(); q != 0 {
				t.Errorf("%s has %d host-local queued launches", h.Name(), q)
			}
		}
		// Freeing one host dispatches the queue without new Launch calls.
		if err := c.Hosts()[0].Fleet().StopAll(p); err != nil {
			t.Errorf("stop host0: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await redispatch: %v", err)
		}
	})
	if got := c.QueuedClusterWide(); got != 0 {
		t.Fatalf("cluster queue = %d after capacity freed", got)
	}
	if got := c.PeakQueued(); got != 2 {
		t.Fatalf("peak queued = %d, want 2", got)
	}
	if got := c.Running(); got != 4 {
		t.Fatalf("running = %d, want 4 (2 stopped + 2 dispatched)", got)
	}
}

func TestAwaitRunningErrorsWhenNothingPending(t *testing.T) {
	eng, c := newCluster(t, 9, 2, 2<<30, Config{})
	var awaitErr error
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(6, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await 4: %v", err)
		}
		// Six can never run at once on four slots; with nothing in
		// flight the wait must error, not park forever.
		awaitErr = c.AwaitRunning(p, 6)
	})
	if awaitErr == nil {
		t.Fatal("AwaitRunning(6) on a 4-slot pool returned nil")
	}
}

func TestLaunchRejectsImpossibleFootprint(t *testing.T) {
	eng, c := newCluster(t, 11, 2, 2<<30, Config{})
	opts := smallOpts(core.ModelEphemeral)
	opts.AnonRAM = 8 << 30
	err := c.Launch(fleet.Spec{Name: "whale", Opts: opts})
	if err == nil {
		t.Fatal("launch of an unplaceable footprint succeeded")
	}
	eng.Run()
	if c.QueuedClusterWide() != 0 {
		t.Fatal("unplaceable launch left a queue entry")
	}
}

func TestMigratePreservesIdentityAcrossHosts(t *testing.T) {
	eng, c := newCluster(t, 13, 2, 16<<30, Config{})
	world := c.Hosts()[0].Manager().World()
	var rep MigrationReport
	var fp int64
	run(t, eng, func(p *sim.Proc) {
		opts := smallOpts(core.ModelPersistent)
		opts.GuardSeed = "alice"
		if err := c.Launch(fleet.Spec{Name: "alice", Opts: opts}); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		fp = opts.Footprint()
		if err := c.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		src := c.HostOf("alice")
		if _, err := c.Member("alice").Nym().Browser().Login(p, "twitter.com", "alice-handle", "pw"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		dst := c.Hosts()[1]
		if src == dst {
			dst = c.Hosts()[0]
		}
		var err error
		rep, err = c.MigrateNym(p, "alice", dst.Name())
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		// The source kept nothing: no nyms, no VMs, no reservation.
		if got := src.Manager().RunningNyms(); got != 0 {
			t.Errorf("source running nyms = %d", got)
		}
		if got := src.Manager().Host().VMCount(); got != 0 {
			t.Errorf("source VMs = %d", got)
		}
		if got := src.Fleet().ReservedBytes(); got != 0 {
			t.Errorf("source reservation = %d bytes leaked", got)
		}
		if got := dst.Fleet().ReservedBytes(); got != fp {
			t.Errorf("destination reservation = %d, want %d", got, fp)
		}
		if c.HostOf("alice") != dst {
			t.Error("placement not updated")
		}
		m := c.Member("alice")
		if m == nil || m.State() != fleet.StateRunning {
			t.Fatalf("alice not running on destination")
		}
		if m.Nym().Cycles() == 0 {
			t.Error("restored nym carries no save cycle — booted blank?")
		}
		// Tracker-visible identity survives the move: the site sees the
		// same cookie from the new host.
		if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
			t.Errorf("revisit: %v", err)
			return
		}
		visits := world.Site("twitter.com").Visits()
		if first, last := visits[0], visits[len(visits)-1]; first.CookieID != last.CookieID {
			t.Errorf("cookie changed across migration: %q -> %q", first.CookieID, last.CookieID)
		}
		if cred, ok := m.Nym().Browser().Credentials("twitter.com"); !ok || cred.Account != "alice-handle" {
			t.Errorf("credentials lost in flight: %+v %v", cred, ok)
		}
	})
	if rep.WireBytes <= 0 {
		t.Fatalf("migration wire bytes = %d", rep.WireBytes)
	}
	if c.Migrations() != 1 || c.MigrationWireBytes() != rep.WireBytes {
		t.Fatalf("migration accounting: %d moves, %d bytes", c.Migrations(), c.MigrationWireBytes())
	}
	if rep.Retried {
		t.Fatal("clean migration reported a retry")
	}
}

// TestCrashDuringMigrationRetriesFromCheckpoint is the regression for
// the migration crash window: the nym dies (FailNym) while the
// source-side save is in flight, so the fresh checkpoint fails — the
// cluster must fall back to the last recorded vault checkpoint,
// restore on the destination, and leak a reservation on neither host.
func TestCrashDuringMigrationRetriesFromCheckpoint(t *testing.T) {
	eng, c := newCluster(t, 17, 2, 16<<30, Config{
		Fleet: fleet.Config{Restart: fleet.RestartPolicy{MaxRestarts: 0}},
	})
	var rep MigrationReport
	var migErr error
	var fp int64
	run(t, eng, func(p *sim.Proc) {
		opts := smallOpts(core.ModelPersistent)
		opts.GuardSeed = "bob"
		if err := c.Launch(fleet.Spec{Name: "bob", Opts: opts}); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		fp = opts.Footprint()
		if err := c.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		src := c.HostOf("bob")
		dst := c.Hosts()[1]
		if src == dst {
			dst = c.Hosts()[0]
		}
		// A durable checkpoint exists from before the crash.
		if _, err := src.Fleet().CheckpointNym(p, "bob", "cluster-pw", core.VaultDest{
			Providers: []string{"dropbin"}, Account: "acct-bob", AccountPassword: "cloud-pw",
		}); err != nil {
			t.Errorf("pre-checkpoint: %v", err)
			return
		}
		// Start the migration on its own process, then crash the nym
		// while the migration's fresh save is still in flight.
		done := eng.Go("migrate", func(mp *sim.Proc) {
			rep, migErr = c.MigrateNym(mp, "bob", dst.Name())
		})
		p.Sleep(200 * time.Millisecond)
		if err := src.Fleet().FailNym(p, "bob", nil); err != nil {
			t.Errorf("inject crash: %v", err)
		}
		sim.Await(p, done)
		if migErr != nil {
			t.Errorf("migration did not recover from the crash: %v", migErr)
			return
		}
		if !rep.Retried {
			t.Error("migration did not report the checkpoint retry")
		}
		m := c.Member("bob")
		if m == nil || m.State() != fleet.StateRunning {
			t.Fatal("bob not running on the destination after the crash")
		}
		if c.HostOf("bob") != dst {
			t.Error("placement not moved to the destination")
		}
		// The restored state is the pre-crash checkpoint, not a blank boot.
		if m.Nym().Cycles() == 0 {
			t.Error("bob restored blank instead of from the vault checkpoint")
		}
		// Neither host leaks a reservation: the crash released the
		// source's, the destination holds exactly one footprint.
		if got := src.Fleet().ReservedBytes(); got != 0 {
			t.Errorf("source reservation leaked: %d bytes", got)
		}
		if got := dst.Fleet().ReservedBytes(); got != fp {
			t.Errorf("destination reservation = %d, want %d", got, fp)
		}
		if got := src.Manager().Host().VMCount(); got != 0 {
			t.Errorf("source VMs = %d after crash + migration", got)
		}
	})
}

// Regression: two concurrent migrations of one nym (a user move
// racing a rebalance pass) must resolve to one winner — the loser
// errors immediately instead of parking forever on a member the
// winner already detached.
func TestConcurrentMigrationsResolveToOneWinner(t *testing.T) {
	eng, c := newCluster(t, 29, 2, 16<<30, Config{})
	var err1, err2 error
	run(t, eng, func(p *sim.Proc) {
		opts := smallOpts(core.ModelPersistent)
		opts.GuardSeed = "carol"
		if err := c.Launch(fleet.Spec{Name: "carol", Opts: opts}); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := c.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		src := c.HostOf("carol")
		dst := c.Hosts()[1]
		if src == dst {
			dst = c.Hosts()[0]
		}
		d1 := eng.Go("mig1", func(mp *sim.Proc) { _, err1 = c.MigrateNym(mp, "carol", dst.Name()) })
		d2 := eng.Go("mig2", func(mp *sim.Proc) { _, err2 = c.MigrateNym(mp, "carol", dst.Name()) })
		sim.Await(p, d1)
		sim.Await(p, d2)
	})
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("want exactly one migration winner: err1=%v err2=%v", err1, err2)
	}
	if c.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", c.Migrations())
	}
	m := c.Member("carol")
	if m == nil || m.State() != fleet.StateRunning {
		t.Fatal("carol not running after the race")
	}
	total := int64(0)
	for _, h := range c.Hosts() {
		total += h.Fleet().ReservedBytes()
	}
	if total != m.Footprint() {
		t.Fatalf("reserved across pool = %d, want exactly one footprint %d", total, m.Footprint())
	}
}

func TestRebalancerDrainsHotHost(t *testing.T) {
	// Pack-first piles every nym on host 0; the rebalancer must notice
	// the hot host and migrate persistent nyms toward the idle one.
	eng, c := newCluster(t, 19, 2, 4<<30, Config{
		Policy: PackFirst{},
		Rebalance: RebalanceConfig{
			Enabled:         true,
			Interval:        10 * time.Second,
			HotShare:        0.5,
			ColdShare:       0.45,
			MaxMovesPerPass: 1,
		},
	})
	run(t, eng, func(p *sim.Proc) {
		if err := c.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
		}
		if got := c.Hosts()[0].Fleet().Running(); got != 4 {
			t.Errorf("pack-first put %d on host0, want 4", got)
		}
	})
	// Engine.Run drained: the rebalancer has converged and disarmed.
	if c.Migrations() == 0 {
		t.Fatal("rebalancer moved nothing off the hot host")
	}
	st := c.Snapshot()
	if st.Running != 4 {
		t.Fatalf("running = %d after rebalance", st.Running)
	}
	for i, share := range st.PerHostShare {
		if share > 0.5+1e-9 {
			t.Fatalf("host %d still hot after rebalance: share %.2f (%v)", i, share, st.PerHostShare)
		}
	}
	if st.MigrationWireBytes <= 0 {
		t.Fatal("no cross-host wire accounted")
	}
}

func TestClusterDeterministic(t *testing.T) {
	sample := func() (time.Duration, int, int64) {
		eng, c := newCluster(t, 23, 2, 4<<30, Config{})
		var done time.Duration
		run(t, eng, func(p *sim.Proc) {
			c.LaunchAll(specs(8, core.ModelEphemeral))
			if err := c.AwaitRunning(p, 8); err != nil {
				t.Errorf("await: %v", err)
			}
			done = p.Now()
		})
		st := c.Snapshot()
		return done, st.PeakQueued, st.PeakRAMBytes
	}
	d1, q1, r1 := sample()
	d2, q2, r2 := sample()
	if d1 != d2 || q1 != q2 || r1 != r2 {
		t.Fatalf("cluster not reproducible: %v/%d/%d vs %v/%d/%d", d1, q1, r1, d2, q2, r2)
	}
}
