// Package cluster shards nym fleets across an elastic pool of
// simulated Nymix hosts behind a placement layer — the step from one
// machine running hundreds of nyms (internal/fleet) toward a
// production service running millions. The paper's NymBox model binds
// every nym to the one host the user sits at; a multi-tenant service
// instead treats a nym's durable identity (its NymVault checkpoint)
// as the primary object and the host it executes on as a scheduling
// decision.
//
// Five mechanisms do the work:
//
//   - Placement. Every host wraps its own hypervisor, Nym Manager,
//     and fleet orchestrator; all hosts share one simulated Internet
//     and one cloud-provider set. A pluggable policy places each
//     launch by consulting per-host admission headroom
//     (ReservedBytes/RAMBudgetBytes); when every host is saturated
//     the launch queues cluster-wide in priority-FIFO order
//     (descending fleet.Priority, FIFO among equals) and is
//     dispatched as soon as any host frees capacity.
//   - Live migration. MigrateNym checkpoints a nym through the
//     NymVault on its source host, tears the source nymbox down, and
//     restores the checkpoint on the destination — the same
//     save-on-A/load-on-B channel a user roaming between machines
//     would use, so pseudonym identity (disks, cookies, guard,
//     credentials) survives the move byte-identically. A crash
//     between the source save and the destination restore is retried
//     from the last durable checkpoint.
//   - Rebalancing. A state-driven daemon watches per-host reserved
//     shares and migrates the coldest persistent nyms off hot hosts
//     (share above a watermark) toward underloaded ones, so a
//     pack-first ramp or a skewed teardown converges back to an even
//     spread without operator action.
//   - Autoscaling. The pool itself is elastic: a cluster-wide queue
//     that persists past a dwell provisions a new host (up to
//     MaxHosts), and a pool idling under the shrink watermark
//     cordons its least-loaded host, drains every live nym off it via
//     MigrateNym, and retires it (down to MinHosts). Hosts walk
//     Active -> Cordoned -> Draining -> Retired; operators can drive
//     the same path by hand with Cordon/Uncordon/RetireHost.
//   - Preemption. A high-priority launch stuck at the head of the
//     cluster-wide queue past its dwell sacrifices strictly-lower
//     classes on the cheapest host (fleet.PreemptOne: ephemeral nyms
//     terminated, persistent ones vaulted and evicted), so System
//     work lands in seconds while a new host is still provisioning.
//   - Coordinated sweeps. StartSweeps runs the cluster-wide
//     checkpoint coordinator: each round assigns every host one
//     stagger slot (Interval/N apart) and a token gate bounds how
//     many hosts may be on the shared providers at once, so N
//     per-host schedulers never herd the providers simultaneously.
//     Hosts out of Active duty are paused — the drain path
//     checkpoints their nyms itself — and a per-slot log plus
//     ClusterSweepReport surface wire bytes, dirty-skip ratio, and
//     sweep latency percentiles pool-wide.
//
// Every daemon is armed state-driven, the same idiom as the fleet's
// KSM pacing: timers exist only while a pass could help, so a
// balanced, idle, or floor-sized cluster leaves the event queue empty
// and the engine drainable. The sweep coordinator is the deliberate
// exception — periodic checkpointing is open-ended work, so its
// lifetime belongs to the caller via StartSweeps/StopSweeps.
package cluster
