package cluster

// The cluster-wide sweep coordinator. Every host runs the same
// checkpoint workload against the same shared cloud providers, so N
// independent per-host sweep schedulers firing on the same interval
// would herd all N hosts onto the providers at once — exactly the
// thundering-herd the ROADMAP's cluster-aware-sweeps item forbids.
// The coordinator owns the cadence instead: each round, every pool
// host is assigned one stagger slot (an Interval/N offset from the
// round start), and a token gate bounds how many hosts may be on the
// providers simultaneously no matter how far a slow sweep overruns
// its slot. Hosts that are Cordoned, Draining, or Retired at their
// slot are paused — a draining host's nyms are being checkpointed by
// the migration path already, and sweeping them here would only burn
// wire on state the drain is about to save again.

import (
	"fmt"
	"time"

	"nymix/internal/cloud"
	"nymix/internal/core"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// ErrSweepsRunning is returned by StartSweeps when a coordinator is
// already installed.
var ErrSweepsRunning = nymerr.New(CodeSweepsRunning, "cluster: sweep coordinator already running")

// SweepConfig parameterizes the cluster sweep coordinator. Zero
// values take defaults.
type SweepConfig struct {
	// Interval is one full stagger round: every pool host gets one
	// slot per round, Interval/hosts apart (default 30s).
	Interval time.Duration
	// Tokens bounds how many hosts may sweep the shared providers
	// concurrently (default 1). Slots stagger sweep *starts*; the
	// token gate is the hard cap that holds even when a sweep
	// overruns its slot.
	Tokens int
	// Stagger and Concurrency tune each host's pass (fleet defaults).
	Stagger     time.Duration
	Concurrency int
	// SaveAll disables dirty-skip on every host (the naive mode).
	SaveAll bool
	// Adaptive turns on each host pass's churn-adaptive cadence: a
	// member is saved when its dirty delta crosses TargetDeltaBytes
	// or its RPO deadline nears, and deferred otherwise (see
	// fleet.SweepConfig). The coordinator passes each host an honest
	// next-pass horizon of two Intervals — its slot cadence plus one
	// skipped round.
	Adaptive bool
	// RPO is the per-member staleness ceiling the adaptive cadence
	// enforces (fleet default when zero).
	RPO time.Duration
	// RPOFor overrides RPO per member (fleet semantics).
	RPOFor func(*fleet.Member) time.Duration
	// TargetDeltaBytes is the dirty delta worth a save (fleet default
	// when zero).
	TargetDeltaBytes int64
	// GC prunes dead vault chunks opportunistically during idle slots
	// — the provider token is held and the host had nothing dirty, so
	// the reclaim wire rides a window the cadence already paid for.
	GC bool
	// GCPerSlot bounds members GC'd per idle slot (default 2).
	GCPerSlot int
	// Password seals checkpoints (default: the cluster's
	// VaultPassword). DestFor maps nym names to vault destinations
	// (default: the cluster's DestFor).
	Password string
	DestFor  func(name string) core.VaultDest
}

func (sc *SweepConfig) fillDefaults(c *Config) {
	if sc.Interval <= 0 {
		sc.Interval = 30 * time.Second
	}
	if sc.Tokens <= 0 {
		sc.Tokens = 1
	}
	if sc.GCPerSlot <= 0 {
		sc.GCPerSlot = 2
	}
	if sc.Password == "" {
		sc.Password = c.VaultPassword
	}
	if sc.DestFor == nil {
		sc.DestFor = c.DestFor
	}
}

// SweepSlot records one host's stagger slot in one coordinator round:
// when the host held the provider token and what its pass did. Paused
// slots (host not Active at slot time) hold no token and save
// nothing.
type SweepSlot struct {
	Round int
	Slot  int
	Host  string
	// Start/End bracket the token hold — the window in which this
	// host was on the shared providers. The coordinator's invariant
	// is that at most Tokens of these windows ever overlap.
	Start, End sim.Time
	Paused     bool
	Record     fleet.SweepRecord
	// Idle marks a slot whose pass saved nothing and erred nowhere —
	// the windows the coordinator spends on batched rebalance moves
	// and opportunistic GC, recorded below.
	Idle             bool
	Moves            int // batched rebalance moves executed in this slot
	MovesDropped     int // queued moves discarded as stale in this slot
	GCRuns           int // members garbage-collected in this slot
	GCReclaimedBytes int64
	GCWireBytes      int64
}

// ClusterSweepReport aggregates coordinator telemetry across rounds
// and hosts.
type ClusterSweepReport struct {
	Rounds int
	// RoundsSkipped counts ticks the coordinator sat out because the
	// previous round's slots were still draining through the token
	// gate — sustained skipping means the interval is shorter than
	// the pool's serialized sweep time.
	RoundsSkipped int
	HostSweeps    int // completed per-host passes
	Paused        int // slots skipped on non-Active hosts
	Eligible      int
	Saves         int
	Skips         int
	// Busy counts members a pass left to another save already in
	// flight (a migration checkpoint, an eviction): counted eligible
	// but neither saved nor skipped-clean, so Saves+Skips+Busy+Errors
	// accounts for Eligible pool-wide. Deferred counts members the
	// adaptive cadence postponed (dirty, but under the delta target
	// with RPO headroom) — with Adaptive on, Deferred joins that
	// accounting identity.
	Busy     int
	Deferred int
	Errors   int
	// UploadedBytes/LoginBytes/BaselineBytes sum over host passes.
	UploadedBytes int64
	LoginBytes    int64
	BaselineBytes int64
	// NewChunks/TotalChunks sum each saved checkpoint's uploaded and
	// full manifest chunk counts pool-wide — the dedup ratio.
	NewChunks   int
	TotalChunks int
	// LatencyP50/P95 are nearest-rank percentiles over per-host pass
	// latencies.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	// StalenessP50/P95/Max are percentiles over per-save checkpoint
	// staleness, pooled across every host's samples so each save
	// weighs equally (not an average of per-host quantiles).
	StalenessP50 time.Duration
	StalenessP95 time.Duration
	StalenessMax time.Duration
	// Idle-slot economy: slots with nothing dirty, the batched
	// rebalance moves and opportunistic GC they absorbed, and what
	// the GC paid (wire) and recovered (provider bytes).
	IdleSlots        int
	MovesPlanned     int
	MovesExecuted    int
	MovesDropped     int
	GCRuns           int
	GCReclaimedBytes int64
	GCWireBytes      int64
	Slots            []SweepSlot
}

// WireBytes is the total checkpoint wire across the pool.
func (r ClusterSweepReport) WireBytes() int64 { return r.UploadedBytes + r.LoginBytes }

// DirtySkipRatio is the pool-wide fraction of eligible member-passes
// skipped as clean.
func (r ClusterSweepReport) DirtySkipRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Skips) / float64(r.Eligible)
}

// StartSweeps installs the coordinator: the first round begins one
// Interval from now and rounds repeat until StopSweeps. Each round
// snapshots the pool and assigns slots in pool order, so hosts the
// autoscaler adds join the stagger on the next round.
func (c *Cluster) StartSweeps(cfg SweepConfig) error {
	if c.sweepCfg != nil {
		return ErrSweepsRunning
	}
	cfg.fillDefaults(&c.cfg)
	c.sweepCfg = &cfg
	c.sweepTimer = c.eng.Schedule(cfg.Interval, c.sweepRoundTick)
	return nil
}

// StopSweeps uninstalls the coordinator. Slot passes already in
// flight complete; no further round is scheduled.
func (c *Cluster) StopSweeps() {
	if c.sweepTimer != nil {
		c.sweepTimer.Cancel()
		c.sweepTimer = nil
	}
	c.sweepCfg = nil
}

// AwaitSweepsIdle parks the caller until no slot pass is in flight.
func (c *Cluster) AwaitSweepsIdle(p *sim.Proc) {
	for c.sweepInFlight > 0 {
		c.parkOnChange(p)
	}
}

// SweepSlots returns the coordinator's slot log in completion order.
func (c *Cluster) SweepSlots() []SweepSlot {
	return append([]SweepSlot(nil), c.slotLog...)
}

// SweepErrors returns every error a coordinator slot pass produced, in
// completion order. Empty in healthy runs; chaos suites assert each
// entry classifies to a registered code.
func (c *Cluster) SweepErrors() []error {
	return append([]error(nil), c.sweepErrs...)
}

// SweepReport aggregates the slot log.
func (c *Cluster) SweepReport() ClusterSweepReport {
	rep := ClusterSweepReport{
		Rounds:        c.sweepRounds,
		RoundsSkipped: c.sweepRoundsSkipped,
		Slots:         c.SweepSlots(),
	}
	rep.MovesPlanned = c.movesPlanned
	var lats []time.Duration
	for _, s := range c.slotLog {
		if s.Paused {
			rep.Paused++
			continue
		}
		rep.HostSweeps++
		rep.Eligible += s.Record.Eligible
		rep.Saves += s.Record.Saves
		rep.Skips += s.Record.Skipped
		rep.Busy += s.Record.Busy
		rep.Deferred += s.Record.Deferred
		rep.Errors += s.Record.Errors
		rep.UploadedBytes += s.Record.UploadedBytes
		rep.LoginBytes += s.Record.LoginBytes
		rep.BaselineBytes += s.Record.BaselineBytes
		rep.NewChunks += s.Record.NewChunks
		rep.TotalChunks += s.Record.TotalChunks
		if s.Idle {
			rep.IdleSlots++
		}
		rep.MovesExecuted += s.Moves
		rep.MovesDropped += s.MovesDropped
		rep.GCRuns += s.GCRuns
		rep.GCReclaimedBytes += s.GCReclaimedBytes
		rep.GCWireBytes += s.GCWireBytes
		lats = append(lats, s.Record.Elapsed)
	}
	rep.LatencyP50 = fleet.LatencyPercentile(lats, 0.50)
	rep.LatencyP95 = fleet.LatencyPercentile(lats, 0.95)
	var stale []time.Duration
	for _, h := range c.hosts {
		stale = append(stale, h.orch.CheckpointStaleness()...)
	}
	for _, h := range c.retired {
		stale = append(stale, h.orch.CheckpointStaleness()...)
	}
	rep.StalenessP50 = fleet.LatencyPercentile(stale, 0.50)
	rep.StalenessP95 = fleet.LatencyPercentile(stale, 0.95)
	for _, s := range stale {
		if s > rep.StalenessMax {
			rep.StalenessMax = s
		}
	}
	return rep
}

// sweepRoundTick launches one coordinator round and re-arms the next.
func (c *Cluster) sweepRoundTick() {
	cfg := c.sweepCfg
	if cfg == nil {
		return
	}
	if c.sweepInFlight > 0 {
		// The previous round's slots are still draining through the
		// token gate. Spawning another round on top would grow the
		// backlog without bound and re-save hosts back-to-back; skip
		// this round and try again next Interval (the same overrun
		// guard the fleet scheduler applies to its ticks).
		c.sweepRoundsSkipped++
		c.sweepTimer = c.eng.Schedule(cfg.Interval, c.sweepRoundTick)
		return
	}
	round := c.sweepRounds
	c.sweepRounds++
	hosts := append([]*Host(nil), c.hosts...)
	if len(hosts) > 0 {
		gap := cfg.Interval / time.Duration(len(hosts))
		for i, h := range hosts {
			i, h := i, h
			c.sweepInFlight++
			c.eng.Go("cluster/sweep-"+h.name, func(p *sim.Proc) {
				defer func() {
					c.sweepInFlight--
					c.notify()
				}()
				p.Sleep(time.Duration(i) * gap)
				c.sweepSlot(p, cfg, round, i, h)
			})
		}
	}
	c.sweepTimer = c.eng.Schedule(cfg.Interval, c.sweepRoundTick)
}

// sweepSlot runs one host's slot: pause if the host left Active duty
// (its nyms are being drained through the migration path, which
// checkpoints them itself), otherwise take a provider token and run
// the host's dirty-skipping pass.
func (c *Cluster) sweepSlot(p *sim.Proc, cfg *SweepConfig, round, slot int, h *Host) {
	if !h.placeable() {
		c.slotLog = append(c.slotLog, SweepSlot{
			Round: round, Slot: slot, Host: h.name,
			Start: p.Now(), End: p.Now(), Paused: true,
		})
		return
	}
	for c.sweepTokensHeld >= cfg.Tokens {
		c.parkOnChange(p)
	}
	// The token wait yields; the host may have been cordoned or put
	// into a drain while this slot was parked. Sweeping it now would
	// race the drain's own checkpoints, so re-check and pause instead.
	if !h.placeable() {
		c.slotLog = append(c.slotLog, SweepSlot{
			Round: round, Slot: slot, Host: h.name,
			Start: p.Now(), End: p.Now(), Paused: true,
		})
		c.notify()
		return
	}
	c.sweepTokensHeld++
	start := p.Now()
	destFor := cfg.DestFor
	rec, err := h.orch.SweepOnce(p, fleet.SweepConfig{
		Password:    cfg.Password,
		DestFor:     func(m *fleet.Member) core.VaultDest { return destFor(m.Name()) },
		Stagger:     cfg.Stagger,
		Concurrency: cfg.Concurrency,
		SaveAll:     cfg.SaveAll,
		Adaptive:    cfg.Adaptive,
		RPO:         cfg.RPO,
		RPOFor:      cfg.RPOFor,
		// The cadence's deferral horizon: this host's next slot is one
		// round out, two if the coordinator skips a round — plus one
		// Interval of pass-duration allowance.
		Interval:         cfg.Interval,
		NextPassIn:       2 * cfg.Interval,
		TargetDeltaBytes: cfg.TargetDeltaBytes,
	})
	if err != nil {
		// The per-save failures are already in the host orchestrator's
		// logs, but the coordinator must not drop them: a provider quota
		// blowing up every slot would otherwise read as a healthy round
		// with a low save count.
		c.sweepErrs = append(c.sweepErrs, fmt.Errorf("cluster: sweep slot %s round %d: %w", h.name, round, err))
	}
	rec2 := SweepSlot{
		Round: round, Slot: slot, Host: h.name,
		Start: start, Record: rec,
	}
	// An idle slot — the host had nothing dirty enough to save and
	// nothing failed — is a paid-for provider window (token held, wire
	// quiet). Spend it on the work the cluster has been deferring:
	// batched rebalance moves, then opportunistic vault GC.
	if err == nil && rec.Saves == 0 && rec.Errors == 0 {
		rec2.Idle = true
		rec2.Moves, rec2.MovesDropped = c.drainPendingMoves(p)
		if cfg.GC {
			rec2.GCRuns, rec2.GCReclaimedBytes, rec2.GCWireBytes = c.opportunisticGC(p, cfg, h)
		}
	}
	c.sweepTokensHeld--
	rec2.End = p.Now()
	c.slotLog = append(c.slotLog, rec2)
	c.notify()
}

// drainPendingMoves executes up to MaxMovesPerPass rebalance moves the
// planner batched for idle slots. Each move is re-validated at
// execution time — the plan may be rounds old: the source must still
// be hot (otherwise the pressure the move was priced against is gone)
// and the destination still cold and admitting, else a fresh
// destination is planned. Stale moves are dropped, not retried — the
// rebalancer re-plans from live state on its next pass.
func (c *Cluster) drainPendingMoves(p *sim.Proc) (executed, dropped int) {
	for executed < c.cfg.Rebalance.MaxMovesPerPass && len(c.pendingMoves) > 0 {
		mv := c.pendingMoves[0]
		c.pendingMoves = c.pendingMoves[1:]
		delete(c.moveQueued, mv.name)
		src := c.placement[mv.name]
		if src == nil || c.migrating[mv.name] || src.ReservedShare() <= c.cfg.Rebalance.HotShare {
			dropped++
			continue
		}
		m := src.orch.Member(mv.name)
		if m == nil || !c.movable(m, nil) {
			dropped++
			continue
		}
		dst := c.Host(mv.dst)
		if dst == nil || dst == src || !dst.placeable() ||
			dst.ReservedShare() >= c.cfg.Rebalance.ColdShare || !dst.orch.CanAdmit(m.Footprint()) {
			dst = c.coldDestination(src, m)
		}
		if dst == nil {
			dropped++
			continue
		}
		if _, err := c.MigrateNym(p, mv.name, dst.name); err != nil {
			c.sweepErrs = append(c.sweepErrs, fmt.Errorf("cluster: batched move %s->%s: %w", mv.name, dst.name, err))
			dropped++
			continue
		}
		executed++
	}
	return executed, dropped
}

// opportunisticGC prunes dead vault chunks for up to GCPerSlot of the
// host's members, rotating a per-host cursor so every member gets its
// turn across idle slots. Members without a checkpoint are skipped
// (nothing in the vault to prune — probing would buy an ErrNoManifest
// with real wire), as are members mid-save or mid-migration (GC must
// never race a manifest replace).
func (c *Cluster) opportunisticGC(p *sim.Proc, cfg *SweepConfig, h *Host) (runs int, reclaimed, wire int64) {
	members := h.orch.Members()
	if len(members) == 0 {
		return 0, 0, 0
	}
	start := c.gcCursor[h.name]
	for scanned := 0; scanned < len(members) && runs < cfg.GCPerSlot; scanned++ {
		m := members[(start+scanned)%len(members)]
		c.gcCursor[h.name] = (start + scanned + 1) % len(members)
		if m.Nym() == nil || m.Saving() || c.migrating[m.Name()] {
			continue
		}
		if _, ok := m.Checkpoint(); !ok {
			continue
		}
		dest := cfg.DestFor(m.Name())
		stats, err := h.mgr.VaultGC(p, m.Nym(), cfg.Password, dest)
		wire += stats.ManifestBytes + int64(len(dest.Providers))*cloud.LoginWireBytes
		if err != nil {
			c.sweepErrs = append(c.sweepErrs, fmt.Errorf("cluster: gc %s in idle slot: %w", m.Name(), err))
			continue
		}
		runs++
		reclaimed += stats.FreedBytes
	}
	return runs, reclaimed, wire
}
