package cluster

import "nymix/internal/nymerr"

// Registered error codes for the cluster layer. Host-side failures
// arrive already typed from fleet/core; these codes cover placement,
// migration, the sweep coordinator, and the elastic pool.
var (
	// CodeUnknownHost: no pool member with that name.
	CodeUnknownHost = nymerr.Register("cluster.unknown_host",
		"no pool member with that name")
	// CodeUnknownNym: no launched nym with that name.
	CodeUnknownNym = nymerr.Register("cluster.unknown_nym",
		"no launched nym with that name")
	// CodeNeverPlaceable: the footprint exceeds every host's admissible
	// RAM budget.
	CodeNeverPlaceable = nymerr.Register("cluster.never_placeable",
		"footprint exceeds every host's admissible RAM budget")
	// CodeDuplicateNym: a nym with that name was already launched
	// cluster-wide.
	CodeDuplicateNym = nymerr.Register("cluster.duplicate_nym",
		"a nym with that name was already launched cluster-wide")
	// CodeRampDead: nothing in flight anywhere can close the gap to the
	// await target.
	CodeRampDead = nymerr.Register("cluster.ramp_dead",
		"nothing pending pool-wide and the running target is unreachable")
	// CodeAlreadyPlaced: the migration destination already runs the nym.
	CodeAlreadyPlaced = nymerr.Register("cluster.already_placed",
		"migration destination already runs the nym")
	// CodeMigrateConflict: another migration of the same nym is in
	// flight.
	CodeMigrateConflict = nymerr.Register("cluster.migrate_conflict",
		"another migration of the same nym is in flight")
	// CodeMigrateLost: the migration cannot proceed and has no vault
	// checkpoint to fall back to.
	CodeMigrateLost = nymerr.Register("cluster.migrate_lost",
		"migration cannot proceed and no vault checkpoint exists to carry")
	// CodeMigrateCrashFallback: the destination restore failed and the
	// nym was re-queued from its vault checkpoint — durable state
	// survived, the move did not.
	CodeMigrateCrashFallback = nymerr.Register("cluster.migrate_crash_fallback",
		"destination restore failed; nym re-queued from its vault checkpoint")
	// CodeSweepsRunning: a sweep coordinator is already installed.
	CodeSweepsRunning = nymerr.Register("cluster.sweeps_running",
		"a cluster sweep coordinator is already installed")
	// CodeHostIneligible: the host's lifecycle state forbids the
	// requested transition (cordon/uncordon/retire).
	CodeHostIneligible = nymerr.Register("cluster.host_ineligible",
		"host lifecycle state forbids the requested transition")
	// CodeLastActiveHost: retiring the host would leave zero active
	// hosts.
	CodeLastActiveHost = nymerr.Register("cluster.last_active_host",
		"refusing to retire the last active host")
	// CodeDrainConflict: another drain is already in flight.
	CodeDrainConflict = nymerr.Register("cluster.drain_conflict",
		"another drain is already in flight")
	// CodeDrainStuck: the drain aborted because the rest of the pool
	// cannot absorb the host's nyms.
	CodeDrainStuck = nymerr.Register("cluster.drain_stuck",
		"drain aborted; the pool cannot absorb the host's nyms")
	// CodeBadWatermarks: an explicit rebalance watermark pair is
	// self-defeating (ColdShare at or above HotShare, or a share
	// outside its legal range).
	CodeBadWatermarks = nymerr.Register("cluster.bad_watermarks",
		"rebalance watermarks invalid")
)

// Errors: typed sentinels kept as errors.Is targets for existing
// callers.
var (
	ErrUnknownHost    = nymerr.New(CodeUnknownHost, "cluster: unknown host")
	ErrUnknownNym     = nymerr.New(CodeUnknownNym, "cluster: unknown nym")
	ErrNeverPlaceable = nymerr.New(CodeNeverPlaceable, "cluster: footprint exceeds every host's admissible RAM")
)
