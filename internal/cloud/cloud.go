// Package cloud simulates the free-to-use cloud storage providers
// (DropBox- and Google-Drive-like) that Nymix stores quasi-persistent
// nym state on (paper section 3.5). A user creates a pseudonymous
// account per nym; all interaction happens through the nym's
// anonymizer, so "the cloud provider learns nothing about the account
// owner", and blobs are encrypted, so it learns nothing about the nym
// either.
package cloud

import (
	"fmt"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

// Blob is one stored object. Data carries the real (encrypted) bytes;
// WireSize is the simulated storage/transfer footprint, which can
// exceed len(Data) because nym archives model bulk content (browser
// caches) virtually.
type Blob struct {
	Data     []byte
	WireSize int64
	Uploaded sim.Time
}

// account is a pseudonymous cloud account.
type account struct {
	password string
	blobs    map[string]Blob
	used     int64
}

// Provider is one cloud storage service attached to the Internet.
type Provider struct {
	name     string
	node     *vnet.Node
	accounts map[string]*account
	quota    int64 // per-account bytes; 0 = unlimited
	// Uploads counts lifetime blob puts, for tests and stats.
	Uploads int
	// RoundTrips counts lifetime request/response exchanges the
	// provider served (logins, puts, gets, batches). A checkpoint
	// sweep that skips a clean nym must not move this counter — the
	// property the dirty-skip tests pin down.
	RoundTrips int
}

// NewProvider attaches a provider to the network at the given router
// (typically the Internet backbone) and returns it.
func NewProvider(net *vnet.Network, attach *vnet.Node, name string, quota int64, cfg vnet.LinkConfig) *Provider {
	node := net.AddNode("cloud:" + name)
	net.Connect(node, attach, cfg)
	return &Provider{
		name:     name,
		node:     node,
		accounts: make(map[string]*account),
		quota:    quota,
	}
}

// Name returns the provider name.
func (pr *Provider) Name() string { return pr.name }

// NodeName returns the provider's network node name.
func (pr *Provider) NodeName() string { return pr.node.Name() }

// CreateAccount registers a pseudonymous account. Creating an account
// that exists with a different password fails.
func (pr *Provider) CreateAccount(user, password string) error {
	if acct, ok := pr.accounts[user]; ok {
		if acct.password != password {
			return fmt.Errorf("%w: account %q exists", ErrAuth, user)
		}
		return nil
	}
	pr.accounts[user] = &account{password: password, blobs: make(map[string]Blob)}
	return nil
}

// auth validates credentials.
func (pr *Provider) auth(user, password string) (*account, error) {
	acct, ok := pr.accounts[user]
	if !ok || acct.password != password {
		return nil, ErrAuth
	}
	return acct, nil
}

// StoredBytes returns an account's storage use (0 for unknown users).
func (pr *Provider) StoredBytes(user string) int64 {
	if acct, ok := pr.accounts[user]; ok {
		return acct.used
	}
	return 0
}

// BlobInfo returns the wire size of a stored blob.
func (pr *Provider) BlobInfo(user, name string) (int64, bool) {
	if acct, ok := pr.accounts[user]; ok {
		if b, ok := acct.blobs[name]; ok {
			return b.WireSize, true
		}
	}
	return 0, false
}

// Session is an authenticated client session reached through an
// anonymizer.
type Session struct {
	provider *Provider
	acct     *account
	anon     anonnet.Anonymizer
	user     string
}

// loginExchangeBytes covers the TLS handshake and login form.
const loginExchangeBytes = 96 << 10

// LoginWireBytes is the full wire cost of one session login exchange
// (request plus the TLS/login response). Exported so sweep telemetry
// can charge the session setup a checkpoint pays per provider — the
// cost a dirty-skip avoids entirely for clean nyms.
const LoginWireBytes = loginExchangeBytes + 4096

// Login authenticates through the anonymizer and returns a session.
// The paper's workflow: "the Nym Manager navigates the user to the
// cloud service, using the CommVM's anonymizer to protect this
// connection, and prompts the user to login".
func Login(p *sim.Proc, anon anonnet.Anonymizer, pr *Provider, user, password string) (*Session, error) {
	if _, err := anon.Fetch(p, anonnet.Request{
		SiteNode: pr.NodeName(), SendBytes: 4096, RecvBytes: loginExchangeBytes,
	}); err != nil {
		return nil, nymerr.Wrap(CodeProviderUnreachable, err, "login exchange").
			AddContext("provider", pr.name)
	}
	pr.RoundTrips++
	acct, err := pr.auth(user, password)
	if err != nil {
		return nil, err
	}
	return &Session{provider: pr, acct: acct, anon: anon, user: user}, nil
}

// User returns the session's account name.
func (s *Session) User() string { return s.user }

// Provider returns the provider this session is authenticated to.
func (s *Session) Provider() *Provider { return s.provider }

// Put uploads a blob through the anonymizer. The transfer costs
// blob.WireSize bytes upstream.
func (s *Session) Put(p *sim.Proc, name string, blob Blob) error {
	if s.provider.quota != 0 {
		delta := blob.WireSize
		if old, ok := s.acct.blobs[name]; ok {
			delta -= old.WireSize
		}
		if s.acct.used+delta > s.provider.quota {
			return fmt.Errorf("%w: %d + %d > %d", ErrNoSpace, s.acct.used, delta, s.provider.quota)
		}
	}
	if _, err := s.anon.Fetch(p, anonnet.Request{
		SiteNode: s.provider.NodeName(), SendBytes: blob.WireSize, RecvBytes: 2048,
	}); err != nil {
		return nymerr.Wrap(CodeProviderUnreachable, err, "upload").
			AddContext("provider", s.provider.name).AddContext("blob", name)
	}
	s.provider.RoundTrips++
	if old, ok := s.acct.blobs[name]; ok {
		s.acct.used -= old.WireSize
	}
	blob.Uploaded = p.Now()
	blob.Data = append([]byte(nil), blob.Data...)
	s.acct.blobs[name] = blob
	s.acct.used += blob.WireSize
	s.provider.Uploads++
	return nil
}

// BatchFrameBytes is the per-blob multipart framing overhead inside a
// batched transfer — what replaces a full request/response round trip
// per blob when many chunks move in one exchange. Exported so callers
// (internal/vault's save stats) can account the same wire cost the
// transfer actually charges.
const BatchFrameBytes = 256

// PutBatch uploads a set of blobs through the anonymizer in a single
// aggregated exchange: one round trip whose upstream cost is the
// summed wire sizes plus per-blob framing, instead of one
// request/response (and 2 KiB ack) per blob. Chunked checkpoint
// stores (internal/vault) fan out hundreds of small objects; without
// batching each would pay the anonymizer's full per-request latency.
// Quota is checked for the whole batch before any transfer, so a
// rejected batch stores nothing.
func (s *Session) PutBatch(p *sim.Proc, blobs map[string]Blob) error {
	if len(blobs) == 0 {
		return nil
	}
	if s.provider.quota != 0 {
		var delta int64
		for name, b := range blobs {
			delta += b.WireSize
			if old, ok := s.acct.blobs[name]; ok {
				delta -= old.WireSize
			}
		}
		if s.acct.used+delta > s.provider.quota {
			return fmt.Errorf("%w: %d + %d > %d", ErrNoSpace, s.acct.used, delta, s.provider.quota)
		}
	}
	var send int64
	for _, b := range blobs {
		send += b.WireSize + BatchFrameBytes
	}
	if _, err := s.anon.Fetch(p, anonnet.Request{
		SiteNode: s.provider.NodeName(), SendBytes: send, RecvBytes: 2048,
	}); err != nil {
		return nymerr.Wrap(CodeProviderUnreachable, err, "batch upload").
			AddContext("provider", s.provider.name).AddContext("blobs", len(blobs))
	}
	s.provider.RoundTrips++
	for name, b := range blobs {
		if old, ok := s.acct.blobs[name]; ok {
			s.acct.used -= old.WireSize
		}
		b.Uploaded = p.Now()
		b.Data = append([]byte(nil), b.Data...)
		s.acct.blobs[name] = b
		s.acct.used += b.WireSize
		s.provider.Uploads++
	}
	return nil
}

// GetBatch downloads the named blobs in a single aggregated exchange
// (one request, one response carrying all blobs plus per-blob
// framing). A missing name fails the whole batch before any transfer.
func (s *Session) GetBatch(p *sim.Proc, names []string) (map[string]Blob, error) {
	if len(names) == 0 {
		return map[string]Blob{}, nil
	}
	var recv int64
	for _, name := range names {
		b, ok := s.acct.blobs[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		recv += b.WireSize + BatchFrameBytes
	}
	if _, err := s.anon.Fetch(p, anonnet.Request{
		SiteNode: s.provider.NodeName(), SendBytes: 2048, RecvBytes: recv,
	}); err != nil {
		return nil, nymerr.Wrap(CodeProviderUnreachable, err, "batch download").
			AddContext("provider", s.provider.name).AddContext("blobs", len(names))
	}
	s.provider.RoundTrips++
	out := make(map[string]Blob, len(names))
	for _, name := range names {
		b := s.acct.blobs[name]
		b.Data = append([]byte(nil), b.Data...)
		out[name] = b
	}
	return out, nil
}

// Has reports whether a blob exists, as a metadata-only check (no
// simulated transfer; the cost is part of the session's listing
// exchange, which the simulation does not charge).
func (s *Session) Has(name string) bool {
	_, ok := s.acct.blobs[name]
	return ok
}

// Get downloads a blob through the anonymizer; the transfer costs
// WireSize bytes downstream.
func (s *Session) Get(p *sim.Proc, name string) (Blob, error) {
	blob, ok := s.acct.blobs[name]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if _, err := s.anon.Fetch(p, anonnet.Request{
		SiteNode: s.provider.NodeName(), SendBytes: 2048, RecvBytes: blob.WireSize,
	}); err != nil {
		return Blob{}, nymerr.Wrap(CodeProviderUnreachable, err, "download").
			AddContext("provider", s.provider.name).AddContext("blob", name)
	}
	s.provider.RoundTrips++
	blob.Data = append([]byte(nil), blob.Data...)
	return blob, nil
}

// List returns the names of the account's blobs (order unspecified).
func (s *Session) List() []string {
	out := make([]string, 0, len(s.acct.blobs))
	for name := range s.acct.blobs {
		out = append(out, name)
	}
	return out
}

// Delete removes a blob.
func (s *Session) Delete(name string) error {
	blob, ok := s.acct.blobs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.acct.used -= blob.WireSize
	delete(s.acct.blobs, name)
	return nil
}
