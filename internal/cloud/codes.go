package cloud

import "nymix/internal/nymerr"

// Registered error codes for the cloud layer. Every error the package
// returns classifies to one of these (nymerr.Classify).
var (
	// CodeBadCredentials: the account does not exist or the password
	// does not match.
	CodeBadCredentials = nymerr.Register("cloud.bad_credentials",
		"cloud account missing or password mismatch")
	// CodeBlobMissing: the named blob does not exist on the provider.
	CodeBlobMissing = nymerr.Register("cloud.blob_missing",
		"named blob does not exist on the provider")
	// CodeQuotaExceeded: the write would exceed the account's quota;
	// nothing was stored.
	CodeQuotaExceeded = nymerr.Register("cloud.quota_exceeded",
		"write would exceed the account's storage quota")
	// CodeProviderUnreachable: the anonymized exchange with the
	// provider failed in transit (circuit, DNS, link).
	CodeProviderUnreachable = nymerr.Register("cloud.provider_unreachable",
		"anonymized exchange with the provider failed in transit")
)

// Errors: typed sentinels, kept as errors.Is targets for existing
// callers. Each carries its registered code, so any %w chain built on
// top of one classifies without further wrapping.
var (
	ErrAuth     = nymerr.New(CodeBadCredentials, "cloud: authentication failed")
	ErrNotFound = nymerr.New(CodeBlobMissing, "cloud: blob not found")
	ErrNoSpace  = nymerr.New(CodeQuotaExceeded, "cloud: quota exceeded")
)
