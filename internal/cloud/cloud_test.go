package cloud

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nymix/internal/anonnet/incognito"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

type rig struct {
	eng      *sim.Engine
	net      *vnet.Network
	world    *webworld.World
	provider *Provider
	relay    *incognito.Relay
}

func newRig(quota int64) *rig {
	eng := sim.NewEngine(37)
	net, world := webworld.BuildDefault(eng)
	// Mirror the real topology: the CommVM reaches the gateway through
	// the masquerading Nymix host.
	comm := net.AddNode("commvm")
	host := net.AddNode("host").SetForwarding(true).SetMasquerade(true)
	net.Connect(comm, host, vnet.LinkConfig{Latency: 200 * time.Microsecond, Capacity: 500e6})
	net.Connect(host, world.Gateway(), webworld.UplinkConfig)
	pr := NewProvider(net, world.Internet(), "dropbin", quota,
		vnet.LinkConfig{Latency: 2 * time.Millisecond, Capacity: 1e9 / 8})
	relay := incognito.New(net, "commvm", "host", world.ISPDNS().Name(), world.Resolver())
	return &rig{eng: eng, net: net, world: world, provider: pr, relay: relay}
}

func TestAccountLifecycle(t *testing.T) {
	r := newRig(0)
	if err := r.provider.CreateAccount("anon-4821", "pw"); err != nil {
		t.Fatal(err)
	}
	// Re-creating with the same password is idempotent.
	if err := r.provider.CreateAccount("anon-4821", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := r.provider.CreateAccount("anon-4821", "other"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var got Blob
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, err := Login(p, r.relay, r.provider, "u", "pw")
		if err != nil {
			t.Errorf("login: %v", err)
			return
		}
		blob := Blob{Data: []byte("encrypted-archive"), WireSize: 5 << 20}
		if err := sess.Put(p, "nym.enc", blob); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, err = sess.Get(p, "nym.enc")
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	r.eng.Run()
	if string(got.Data) != "encrypted-archive" || got.WireSize != 5<<20 {
		t.Fatalf("blob = %+v", got)
	}
	if r.provider.StoredBytes("u") != 5<<20 {
		t.Fatalf("stored = %d", r.provider.StoredBytes("u"))
	}
	if size, ok := r.provider.BlobInfo("u", "nym.enc"); !ok || size != 5<<20 {
		t.Fatalf("blob info = %d %v", size, ok)
	}
}

func TestTransferTimeScalesWithWireSize(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var small, large time.Duration
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		start := p.Now()
		sess.Put(p, "small", Blob{WireSize: 1 << 20})
		small = p.Now() - start
		start = p.Now()
		sess.Put(p, "large", Blob{WireSize: 10 << 20})
		large = p.Now() - start
	})
	r.eng.Run()
	if large < 5*small {
		t.Fatalf("10 MiB upload (%v) not ~10x the 1 MiB one (%v)", large, small)
	}
}

func TestBadLoginRejected(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var err error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		_, err = Login(p, r.relay, r.provider, "u", "wrong")
	})
	r.eng.Run()
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuotaEnforced(t *testing.T) {
	r := newRig(8 << 20)
	r.provider.CreateAccount("u", "pw")
	var err1, err2, err3 error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		err1 = sess.Put(p, "a", Blob{WireSize: 6 << 20})
		err2 = sess.Put(p, "b", Blob{WireSize: 6 << 20})
		// Overwriting a charges only the delta.
		err3 = sess.Put(p, "a", Blob{WireSize: 7 << 20})
	})
	r.eng.Run()
	if err1 != nil {
		t.Fatalf("first put: %v", err1)
	}
	if !errors.Is(err2, ErrNoSpace) {
		t.Fatalf("second put: %v", err2)
	}
	if err3 != nil {
		t.Fatalf("overwrite put: %v", err3)
	}
}

func TestGetMissingAndDelete(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var errGet, errDel error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		_, errGet = sess.Get(p, "missing")
		sess.Put(p, "x", Blob{WireSize: 100})
		errDel = sess.Delete("x")
		if len(sess.List()) != 0 {
			t.Error("list not empty after delete")
		}
	})
	r.eng.Run()
	if !errors.Is(errGet, ErrNotFound) {
		t.Fatalf("get: %v", errGet)
	}
	if errDel != nil {
		t.Fatalf("delete: %v", errDel)
	}
	if r.provider.StoredBytes("u") != 0 {
		t.Fatal("storage not reclaimed")
	}
}

func TestBatchPutGetRoundTrip(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var got map[string]Blob
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		batch := map[string]Blob{
			"c1": {Data: []byte("one"), WireSize: 1 << 20},
			"c2": {Data: []byte("two"), WireSize: 2 << 20},
			"c3": {WireSize: 3 << 20}, // data-less (virtual chunk)
		}
		if err := sess.PutBatch(p, batch); err != nil {
			t.Errorf("putbatch: %v", err)
			return
		}
		var err error
		got, err = sess.GetBatch(p, []string{"c1", "c2", "c3"})
		if err != nil {
			t.Errorf("getbatch: %v", err)
		}
	})
	r.eng.Run()
	if len(got) != 3 || string(got["c1"].Data) != "one" || string(got["c2"].Data) != "two" {
		t.Fatalf("batch = %+v", got)
	}
	if r.provider.StoredBytes("u") != 6<<20 {
		t.Fatalf("stored = %d", r.provider.StoredBytes("u"))
	}
	if r.provider.Uploads != 3 {
		t.Fatalf("uploads = %d, want one per blob", r.provider.Uploads)
	}
}

func TestBatchIsOneRoundTripNotN(t *testing.T) {
	// The point of batching: N blobs must not pay N request/response
	// exchanges through the anonymizer.
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	const n = 32
	var serial, batched time.Duration
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		start := p.Now()
		for i := 0; i < n; i++ {
			sess.Put(p, fmt.Sprintf("s%d", i), Blob{WireSize: 4 << 10})
		}
		serial = p.Now() - start
		batch := make(map[string]Blob, n)
		for i := 0; i < n; i++ {
			batch[fmt.Sprintf("b%d", i)] = Blob{WireSize: 4 << 10}
		}
		start = p.Now()
		sess.PutBatch(p, batch)
		batched = p.Now() - start
	})
	r.eng.Run()
	if batched*4 > serial {
		t.Fatalf("batched put of %d blobs (%v) not ≥4x faster than serial (%v)", n, batched, serial)
	}
}

func TestBatchQuotaIsAllOrNothing(t *testing.T) {
	r := newRig(4 << 20)
	r.provider.CreateAccount("u", "pw")
	var err error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		err = sess.PutBatch(p, map[string]Blob{
			"a": {WireSize: 3 << 20},
			"b": {WireSize: 3 << 20},
		})
	})
	r.eng.Run()
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if r.provider.StoredBytes("u") != 0 {
		t.Fatal("rejected batch must store nothing")
	}
}

func TestGetBatchMissingFailsWholeBatch(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var err error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		sess.Put(p, "present", Blob{WireSize: 1 << 10})
		_, err = sess.GetBatch(p, []string{"present", "absent"})
		if !sess.Has("present") || sess.Has("absent") {
			t.Error("Has disagrees with stored blobs")
		}
	})
	r.eng.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestProviderKnowsOnlyExitIdentity(t *testing.T) {
	// Interactions go through the anonymizer: a capture at the provider
	// must never show the CommVM itself when a real anonymizer fronts
	// it. (With incognito it shows the NAT host — still not the VM.)
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	node := r.net.Node(r.provider.NodeName())
	tap := node.Ifaces()[0].Link().Tap()
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		sess.Put(p, "n", Blob{WireSize: 1 << 20})
	})
	r.eng.Run()
	for _, e := range tap.Entries {
		if e.ObservedSrc == "commvm" {
			t.Fatalf("provider observed the CommVM directly")
		}
	}
}
