package cloud

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/anonnet/incognito"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

type rig struct {
	eng      *sim.Engine
	net      *vnet.Network
	world    *webworld.World
	provider *Provider
	relay    *incognito.Relay
}

func newRig(quota int64) *rig {
	eng := sim.NewEngine(37)
	net, world := webworld.BuildDefault(eng)
	// Mirror the real topology: the CommVM reaches the gateway through
	// the masquerading Nymix host.
	comm := net.AddNode("commvm")
	host := net.AddNode("host").SetForwarding(true).SetMasquerade(true)
	net.Connect(comm, host, vnet.LinkConfig{Latency: 200 * time.Microsecond, Capacity: 500e6})
	net.Connect(host, world.Gateway(), webworld.UplinkConfig)
	pr := NewProvider(net, world.Internet(), "dropbin", quota,
		vnet.LinkConfig{Latency: 2 * time.Millisecond, Capacity: 1e9 / 8})
	relay := incognito.New(net, "commvm", "host", world.ISPDNS().Name(), world.Resolver())
	return &rig{eng: eng, net: net, world: world, provider: pr, relay: relay}
}

func TestAccountLifecycle(t *testing.T) {
	r := newRig(0)
	if err := r.provider.CreateAccount("anon-4821", "pw"); err != nil {
		t.Fatal(err)
	}
	// Re-creating with the same password is idempotent.
	if err := r.provider.CreateAccount("anon-4821", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := r.provider.CreateAccount("anon-4821", "other"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var got Blob
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, err := Login(p, r.relay, r.provider, "u", "pw")
		if err != nil {
			t.Errorf("login: %v", err)
			return
		}
		blob := Blob{Data: []byte("encrypted-archive"), WireSize: 5 << 20}
		if err := sess.Put(p, "nym.enc", blob); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, err = sess.Get(p, "nym.enc")
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	r.eng.Run()
	if string(got.Data) != "encrypted-archive" || got.WireSize != 5<<20 {
		t.Fatalf("blob = %+v", got)
	}
	if r.provider.StoredBytes("u") != 5<<20 {
		t.Fatalf("stored = %d", r.provider.StoredBytes("u"))
	}
	if size, ok := r.provider.BlobInfo("u", "nym.enc"); !ok || size != 5<<20 {
		t.Fatalf("blob info = %d %v", size, ok)
	}
}

func TestTransferTimeScalesWithWireSize(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var small, large time.Duration
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		start := p.Now()
		sess.Put(p, "small", Blob{WireSize: 1 << 20})
		small = p.Now() - start
		start = p.Now()
		sess.Put(p, "large", Blob{WireSize: 10 << 20})
		large = p.Now() - start
	})
	r.eng.Run()
	if large < 5*small {
		t.Fatalf("10 MiB upload (%v) not ~10x the 1 MiB one (%v)", large, small)
	}
}

func TestBadLoginRejected(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var err error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		_, err = Login(p, r.relay, r.provider, "u", "wrong")
	})
	r.eng.Run()
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuotaEnforced(t *testing.T) {
	r := newRig(8 << 20)
	r.provider.CreateAccount("u", "pw")
	var err1, err2, err3 error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		err1 = sess.Put(p, "a", Blob{WireSize: 6 << 20})
		err2 = sess.Put(p, "b", Blob{WireSize: 6 << 20})
		// Overwriting a charges only the delta.
		err3 = sess.Put(p, "a", Blob{WireSize: 7 << 20})
	})
	r.eng.Run()
	if err1 != nil {
		t.Fatalf("first put: %v", err1)
	}
	if !errors.Is(err2, ErrNoSpace) {
		t.Fatalf("second put: %v", err2)
	}
	if err3 != nil {
		t.Fatalf("overwrite put: %v", err3)
	}
}

func TestGetMissingAndDelete(t *testing.T) {
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	var errGet, errDel error
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		_, errGet = sess.Get(p, "missing")
		sess.Put(p, "x", Blob{WireSize: 100})
		errDel = sess.Delete("x")
		if len(sess.List()) != 0 {
			t.Error("list not empty after delete")
		}
	})
	r.eng.Run()
	if !errors.Is(errGet, ErrNotFound) {
		t.Fatalf("get: %v", errGet)
	}
	if errDel != nil {
		t.Fatalf("delete: %v", errDel)
	}
	if r.provider.StoredBytes("u") != 0 {
		t.Fatal("storage not reclaimed")
	}
}

func TestProviderKnowsOnlyExitIdentity(t *testing.T) {
	// Interactions go through the anonymizer: a capture at the provider
	// must never show the CommVM itself when a real anonymizer fronts
	// it. (With incognito it shows the NAT host — still not the VM.)
	r := newRig(0)
	r.provider.CreateAccount("u", "pw")
	node := r.net.Node(r.provider.NodeName())
	tap := node.Ifaces()[0].Link().Tap()
	r.eng.Go("t", func(p *sim.Proc) {
		r.relay.Start(p)
		sess, _ := Login(p, r.relay, r.provider, "u", "pw")
		sess.Put(p, "n", Blob{WireSize: 1 << 20})
	})
	r.eng.Run()
	for _, e := range tap.Entries {
		if e.ObservedSrc == "commvm" {
			t.Fatalf("provider observed the CommVM directly")
		}
	}
}
