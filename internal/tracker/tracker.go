// Package tracker implements the adversary Nymix defends against: an
// observer who aggregates server-side logs (first-party sites and
// third-party trackers) and tries to link the pseudonyms they contain
// — by shared cookies, by identifying fingerprints, by identifying
// source addresses, and by long-term intersection attacks (paper
// sections 2, 3.3, 3.5 and 7).
//
// The package is pure analysis over webworld observation logs, so the
// same code evaluates Nymix, a Tails-like shared-profile baseline,
// and a Whonix-like static-VM baseline.
package tracker

import (
	"sort"

	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// Config tunes the adversary's linking rules.
type Config struct {
	// FingerprintCrowdMin: a fingerprint seen with at least this many
	// distinct cookies is "crowd" (shared hardware/software population)
	// and useless as linking evidence. Nymix's homogeneous VMs push
	// every honest user into one crowd.
	FingerprintCrowdMin int
	// SharedAddrs are source addresses known to be shared
	// infrastructure (Tor exits, Dissent servers); they never link.
	SharedAddrs map[string]bool
}

// DefaultConfig returns the standard adversary. A fingerprint shared
// by fewer than four distinct profiles is treated as identifying —
// real-world fingerprints are close to unique (Eckersley), so only a
// deliberately homogenized population like Nymix's VMs forms a crowd.
func DefaultConfig() Config {
	return Config{FingerprintCrowdMin: 4, SharedAddrs: map[string]bool{}}
}

// Identity is a (site, account-or-cookie) pair the adversary tries to
// cluster.
type Identity struct {
	Site string
	ID   string // account name if known, else cookie
}

// Cluster is a set of identities the adversary believes belong to one
// person.
type Cluster struct {
	Identities []Identity
	Evidence   []string // which rules fired
}

// union-find over observation keys.
type dsu struct {
	parent map[string]string
}

func newDSU() *dsu { return &dsu{parent: map[string]string{}} }

func (d *dsu) find(x string) string {
	if d.parent[x] == "" {
		d.parent[x] = x
		return x
	}
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

func (d *dsu) union(a, b string) { d.parent[d.find(a)] = d.find(b) }

// observationKey gives each visit a clustering key: the account if
// logged in, else the cookie (per site).
func observationKey(v webworld.Visit) string {
	if v.Account != "" {
		return "acct:" + v.Site + "/" + v.Account
	}
	return "ck:" + v.Site + "/" + v.CookieID
}

// Link clusters all observations (first-party + tracker logs) using
// the adversary's rules and returns clusters with 1+ identities.
func Link(cfg Config, visits []webworld.Visit) []Cluster {
	d := newDSU()
	evidence := map[string][]string{}

	// Rule 1: same cookie on the same tracker/site links directly —
	// cookies are unique per browser profile.
	byCookie := map[string][]webworld.Visit{}
	for _, v := range visits {
		if v.CookieID != "" {
			byCookie[v.CookieID] = append(byCookie[v.CookieID], v)
		}
		d.find(observationKey(v))
	}
	for ck, vs := range byCookie {
		for i := 1; i < len(vs); i++ {
			d.union(observationKey(vs[0]), observationKey(vs[i]))
			evidence[ck] = append(evidence[ck], "cookie")
		}
	}

	// Rule 2: identifying fingerprints. Count cookie diversity per
	// fingerprint; below the crowd threshold, the fingerprint links.
	fpCookies := map[string]map[string]bool{}
	for _, v := range visits {
		if v.Fingerprint == "" {
			continue
		}
		if fpCookies[v.Fingerprint] == nil {
			fpCookies[v.Fingerprint] = map[string]bool{}
		}
		fpCookies[v.Fingerprint][v.CookieID] = true
	}
	byFP := map[string][]webworld.Visit{}
	for _, v := range visits {
		if v.Fingerprint == "" {
			continue
		}
		if len(fpCookies[v.Fingerprint]) < cfg.FingerprintCrowdMin {
			byFP[v.Fingerprint] = append(byFP[v.Fingerprint], v)
		}
	}
	for fp, vs := range byFP {
		for i := 1; i < len(vs); i++ {
			d.union(observationKey(vs[0]), observationKey(vs[i]))
			evidence[fp] = append(evidence[fp], "fingerprint")
		}
	}

	// Rule 3: identifying source addresses (anything not known-shared).
	byAddr := map[string][]webworld.Visit{}
	for _, v := range visits {
		if v.SourceAddr == "" || cfg.SharedAddrs[v.SourceAddr] {
			continue
		}
		byAddr[v.SourceAddr] = append(byAddr[v.SourceAddr], v)
	}
	for addr, vs := range byAddr {
		for i := 1; i < len(vs); i++ {
			d.union(observationKey(vs[0]), observationKey(vs[i]))
			evidence[addr] = append(evidence[addr], "address")
		}
	}

	// Gather clusters.
	members := map[string]map[Identity]bool{}
	rootEv := map[string]map[string]bool{}
	for _, v := range visits {
		key := observationKey(v)
		root := d.find(key)
		if members[root] == nil {
			members[root] = map[Identity]bool{}
			rootEv[root] = map[string]bool{}
		}
		id := Identity{Site: v.Site, ID: v.CookieID}
		if v.Account != "" {
			id.ID = v.Account
		}
		members[root][id] = true
	}
	for root := range members {
		for _, evs := range evidence {
			for _, e := range evs {
				rootEv[root][e] = true
			}
		}
	}
	var out []Cluster
	roots := make([]string, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, root := range roots {
		var c Cluster
		for id := range members[root] {
			c.Identities = append(c.Identities, id)
		}
		sort.Slice(c.Identities, func(i, j int) bool {
			if c.Identities[i].Site != c.Identities[j].Site {
				return c.Identities[i].Site < c.Identities[j].Site
			}
			return c.Identities[i].ID < c.Identities[j].ID
		})
		for e := range rootEv[root] {
			c.Evidence = append(c.Evidence, e)
		}
		sort.Strings(c.Evidence)
		out = append(out, c)
	}
	return out
}

// Linked reports whether the adversary placed two identities in the
// same cluster.
func Linked(clusters []Cluster, a, b Identity) bool {
	for _, c := range clusters {
		hasA, hasB := false, false
		for _, id := range c.Identities {
			if id == a {
				hasA = true
			}
			if id == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// LargestCluster returns the maximum cluster size (1 = nothing
// linked).
func LargestCluster(clusters []Cluster) int {
	max := 0
	for _, c := range clusters {
		if len(c.Identities) > max {
			max = len(c.Identities)
		}
	}
	return max
}

// --- Long-term intersection attacks (sections 3.5, 7) ---

// IntersectionRound is one epoch of the attack: who was online, and
// whether the pseudonym under attack posted.
type IntersectionRound struct {
	Online []string
	Posted bool
}

// IntersectionAnonymity runs the classic intersection attack: after
// each posting round, the candidate set is intersected with the users
// online during that round. It returns the candidate-set size after
// each posting round — the victim's shrinking anonymity.
func IntersectionAnonymity(rounds []IntersectionRound) []int {
	var candidates map[string]bool
	var sizes []int
	for _, r := range rounds {
		if !r.Posted {
			continue
		}
		online := map[string]bool{}
		for _, u := range r.Online {
			online[u] = true
		}
		if candidates == nil {
			candidates = online
		} else {
			for u := range candidates {
				if !online[u] {
					delete(candidates, u)
				}
			}
		}
		sizes = append(sizes, len(candidates))
	}
	return sizes
}

// --- Guard exposure (section 3.5) ---

// GuardExposure returns the probability that at least one of the
// victim's sessions entered through a malicious guard. With rotation
// (amnesiac nyms: a fresh guard every boot), exposure compounds per
// session; with a persistent guard it is a single draw — the reason
// quasi-persistent nyms preserve Tor state.
func GuardExposure(sessions int, maliciousFrac float64, rotate bool) float64 {
	if sessions <= 0 {
		return 0
	}
	if !rotate {
		return maliciousFrac
	}
	p := 1.0
	for i := 0; i < sessions; i++ {
		p *= 1 - maliciousFrac
	}
	return 1 - p
}

// SimulateGuardExposure Monte-Carlo-validates GuardExposure: it runs
// trials users through the session model and returns the observed
// compromise fraction.
func SimulateGuardExposure(rng *sim.Rand, trials, sessions int, maliciousFrac float64, rotate bool) float64 {
	if trials <= 0 {
		return 0
	}
	compromised := 0
	for t := 0; t < trials; t++ {
		if rotate {
			for s := 0; s < sessions; s++ {
				if rng.Float64() < maliciousFrac {
					compromised++
					break
				}
			}
			continue
		}
		if rng.Float64() < maliciousFrac {
			compromised++
		}
	}
	return float64(compromised) / float64(trials)
}
