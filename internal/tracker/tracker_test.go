package tracker

import (
	"math"
	"testing"

	"nymix/internal/sim"
	"nymix/internal/webworld"
)

// visit builds a test observation.
func visit(site, addr, cookie, fp, account string) webworld.Visit {
	return webworld.Visit{Site: site, SourceAddr: addr, CookieID: cookie, Fingerprint: fp, Account: account}
}

func sharedExits(addrs ...string) Config {
	cfg := DefaultConfig()
	for _, a := range addrs {
		cfg.SharedAddrs[a] = true
	}
	return cfg
}

func TestCookieLinksAcrossVisits(t *testing.T) {
	cfg := sharedExits("exit-1", "exit-2")
	clusters := Link(cfg, []webworld.Visit{
		visit("twitter.com", "exit-1", "ck-A", "", "dissident47"),
		visit("twitter.com", "exit-2", "ck-A", "", ""),
	})
	if len(clusters) != 1 || len(clusters[0].Identities) < 1 {
		t.Fatalf("clusters = %+v", clusters)
	}
	if !Linked(clusters,
		Identity{"twitter.com", "dissident47"},
		Identity{"twitter.com", "ck-A"}) {
		t.Fatal("same cookie not linked")
	}
}

func TestSeparateNymsUnlinkable(t *testing.T) {
	// Four nyms: distinct cookies, crowd fingerprint, shared exits.
	// Four distinct cookies on the fingerprint put it in the crowd.
	cfg := sharedExits("exit-1", "exit-2", "exit-3")
	fp := "nymix-crowd"
	clusters := Link(cfg, []webworld.Visit{
		visit("twitter.com", "exit-1", "ck-A", fp, "alice-work"),
		visit("gmail.com", "exit-2", "ck-B", fp, "alice-family"),
		visit("facebook.com", "exit-3", "ck-C", fp, "alice-preg"),
		visit("bbc.co.uk", "exit-1", "ck-D", fp, ""),
	})
	if got := LargestCluster(clusters); got != 1 {
		t.Fatalf("largest cluster = %d, want 1 (unlinkable): %+v", got, clusters)
	}
}

func TestUniqueFingerprintLinksEverything(t *testing.T) {
	// The Tails/native baseline: one browser, distinct per-user
	// fingerprint across sites. Two cookies < crowd threshold.
	cfg := sharedExits("exit-1", "exit-2")
	fp := "firefox-24/bob-machine/1366x768"
	clusters := Link(cfg, []webworld.Visit{
		visit("twitter.com", "exit-1", "ck-A", fp, "dissident47"),
		visit("gmail.com", "exit-2", "ck-B", fp, "bob.real"),
	})
	if !Linked(clusters,
		Identity{"twitter.com", "dissident47"},
		Identity{"gmail.com", "bob.real"}) {
		t.Fatal("unique fingerprint failed to link")
	}
}

func TestStainBreaksCrowd(t *testing.T) {
	// Many users share the crowd fingerprint, but a stained browser is
	// unique and linkable across its nym's sessions.
	cfg := sharedExits("exit-1")
	crowd := "nymix-crowd"
	stained := crowd + "/stain:m1"
	visits := []webworld.Visit{
		visit("a.com", "exit-1", "ck-1", crowd, ""),
		visit("b.com", "exit-1", "ck-2", crowd, ""),
		visit("c.com", "exit-1", "ck-3", crowd, ""),
		visit("d.com", "exit-1", "ck-4", crowd, ""),
		visit("twitter.com", "exit-1", "ck-S1", stained, "victim"),
		visit("gmail.com", "exit-1", "ck-S2", stained, "victim-mail"),
	}
	clusters := Link(cfg, visits)
	if !Linked(clusters, Identity{"twitter.com", "victim"}, Identity{"gmail.com", "victim-mail"}) {
		t.Fatal("stained fingerprint not linked")
	}
	if Linked(clusters, Identity{"a.com", "ck-1"}, Identity{"b.com", "ck-2"}) {
		t.Fatal("crowd members wrongly linked")
	}
}

func TestRealAddressLinks(t *testing.T) {
	// Incognito mode: both sites see the same household NAT address.
	cfg := DefaultConfig() // no shared addrs
	clusters := Link(cfg, []webworld.Visit{
		visit("twitter.com", "host-203.0.113.7", "ck-A", "crowd", "persona1"),
		visit("gmail.com", "host-203.0.113.7", "ck-B", "crowd", "persona2"),
	})
	if !Linked(clusters, Identity{"twitter.com", "persona1"}, Identity{"gmail.com", "persona2"}) {
		t.Fatal("shared real address not linked")
	}
}

func TestSharedExitDoesNotLink(t *testing.T) {
	cfg := sharedExits("exit-1")
	clusters := Link(cfg, []webworld.Visit{
		visit("a.com", "exit-1", "ck-1", "crowd", ""),
		visit("b.com", "exit-1", "ck-2", "crowd", ""),
		visit("c.com", "exit-1", "ck-3", "crowd", ""),
		visit("d.com", "exit-1", "ck-4", "crowd", ""),
	})
	if got := LargestCluster(clusters); got != 1 {
		t.Fatalf("exit address linked strangers: %d", got)
	}
}

func TestIntersectionAnonymityShrinks(t *testing.T) {
	users := func(names ...string) []string { return names }
	rounds := []IntersectionRound{
		{Online: users("alice", "bob", "carol", "dave", "eve"), Posted: true},
		{Online: users("alice", "bob", "dave"), Posted: false}, // no post: no info
		{Online: users("alice", "bob", "eve"), Posted: true},
		{Online: users("alice", "carol", "eve"), Posted: true},
		{Online: users("alice", "dave"), Posted: true},
	}
	sizes := IntersectionAnonymity(rounds)
	want := []int{5, 3, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	// Monotone non-increasing by construction.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatal("candidate set grew")
		}
	}
}

func TestIntersectionNoPosts(t *testing.T) {
	if sizes := IntersectionAnonymity([]IntersectionRound{{Online: []string{"a"}, Posted: false}}); len(sizes) != 0 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestGuardExposureAnalytic(t *testing.T) {
	// One session: identical either way.
	if r, p := GuardExposure(1, 0.1, true), GuardExposure(1, 0.1, false); math.Abs(r-p) > 1e-12 {
		t.Fatalf("one-session exposure differs: %v vs %v", r, p)
	}
	// Rotation compounds: 30 sessions at 5% malicious.
	rot := GuardExposure(30, 0.05, true)
	per := GuardExposure(30, 0.05, false)
	if per != 0.05 {
		t.Fatalf("persistent exposure = %v", per)
	}
	want := 1 - math.Pow(0.95, 30)
	if math.Abs(rot-want) > 1e-9 {
		t.Fatalf("rotating exposure = %v, want %v", rot, want)
	}
	if rot < 3*per {
		t.Fatalf("rotation should be far riskier: %v vs %v", rot, per)
	}
	if GuardExposure(0, 0.5, true) != 0 {
		t.Fatal("zero sessions must have zero exposure")
	}
}

func TestSimulateGuardExposureMatchesAnalytic(t *testing.T) {
	rng := sim.NewRand(99)
	for _, rotate := range []bool{true, false} {
		got := SimulateGuardExposure(rng, 20000, 20, 0.07, rotate)
		want := GuardExposure(20, 0.07, rotate)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("rotate=%v: simulated %v, analytic %v", rotate, got, want)
		}
	}
}

func TestClusterEvidenceReported(t *testing.T) {
	cfg := DefaultConfig()
	clusters := Link(cfg, []webworld.Visit{
		visit("a.com", "addr-1", "ck-1", "", ""),
		visit("b.com", "addr-1", "ck-2", "", ""),
	})
	found := false
	for _, c := range clusters {
		for _, e := range c.Evidence {
			if e == "address" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no address evidence in %+v", clusters)
	}
}
