package core

import "nymix/internal/nymerr"

// Registered error codes for the nym-manager layer. Lower layers
// (hypervisor, vm, nymstate) keep their own sentinels in the wrap
// chain; the core code is the classification boundary every caller
// above (fleet, cluster) can rely on.
var (
	// CodeNymExists: a nym with that name is already running or
	// mid-launch.
	CodeNymExists = nymerr.Register("core.nym_exists",
		"nym with that name is already running or mid-launch")
	// CodeNymTerminated: the operation targeted a nym that is already
	// torn down.
	CodeNymTerminated = nymerr.Register("core.nym_terminated",
		"operation targeted a nym that is already torn down")
	// CodeUnknownAnonymizer: the options name an anonymizer kind the
	// manager cannot build.
	CodeUnknownAnonymizer = nymerr.Register("core.unknown_anonymizer",
		"options name an anonymizer kind the manager cannot build")
	// CodeUnknownProvider: the destination names a cloud provider the
	// manager does not know.
	CodeUnknownProvider = nymerr.Register("core.unknown_provider",
		"destination names a cloud provider the manager does not know")
	// CodeHostTampered: the host partition failed Merkle verification;
	// the manager refuses to launch (paper section 3.4).
	CodeHostTampered = nymerr.Register("core.host_tampered",
		"host partition failed integrity verification; launches refused")
	// CodeLaunchRejected: the hypervisor could not create or wire the
	// nymbox (RAM admission, duplicate VM names).
	CodeLaunchRejected = nymerr.Register("core.launch_rejected",
		"hypervisor could not create or wire the nymbox")
	// CodeBootCrashed: a nymbox VM failed its guest boot (e.g. the
	// host OOM wall on an oversubscribed ramp).
	CodeBootCrashed = nymerr.Register("core.boot_crashed",
		"nymbox VM failed its guest boot")
	// CodeBadRestore: archived disk state could not be written back
	// into the fresh nymbox.
	CodeBadRestore = nymerr.Register("core.bad_restore",
		"archived disk state could not be restored into the nymbox")
	// CodeAnonymizerStalled: the nym's communication tool failed to
	// bootstrap.
	CodeAnonymizerStalled = nymerr.Register("core.anonymizer_stalled",
		"nym's communication tool failed to bootstrap")
	// CodeTeardownIncomplete: TerminateNym retired the nym but one or
	// both VM destroys reported trouble.
	CodeTeardownIncomplete = nymerr.Register("core.teardown_incomplete",
		"nym retired but a VM destroy reported trouble")
	// CodeNoLocalArchive: no archive for the nym exists on local media.
	CodeNoLocalArchive = nymerr.Register("core.no_local_archive",
		"no archive for the nym exists on local media")
	// CodeNoVaultProviders: a vault destination named zero providers.
	CodeNoVaultProviders = nymerr.Register("core.no_vault_providers",
		"vault destination named zero providers")
)

// Errors: typed sentinels kept as errors.Is targets for existing
// callers.
var (
	ErrNymExists     = nymerr.New(CodeNymExists, "core: nym already running")
	ErrNymTerminated = nymerr.New(CodeNymTerminated, "core: nym terminated")
	ErrUnknownAnon   = nymerr.New(CodeUnknownAnonymizer, "core: unknown anonymizer")
	ErrNoProvider    = nymerr.New(CodeUnknownProvider, "core: unknown cloud provider")
	ErrHostTampered  = nymerr.New(CodeHostTampered,
		"core: host partition failed integrity verification; refusing to launch nyms")
)
