package core

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/cloud"
	"nymix/internal/nymerr"
	"nymix/internal/nymstate"
	"nymix/internal/sim"
	"nymix/internal/vault"
)

// StoreDest names where quasi-persistent state goes.
type StoreDest struct {
	Provider        string // cloud provider name; "" means local media
	Account         string // pseudonymous cloud account
	AccountPassword string
}

// Local is the local-media destination (a second USB partition),
// trading the cloud's deniability for immunity to the
// ephemeral-loader intersection hole (section 3.5).
var Local = StoreDest{}

// restoredState carries an opened archive into startNym.
type restoredState struct {
	state          *nymstate.State
	ephemeralPhase time.Duration
}

// archiveBlobName is the stored object name for a nym.
func archiveBlobName(nymName string) string { return "nym-" + nymName + ".enc" }

// torConsensusBytes is the cached directory state written into the
// CommVM disk at save time, so the CommVM accounts for ~15% of a
// stored nym (Figure 6's complement to "the AnonVM content accounting
// for 85% of the pseudonym size").
const torConsensusBytes = 2200 << 10

// exportState pauses the nymbox, syncs file systems, and exports the
// writable layers plus anonymizer state (the section 3.5 save path).
// Both VMs resume on every exit path — a failed sync must not leave
// the nymbox wedged in StatePaused.
func (m *Manager) exportState(p *sim.Proc, n *Nym) (*nymstate.State, error) {
	if err := n.anonVM.Pause(); err != nil {
		return nil, err
	}
	defer n.anonVM.Resume()
	if err := n.commVM.Pause(); err != nil {
		return nil, err
	}
	defer n.commVM.Resume()
	// Sync: flush anonymizer state into the CommVM's file system so the
	// disk image is self-contained.
	st := n.anon.ExportState()
	for k, v := range st {
		if err := n.commVM.Disk().WriteFile("/var/lib/anonymizer/"+k, []byte(v)); err != nil {
			return nil, err
		}
	}
	if st["consensus"] == "cached" && !n.commVM.Disk().FS().Exists("/var/lib/anonymizer/cached-consensus.d") {
		if err := n.commVM.Disk().WriteVirtual("/var/lib/anonymizer/cached-consensus.d", torConsensusBytes, 0.62); err != nil {
			return nil, err
		}
	}
	return &nymstate.State{
		Name:      n.name,
		Model:     string(n.model),
		Cycles:    n.cycles,
		AnonDisk:  n.anonVM.Disk().Snapshot(),
		CommDisk:  n.commVM.Disk().Snapshot(),
		AnonState: st,
	}, nil
}

// chargeHostCPU models compression/crypto work the Nym Manager runs
// natively on the host: a full core to itself when the chip has a
// thread free (identical to the old flat sleep), a fair share when a
// fleet's parallel saves contend for the chip.
func (m *Manager) chargeHostCPU(p *sim.Proc, name string, seconds float64) error {
	if seconds <= 0 {
		return nil
	}
	_, err := sim.Await(p, m.host.SubmitNativeTask(name, seconds))
	return err
}

// sealArchive compresses and encrypts, charging simulated CPU time.
func (m *Manager) sealArchive(p *sim.Proc, st *nymstate.State, password string) (*nymstate.Archive, error) {
	logical := nymstate.LogicalSize(st)
	if err := m.chargeHostCPU(p, "compress/"+st.Name, float64(logical)/nymstate.CompressRate); err != nil {
		return nil, err
	}
	arch, err := nymstate.Seal(st, password, m.eng.Rand())
	if err != nil {
		return nil, err
	}
	if err := m.chargeHostCPU(p, "encrypt/"+st.Name, float64(arch.WireSize)/nymstate.CryptoRate); err != nil {
		return nil, err
	}
	return arch, nil
}

// openArchive decrypts and decompresses, charging simulated CPU time.
func (m *Manager) openArchive(p *sim.Proc, arch *nymstate.Archive, password, name string) (*nymstate.State, error) {
	if err := m.chargeHostCPU(p, "decrypt/"+name, float64(arch.WireSize)/nymstate.CryptoRate); err != nil {
		return nil, err
	}
	st, err := nymstate.Open(arch, password, name)
	if err != nil {
		return nil, err
	}
	if err := m.chargeHostCPU(p, "decompress/"+name, float64(nymstate.LogicalSize(st))/nymstate.CompressRate); err != nil {
		return nil, err
	}
	return st, nil
}

// StoreNym archives a nym's state under the password: paused, synced,
// sealed, then uploaded through the nym's own anonymizer (or written
// to local media for Local). The nym keeps running afterwards.
func (m *Manager) StoreNym(p *sim.Proc, n *Nym, password string, dest StoreDest) (int64, error) {
	if n.terminated {
		return 0, ErrNymTerminated
	}
	st, err := m.exportState(p, n)
	if err != nil {
		return 0, err
	}
	// Snapshot dirt now: the export above is what this checkpoint
	// contains, so anything dirtied while the (yielding) seal and
	// upload below run must still read dirty afterwards.
	dirtyAnon, dirtyComm := n.anonVM.DirtyStats(), n.commVM.DirtyStats()
	st.Cycles = n.cycles + 1
	arch, err := m.sealArchive(p, st, password)
	if err != nil {
		return 0, err
	}
	if dest.Provider == "" {
		data, err := arch.Encode()
		if err != nil {
			return 0, err
		}
		m.localStore[archiveBlobName(n.name)] = data
		n.cycles++
		n.markClean(dirtyAnon, dirtyComm)
		return arch.WireSize, nil
	}
	pr, err := m.Provider(dest.Provider)
	if err != nil {
		return 0, err
	}
	if err := pr.CreateAccount(dest.Account, dest.AccountPassword); err != nil {
		return 0, err
	}
	sess, err := cloud.Login(p, n.anon, pr, dest.Account, dest.AccountPassword)
	if err != nil {
		return 0, err
	}
	data, err := arch.Encode()
	if err != nil {
		return 0, err
	}
	if err := sess.Put(p, archiveBlobName(n.name), cloud.Blob{Data: data, WireSize: arch.WireSize}); err != nil {
		return 0, err
	}
	n.cycles++
	n.markClean(dirtyAnon, dirtyComm)
	return arch.WireSize, nil
}

// LoadNym restores a stored nym. For cloud sources this follows the
// paper's workflow exactly: a throwaway ephemeral nym is started just
// to download the archive anonymously, then terminated; the real nym
// then boots from the decrypted images. The ephemeral phase is
// recorded in the result's StartPhases (Figure 7's "Ephemeral Nym"
// bar).
func (m *Manager) LoadNym(p *sim.Proc, name, password string, opts Options, src StoreDest) (*Nym, error) {
	var raw []byte
	var ephemeral time.Duration
	if src.Provider == "" {
		data, ok := m.localStore[archiveBlobName(name)]
		if !ok {
			return nil, nymerr.Newf(CodeNoLocalArchive, "no local archive for %q", name)
		}
		raw = data
	} else {
		start := p.Now()
		loader, err := m.StartNym(p, "loader-"+name, Options{
			Model:      ModelEphemeral,
			Anonymizer: loaderAnonymizer(opts),
			GuardSeed:  opts.GuardSeed, // section 3.5: seeded guards close the loader hole
		})
		if err != nil {
			return nil, fmt.Errorf("core: ephemeral loader: %w", err)
		}
		// On every failure below the loader teardown's own error joins
		// the primary one instead of being dropped: a destroy that
		// failed leaves the throwaway nymbox pinning host RAM, which
		// the caller must see.
		pr, err := m.Provider(src.Provider)
		if err != nil {
			return nil, errors.Join(err, m.TerminateNym(p, loader))
		}
		sess, err := cloud.Login(p, loader.Anonymizer(), pr, src.Account, src.AccountPassword)
		if err != nil {
			return nil, errors.Join(err, m.TerminateNym(p, loader))
		}
		blob, err := sess.Get(p, archiveBlobName(name))
		if err != nil {
			return nil, errors.Join(err, m.TerminateNym(p, loader))
		}
		if err := m.TerminateNym(p, loader); err != nil {
			return nil, err
		}
		raw = blob.Data
		ephemeral = p.Now() - start
	}
	arch, err := nymstate.DecodeArchive(raw)
	if err != nil {
		return nil, err
	}
	st, err := m.openArchive(p, arch, password, name)
	if err != nil {
		return nil, err
	}
	return m.startNym(p, name, opts, &restoredState{state: st, ephemeralPhase: ephemeral})
}

// loaderAnonymizer picks the throwaway loader's transport: the same
// kind as the nym itself so traffic blends.
func loaderAnonymizer(opts Options) string {
	if len(opts.Chain) > 0 {
		return opts.Chain[len(opts.Chain)-1]
	}
	if opts.Anonymizer == "" {
		return "tor"
	}
	return opts.Anonymizer
}

// EndSession closes out a browsing session per the nym's usage model:
// persistent nyms are re-archived (state accretes), pre-configured
// nyms discard everything since their golden snapshot, and ephemeral
// nyms just terminate. In every case the nymbox is destroyed.
func (m *Manager) EndSession(p *sim.Proc, n *Nym, password string, dest StoreDest) error {
	if n.model == ModelPersistent {
		if _, err := m.StoreNym(p, n, password, dest); err != nil {
			return err
		}
	}
	return m.TerminateNym(p, n)
}

// VaultDest names a chunked, deduplicating cloud destination for
// quasi-persistent state: one pseudonymous account per provider, with
// the chunk set replicated or striped across them. Provider order is
// part of the destination identity — striping assigns chunks
// positionally, so stores and loads of the same nym must name
// providers in the same order.
type VaultDest struct {
	Providers       []string
	Account         string
	AccountPassword string
	Placement       vault.Placement
}

// vaultSessions opens one authenticated session per provider through
// the given anonymizer, creating the pseudonymous accounts on first
// use.
func (m *Manager) vaultSessions(p *sim.Proc, anon anonnet.Anonymizer, dest VaultDest) ([]*cloud.Session, error) {
	if len(dest.Providers) == 0 {
		return nil, nymerr.New(CodeNoVaultProviders, "vault destination names no providers")
	}
	sessions := make([]*cloud.Session, 0, len(dest.Providers))
	for _, name := range dest.Providers {
		pr, err := m.Provider(name)
		if err != nil {
			return nil, err
		}
		if err := pr.CreateAccount(dest.Account, dest.AccountPassword); err != nil {
			return nil, err
		}
		sess, err := cloud.Login(p, anon, pr, dest.Account, dest.AccountPassword)
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, sess)
	}
	return sessions, nil
}

// vaultStore returns the nym's vault bound to its cached chunk index,
// creating the index on first use.
func (m *Manager) vaultStore(name string, placement vault.Placement) *vault.Store {
	idx, ok := m.vaultIndexes[name]
	if !ok {
		idx = vault.NewIndex()
		m.vaultIndexes[name] = idx
	}
	return vault.NewStore(name, placement, idx)
}

// StoreNymVault checkpoints a nym through the content-addressed vault:
// the state is chunked, chunks the providers already hold are skipped
// via the locally cached index, and only the delta plus the sealed
// manifest travel through the anonymizer. The returned stats carry the
// wire bytes actually uploaded and, for comparison, what the
// monolithic archive of the same state would have cost.
func (m *Manager) StoreNymVault(p *sim.Proc, n *Nym, password string, dest VaultDest) (vault.SaveStats, error) {
	if n.terminated {
		return vault.SaveStats{}, ErrNymTerminated
	}
	st, err := m.exportState(p, n)
	if err != nil {
		return vault.SaveStats{}, err
	}
	// Snapshot dirt at export: this is the state the checkpoint will
	// hold, so the clean mark commits exactly this much — mutations
	// racing the upload (the save yields for CPU and wire) read dirty
	// against it afterwards, never silently absorbed.
	dirtyAnon, dirtyComm := n.anonVM.DirtyStats(), n.commVM.DirtyStats()
	st.Cycles = n.cycles + 1
	// The chunker (like the monolithic compressor) chews through the
	// full logical state; dedup saves wire and crypto, not compression.
	if err := m.chargeHostCPU(p, "chunk/"+n.name, float64(nymstate.LogicalSize(st))/nymstate.CompressRate); err != nil {
		return vault.SaveStats{}, err
	}
	sessions, err := m.vaultSessions(p, n.anon, dest)
	if err != nil {
		return vault.SaveStats{}, err
	}
	vs := m.vaultStore(n.name, dest.Placement)
	stats, err := vs.Save(p, st, password, sessions, m.eng.Rand())
	if err != nil {
		return stats, err
	}
	// Encryption is charged only for bytes that actually shipped.
	if err := m.chargeHostCPU(p, "encrypt/"+n.name, float64(stats.UploadedBytes)/nymstate.CryptoRate); err != nil {
		return stats, err
	}
	// Price the monolithic baseline for the same state without sealing
	// (or uploading) it: the dedup comparison every caller wants.
	base, err := nymstate.EstimateArchiveWireSize(st)
	if err != nil {
		return stats, err
	}
	stats.BaselineWireBytes = base
	n.cycles++
	n.markClean(dirtyAnon, dirtyComm)
	return stats, nil
}

// LoadNymVault restores a nym from the vault, following the paper's
// cloud-restore workflow: a throwaway ephemeral nym downloads the
// manifest and chunks anonymously, then the real nym boots from the
// verified, reassembled images.
func (m *Manager) LoadNymVault(p *sim.Proc, name, password string, opts Options, dest VaultDest) (*Nym, error) {
	start := p.Now()
	loader, err := m.StartNym(p, "loader-"+name, Options{
		Model:      ModelEphemeral,
		Anonymizer: loaderAnonymizer(opts),
		GuardSeed:  opts.GuardSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: ephemeral loader: %w", err)
	}
	sessions, err := m.vaultSessions(p, loader.Anonymizer(), dest)
	if err != nil {
		return nil, errors.Join(err, m.TerminateNym(p, loader))
	}
	vs := m.vaultStore(name, dest.Placement)
	st, stats, err := vs.Load(p, password, sessions)
	if err != nil {
		return nil, errors.Join(err, m.TerminateNym(p, loader))
	}
	if err := m.TerminateNym(p, loader); err != nil {
		return nil, err
	}
	ephemeral := p.Now() - start
	// Decryption and decompression charge over what came off the wire
	// and what it expands into.
	if err := m.chargeHostCPU(p, "decrypt/"+name, float64(stats.DownloadedBytes)/nymstate.CryptoRate); err != nil {
		return nil, err
	}
	if err := m.chargeHostCPU(p, "decompress/"+name, float64(nymstate.LogicalSize(st))/nymstate.CompressRate); err != nil {
		return nil, err
	}
	n, err := m.startNym(p, name, opts, &restoredState{state: st, ephemeralPhase: ephemeral})
	if err != nil {
		return nil, err
	}
	n.restore = stats
	// The nym's state is byte-identical to the checkpoint it was just
	// rebuilt from, so it starts clean: the first scheduled sweep after
	// a restore (or migration) skips it instead of re-uploading a
	// checkpoint the vault already holds.
	n.markClean(n.anonVM.DirtyStats(), n.commVM.DirtyStats())
	return n, nil
}

// VaultGC prunes chunks the latest manifest no longer references from
// every provider, through the nym's own anonymizer. Run it after a
// save to reclaim space freed by deleted or rewritten files.
func (m *Manager) VaultGC(p *sim.Proc, n *Nym, password string, dest VaultDest) (vault.GCStats, error) {
	if n.terminated {
		return vault.GCStats{}, ErrNymTerminated
	}
	sessions, err := m.vaultSessions(p, n.anon, dest)
	if err != nil {
		return vault.GCStats{}, err
	}
	return m.vaultStore(n.name, dest.Placement).GC(p, password, sessions)
}

// MigrationCost is the priced wire a live migration of one nym would
// put on the shared providers, read entirely from local state — no
// provider round trip.
type MigrationCost struct {
	// RestoreBytes is what the destination's restore would download:
	// the full chunk set the vault index believes the first reachable
	// provider holds. Zero when the index is cold (a nym never saved
	// or loaded through this manager) — callers should fall back to a
	// footprint-derived guess rather than treating the move as free.
	RestoreBytes int64
	// DirtyBytes is the un-checkpointed disk churn a fresh source save
	// would have to ship before the restore can begin — the true delta
	// (pre-compression upper bound) between the nym and its vault.
	DirtyBytes int64
}

// Wire is the candidate move's total priced wire.
func (c MigrationCost) Wire() int64 { return c.RestoreBytes + c.DirtyBytes }

// MigrationCost prices what migrating n through dest would actually
// move over the wire, using the per-nym vault chunk index that delta
// saves maintain. The cost-aware rebalancer ranks candidate victims
// with this — a freshly-checkpointed nym with a warm index is nearly
// free on the save side, while a churning nym pays its whole delta.
func (m *Manager) MigrationCost(n *Nym, dest VaultDest) MigrationCost {
	cost := MigrationCost{DirtyBytes: n.DirtyState().DiskBytes}
	idx, ok := m.vaultIndexes[n.name]
	if !ok {
		return cost
	}
	// Under Replicate the restore is served by the first provider that
	// answers; under Stripe every provider serves its partition — in
	// both cases the union of per-provider known bytes bounds the
	// download (replicas price the largest single holder).
	for _, provider := range dest.Providers {
		known := idx.KnownBytes(provider)
		if dest.Placement == vault.Stripe && len(dest.Providers) > 1 {
			cost.RestoreBytes += known
		} else if known > cost.RestoreBytes {
			cost.RestoreBytes = known
		}
	}
	return cost
}

// LocalArchiveSize returns the stored wire size of a local archive.
func (m *Manager) LocalArchiveSize(name string) (int64, bool) {
	data, ok := m.localStore[archiveBlobName(name)]
	if !ok {
		return 0, false
	}
	arch, err := nymstate.DecodeArchive(data)
	if err != nil {
		return 0, false
	}
	return arch.WireSize, true
}
