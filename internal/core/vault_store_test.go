package core

import (
	"errors"
	"reflect"
	"testing"

	"nymix/internal/guestos"
	"nymix/internal/nymstate"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vault"
	"nymix/internal/vm"
)

// unnamed strips the VM-scoped layer name for content comparison.
func unnamed(img unionfs.Image) unionfs.Image {
	img.Name = ""
	return img
}

func vaultDest(providers ...string) VaultDest {
	if len(providers) == 0 {
		providers = []string{"dropbin"}
	}
	return VaultDest{Providers: providers, Account: "vault-acct", AccountPassword: "cpw"}
}

func TestStoreNymVaultRoundTrip(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest()
	var stats vault.SaveStats
	var anonImg, commImg unionfs.Image
	var guard string
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "alice-blog", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.Browser().Login(p, "twitter.com", "alice", "pw")
		nym.Visit(p, "gmail.com")
		guard = nym.Anonymizer().ExportState()["guard"]
		stats, err = m.StoreNymVault(p, nym, "nym-password", dest)
		if err != nil {
			t.Errorf("store: %v", err)
			return
		}
		// The state as stored: what the paused-and-synced disks held.
		anonImg = nym.AnonVM().Disk().Snapshot()
		commImg = nym.CommVM().Disk().Snapshot()
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
		}
	})
	if stats.TotalChunks == 0 || stats.UploadedBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.NewChunks != stats.TotalChunks {
		t.Fatalf("first save must upload everything: %+v", stats)
	}
	if stats.BaselineWireBytes == 0 {
		t.Fatal("no monolithic baseline priced")
	}

	var restored *Nym
	run(t, eng, func(p *sim.Proc) {
		var err error
		restored, err = m.LoadNymVault(p, "alice-blog", "nym-password", Options{Model: ModelPersistent}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
		}
	})
	if restored == nil {
		t.Fatal("no restored nym")
	}
	// Byte-identical state: the restored writable layers equal the
	// stored ones exactly. The layer name carries the (fresh) VM's id
	// and is not part of the persisted state; blank it for comparison.
	if got := restored.AnonVM().Disk().Snapshot(); !reflect.DeepEqual(unnamed(anonImg), unnamed(got)) {
		t.Fatalf("AnonVM disk differs after vault restore:\nwant %+v\ngot  %+v", anonImg, got)
	}
	if got := restored.CommVM().Disk().Snapshot(); !reflect.DeepEqual(unnamed(commImg), unnamed(got)) {
		t.Fatalf("CommVM disk differs after vault restore:\nwant %+v\ngot  %+v", commImg, got)
	}
	if restored.Cycles() != 1 {
		t.Fatalf("cycles = %d", restored.Cycles())
	}
	if got := restored.Anonymizer().ExportState()["guard"]; got != guard {
		t.Fatalf("guard = %q, want %q", got, guard)
	}
	if cred, ok := restored.Browser().Credentials("twitter.com"); !ok || cred.Account != "alice" {
		t.Fatalf("credentials lost: %+v %v", cred, ok)
	}
	if restored.Phases().EphemeralNym <= 0 {
		t.Fatal("vault cloud load must include the ephemeral-nym phase")
	}
}

// TestVaultIncrementalSaveBeatsMonolithic is the dedup acceptance
// criterion: a persistent nym saved over several sessions with small
// per-session mutations must, from cycle 2 on, ship under 25% of what
// the monolithic archive of the same state would cost.
func TestVaultIncrementalSaveBeatsMonolithic(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest()
	opts := Options{Model: ModelPersistent, AnonDisk: 256 * guestos.MiB}
	const cycles = 4
	var all []vault.SaveStats
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "heavy", opts)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		// Session 1: a rich browsing session builds up real state.
		for _, site := range []string{"twitter.com", "gmail.com", "facebook.com"} {
			if _, err := nym.Browser().Login(p, site, "persona", "pw"); err != nil {
				t.Errorf("login %s: %v", site, err)
				return
			}
		}
		nym.Visit(p, "blog.torproject.org")
		stats, err := m.StoreNymVault(p, nym, "pw", dest)
		if err != nil {
			t.Errorf("store 1: %v", err)
			return
		}
		all = append(all, stats)
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
			return
		}
		// Sessions 2+: restore, catch up on two sites, save back.
		for c := 1; c < cycles; c++ {
			nym, err := m.LoadNymVault(p, "heavy", "pw", opts, dest)
			if err != nil {
				t.Errorf("cycle %d load: %v", c, err)
				return
			}
			nym.Visit(p, "twitter.com")
			nym.Visit(p, "blog.torproject.org")
			stats, err := m.StoreNymVault(p, nym, "pw", dest)
			if err != nil {
				t.Errorf("cycle %d store: %v", c, err)
				return
			}
			all = append(all, stats)
			if err := m.TerminateNym(p, nym); err != nil {
				t.Errorf("cycle %d terminate: %v", c, err)
				return
			}
		}
	})
	if len(all) != cycles {
		t.Fatalf("completed %d cycles, want %d", len(all), cycles)
	}
	for i, stats := range all[1:] {
		frac := float64(stats.UploadedBytes) / float64(stats.BaselineWireBytes)
		if frac >= 0.25 {
			t.Errorf("cycle %d uploaded %d of %d monolithic bytes (%.0f%%), want < 25%%",
				i+2, stats.UploadedBytes, stats.BaselineWireBytes, 100*frac)
		}
		if stats.DedupFrac() < 0.75 {
			t.Errorf("cycle %d dedup fraction %.2f, want >= 0.75", i+2, stats.DedupFrac())
		}
	}
}

func TestLoadNymVaultWrongPassword(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest("gdrive")
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "n", Options{Model: ModelPersistent})
		if _, err := m.StoreNymVault(p, nym, "right", dest); err != nil {
			t.Errorf("store: %v", err)
			return
		}
		m.TerminateNym(p, nym)
		if _, err := m.LoadNymVault(p, "n", "wrong", Options{}, dest); !errors.Is(err, nymstate.ErrBadPassword) {
			t.Errorf("wrong password: %v, want ErrBadPassword", err)
		}
	})
	// The failed loader must not leak a running nym.
	if m.RunningNyms() != 0 {
		t.Fatalf("running nyms = %d", m.RunningNyms())
	}
}

func TestVaultMultiProviderStripe(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest("dropbin", "gdrive")
	dest.Placement = vault.Stripe
	var stats vault.SaveStats
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "striped", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.Browser().Login(p, "facebook.com", "persona", "pw")
		stats, err = m.StoreNymVault(p, nym, "pw", dest)
		if err != nil {
			t.Errorf("store: %v", err)
			return
		}
		m.TerminateNym(p, nym)
		restored, err := m.LoadNymVault(p, "striped", "pw", Options{Model: ModelPersistent}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if cred, ok := restored.Browser().Credentials("facebook.com"); !ok || cred.Account != "persona" {
			t.Errorf("credentials lost across striped restore: %+v %v", cred, ok)
		}
	})
	// Each provider holds a strict subset of the chunk wire bytes.
	a, _ := m.Provider("dropbin")
	b, _ := m.Provider("gdrive")
	ua, ub := a.StoredBytes("vault-acct"), b.StoredBytes("vault-acct")
	if ua == 0 || ub == 0 {
		t.Fatalf("stripe left a provider empty: %d / %d", ua, ub)
	}
	full := stats.ChunkWireBytes + stats.ManifestBytes
	if ua >= full || ub >= full {
		t.Fatalf("stripe did not partition: %d / %d of %d", ua, ub, full)
	}
}

func TestVaultGCReclaimsStaleChunksOnly(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest()
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "gcnym", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		// A large scratch file that the next session deletes.
		if err := nym.AnonVM().Disk().WriteVirtual("/home/user/Downloads/video.mp4", 8<<20, 0.99); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if _, err := m.StoreNymVault(p, nym, "pw", dest); err != nil {
			t.Errorf("store 1: %v", err)
			return
		}
		if err := nym.AnonVM().Disk().Remove("/home/user/Downloads/video.mp4"); err != nil {
			t.Errorf("remove: %v", err)
			return
		}
		if _, err := m.StoreNymVault(p, nym, "pw", dest); err != nil {
			t.Errorf("store 2: %v", err)
			return
		}
		gc, err := m.VaultGC(p, nym, "pw", dest)
		if err != nil {
			t.Errorf("gc: %v", err)
			return
		}
		if gc.Deleted == 0 || gc.FreedBytes < 4<<20 {
			t.Errorf("gc reclaimed too little: %+v", gc)
		}
		m.TerminateNym(p, nym)
		// The nym still restores perfectly after GC.
		if _, err := m.LoadNymVault(p, "gcnym", "pw", Options{Model: ModelPersistent}, dest); err != nil {
			t.Errorf("load after gc: %v", err)
		}
	})
}

// TestExportStateResumesVMsOnError is the regression test for the
// paused-VM leak: a failed file-system sync during a save must resume
// both VMs, not leave the nymbox wedged in StatePaused.
func TestExportStateResumesVMsOnError(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		// A CommVM disk too small for the ~2.2 MB consensus cache makes
		// exportState's WriteVirtual fail partway through the sync.
		nym, err := m.StartNym(p, "wedge", Options{Model: ModelPersistent, CommDisk: 256 << 10})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if _, err := m.StoreNym(p, nym, "pw", Local); err == nil {
			t.Error("store into a too-small CommVM disk should fail")
			return
		}
		if got := nym.AnonVM().State(); got != vm.StateRunning {
			t.Errorf("AnonVM state after failed store = %v, want running", got)
		}
		if got := nym.CommVM().State(); got != vm.StateRunning {
			t.Errorf("CommVM state after failed store = %v, want running", got)
		}
		// The nymbox still works: browsing and a later local save with
		// enough room both succeed.
		if _, err := nym.Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit after failed store: %v", err)
		}
		// The vault path shares exportState and must fail-resume too.
		if _, err := m.StoreNymVault(p, nym, "pw", vaultDest()); err == nil {
			t.Error("vault store should also fail on the full disk")
		}
		if got := nym.CommVM().State(); got != vm.StateRunning {
			t.Errorf("CommVM state after failed vault store = %v, want running", got)
		}
	})
}

// TestDirtyMarksFollowCheckpointLifecycle: a fresh nym is dirty,
// StoreNymVault cleans it, browsing re-dirties it, and a nym restored
// from the vault starts clean — its state is byte-identical to the
// checkpoint it was rebuilt from.
func TestDirtyMarksFollowCheckpointLifecycle(t *testing.T) {
	eng, m := newManager(t)
	dest := vaultDest()
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "dirty-nym", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if !nym.StateDirty() {
			t.Error("fresh nym reads clean; its boot alone mutated state")
		}
		if _, err := m.StoreNymVault(p, nym, "pw", dest); err != nil {
			t.Errorf("store: %v", err)
			return
		}
		if nym.StateDirty() {
			t.Errorf("nym dirty right after its checkpoint: %+v", nym.DirtyState())
		}
		gen := nym.CheckpointGen()
		if _, err := nym.Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit: %v", err)
			return
		}
		d := nym.DirtyState()
		if !d.Dirty || d.RAMPages <= 0 || d.DiskBytes <= 0 {
			t.Errorf("browsing left no dirt: %+v", d)
		}
		if _, err := m.StoreNymVault(p, nym, "pw", dest); err != nil {
			t.Errorf("second store: %v", err)
			return
		}
		if nym.StateDirty() {
			t.Error("nym dirty after its delta checkpoint")
		}
		if got := nym.CheckpointGen(); got != gen+1 {
			t.Errorf("checkpoint generation = %d, want %d", got, gen+1)
		}
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
			return
		}
		restored, err := m.LoadNymVault(p, "dirty-nym", "pw", Options{Model: ModelPersistent}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if restored.StateDirty() {
			t.Errorf("restored nym dirty: %+v — its state equals the checkpoint it came from", restored.DirtyState())
		}
		if got := restored.CheckpointGen(); got != gen+1 {
			t.Errorf("restored checkpoint generation = %d, want %d (persisted in the manifest)", got, gen+1)
		}
		if err := m.TerminateNym(p, restored); err != nil {
			t.Errorf("terminate restored: %v", err)
		}
	})
}
