package core

import (
	"fmt"
	"path"
	"time"

	"nymix/internal/guestos"
	"nymix/internal/installedos"
	"nymix/internal/sanitize"
	"nymix/internal/sim"
	"nymix/internal/vm"
)

// SaniVM sizing.
const (
	saniRAM  = 256 * guestos.MiB
	saniDisk = 64 * guestos.MiB
)

// scrubRate is the SaniVM's analysis+transform throughput.
const scrubRate = 24 << 20 // bytes/second

// SaniVM lazily launches the single non-networked sanitation VM
// (section 3.6: "Nymix employs a SaniVM to isolate the user's data to
// a single non-networked environment").
func (m *Manager) SaniVM(p *sim.Proc) (*vm.VM, error) {
	if m.sani != nil {
		return m.sani, nil
	}
	sani, err := m.host.LaunchVM(vm.Config{
		Name: "sanivm", Role: guestos.RoleSaniVM,
		RAMBytes: saniRAM, DiskBytes: saniDisk,
	})
	if err != nil {
		return nil, err
	}
	if err := sani.Boot(p); err != nil {
		return nil, err
	}
	if sani.Node() != nil {
		panic("core: SaniVM must be non-networked")
	}
	m.sani = sani
	return sani, nil
}

// TransferReport describes one sanitized file transfer.
type TransferReport struct {
	SourcePath string
	DestPath   string
	RisksFound []sanitize.Risk // pre-scrub analysis shown to the user
	Applied    []string
	Residual   []sanitize.Risk // what remains after scrubbing
	Bytes      int
}

// TransferFile moves a file from the installed OS into a nym through
// the SaniVM pipeline: mount read-only, analyze, scrub under the
// user's options, then hop hypervisor shared folders into the nym's
// AnonVM inbox (sections 3.6 and 4.3). The returned report is what
// the SaniVM UI would show.
func (m *Manager) TransferFile(p *sim.Proc, src *installedos.Image, srcPath string, n *Nym, opts sanitize.Options) (*TransferReport, error) {
	if n.terminated {
		return nil, ErrNymTerminated
	}
	sani, err := m.SaniVM(p)
	if err != nil {
		return nil, err
	}
	data, err := src.Disk().FS().ReadFile(srcPath)
	if err != nil {
		return nil, fmt.Errorf("core: sanivm mount read: %w", err)
	}
	base := path.Base(srcPath)
	// The per-nym drop directory triggers the scrubbing workflow.
	inPath := "/nyms/" + n.name + "/in/" + base
	if err := sani.Disk().WriteFile(inPath, data); err != nil {
		return nil, err
	}
	report := &TransferReport{SourcePath: srcPath}
	report.RisksFound = sanitize.Analyze(base, data)
	// Analysis plus transformation time scales with the file.
	p.Sleep(time.Duration(float64(len(data)) / scrubRate * float64(time.Second)))
	res, err := sanitize.Scrub(base, data, opts)
	if err != nil {
		return nil, fmt.Errorf("core: scrub: %w", err)
	}
	report.Applied = res.Applied
	report.Residual = res.Residual
	report.Bytes = len(res.Data)
	outPath := "/nyms/" + n.name + "/out/" + base
	if err := sani.Disk().WriteFile(outPath, res.Data); err != nil {
		return nil, err
	}
	report.DestPath = "/media/inbox/" + base
	if err := m.host.MoveFile(sani, outPath, n.anonVM, report.DestPath); err != nil {
		return nil, err
	}
	// The staging copies do not linger in the SaniVM.
	sani.Disk().Remove(inPath)
	sani.Disk().Remove(outPath)
	return report, nil
}

// BootInstalledOS boots the machine's installed OS as a
// (non-anonymous) nymbox: repair if needed, then boot into the COW
// overlay (section 3.7). Returns the repair and boot durations.
func (m *Manager) BootInstalledOS(p *sim.Proc, img *installedos.Image) (repair, boot time.Duration, err error) {
	repair, err = img.Repair(p)
	if err != nil {
		return 0, 0, err
	}
	boot, err = img.Boot(p)
	if err != nil {
		return repair, 0, err
	}
	return repair, boot, nil
}
