// Package core implements the Nym Manager, the heart of the Nymix
// architecture (paper section 3): supervisory control over nymbox
// creation, longevity, and destruction.
//
// Each nym the user starts gets a nymbox — an AnonVM for browsing and
// a CommVM running a pluggable anonymizer, joined by a private virtual
// wire — so that all client-side state and network identity bind to
// exactly one pseudonym. Nyms follow one of three usage models:
// ephemeral (amnesia on termination), persistent (state re-archived
// after every session), or pre-configured (a golden snapshot restored
// each session, so stains are scrubbed on the next boot). Archived
// state is compressed, encrypted, and stored on cloud providers
// through the nym's own anonymizer, or on local media. Files cross
// into a nym only through the SaniVM's scrubbing pipeline.
package core

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/anonnet"

	// Transport implementations register their factories from init;
	// importing them is what makes their kinds buildable.
	_ "nymix/internal/anonnet/dissent"
	_ "nymix/internal/anonnet/incognito"
	_ "nymix/internal/anonnet/mixnet"
	_ "nymix/internal/anonnet/sweet"
	_ "nymix/internal/anonnet/tor"

	"nymix/internal/browser"
	"nymix/internal/buddies"
	"nymix/internal/cloud"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vault"
	"nymix/internal/vm"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// UsageModel selects a nym's persistence behaviour (section 3.5).
type UsageModel string

// The three usage models.
const (
	ModelEphemeral     UsageModel = "ephemeral"
	ModelPersistent    UsageModel = "persistent"
	ModelPreconfigured UsageModel = "preconfigured"
)

// Options parameterizes a new nym.
type Options struct {
	Model      UsageModel
	Anonymizer string   // "tor", "dissent", "incognito"
	Chain      []string // optional serial chain (section 3.3); overrides Anonymizer
	// VM sizing; zero values take the paper's evaluation defaults.
	AnonRAM  int64
	AnonDisk int64
	CommRAM  int64
	CommDisk int64
	CacheCap int64 // browser cache cap; 0 = Chromium's 83 MB default
	// GuardSeed, when set, derives the Tor entry guard
	// deterministically (section 3.5's fix for the ephemeral-loader
	// intersection hole).
	GuardSeed string
	// DissentMembers is the anonymity set size for Dissent nyms.
	DissentMembers int
}

// Evaluation-default VM sizes (section 5.2): "we allocated 16 MB disk
// space and 128 MB RAM to each CommVM and 128 MB disk space to each
// AnonVM", with 384 MB AnonVM RAM for web workloads.
const (
	DefaultAnonRAM  = 384 * guestos.MiB
	DefaultAnonDisk = 128 * guestos.MiB
	DefaultCommRAM  = 128 * guestos.MiB
	DefaultCommDisk = 16 * guestos.MiB
)

func (o *Options) fillDefaults() {
	if o.Model == "" {
		o.Model = ModelEphemeral
	}
	if o.Anonymizer == "" && len(o.Chain) == 0 {
		o.Anonymizer = "tor"
	}
	if o.AnonRAM == 0 {
		o.AnonRAM = DefaultAnonRAM
	}
	if o.AnonDisk == 0 {
		o.AnonDisk = DefaultAnonDisk
	}
	if o.CommRAM == 0 {
		o.CommRAM = DefaultCommRAM
	}
	if o.CommDisk == 0 {
		o.CommDisk = DefaultCommDisk
	}
	if o.DissentMembers == 0 {
		o.DissentMembers = 16
	}
}

// Manager is the Nym Manager.
type Manager struct {
	eng   *sim.Engine
	net   *vnet.Network
	world *webworld.World
	host  *hypervisor.Host
	// vmPrefix scopes VM (and so network node) names to this manager's
	// host, so several managers can share one simulated Internet. The
	// default single-host deployment keeps the paper's bare names.
	vmPrefix string
	nyms     map[string]*Nym
	// starting reserves names while a nymbox is mid-launch, so
	// concurrent StartNym pipelines (internal/fleet) cannot race two
	// nyms onto one name.
	starting  map[string]bool
	nextID    int
	providers map[string]*cloud.Provider
	// localStore models a second USB drive / local partition for
	// quasi-persistent state kept off the cloud.
	localStore map[string][]byte
	// vaultIndexes caches, per nym, which chunk addresses each
	// provider already holds — what makes vault saves delta saves.
	vaultIndexes map[string]*vault.Index
	sani         *vm.VM
}

// ManagerConfig carries the host-scoped wiring that distinguishes one
// Nymix machine from another when several share a simulated Internet.
// The zero value reproduces the paper's single-host deployment.
type ManagerConfig struct {
	// Uplink overrides the host's uplink link parameters (default:
	// the paper's rate-limited webworld.UplinkConfig). A production
	// cluster host gets a datacenter-grade uplink, not a DSL line.
	Uplink *vnet.LinkConfig
	// Providers is a shared cloud-provider set. When nil the manager
	// creates the default providers itself (valid only once per
	// world); a cluster builds one set with DefaultProviders and hands
	// it to every manager, so a vault checkpoint stored through host A
	// is visible to a restore on host B.
	Providers map[string]*cloud.Provider
	// Gateway overrides the node the host uplinks to (default: the
	// world's LAN gateway). A multi-region cluster attaches each host
	// to its region's gateway router (webworld.EnsureRegion); the host
	// node then inherits the gateway's region label, so region severs
	// partition the host along with its region.
	Gateway *vnet.Node
}

// DefaultProviders registers the standard cloud providers (dropbin,
// gdrive) on the world's backbone, with quota bytes per account. Call
// it once per world and share the result among managers.
func DefaultProviders(world *webworld.World, quota int64) map[string]*cloud.Provider {
	providerCfg := vnet.LinkConfig{Latency: 2 * time.Millisecond, Capacity: 1e9 / 8}
	out := make(map[string]*cloud.Provider)
	for _, name := range []string{"dropbin", "gdrive"} {
		out[name] = cloud.NewProvider(world.Net(), world.Internet(), name, quota, providerCfg)
	}
	return out
}

// NewManager boots a Nymix host attached to the world's gateway and
// registers the default cloud providers.
func NewManager(eng *sim.Engine, world *webworld.World, hostCfg hypervisor.Config) (*Manager, error) {
	return NewManagerWith(eng, world, hostCfg, ManagerConfig{})
}

// NewManagerWith boots a Nymix host with explicit host-scoped wiring;
// see ManagerConfig. A host named anything but the default prefixes
// its VMs' names, so many hosts coexist on one network.
func NewManagerWith(eng *sim.Engine, world *webworld.World, hostCfg hypervisor.Config, cfg ManagerConfig) (*Manager, error) {
	host, err := hypervisor.New(eng, world.Net(), hostCfg)
	if err != nil {
		return nil, err
	}
	uplink := webworld.UplinkConfig
	if cfg.Uplink != nil {
		uplink = *cfg.Uplink
	}
	gateway := world.Gateway()
	if cfg.Gateway != nil {
		gateway = cfg.Gateway
		host.Node().SetRegion(gateway.Region())
	}
	host.ConnectUplink(gateway, uplink)
	m := &Manager{
		eng:          eng,
		net:          world.Net(),
		world:        world,
		host:         host,
		nyms:         make(map[string]*Nym),
		starting:     make(map[string]bool),
		providers:    cfg.Providers,
		localStore:   make(map[string][]byte),
		vaultIndexes: make(map[string]*vault.Index),
	}
	if name := host.Node().Name(); name != "host" {
		m.vmPrefix = name + "."
	}
	if m.providers == nil {
		m.providers = DefaultProviders(world, 2<<30)
	}
	return m, nil
}

// Host returns the hypervisor.
func (m *Manager) Host() *hypervisor.Host { return m.host }

// World returns the simulated Internet.
func (m *Manager) World() *webworld.World { return m.world }

// Engine returns the simulation engine.
func (m *Manager) Engine() *sim.Engine { return m.eng }

// Provider returns a registered cloud provider.
func (m *Manager) Provider(name string) (*cloud.Provider, error) {
	p, ok := m.providers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoProvider, name)
	}
	return p, nil
}

// Nym returns a running nym by name, or nil.
func (m *Manager) Nym(name string) *Nym { return m.nyms[name] }

// RunningNyms returns the number of live nyms.
func (m *Manager) RunningNyms() int { return len(m.nyms) }

// StartPhases records a nym's startup phase durations — the bars of
// Figure 7.
type StartPhases struct {
	EphemeralNym time.Duration // cloud-restore helper nym (quasi-persistent loads only)
	BootVM       time.Duration
	StartAnon    time.Duration
	FirstPage    time.Duration // filled by the first Visit
}

// Total sums the phases.
func (s StartPhases) Total() time.Duration {
	return s.EphemeralNym + s.BootVM + s.StartAnon + s.FirstPage
}

// Nym is one running pseudonym bound to its nymbox.
type Nym struct {
	mgr     *Manager
	name    string
	model   UsageModel
	opts    Options
	anonVM  *vm.VM
	commVM  *vm.VM
	anon    anonnet.Anonymizer
	browser *browser.Browser
	phases  StartPhases
	cycles  int
	// restore carries the vault download stats when this nym was
	// restored through LoadNymVault; zero for fresh or monolithic
	// starts. Cluster migration sums it into cross-host wire cost.
	restore vault.LoadStats
	// markAnon/markComm snapshot both VMs' dirty counters at the last
	// successful checkpoint (or vault restore): the nym is clean — its
	// checkpointable state unchanged — while the current counters
	// still equal the marks. A fresh nym's zero marks always compare
	// dirty, because booting itself dirties pages.
	markAnon   vm.DirtyStats
	markComm   vm.DirtyStats
	terminated bool
	buddiesMon *buddies.Monitor // optional intersection-attack guard (section 7)
}

// Name returns the nym's name.
func (n *Nym) Name() string { return n.name }

// Model returns the usage model.
func (n *Nym) Model() UsageModel { return n.model }

// AnonVM returns the nym's browsing VM.
func (n *Nym) AnonVM() *vm.VM { return n.anonVM }

// CommVM returns the nym's anonymizer VM.
func (n *Nym) CommVM() *vm.VM { return n.commVM }

// Anonymizer returns the nym's communication tool.
func (n *Nym) Anonymizer() anonnet.Anonymizer { return n.anon }

// Browser returns the nym's browser.
func (n *Nym) Browser() *browser.Browser { return n.browser }

// Phases returns the startup phase timings.
func (n *Nym) Phases() StartPhases { return n.phases }

// Cycles returns completed save/restore cycles.
func (n *Nym) Cycles() int { return n.cycles }

// RestoreStats returns the vault download stats of the restore that
// produced this nym (zero unless it came through LoadNymVault).
func (n *Nym) RestoreStats() vault.LoadStats { return n.restore }

// DirtyState reports a nym's mutation state relative to its last
// recorded checkpoint — what a checkpoint scheduler reads to decide
// whether saving this nym would ship anything new.
type DirtyState struct {
	// Dirty is true when any state-mutating write happened since the
	// last checkpoint (or restore). A never-checkpointed nym is
	// always dirty: its boot alone mutated state.
	Dirty bool
	// Gen is the combined mutation generation of both VMs.
	Gen uint64
	// RAMPages counts unique RAM pages dirtied since the checkpoint.
	RAMPages int64
	// DiskBytes counts writable-disk bytes churned since the
	// checkpoint — the portion of the dirt a vault save would
	// actually re-chunk.
	DiskBytes int64
}

// DirtyState returns the nym's dirt relative to its last checkpoint.
func (n *Nym) DirtyState() DirtyState {
	a, c := n.anonVM.DirtyStats(), n.commVM.DirtyStats()
	return DirtyState{
		Dirty:     a.Gen != n.markAnon.Gen || c.Gen != n.markComm.Gen,
		Gen:       a.Gen + c.Gen,
		RAMPages:  (a.RAMPages - n.markAnon.RAMPages) + (c.RAMPages - n.markComm.RAMPages),
		DiskBytes: (a.DiskBytes - n.markAnon.DiskBytes) + (c.DiskBytes - n.markComm.DiskBytes),
	}
}

// StateDirty reports whether the nym mutated since its last
// checkpoint. Clean nyms are safe for a checkpoint sweep to skip:
// their last save already holds everything a restore would need.
func (n *Nym) StateDirty() bool { return n.DirtyState().Dirty }

// DirtyDiskTotal returns the cumulative writable-disk bytes churned
// over both VMs' lifetimes — the raw vm.DirtyStats counters, NOT
// reset by checkpoints. Successive snapshots of this total are what
// the adaptive sweep cadence differentiates into a per-nym dirty
// byte-rate: only disk churn prices checkpoint wire (RAM dirt marks
// the nym dirty but never ships), so the rate deliberately excludes
// RAMPages. The counters restart from zero when the nym is rebuilt
// (crash-restore, migration); rate observers clamp negative deltas.
func (n *Nym) DirtyDiskTotal() int64 {
	return n.anonVM.DirtyStats().DiskBytes + n.commVM.DirtyStats().DiskBytes
}

// CheckpointGen returns the nym's checkpoint generation: how many
// state checkpoints have been recorded over its lifetime. It is the
// save-cycle counter (Cycles) under its scheduling-domain name — the
// counter persists inside the sealed state, so the generation is
// monotonic per nym even across crash-restores and cross-host
// migrations through the vault.
func (n *Nym) CheckpointGen() int { return n.Cycles() }

// markClean records the given VM dirty snapshots as the nym's
// checkpoint baseline. Callers snapshot the counters at export time,
// so mutations racing the (yielding) upload stay dirty.
func (n *Nym) markClean(anon, comm vm.DirtyStats) {
	n.markAnon, n.markComm = anon, comm
}

// StartNym creates, wires, and boots a fresh nymbox, then bootstraps
// its anonymizer. It blocks the calling process for the full startup.
func (m *Manager) StartNym(p *sim.Proc, name string, opts Options) (*Nym, error) {
	return m.startNym(p, name, opts, nil)
}

// startNym optionally restores archived state (restore != nil).
func (m *Manager) startNym(p *sim.Proc, name string, opts Options, restore *restoredState) (*Nym, error) {
	if m.nyms[name] != nil || m.starting[name] {
		return nil, fmt.Errorf("%w: %q", ErrNymExists, name)
	}
	m.starting[name] = true
	defer delete(m.starting, name)
	// Section 3.4: verify the host partition against its well-known
	// Merkle root and "safely shut down rather than risk vulnerability
	// if a modified block is detected".
	if err := m.host.VerifyBaseImage(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHostTampered, err)
	}
	opts.fillDefaults()
	m.nextID++
	id := m.nextID
	anonName := fmt.Sprintf("%snym%d-anon", m.vmPrefix, id)
	commName := fmt.Sprintf("%snym%d-comm", m.vmPrefix, id)
	anonVM, err := m.host.LaunchVM(vm.Config{
		Name: anonName, Role: guestos.RoleAnonVM,
		RAMBytes: opts.AnonRAM, DiskBytes: opts.AnonDisk, Anonymizer: opts.Anonymizer,
	})
	if err != nil {
		return nil, nymerr.Wrap(CodeLaunchRejected, err, "launch AnonVM").AddContext("nym", name)
	}
	commVM, err := m.host.LaunchVM(vm.Config{
		Name: commName, Role: guestos.RoleCommVM,
		RAMBytes: opts.CommRAM, DiskBytes: opts.CommDisk, Anonymizer: opts.Anonymizer,
	})
	if err != nil {
		m.host.DestroyVM(p, anonVM)
		return nil, nymerr.Wrap(CodeLaunchRejected, err, "launch CommVM").AddContext("nym", name)
	}
	// From here on every error path must tear down the half-built
	// nymbox; the deferred guard makes leaking it impossible by
	// construction.
	launched := false
	defer func() {
		if !launched {
			m.host.DestroyVM(p, anonVM)
			m.host.DestroyVM(p, commVM)
		}
	}()
	if err := m.host.WireNymbox(anonVM, commVM); err != nil {
		return nil, nymerr.Wrap(CodeLaunchRejected, err, "wire nymbox").AddContext("nym", name)
	}

	// Boot both VMs in parallel; the phase is the slower of the two.
	bootStart := p.Now()
	var anonErr, commErr error
	anonDone := m.eng.Go(anonName+"/boot", func(bp *sim.Proc) { anonErr = m.bootVM(bp, anonVM) })
	commDone := m.eng.Go(commName+"/boot", func(bp *sim.Proc) { commErr = m.bootVM(bp, commVM) })
	sim.Await(p, anonDone)
	sim.Await(p, commDone)
	if anonErr != nil {
		return nil, nymerr.Wrap(CodeBootCrashed, anonErr, "boot AnonVM").AddContext("nym", name)
	}
	if commErr != nil {
		return nil, nymerr.Wrap(CodeBootCrashed, commErr, "boot CommVM").AddContext("nym", name)
	}
	bootDur := p.Now() - bootStart

	// Restore archived disks before the anonymizer starts, so Tor sees
	// its cached state.
	if restore != nil {
		if err := anonVM.Disk().Restore(restore.state.AnonDisk); err != nil {
			return nil, nymerr.Wrap(CodeBadRestore, err, "restore AnonVM disk").AddContext("nym", name)
		}
		if err := commVM.Disk().Restore(restore.state.CommDisk); err != nil {
			return nil, nymerr.Wrap(CodeBadRestore, err, "restore CommVM disk").AddContext("nym", name)
		}
	}

	anon, err := m.buildAnonymizer(opts, commName)
	if err != nil {
		return nil, err
	}
	if restore != nil && restore.state.AnonState != nil {
		anon.ImportState(restore.state.AnonState)
	}
	anonStart := p.Now()
	if err := anon.Start(p); err != nil {
		return nil, nymerr.Wrapf(CodeAnonymizerStalled, err, "start %s", anon.Name()).
			AddContext("nym", name)
	}
	anonDur := p.Now() - anonStart

	n := &Nym{
		mgr:    m,
		name:   name,
		model:  opts.Model,
		opts:   opts,
		anonVM: anonVM,
		commVM: commVM,
		anon:   anon,
		phases: StartPhases{BootVM: bootDur, StartAnon: anonDur},
	}
	if restore != nil {
		n.cycles = restore.state.Cycles
		n.phases.EphemeralNym = restore.ephemeralPhase
	}
	n.browser = browser.New(m.world, m.net, anonVM, commName, anon, browser.Config{
		CacheCap:  opts.CacheCap,
		RenderCPU: m.host.SubmitVMTask,
	})
	m.nyms[name] = n
	launched = true
	return n, nil
}

// bootCPUFrac is the share of a guest's boot duration that is vCPU
// work rather than I/O waiting. On an uncontended chip the CPU leg
// finishes well inside the boot sleep (0.35/0.8 of the base), so
// single-nym startup timings are unchanged; when a fleet ramp packs
// more booting VMs than the chip has threads, boots become CPU-bound
// and stretch — which is what the fleet start gate exists to contain.
const bootCPUFrac = 0.35

// bootVM runs one guest's boot: the boot sleep and the boot's vCPU
// work proceed in parallel, and the boot completes when both have.
// The chip task is drained even when the boot fails — otherwise a
// failed boot (the host OOM wall on an oversubscribed ramp) would
// leave a phantom task stealing fair-share throughput from surviving
// nyms for the rest of its run.
func (m *Manager) bootVM(p *sim.Proc, v *vm.VM) error {
	base := guestos.BootProfileFor(v.Role()).Base
	cpu := m.host.SubmitVMTask(v.Name()+"/boot-cpu", bootCPUFrac*base.Seconds())
	if err := v.Boot(p); err != nil {
		sim.Await(p, cpu)
		return err
	}
	_, err := sim.Await(p, cpu)
	return err
}

// buildAnonymizer constructs the pluggable communication tool through
// the anonnet transport registry.
func (m *Manager) buildAnonymizer(opts Options, commName string) (anonnet.Transport, error) {
	env := anonnet.Env{
		Net:      m.net,
		World:    m.world,
		CommNode: commName,
		HostNode: m.host.Node().Name(),
		Opts: anonnet.TransportOpts{
			GuardSeed:      opts.GuardSeed,
			DissentMembers: opts.DissentMembers,
		},
	}
	build := func(kind string) (anonnet.Transport, error) {
		t, err := anonnet.NewTransport(kind, env)
		if err != nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAnon, kind)
		}
		return t, nil
	}
	if len(opts.Chain) > 0 {
		var stages []anonnet.Transport
		for _, kind := range opts.Chain {
			s, err := build(kind)
			if err != nil {
				return nil, err
			}
			stages = append(stages, s)
		}
		return anonnet.NewChain(stages...), nil
	}
	return build(opts.Anonymizer)
}

// Visit loads a page in the nym's browser, recording the first-page
// phase.
func (n *Nym) Visit(p *sim.Proc, host string) (browser.VisitResult, error) {
	if n.terminated {
		return browser.VisitResult{}, ErrNymTerminated
	}
	res, err := n.browser.Visit(p, host)
	if err == nil && n.phases.FirstPage == 0 {
		n.phases.FirstPage = res.Elapsed
	}
	return res, err
}

// EnableBuddies attaches the section 7 anonymity monitor: linkable
// posts from this nym are gated so its intersection-attack candidate
// set never falls below the policy floor.
func (n *Nym) EnableBuddies(mon *buddies.Monitor, policy buddies.Policy) {
	mon.Register(n.name, policy)
	n.buddiesMon = mon
}

// Post publishes to a site through the nym's browser. With Buddies
// enabled, the post is first cleared against the anonymity policy and
// suppressed (with ErrBelowThreshold wrapped) when publishing now
// would identify the user too narrowly.
func (n *Nym) Post(p *sim.Proc, host, content string) (browser.VisitResult, error) {
	if n.terminated {
		return browser.VisitResult{}, ErrNymTerminated
	}
	if n.buddiesMon != nil {
		if err := n.buddiesMon.RequestPost(n.name); err != nil {
			return browser.VisitResult{}, err
		}
	}
	return n.browser.Post(p, host, content)
}

// TerminateNym shuts a nym down: the anonymizer stops, both VMs are
// destroyed with their memory securely erased, and — for an ephemeral
// nym — every trace is gone ("turning off a pseudonym results in
// amnesia", section 3.4). Teardown always attempts both destroys and
// always retires the nym: a half-dead nymbox (anonymizer stopped, one
// VM gone) must never linger in the running set where it would pin
// host memory and block a restart under the same name.
func (m *Manager) TerminateNym(p *sim.Proc, n *Nym) error {
	if n.terminated {
		return ErrNymTerminated
	}
	n.anon.Stop()
	anonErr := m.host.DestroyVM(p, n.anonVM)
	commErr := m.host.DestroyVM(p, n.commVM)
	n.terminated = true
	delete(m.nyms, n.name)
	if err := errors.Join(anonErr, commErr); err != nil {
		return nymerr.Wrapf(CodeTeardownIncomplete, err, "terminate %q", n.name)
	}
	return nil
}
