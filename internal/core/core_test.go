package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nymix/internal/buddies"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/installedos"
	"nymix/internal/nymerr"
	"nymix/internal/sanitize"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/webworld"
)

func newManager(t *testing.T) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine(51)
	_, world := webworld.BuildDefault(eng)
	m, err := NewManager(eng, world, hypervisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// run executes fn as a sim process and drains the engine.
func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.Run()
}

func TestStartNymBuildsIsolatedNymbox(t *testing.T) {
	eng, m := newManager(t)
	var nym *Nym
	run(t, eng, func(p *sim.Proc) {
		var err error
		nym, err = m.StartNym(p, "news", Options{})
		if err != nil {
			t.Errorf("start: %v", err)
		}
	})
	if nym == nil {
		t.Fatal("no nym")
	}
	if nym.Model() != ModelEphemeral {
		t.Fatalf("default model = %v", nym.Model())
	}
	if nym.Anonymizer().Name() != "tor" {
		t.Fatalf("default anonymizer = %v", nym.Anonymizer().Name())
	}
	net := m.World().Net()
	anonName := nym.AnonVM().Name()
	commName := nym.CommVM().Name()
	if !net.CanReach(anonName, commName, "socks") {
		t.Fatal("virtual wire missing")
	}
	for _, dst := range []string{"host", "site:twitter.com", "intranet-fileserver"} {
		if net.CanReach(anonName, dst, "tcp") {
			t.Errorf("AnonVM reaches %s directly", dst)
		}
	}
	if net.CanReach(commName, "intranet-fileserver", "tcp") {
		t.Error("CommVM reaches the intranet")
	}
	if !net.CanReach(commName, "site:twitter.com", "tor") {
		t.Error("CommVM cannot reach the Internet")
	}
}

func TestStartPhasesRecorded(t *testing.T) {
	eng, m := newManager(t)
	var nym *Nym
	run(t, eng, func(p *sim.Proc) {
		nym, _ = m.StartNym(p, "n", Options{})
		nym.Visit(p, "twitter.com")
	})
	ph := nym.Phases()
	if ph.BootVM <= 0 || ph.StartAnon <= 0 || ph.FirstPage <= 0 {
		t.Fatalf("phases = %+v", ph)
	}
	if ph.EphemeralNym != 0 {
		t.Fatalf("fresh nym has ephemeral phase: %+v", ph)
	}
	// Abstract claim: a nymbox loads within 15-25 seconds.
	total := ph.BootVM + ph.StartAnon + ph.FirstPage
	if total < 10*time.Second || total > 30*time.Second {
		t.Fatalf("fresh startup = %v, want 15-25s ballpark", total)
	}
}

func TestEphemeralTerminationIsAmnesiac(t *testing.T) {
	eng, m := newManager(t)
	baseline := int64(0)
	run(t, eng, func(p *sim.Proc) {
		baseline = m.Host().Mem().UsedBytes()
		nym, err := m.StartNym(p, "throwaway", Options{})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.Browser().Stain("evil") // even a stained nym...
		nym.Visit(p, "twitter.com")
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
		}
	})
	if m.RunningNyms() != 0 {
		t.Fatal("nym still registered")
	}
	used := m.Host().Mem().UsedBytes()
	if used > baseline {
		t.Fatalf("memory after termination %d > baseline %d", used, baseline)
	}
	if m.Host().Mem().Stats().ScrubbedBytes == 0 {
		t.Fatal("no secure erase recorded")
	}
}

func TestTerminatedNymRejectsUse(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "n", Options{})
		m.TerminateNym(p, nym)
		if _, err := nym.Visit(p, "twitter.com"); !errors.Is(err, ErrNymTerminated) {
			t.Errorf("visit after terminate: %v", err)
		}
		if err := m.TerminateNym(p, nym); !errors.Is(err, ErrNymTerminated) {
			t.Errorf("double terminate: %v", err)
		}
	})
}

func TestDuplicateNymNameRejected(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		m.StartNym(p, "x", Options{})
		if _, err := m.StartNym(p, "x", Options{}); !errors.Is(err, ErrNymExists) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestParallelNymsAreIndependent(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		a, err := m.StartNym(p, "work", Options{})
		if err != nil {
			t.Errorf("a: %v", err)
			return
		}
		b, err := m.StartNym(p, "blog", Options{})
		if err != nil {
			t.Errorf("b: %v", err)
			return
		}
		a.Browser().Login(p, "twitter.com", "worker", "pw1")
		b.Browser().Login(p, "twitter.com", "blogger", "pw2")
		// No cross-reach between the two nymboxes.
		net := m.World().Net()
		if net.CanReach(a.AnonVM().Name(), b.AnonVM().Name(), "tcp") ||
			net.CanReach(a.CommVM().Name(), b.CommVM().Name(), "tcp") {
			t.Error("nymboxes can reach each other")
		}
		// Separate cookies at the server.
		visits := m.World().Site("twitter.com").Visits()
		if len(visits) != 2 || visits[0].CookieID == visits[1].CookieID {
			t.Errorf("cookies not isolated: %+v", visits)
		}
	})
}

func TestStoreAndLoadCloudNym(t *testing.T) {
	eng, m := newManager(t)
	dest := StoreDest{Provider: "dropbin", Account: "anon-acct-1", AccountPassword: "cloudpw"}
	var storedSize int64
	var guard string
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "alice-blog", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.Browser().Login(p, "twitter.com", "alice", "pw")
		nym.Visit(p, "gmail.com")
		guard = nym.Anonymizer().ExportState()["guard"]
		storedSize, err = m.StoreNym(p, nym, "nym-password", dest)
		if err != nil {
			t.Errorf("store: %v", err)
			return
		}
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
		}
	})
	if storedSize <= 0 {
		t.Fatal("no archive stored")
	}
	pr, _ := m.Provider("dropbin")
	if got := pr.StoredBytes("anon-acct-1"); got != storedSize {
		t.Fatalf("provider holds %d, want %d", got, storedSize)
	}

	// Restore: profile, credentials, cache, and Tor guard all survive.
	var restored *Nym
	run(t, eng, func(p *sim.Proc) {
		var err error
		restored, err = m.LoadNym(p, "alice-blog", "nym-password", Options{Model: ModelPersistent}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
		}
	})
	if restored == nil {
		t.Fatal("no restored nym")
	}
	if restored.Cycles() != 1 {
		t.Fatalf("cycles = %d", restored.Cycles())
	}
	if got := restored.Anonymizer().ExportState()["guard"]; got != guard {
		t.Fatalf("guard = %q, want %q (must persist)", got, guard)
	}
	cred, ok := restored.Browser().Credentials("twitter.com")
	if !ok || cred.Account != "alice" {
		t.Fatalf("credentials lost: %+v %v", cred, ok)
	}
	if restored.Phases().EphemeralNym <= 0 {
		t.Fatal("cloud load must include the ephemeral-nym phase")
	}
	var res struct{ first bool }
	run(t, eng, func(p *sim.Proc) {
		r, err := restored.Visit(p, "gmail.com")
		if err != nil {
			t.Errorf("visit: %v", err)
		}
		res.first = r.FirstVisit
	})
	if res.first {
		t.Fatal("restored nym lost its cache state")
	}
}

func TestLoadNymWrongPassword(t *testing.T) {
	eng, m := newManager(t)
	dest := StoreDest{Provider: "gdrive", Account: "acct", AccountPassword: "cpw"}
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "n", Options{Model: ModelPersistent})
		m.StoreNym(p, nym, "right", dest)
		m.TerminateNym(p, nym)
		if _, err := m.LoadNym(p, "n", "wrong", Options{}, dest); err == nil {
			t.Error("wrong password accepted")
		}
	})
	// The failed loader must not leak a running nym.
	if m.RunningNyms() != 0 {
		t.Fatalf("running nyms = %d", m.RunningNyms())
	}
}

// Regression: when the cloud-load path fails after its throwaway
// loader nymbox is up, the loader must be torn down (not left pinning
// host RAM) and the primary failure must keep its typed code through
// the teardown join.
func TestLoadNymUnknownProviderTearsDownLoader(t *testing.T) {
	eng, m := newManager(t)
	var loadErr error
	run(t, eng, func(p *sim.Proc) {
		_, loadErr = m.LoadNym(p, "ghost", "pw", Options{},
			StoreDest{Provider: "no-such-cloud", Account: "a", AccountPassword: "c"})
	})
	if loadErr == nil {
		t.Fatal("load from an unknown provider succeeded")
	}
	if !errors.Is(loadErr, ErrNoProvider) {
		t.Fatalf("error lost the ErrNoProvider sentinel: %v", loadErr)
	}
	if nymerr.Classify(loadErr) != CodeUnknownProvider {
		t.Fatalf("classified %q, want %s: %v", nymerr.Classify(loadErr), CodeUnknownProvider, loadErr)
	}
	if m.RunningNyms() != 0 {
		t.Fatalf("running nyms = %d; the loader leaked", m.RunningNyms())
	}
	if got := m.Host().VMCount(); got != 0 {
		t.Fatalf("host VMs = %d; the loader's VM pair leaked", got)
	}
}

func TestLocalStoreSkipsEphemeralNym(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "n", Options{Model: ModelPreconfigured})
		if _, err := m.StoreNym(p, nym, "pw", Local); err != nil {
			t.Errorf("store local: %v", err)
		}
		m.TerminateNym(p, nym)
		restored, err := m.LoadNym(p, "n", "pw", Options{Model: ModelPreconfigured}, Local)
		if err != nil {
			t.Errorf("load local: %v", err)
			return
		}
		if restored.Phases().EphemeralNym != 0 {
			t.Error("local load should not need an ephemeral nym")
		}
	})
	if _, ok := m.LocalArchiveSize("n"); !ok {
		t.Fatal("local archive missing")
	}
}

func TestPreconfiguredScrubsStains(t *testing.T) {
	// The pre-configured model: "a malware infection affecting one
	// browsing session will be scrubbed at the user's next session"
	// (section 3.5).
	eng, m := newManager(t)
	dest := StoreDest{Provider: "dropbin", Account: "a", AccountPassword: "c"}
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "golden", Options{Model: ModelPreconfigured})
		nym.Browser().Login(p, "twitter.com", "persona", "pw")
		// Golden snapshot taken while clean.
		if _, err := m.StoreNym(p, nym, "pw", dest); err != nil {
			t.Errorf("store: %v", err)
			return
		}
		// Session gets exploited and stained; user just terminates.
		nym.Browser().Stain("apt-41")
		m.TerminateNym(p, nym)

		// Next session restores the golden snapshot: stain gone,
		// credentials kept.
		again, err := m.LoadNym(p, "golden", "pw", Options{Model: ModelPreconfigured}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if again.Browser().Stained() {
			t.Error("stain survived the pre-configured restore")
		}
		if _, ok := again.Browser().Credentials("twitter.com"); !ok {
			t.Error("credentials lost")
		}
	})
}

func TestPersistentModelCarriesStainForward(t *testing.T) {
	// The flip side (section 3.5): persistent mode "increases risk that
	// the effects of a stain or other exploit attack in one browsing
	// session will persist for the lifetime of the nym".
	eng, m := newManager(t)
	dest := StoreDest{Provider: "dropbin", Account: "a2", AccountPassword: "c"}
	run(t, eng, func(p *sim.Proc) {
		nym, _ := m.StartNym(p, "sticky", Options{Model: ModelPersistent})
		nym.Browser().Stain("apt-41")
		if err := m.EndSession(p, nym, "pw", dest); err != nil {
			t.Errorf("end session: %v", err)
			return
		}
		again, err := m.LoadNym(p, "sticky", "pw", Options{Model: ModelPersistent}, dest)
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if !again.Browser().Stained() {
			t.Error("persistent model should carry the stain")
		}
	})
}

func TestGuardSeedStableAcrossLoaderAndNym(t *testing.T) {
	eng, m := newManager(t)
	seed := "derived-from-password-and-location"
	var guards []string
	run(t, eng, func(p *sim.Proc) {
		for i, name := range []string{"g1", "g2"} {
			nym, err := m.StartNym(p, name, Options{GuardSeed: seed})
			if err != nil {
				t.Errorf("start %d: %v", i, err)
				return
			}
			guards = append(guards, nym.Anonymizer().ExportState()["guard"])
			m.TerminateNym(p, nym)
		}
	})
	if len(guards) != 2 || guards[0] != guards[1] || guards[0] == "" {
		t.Fatalf("seeded guards differ: %v", guards)
	}
}

func TestChainedAnonymizers(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "belt-and-braces", Options{Chain: []string{"dissent", "tor"}})
		if err != nil {
			t.Errorf("start chained: %v", err)
			return
		}
		if nym.Anonymizer().Name() != "dissent+tor" {
			t.Errorf("chain name = %q", nym.Anonymizer().Name())
		}
		if nym.Anonymizer().OverheadFrac() <= 0.12 {
			t.Errorf("chain overhead = %v, want > tor alone", nym.Anonymizer().OverheadFrac())
		}
		if _, err := nym.Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit through chain: %v", err)
		}
	})
}

func TestSanitizedTransferWorkflow(t *testing.T) {
	eng, m := newManager(t)
	photo := sanitize.MakeJPEG(sanitize.EXIFMeta{
		Make: "SmartPhoneCo", Model: "SP-7", Serial: "SN-1",
		GPSLat: "41.2995N", GPSLon: "69.2401E",
	}, []byte("protest-photo-pixels"))
	img, err := installedos.NewImage(installedos.Windows7, map[string][]byte{
		"/users/bob/photos/protest.jpg": photo,
	})
	if err != nil {
		t.Fatal(err)
	}
	var report *TransferReport
	var nym *Nym
	run(t, eng, func(p *sim.Proc) {
		nym, _ = m.StartNym(p, "bob-twitter", Options{})
		report, err = m.TransferFile(p, img, "/users/bob/photos/protest.jpg", nym, sanitize.AllOptions)
		if err != nil {
			t.Errorf("transfer: %v", err)
		}
	})
	if report == nil {
		t.Fatal("no report")
	}
	// Risk analysis must have flagged the GPS data up front.
	foundGPS := false
	for _, r := range report.RisksFound {
		if r.Code == "exif-gps" {
			foundGPS = true
		}
	}
	if !foundGPS {
		t.Fatalf("risks = %v", report.RisksFound)
	}
	// The delivered file is scrubbed.
	data, err := nym.AnonVM().Disk().FS().ReadFile(report.DestPath)
	if err != nil {
		t.Fatal(err)
	}
	meta, body, err := sanitize.ParseJPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.GPSLat != "" || meta.Serial != "" {
		t.Fatalf("metadata survived: %v", meta)
	}
	if string(body) != "protest-photo-pixels" {
		t.Fatal("image body damaged")
	}
	// SaniVM staging areas are clean.
	sani, _ := m.SaniVM(nil)
	if len(sani.Disk().FS().List("/nyms")) != 0 {
		t.Fatal("staging files left in SaniVM")
	}
}

func TestSaniVMIsSingletonAndNonNetworked(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		a, err := m.SaniVM(p)
		if err != nil {
			t.Errorf("sanivm: %v", err)
			return
		}
		b, _ := m.SaniVM(p)
		if a != b {
			t.Error("SaniVM not a singleton")
		}
		if a.Node() != nil {
			t.Error("SaniVM has a network node")
		}
	})
}

func TestBootInstalledOSAsNym(t *testing.T) {
	eng, m := newManager(t)
	img, _ := installedos.NewImage(installedos.Windows7, nil)
	var repair, boot time.Duration
	run(t, eng, func(p *sim.Proc) {
		var err error
		repair, boot, err = m.BootInstalledOS(p, img)
		if err != nil {
			t.Errorf("boot installed: %v", err)
		}
	})
	if repair < 100*time.Second || boot < 20*time.Second {
		t.Fatalf("repair=%v boot=%v implausible", repair, boot)
	}
	if img.COWBytes() == 0 {
		t.Fatal("no COW delta")
	}
}

func TestIncognitoNymExposesRealAddress(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "quick", Options{Anonymizer: "incognito"})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.Visit(p, "bbc.co.uk")
	})
	visits := m.World().Site("bbc.co.uk").Visits()
	if len(visits) != 1 {
		t.Fatalf("visits = %d", len(visits))
	}
	if visits[0].SourceAddr != "host" {
		t.Fatalf("incognito source = %q, want the host's NAT address", visits[0].SourceAddr)
	}
}

func TestUnknownAnonymizerRejected(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		if _, err := m.StartNym(p, "x", Options{Anonymizer: "carrier-pigeon"}); !errors.Is(err, ErrUnknownAnon) {
			t.Errorf("err = %v", err)
		}
	})
	if m.Host().VMCount() != 0 {
		t.Fatal("failed start leaked VMs")
	}
}

func TestSweetNymTunnelsOverEmail(t *testing.T) {
	eng, m := newManager(t)
	cap := m.Host().Uplink().Tap()
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "censored", Options{Anonymizer: "sweet"})
		if err != nil {
			t.Errorf("start sweet: %v", err)
			return
		}
		if _, err := nym.Visit(p, "bbc.co.uk"); err != nil {
			t.Errorf("visit: %v", err)
		}
	})
	// The uplink shows only SMTP (plus nothing else in this session).
	for _, proto := range cap.Protos() {
		if proto != "smtp" {
			t.Fatalf("uplink protocols = %v, want only smtp", cap.Protos())
		}
	}
	visits := m.World().Site("bbc.co.uk").Visits()
	if len(visits) != 1 || visits[0].SourceAddr != "sweet-proxy" {
		t.Fatalf("site saw %+v, want the SWEET proxy", visits)
	}
}

func TestTorBridgeNymHidesTorFromUplink(t *testing.T) {
	eng, m := newManager(t)
	cap := m.Host().Uplink().Tap()
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "bridged", Options{Anonymizer: "tor-bridge"})
		if err != nil {
			t.Errorf("start bridge: %v", err)
			return
		}
		if _, err := nym.Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit: %v", err)
		}
	})
	for _, e := range cap.Entries {
		if e.Proto == "tor" {
			t.Fatal("censor observed tor on the uplink despite the bridge")
		}
	}
	// Still anonymized: the site sees a relay, not the host.
	visits := m.World().Site("twitter.com").Visits()
	if len(visits) != 1 || visits[0].SourceAddr == "host" {
		t.Fatalf("site saw %+v", visits)
	}
}

func TestBuddiesGatesLinkablePosts(t *testing.T) {
	eng, m := newManager(t)
	mon := buddies.NewMonitor()
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "guarded", Options{})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		nym.EnableBuddies(mon, buddies.Policy{MinAnonymitySet: 3})
		if _, err := nym.Browser().Login(p, "twitter.com", "guarded-acct", "pw"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		// Round 1: a healthy crowd is online; the post goes out.
		mon.BeginRound([]string{"alice", "bob", "carol", "dave"})
		if _, err := nym.Post(p, "twitter.com", "post one"); err != nil {
			t.Errorf("post 1: %v", err)
		}
		// Round 2: only two candidates remain online; Buddies suppresses.
		mon.BeginRound([]string{"alice", "bob"})
		if _, err := nym.Post(p, "twitter.com", "post two"); !errors.Is(err, buddies.ErrBelowThreshold) {
			t.Errorf("post 2: %v, want suppression", err)
		}
	})
	// Only the first post reached the site.
	posts := 0
	for _, v := range m.World().Site("twitter.com").Visits() {
		if v.Action == "post" {
			posts++
		}
	}
	if posts != 1 {
		t.Fatalf("site saw %d posts, want 1", posts)
	}
}

func TestTamperedHostPartitionRefusesToLaunch(t *testing.T) {
	// Section 3.4: the host partition is checked against a well-known
	// Merkle tree; a modified partition means no nyms launch.
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		if _, err := m.StartNym(p, "pre-tamper", Options{}); err != nil {
			t.Errorf("pristine start: %v", err)
			return
		}
	})
	// The USB visits another machine and comes back modified.
	tampered := m.Host().BaseImage().Clone()
	tfs := mustStack(t, tampered)
	tfs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\nphone-home\n"))
	m.Host().ReplaceBaseImage(tampered.Seal())
	run(t, eng, func(p *sim.Proc) {
		if _, err := m.StartNym(p, "post-tamper", Options{}); !errors.Is(err, ErrHostTampered) {
			t.Errorf("tampered start: %v, want ErrHostTampered", err)
		}
	})
}

func mustStack(t *testing.T, l *unionfs.Layer) *unionfs.FS {
	t.Helper()
	fs, err := unionfs.Stack(l)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestHostRAMLimitsConcurrentNyms(t *testing.T) {
	// "The host allocates disk and RAM from its own stash of RAM, thus
	// limiting the maximum number of nyms" (section 5.2).
	eng := sim.NewEngine(51)
	_, world := webworld.BuildDefault(eng)
	cfg := hypervisor.DefaultConfig()
	cfg.RAMBytes = 2 << 30 // 2 GiB host: room for ~2 nymboxes
	m, err := NewManager(eng, world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := 0
	run(t, eng, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := m.StartNym(p, fmt.Sprintf("n%d", i), Options{}); err != nil {
				break
			}
			started++
		}
	})
	if started < 1 || started > 3 {
		t.Fatalf("2 GiB host started %d nyms, want 1-3", started)
	}
	// Failed launches must not leak partial nymboxes.
	if m.Host().VMCount() != started*2 {
		t.Fatalf("vm count = %d, want %d", m.Host().VMCount(), started*2)
	}
}

func TestUplinkCaptureShowsOnlyAnonymizerTraffic(t *testing.T) {
	// Section 5.1: "The Nymix hypervisor emitted only traffic for DHCP
	// and anonymizer traffic."
	eng, m := newManager(t)
	cap := m.Host().Uplink().Tap()
	run(t, eng, func(p *sim.Proc) {
		m.Host().EmitDHCP()
		nym, _ := m.StartNym(p, "n", Options{})
		nym.Visit(p, "twitter.com")
		m.TerminateNym(p, nym)
	})
	for _, proto := range cap.Protos() {
		if proto != "dhcp" && proto != "tor" {
			t.Fatalf("unexpected protocol on uplink: %q (all: %v)", proto, cap.Protos())
		}
	}
	for _, e := range cap.Entries {
		if strings.HasPrefix(e.ObservedSrc, "nym") {
			t.Fatalf("VM identity leaked on uplink: %q", e.ObservedSrc)
		}
	}
}

// Regression for the startNym restore-failure leak: when restoring
// archived disks fails after both VMs have booted, the half-built
// nymbox must be destroyed like every other startup error path —
// previously both the AnonVM and CommVM were leaked on the host.
func TestRestoreFailureDestroysNymbox(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "packrat", Options{Model: ModelPersistent})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		// Fill the AnonVM disk beyond what the restore target will hold.
		if err := nym.AnonVM().Disk().WriteVirtual("/home/user/archive.bin", 64*guestos.MiB, 0.9); err != nil {
			t.Errorf("fill: %v", err)
			return
		}
		if _, err := m.StoreNym(p, nym, "pw", Local); err != nil {
			t.Errorf("store: %v", err)
			return
		}
		if err := m.TerminateNym(p, nym); err != nil {
			t.Errorf("terminate: %v", err)
			return
		}
		baseline := m.Host().Mem().UsedBytes()
		_, err = m.LoadNym(p, "packrat", "pw",
			Options{Model: ModelPersistent, AnonDisk: 16 * guestos.MiB}, Local)
		if err == nil {
			t.Error("restore into an undersized disk succeeded")
			return
		}
		if got := m.Host().VMCount(); got != 0 {
			t.Errorf("failed restore leaked %d VMs", got)
		}
		if used := m.Host().Mem().UsedBytes(); used > baseline {
			t.Errorf("failed restore holds %d bytes over baseline %d", used, baseline)
		}
		if m.RunningNyms() != 0 {
			t.Error("failed restore left a nym registered")
		}
		// The name is free again: a fresh start under it must work.
		if _, err := m.StartNym(p, "packrat", Options{}); err != nil {
			t.Errorf("restart after failed restore: %v", err)
		}
	})
}

// Regression for TerminateNym partial failure: if one VM destroy
// fails, teardown must still attempt the other destroy, surface the
// error, and retire the nym — previously the nym stayed in the
// running map with its anonymizer stopped and one VM gone.
func TestTerminatePartialFailureStillRetiresNym(t *testing.T) {
	eng, m := newManager(t)
	run(t, eng, func(p *sim.Proc) {
		nym, err := m.StartNym(p, "glitch", Options{})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		// Simulate a crash that already took the CommVM with it, so the
		// CommVM destroy inside TerminateNym fails.
		if err := m.Host().DestroyVM(p, nym.CommVM()); err != nil {
			t.Errorf("destroy comm: %v", err)
			return
		}
		err = m.TerminateNym(p, nym)
		if err == nil {
			t.Error("terminate reported success despite the missing CommVM")
		}
		if m.RunningNyms() != 0 {
			t.Error("half-dead nym still in the running map")
		}
		if got := m.Host().VMCount(); got != 0 {
			t.Errorf("AnonVM leaked: %d VMs on host", got)
		}
		// A second terminate is still the documented no-op error.
		if err := m.TerminateNym(p, nym); !errors.Is(err, ErrNymTerminated) {
			t.Errorf("double terminate = %v, want ErrNymTerminated", err)
		}
		// The name is immediately reusable.
		if _, err := m.StartNym(p, "glitch", Options{}); err != nil {
			t.Errorf("restart after partial teardown: %v", err)
		}
	})
}

// Two concurrent startups racing for one name must resolve to exactly
// one nym: the name is reserved for the whole launch, not just
// checked at registration.
func TestConcurrentStartsCannotShareName(t *testing.T) {
	eng, m := newManager(t)
	var err1, err2 error
	run(t, eng, func(p *sim.Proc) {
		f1 := m.StartNymAsync("dup", Options{})
		f2 := m.StartNymAsync("dup", Options{})
		_, err1 = sim.Await(p, f1)
		_, err2 = sim.Await(p, f2)
	})
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("want exactly one winner: err1=%v err2=%v", err1, err2)
	}
	lost := err1
	if lost == nil {
		lost = err2
	}
	if !errors.Is(lost, ErrNymExists) {
		t.Fatalf("loser error = %v, want ErrNymExists", lost)
	}
	if m.RunningNyms() != 1 {
		t.Fatalf("running = %d, want 1", m.RunningNyms())
	}
	if got := m.Host().VMCount(); got != 2 {
		t.Fatalf("host VMs = %d, want one nymbox pair", got)
	}
}
