package core

import (
	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vault"
)

// Footprint returns the host RAM a nymbox with these options will
// reserve, after defaults are applied. Every byte of a nymbox lives in
// host RAM — "the host allocates disk and RAM from its own stash of
// RAM" (section 5.2) — so the requested footprint is both VMs' RAM
// plus both writable disks. Fleet admission control (internal/fleet)
// reserves against this figure; KSM later recovers the mergeable
// share, so actual physical use is lower.
func (o Options) Footprint() int64 {
	o.fillDefaults()
	return o.AnonRAM + o.AnonDisk + o.CommRAM + o.CommDisk
}

// WireFootprint returns the idle uplink rate in bytes per second a
// nymbox with these options holds on the host's wire even when no
// request is in flight — the mixnet's constant-rate cover traffic.
// Zero for demand-driven transports. Fleet wire admission reserves
// against this figure the way RAM admission reserves Footprint.
func (o Options) WireFootprint() float64 {
	o.fillDefaults()
	kinds := o.Chain
	if len(kinds) == 0 {
		kinds = []string{o.Anonymizer}
	}
	var sum float64
	for _, kind := range kinds {
		sum += anonnet.IdleWireRate(kind)
	}
	return sum
}

// StartNymAsync launches a nymbox on its own simulated process and
// returns a future for the running nym. StartNym blocks its caller for
// the whole multi-second startup; the async form lets one supervisor
// (the fleet orchestrator) drive many launches concurrently. The name
// is reserved for the duration of the launch, so two in-flight starts
// can never collide on one name.
func (m *Manager) StartNymAsync(name string, opts Options) *sim.Future[*Nym] {
	fut := sim.NewFuture[*Nym](m.eng)
	m.eng.Go("start/"+name, func(bp *sim.Proc) {
		fut.Complete(m.StartNym(bp, name, opts))
	})
	return fut
}

// TerminateNymAsync tears a nymbox down on its own simulated process.
// The secure memory wipe charges time proportional to the resident
// set, so parallel teardown of a large fleet overlaps the wipes.
func (m *Manager) TerminateNymAsync(n *Nym) *sim.Future[struct{}] {
	fut := sim.NewFuture[struct{}](m.eng)
	m.eng.Go("terminate/"+n.name, func(bp *sim.Proc) {
		fut.Complete(struct{}{}, m.TerminateNym(bp, n))
	})
	return fut
}

// StoreNymVaultAsync checkpoints a nym through the vault on its own
// simulated process, returning a future for the save stats. The fleet
// save sweep uses this to overlap a bounded number of staggered saves.
func (m *Manager) StoreNymVaultAsync(n *Nym, password string, dest VaultDest) *sim.Future[SaveResult] {
	fut := sim.NewFuture[SaveResult](m.eng)
	m.eng.Go("save/"+n.name, func(bp *sim.Proc) {
		stats, err := m.StoreNymVault(bp, n, password, dest)
		fut.Complete(SaveResult{Nym: n.Name(), Stats: stats}, err)
	})
	return fut
}

// SaveResult pairs a vault save's stats with the nym it belongs to,
// for fan-out callers awaiting many saves.
type SaveResult struct {
	Nym   string
	Stats vault.SaveStats
}
