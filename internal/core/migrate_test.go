package core

import (
	"reflect"
	"testing"

	"nymix/internal/cpusched"
	"nymix/internal/hypervisor"
	"nymix/internal/nymstate"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/webworld"
)

// twoManagers builds two Nymix hosts on one world sharing one cloud
// provider set — host A saves, host B restores.
func twoManagers(t *testing.T, seed uint64) (*sim.Engine, *webworld.World, *Manager, *Manager) {
	t.Helper()
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	providers := DefaultProviders(world, 2<<30)
	newHost := func(name string) *Manager {
		m, err := NewManagerWith(eng, world, hypervisor.Config{
			Name:     name,
			RAMBytes: 16 << 30,
			CPU:      cpusched.DefaultConfig(),
		}, ManagerConfig{Providers: providers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return eng, world, newHost("hostA"), newHost("hostB")
}

// virtualWire sums the modeled compressed wire size of an image's
// virtual files — the size-relevant identity of bulk content (caches,
// consensus) that carries no real bytes.
func virtualWire(img unionfs.Image) int64 {
	var sum int64
	for _, f := range img.Files {
		if !f.Real {
			sum += nymstate.VirtualWireSize(f.VirtualSize, f.Entropy)
		}
	}
	return sum
}

// TestVaultMigrationPreservesStateAcrossManagers is the end-to-end
// migration property: for every usage model, save on host A →
// terminate → restore on host B yields byte-identical nym state
// (writable layers DeepEqual, virtual wire sizes unchanged, guard and
// credentials intact), the tracker-visible identity is unchanged (the
// site sees the same cookie before and after the move), and the
// source host is left with zero VMs and zero running nyms.
func TestVaultMigrationPreservesStateAcrossManagers(t *testing.T) {
	for i, model := range []UsageModel{ModelEphemeral, ModelPersistent, ModelPreconfigured} {
		model := model
		t.Run(string(model), func(t *testing.T) {
			eng, world, src, dst := twoManagers(t, uint64(70+i))
			opts := Options{Model: model, GuardSeed: "mig-seed"}
			dest := VaultDest{Providers: []string{"dropbin"}, Account: "acct-mig", AccountPassword: "cpw"}
			run(t, eng, func(p *sim.Proc) {
				nym, err := src.StartNym(p, "mig", opts)
				if err != nil {
					t.Errorf("start: %v", err)
					return
				}
				if _, err := nym.Browser().Login(p, "twitter.com", "persona", "pw"); err != nil {
					t.Errorf("login: %v", err)
					return
				}
				if _, err := nym.Visit(p, "gmail.com"); err != nil {
					t.Errorf("visit: %v", err)
					return
				}
				guard := nym.Anonymizer().ExportState()["guard"]

				if _, err := src.StoreNymVault(p, nym, "vault-pw", dest); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				// The state as stored: what the paused-and-synced disks held.
				anonImg := nym.AnonVM().Disk().Snapshot()
				commImg := nym.CommVM().Disk().Snapshot()
				if err := src.TerminateNym(p, nym); err != nil {
					t.Errorf("terminate: %v", err)
					return
				}
				if got := src.Host().VMCount(); got != 0 {
					t.Errorf("source host VMs after terminate = %d, want 0", got)
				}
				if got := src.RunningNyms(); got != 0 {
					t.Errorf("source running nyms = %d, want 0", got)
				}

				restored, err := dst.LoadNymVault(p, "mig", "vault-pw", opts, dest)
				if err != nil {
					t.Errorf("restore on host B: %v", err)
					return
				}
				// Byte-identical writable layers on the new host.
				if got := restored.AnonVM().Disk().Snapshot(); !reflect.DeepEqual(unnamed(anonImg), unnamed(got)) {
					t.Errorf("%s: AnonVM disk differs across hosts", model)
				}
				if got := restored.CommVM().Disk().Snapshot(); !reflect.DeepEqual(unnamed(commImg), unnamed(got)) {
					t.Errorf("%s: CommVM disk differs across hosts", model)
				}
				// Virtual content prices to the identical wire size.
				if want, got := virtualWire(anonImg), virtualWire(restored.AnonVM().Disk().Snapshot()); want != got {
					t.Errorf("%s: AnonVM virtual wire %d -> %d across migration", model, want, got)
				}
				if want, got := virtualWire(commImg), virtualWire(restored.CommVM().Disk().Snapshot()); want != got {
					t.Errorf("%s: CommVM virtual wire %d -> %d across migration", model, want, got)
				}
				// Anonymizer identity (the seeded guard) survives.
				if got := restored.Anonymizer().ExportState()["guard"]; got != guard {
					t.Errorf("%s: guard %q -> %q across migration", model, guard, got)
				}
				if cred, ok := restored.Browser().Credentials("twitter.com"); !ok || cred.Account != "persona" {
					t.Errorf("%s: credentials lost: %+v %v", model, cred, ok)
				}
				// Tracker-visible identity: a revisit from host B presents
				// the same first-party cookie the site saw from host A.
				if _, err := restored.Visit(p, "twitter.com"); err != nil {
					t.Errorf("revisit: %v", err)
					return
				}
				visits := world.Site("twitter.com").Visits()
				first, last := visits[0], visits[len(visits)-1]
				if first.CookieID == "" || first.CookieID != last.CookieID {
					t.Errorf("%s: cookie changed across hosts: %q -> %q", model, first.CookieID, last.CookieID)
				}
				if first.Fingerprint != last.Fingerprint {
					t.Errorf("%s: fingerprint changed across hosts", model)
				}
				// The move left nothing behind on the source.
				if got := src.Host().VMCount(); got != 0 {
					t.Errorf("source host VMs after migration = %d, want 0", got)
				}
				if err := dst.TerminateNym(p, restored); err != nil {
					t.Errorf("final terminate: %v", err)
				}
			})
		})
	}
}
