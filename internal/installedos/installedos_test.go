package installedos

import (
	"errors"
	"math"
	"testing"
	"time"

	"nymix/internal/sim"
)

func runOne(t *testing.T, v Version) (repair, boot time.Duration, cowMB float64) {
	t.Helper()
	eng := sim.NewEngine(41)
	img, err := NewImage(v, map[string][]byte{"/users/bob/photo.jpg": []byte("jpegdata")})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("t", func(p *sim.Proc) {
		var err error
		repair, err = img.Repair(p)
		if err != nil {
			t.Errorf("repair: %v", err)
			return
		}
		boot, err = img.Boot(p)
		if err != nil {
			t.Errorf("boot: %v", err)
		}
	})
	eng.Run()
	return repair, boot, float64(img.COWBytes()) / (1 << 20)
}

func TestTable1Calibration(t *testing.T) {
	// Paper Table 1: repair(s), boot(s), size(MB) per Windows version.
	cases := []struct {
		v          Version
		repairS    float64
		bootS      float64
		sizeMB     float64
		relTolTime float64
	}{
		{WindowsVista, 133.7, 37.7, 4.9, 0.08},
		{Windows7, 129.3, 34.3, 4.5, 0.08},
		{Windows8, 157.0, 58.7, 14, 0.08},
	}
	for _, c := range cases {
		repair, boot, size := runOne(t, c.v)
		if rel(repair.Seconds(), c.repairS) > c.relTolTime {
			t.Errorf("%s repair = %.1fs, want ~%.1fs", c.v.Name, repair.Seconds(), c.repairS)
		}
		if rel(boot.Seconds(), c.bootS) > c.relTolTime {
			t.Errorf("%s boot = %.1fs, want ~%.1fs", c.v.Name, boot.Seconds(), c.bootS)
		}
		if rel(size, c.sizeMB) > 0.15 {
			t.Errorf("%s size = %.1f MB, want ~%.1f MB", c.v.Name, size, c.sizeMB)
		}
	}
}

func rel(got, want float64) float64 { return math.Abs(got-want) / want }

func TestTable1Ordering(t *testing.T) {
	// Shape criteria: Win8 costs the most on every column; Win7 repairs
	// faster than Vista.
	vr, vb, vs := runOne(t, WindowsVista)
	sr, sb, ss := runOne(t, Windows7)
	er, eb, es := runOne(t, Windows8)
	if !(er > vr && vr > sr) {
		t.Errorf("repair ordering: win8=%v vista=%v win7=%v", er, vr, sr)
	}
	if !(eb > vb && vb > sb) {
		t.Errorf("boot ordering: win8=%v vista=%v win7=%v", eb, vb, sb)
	}
	if !(es > vs && vs > ss) {
		t.Errorf("size ordering: win8=%.1f vista=%.1f win7=%.1f", es, vs, ss)
	}
}

func TestLinuxBootsWithoutRepair(t *testing.T) {
	eng := sim.NewEngine(1)
	img, _ := NewImage(UbuntuLinux, nil)
	eng.Go("t", func(p *sim.Proc) {
		repair, err := img.Repair(p)
		if err != nil || repair != 0 {
			t.Errorf("linux repair = %v, %v", repair, err)
		}
		if _, err := img.Boot(p); err != nil {
			t.Errorf("linux boot: %v", err)
		}
	})
	eng.Run()
}

func TestWindowsRequiresRepairBeforeBoot(t *testing.T) {
	eng := sim.NewEngine(1)
	img, _ := NewImage(Windows7, nil)
	var err error
	eng.Go("t", func(p *sim.Proc) { _, err = img.Boot(p) })
	eng.Run()
	if !errors.Is(err, ErrNeedsRepair) {
		t.Fatalf("err = %v", err)
	}
}

func TestPhysicalDiskNeverModified(t *testing.T) {
	eng := sim.NewEngine(1)
	img, _ := NewImage(Windows7, map[string][]byte{"/users/bob/doc": []byte("d")})
	eng.Go("t", func(p *sim.Proc) {
		img.Repair(p)
		img.Boot(p)
	})
	eng.Run()
	if img.COWBytes() == 0 {
		t.Fatal("no COW delta recorded")
	}
	// Discard: physical disk pristine, user files intact, repair undone.
	img.DiscardSession()
	if img.COWBytes() != 0 {
		t.Fatal("COW survived discard")
	}
	data, err := img.Disk().FS().ReadFile("/users/bob/doc")
	if err != nil || string(data) != "d" {
		t.Fatalf("user file lost: %q %v", data, err)
	}
	if img.Repaired() {
		t.Fatal("repair flag survived discard")
	}
}

func TestCOWSnapshotRestoreSkipsRepair(t *testing.T) {
	eng := sim.NewEngine(1)
	img, _ := NewImage(Windows7, nil)
	eng.Go("t", func(p *sim.Proc) {
		img.Repair(p)
		img.Boot(p)
	})
	eng.Run()
	snap := img.SnapshotCOW()
	gen := img.Generation()
	img.DiscardSession()

	if err := img.RestoreCOW(snap, gen); err != nil {
		t.Fatal(err)
	}
	eng.Go("t", func(p *sim.Proc) {
		if _, err := img.Boot(p); err != nil {
			t.Errorf("boot after restore: %v", err)
		}
	})
	eng.Run()
}

func TestStaleCOWRejectedAfterBareMetalBoot(t *testing.T) {
	eng := sim.NewEngine(1)
	img, _ := NewImage(Windows7, nil)
	eng.Go("t", func(p *sim.Proc) {
		img.Repair(p)
		img.Boot(p)
	})
	eng.Run()
	snap := img.SnapshotCOW()
	gen := img.Generation()
	img.DiscardSession()
	img.MutatePhysicalDisk() // user booted Windows on bare metal
	if err := img.RestoreCOW(snap, gen); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("stale COW restore: %v", err)
	}
	// And a fresh session needs repair again.
	var err error
	eng.Go("t", func(p *sim.Proc) { _, err = img.Boot(p) })
	eng.Run()
	if !errors.Is(err, ErrNeedsRepair) {
		t.Fatalf("boot after mutation: %v", err)
	}
}
