// Package installedos models booting the machine's installed OS as a
// (non-anonymous) nym (paper section 3.7): the physical disk is
// treated read-only, the OS boots into a copy-on-write virtual disk,
// and — for Windows — a repair pass first reconciles the driver stack
// with the virtual hardware ("booting in a VM a Windows instance
// installed on the bare metal can trigger device driver complaints...
// a standard repair process typically addresses this").
//
// Table 1 measures this pipeline for Windows Vista, 7, and 8: repair
// time, boot time, and the size of the COW delta the session leaves in
// RAM.
package installedos

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vdisk"
)

// Version describes an installed operating system.
type Version struct {
	Name string
	// Windows repair model parameters.
	NeedsRepair   bool
	DriverCount   int     // devices whose drivers the repair pass reconfigures
	RegistryMB    float64 // registry hives scanned during repair
	BootServices  int     // services started at boot
	DriverWriteKB float64 // COW KB written per reconfigured driver
	RegDeltaMB    float64 // registry delta written by repair + boot
}

// The versions of Table 1, with a Linux entry ("Linux usually boots
// without issue").
var (
	WindowsVista = Version{
		Name: "Windows Vista", NeedsRepair: true,
		DriverCount: 310, RegistryMB: 210, BootServices: 119,
		DriverWriteKB: 12.2, RegDeltaMB: 1.2,
	}
	Windows7 = Version{
		Name: "Windows 7", NeedsRepair: true,
		DriverCount: 295, RegistryMB: 215, BootServices: 105,
		DriverWriteKB: 12.2, RegDeltaMB: 1.0,
	}
	Windows8 = Version{
		Name: "Windows 8", NeedsRepair: true,
		DriverCount: 340, RegistryMB: 298, BootServices: 203,
		DriverWriteKB: 30.7, RegDeltaMB: 3.8,
	}
	UbuntuLinux = Version{
		Name: "Ubuntu Linux", NeedsRepair: false,
		DriverCount: 0, RegistryMB: 0, BootServices: 60,
		DriverWriteKB: 0, RegDeltaMB: 0.4,
	}
)

// Repair/boot cost coefficients, calibrated against Table 1.
const (
	secPerDriver     = 0.33  // driver scan + reconfigure
	secPerRegistryMB = 0.148 // registry hive pass
	secPerService    = 0.25  // service start during boot
	bootBase         = 8.0   // kernel + HAL bring-up seconds
)

// Errors.
var (
	ErrNeedsRepair  = errors.New("installedos: OS must be repaired before booting in a VM")
	ErrInconsistent = errors.New("installedos: COW delta no longer matches the underlying disk")
)

// Image is an installed OS treated as a nym: a sealed physical disk
// with a RAM-backed COW overlay.
type Image struct {
	version  Version
	disk     *vdisk.Disk
	repaired bool
	booted   bool
	// diskGeneration models the underlying physical disk changing
	// outside Nymix; a stale COW delta against a newer generation is
	// inconsistent (section 3.7).
	diskGeneration int
	cowGeneration  int
}

// NewImage builds the installed OS's physical disk (sealed) plus a
// fresh COW overlay. User files are included so the SaniVM has
// something to transfer.
func NewImage(v Version, userFiles map[string][]byte) (*Image, error) {
	base := unionfs.NewLayer("physical:" + v.Name)
	fs, err := unionfs.Stack(base)
	if err != nil {
		return nil, err
	}
	fs.WriteVirtual("/windows/system32", 6<<30, 0.8)
	fs.WriteVirtual("/windows/drivers", int64(v.DriverCount)*900<<10, 0.85)
	fs.WriteVirtual("/windows/registry", int64(v.RegistryMB)<<20, 0.6)
	fs.WriteFile("/windows/version", []byte(v.Name))
	for path, data := range userFiles {
		if err := fs.WriteFile(path, data); err != nil {
			return nil, err
		}
	}
	disk, err := vdisk.New("installed-"+v.Name, 0, base.Seal())
	if err != nil {
		return nil, err
	}
	return &Image{version: v, disk: disk}, nil
}

// Version returns the OS version.
func (img *Image) Version() Version { return img.version }

// Disk exposes the COW-backed disk (reads see the physical contents).
func (img *Image) Disk() *vdisk.Disk { return img.disk }

// Repaired reports whether the VM repair pass has run.
func (img *Image) Repaired() bool { return img.repaired }

// Repair runs the driver/HAL reconciliation pass, writing its changes
// into the COW overlay. It returns the elapsed (simulated) time.
func (img *Image) Repair(p *sim.Proc) (time.Duration, error) {
	v := img.version
	if !v.NeedsRepair {
		return 0, nil
	}
	dur := float64(v.DriverCount)*secPerDriver + v.RegistryMB*secPerRegistryMB
	elapsed := sim.Time(p.Rand().Jitter(dur, 0.02) * float64(time.Second))
	p.Sleep(elapsed)
	writes := int64(float64(v.DriverCount)*v.DriverWriteKB) << 10
	if err := img.disk.WriteVirtual("/windows/cow/driver-store", writes, 0.8); err != nil {
		return 0, err
	}
	if err := img.disk.WriteVirtual("/windows/cow/registry-delta", int64(v.RegDeltaMB*0.7*float64(1<<20)), 0.55); err != nil {
		return 0, err
	}
	img.repaired = true
	img.cowGeneration = img.diskGeneration
	return elapsed, nil
}

// Boot starts the repaired OS in a VM, returning boot time. All boot
// writes land in the COW overlay; the physical disk stays pristine.
func (img *Image) Boot(p *sim.Proc) (time.Duration, error) {
	if img.version.NeedsRepair && !img.repaired {
		return 0, fmt.Errorf("%w: %s", ErrNeedsRepair, img.version.Name)
	}
	if img.cowGeneration != img.diskGeneration {
		return 0, fmt.Errorf("%w: %s", ErrInconsistent, img.version.Name)
	}
	dur := bootBase + float64(img.version.BootServices)*secPerService
	elapsed := sim.Time(p.Rand().Jitter(dur, 0.03) * float64(time.Second))
	p.Sleep(elapsed)
	if err := img.disk.WriteVirtual("/windows/cow/boot-logs", int64(img.version.RegDeltaMB*0.3*float64(1<<20)), 0.4); err != nil {
		return 0, err
	}
	img.booted = true
	return elapsed, nil
}

// COWBytes returns the session's copy-on-write delta — Table 1's
// "Size (MB)" column.
func (img *Image) COWBytes() int64 { return img.disk.Used() }

// DiscardSession throws the COW delta away: "no changes the installed
// OS makes while running under Nymix ever persist on the physical
// disk" — so the bare-metal OS needs no re-repair afterwards.
func (img *Image) DiscardSession() {
	img.disk.Discard()
	img.repaired = false
	img.booted = false
}

// SnapshotCOW exports the COW delta as quasi-persistent data, so the
// repair survives across Nymix sessions.
func (img *Image) SnapshotCOW() unionfs.Image { return img.disk.Snapshot() }

// RestoreCOW reloads a previously saved delta. If the physical disk
// changed in between, the delta is inconsistent and rejected
// (section 3.7: "attempting to use the quasi-persistent COW disk
// after the underlying disk has changed can lead to inconsistency or
// corruption").
func (img *Image) RestoreCOW(cow unionfs.Image, generation int) error {
	if generation != img.diskGeneration {
		return fmt.Errorf("%w: snapshot generation %d, disk %d", ErrInconsistent, generation, img.diskGeneration)
	}
	if err := img.disk.Restore(cow); err != nil {
		return err
	}
	img.repaired = true
	img.cowGeneration = img.diskGeneration
	return nil
}

// Generation returns the physical disk's current generation stamp.
func (img *Image) Generation() int { return img.diskGeneration }

// MutatePhysicalDisk models the user booting the installed OS on bare
// metal (outside Nymix) and changing it — which invalidates any saved
// COW delta and, for Windows, undoes the VM repair.
func (img *Image) MutatePhysicalDisk() {
	img.diskGeneration++
	img.repaired = false
}
