package slo

import (
	"testing"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/fleet"
	"nymix/internal/hypervisor"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// coverBytes reads a member's self-reported cover-traffic counter (0
// for demand-driven transports).
func coverBytes(m *fleet.Member) int64 {
	nym := m.Nym()
	if nym == nil {
		return 0
	}
	if cov, ok := nym.Anonymizer().(interface{ CoverWireBytes() int64 }); ok {
		return cov.CoverWireBytes()
	}
	return 0
}

// TestMixCascadeSeverClassifiesAndCoverSurvives is the mixnet chaos
// drill: two mixnet nyms in different hosting regions, and the mix
// cascade's enclave is severed from one region mid-fetch. The caught
// fetch must fail with vnet.partitioned in its chain, the injected
// failure and every restart attempt must classify (zero unclassified
// in the SLO report), the fleet sweep must keep completing, and the
// unaffected nym's cover traffic must keep flowing throughout.
func TestMixCascadeSeverClassifiesAndCoverSurvives(t *testing.T) {
	eng := sim.NewEngine(21)
	_, world := webworld.BuildDefault(eng)
	c, err := cluster.New(eng, world, cluster.Config{
		Hosts:      2,
		HostConfig: hypervisor.Config{RAMBytes: 8 << 30, CPU: cpusched.DefaultConfig()},
		Fleet:      fleet.Config{Restart: fleet.RestartPolicy{MaxRestarts: 1, Backoff: 2 * time.Second}},
		RegionFor: func(i int) string {
			if i == 0 {
				return "east"
			}
			return "west"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := world.Net()
	var rep Report
	run(t, eng, func(p *sim.Proc) {
		for _, name := range []string{"amy", "ben"} {
			opts := smallOpts(core.ModelPersistent)
			opts.GuardSeed = name
			opts.Anonymizer = "mixnet"
			if err := c.Launch(fleet.Spec{Name: name, Opts: opts}); err != nil {
				t.Errorf("launch %s: %v", name, err)
				return
			}
		}
		if err := c.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		var eastNym, westNym string
		for _, name := range []string{"amy", "ben"} {
			if c.HostOf(name).Manager().Host().Node().Region() == "east" {
				eastNym = name
			} else {
				westNym = name
			}
		}
		if eastNym == "" || westNym == "" {
			t.Errorf("nyms not spread across regions: east=%q west=%q", eastNym, westNym)
			return
		}

		// A fetch is mid-flight on the east nym when the cascade enclave
		// goes dark for its region.
		visitFut := sim.NewFuture[struct{}](eng)
		victim := c.Member(eastNym).Nym()
		eng.Go("visit", func(vp *sim.Proc) {
			_, err := victim.Visit(vp, "bbc.co.uk")
			visitFut.Complete(struct{}{}, err)
		})
		p.Sleep(400 * time.Millisecond)
		net.SeverRegions("east", webworld.MixRegion)
		_, verr := sim.Await(p, visitFut)
		if verr == nil {
			t.Error("fetch survived a severed mix cascade")
			return
		}
		if !nymerr.HasCode(verr, vnet.CodePartitioned) {
			t.Errorf("fetch failure chain lacks %s: %v", vnet.CodePartitioned, verr)
		}
		if err := c.HostOf(eastNym).Fleet().FailNym(p, eastNym, verr); err != nil {
			t.Errorf("fail %s: %v", eastNym, err)
		}

		// The sweep keeps saving what still runs, and the unaffected
		// nym's cover clock never misses a beat.
		westCover := coverBytes(c.Member(westNym))
		if err := c.StartSweeps(cluster.SweepConfig{Interval: 15 * time.Second, Tokens: 1, SaveAll: true}); err != nil {
			t.Errorf("sweeps: %v", err)
			return
		}
		p.Sleep(50 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		if errs := c.SweepErrors(); len(errs) != 0 {
			t.Errorf("sweeps failed during the cascade partition: %v", errs)
		}
		if delta := coverBytes(c.Member(westNym)) - westCover; delta <= 0 {
			t.Errorf("cover traffic stalled on the unaffected nym (delta %d)", delta)
		}

		// Snapshot the SLO view while members are still live, then heal
		// and tear down.
		rep = FromCluster(c)
		net.HealRegions("east", webworld.MixRegion)
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})

	if rep.Unclassified != 0 {
		t.Fatalf("%d unclassified failures: %+v", rep.Unclassified, rep.FailuresByCode)
	}
	if rep.TotalFailures == 0 {
		t.Fatal("no failures recorded for the severed cascade")
	}
	var sawCrash bool
	for _, fc := range rep.FailuresByCode {
		if fc.Code == fleet.CodeCrashInjected {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatalf("injected crash missing from taxonomy: %+v", rep.FailuresByCode)
	}
	// The taxonomy buckets by outermost code (the crash injection, the
	// stalled launch); the partition that caused them must still be
	// findable in the recorded chains.
	var sawPartition bool
	for _, h := range c.Hosts() {
		for _, f := range h.Fleet().Failures() {
			if nymerr.HasCode(f.Err, vnet.CodePartitioned) {
				sawPartition = true
			}
		}
	}
	if !sawPartition {
		t.Fatal("no recorded failure chain carries vnet.partitioned")
	}
	if rep.CoverWireBytes <= 0 {
		t.Fatalf("SLO report saw no cover wire from a running mixnet fleet: %d", rep.CoverWireBytes)
	}
}
