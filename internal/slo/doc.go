// Package slo aggregates the fleet's restart, sweep, preemption, and
// migration machinery into one typed SLO report.
//
// Every failure surface in the stack records a fleet.FailureRecord
// whose code comes from the nymerr registry, so the report's failure
// taxonomy is exact: a bucket per registered code, zero free-text
// parsing, and an Unclassified counter the chaos suites pin to zero.
// On top of the taxonomy the report carries the latencies and budgets
// the paper's deployment story turns on — ramp latency percentiles
// (admission queue entry to Running), restart/preemption/migration
// rates per simulated hour, the sweep scheduler's staleness
// distribution (how old a checkpoint gets under backoff pressure),
// and the checkpoint wire budget against its monolithic baseline.
//
// Build a report with FromFleet (one orchestrator) or FromCluster
// (the whole pool, retired hosts included); Render prints it the way
// `nymixctl status` does.
package slo
