package slo

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/fleet"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/webworld"
)

func smallOpts(model core.UsageModel) core.Options {
	return core.Options{
		Model:    model,
		AnonRAM:  256 * guestos.MiB,
		AnonDisk: 64 * guestos.MiB,
		CommRAM:  64 * guestos.MiB,
		CommDisk: 16 * guestos.MiB,
	}
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.Run()
}

func TestFromFleetBucketsInjectedFailures(t *testing.T) {
	eng := sim.NewEngine(11)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.Config{
		RAMBytes: 8 << 30,
		CPU:      cpusched.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	orch := fleet.New(mgr, fleet.Config{Restart: fleet.RestartPolicy{MaxRestarts: 1, Backoff: time.Second}})
	run(t, eng, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("nym%02d", i)
			if _, err := orch.Launch(fleet.Spec{Name: name, Opts: smallOpts(core.ModelEphemeral)}); err != nil {
				t.Errorf("launch %s: %v", name, err)
			}
		}
		if err := orch.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
		if err := orch.FailNym(p, "nym01", nil); err != nil {
			t.Errorf("fail: %v", err)
		}
		if err := orch.AwaitRunning(p, 3); err != nil {
			t.Errorf("await after crash: %v", err)
		}
	})
	rep := FromFleet(orch)
	if rep.Members != 3 || rep.Running != 3 {
		t.Fatalf("members/running = %d/%d, want 3/3", rep.Members, rep.Running)
	}
	if rep.TotalFailures == 0 {
		t.Fatal("no failures recorded for the injected crash")
	}
	if rep.Unclassified != 0 {
		t.Fatalf("%d unclassified failures", rep.Unclassified)
	}
	found := false
	for _, fc := range rep.FailuresByCode {
		if fc.Code == fleet.CodeCrashInjected {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet.crash_injected missing from taxonomy: %+v", rep.FailuresByCode)
	}
	if len(rep.MemberHealth) != 1 || rep.MemberHealth[0].Member != "nym01" {
		t.Fatalf("member health = %+v, want only nym01", rep.MemberHealth)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.Restarts)
	}
	if rep.RampP50 <= 0 || rep.RampP95 < rep.RampP50 || rep.RampMax < rep.RampP95 {
		t.Fatalf("ramp percentiles out of order: p50=%v p95=%v max=%v",
			rep.RampP50, rep.RampP95, rep.RampMax)
	}
	if rep.RestartRate <= 0 {
		t.Fatalf("restart rate = %v, want > 0", rep.RestartRate)
	}
}

func TestFromClusterAggregatesSweepsAndRender(t *testing.T) {
	eng := sim.NewEngine(12)
	_, world := webworld.BuildDefault(eng)
	c, err := cluster.New(eng, world, cluster.Config{
		Hosts:      2,
		HostConfig: hypervisor.Config{RAMBytes: 8 << 30, CPU: cpusched.DefaultConfig()},
		Fleet:      fleet.Config{Restart: fleet.DefaultRestartPolicy()},
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("nym%02d", i)
			opts := smallOpts(core.ModelPersistent)
			opts.GuardSeed = name
			if err := c.Launch(fleet.Spec{Name: name, Opts: opts}); err != nil {
				t.Errorf("launch %s: %v", name, err)
			}
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
		}
		if err := c.StartSweeps(cluster.SweepConfig{Interval: 20 * time.Second}); err != nil {
			t.Errorf("sweeps: %v", err)
		}
		p.Sleep(45 * time.Second)
		c.StopSweeps()
		c.AwaitSweepsIdle(p)
		host := c.HostOf("nym02")
		if err := host.Fleet().FailNym(p, "nym02", nil); err != nil {
			t.Errorf("fail: %v", err)
		}
		if err := c.AwaitRunning(p, 4); err != nil {
			t.Errorf("await after crash: %v", err)
		}
		if err := c.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	rep := FromCluster(c)
	if rep.Hosts != 2 || rep.Members != 4 {
		t.Fatalf("hosts/members = %d/%d, want 2/4", rep.Hosts, rep.Members)
	}
	if rep.Unclassified != 0 {
		t.Fatalf("%d unclassified failures: %+v", rep.Unclassified, rep.FailuresByCode)
	}
	if rep.Sweeps == 0 {
		t.Fatal("no sweep passes aggregated")
	}
	if rep.CheckpointWireBytes <= 0 {
		t.Fatal("no checkpoint wire accounted")
	}
	if len(rep.MemberHealth) == 0 || rep.MemberHealth[0].Host == "" {
		t.Fatalf("member health lacks host attribution: %+v", rep.MemberHealth)
	}
	out := rep.Render()
	for _, want := range []string{
		"SLO report", "pool:", "ramp:", "sweeps:", "ckpt wire:",
		"failures:", string(fleet.CodeCrashInjected),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}
