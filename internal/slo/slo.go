package slo

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nymix/internal/cluster"
	"nymix/internal/fleet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// FailureCount is one bucket of the failure taxonomy: how many
// recorded failures classified to a code.
type FailureCount struct {
	Code  nymerr.Code
	Count int
}

// MemberHealth is one member's slice of the report: where it runs and
// its failure history bucketed by code. Only members with a non-empty
// history appear.
type MemberHealth struct {
	Member   string
	Host     string // "" in a single-orchestrator report
	Failures []FailureCount
}

// Report is the fleet-wide SLO snapshot: the restart, sweep, and
// migration machinery aggregated into one typed structure. nymixctl
// status renders it; the chaos suites assert Unclassified == 0 on it.
type Report struct {
	At sim.Time // simulated timestamp of the snapshot

	// Pool shape. A single-orchestrator report is a one-host pool.
	Hosts        int
	ActiveHosts  int
	RetiredHosts int

	// Member population.
	Members int
	Running int
	Failed  int

	// Failure taxonomy over every recorded FailureRecord.
	TotalFailures  int
	Unclassified   int // records whose error carried no registered code
	FailuresByCode []FailureCount
	MemberHealth   []MemberHealth // host order, then name order within a host

	// Ramp latency: admission queue entry to Running, nearest-rank
	// percentiles over members that reached Running at least once.
	RampP50 time.Duration
	RampP95 time.Duration
	RampMax time.Duration

	// Restart / preemption / migration machinery: absolute counts and
	// events per simulated hour.
	Restarts       int
	Preempted      fleet.PreemptStats
	Migrations     int
	RestartRate    float64
	PreemptionRate float64
	MigrationRate  float64

	// Checkpoint sweep machinery.
	Sweeps          int
	SweepBackoffs   int
	SweepErrors     int
	DirtySkipRatio  float64
	SweepLatencyP50 time.Duration
	SweepLatencyP95 time.Duration
	// Staleness: gaps between consecutive completed sweep passes — how
	// stale a checkpoint is allowed to get under backoff pressure.
	StalenessP50 time.Duration
	StalenessMax time.Duration
	// Adaptive checkpoint economy: members the churn-adaptive cadence
	// postponed, and per-save member staleness (how old each saved
	// member's oldest unsaved mutation could have been when its save
	// launched — sample-pooled across hosts, unlike the pass-gap
	// staleness above).
	SweepDeferred      int
	MemberStalenessP50 time.Duration
	MemberStalenessP95 time.Duration
	MemberStalenessMax time.Duration
	// Opportunistic VaultGC spend and recovery (cluster reports only).
	GCRuns           int
	GCReclaimedBytes int64
	GCWireBytes      int64

	// Checkpoint wire budgets: bytes actually shipped vs what
	// monolithic re-uploads would have cost, plus migration traffic.
	CheckpointWireBytes     int64
	CheckpointBaselineBytes int64
	MigrationWireBytes      int64

	// Cover-traffic wire budgets. WireReservedRate is the standing
	// idle uplink (bytes/sec) the admitted fleet holds against
	// WireBudgetRate (-1 = uncapped); CoverWireBytes is what the
	// running members' constant-rate transports have actually sent —
	// uplink the pool pays even when every browser is idle.
	WireReservedRate int64
	WireBudgetRate   int64
	CoverWireBytes   int64
}

// WireSavings is the fraction of the monolithic baseline the
// incremental checkpoint path avoided shipping.
func (r Report) WireSavings() float64 {
	if r.CheckpointBaselineBytes == 0 {
		return 0
	}
	return 1 - float64(r.CheckpointWireBytes)/float64(r.CheckpointBaselineBytes)
}

// FromFleet snapshots one orchestrator as a one-host pool.
func FromFleet(o *fleet.Orchestrator) Report {
	b := builder{}
	b.r.At = o.Manager().Engine().Now()
	b.r.Hosts, b.r.ActiveHosts = 1, 1
	b.addMembers("", o.Members(), nil)
	b.addFailures("", o.Failures())
	b.addSweeps(o.SweepReport())
	b.stale = append(b.stale, o.CheckpointStaleness()...)
	b.r.Preempted = o.Preemptions()
	b.r.WireReservedRate = o.WireReservedRate()
	b.r.WireBudgetRate = o.WireBudgetRate()
	return b.finish()
}

// FromCluster snapshots the whole pool, retired hosts included: their
// failure histories and sweep telemetry are part of the run even
// though the hosts no longer take placements.
func FromCluster(c *cluster.Cluster) Report {
	st := c.Snapshot()
	b := builder{}
	b.r.Hosts, b.r.ActiveHosts, b.r.RetiredHosts = st.Hosts, st.ActiveHosts, st.RetiredHosts
	b.r.Migrations = st.Migrations
	b.r.Preempted = st.Preempted
	b.r.MigrationWireBytes = st.MigrationWireBytes
	b.r.WireReservedRate = st.WireReservedRate
	for _, h := range c.Hosts() {
		budget := h.Fleet().WireBudgetRate()
		if budget < 0 {
			b.r.WireBudgetRate = -1
			break
		}
		b.r.WireBudgetRate += budget
	}
	hosts := append(c.Hosts(), c.RetiredHosts()...)
	if len(hosts) > 0 {
		b.r.At = hosts[0].Manager().Engine().Now()
	}
	for _, h := range hosts {
		// Cluster ramp latency runs from cluster-wide queue entry, not
		// host-side admission: time parked in the cluster queue is
		// latency the user saw.
		b.addMembers(h.Name(), h.Fleet().Members(), c.LaunchedAt)
		b.addFailures(h.Name(), h.Fleet().Failures())
		b.addSweeps(h.Fleet().SweepReport())
		b.stale = append(b.stale, h.Fleet().CheckpointStaleness()...)
	}
	crep := c.SweepReport()
	b.r.GCRuns = crep.GCRuns
	b.r.GCReclaimedBytes = crep.GCReclaimedBytes
	b.r.GCWireBytes = crep.GCWireBytes
	b.r.CheckpointWireBytes += crep.GCWireBytes
	b.r.SweepErrors += len(c.SweepErrors())
	return b.finish()
}

// builder accumulates raw samples across hosts before the percentile
// and rate math in finish.
type builder struct {
	r         Report
	ramps     []time.Duration
	sweepLats []time.Duration
	stale     []time.Duration
	passAts   []sim.Time
	eligible  int
	skips     int
}

func (b *builder) addMembers(host string, members []*fleet.Member, launchedAt func(string) (sim.Time, bool)) {
	for _, m := range members {
		b.r.Members++
		switch m.State() {
		case fleet.StateRunning:
			b.r.Running++
		case fleet.StateFailed:
			b.r.Failed++
		}
		b.r.Restarts += m.Restarts()
		if nym := m.Nym(); nym != nil {
			// Constant-rate transports report the cover traffic they
			// have spent; demand-driven backends simply lack the method.
			if cov, ok := nym.Anonymizer().(interface{ CoverWireBytes() int64 }); ok {
				b.r.CoverWireBytes += cov.CoverWireBytes()
			}
		}
		if m.RunningAt() > 0 {
			start := m.QueuedAt()
			if launchedAt != nil {
				if t, ok := launchedAt(m.Name()); ok {
					start = t
				}
			}
			if lat := m.RunningAt() - start; lat >= 0 {
				b.ramps = append(b.ramps, lat)
			}
		}
	}
}

func (b *builder) addFailures(host string, recs []fleet.FailureRecord) {
	byMember := map[string]map[nymerr.Code]int{}
	for _, rec := range recs {
		b.r.TotalFailures++
		if rec.Code == "" {
			b.r.Unclassified++
		}
		if byMember[rec.Member] == nil {
			byMember[rec.Member] = map[nymerr.Code]int{}
		}
		byMember[rec.Member][rec.Code]++
	}
	names := make([]string, 0, len(byMember))
	for name := range byMember {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.r.MemberHealth = append(b.r.MemberHealth, MemberHealth{
			Member:   name,
			Host:     host,
			Failures: sortedCounts(byMember[name]),
		})
	}
}

func (b *builder) addSweeps(rep fleet.SweepReport) {
	b.r.Sweeps += rep.Sweeps
	b.r.SweepBackoffs += rep.Backoffs
	b.r.SweepErrors += rep.Errors
	b.r.SweepDeferred += rep.Deferred
	b.eligible += rep.Eligible
	b.skips += rep.Skips
	b.r.CheckpointWireBytes += rep.WireBytes()
	b.r.CheckpointBaselineBytes += rep.BaselineBytes
	for _, rec := range rep.Records {
		if rec.BackedOff {
			continue
		}
		b.sweepLats = append(b.sweepLats, rec.Elapsed)
		b.passAts = append(b.passAts, rec.At)
	}
}

// finish folds the accumulated samples into percentiles and rates.
func (b *builder) finish() Report {
	r := &b.r
	r.RampP50 = fleet.LatencyPercentile(b.ramps, 0.50)
	r.RampP95 = fleet.LatencyPercentile(b.ramps, 0.95)
	for _, d := range b.ramps {
		if d > r.RampMax {
			r.RampMax = d
		}
	}
	r.SweepLatencyP50 = fleet.LatencyPercentile(b.sweepLats, 0.50)
	r.SweepLatencyP95 = fleet.LatencyPercentile(b.sweepLats, 0.95)
	if b.eligible > 0 {
		r.DirtySkipRatio = float64(b.skips) / float64(b.eligible)
	}
	sort.Slice(b.passAts, func(i, j int) bool { return b.passAts[i] < b.passAts[j] })
	var gaps []time.Duration
	for i := 1; i < len(b.passAts); i++ {
		gaps = append(gaps, b.passAts[i]-b.passAts[i-1])
	}
	r.StalenessP50 = fleet.LatencyPercentile(gaps, 0.50)
	for _, g := range gaps {
		if g > r.StalenessMax {
			r.StalenessMax = g
		}
	}
	r.MemberStalenessP50 = fleet.LatencyPercentile(b.stale, 0.50)
	r.MemberStalenessP95 = fleet.LatencyPercentile(b.stale, 0.95)
	for _, s := range b.stale {
		if s > r.MemberStalenessMax {
			r.MemberStalenessMax = s
		}
	}
	if hours := r.At.Hours(); hours > 0 {
		r.RestartRate = float64(r.Restarts) / hours
		r.PreemptionRate = float64(r.Preempted.Total()) / hours
		r.MigrationRate = float64(r.Migrations) / hours
	}
	totals := map[nymerr.Code]int{}
	for _, mh := range r.MemberHealth {
		for _, fc := range mh.Failures {
			totals[fc.Code] += fc.Count
		}
	}
	r.FailuresByCode = sortedCounts(totals)
	return *r
}

// sortedCounts flattens a bucket map, descending count then code.
func sortedCounts(m map[nymerr.Code]int) []FailureCount {
	out := make([]FailureCount, 0, len(m))
	for code, n := range m {
		out = append(out, FailureCount{Code: code, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// Render formats the report the way nymixctl status prints it.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO report @ %v\n", r.At)
	fmt.Fprintf(&b, "  pool:        %d hosts (%d active, %d retired)\n",
		r.Hosts, r.ActiveHosts, r.RetiredHosts)
	fmt.Fprintf(&b, "  members:     %d (%d running, %d failed)\n",
		r.Members, r.Running, r.Failed)
	fmt.Fprintf(&b, "  ramp:        p50 %v  p95 %v  max %v\n",
		r.RampP50, r.RampP95, r.RampMax)
	fmt.Fprintf(&b, "  restarts:    %d (%.2f/h)   preemptions: %d (%.2f/h)   migrations: %d (%.2f/h)\n",
		r.Restarts, r.RestartRate, r.Preempted.Total(), r.PreemptionRate, r.Migrations, r.MigrationRate)
	fmt.Fprintf(&b, "  sweeps:      %d passes, %d backoffs, %d errors, %d deferred, dirty-skip %.0f%%\n",
		r.Sweeps, r.SweepBackoffs, r.SweepErrors, r.SweepDeferred, 100*r.DirtySkipRatio)
	fmt.Fprintf(&b, "  sweep lat:   p50 %v  p95 %v   staleness p50 %v  max %v\n",
		r.SweepLatencyP50, r.SweepLatencyP95, r.StalenessP50, r.StalenessMax)
	if r.MemberStalenessMax > 0 {
		fmt.Fprintf(&b, "  ckpt stale:  p50 %v  p95 %v  max %v per saved member\n",
			r.MemberStalenessP50, r.MemberStalenessP95, r.MemberStalenessMax)
	}
	if r.GCRuns > 0 {
		fmt.Fprintf(&b, "  vault gc:    %d runs, %s reclaimed for %s of probe wire\n",
			r.GCRuns, fmtBytes(r.GCReclaimedBytes), fmtBytes(r.GCWireBytes))
	}
	fmt.Fprintf(&b, "  ckpt wire:   %s shipped vs %s baseline (%.0f%% saved)   migration wire: %s\n",
		fmtBytes(r.CheckpointWireBytes), fmtBytes(r.CheckpointBaselineBytes),
		100*r.WireSavings(), fmtBytes(r.MigrationWireBytes))
	budget := "uncapped"
	if r.WireBudgetRate >= 0 {
		budget = fmtBytes(r.WireBudgetRate) + "/s"
	}
	fmt.Fprintf(&b, "  cover wire:  %s/s reserved of %s   %s sent while idle or busy\n",
		fmtBytes(r.WireReservedRate), budget, fmtBytes(r.CoverWireBytes))
	fmt.Fprintf(&b, "  failures:    %d recorded, %d unclassified\n", r.TotalFailures, r.Unclassified)
	for _, fc := range r.FailuresByCode {
		fmt.Fprintf(&b, "    %-36s %d\n", string(fc.Code), fc.Count)
	}
	for _, mh := range r.MemberHealth {
		loc := mh.Member
		if mh.Host != "" {
			loc = mh.Member + "@" + mh.Host
		}
		var parts []string
		for _, fc := range mh.Failures {
			parts = append(parts, fmt.Sprintf("%s x%d", fc.Code, fc.Count))
		}
		fmt.Fprintf(&b, "    %-20s %s\n", loc, strings.Join(parts, ", "))
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
