// Package webworld builds the simulated Internet the evaluation runs
// against: the LAN gateway the Nymix host plugs into, a backbone
// router, the web sites the paper's workloads visit (Gmail, Twitter,
// YouTube, the Tor Blog, BBC, Facebook, Slashdot, ESPN), a
// kernel.org-like file host for the Figure 5 bulk downloads, and a
// DeterLab-like enclave hosting the test Tor relays and Dissent
// servers (reached at the paper's 80 ms RTT).
//
// Sites keep an observation log of every request they serve — source
// address as seen at the server, tracking cookie, browser fingerprint,
// logged-in account — which internal/tracker mines for linkage, the
// adversarial capability Nymix is designed to frustrate.
package webworld

import (
	"time"

	"nymix/internal/sim"
	"nymix/internal/vnet"
)

// LANTag marks intranet nodes; it must match the hypervisor's filter.
const LANTag = "lan"

// CoreRegion labels the backbone: the default gateway, the Internet
// router, the DeterLab enclave, and the mail exchange. Severing a
// hosting region from CoreRegion cuts that region's hosts off from
// every site, provider, and relay attached to the backbone.
const CoreRegion = "core"

// MixRegion labels the mix-cascade enclave: the mixnet gateway router
// and every mix node. It is its own severable region so chaos
// experiments can cut one hosting region off from the cascade while
// the rest of the fleet's cover traffic keeps flowing.
const MixRegion = "mixnet"

// SiteProfile models a web site's weight and behaviour. Sizes are
// bytes.
type SiteProfile struct {
	Host          string // DNS name, e.g. "twitter.com"
	InitialPage   int64  // cold-cache page weight
	RevisitPage   int64  // warm-cache transfer (deltas, APIs)
	CacheFill     int64  // bytes added to the browser cache per visit
	CacheEntropy  float64
	RequiresLogin bool
	Trackers      []string // third-party trackers embedded in pages
}

// Site is one web property attached to the Internet.
type Site struct {
	Profile SiteProfile
	node    *vnet.Node
	visits  []Visit
	// accounts maps account name -> password for login checking.
	accounts map[string]string
}

// Node returns the site's network node.
func (s *Site) Node() *vnet.Node { return s.node }

// NodeName returns the site's network node name.
func (s *Site) NodeName() string { return s.node.Name() }

// Visit is one server-side observation: everything the site (and its
// trackers) can see about a request.
type Visit struct {
	Time        sim.Time
	Site        string
	SourceAddr  string // network source as seen by the server
	CookieID    string // tracking cookie presented ("" = none)
	Fingerprint string // browser/device fingerprint
	Account     string // authenticated account, if logged in
	Action      string // "browse", "login", "post", "download"
	Payload     string // posted content, if any
}

// RecordVisit appends a server-side observation.
func (s *Site) RecordVisit(v Visit) {
	v.Site = s.Profile.Host
	s.visits = append(s.visits, v)
}

// Visits returns the site's observation log.
func (s *Site) Visits() []Visit { return s.visits }

// CreateAccount registers a pseudonymous account.
func (s *Site) CreateAccount(name, password string) { s.accounts[name] = password }

// CheckLogin verifies credentials.
func (s *Site) CheckLogin(name, password string) bool {
	pw, ok := s.accounts[name]
	return ok && pw == password
}

// Relay is one Tor relay in the test deployment.
type Relay struct {
	NodeName string
	Guard    bool
	Exit     bool
}

// World is the whole simulated Internet.
type World struct {
	eng      *sim.Engine
	net      *vnet.Network
	gateway  *vnet.Node
	internet *vnet.Node
	deterlab *vnet.Node
	ispDNS   *vnet.Node
	intranet *vnet.Node
	mailGW   *vnet.Node       // public mail exchange (SWEET's transport)
	sweetPrx *vnet.Node       // SWEET web proxy reachable only by mail
	sites    map[string]*Site // by DNS host name
	fileHost *Site
	relays   []Relay
	dissent  []string              // Dissent anytrust server node names
	mixes    []string              // mix-cascade node names, entry first
	regions  map[string]*vnet.Node // regional gateway routers by region name
	dns      map[string]string
	// trackerLog collects third-party tracker observations: what
	// doubleclick.net and friends see across every first-party site
	// embedding them.
	trackerLog []Visit
}

// DefaultSites are the paper's workload sites, visited in the Figure 3
// order. Weights are calibrated so Figure 6's size ordering holds
// (Facebook heaviest, the Tor Blog lightest).
func DefaultSites() []SiteProfile {
	return []SiteProfile{
		{Host: "gmail.com", InitialPage: 5 << 20, RevisitPage: 1 << 20, CacheFill: 2400 << 10, CacheEntropy: 0.93, RequiresLogin: true, Trackers: []string{"doubleclick.net"}},
		{Host: "twitter.com", InitialPage: 4 << 20, RevisitPage: 1200 << 10, CacheFill: 2000 << 10, CacheEntropy: 0.94, RequiresLogin: true, Trackers: []string{"doubleclick.net", "adnet.example"}},
		{Host: "youtube.com", InitialPage: 9 << 20, RevisitPage: 4 << 20, CacheFill: 5 << 20, CacheEntropy: 0.98, Trackers: []string{"doubleclick.net"}},
		{Host: "blog.torproject.org", InitialPage: 1200 << 10, RevisitPage: 300 << 10, CacheFill: 700 << 10, CacheEntropy: 0.85},
		{Host: "bbc.co.uk", InitialPage: 3 << 20, RevisitPage: 1 << 20, CacheFill: 1800 << 10, CacheEntropy: 0.92, Trackers: []string{"adnet.example"}},
		{Host: "facebook.com", InitialPage: 7 << 20, RevisitPage: 2 << 20, CacheFill: 4600 << 10, CacheEntropy: 0.95, RequiresLogin: true, Trackers: []string{"facebook-pixel"}},
		{Host: "slashdot.org", InitialPage: 2 << 20, RevisitPage: 800 << 10, CacheFill: 1 << 20, CacheEntropy: 0.9, Trackers: []string{"adnet.example"}},
		{Host: "espn.com", InitialPage: 6 << 20, RevisitPage: 2 << 20, CacheFill: 3 << 20, CacheEntropy: 0.96, Trackers: []string{"doubleclick.net", "adnet.example"}},
	}
}

// Config parameterizes the world build.
type Config struct {
	Sites        []SiteProfile
	RelayCount   int // Tor relays in the DeterLab enclave
	DissentCount int // Dissent anytrust servers
	MixCount     int // mix-cascade hops in the MixRegion enclave
}

// DefaultConfig mirrors the paper's testbed, extended with a 3-hop
// mix cascade for the mixnet transport.
func DefaultConfig() Config {
	return Config{Sites: DefaultSites(), RelayCount: 9, DissentCount: 3, MixCount: 3}
}

// Link parameters. The Nymix host's uplink is rate limited to
// 10 Mbit/s and the DeterLab path gives an 80 ms round trip (paper
// section 5.2); everything else is fast enough not to be the
// bottleneck.
var (
	// UplinkConfig is used by callers to connect the Nymix host.
	UplinkConfig = vnet.LinkConfig{Latency: 5 * time.Millisecond, Capacity: 10e6 / 8}

	backboneCfg = vnet.LinkConfig{Latency: 5 * time.Millisecond, Capacity: 1e9 / 8}
	deterCfg    = vnet.LinkConfig{Latency: 20 * time.Millisecond, Capacity: 1e9 / 8}
	relayCfg    = vnet.LinkConfig{Latency: 10 * time.Millisecond, Capacity: 100e6 / 8}
	siteCfg     = vnet.LinkConfig{Latency: time.Millisecond, Capacity: 1e9 / 8}
	lanCfg      = vnet.LinkConfig{Latency: time.Millisecond, Capacity: 1e9 / 8}
)

// Build constructs the world on an existing network.
func Build(net *vnet.Network, cfg Config) *World {
	w := &World{
		eng:     net.Engine(),
		net:     net,
		sites:   make(map[string]*Site),
		regions: make(map[string]*vnet.Node),
		dns:     make(map[string]string),
	}
	w.gateway = net.AddRouter("gateway").WithRegion(CoreRegion).Node
	w.internet = net.AddRouter("internet").WithRegion(CoreRegion).Node
	w.deterlab = net.AddRouter("deterlab").WithRegion(CoreRegion).Node
	w.ispDNS = net.AddNode("isp-dns")
	w.intranet = net.AddNode("intranet-fileserver").AddTag(LANTag)
	w.mailGW = net.AddRouter("mail-gateway").WithRegion(CoreRegion).Node
	w.sweetPrx = net.AddNode("sweet-proxy")
	net.Connect(w.gateway, w.internet, backboneCfg)
	net.Connect(w.internet, w.deterlab, deterCfg)
	net.Connect(w.gateway, w.ispDNS, lanCfg)
	net.Connect(w.gateway, w.intranet, lanCfg)
	net.Connect(w.mailGW, w.internet, siteCfg)
	net.Connect(w.sweetPrx, w.mailGW, siteCfg)

	for _, prof := range cfg.Sites {
		w.addSiteAt(prof, w.internet, siteCfg)
	}
	// The bulk-download server lives inside DeterLab, "in order to
	// guarantee the 10 Mbit download rate" (section 5.2).
	w.fileHost = w.addSiteAt(SiteProfile{Host: "kernel.deterlab.net", InitialPage: 64 << 10, RevisitPage: 64 << 10}, w.deterlab, relayCfg)

	for i := 0; i < cfg.RelayCount; i++ {
		name := relayName(i)
		n := net.AddNode(name)
		net.Connect(n, w.deterlab, relayCfg)
		w.relays = append(w.relays, Relay{
			NodeName: name,
			// First third are guards, last third are exits.
			Guard: i < (cfg.RelayCount+2)/3,
			Exit:  i >= cfg.RelayCount-(cfg.RelayCount+2)/3,
		})
	}
	for i := 0; i < cfg.DissentCount; i++ {
		name := dissentName(i)
		n := net.AddNode(name)
		net.Connect(n, w.deterlab, relayCfg)
		w.dissent = append(w.dissent, name)
	}
	// The mix cascade lives in its own enclave behind a regional
	// gateway, so SeverRegions can cut a hosting region off from the
	// mixes without touching the rest of the backbone.
	if cfg.MixCount > 0 {
		mixGW := net.AddRouter("mixnet-gw").WithRegion(MixRegion).Node
		net.Connect(mixGW, w.internet, backboneCfg)
		for i := 0; i < cfg.MixCount; i++ {
			name := mixName(i)
			n := net.AddNode(name).SetRegion(MixRegion)
			net.Connect(n, mixGW, relayCfg)
			w.mixes = append(w.mixes, name)
		}
	}
	return w
}

// BuildDefault creates a fresh engine-bound network and default world.
func BuildDefault(eng *sim.Engine) (*vnet.Network, *World) {
	net := vnet.New(eng)
	return net, Build(net, DefaultConfig())
}

func relayName(i int) string { return "relay-" + string(rune('a'+i)) }

func dissentName(i int) string { return "dissent-srv-" + string(rune('0'+i)) }

func mixName(i int) string { return "mix-" + string(rune('a'+i)) }

func (w *World) addSiteAt(prof SiteProfile, attach *vnet.Node, cfg vnet.LinkConfig) *Site {
	node := w.net.AddNode("site:" + prof.Host)
	w.net.Connect(node, attach, cfg)
	s := &Site{Profile: prof, node: node, accounts: make(map[string]string)}
	w.sites[prof.Host] = s
	w.dns[prof.Host] = node.Name()
	return s
}

// Gateway returns the LAN gateway node the Nymix host uplinks to.
func (w *World) Gateway() *vnet.Node { return w.gateway }

// EnsureRegion returns the regional gateway router for a named
// hosting region, creating it (and its backbone link) on first use.
// Hosts attached to a regional gateway inherit its region label, so
// vnet.SeverRegions can partition whole regions from each other or
// from the CoreRegion backbone.
func (w *World) EnsureRegion(name string) *vnet.Node {
	if gw, ok := w.regions[name]; ok {
		return gw
	}
	gw := w.net.AddRouter("region:" + name).WithRegion(name).Node
	w.net.Connect(gw, w.internet, backboneCfg)
	w.regions[name] = gw
	return gw
}

// RegionGateway returns the named region's gateway router, or nil if
// the region was never created.
func (w *World) RegionGateway(name string) *vnet.Node { return w.regions[name] }

// Internet returns the backbone router.
func (w *World) Internet() *vnet.Node { return w.internet }

// Deterlab returns the testbed enclave router.
func (w *World) Deterlab() *vnet.Node { return w.deterlab }

// ISPDNS returns the ISP's resolver node (used by the incognito
// mode's leaky direct DNS path).
func (w *World) ISPDNS() *vnet.Node { return w.ispDNS }

// Intranet returns the LAN-tagged intranet host.
func (w *World) Intranet() *vnet.Node { return w.intranet }

// MailGateway returns the public mail exchange node.
func (w *World) MailGateway() *vnet.Node { return w.mailGW }

// SweetProxy returns the SWEET web proxy, reachable only through the
// mail gateway.
func (w *World) SweetProxy() *vnet.Node { return w.sweetPrx }

// Net returns the underlying network.
func (w *World) Net() *vnet.Network { return w.net }

// Site returns the site for a DNS host name, or nil.
func (w *World) Site(host string) *Site { return w.sites[host] }

// FileHost returns the kernel.org-like bulk file server.
func (w *World) FileHost() *Site { return w.fileHost }

// Relays returns the Tor test deployment.
func (w *World) Relays() []Relay { return w.relays }

// DissentServers returns the anytrust server node names.
func (w *World) DissentServers() []string { return w.dissent }

// MixCascade returns the mix-cascade node names in hop order (entry
// first, exit last).
func (w *World) MixCascade() []string { return w.mixes }

// Lookup resolves a DNS host name to a network node name.
func (w *World) Lookup(host string) (string, bool) {
	n, ok := w.dns[host]
	return n, ok
}

// Resolver returns a lookup function suitable for anonymizers.
func (w *World) Resolver() func(string) (string, bool) {
	return func(host string) (string, bool) { return w.Lookup(host) }
}

// RecordTracker logs a third-party tracker observation. v.Site should
// name the tracker (e.g. "doubleclick.net"); Payload names the
// first-party page it was embedded in.
func (w *World) RecordTracker(v Visit) { w.trackerLog = append(w.trackerLog, v) }

// TrackerLog returns all third-party tracker observations.
func (w *World) TrackerLog() []Visit { return w.trackerLog }

// AllVisits gathers every site's observation log, in site order then
// time order — the global adversary's view of the server side.
func (w *World) AllVisits() []Visit {
	var out []Visit
	for _, prof := range DefaultSites() {
		if s := w.sites[prof.Host]; s != nil {
			out = append(out, s.visits...)
		}
	}
	if w.fileHost != nil {
		out = append(out, w.fileHost.visits...)
	}
	return out
}
