package webworld

import (
	"testing"

	"nymix/internal/sim"
	"nymix/internal/vnet"
)

func TestBuildDefaultTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	net, w := BuildDefault(eng)
	for _, name := range []string{"gateway", "internet", "deterlab", "isp-dns"} {
		if net.Node(name) == nil {
			t.Fatalf("missing node %q", name)
		}
	}
	if len(w.Relays()) != 9 {
		t.Fatalf("relays = %d", len(w.Relays()))
	}
	if len(w.DissentServers()) != 3 {
		t.Fatalf("dissent servers = %d", len(w.DissentServers()))
	}
	for _, prof := range DefaultSites() {
		if w.Site(prof.Host) == nil {
			t.Fatalf("missing site %s", prof.Host)
		}
		node, ok := w.Lookup(prof.Host)
		if !ok || net.Node(node) == nil {
			t.Fatalf("dns broken for %s", prof.Host)
		}
	}
}

func TestRelayFlags(t *testing.T) {
	eng := sim.NewEngine(1)
	_, w := BuildDefault(eng)
	var guards, exits int
	for _, r := range w.Relays() {
		if r.Guard {
			guards++
		}
		if r.Exit {
			exits++
		}
	}
	if guards == 0 || exits == 0 {
		t.Fatalf("guards=%d exits=%d", guards, exits)
	}
	// Guards and exits must not fully overlap in a 9-relay deployment.
	if guards+exits >= len(w.Relays())+2 {
		t.Fatalf("implausible flag distribution: guards=%d exits=%d", guards, exits)
	}
}

func TestDeterlabLatencyIsEightyMsRTT(t *testing.T) {
	// The paper's testbed: 80 ms round trip from the host network to
	// the DeterLab relays.
	eng := sim.NewEngine(1)
	net, w := BuildDefault(eng)
	probe := net.AddNode("probe")
	net.Connect(probe, w.Gateway(), UplinkConfig)
	lat, err := net.PathLatency("probe", w.Relays()[0].NodeName)
	if err != nil {
		t.Fatal(err)
	}
	rtt := 2 * lat
	if rtt < 70e6 || rtt > 90e6 { // nanoseconds
		t.Fatalf("RTT to relay = %v, want ~80ms", rtt)
	}
}

func TestSitesReachableThroughGateway(t *testing.T) {
	eng := sim.NewEngine(1)
	net, w := BuildDefault(eng)
	probe := net.AddNode("probe")
	net.Connect(probe, w.Gateway(), UplinkConfig)
	for _, prof := range DefaultSites() {
		node, _ := w.Lookup(prof.Host)
		if !net.CanReach("probe", node, "http") {
			t.Fatalf("site %s unreachable", prof.Host)
		}
	}
}

func TestIntranetTagged(t *testing.T) {
	eng := sim.NewEngine(1)
	_, w := BuildDefault(eng)
	if !w.Intranet().HasTag(LANTag) {
		t.Fatal("intranet node missing lan tag")
	}
}

func TestAccountsAndVisitLog(t *testing.T) {
	eng := sim.NewEngine(1)
	_, w := BuildDefault(eng)
	tw := w.Site("twitter.com")
	tw.CreateAccount("dissident47", "hunter2")
	if !tw.CheckLogin("dissident47", "hunter2") {
		t.Fatal("valid login rejected")
	}
	if tw.CheckLogin("dissident47", "wrong") {
		t.Fatal("invalid login accepted")
	}
	tw.RecordVisit(Visit{SourceAddr: "relay-x", CookieID: "c1", Action: "login", Account: "dissident47"})
	tw.RecordVisit(Visit{SourceAddr: "relay-y", CookieID: "c1", Action: "post", Payload: "hello"})
	if len(tw.Visits()) != 2 {
		t.Fatalf("visits = %d", len(tw.Visits()))
	}
	if tw.Visits()[0].Site != "twitter.com" {
		t.Fatalf("site not stamped: %+v", tw.Visits()[0])
	}
	all := w.AllVisits()
	if len(all) != 2 {
		t.Fatalf("AllVisits = %d", len(all))
	}
}

func TestSiteWeightOrderingForFigure6(t *testing.T) {
	// Figure 6's ordering depends on per-visit cache fill: Facebook >
	// Gmail > Twitter > Tor Blog.
	var fb, gm, tw, tb int64
	for _, p := range DefaultSites() {
		switch p.Host {
		case "facebook.com":
			fb = p.CacheFill
		case "gmail.com":
			gm = p.CacheFill
		case "twitter.com":
			tw = p.CacheFill
		case "blog.torproject.org":
			tb = p.CacheFill
		}
	}
	if !(fb > gm && gm > tw && tw > tb) {
		t.Fatalf("cache fill ordering broken: fb=%d gm=%d tw=%d tb=%d", fb, gm, tw, tb)
	}
}

func TestBuildOnExistingNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	net := vnet.New(eng)
	w := Build(net, Config{Sites: DefaultSites()[:2], RelayCount: 3, DissentCount: 1})
	if len(w.Relays()) != 3 {
		t.Fatalf("relays = %d", len(w.Relays()))
	}
	if w.Site("youtube.com") != nil {
		t.Fatal("unrequested site built")
	}
}
