package cpusched

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"nymix/internal/sim"
)

func runTasks(t *testing.T, cfg Config, eff float64, work float64, n int) []time.Duration {
	t.Helper()
	eng := sim.NewEngine(1)
	h := NewHost(eng, cfg)
	futs := make([]*sim.Future[TaskResult], n)
	for i := 0; i < n; i++ {
		futs[i] = h.Submit("t", work, eff)
	}
	eng.Run()
	out := make([]time.Duration, n)
	for i, f := range futs {
		r, err := f.Value()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r.Duration()
	}
	return out
}

func TestNativeSingleTask(t *testing.T) {
	d := runTasks(t, DefaultConfig(), 1.0, 10, 1)
	if math.Abs(d[0].Seconds()-10) > 0.01 {
		t.Fatalf("duration = %v, want 10s", d[0])
	}
}

func TestVirtualizationOverhead(t *testing.T) {
	d := runTasks(t, DefaultConfig(), 0.8, 10, 1)
	if math.Abs(d[0].Seconds()-12.5) > 0.01 {
		t.Fatalf("duration = %v, want 12.5s (20%% overhead)", d[0])
	}
}

func TestUpToCoreCountNoSlowdown(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		d := runTasks(t, DefaultConfig(), 1.0, 10, n)
		for _, dur := range d {
			if math.Abs(dur.Seconds()-10) > 0.01 {
				t.Fatalf("n=%d: duration = %v, want 10s", n, dur)
			}
		}
	}
}

func TestOversubscriptionWithSMTBonus(t *testing.T) {
	// 8 tasks on 4 cores with SMT factor 1.3: chip throughput 5.2,
	// per-task share 0.65 -> 10/0.65 ~ 15.38s.
	d := runTasks(t, DefaultConfig(), 1.0, 10, 8)
	want := 10 / 0.65
	for _, dur := range d {
		if math.Abs(dur.Seconds()-want) > 0.05 {
			t.Fatalf("duration = %v, want %.2fs", dur, want)
		}
	}
}

func TestSMTBonusGrowsGradually(t *testing.T) {
	// 5 tasks: throughput 4 + 1*0.3 = 4.3; share 0.86.
	d := runTasks(t, DefaultConfig(), 1.0, 10, 5)
	want := 10 / 0.86
	if math.Abs(d[0].Seconds()-want) > 0.05 {
		t.Fatalf("duration = %v, want %.2fs", d[0], want)
	}
}

func TestStaggeredTasksRecompute(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHost(eng, Config{Cores: 1, SMTFactor: 1})
	f1 := h.Submit("a", 10, 1.0)
	var f2 *sim.Future[TaskResult]
	eng.Schedule(5*time.Second, func() { f2 = h.Submit("b", 5, 1.0) })
	eng.Run()
	r1, _ := f1.Value()
	r2, _ := f2.Value()
	// a: 5s alone + shares 1 core with b. a has 5 units left, b has 5;
	// both at 0.5/s -> 10 more seconds. a ends at 15s, b at 15s.
	if math.Abs(r1.Ended.Seconds()-15) > 0.05 {
		t.Fatalf("a ended %v", r1.Ended)
	}
	if math.Abs(r2.Duration().Seconds()-10) > 0.05 {
		t.Fatalf("b took %v", r2.Duration())
	}
}

func TestChipThroughputShape(t *testing.T) {
	h := NewHost(sim.NewEngine(1), DefaultConfig())
	cases := []struct {
		n    int
		want float64
	}{{0, 0}, {1, 1}, {4, 4}, {5, 4.3}, {6, 4.6}, {8, 5.2}, {16, 5.2}}
	for _, c := range cases {
		if got := h.chipThroughput(c.n); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("throughput(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestDegenerateConfigsClamped(t *testing.T) {
	h := NewHost(sim.NewEngine(1), Config{Cores: 0, SMTFactor: 0.5})
	if h.Config().Cores != 1 || h.Config().SMTFactor != 1 {
		t.Fatalf("config not clamped: %+v", h.Config())
	}
}

// Property: total work completed per unit time never exceeds chip
// throughput, and all submitted work completes.
func TestPropertyWorkConserved(t *testing.T) {
	f := func(works []uint8) bool {
		if len(works) == 0 || len(works) > 16 {
			return true
		}
		eng := sim.NewEngine(5)
		h := NewHost(eng, DefaultConfig())
		var futs []*sim.Future[TaskResult]
		var total float64
		for _, w := range works {
			work := float64(w%50) + 1
			total += work
			futs = append(futs, h.Submit("t", work, 1.0))
		}
		eng.Run()
		var maxEnd sim.Time
		for _, f := range futs {
			r, err := f.Value()
			if err != nil {
				return false
			}
			if r.Ended > maxEnd {
				maxEnd = r.Ended
			}
		}
		// Chip peak throughput is 5.2 core-units.
		return total/maxEnd.Seconds() <= 5.2*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal tasks submitted together finish together.
func TestPropertyEqualTasksFinishTogether(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n)%10 + 1
		eng := sim.NewEngine(2)
		h := NewHost(eng, DefaultConfig())
		var futs []*sim.Future[TaskResult]
		for i := 0; i < count; i++ {
			futs = append(futs, h.Submit("t", 7, 0.8))
		}
		eng.Run()
		var first, last time.Duration
		for i, f := range futs {
			r, _ := f.Value()
			if i == 0 {
				first, last = r.Duration(), r.Duration()
			}
			if r.Duration() < first {
				first = r.Duration()
			}
			if r.Duration() > last {
				last = r.Duration()
			}
		}
		return last-first < 10*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakRunningAndUtilization(t *testing.T) {
	eng := sim.NewEngine(3)
	h := NewHost(eng, Config{Cores: 4, SMTFactor: 1.3})
	if h.Utilization() != 0 {
		t.Fatalf("idle utilization = %v", h.Utilization())
	}
	var futs []*sim.Future[TaskResult]
	for i := 0; i < 8; i++ {
		futs = append(futs, h.Submit("t", 1.0, 1.0))
	}
	eng.Go("watch", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		// 8 single-threaded tasks saturate 4 cores with SMT: full chip.
		if u := h.Utilization(); u < 0.99 || u > 1.01 {
			t.Errorf("utilization with 8 tasks = %v, want ~1.0", u)
		}
		for _, f := range futs {
			sim.Await(p, f)
		}
	})
	eng.Run()
	if h.PeakRunning() != 8 {
		t.Fatalf("peak = %d, want 8", h.PeakRunning())
	}
	if h.Running() != 0 {
		t.Fatalf("running after drain = %d", h.Running())
	}
	// The high-water mark survives the drain.
	if h.PeakRunning() != 8 {
		t.Fatalf("peak lost after drain")
	}
}
