// Package cpusched models the host CPU the paper's evaluation ran on:
// a quad-core desktop with hardware virtualization and SMT
// (hyper-threading). Each Nymix AnonVM exposes a single vCPU ("a QEMU
// Virtual CPU"), and virtualization costs roughly 20% (Figure 4), so a
// vCPU-bound task progresses at 0.8 of native speed.
//
// Like internal/vnet, the scheduler is a fluid model: runnable tasks
// receive fair shares of chip throughput, recomputed whenever a task
// starts or finishes. With n tasks on c physical cores the chip
// delivers min(n, c) core-units of throughput, rising toward
// c*SMTFactor as SMT threads fill — which is why the paper found
// parallel nyms outperforming the "expected" no-SMT projection.
package cpusched

import (
	"time"

	"nymix/internal/sim"
)

// Config describes the simulated chip.
type Config struct {
	Cores     int     // physical cores
	SMTFactor float64 // aggregate per-core throughput with both threads busy (e.g. 1.3)
}

// DefaultConfig matches the paper's testbed: an Intel i7 quad core
// with hyper-threading.
func DefaultConfig() Config { return Config{Cores: 4, SMTFactor: 1.3} }

// Host schedules CPU-bound tasks on the simulated chip.
type Host struct {
	eng   *sim.Engine
	cfg   Config
	tasks []*Task
	// peak is the high-water mark of concurrently runnable tasks, the
	// chip-pressure figure fleet-scale experiments report.
	peak int
}

// NewHost returns a CPU host on eng.
func NewHost(eng *sim.Engine, cfg Config) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.SMTFactor < 1 {
		cfg.SMTFactor = 1
	}
	return &Host{eng: eng, cfg: cfg}
}

// Config returns the chip parameters.
func (h *Host) Config() Config { return h.cfg }

// Running returns the number of runnable tasks.
func (h *Host) Running() int { return len(h.tasks) }

// PeakRunning returns the lifetime high-water mark of concurrently
// runnable tasks.
func (h *Host) PeakRunning() int { return h.peak }

// Utilization returns the fraction of the chip's maximum throughput
// (cores times the SMT factor) the current runnable set can consume.
// 1.0 means every core and SMT thread is saturated.
func (h *Host) Utilization() float64 {
	return h.chipThroughput(len(h.tasks)) / (float64(h.cfg.Cores) * h.cfg.SMTFactor)
}

// TaskResult describes a finished task.
type TaskResult struct {
	Work    float64
	Started sim.Time
	Ended   sim.Time
}

// Duration returns elapsed simulated time.
func (r TaskResult) Duration() time.Duration { return r.Ended - r.Started }

// Task is a runnable CPU-bound computation.
type Task struct {
	host       *Host
	name       string
	eff        float64
	remaining  float64
	rate       float64
	lastUpdate sim.Time
	timer      *sim.Timer
	fut        *sim.Future[TaskResult]
	started    sim.Time
	finished   bool
}

// Submit starts a task needing work core-seconds of native CPU, run at
// efficiency eff (1.0 native, ~0.8 inside a VM). The future completes
// when the work is done.
func (h *Host) Submit(name string, work, eff float64) *sim.Future[TaskResult] {
	if work <= 0 {
		work = 1e-9
	}
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	t := &Task{
		host:      h,
		name:      name,
		eff:       eff,
		remaining: work,
		fut:       sim.NewFuture[TaskResult](h.eng),
		started:   h.eng.Now(),
	}
	h.eng.Schedule(0, func() {
		t.lastUpdate = h.eng.Now()
		h.tasks = append(h.tasks, t)
		if len(h.tasks) > h.peak {
			h.peak = len(h.tasks)
		}
		h.recompute()
	})
	return t.fut
}

// chipThroughput returns total core-units available to n runnable
// single-threaded tasks: linear up to the core count, then growing
// with the SMT bonus as sibling threads fill, capped at
// cores*SMTFactor.
func (h *Host) chipThroughput(n int) float64 {
	c := float64(h.cfg.Cores)
	if n <= 0 {
		return 0
	}
	if float64(n) <= c {
		return float64(n)
	}
	extra := float64(n) - c
	maxExtra := c * (h.cfg.SMTFactor - 1)
	bonus := extra * (h.cfg.SMTFactor - 1)
	if bonus > maxExtra {
		bonus = maxExtra
	}
	return c + bonus
}

func (h *Host) recompute() {
	now := h.eng.Now()
	for _, t := range h.tasks {
		elapsed := (now - t.lastUpdate).Seconds()
		if elapsed > 0 && t.rate > 0 {
			t.remaining -= t.rate * elapsed
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
		t.lastUpdate = now
		if t.timer != nil {
			t.timer.Cancel()
			t.timer = nil
		}
	}
	n := len(h.tasks)
	if n == 0 {
		return
	}
	share := h.chipThroughput(n) / float64(n)
	if share > 1 {
		share = 1 // one single-threaded task cannot use more than a core
	}
	for _, t := range h.tasks {
		t := t
		t.rate = share * t.eff
		eta := time.Duration(t.remaining / t.rate * float64(time.Second))
		if eta < 0 {
			eta = 0
		}
		t.timer = h.eng.Schedule(eta, func() { h.finish(t) })
	}
}

func (h *Host) finish(t *Task) {
	if t.finished {
		return
	}
	t.finished = true
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	for i, other := range h.tasks {
		if other == t {
			h.tasks = append(h.tasks[:i], h.tasks[i+1:]...)
			break
		}
	}
	t.fut.Complete(TaskResult{Work: 0, Started: t.started, Ended: h.eng.Now()}, nil)
	h.recompute()
}
