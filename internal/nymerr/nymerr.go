package nymerr

import (
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Code is a registered "package.name" error code: the stable, typed
// identity of a failure class. A Code is itself an error, so call
// sites can match with errors.Is(err, vault.CodeBadPassword) and the
// SLO layer can bucket failure histories by code without parsing
// message strings.
type Code string

// Error makes a bare Code usable as an errors.Is target.
func (c Code) Error() string { return string(c) }

// codePattern is the shape every code must have: a lowercase package
// segment, a dot, and a lowercase snake_case name segment.
var codePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$`)

var (
	regMu    sync.Mutex
	registry = map[Code]string{}
)

// Register validates and records a code at package init time and
// returns it, so consumer packages declare codes as
//
//	var CodeBadPassword = nymerr.Register("vault.bad_password", "…")
//
// Registration panics on a malformed code (wrong shape, uppercase,
// hyphens, or a redundant err/error token) and on duplicates: an
// unregistered or colliding code is a programming error caught the
// first time the package is imported, not a runtime condition.
func Register(code Code, doc string) Code {
	if err := checkFormat(code); err != nil {
		panic(fmt.Sprintf("nymerr: %v", err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[code]; dup {
		panic(fmt.Sprintf("nymerr: code %q registered twice", code))
	}
	registry[code] = doc
	return code
}

// checkFormat enforces the code grammar without consulting the
// registry: "package.name", both segments lowercase snake_case, and
// no segment token spelling out err/error/failed — the type already
// says it is an error, so the name must say what went wrong.
func checkFormat(code Code) error {
	if !codePattern.MatchString(string(code)) {
		return fmt.Errorf("malformed code %q: want lowercase \"package.name\"", code)
	}
	for _, seg := range strings.Split(string(code), ".") {
		for _, tok := range strings.Split(seg, "_") {
			switch tok {
			case "err", "error", "errors", "failure":
				return fmt.Errorf("code %q: token %q is redundant in an error code", code, tok)
			}
		}
	}
	return nil
}

// Registered reports whether a code has been registered.
func Registered(code Code) bool {
	regMu.Lock()
	defer regMu.Unlock()
	_, ok := registry[code]
	return ok
}

// Describe returns the registered one-line description of a code, or
// "" for an unregistered code.
func Describe(code Code) string {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[code]
}

// Codes returns every registered code in sorted order — the taxonomy
// table DESIGN.md documents and the SLO report buckets by.
func Codes() []Code {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Code, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kv is one captured context pair, kept in attach order so rendered
// errors are deterministic.
type kv struct {
	k string
	v any
}

// Error is a typed nymix error: a registered code, a message, the
// construction site (captured automatically), optional context pairs,
// and an optional wrapped cause. It interoperates with the standard
// errors package: Unwrap exposes the cause to errors.Is/As, and the
// code survives arbitrary %w wrapping above it.
type Error struct {
	code  Code
	msg   string
	site  string
	ctx   []kv
	cause error
}

// mustRegistered panics when a constructor is handed a code that was
// never registered — the same fail-closed posture as Register, caught
// at the first construction rather than silently minting a new class.
func mustRegistered(code Code) {
	if !Registered(code) {
		panic(fmt.Sprintf("nymerr: code %q used without registration", code))
	}
}

// callerSite captures file:line of the constructor's caller — the
// automatic context every typed error carries.
func callerSite() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "unknown"
	}
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// New builds a typed error with a registered code.
func New(code Code, msg string) *Error {
	mustRegistered(code)
	return &Error{code: code, msg: msg, site: callerSite()}
}

// Newf builds a typed error with a formatted message.
func Newf(code Code, format string, args ...any) *Error {
	mustRegistered(code)
	return &Error{code: code, msg: fmt.Sprintf(format, args...), site: callerSite()}
}

// Wrap attaches a registered code (and message) to a cause. The cause
// stays reachable through errors.Is/As; Classify reports the
// outermost code, so wrapping re-classifies an error at a package
// boundary while preserving the inner chain.
func Wrap(code Code, cause error, msg string) *Error {
	mustRegistered(code)
	return &Error{code: code, msg: msg, site: callerSite(), cause: cause}
}

// Wrapf is Wrap with a formatted message.
func Wrapf(code Code, cause error, format string, args ...any) *Error {
	mustRegistered(code)
	return &Error{code: code, msg: fmt.Sprintf(format, args...), site: callerSite(), cause: cause}
}

// AddContext attaches one key/value pair and returns the error for
// chaining at the construction site:
//
//	nymerr.Wrap(code, err, "save").AddContext("nym", name)
func (e *Error) AddContext(key string, value any) *Error {
	e.ctx = append(e.ctx, kv{key, value})
	return e
}

// Code returns the error's registered code.
func (e *Error) Code() Code { return e.code }

// Site returns the file:line the error was constructed at.
func (e *Error) Site() string { return e.site }

// Context returns the attached context pairs as a map.
func (e *Error) Context() map[string]any {
	if len(e.ctx) == 0 {
		return nil
	}
	out := make(map[string]any, len(e.ctx))
	for _, p := range e.ctx {
		out[p.k] = p.v
	}
	return out
}

// Error renders "code: msg (k=v, k=v): cause".
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(string(e.code))
	if e.msg != "" {
		b.WriteString(": ")
		b.WriteString(e.msg)
	}
	if len(e.ctx) > 0 {
		b.WriteString(" (")
		for i, p := range e.ctx {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%v", p.k, p.v)
		}
		b.WriteString(")")
	}
	if e.cause != nil {
		b.WriteString(": ")
		b.WriteString(e.cause.Error())
	}
	return b.String()
}

// Unwrap exposes the cause to the standard errors traversal.
func (e *Error) Unwrap() error { return e.cause }

// Is matches a bare Code target by code equality and another *Error
// target by code equality, so both errors.Is(err, CodeBadPassword)
// and errors.Is(err, vault.ErrNoManifest) hold anywhere in a chain.
func (e *Error) Is(target error) bool {
	switch t := target.(type) {
	case Code:
		return e.code == t
	case *Error:
		return e.code == t.code
	}
	return false
}

// Format implements fmt.Formatter: %v/%s render Error(), %+v adds the
// construction site of every typed error in the chain.
func (e *Error) Format(s fmt.State, verb rune) {
	if verb == 'v' && s.Flag('+') {
		fmt.Fprintf(s, "%s [%s]", e.msg, e.site)
		if len(e.ctx) > 0 {
			fmt.Fprint(s, " (")
			for i, p := range e.ctx {
				if i > 0 {
					fmt.Fprint(s, ", ")
				}
				fmt.Fprintf(s, "%s=%v", p.k, p.v)
			}
			fmt.Fprint(s, ")")
		}
		fmt.Fprintf(s, " <%s>", e.code)
		if e.cause != nil {
			fmt.Fprintf(s, ": %+v", e.cause)
		}
		return
	}
	fmt.Fprint(s, e.Error())
}

// CodeOf returns the outermost registered code in err's chain.
func CodeOf(err error) (Code, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.code, true
	}
	return "", false
}

// Classify returns the outermost registered code in err's chain, or
// "" when the error carries no typed code anywhere — the condition
// the chaos suites assert never happens on an injected failure.
func Classify(err error) Code {
	c, _ := CodeOf(err)
	return c
}

// HasCode reports whether any error in the chain carries the code.
func HasCode(err error, code Code) bool {
	return errors.Is(err, code)
}
