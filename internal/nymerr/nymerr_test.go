package nymerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Test codes registered once for the whole file; Register panics on
// duplicates, so each code appears in exactly one call.
var (
	codeThing  = Register("testpkg.bad_thing", "a thing went bad")
	codeOther  = Register("testpkg.other_thing", "another thing")
	codeRemote = Register("otherpkg.remote_thing", "a different package's code")
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

// TestRegisterRejectsMalformed pins the code grammar: lowercase
// package.name, snake_case, no err/error tokens, no duplicates.
func TestRegisterRejectsMalformed(t *testing.T) {
	bad := []Code{
		"",                    // empty
		"noDot",               // missing package segment
		"pkg.",                // empty name
		".name",               // empty package
		"Pkg.name",            // uppercase package
		"pkg.Name",            // uppercase name
		"pkg.bad-thing",       // hyphen
		"pkg.name.extra",      // too many segments
		"pkg.err",             // redundant token
		"pkg.save_error",      // redundant token
		"error.thing",         // redundant package
		"pkg.startup_failure", // redundant token
		"1pkg.name",           // leading digit
	}
	for _, c := range bad {
		mustPanic(t, fmt.Sprintf("Register(%q)", c), func() { Register(c, "doc") })
	}
	mustPanic(t, "duplicate registration", func() { Register("testpkg.bad_thing", "again") })
}

// TestConstructorsRejectUnregistered pins the fail-closed posture:
// New/Newf/Wrap/Wrapf on a code that was never registered panics
// instead of silently minting a new failure class.
func TestConstructorsRejectUnregistered(t *testing.T) {
	ghost := Code("testpkg.never_registered")
	mustPanic(t, "New", func() { New(ghost, "boom") })
	mustPanic(t, "Newf", func() { Newf(ghost, "boom %d", 1) })
	mustPanic(t, "Wrap", func() { Wrap(ghost, errors.New("x"), "boom") })
	mustPanic(t, "Wrapf", func() { Wrapf(ghost, errors.New("x"), "boom %d", 1) })
	if Registered(ghost) {
		t.Fatal("ghost code leaked into the registry")
	}
}

func TestRegistryIntrospection(t *testing.T) {
	if !Registered(codeThing) {
		t.Fatal("registered code not found")
	}
	if Describe(codeThing) != "a thing went bad" {
		t.Fatalf("Describe = %q", Describe(codeThing))
	}
	codes := Codes()
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatalf("Codes() not sorted: %q before %q", codes[i-1], codes[i])
		}
	}
	found := false
	for _, c := range codes {
		if c == codeThing {
			found = true
		}
	}
	if !found {
		t.Fatal("Codes() misses a registered code")
	}
}

// TestIsAsInterop pins the standard-library interop: errors.Is
// matches bare codes and typed sentinels, errors.As recovers the
// typed error, and causes stay reachable through Unwrap.
func TestIsAsInterop(t *testing.T) {
	cause := errors.New("disk on fire")
	err := Wrap(codeThing, cause, "save failed").AddContext("nym", "alice")

	if !errors.Is(err, codeThing) {
		t.Fatal("errors.Is(err, code) should match")
	}
	if errors.Is(err, codeOther) {
		t.Fatal("errors.Is should not match a different code")
	}
	if !errors.Is(err, cause) {
		t.Fatal("the wrapped cause should stay reachable")
	}

	// Sentinel-style: two errors with the same code match each other.
	sentinel := New(codeThing, "bad thing")
	if !errors.Is(err, sentinel) {
		t.Fatal("same-code typed errors should match")
	}

	var te *Error
	if !errors.As(err, &te) {
		t.Fatal("errors.As should recover *Error")
	}
	if te.Code() != codeThing {
		t.Fatalf("recovered code %q, want %q", te.Code(), codeThing)
	}
	if te.Context()["nym"] != "alice" {
		t.Fatalf("context lost: %v", te.Context())
	}
	if !strings.Contains(te.Site(), "nymerr_test.go:") {
		t.Fatalf("site not captured: %q", te.Site())
	}
}

// TestCodeSurvivesWrappingChains pins the property the whole design
// stands on: a code attached deep in one package survives arbitrary
// %w wrapping by layers above it, across package-boundary-style
// re-wraps, and Classify reports the outermost code.
func TestCodeSurvivesWrappingChains(t *testing.T) {
	root := New(codeRemote, "remote failed")
	mid := fmt.Errorf("mid layer: %w", root)
	upper := fmt.Errorf("upper layer: retry %d: %w", 3, mid)

	if got := Classify(upper); got != codeRemote {
		t.Fatalf("Classify through %%w chain = %q, want %q", got, codeRemote)
	}
	if !HasCode(upper, codeRemote) {
		t.Fatal("HasCode should find the buried code")
	}

	// A boundary re-wrap with a new code re-classifies (outermost code
	// wins) while the inner code stays matchable.
	rewrapped := Wrapf(codeThing, upper, "local view of remote trouble")
	if got := Classify(rewrapped); got != codeThing {
		t.Fatalf("Classify after re-wrap = %q, want %q", got, codeThing)
	}
	if !HasCode(rewrapped, codeRemote) {
		t.Fatal("inner code should survive a boundary re-wrap")
	}
	topped := fmt.Errorf("top: %w", rewrapped)
	if got := Classify(topped); got != codeThing {
		t.Fatalf("Classify above re-wrap = %q, want %q", got, codeThing)
	}
}

// TestClassifyUnclassified pins the zero value: a plain error chain
// with no typed member classifies to "".
func TestClassifyUnclassified(t *testing.T) {
	err := fmt.Errorf("outer: %w", errors.New("inner"))
	if got := Classify(err); got != "" {
		t.Fatalf("Classify(untyped) = %q, want \"\"", got)
	}
	if _, ok := CodeOf(err); ok {
		t.Fatal("CodeOf(untyped) should report !ok")
	}
	if Classify(nil) != "" {
		t.Fatal("Classify(nil) should be \"\"")
	}
}

// TestRendering pins the human-facing formats: %v is compact
// "code: msg (ctx): cause", %+v adds construction sites.
func TestRendering(t *testing.T) {
	cause := New(codeRemote, "remote failed")
	err := Wrap(codeThing, cause, "save failed").
		AddContext("nym", "alice").AddContext("attempt", 2)

	got := err.Error()
	want := "testpkg.bad_thing: save failed (nym=alice, attempt=2): otherpkg.remote_thing: remote failed"
	if got != want {
		t.Fatalf("Error() = %q\nwant      %q", got, want)
	}
	verbose := fmt.Sprintf("%+v", err)
	if !strings.Contains(verbose, "nymerr_test.go:") {
		t.Fatalf("%%+v should include sites: %q", verbose)
	}
	if !strings.Contains(verbose, "<testpkg.bad_thing>") || !strings.Contains(verbose, "<otherpkg.remote_thing>") {
		t.Fatalf("%%+v should include every code in the chain: %q", verbose)
	}
	if fmt.Sprintf("%v", err) != got || fmt.Sprintf("%s", err) != got {
		t.Fatalf("plain %%v and %%s should match Error()")
	}
}
