// Package nymerr provides registered, typed error codes for nymix.
//
// Every failure class in the managed layers (vault, fleet, cluster,
// core, cloud) carries a Code of the form "package.name" —
// vault.bad_password, cluster.migrate_crash_fallback — registered at
// package init. Registration is fail-closed: a malformed or duplicate
// code panics when the declaring package loads, and the constructors
// (New, Newf, Wrap, Wrapf) panic on a code that was never registered,
// so an unknown code cannot be minted at runtime.
//
// Typed errors interoperate with the standard errors package:
//
//   - errors.Is(err, SomeCode) matches the code anywhere in a chain,
//     because Code itself is an error and (*Error).Is compares codes.
//   - errors.As(err, &e) recovers the outermost *Error; CodeOf and
//     Classify are shorthands for that traversal.
//   - fmt.Errorf("…: %w", err) above a typed error preserves the
//     code: Classify walks the %w chain.
//
// Each error captures its construction site automatically and can
// carry ordered context pairs via AddContext; %+v renders the full
// annotated chain. The SLO layer (internal/slo) buckets failure
// histories by Classify, and the chaos suites assert that every
// injected failure classifies to a registered code — zero
// unclassified errors.
package nymerr
