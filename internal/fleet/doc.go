// Package fleet orchestrates large populations of concurrent nyms
// over a single core.Manager. The paper's Nym Manager supervises
// nymbox "creation, longevity, and destruction" (section 3) one nym
// at a time; this layer scales that supervision to hundreds of
// simultaneous nymboxes — the ROADMAP's production-scale multi-user
// service — without giving up any of the lifecycle guarantees.
//
// Five mechanisms do the work:
//
//   - Admission control. Every nymbox is RAM: both VMs' memory and
//     both RAM-backed writable disks come from the host's physical
//     stash (section 5.2). Launches reserve their requested footprint
//     against a configurable headroom share of host RAM and queue —
//     rather than fail mid-boot with a half-built nymbox — when the
//     host is oversubscribed. A bounded start gate likewise keeps the
//     number of concurrent boot+bootstrap pipelines proportional to
//     the chip, so a 256-nym ramp does not collapse into timeslicing.
//   - Priority classes. Each launch carries a Priority (System >
//     Persistent > Ephemeral, defaulting from the usage model), and
//     the admission queue is strict priority-FIFO: higher classes are
//     admitted first, equals keep arrival order. Under sustained
//     pressure the preemption daemon sacrifices strictly-lower
//     classes for a queued launch — ephemeral victims are terminated
//     outright, persistent ones are checkpointed to the NymVault and
//     evicted, so durable identity survives the kill.
//   - Parallel pipelines. Startup and teardown run as independent
//     simulated processes fanned out over sim futures, so wall-clock
//     (simulated) time is bounded by the slowest admitted batch, not
//     the sum of serial starts.
//   - KSM pacing. Host capacity is enforced at page-write time,
//     before the KSM scanner has had a chance to merge identical
//     base-image pages across VMs. The orchestrator runs a merge
//     daemon while operations are in flight so a large ramp's
//     transient private pages are folded back into shared frames
//     instead of tripping the host's out-of-memory wall.
//   - Supervision. Each nym fails independently: a failed launch or a
//     crashed nymbox releases its reservation and is restarted under
//     the fleet's restart policy, with backoff, until its restart
//     budget is spent. One bad nym never takes down the ramp.
//
// Checkpointing rounds out the lifecycle. SaveSweep is the
// caller-driven full checkpoint: every Running persistent nym is
// saved through the NymVault on a fixed stagger with a bounded number
// of in-flight saves, so a fleet-wide checkpoint does not
// thundering-herd the anonymizer or the providers. StartSweeps
// installs the periodic scheduler on top: it fires on an interval,
// reads each nym's dirty state (plumbed up from internal/vm through
// core.Nym), skips clean members entirely — no upload, no login, no
// provider round trip — and backs off exponentially while the
// orchestrator is under admission pressure or preempting. Per-pass
// SweepRecords aggregate into a SweepReport (wire bytes, dirty-skip
// ratio, p50/p95 sweep latency), and a per-member saving guard makes
// the scheduler, SaveSweep, CheckpointNym, and preemption eviction
// mutually exclusive per nym, so no nym is ever double-checkpointed.
package fleet
