package fleet

import (
	"errors"
	"testing"

	"nymix/internal/anonnet"
	"nymix/internal/core"
	"nymix/internal/sim"
)

// mixOpts is a small nymbox whose transport holds a standing uplink
// rate — the mixnet cover clock — so wire admission has something to
// reserve against.
func mixOpts(name string) core.Options {
	opts := smallOpts(core.ModelPersistent)
	opts.GuardSeed = name
	opts.Anonymizer = "mixnet"
	return opts
}

func TestWireBudgetAdmitsSequentially(t *testing.T) {
	rate := WireRateFor(mixOpts("x"))
	if rate <= 0 {
		t.Fatalf("mixnet wire rate = %d, want > 0", rate)
	}
	if r := WireRateFor(smallOpts(core.ModelEphemeral)); r != 0 {
		t.Fatalf("default transport wire rate = %d, want 0", r)
	}

	// Budget for exactly two standing cover streams: the third member
	// must queue until one of the first two stops.
	eng, o := newFleet(t, 51, 16<<30, Config{WireBudget: float64(2 * rate)})
	run(t, eng, func(p *sim.Proc) {
		for _, name := range []string{"amy", "ben", "cas"} {
			if _, err := o.Launch(Spec{Name: name, Opts: mixOpts(name)}); err != nil {
				t.Errorf("launch %s: %v", name, err)
				return
			}
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await 2: %v", err)
			return
		}
		if got := o.WireReservedRate(); got != 2*rate {
			t.Errorf("reserved wire rate = %d, want %d", got, 2*rate)
		}
		if got := o.QueuedWireLaunches(); got != 1 {
			t.Errorf("queued wire launches = %d, want 1", got)
		}
		if o.CanAdmitWire(rate) {
			t.Error("budget claims room for a third cover stream")
		}
		if o.Member("cas").State() == StateRunning {
			t.Error("third member admitted past the wire budget")
		}

		// Stopping one member frees its rate and the queued member runs.
		if err := o.Stop(p, "amy"); err != nil {
			t.Errorf("stop amy: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await after stop: %v", err)
			return
		}
		if o.Member("cas").State() != StateRunning {
			t.Error("queued member never admitted after wire freed")
		}
		if got := o.WireReservedRate(); got != 2*rate {
			t.Errorf("reserved rate after churn = %d, want %d", got, 2*rate)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop all: %v", err)
		}
	})
	if got := o.WireReservedRate(); got != 0 {
		t.Fatalf("wire reservation leaked: %d", got)
	}
}

func TestWireBudgetNeverAdmissible(t *testing.T) {
	rate := WireRateFor(mixOpts("x"))
	eng, o := newFleet(t, 53, 16<<30, Config{WireBudget: float64(rate) / 2})
	run(t, eng, func(p *sim.Proc) {
		_, err := o.Launch(Spec{Name: "amy", Opts: mixOpts("amy")})
		if !errors.Is(err, ErrNeverAdmissible) {
			t.Errorf("launch past an impossible wire budget: %v, want ErrNeverAdmissible", err)
		}
	})
}

// TestWireBudgetIgnoresDemandDrivenTransports: members without a
// standing rate never touch the wire semaphore, so a tight wire budget
// does not gate a plain tor fleet.
func TestWireBudgetIgnoresDemandDriven(t *testing.T) {
	eng, o := newFleet(t, 55, 16<<30, Config{WireBudget: 1})
	run(t, eng, func(p *sim.Proc) {
		for _, s := range specs(3, core.ModelEphemeral) {
			if _, err := o.Launch(s); err != nil {
				t.Errorf("launch %s: %v", s.Name, err)
				return
			}
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
		if got := o.WireReservedRate(); got != 0 {
			t.Errorf("demand-driven fleet reserved %d B/s of wire", got)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
}

// TestWireRateForMatchesRegistry pins the admission arithmetic to the
// transport registry's self-declared idle rates.
func TestWireRateForMatchesRegistry(t *testing.T) {
	opts := mixOpts("x")
	if got, want := float64(WireRateFor(opts)), anonnet.IdleWireRate("mixnet"); got < want || got > want+1 {
		t.Fatalf("WireRateFor = %v, want ceil of registry rate %v", got, want)
	}
	chained := opts
	chained.Chain = []string{"mixnet", "tor"}
	if got := WireRateFor(chained); got != WireRateFor(opts) {
		t.Fatalf("chain wire rate = %d, want mixnet-only %d (tor adds no standing rate)", got, WireRateFor(opts))
	}
}
