package fleet

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/sim"
)

// grant records one observed admission.
type grant struct {
	id string
	at sim.Time
	ok bool
}

// reserveTracked awaits a reservation on its own proc and appends the
// outcome to grants when it resolves.
func reserveTracked(eng *sim.Engine, s *sem, id string, need int64, grants *[]grant) {
	eng.Go("reserve-"+id, func(p *sim.Proc) {
		_, err := sim.Await(p, s.reserve(need))
		*grants = append(*grants, grant{id: id, at: p.Now(), ok: err == nil})
	})
}

// TestSemTable drives the weighted semaphore through its contract:
// strict FIFO under mixed weights, fail-fast for oversized requests,
// wakeups on release while queued, and uncapped capacity.
func TestSemTable(t *testing.T) {
	type step struct {
		at      time.Duration // when the step runs
		reserve string        // id to reserve (with need), or ""
		need    int64
		release int64
	}
	cases := []struct {
		name     string
		capacity int64
		steps    []step
		// wantOrder is the expected grant order (failed grants carry
		// ok=false but still appear when they resolve).
		wantOrder []string
		wantFail  map[string]bool
		wantQueue int // outstanding waiters at the end
	}{
		{
			name:     "fifo blocks small behind large",
			capacity: 10,
			steps: []step{
				{at: 0, reserve: "a", need: 6},
				{at: time.Second, reserve: "b", need: 6},     // queues: 6+6 > 10
				{at: 2 * time.Second, reserve: "c", need: 2}, // would fit, but FIFO holds it behind b
				{at: 3 * time.Second, release: 6},            // a's units return: b then c admit
			},
			wantOrder: []string{"a", "b", "c"},
		},
		{
			name:     "oversized fails fast without wedging the queue",
			capacity: 10,
			steps: []step{
				{at: 0, reserve: "whale", need: 11},
				{at: time.Second, reserve: "minnow", need: 4},
			},
			wantOrder: []string{"whale", "minnow"},
			wantFail:  map[string]bool{"whale": true},
		},
		{
			name:     "release while queued wakes in order",
			capacity: 8,
			steps: []step{
				{at: 0, reserve: "a", need: 8},
				{at: time.Second, reserve: "b", need: 4},
				{at: time.Second, reserve: "c", need: 4},
				{at: 5 * time.Second, release: 8}, // both queued waiters fit at once
			},
			wantOrder: []string{"a", "b", "c"},
		},
		{
			name:     "partial release admits only what fits",
			capacity: 10,
			steps: []step{
				{at: 0, reserve: "a", need: 5},
				{at: 0, reserve: "b", need: 5},
				{at: time.Second, reserve: "c", need: 4},
				{at: 2 * time.Second, release: 2}, // 2 free < 4: c stays queued
			},
			wantOrder: []string{"a", "b"},
			wantQueue: 1,
		},
		{
			name:     "uncapped admits everything",
			capacity: -1,
			steps: []step{
				{at: 0, reserve: "a", need: 1 << 40},
				{at: 0, reserve: "b", need: 1 << 40},
			},
			wantOrder: []string{"a", "b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			s := newSem(eng, tc.capacity)
			var grants []grant
			for _, st := range tc.steps {
				st := st
				eng.Schedule(st.at, func() {
					if st.reserve != "" {
						reserveTracked(eng, s, st.reserve, st.need, &grants)
					}
					if st.release > 0 {
						s.release(st.release)
					}
				})
			}
			eng.Run()
			var order []string
			for _, g := range grants {
				order = append(order, g.id)
			}
			if len(order) != len(tc.wantOrder) {
				t.Fatalf("grants = %v, want %v", order, tc.wantOrder)
			}
			for i, id := range tc.wantOrder {
				if order[i] != id {
					t.Fatalf("grant order = %v, want %v", order, tc.wantOrder)
				}
			}
			for _, g := range grants {
				if g.ok == tc.wantFail[g.id] {
					t.Errorf("%s ok=%v, want fail=%v", g.id, g.ok, tc.wantFail[g.id])
				}
			}
			if got := s.queued(); got != tc.wantQueue {
				t.Errorf("queued = %d, want %d", got, tc.wantQueue)
			}
		})
	}
}

// TestSemFIFOWakeupTiming pins the release-while-queued wakeup to the
// exact simulated instant of the release.
func TestSemFIFOWakeupTiming(t *testing.T) {
	eng := sim.NewEngine(2)
	s := newSem(eng, 4)
	var grants []grant
	reserveTracked(eng, s, "holder", 4, &grants)
	eng.Schedule(time.Second, func() { reserveTracked(eng, s, "waiter", 4, &grants) })
	eng.Schedule(7*time.Second, func() { s.release(4) })
	eng.Run()
	if len(grants) != 2 {
		t.Fatalf("grants = %+v", grants)
	}
	if grants[1].id != "waiter" || grants[1].at != 7*time.Second {
		t.Fatalf("waiter woke at %v, want exactly 7s (the release)", grants[1].at)
	}
}

// TestSemOversizedError asserts the error identity so callers can
// branch on it.
func TestSemOversizedError(t *testing.T) {
	eng := sim.NewEngine(3)
	s := newSem(eng, 10)
	fut := s.reserve(11)
	if !fut.Done() {
		t.Fatal("oversized reserve must fail immediately, not queue")
	}
	if _, err := fut.Value(); !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	if s.used != 0 || s.queued() != 0 {
		t.Fatalf("failed reserve mutated the semaphore: used=%d queued=%d", s.used, s.queued())
	}
}

// TestSemStartGateInteraction models the launch pipeline's two-stage
// admission (RAM then start gate): the gate bounds concurrency and
// its strict FIFO hands slots to RAM-admitted launches in order.
func TestSemStartGateInteraction(t *testing.T) {
	eng := sim.NewEngine(4)
	ram := newSem(eng, 12)
	gate := newSem(eng, 2)
	var order []string
	launch := func(id string, fp int64, hold time.Duration) {
		eng.Go("launch-"+id, func(p *sim.Proc) {
			if _, err := sim.Await(p, ram.reserve(fp)); err != nil {
				t.Errorf("%s ram: %v", id, err)
				return
			}
			sim.Await(p, gate.reserve(1))
			order = append(order, id)
			p.Sleep(hold) // the boot the gate is bounding
			gate.release(1)
			ram.release(fp)
		})
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		launch(id, 4, time.Second)
	}
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("launched %d of 4", len(order))
	}
	// RAM admits a, b, c (12/4 each); the gate serializes to two at a
	// time; d's RAM frees only as earlier boots release. Order must be
	// strict FIFO throughout.
	for i, want := range []string{"a", "b", "c", "d"} {
		if order[i] != want {
			t.Fatalf("start order = %v, want FIFO", order)
		}
	}
}

// reserveTrackedPri is reserveTracked with an explicit priority class.
func reserveTrackedPri(eng *sim.Engine, s *sem, id string, need int64, pri int, grants *[]grant) {
	eng.Go("reserve-"+id, func(p *sim.Proc) {
		_, err := sim.Await(p, s.reservePri(need, pri))
		*grants = append(*grants, grant{id: id, at: p.Now(), ok: err == nil})
	})
}

// TestSemPriorityOrdering pins the priority-FIFO contract: a
// higher-priority arrival is admitted ahead of earlier lower-priority
// waiters, equal priorities keep strict arrival order, and a
// higher-priority arrival that fits the free budget is admitted
// immediately even while a too-big lower-priority head is parked.
func TestSemPriorityOrdering(t *testing.T) {
	t.Run("higher class jumps the queue", func(t *testing.T) {
		eng := sim.NewEngine(41)
		s := newSem(eng, 10)
		var grants []grant
		eng.Schedule(0, func() { reserveTrackedPri(eng, s, "low-a", 10, 1, &grants) })
		eng.Schedule(time.Second, func() { reserveTrackedPri(eng, s, "low-b", 5, 1, &grants) })
		eng.Schedule(2*time.Second, func() { reserveTrackedPri(eng, s, "high", 5, 3, &grants) })
		eng.Schedule(3*time.Second, func() { s.release(10) }) // low-a's units return
		eng.Schedule(4*time.Second, func() { s.release(5) })  // high's units return
		eng.Run()
		want := []string{"low-a", "high", "low-b"}
		if len(grants) != len(want) {
			t.Fatalf("grants = %+v, want order %v", grants, want)
		}
		for i, id := range want {
			if grants[i].id != id {
				t.Fatalf("grant order = %+v, want %v", grants, want)
			}
		}
	})
	t.Run("equal priority stays FIFO", func(t *testing.T) {
		eng := sim.NewEngine(43)
		s := newSem(eng, 4)
		var grants []grant
		eng.Schedule(0, func() { reserveTrackedPri(eng, s, "a", 4, 2, &grants) })
		eng.Schedule(time.Second, func() { reserveTrackedPri(eng, s, "b", 2, 2, &grants) })
		eng.Schedule(time.Second, func() { reserveTrackedPri(eng, s, "c", 2, 2, &grants) })
		eng.Schedule(2*time.Second, func() { s.release(4) })
		eng.Run()
		want := []string{"a", "b", "c"}
		for i, id := range want {
			if i >= len(grants) || grants[i].id != id {
				t.Fatalf("grant order = %+v, want %v", grants, want)
			}
		}
	})
	t.Run("high-priority arrival admits past a parked big head", func(t *testing.T) {
		eng := sim.NewEngine(47)
		s := newSem(eng, 10)
		var grants []grant
		eng.Schedule(0, func() { reserveTrackedPri(eng, s, "holder", 6, 1, &grants) })
		eng.Schedule(time.Second, func() { reserveTrackedPri(eng, s, "big-low", 6, 1, &grants) }) // parks: 6 free < needed? 4 free
		eng.Schedule(2*time.Second, func() { reserveTrackedPri(eng, s, "high", 4, 3, &grants) })  // fits the 4 free units now
		eng.Run()
		want := []string{"holder", "high"}
		if len(grants) != len(want) {
			t.Fatalf("grants = %+v, want %v admitted and big-low parked", grants, want)
		}
		for i, id := range want {
			if grants[i].id != id {
				t.Fatalf("grant order = %+v, want %v", grants, want)
			}
		}
		if s.queued() != 1 {
			t.Fatalf("queued = %d, want big-low still parked", s.queued())
		}
	})
}
