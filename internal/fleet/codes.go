package fleet

import (
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// Registered error codes for the fleet layer. Failures surfacing from
// core/vault/cloud arrive already typed; these codes cover the
// orchestrator's own failure classes.
var (
	// CodeNeverAdmissible: the footprint exceeds the whole admissible
	// RAM budget and could never launch.
	CodeNeverAdmissible = nymerr.Register("fleet.never_admissible",
		"requested footprint exceeds the whole admissible RAM budget")
	// CodeUnknownMember: no member with that name is under supervision.
	CodeUnknownMember = nymerr.Register("fleet.unknown_member",
		"no member with that name is under fleet supervision")
	// CodeNotRunning: the operation needs a Running member.
	CodeNotRunning = nymerr.Register("fleet.not_running",
		"operation targeted a member that is not Running")
	// CodeNotDetachable: the member's nymbox is live; it must be
	// stopped before detaching.
	CodeNotDetachable = nymerr.Register("fleet.not_detachable",
		"member's nymbox is live; stop it before detaching")
	// CodeDuplicateMember: a member with that name was already
	// launched.
	CodeDuplicateMember = nymerr.Register("fleet.duplicate_member",
		"a member with that name was already launched")
	// CodeCrashInjected: a chaos test or experiment killed the nymbox
	// via FailNym.
	CodeCrashInjected = nymerr.Register("fleet.crash_injected",
		"nymbox killed by injected failure (chaos testing)")
	// CodeOversizedReservation: a semaphore reservation exceeds total
	// capacity and would wedge the queue.
	CodeOversizedReservation = nymerr.Register("fleet.oversized_reservation",
		"reservation exceeds total semaphore capacity")
	// CodeTargetInfeasible: AwaitRunning asked for more simultaneous
	// members than the RAM budget can hold.
	CodeTargetInfeasible = nymerr.Register("fleet.target_infeasible",
		"await target exceeds what the RAM budget can hold at once")
	// CodeRampDead: nothing is pending and the running count cannot
	// reach the await target.
	CodeRampDead = nymerr.Register("fleet.ramp_dead",
		"no launches pending and the running target is unreachable")
	// CodeAdmissionStalled: the admission queue's FIFO head needs more
	// RAM than will ever free without external action.
	CodeAdmissionStalled = nymerr.Register("fleet.admission_stalled",
		"admission queue stalled; the FIFO head needs RAM nothing will free")
	// CodeSweepsRunning: a sweep scheduler is already installed.
	CodeSweepsRunning = nymerr.Register("fleet.sweeps_running",
		"a checkpoint sweep scheduler is already installed")
	// CodeSweepUnconfigured: StartSweeps lacked Password or DestFor.
	CodeSweepUnconfigured = nymerr.Register("fleet.sweep_unconfigured",
		"sweep scheduler started without Password or DestFor")
	// CodeEvictBusy: the eviction victim has a checkpoint in flight.
	CodeEvictBusy = nymerr.Register("fleet.evict_busy",
		"eviction victim has a checkpoint in flight")
)

// Errors: typed sentinels kept as errors.Is targets for existing
// callers.
var (
	ErrNeverAdmissible = nymerr.New(CodeNeverAdmissible, "fleet: requested footprint exceeds admissible host RAM")
	ErrUnknownMember   = nymerr.New(CodeUnknownMember, "fleet: unknown member")
	ErrNotRunning      = nymerr.New(CodeNotRunning, "fleet: member not running")
	ErrNotDetachable   = nymerr.New(CodeNotDetachable, "fleet: member not detachable while its nymbox is live")
)

// FailureRecord is one classified failure in a member's history: what
// failed, when, and under which registered code. The orchestrator
// appends a record wherever a member-scoped error surfaces (launch
// attempts, injected crashes, sweep saves, evictions), and the SLO
// layer buckets the log by code.
type FailureRecord struct {
	At     sim.Time
	Member string
	// Op names the operation that failed: "launch", "crash", "sweep",
	// "evict", "stop".
	Op   string
	Code nymerr.Code // "" only if an unclassified error slipped through
	Err  error
}

// Failures returns the orchestrator's failure history in record
// order. Chaos suites assert every record classifies to a registered
// code; the SLO report buckets them per member.
func (o *Orchestrator) Failures() []FailureRecord {
	return append([]FailureRecord(nil), o.failures...)
}

// recordFailure appends one classified failure to the history.
func (o *Orchestrator) recordFailure(member, op string, err error) {
	if err == nil {
		return
	}
	o.failures = append(o.failures, FailureRecord{
		At:     o.eng.Now(),
		Member: member,
		Op:     op,
		Code:   nymerr.Classify(err),
		Err:    err,
	})
}
