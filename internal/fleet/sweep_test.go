package fleet

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
	"nymix/internal/vm"
)

// sweepDest is the per-member vault destination the sweep tests use.
func sweepDest(m *Member) core.VaultDest {
	return core.VaultDest{
		Providers:       []string{"dropbin"},
		Account:         "acct-" + m.Name(),
		AccountPassword: "cloud-pw",
	}
}

// TestSweepSkipsCleanFleetEntirely is the dirty-skip property: a
// sweep over a fleet in which no nym dirtied any pages uploads zero
// chunks and performs zero provider round trips — not a single login.
func TestSweepSkipsCleanFleetEntirely(t *testing.T) {
	eng, o := newFleet(t, 11, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(6, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 6); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if _, err := o.SaveSweep(p, "pw", sweepDest); err != nil {
			t.Errorf("cold sweep: %v", err)
			return
		}
		for _, m := range o.Members() {
			if m.Nym().StateDirty() {
				t.Errorf("%s dirty right after its cold checkpoint", m.Name())
			}
		}
		pr, err := o.Manager().Provider("dropbin")
		if err != nil {
			t.Error(err)
		}
		trips, uploads := pr.RoundTrips, pr.Uploads

		rec, err := o.SweepOnce(p, SweepConfig{Password: "pw", DestFor: sweepDest})
		if err != nil {
			t.Errorf("sweep: %v", err)
			return
		}
		if rec.Eligible != 6 || rec.Skipped != 6 || rec.Saves != 0 {
			t.Errorf("clean sweep: eligible=%d skipped=%d saves=%d, want 6/6/0",
				rec.Eligible, rec.Skipped, rec.Saves)
		}
		if rec.DirtySkipRatio() != 1.0 {
			t.Errorf("dirty-skip ratio = %v, want 1.0", rec.DirtySkipRatio())
		}
		if rec.WireBytes() != 0 {
			t.Errorf("clean sweep shipped %d wire bytes, want 0", rec.WireBytes())
		}
		if pr.RoundTrips != trips {
			t.Errorf("clean sweep made %d provider round trips, want 0", pr.RoundTrips-trips)
		}
		if pr.Uploads != uploads {
			t.Errorf("clean sweep uploaded %d blobs, want 0", pr.Uploads-uploads)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
			return
		}
	})
}

// TestSweepSavesOnlyDirtyMembers: after one nym browses, a scheduled
// sweep saves exactly that nym, records its checkpoint, and leaves it
// clean for the next pass.
func TestSweepSavesOnlyDirtyMembers(t *testing.T) {
	eng, o := newFleet(t, 12, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if _, err := o.SaveSweep(p, "pw", sweepDest); err != nil {
			t.Errorf("cold sweep: %v", err)
			return
		}
		surfer := o.Members()[2]
		gen := surfer.Nym().CheckpointGen()
		if _, err := surfer.Nym().Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit: %v", err)
			return
		}
		if !surfer.Nym().StateDirty() {
			t.Error("browsing left the nym clean")
		}
		rec, err := o.SweepOnce(p, SweepConfig{Password: "pw", DestFor: sweepDest})
		if err != nil {
			t.Errorf("sweep: %v", err)
			return
		}
		if rec.Saves != 1 || rec.Skipped != 3 {
			t.Errorf("sweep: saves=%d skipped=%d, want 1/3", rec.Saves, rec.Skipped)
		}
		if rec.UploadedBytes <= 0 {
			t.Error("dirty save shipped no bytes")
		}
		if surfer.Nym().StateDirty() {
			t.Error("nym still dirty after its sweep save")
		}
		if got := surfer.Nym().CheckpointGen(); got != gen+1 {
			t.Errorf("checkpoint generation = %d, want %d", got, gen+1)
		}
		if _, ok := surfer.Checkpoint(); !ok {
			t.Error("sweep save did not record the member checkpoint")
		}
		// A second pass over the now-clean fleet skips everyone.
		rec, err = o.SweepOnce(p, SweepConfig{Password: "pw", DestFor: sweepDest})
		if err != nil {
			t.Errorf("second sweep: %v", err)
			return
		}
		if rec.Saves != 0 || rec.Skipped != 4 {
			t.Errorf("second sweep: saves=%d skipped=%d, want 0/4", rec.Saves, rec.Skipped)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
			return
		}
	})
}

// TestSweepSchedulerBacksOffUnderPressure: while launches queue for
// admission the scheduler skips its ticks with exponential backoff,
// and resumes sweeping once the pressure clears.
func TestSweepSchedulerBacksOffUnderPressure(t *testing.T) {
	// A 2 GiB host: the hypervisor holds ~715 MiB, so the 0.9
	// headroom budget admits two 400 MiB nymboxes and queues a third.
	eng, o := newFleet(t, 13, 2<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if err := o.StartSweeps(SweepConfig{
			Interval: 10 * time.Second, Password: "pw", DestFor: sweepDest,
		}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		// Queue a third member the budget cannot admit: admission
		// pressure from now on.
		extra := Spec{Name: "extra", Opts: smallOpts(core.ModelPersistent)}
		if _, err := o.Launch(extra); err != nil {
			t.Errorf("queue extra: %v", err)
			return
		}
		p.Sleep(35 * time.Second) // ticks at +10 and +30 both see pressure
		rep := o.SweepReport()
		if rep.Backoffs < 2 {
			t.Errorf("got %d backoffs under sustained pressure, want >= 2", rep.Backoffs)
		}
		if rep.Sweeps != 0 {
			t.Errorf("scheduler swept %d times under pressure, want 0", rep.Sweeps)
		}
		// Backed-off ticks must spread out: consecutive gaps double.
		recs := rep.Records
		if len(recs) >= 2 {
			g1 := recs[1].At - recs[0].At
			if g1 < 20*time.Second {
				t.Errorf("backoff gap %v, want >= 20s (doubled interval)", g1)
			}
		}
		// The backoff saturates rather than starves: with pressure still
		// standing, the tick after the delay hits MaxBackoff (4x the
		// 10s interval) sweeps anyway — MaxBackoff is the staleness
		// ceiling, not a mute button. (The forced tick fires at +70s;
		// give its pass time to finish and record.)
		p.Sleep(85 * time.Second)
		if rep := o.SweepReport(); rep.Sweeps == 0 {
			t.Error("no forced sweep at MaxBackoff cadence under sustained pressure; checkpoints starved")
		}
		// Clear the pressure: stop a member so the queued launch admits.
		if err := o.Stop(p, o.Members()[0].Name()); err != nil {
			t.Errorf("stop: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await extra: %v", err)
			return
		}
		p.Sleep(90 * time.Second)
		rep = o.SweepReport()
		if rep.Sweeps == 0 {
			t.Error("scheduler never resumed after pressure cleared")
		}
		o.StopSweeps()
		o.AwaitSweepsIdle(p)
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop all: %v", err)
			return
		}
	})
}

// TestCheckpointNymWaitsForInFlightSweepSave: a migration-style
// CheckpointNym issued while the sweep scheduler is saving the same
// member waits for that save instead of double-checkpointing — the
// nymbox is never paused twice, and both checkpoints land in order.
func TestCheckpointNymWaitsForInFlightSweepSave(t *testing.T) {
	eng, o := newFleet(t, 14, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		m := o.Members()[0]
		if _, err := m.Nym().Visit(p, "twitter.com"); err != nil {
			t.Errorf("visit: %v", err)
			return
		}
		gen := m.Nym().CheckpointGen()

		sweepDone := eng.Go("sweep", func(sp *sim.Proc) {
			if _, err := o.SweepOnce(sp, SweepConfig{Password: "pw", DestFor: sweepDest}); err != nil {
				t.Errorf("sweep: %v", err)
			}
		})
		// Let the sweep launch its save, then demand a checkpoint of the
		// same member mid-save.
		p.Sleep(100 * time.Millisecond)
		if m.saving == nil {
			t.Error("test setup: sweep save not in flight")
		}
		if _, err := o.CheckpointNym(p, m.Name(), "pw", sweepDest(m)); err != nil {
			t.Errorf("checkpoint during sweep save: %v", err)
			return
		}
		sim.Await(p, sweepDone)
		if got := m.Nym().CheckpointGen(); got != gen+2 {
			t.Errorf("checkpoint generation = %d, want %d (two serialized saves)", got, gen+2)
		}
		for _, err := range o.SweepErrors() {
			if errors.Is(err, vm.ErrBadState) {
				t.Errorf("sweep hit a lifecycle race: %v", err)
			}
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
			return
		}
	})
}
