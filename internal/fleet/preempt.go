package fleet

import (
	"fmt"
	"sort"
	"time"

	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// PreemptConfig tunes the pressure-driven preemption machinery: when a
// higher-priority launch has been stuck at the head of the admission
// queue past Dwell, strictly-lower-priority running members are
// sacrificed to admit it. Ephemeral victims are terminated outright
// (their state is disposable by design); durable victims (persistent,
// pre-configured) are first checkpointed through the NymVault and then
// evicted, so their durable identity survives in the cloud and a later
// launch can restore it.
type PreemptConfig struct {
	// Enabled arms the daemon; a disabled preemptor costs nothing.
	Enabled bool
	// Dwell is how long queue pressure must persist before the first
	// victim dies (default 5s) — a transient blip during a teardown
	// should not cost a running nym its life.
	Dwell time.Duration
	// VaultPassword seals eviction checkpoints. DestFor maps a member
	// to its vault destination. When either is unset, durable members
	// are not evictable and only ephemeral nyms are preempted.
	VaultPassword string
	DestFor       func(*Member) core.VaultDest
}

func (c *PreemptConfig) fillDefaults() {
	if c.Dwell <= 0 {
		c.Dwell = 5 * time.Second
	}
}

// PreemptStats counts completed preemptions.
type PreemptStats struct {
	// Terminated is ephemeral members killed outright.
	Terminated int
	// Evicted is persistent members vaulted and then stopped.
	Evicted int
}

// Total returns all preemptions.
func (s PreemptStats) Total() int { return s.Terminated + s.Evicted }

// Preemptions returns the orchestrator's preemption counters.
func (o *Orchestrator) Preemptions() PreemptStats { return o.preempted }

// canEvict reports whether persistent members may be vaulted away.
func (o *Orchestrator) canEvict() bool {
	return o.cfg.Preempt.VaultPassword != "" && o.cfg.Preempt.DestFor != nil
}

// durableModel reports whether a nym's state must survive its nymbox:
// persistent and pre-configured nyms carry durable identity, so
// preemption may only evict them through the vault; ephemeral state is
// disposable by design.
func durableModel(model core.UsageModel) bool {
	return model != core.ModelEphemeral
}

// victims returns the Running members a demand of class pri may
// sacrifice, cheapest first: lowest priority, then coldest (longest
// time since last transition to Running — the member least likely to
// be mid-interaction, the same heuristic the cluster rebalancer uses).
// Durable members (persistent, pre-configured) are included only when
// eviction is configured.
func (o *Orchestrator) victims(pri Priority) []*Member {
	var out []*Member
	for _, name := range o.order {
		m := o.members[name]
		if m.state != StateRunning || m.nym == nil || m.pri >= pri {
			continue
		}
		if m.saving != nil {
			// A sweep or migration checkpoint holds the member; evicting
			// it now would double-save the nym mid-flight. The save's
			// completion notifies, re-arming the preemption daemon.
			continue
		}
		if durableModel(m.nym.Model()) && !o.canEvict() {
			continue
		}
		out = append(out, m)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].pri != out[j].pri {
			return out[i].pri < out[j].pri
		}
		return out[i].runningAt < out[j].runningAt
	})
	return out
}

// PreemptibleBytes returns how much running footprint members
// strictly below the given class could free: ephemeral members
// always, durable ones (persistent, pre-configured) only when
// eviction (vault password + dest) is configured. A cluster placement
// layer reads it to decide which host a queued high-priority launch
// should preempt on.
func (o *Orchestrator) PreemptibleBytes(pri Priority) int64 {
	var sum int64
	for _, m := range o.victims(pri) {
		sum += m.footprint
	}
	return sum
}

// PreemptOne sacrifices the single cheapest member strictly below the
// given class (ephemeral before persistent, coldest first) and returns
// its freed footprint, or 0 when no member is preemptible. Callers
// that need more than one victim's worth of capacity re-evaluate their
// demand between kills — a single-victim primitive cannot overkill
// when the demand is admitted concurrently (the host's own admission
// queue and a cluster dispatcher both place launches the moment a
// reservation is released, mid-pass).
func (o *Orchestrator) PreemptOne(p *sim.Proc, pri Priority) int64 {
	o.opStarted()
	defer o.opDone()
	for {
		vs := o.victims(pri)
		if len(vs) == 0 {
			return 0
		}
		if err := o.preemptMember(p, vs[0]); err == nil {
			return vs[0].footprint
		}
		// The victim changed state under us (crashed, stopped); the
		// next plan excludes it.
	}
}

// preemptPass is the host-local daemon's work loop: as long as the
// admission queue's head outranks coverable victims, sacrifice the
// cheapest one. The head is re-read after every kill — releasing a
// victim's reservation admits the head synchronously, so the next
// round serves the next queued class (or stops).
func (o *Orchestrator) preemptPass(p *sim.Proc) {
	for {
		need, pri, ok := o.ram.head()
		if !ok {
			return
		}
		deficit := need - o.HeadroomBytes()
		if deficit <= 0 {
			return
		}
		vs := o.victims(Priority(pri))
		var coverable int64
		for _, m := range vs {
			coverable += m.footprint
		}
		if coverable < deficit {
			return
		}
		o.preemptMember(p, vs[0])
	}
}

// preemptMember sacrifices one Running member: durable nyms
// (persistent, pre-configured) are vault-checkpointed first (the
// eviction half of scale-down — durable identity survives in the
// cloud), then the nymbox is terminated and the reservation released.
// The member lands in StatePreempted, a terminal state: preemption
// must not fight the restart policy over the capacity it just freed.
// A non-nil return means the member was NOT preempted (it changed
// state under us, or its eviction save failed); a partial teardown
// failure does not count — TerminateNym always retires the nym, so
// the preemption succeeded and the error is recorded on the member.
func (o *Orchestrator) preemptMember(p *sim.Proc, m *Member) error {
	if m.state != StateRunning || m.nym == nil {
		return fmt.Errorf("%w: %q is %v", ErrNotRunning, m.spec.Name, m.state)
	}
	if m.saving != nil {
		return nymerr.Newf(CodeEvictBusy, "fleet: evict %q: checkpoint in flight", m.spec.Name)
	}
	durable := durableModel(m.nym.Model())
	if durable {
		dest := o.cfg.Preempt.DestFor(m)
		claim := &saveClaim{}
		m.saving = claim
		_, err := o.mgr.StoreNymVault(p, m.nym, o.cfg.Preempt.VaultPassword, dest)
		o.releaseClaim(m, claim)
		if err != nil {
			// An unsaveable member is not evictable; leave it running.
			werr := fmt.Errorf("fleet: evict %q: %w", m.spec.Name, err)
			o.recordFailure(m.spec.Name, "evict", werr)
			return werr
		}
		m.checkpoint = &Checkpoint{Password: o.cfg.Preempt.VaultPassword, Dest: dest}
	}
	// The checkpoint above yields; the member may have crashed or been
	// stopped meanwhile.
	if m.state != StateRunning || m.nym == nil {
		return fmt.Errorf("%w: %q is %v", ErrNotRunning, m.spec.Name, m.state)
	}
	nym := m.nym
	m.nym = nil
	o.setState(m, StateStopping)
	m.lastErr = o.mgr.TerminateNym(p, nym) // best effort; the nym is retired regardless
	o.recordFailure(m.spec.Name, "evict", m.lastErr)
	o.releaseAdmission(m)
	o.setState(m, StatePreempted)
	if durable {
		o.preempted.Evicted++
	} else {
		o.preempted.Terminated++
	}
	return nil
}

// needsPreempt reports whether the host-local daemon has work: the
// admission queue's head outranks some running member whose sacrifice
// (with others below the head's class) would cover the head's deficit.
func (o *Orchestrator) needsPreempt() bool {
	if !o.cfg.Preempt.Enabled {
		return false
	}
	need, pri, ok := o.ram.head()
	if !ok {
		return false
	}
	deficit := need - o.HeadroomBytes()
	if deficit <= 0 {
		return false // the head admits on its own; no one has to die
	}
	var preemptible int64
	for _, m := range o.victims(Priority(pri)) {
		preemptible += m.footprint
	}
	return preemptible >= deficit
}

// schedulePreempt arms one preemption check Dwell out, the same
// state-driven idiom as the KSM daemon and the cluster rebalancer: a
// timer exists only while a pass could help, so a fleet without
// pressure (or without victims) leaves the event queue empty. The
// pressure clock (pressureSince) is reset whenever the condition
// clears, so only *sustained* pressure kills.
func (o *Orchestrator) schedulePreempt() {
	if !o.needsPreempt() {
		o.pressureSince = -1
		return
	}
	if o.pressureSince < 0 {
		o.pressureSince = o.eng.Now()
	}
	if o.preemptArmed || o.preempting {
		return
	}
	o.preemptArmed = true
	wait := o.pressureSince + o.cfg.Preempt.Dwell - o.eng.Now()
	o.eng.Schedule(wait, func() {
		o.preemptArmed = false
		if o.preempting || !o.needsPreempt() {
			o.pressureSince = -1
			o.notify() // waiters watch preemptArmed via queueStalled
			return
		}
		if o.eng.Now()-o.pressureSince < o.cfg.Preempt.Dwell {
			o.schedulePreempt() // pressure blipped off and back on; re-dwell
			return
		}
		o.preempting = true
		o.eng.Go("fleet/preempt", func(p *sim.Proc) {
			o.opStarted()
			o.preemptPass(p)
			o.opDone()
			o.preempting = false
			o.pressureSince = -1
			o.notify()
			o.schedulePreempt() // more queued classes may still need room
		})
	})
}
