package fleet

import (
	"fmt"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
)

// churnDisk rewrites one of four rotating files on the member's comm
// disk with round-varying content: n bytes of genuinely new data on
// the dirty ladder every call, so the member's disk byte-rate is
// n per call interval.
func churnDisk(t *testing.T, m *Member, round, n int) {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((round + i) % 251)
	}
	path := fmt.Sprintf("/var/churn-%d", round%4)
	if err := m.Nym().CommVM().Disk().WriteFile(path, data); err != nil {
		t.Fatalf("churn %s: %v", m.Name(), err)
	}
}

// TestSweepReportAggregatesTotalChunks is the regression test for the
// aggregation bug where SweepReport dropped SweepRecord.TotalChunks:
// per-pass records carried the dedup denominator but the fleet-level
// report always read 0, so NewChunks/TotalChunks ratios computed from
// the report were meaningless.
func TestSweepReportAggregatesTotalChunks(t *testing.T) {
	eng, o := newFleet(t, 14, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(3, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if _, err := o.SaveSweep(p, "pw", sweepDest); err != nil {
			t.Errorf("cold sweep: %v", err)
			return
		}
		churnDisk(t, o.Members()[1], 0, 64<<10)
		rec, err := o.SweepOnce(p, SweepConfig{Password: "pw", DestFor: sweepDest})
		if err != nil {
			t.Errorf("sweep: %v", err)
			return
		}
		if rec.TotalChunks <= 0 {
			t.Fatalf("pass record TotalChunks = %d, want > 0", rec.TotalChunks)
		}
		rep := o.SweepReport()
		var want int
		for _, r := range rep.Records {
			want += r.TotalChunks
		}
		if want <= 0 {
			t.Fatalf("no record carried TotalChunks; records: %+v", rep.Records)
		}
		if rep.TotalChunks != want {
			t.Errorf("report TotalChunks = %d, want %d (sum over pass records)",
				rep.TotalChunks, want)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
}

// TestAdaptiveCadenceDefersColdMembers: under Adaptive sweeps a
// high-churn member is saved every pass (its dirty delta crosses
// TargetDeltaBytes) while a trickle-dirty member is deferred pass
// after pass — until the RPO horizon forces its save. Staleness never
// exceeds the ceiling.
func TestAdaptiveCadenceDefersColdMembers(t *testing.T) {
	eng, o := newFleet(t, 15, 16<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if _, err := o.SaveSweep(p, "pw", sweepDest); err != nil {
			t.Errorf("cold sweep: %v", err)
			return
		}
		hot, cold := o.Members()[0], o.Members()[1]
		coldGen := cold.Nym().CheckpointGen()
		cfg := SweepConfig{
			Password: "pw", DestFor: sweepDest,
			Adaptive:         true,
			Interval:         10 * time.Second,
			NextPassIn:       10 * time.Second,
			RPO:              80 * time.Second,
			TargetDeltaBytes: 64 << 10,
		}
		var saves, deferred int
		for round := 0; round < 8; round++ {
			// 128 KiB of fresh disk churn: over target, due every pass.
			churnDisk(t, hot, round, 128<<10)
			// One dirty RAM page: dirty, but zero disk rate.
			if err := cold.Nym().AnonVM().DirtyPages(1); err != nil {
				t.Errorf("dirty cold: %v", err)
				return
			}
			rec, err := o.SweepOnce(p, cfg)
			if err != nil {
				t.Errorf("round %d: %v", round, err)
				return
			}
			if rec.Saves < 1 {
				t.Errorf("round %d: hot member not saved (saves=%d)", round, rec.Saves)
			}
			saves += rec.Saves
			deferred += rec.Deferred
			p.Sleep(10 * time.Second)
		}
		// Hot saved all 8 rounds; cold exactly once (RPO-forced around
		// round 6) or twice with scheduling drift.
		if saves < 9 || saves > 10 {
			t.Errorf("total saves = %d, want 9 or 10 (hot every round, cold once)", saves)
		}
		gotCold := cold.Nym().CheckpointGen() - coldGen
		if gotCold < 1 || gotCold > 2 {
			t.Errorf("cold member saved %d times, want 1 or 2 (RPO-forced)", gotCold)
		}
		if deferred < 5 {
			t.Errorf("cold member deferred %d times, want >= 5", deferred)
		}
		rep := o.SweepReport()
		if rep.Deferred != deferred {
			t.Errorf("report Deferred = %d, want %d", rep.Deferred, deferred)
		}
		if rep.StalenessMax <= 0 || rep.StalenessMax > cfg.RPO {
			t.Errorf("staleness max = %v, want in (0, %v]", rep.StalenessMax, cfg.RPO)
		}
		// The forced cold save must show real deferral: its staleness
		// spans several passes, not one.
		if rep.StalenessMax < 40*time.Second {
			t.Errorf("staleness max = %v, want >= 40s (cold save was not deferred)",
				rep.StalenessMax)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
}

// TestAdaptiveCadenceHonorsRPOUnderPressure is the safety property:
// with sustained admission pressure backing the scheduler off to its
// MaxBackoff cadence AND TargetDeltaBytes set far beyond reach (so
// only the RPO horizon can force a save), every member keeps getting
// checkpointed and no staleness sample ever exceeds the RPO ceiling.
func TestAdaptiveCadenceHonorsRPOUnderPressure(t *testing.T) {
	// 2 GiB host: admits two 400 MiB nymboxes, queues the third —
	// admission pressure for the whole run.
	eng, o := newFleet(t, 16, 2<<30, Config{})
	const rpo = 150 * time.Second
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
			return
		}
		if err := o.StartSweeps(SweepConfig{
			Interval: 10 * time.Second, Password: "pw", DestFor: sweepDest,
			Adaptive:         true,
			RPO:              rpo,
			TargetDeltaBytes: 1 << 40, // unreachable: only the RPO forces saves
		}); err != nil {
			t.Errorf("start sweeps: %v", err)
			return
		}
		running := o.Members()
		extra := Spec{Name: "extra", Opts: smallOpts(core.ModelPersistent)}
		if _, err := o.Launch(extra); err != nil {
			t.Errorf("queue extra: %v", err)
			return
		}
		// Sustained churn: every running member keeps mutating the
		// whole run (the queued extra has no VMs to dirty).
		for i := 0; i < 50; i++ {
			p.Sleep(10 * time.Second)
			for _, m := range running {
				churnDisk(t, m, i, 4<<10)
			}
		}
		o.StopSweeps()
		o.AwaitSweepsIdle(p)

		samples := o.CheckpointStaleness()
		if len(samples) < 4 {
			t.Fatalf("only %d staleness samples over 500s of pressured churn, want >= 4", len(samples))
		}
		for i, s := range samples {
			if s > rpo {
				t.Errorf("sample %d: staleness %v exceeds RPO %v", i, s, rpo)
			}
		}
		rep := o.SweepReport()
		if rep.Deferred < 2 {
			t.Errorf("Deferred = %d, want >= 2 (cadence never stretched)", rep.Deferred)
		}
		// Deferral must actually stretch cadence beyond the forced
		// MaxBackoff tick gap — otherwise the RPO bound is vacuous.
		if rep.StalenessP95 < 60*time.Second {
			t.Errorf("staleness p95 = %v, want >= 60s (saves every pass; nothing deferred)",
				rep.StalenessP95)
		}
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop all: %v", err)
		}
	})
}
