package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vault"
)

// RestartPolicy bounds how persistently the fleet revives a failing
// nym.
type RestartPolicy struct {
	MaxRestarts int           // restart budget per member (0 = never restart)
	Backoff     time.Duration // delay before each restart attempt
}

// DefaultRestartPolicy retries twice with a short breather.
func DefaultRestartPolicy() RestartPolicy {
	return RestartPolicy{MaxRestarts: 2, Backoff: 2 * time.Second}
}

// Config parameterizes an Orchestrator. Zero values take defaults.
type Config struct {
	// RAMHeadroom is the fraction of host physical RAM admissible for
	// nymbox reservations (default 0.9); the remainder stays free for
	// the hypervisor's own growth and KSM scan slack.
	RAMHeadroom float64
	// StartsPerCore bounds concurrent startup pipelines at
	// ceil(StartsPerCore * physical cores) (default 2).
	StartsPerCore float64
	// Restart is the per-member failure policy.
	Restart RestartPolicy
	// SaveStagger spaces successive save launches in a sweep
	// (default 250ms).
	SaveStagger time.Duration
	// SaveConcurrency caps in-flight saves during a sweep (default 4).
	SaveConcurrency int
	// StopConcurrency caps parallel teardowns (default: the start
	// gate's width).
	StopConcurrency int
	// KSMInterval is the merge daemon's period while fleet operations
	// are in flight (default 100ms). KSMBudget is the page budget per
	// tick; <0 drains the scan queue (the default).
	KSMInterval time.Duration
	KSMBudget   int
	// Preempt arms the pressure-driven preemption daemon (disabled by
	// default); see PreemptConfig.
	Preempt PreemptConfig
	// WireBudget is the admissible idle uplink rate in bytes per
	// second (0 = uncapped). Constant-rate transports (the mixnet's
	// cover traffic) hold wire even when no request is in flight, so
	// admission reserves each member's Options.WireFootprint against
	// this budget the way RAM admission reserves Footprint.
	WireBudget float64
}

func (c *Config) fillDefaults(cores int) {
	if c.RAMHeadroom <= 0 || c.RAMHeadroom > 1 {
		c.RAMHeadroom = 0.9
	}
	if c.StartsPerCore <= 0 {
		c.StartsPerCore = 2
	}
	if c.SaveStagger <= 0 {
		c.SaveStagger = 250 * time.Millisecond
	}
	if c.SaveConcurrency <= 0 {
		c.SaveConcurrency = 4
	}
	if c.StopConcurrency <= 0 {
		c.StopConcurrency = c.startGateWidth(cores)
	}
	if c.KSMInterval <= 0 {
		c.KSMInterval = 100 * time.Millisecond
	}
	if c.KSMBudget == 0 {
		c.KSMBudget = -1
	}
	c.Preempt.fillDefaults()
}

func (c *Config) startGateWidth(cores int) int {
	w := int(c.StartsPerCore * float64(cores))
	if w < 1 {
		w = 1
	}
	return w
}

// MemberState is a fleet member's lifecycle state.
type MemberState int

// Member lifecycle states.
const (
	StateQueued     MemberState = iota // waiting for admission
	StateStarting                      // admitted, nymbox booting
	StateRunning                       // nym live
	StateRestarting                    // failed, awaiting its next attempt
	StateStopping                      // teardown in progress
	StateStopped                       // terminated cleanly
	StateFailed                        // restart budget exhausted
	StatePreempted                     // terminated/evicted to admit a higher class
)

// String implements fmt.Stringer.
func (s MemberState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateRestarting:
		return "restarting"
	case StateStopping:
		return "stopping"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	case StatePreempted:
		return "preempted"
	}
	return "unknown"
}

// Priority is a launch's admission class. Higher classes are admitted
// first: the admission queue is ordered by descending priority (FIFO
// among equals), and under sustained pressure the preemption machinery
// terminates or evicts strictly-lower-priority members to admit a
// queued higher-priority launch.
type Priority int

// Admission classes, lowest to highest. The zero value resolves from
// the nym's usage model (persistent and pre-configured nyms rank above
// ephemeral ones, whose state is disposable by design); PrioritySystem
// is reserved for launches that must land even on a saturated host.
const (
	PriorityDefault    Priority = iota // resolve from the usage model
	PriorityEphemeral                  // disposable; first to be preempted
	PriorityPersistent                 // durable identity; evicted only via the vault
	PrioritySystem                     // admitted ahead of everything, never preempted
)

// String implements fmt.Stringer.
func (pr Priority) String() string {
	switch pr {
	case PriorityEphemeral:
		return "ephemeral"
	case PriorityPersistent:
		return "persistent"
	case PrioritySystem:
		return "system"
	}
	return "default"
}

// Spec names one nym the fleet should run.
type Spec struct {
	Name string
	Opts core.Options
	// Priority is the admission class; PriorityDefault resolves from
	// Opts.Model (persistent/pre-configured -> PriorityPersistent,
	// ephemeral -> PriorityEphemeral).
	Priority Priority
}

// EffectivePriority resolves the spec's admission class, mapping
// PriorityDefault onto the usage model.
func (s Spec) EffectivePriority() Priority {
	if s.Priority != PriorityDefault {
		return s.Priority
	}
	switch s.Opts.Model {
	case core.ModelPersistent, core.ModelPreconfigured:
		return PriorityPersistent
	}
	return PriorityEphemeral
}

// Member is one nym under fleet supervision.
type Member struct {
	spec      Spec
	footprint int64
	wireRate  int64 // idle uplink bytes/sec held while admitted
	pri       Priority
	state     MemberState
	nym       *core.Nym
	restarts  int
	lastErr   error
	queuedAt  sim.Time
	runningAt sim.Time // time of the most recent transition to Running
	// checkpoint records the member's most recent successful vault
	// save; a restart restores from it instead of booting blank, so a
	// crash cannot cost a persistent nym its durable state.
	checkpoint *Checkpoint
	// detached tells the member's supervision process to stand down:
	// the member has been handed off (migrated to another host) and
	// must not be restarted here.
	detached bool
	// saving, while non-nil, identifies the vault checkpoint currently
	// in flight for this member. It is the per-nym mutual exclusion
	// between the sweep scheduler, a caller-driven SaveSweep, a
	// migration's CheckpointNym, and preemption eviction: whichever
	// claims the member first saves it; everyone else skips or waits.
	// The claim is a unique token, not a bool, so a holder can only
	// release its own claim — a stale release path (a sweep's await
	// loop draining after a waiter already re-claimed the member) must
	// not clobber the next holder's exclusion. Without this two
	// concurrent saves would race their exportState pauses on the same
	// nymbox.
	saving *saveClaim
	// pendingRes is the RAM reservation enqueued synchronously by
	// Launch, consumed by the first runLaunch attempt. Reserving at
	// Launch time (not when the supervise proc first runs) means
	// ReservedBytes reflects a launch the moment it is accepted — a
	// cluster placement layer that spreads a batch across hosts must
	// see each placement it just made.
	pendingRes *sim.Future[struct{}]
	// pendingWire is the wire-rate reservation enqueued alongside
	// pendingRes; nil for members with no idle wire footprint.
	pendingWire *sim.Future[struct{}]
	// cad is the member's adaptive sweep cadence state: the dirty
	// byte-rate estimate and the staleness bookkeeping the scheduler
	// reads to scale this member's next sweep eligibility.
	cad cadence
}

// cadence tracks one member's observed churn for the adaptive sweep
// scheduler. All fields are maintained at sweep-pass granularity —
// the scheduler observes, it is never called back on mutation.
type cadence struct {
	seen     bool     // first observation taken
	obsAt    sim.Time // when the cadence last observed the nym
	obsBytes int64    // cumulative dirty-disk counter at that observation
	rate     float64  // EWMA dirty-disk bytes per second
	// cleanAt is the last instant the member was observed clean (or a
	// checkpoint launched): the conservative lower bound on when its
	// oldest unsaved mutation can have happened. Staleness is measured
	// from here, and the RPO ceiling is enforced against it.
	cleanAt  sim.Time
	lastSave sim.Time // when the last checkpoint launched
}

// observe folds a new cumulative dirty-disk reading into the rate
// estimate. An EWMA (half new, half history) smooths bursty rounds
// without letting a formerly-hot member read hot forever; a negative
// delta means the VM counters restarted (crash-restore) and resets
// the baseline instead of poisoning the rate.
func (c *cadence) observe(now sim.Time, total int64) {
	if !c.seen {
		c.seen, c.obsAt, c.obsBytes = true, now, total
		return
	}
	dt := now - c.obsAt
	if dt <= 0 {
		return
	}
	delta := total - c.obsBytes
	if delta < 0 {
		delta = 0
	}
	c.rate = 0.5*c.rate + 0.5*float64(delta)/dt.Seconds()
	c.obsAt, c.obsBytes = now, total
}

// Checkpoint is where (and under which password) a member's state was
// last vault-saved. It is the portable half of a member: a cluster
// migration carries it to another host's orchestrator, which restores
// the nym from the vault instead of booting it blank.
type Checkpoint struct {
	Password string
	Dest     core.VaultDest
}

// Name returns the member's nym name.
func (m *Member) Name() string { return m.spec.Name }

// State returns the member's lifecycle state.
func (m *Member) State() MemberState { return m.state }

// Nym returns the live nym, or nil unless the member is Running.
func (m *Member) Nym() *core.Nym { return m.nym }

// Restarts returns how many restart attempts the member has consumed.
func (m *Member) Restarts() int { return m.restarts }

// LastErr returns the most recent failure, or nil.
func (m *Member) LastErr() error { return m.lastErr }

// QueuedAt returns when the member entered the admission queue.
func (m *Member) QueuedAt() sim.Time { return m.queuedAt }

// RunningAt returns when the member last transitioned to Running.
func (m *Member) RunningAt() sim.Time { return m.runningAt }

// Footprint returns the host RAM the member reserves while admitted.
func (m *Member) Footprint() int64 { return m.footprint }

// WireRate returns the idle uplink rate (bytes/sec) the member holds
// against the wire budget while admitted — the cover-traffic cost of
// its anonymizer chain, zero for demand-driven transports.
func (m *Member) WireRate() int64 { return m.wireRate }

// Priority returns the member's resolved admission class.
func (m *Member) Priority() Priority { return m.pri }

// Saving reports whether a vault checkpoint is currently in flight
// for this member — claimed by a scheduled sweep, a caller-driven
// SaveSweep, a migration's CheckpointNym, or a preemption eviction.
// The cluster's opportunistic GC consults it: pruning a vault whose
// manifest is about to be replaced would race the in-flight save.
func (m *Member) Saving() bool { return m.saving != nil }

// dirtySince is the conservative bound on when the member's oldest
// unsaved mutation can have happened: the last instant it was
// observed clean, falling back to its latest transition to Running
// for a member never yet observed.
func (m *Member) dirtySince() sim.Time {
	if m.cad.cleanAt > 0 {
		return m.cad.cleanAt
	}
	return m.runningAt
}

// Checkpoint returns the member's last recorded vault checkpoint.
func (m *Member) Checkpoint() (Checkpoint, bool) {
	if m.checkpoint == nil {
		return Checkpoint{}, false
	}
	return *m.checkpoint, true
}

// Spec returns the launch spec the member runs under.
func (m *Member) Spec() Spec { return m.spec }

// Orchestrator drives a fleet of nyms over one Manager.
type Orchestrator struct {
	mgr *core.Manager
	eng *sim.Engine
	cfg Config

	ram       *sem // host RAM reservations, bytes
	wire      *sem // idle uplink reservations, bytes/sec
	startGate *sem // concurrent startup pipelines

	members map[string]*Member
	order   []string

	// watchers is notified on every member state change; AwaitRunning
	// and AwaitSettled park on it.
	watchers *sim.Broadcast

	// ops counts explicit in-flight operations (save sweeps,
	// teardowns). Together with member states it drives the KSM
	// daemon's lifetime, so the event queue drains when nothing is
	// writing pages — even if launches are still queued for RAM that
	// nothing will free.
	ops          int
	ksmScheduled bool

	// Preemption daemon state: the pressure clock (simulated time at
	// which the current pressure episode began, -1 while clear), the
	// armed dwell timer, the in-flight pass, and completed counts.
	pressureSince sim.Time
	preemptArmed  bool
	preempting    bool
	preempted     PreemptStats

	// Sweep scheduler state (sweep.go): the installed config (nil
	// while stopped), the armed tick timer, the current possibly
	// backed-off delay, in-flight pass count, and recorded telemetry.
	sweepCfg   *SweepConfig
	sweepTimer *sim.Timer
	sweepDelay time.Duration
	sweeping   int
	sweepRecs  []SweepRecord
	sweepErrs  []error
	// sweepStale collects one checkpoint-staleness sample per
	// successful save of a dirty member: how old the oldest unsaved
	// mutation could have been when the save launched. The adaptive
	// scheduler's contract is that no sample exceeds the member's RPO.
	sweepStale []time.Duration

	// failures is the classified failure history (codes.go): one record
	// per member-scoped error surface, bucketed by code in the SLO
	// report.
	failures []FailureRecord

	peakRAMBytes int64
}

// New builds an orchestrator over mgr. The admissible RAM budget is
// RAMHeadroom of host capacity minus what the hypervisor already
// holds; an uncapped host admits everything immediately.
func New(mgr *core.Manager, cfg Config) *Orchestrator {
	host := mgr.Host()
	cfg.fillDefaults(host.CPU().Config().Cores)
	budget := int64(-1) // uncapped host: admit everything
	if cap := host.Mem().Capacity(); cap > 0 {
		budget = int64(cfg.RAMHeadroom*float64(cap)) - host.Mem().UsedBytes()
		if budget < 0 {
			// Already saturated past the headroom: nothing is admissible.
			budget = 0
		}
	}
	wireBudget := int64(-1) // uncapped by default
	if cfg.WireBudget > 0 {
		wireBudget = int64(cfg.WireBudget)
	}
	eng := mgr.Engine()
	return &Orchestrator{
		mgr:           mgr,
		eng:           eng,
		cfg:           cfg,
		ram:           newSem(eng, budget),
		wire:          newSem(eng, wireBudget),
		startGate:     newSem(eng, int64(cfg.startGateWidth(host.CPU().Config().Cores))),
		members:       make(map[string]*Member),
		watchers:      sim.NewBroadcast(eng),
		pressureSince: -1,
	}
}

// Manager returns the underlying Nym Manager.
func (o *Orchestrator) Manager() *core.Manager { return o.mgr }

// Config returns the effective (default-filled) configuration.
func (o *Orchestrator) Config() Config { return o.cfg }

// RAMBudgetBytes returns the admissible reservation budget.
func (o *Orchestrator) RAMBudgetBytes() int64 { return o.ram.capacity }

// StartGateWidth returns how many startup pipelines may run at once.
func (o *Orchestrator) StartGateWidth() int { return int(o.startGate.capacity) }

// ReservedBytes returns currently admitted reservations.
func (o *Orchestrator) ReservedBytes() int64 { return o.ram.used }

// QueuedLaunches returns launches waiting for RAM admission.
func (o *Orchestrator) QueuedLaunches() int { return o.ram.queued() }

// HeadroomBytes returns the admission headroom: budget minus current
// reservations. It is what a cluster placement policy bids with.
func (o *Orchestrator) HeadroomBytes() int64 { return o.ram.capacity - o.ram.used }

// CanAdmit reports whether a launch of the given footprint would be
// admitted immediately — enough free budget and no earlier launch
// queued ahead of it (admission is strict priority-FIFO, so an empty
// queue is the only state in which every class is admitted at once).
func (o *Orchestrator) CanAdmit(footprint int64) bool {
	return o.ram.queued() == 0 && footprint <= o.HeadroomBytes()
}

// WireBudgetRate returns the admissible idle uplink budget in
// bytes/sec, or -1 when uncapped.
func (o *Orchestrator) WireBudgetRate() int64 {
	if o.cfg.WireBudget <= 0 {
		return -1
	}
	return o.wire.capacity
}

// WireReservedRate returns the idle uplink rate (bytes/sec) currently
// admitted — the fleet's standing cover-traffic bill.
func (o *Orchestrator) WireReservedRate() int64 { return o.wire.used }

// QueuedWireLaunches returns launches parked for wire admission.
func (o *Orchestrator) QueuedWireLaunches() int { return o.wire.queued() }

// CanAdmitWire reports whether an idle wire rate fits the wire budget
// immediately; always true on an uncapped host.
func (o *Orchestrator) CanAdmitWire(rate int64) bool {
	return o.wire.queued() == 0 && rate <= o.wire.capacity-o.wire.used
}

// PeakRAMBytes returns the highest physical host memory use sampled
// during fleet operations.
func (o *Orchestrator) PeakRAMBytes() int64 { return o.peakRAMBytes }

// Member returns a member by name, or nil.
func (o *Orchestrator) Member(name string) *Member { return o.members[name] }

// Members returns all members in launch order.
func (o *Orchestrator) Members() []*Member {
	out := make([]*Member, 0, len(o.order))
	for _, name := range o.order {
		out = append(out, o.members[name])
	}
	return out
}

// CountState returns how many members are in state s.
func (o *Orchestrator) CountState(s MemberState) int {
	n := 0
	for _, name := range o.order {
		if o.members[name].state == s {
			n++
		}
	}
	return n
}

// Running returns the number of live members.
func (o *Orchestrator) Running() int { return o.CountState(StateRunning) }

// WireRateFor returns the integral idle uplink rate (bytes/sec) a nym
// with these options reserves against a host's wire budget — its
// chain's cover-traffic cost, rounded up to whole bytes.
func WireRateFor(opts core.Options) int64 {
	return int64(math.Ceil(opts.WireFootprint()))
}

// Launch enqueues one nym for admission and starts its supervision
// process. It returns immediately; the launch proceeds on its own
// simulated process. A footprint that can never fit the admissible
// budget fails now instead of queueing forever.
func (o *Orchestrator) Launch(spec Spec) (*Member, error) {
	if _, dup := o.members[spec.Name]; dup {
		return nil, nymerr.Newf(CodeDuplicateMember, "fleet: member %q already launched", spec.Name)
	}
	m := &Member{
		spec:      spec,
		footprint: spec.Opts.Footprint(),
		wireRate:  WireRateFor(spec.Opts),
		pri:       spec.EffectivePriority(),
		state:     StateQueued,
		queuedAt:  o.eng.Now(),
	}
	if m.footprint > o.ram.capacity {
		m.state = StateFailed
		m.lastErr = fmt.Errorf("%w: %q needs %d bytes, budget is %d",
			ErrNeverAdmissible, spec.Name, m.footprint, o.ram.capacity)
		o.members[spec.Name] = m
		o.order = append(o.order, spec.Name)
		o.recordFailure(spec.Name, "launch", m.lastErr)
		return m, m.lastErr
	}
	if m.wireRate > o.wire.capacity {
		m.state = StateFailed
		m.lastErr = fmt.Errorf("%w: %q holds %d B/s of idle uplink, wire budget is %d",
			ErrNeverAdmissible, spec.Name, m.wireRate, o.wire.capacity)
		o.members[spec.Name] = m
		o.order = append(o.order, spec.Name)
		o.recordFailure(spec.Name, "launch", m.lastErr)
		return m, m.lastErr
	}
	o.members[spec.Name] = m
	o.order = append(o.order, spec.Name)
	m.pendingRes = o.ram.reservePri(m.footprint, int(m.pri))
	if m.wireRate > 0 {
		m.pendingWire = o.wire.reservePri(m.wireRate, int(m.pri))
	}
	// A launch that queued is pressure the preemptor may act on; no
	// state transition fires until admission, so arm it here.
	o.schedulePreempt()
	o.superviseLaunch(m, 0)
	return m, nil
}

// LaunchRestored enqueues a nym whose first boot restores the given
// vault checkpoint instead of starting blank. This is the receiving
// half of a cross-host migration: the destination orchestrator admits
// the member like any launch (RAM reservation, start gate, restart
// policy) but its state comes off the vault.
func (o *Orchestrator) LaunchRestored(spec Spec, cp Checkpoint) (*Member, error) {
	m, err := o.Launch(spec)
	if m != nil && err == nil {
		m.checkpoint = &cp
	}
	return m, err
}

// LaunchAll enqueues a batch, returning the first hard admission error
// (other members still launch).
func (o *Orchestrator) LaunchAll(specs []Spec) ([]*Member, error) {
	var firstErr error
	members := make([]*Member, 0, len(specs))
	for _, spec := range specs {
		m, err := o.Launch(spec)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if m != nil {
			members = append(members, m)
		}
	}
	return members, firstErr
}

// superviseLaunch spawns the member's launch pipeline after delay.
func (o *Orchestrator) superviseLaunch(m *Member, delay time.Duration) {
	o.eng.Go("fleet/"+m.spec.Name, func(p *sim.Proc) {
		if delay > 0 {
			p.Sleep(delay)
		}
		o.runLaunch(p, m)
	})
}

// runLaunch drives one member from admission to Running, consuming
// restart budget on failed attempts. RAM is reserved before the start
// gate so a queued launch holds its place in admission order. A
// member with a recorded vault checkpoint is restored from it rather
// than started blank — a restarted persistent nym keeps its state.
// (The throwaway loader nym inside LoadNymVault is transient and not
// separately reserved.)
func (o *Orchestrator) runLaunch(p *sim.Proc, m *Member) {
	res := m.pendingRes
	m.pendingRes = nil
	wres := m.pendingWire
	m.pendingWire = nil
	for {
		if m.detached && res == nil && wres == nil {
			return
		}
		if res == nil {
			res = o.ram.reservePri(m.footprint, int(m.pri))
		}
		if wres == nil && m.wireRate > 0 {
			wres = o.wire.reservePri(m.wireRate, int(m.pri))
		}
		// Already-enqueued reservations must be seen through even if
		// the member detaches meanwhile: each eventual grant is
		// released below, never leaked in a semaphore's queue. Both
		// queues admit strict priority-FIFO with the same ordering, so
		// holding one grant while parked for the other cannot deadlock.
		_, err := sim.Await(p, res)
		res = nil
		ramHeld := err == nil
		var werr error
		wireHeld := false
		if wres != nil {
			_, werr = sim.Await(p, wres)
			wres = nil
			wireHeld = werr == nil
		}
		if err == nil {
			err = werr
		}
		if err != nil {
			// Oversized for the whole budget — Launch pre-checks this, so
			// only a shrunken budget could trip it; fail, don't wedge.
			if ramHeld {
				o.ram.release(m.footprint)
			}
			if wireHeld {
				o.wire.release(m.wireRate)
			}
			m.lastErr = err
			o.recordFailure(m.spec.Name, "launch", err)
			o.setState(m, StateFailed)
			return
		}
		if m.detached {
			o.releaseAdmission(m)
			return
		}
		sim.Await(p, o.startGate.reserve(1))
		if m.detached {
			o.startGate.release(1)
			o.releaseAdmission(m)
			return
		}
		o.setState(m, StateStarting)
		var nym *core.Nym
		if cp := m.checkpoint; cp != nil {
			nym, err = o.mgr.LoadNymVault(p, m.spec.Name, cp.Password, m.spec.Opts, cp.Dest)
		} else {
			nym, err = o.mgr.StartNym(p, m.spec.Name, m.spec.Opts)
		}
		o.startGate.release(1)
		if err == nil {
			m.nym = nym
			m.lastErr = nil
			m.runningAt = p.Now()
			o.sampleRAM()
			o.setState(m, StateRunning)
			return
		}
		o.releaseAdmission(m)
		m.lastErr = err
		o.recordFailure(m.spec.Name, "launch", err)
		if m.restarts >= o.cfg.Restart.MaxRestarts {
			o.setState(m, StateFailed)
			return
		}
		m.restarts++
		o.setState(m, StateRestarting)
		if o.cfg.Restart.Backoff > 0 {
			p.Sleep(o.cfg.Restart.Backoff)
		}
	}
}

// releaseAdmission returns an admitted member's RAM and wire-rate
// reservations to their semaphores. Every release site pairs the two:
// a member either holds both grants or neither.
func (o *Orchestrator) releaseAdmission(m *Member) {
	o.ram.release(m.footprint)
	if m.wireRate > 0 {
		o.wire.release(m.wireRate)
	}
}

// FailNym injects a nymbox failure: the AnonVM dies out from under the
// nym (the crash), the manager reclaims whatever remains of the
// nymbox, the reservation is released, and the restart policy decides
// whether the member comes back. Tests and chaos experiments use this
// to verify per-nym failure isolation.
func (o *Orchestrator) FailNym(p *sim.Proc, name string, cause error) error {
	m := o.members[name]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	if m.state != StateRunning {
		return fmt.Errorf("%w: %q is %v", ErrNotRunning, name, m.state)
	}
	if cause == nil {
		cause = nymerr.New(CodeCrashInjected, "fleet: injected failure")
	} else {
		// Caller-supplied causes classify too: the injected failure is
		// the outermost code, the original cause stays errors.Is-able.
		cause = nymerr.Wrap(CodeCrashInjected, cause, "fleet: injected failure")
	}
	m.lastErr = cause
	o.recordFailure(name, "crash", cause)
	// Transition the member before any yield: the teardown below parks
	// this process for whole wipe durations, and concurrent observers
	// (a second FailNym, a SaveSweep mid-stagger) must never see a
	// stale Running member whose nymbox is half-destroyed.
	nym := m.nym
	m.nym = nil
	restart := m.restarts < o.cfg.Restart.MaxRestarts
	if restart {
		m.restarts++
		o.setState(m, StateRestarting)
	} else {
		o.setState(m, StateFailed)
	}
	// The crash: one VM vanishes. Teardown of the remains must still
	// retire the nym (the TerminateNym partial-failure contract). The
	// reservation is released only after the wipe, when the physical
	// pages are actually free.
	o.mgr.Host().DestroyVM(p, nym.AnonVM())
	o.mgr.TerminateNym(p, nym) // best effort; the AnonVM is already gone
	o.releaseAdmission(m)
	if restart {
		o.superviseLaunch(m, o.cfg.Restart.Backoff)
	}
	return nil
}

// AwaitRunning parks the caller until target members are Running
// simultaneously. It errors out instead of parking forever when the
// target is unreachable: everything pending has failed, the RAM
// budget cannot hold that many of the launched footprints at once, or
// the admission queue has stalled — nothing is mid-flight and the
// FIFO head needs more RAM than remains, so only an external stop
// could ever make progress.
func (o *Orchestrator) AwaitRunning(p *sim.Proc, target int) error {
	if max := o.maxSimultaneous(); target > max {
		return nymerr.Newf(CodeTargetInfeasible, "fleet: target %d exceeds the %d nyms the RAM budget can hold at once", target, max)
	}
	for {
		if o.Running() >= target {
			return nil
		}
		if !o.anyPending() {
			return nymerr.Newf(CodeRampDead, "fleet: %d/%d running and no launches pending (%d failed)",
				o.Running(), target, o.CountState(StateFailed))
		}
		if o.queueStalled() {
			return nymerr.Newf(CodeAdmissionStalled, "fleet: %d/%d running and %d launches stalled in the admission queue (the FIFO head needs more RAM or wire than remains free)",
				o.Running(), target, o.ram.queued()+o.wire.queued())
		}
		o.parkOnChange(p)
	}
}

// QueueStalled reports whether the admission queue is stalled: only
// queued members remain and nothing in flight will free or claim the
// capacity their FIFO head needs. A cluster placement layer uses it
// to tell "this host will admit its queue eventually" from "only an
// external stop could unwedge this host".
func (o *Orchestrator) QueueStalled() bool { return o.queueStalled() }

// queueStalled reports that the only pending members are parked in
// the RAM admission queue and nothing in flight will free or claim
// capacity: the semaphore admits strictly priority-FIFO, and a queue
// is only non-empty when its head does not fit the free budget, so
// without a Starting/Restarting/Stopping member (or a launch proc that
// has not reached the queue yet) the fleet cannot make progress on its
// own. An armed or in-flight preemption pass counts as progress: the
// head's deficit is about to be freed by force.
func (o *Orchestrator) queueStalled() bool {
	if o.preemptArmed || o.preempting || o.needsPreempt() {
		return false
	}
	queued := 0
	for _, name := range o.order {
		switch o.members[name].state {
		case StateStarting, StateRestarting, StateStopping:
			return false
		case StateQueued:
			queued++
		}
	}
	// Queued members whose supervisor procs have not yet enqueued a
	// reservation are still in flight, not stalled. A member parks in
	// the RAM queue first and the wire queue second; when every queued
	// member sits in one of them, no admission can proceed on its own.
	// (Each member holds at most one slot per queue, so either count
	// matching the queued total means everyone is wedged.)
	return queued > 0 && (queued == o.ram.queued() || queued == o.wire.queued())
}

// maxSimultaneous bounds how many launched members the RAM budget can
// hold concurrently: the largest prefix of the (smallest-first)
// footprints that fits.
func (o *Orchestrator) maxSimultaneous() int {
	var fps []int64
	for _, name := range o.order {
		m := o.members[name]
		if m.state == StateFailed || m.state == StateStopped || m.state == StatePreempted {
			continue
		}
		fps = append(fps, m.footprint)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	var sum int64
	n := 0
	for _, fp := range fps {
		if sum+fp > o.ram.capacity {
			break
		}
		sum += fp
		n++
	}
	return n
}

// AwaitSettled parks the caller until no member is queued, starting,
// restarting, or stopping.
func (o *Orchestrator) AwaitSettled(p *sim.Proc) {
	for o.anyPending() || o.CountState(StateStopping) > 0 {
		o.parkOnChange(p)
	}
}

func (o *Orchestrator) anyPending() bool {
	for _, name := range o.order {
		switch o.members[name].state {
		case StateQueued, StateStarting, StateRestarting:
			return true
		}
	}
	return false
}

func (o *Orchestrator) parkOnChange(p *sim.Proc) {
	o.watchers.Park(p)
}

// ChangeFuture returns a future completed on the orchestrator's next
// member state change (or detach). A cluster placement layer awaits
// it to learn when this host's admission picture may have moved.
func (o *Orchestrator) ChangeFuture() *sim.Future[struct{}] {
	return o.watchers.Future()
}

// notify wakes everyone waiting on fleet progress.
func (o *Orchestrator) notify() {
	o.watchers.Notify()
}

// setState transitions a member, keeps the KSM and preemption daemons
// armed while they have work, and wakes everyone waiting on fleet
// progress.
func (o *Orchestrator) setState(m *Member, s MemberState) {
	m.state = s
	o.scheduleKSM()
	o.schedulePreempt()
	o.notify()
}

// SweepStats aggregates one staggered save sweep.
type SweepStats struct {
	Saves  int // successful checkpoints
	Errors int // failed checkpoints
	// Busy counts members left to another pass's in-flight save:
	// their pre-existing checkpoint landed or is landing, but state
	// dirtied after that save's export was NOT captured here. A
	// pre-shutdown flush that needs full coverage should re-sweep
	// while Busy > 0.
	Busy          int
	UploadedBytes int64 // vault wire bytes actually shipped
	BaselineBytes int64 // what monolithic re-uploads would have cost
	NewChunks     int
	TotalChunks   int
	Elapsed       time.Duration
}

// SaveSweep checkpoints every Running persistent member through the
// NymVault, mutated or not — the caller-driven full checkpoint (a
// fleet's cold save, a pre-shutdown flush). Save launches are spaced
// SaveStagger apart with at most SaveConcurrency in flight, so a
// fleet-wide checkpoint is a smooth trickle on the anonymizer and the
// providers rather than a thundering herd. destFor maps each member
// to its vault destination (typically one pseudonymous account per
// nym). Members another pass is already saving are left alone. For
// the periodic, dirty-skipping variant see StartSweeps.
func (o *Orchestrator) SaveSweep(p *sim.Proc, password string, destFor func(*Member) core.VaultDest) (SweepStats, error) {
	rec, err := o.runSweep(p, SweepConfig{
		Password:    password,
		DestFor:     destFor,
		Stagger:     o.cfg.SaveStagger,
		Concurrency: o.cfg.SaveConcurrency,
		SaveAll:     true,
	})
	return SweepStats{
		Saves:         rec.Saves,
		Errors:        rec.Errors,
		Busy:          rec.Busy,
		UploadedBytes: rec.UploadedBytes,
		BaselineBytes: rec.BaselineBytes,
		NewChunks:     rec.NewChunks,
		TotalChunks:   rec.TotalChunks,
		Elapsed:       rec.Elapsed,
	}, err
}

// CheckpointNym vault-saves one Running member synchronously and
// records the result as its checkpoint (the same record SaveSweep
// writes). Migration uses it for the source-side save; callers that
// checkpoint whole fleets should prefer SaveSweep's stagger. If a
// sweep pass is already saving the member, CheckpointNym waits for
// that save to finish before taking its own — a nym is never
// double-checkpointed by two concurrent saves.
func (o *Orchestrator) CheckpointNym(p *sim.Proc, name, password string, dest core.VaultDest) (vault.SaveStats, error) {
	m := o.members[name]
	if m == nil {
		return vault.SaveStats{}, fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	o.opStarted()
	defer o.opDone()
	for m.saving != nil {
		o.parkOnChange(p)
	}
	// The wait yields; the member may have crashed or stopped while
	// the sweep's save drained.
	if m.state != StateRunning || m.nym == nil {
		return vault.SaveStats{}, fmt.Errorf("%w: %q is %v", ErrNotRunning, name, m.state)
	}
	claim := &saveClaim{}
	m.saving = claim
	stats, err := o.mgr.StoreNymVault(p, m.nym, password, dest)
	o.releaseClaim(m, claim)
	if err != nil {
		return stats, err
	}
	m.checkpoint = &Checkpoint{Password: password, Dest: dest}
	return stats, nil
}

// Stop tears down one Running member, releasing its reservation once
// the wipe completes.
func (o *Orchestrator) Stop(p *sim.Proc, name string) error {
	m := o.members[name]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	if m.state != StateRunning || m.nym == nil {
		return fmt.Errorf("%w: %q is %v", ErrNotRunning, name, m.state)
	}
	o.opStarted()
	defer o.opDone()
	nym := m.nym
	m.nym = nil
	o.setState(m, StateStopping)
	err := o.mgr.TerminateNym(p, nym)
	o.recordFailure(name, "stop", err)
	o.releaseAdmission(m)
	o.setState(m, StateStopped)
	return err
}

// Detach removes a member from the fleet's supervision without
// touching any nymbox: its record is forgotten, its name freed, and
// any pending restart of it stands down. Only members whose nymbox is
// not live (queued, restarting, stopped, failed) can be detached — a
// migration stops the member first, then detaches it, so the source
// host cannot resurrect a nym that now runs elsewhere.
func (o *Orchestrator) Detach(name string) error {
	m := o.members[name]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	switch m.state {
	case StateRunning, StateStarting, StateStopping:
		return fmt.Errorf("%w: %q is %v", ErrNotDetachable, name, m.state)
	}
	m.detached = true
	delete(o.members, name)
	for i, n := range o.order {
		if n == name {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
	o.notify()
	return nil
}

// StopAll tears down every Running member in parallel, bounded by
// StopConcurrency, releasing each reservation as its wipe completes.
// Queued members that have not been admitted yet are left queued; call
// AwaitSettled first for a clean shutdown of a mid-ramp fleet.
func (o *Orchestrator) StopAll(p *sim.Proc) error {
	o.opStarted()
	defer o.opDone()
	gate := newSem(o.eng, int64(o.cfg.StopConcurrency))
	var futs []*sim.Future[struct{}]
	var stopping []*Member
	var errs []error
	for _, m := range o.Members() {
		if m.state != StateRunning || m.nym == nil {
			continue
		}
		o.setState(m, StateStopping)
		sim.Await(p, gate.reserve(1))
		fut := o.mgr.TerminateNymAsync(m.nym)
		fut.OnDone(func() { gate.release(1) })
		futs = append(futs, fut)
		stopping = append(stopping, m)
	}
	for i, f := range futs {
		_, err := sim.Await(p, f)
		if err != nil {
			errs = append(errs, err)
			o.recordFailure(stopping[i].spec.Name, "stop", err)
		}
		m := stopping[i]
		o.releaseAdmission(m)
		m.nym = nil
		o.setState(m, StateStopped)
	}
	return errors.Join(errs...)
}

// opStarted/opDone bracket explicit fleet operations (sweeps,
// teardowns), which keep the KSM daemon eligible while they run.
func (o *Orchestrator) opStarted() {
	o.ops++
	o.scheduleKSM()
}

func (o *Orchestrator) opDone() {
	o.ops--
	if o.ops == 0 && !o.needsKSM() {
		// Final drain so post-op memory readings reflect merged state.
		o.mgr.Host().Mem().ScanAll()
		o.sampleRAM()
	}
}

// needsKSM reports whether anything is (or is about to be) writing
// host pages: a member booting, restarting, or being wiped, or an
// explicit operation in flight. Members that are merely Queued write
// nothing, so they do not keep the daemon alive — otherwise a launch
// starved for RAM that nothing will free would tick the daemon
// forever and Engine.Run would never return.
func (o *Orchestrator) needsKSM() bool {
	if o.ops > 0 {
		return true
	}
	for _, name := range o.order {
		switch o.members[name].state {
		case StateStarting, StateRestarting, StateStopping:
			return true
		}
	}
	return false
}

// scheduleKSM ticks the merge daemon while page-writing work is in
// flight. Capacity is enforced at page-write time, before merging;
// without this daemon a hundred-nym ramp would hit the host's
// out-of-memory wall on pages that are 90% mergeable base image. The
// daemon re-arms on every state transition and op start, and stops
// (with a final drain) as soon as nothing needs it, so an idle or
// starved fleet leaves the event queue empty.
func (o *Orchestrator) scheduleKSM() {
	if o.ksmScheduled || !o.needsKSM() {
		return
	}
	o.ksmScheduled = true
	o.eng.Schedule(o.cfg.KSMInterval, func() {
		o.ksmScheduled = false
		o.sampleRAM() // capture the pre-merge spike
		o.mgr.Host().KSMScan(o.cfg.KSMBudget)
		if o.needsKSM() {
			o.scheduleKSM()
			return
		}
		o.mgr.Host().Mem().ScanAll()
		o.sampleRAM()
	})
}

func (o *Orchestrator) sampleRAM() {
	if used := o.mgr.Host().Mem().UsedBytes(); used > o.peakRAMBytes {
		o.peakRAMBytes = used
	}
}
