package fleet

import (
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/sim"
)

// testVaultDest maps a member to one pseudonymous account per nym,
// mirroring the experiments' convention.
func testVaultDest(m *Member) core.VaultDest {
	return core.VaultDest{
		Providers:       []string{"dropbin"},
		Account:         "acct-" + m.Name(),
		AccountPassword: "cloud-pw",
	}
}

// preemptCfg arms preemption with a short dwell and a vault channel
// for persistent evictions.
func preemptCfg() Config {
	return Config{
		Preempt: PreemptConfig{
			Enabled:       true,
			Dwell:         2 * time.Second,
			VaultPassword: "fleet-pw",
			DestFor:       testVaultDest,
		},
	}
}

// A 2 GiB host admits two 400 MiB nymboxes (0.9 headroom minus the
// ~715 MiB hypervisor baseline), so a third launch queues — the
// pressure every preemption test builds on.

func TestPreemptionAdmitsHigherClass(t *testing.T) {
	eng, o := newFleet(t, 31, 2<<30, preemptCfg())
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelEphemeral)); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		sys := Spec{Name: "sysnym", Opts: smallOpts(core.ModelEphemeral), Priority: PrioritySystem}
		m, err := o.Launch(sys)
		if err != nil {
			t.Fatalf("launch system: %v", err)
		}
		for m.State() != StateRunning && m.State() != StateFailed {
			sim.Await(p, o.ChangeFuture())
		}
		if m.State() != StateRunning {
			t.Fatalf("system nym %v (%v), want running via preemption", m.State(), m.LastErr())
		}
	})
	st := o.Preemptions()
	if st.Terminated != 1 || st.Evicted != 0 {
		t.Fatalf("preemptions = %+v, want exactly one terminated ephemeral", st)
	}
	if got := o.CountState(StatePreempted); got != 1 {
		t.Fatalf("preempted members = %d, want 1", got)
	}
	// The victim's reservation was released: exactly two footprints
	// (one survivor + the system nym) remain reserved.
	want := 2 * smallOpts(core.ModelEphemeral).Footprint()
	if got := o.ReservedBytes(); got != want {
		t.Fatalf("reserved = %d, want %d", got, want)
	}
}

// TestPreemptionOrderEphemeralBeforePersistent is the ordering
// regression: even when the persistent member is the colder victim,
// the ephemeral one dies first — persistent nyms rank above ephemeral
// in the class ladder.
func TestPreemptionOrderEphemeralBeforePersistent(t *testing.T) {
	eng, o := newFleet(t, 33, 2<<30, preemptCfg())
	run(t, eng, func(p *sim.Proc) {
		// The persistent member launches (and runs) first, making it
		// the coldest; the ephemeral follows.
		per := smallOpts(core.ModelPersistent)
		per.GuardSeed = "oldtimer"
		if _, err := o.Launch(Spec{Name: "oldtimer", Opts: per}); err != nil {
			t.Fatalf("launch persistent: %v", err)
		}
		if err := o.AwaitRunning(p, 1); err != nil {
			t.Fatalf("await persistent: %v", err)
		}
		if _, err := o.Launch(Spec{Name: "drifter", Opts: smallOpts(core.ModelEphemeral)}); err != nil {
			t.Fatalf("launch ephemeral: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await both: %v", err)
		}
		sys := Spec{Name: "sysnym", Opts: smallOpts(core.ModelEphemeral), Priority: PrioritySystem}
		m, err := o.Launch(sys)
		if err != nil {
			t.Fatalf("launch system: %v", err)
		}
		for m.State() != StateRunning && m.State() != StateFailed {
			sim.Await(p, o.ChangeFuture())
		}
		if m.State() != StateRunning {
			t.Fatalf("system nym %v, want running", m.State())
		}
	})
	if st := o.Preemptions(); st.Terminated != 1 || st.Evicted != 0 {
		t.Fatalf("preemptions = %+v, want the ephemeral terminated and the persistent spared", st)
	}
	if got := o.Member("drifter").State(); got != StatePreempted {
		t.Fatalf("ephemeral member = %v, want preempted", got)
	}
	if got := o.Member("oldtimer").State(); got != StateRunning {
		t.Fatalf("persistent member = %v, want still running", got)
	}
}

// TestPreemptionEvictsPersistentThroughVault: when only persistent
// members stand below a System launch, the victim is checkpointed to
// the NymVault before its nymbox dies, so its durable identity
// survives the eviction.
func TestPreemptionEvictsPersistentThroughVault(t *testing.T) {
	eng, o := newFleet(t, 35, 2<<30, preemptCfg())
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelPersistent)); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		sys := Spec{Name: "sysnym", Opts: smallOpts(core.ModelEphemeral), Priority: PrioritySystem}
		m, err := o.Launch(sys)
		if err != nil {
			t.Fatalf("launch system: %v", err)
		}
		for m.State() != StateRunning && m.State() != StateFailed {
			sim.Await(p, o.ChangeFuture())
		}
		if m.State() != StateRunning {
			t.Fatalf("system nym %v, want running", m.State())
		}
	})
	if st := o.Preemptions(); st.Terminated != 0 || st.Evicted != 1 {
		t.Fatalf("preemptions = %+v, want exactly one vaulted eviction", st)
	}
	for _, m := range o.Members() {
		if m.State() != StatePreempted {
			continue
		}
		if _, ok := m.Checkpoint(); !ok {
			t.Fatalf("evicted member %s has no vault checkpoint", m.Name())
		}
	}
}

// TestNoPreemptionWithoutVictims: a System launch queued above only
// same-or-higher classes must not arm the preemptor; the queue stalls
// honestly and AwaitRunning errors instead of parking forever.
func TestNoPreemptionWithoutVictims(t *testing.T) {
	eng, o := newFleet(t, 37, 2<<30, preemptCfg())
	var awaitErr error
	run(t, eng, func(p *sim.Proc) {
		fillers := specs(2, core.ModelEphemeral)
		for i := range fillers {
			fillers[i].Priority = PrioritySystem
		}
		if _, err := o.LaunchAll(fillers); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		if _, err := o.Launch(Spec{Name: "third", Opts: smallOpts(core.ModelEphemeral), Priority: PrioritySystem}); err != nil {
			t.Fatalf("launch third: %v", err)
		}
		awaitErr = o.AwaitRunning(p, 3)
	})
	if awaitErr == nil {
		t.Fatal("AwaitRunning(3) returned nil on a 2-slot host with no victims")
	}
	if st := o.Preemptions(); st.Total() != 0 {
		t.Fatalf("preemptions = %+v, want none", st)
	}
}

// TestPreemptionEvictsPreconfiguredThroughVault is the regression for
// the durable-model gate: pre-configured nyms rank PriorityPersistent
// and carry durable identity, so a preempted one must be vaulted and
// counted as evicted — never terminated like an ephemeral.
func TestPreemptionEvictsPreconfiguredThroughVault(t *testing.T) {
	eng, o := newFleet(t, 39, 2<<30, preemptCfg())
	run(t, eng, func(p *sim.Proc) {
		pre := specs(2, core.ModelPreconfigured)
		if _, err := o.LaunchAll(pre); err != nil {
			t.Fatalf("launch filler: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Fatalf("await filler: %v", err)
		}
		sys := Spec{Name: "sysnym", Opts: smallOpts(core.ModelEphemeral), Priority: PrioritySystem}
		m, err := o.Launch(sys)
		if err != nil {
			t.Fatalf("launch system: %v", err)
		}
		for m.State() != StateRunning && m.State() != StateFailed {
			sim.Await(p, o.ChangeFuture())
		}
		if m.State() != StateRunning {
			t.Fatalf("system nym %v, want running", m.State())
		}
	})
	if st := o.Preemptions(); st.Terminated != 0 || st.Evicted != 1 {
		t.Fatalf("preemptions = %+v, want the preconfigured victim evicted, not terminated", st)
	}
	for _, m := range o.Members() {
		if m.State() != StatePreempted {
			continue
		}
		if _, ok := m.Checkpoint(); !ok {
			t.Fatalf("evicted preconfigured member %s has no vault checkpoint", m.Name())
		}
	}
}
