package fleet

// The checkpoint sweep scheduler: the daemonized, incremental save
// path. SaveSweep (fleet.go) is caller-driven and saves every
// persistent member whether or not it mutated; the scheduler here
// fires on an interval, reads each nym's dirty state (plumbed up from
// internal/vm through core.Nym), skips clean members entirely — no
// upload, no login, no provider round trip — and backs off
// exponentially while the orchestrator is under admission pressure or
// a preemption pass is armed, so checkpointing never competes with
// ramps or evictions for the wire and the chip.
//
// Unlike the KSM/preemption daemons, the sweep scheduler is
// explicitly started and stopped (StartSweeps/StopSweeps): a periodic
// checkpoint is open-ended work, so only the caller knows when the
// fleet's useful life is over and the engine should drain.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nymix/internal/cloud"
	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// ErrSweepsRunning is returned by StartSweeps when a scheduler is
// already installed.
var ErrSweepsRunning = nymerr.New(CodeSweepsRunning, "fleet: sweep scheduler already running")

// saveClaim is one holder's claim on a member's in-flight save (see
// Member.saving). Each claimant allocates its own token and releases
// only a claim it still holds.
type saveClaim struct{}

// releaseClaim clears m's save claim if tok still holds it, waking
// anyone parked on the flag. Releasing a claim another holder has
// since taken is a no-op. The release also re-arms the preemption
// daemon: victims() excludes saving members, so a pressure episode
// that found every adequate victim mid-save disarmed itself and
// nothing else would re-evaluate it — the freed member may be the
// victim a parked launch is waiting on.
func (o *Orchestrator) releaseClaim(m *Member, tok *saveClaim) {
	if m.saving == tok {
		m.saving = nil
		o.schedulePreempt()
		o.notify()
	}
}

// SweepConfig parameterizes the checkpoint sweep scheduler (and a
// single SweepOnce pass). Zero values take defaults.
type SweepConfig struct {
	// Interval is the scheduler's firing period (default 30s).
	Interval time.Duration
	// Password seals the checkpoints; DestFor maps each member to its
	// vault destination. Both are required for StartSweeps.
	Password string
	DestFor  func(*Member) core.VaultDest
	// Stagger spaces successive save launches inside one sweep
	// (default: the orchestrator's SaveStagger). Concurrency caps
	// in-flight saves per sweep (default: SaveConcurrency).
	Stagger     time.Duration
	Concurrency int
	// SaveAll disables dirty-skip: every Running persistent member is
	// saved, mutated or not — the naive mode the scheduled sweep is
	// benchmarked against.
	SaveAll bool
	// MaxBackoff caps the exponential backoff applied while the
	// orchestrator is under admission pressure or preempting
	// (default 4x Interval). It is also the staleness ceiling: once
	// the delay is fully backed off, ticks sweep even under pressure —
	// pressure defers checkpoints, it never cancels them, so a fleet
	// pinned at capacity still checkpoints at MaxBackoff cadence.
	MaxBackoff time.Duration
}

func (c *SweepConfig) fillDefaults(base Config) {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Stagger <= 0 {
		c.Stagger = base.SaveStagger
	}
	if c.Concurrency <= 0 {
		c.Concurrency = base.SaveConcurrency
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 4 * c.Interval
	}
}

// SweepRecord is the telemetry of one scheduled sweep pass (or one
// backed-off tick).
type SweepRecord struct {
	At      sim.Time      // when the pass started
	Elapsed time.Duration // launch of first save to completion of last
	// BackedOff marks a tick the scheduler skipped under admission or
	// preemption pressure; all other fields are zero.
	BackedOff bool
	Eligible  int // Running persistent members considered
	Saves     int // checkpoints performed
	Skipped   int // clean members skipped (the dirty-skip win)
	Busy      int // members already mid-save, left alone
	Errors    int // failed checkpoints
	// UploadedBytes is vault wire actually shipped; LoginBytes is the
	// per-provider session-setup wire charged for each launched save.
	// BaselineBytes prices the monolithic re-upload of what was saved.
	UploadedBytes int64
	LoginBytes    int64
	BaselineBytes int64
	NewChunks     int
	TotalChunks   int
}

// WireBytes is the pass's total checkpoint wire: uploads plus session
// setup.
func (r SweepRecord) WireBytes() int64 { return r.UploadedBytes + r.LoginBytes }

// DirtySkipRatio is the fraction of eligible members skipped as clean
// (1.0 = a fully idle fleet cost nothing).
func (r SweepRecord) DirtySkipRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(r.Eligible)
}

// SweepReport aggregates every recorded sweep pass — the typed
// telemetry the experiments render: total wire, dirty-skip ratio, and
// per-sweep latency percentiles.
type SweepReport struct {
	Sweeps   int // completed passes (backed-off ticks excluded)
	Backoffs int // ticks skipped under pressure
	Eligible int
	Saves    int
	Skips    int
	Busy     int
	Errors   int
	// UploadedBytes/LoginBytes/BaselineBytes sum the per-pass figures.
	UploadedBytes int64
	LoginBytes    int64
	BaselineBytes int64
	NewChunks     int
	// LatencyP50/P95 are nearest-rank percentiles over completed
	// passes' Elapsed times.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	Records    []SweepRecord
}

// WireBytes is the total checkpoint wire across all passes.
func (r SweepReport) WireBytes() int64 { return r.UploadedBytes + r.LoginBytes }

// DirtySkipRatio is the overall fraction of eligible member-passes
// skipped as clean.
func (r SweepReport) DirtySkipRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Skips) / float64(r.Eligible)
}

// SweepReport builds the aggregate report from every pass recorded so
// far (scheduler ticks and explicit SweepOnce calls alike).
func (o *Orchestrator) SweepReport() SweepReport {
	rep := SweepReport{Records: append([]SweepRecord(nil), o.sweepRecs...)}
	var lats []time.Duration
	for _, rec := range o.sweepRecs {
		if rec.BackedOff {
			rep.Backoffs++
			continue
		}
		rep.Sweeps++
		rep.Eligible += rec.Eligible
		rep.Saves += rec.Saves
		rep.Skips += rec.Skipped
		rep.Busy += rec.Busy
		rep.Errors += rec.Errors
		rep.UploadedBytes += rec.UploadedBytes
		rep.LoginBytes += rec.LoginBytes
		rep.BaselineBytes += rec.BaselineBytes
		rep.NewChunks += rec.NewChunks
		lats = append(lats, rec.Elapsed)
	}
	rep.LatencyP50 = LatencyPercentile(lats, 0.50)
	rep.LatencyP95 = LatencyPercentile(lats, 0.95)
	return rep
}

// SweepErrors returns every error a recorded sweep pass produced, in
// order. Tests use it to assert that interleavings (crash injection,
// migration, preemption) never drive the save path into an illegal
// state, rather than just counting failures.
func (o *Orchestrator) SweepErrors() []error {
	return append([]error(nil), o.sweepErrs...)
}

// LatencyPercentile returns the nearest-rank q-quantile of ds, or 0.
// Exported so layered sweep telemetry (the cluster coordinator, the
// experiments) renders percentiles the same way.
func LatencyPercentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// StartSweeps installs the checkpoint sweep scheduler: the first pass
// fires one Interval from now and the scheduler re-arms after every
// pass until StopSweeps. While the orchestrator is under admission
// pressure (launches queued for RAM) or a preemption pass is armed or
// in flight, ticks are skipped and the delay doubles up to MaxBackoff;
// once saturated, ticks sweep even under pressure (MaxBackoff is the
// checkpoint-staleness ceiling), and the first calm tick resets the
// cadence.
func (o *Orchestrator) StartSweeps(cfg SweepConfig) error {
	if o.sweepCfg != nil {
		return ErrSweepsRunning
	}
	if cfg.Password == "" || cfg.DestFor == nil {
		return nymerr.New(CodeSweepUnconfigured, "fleet: sweep scheduler needs Password and DestFor")
	}
	cfg.fillDefaults(o.cfg)
	o.sweepCfg = &cfg
	o.sweepDelay = cfg.Interval
	o.sweepTimer = o.eng.Schedule(cfg.Interval, o.sweepTick)
	return nil
}

// StopSweeps uninstalls the scheduler. A pass already in flight runs
// to completion (AwaitSweepsIdle waits it out); no further tick fires.
func (o *Orchestrator) StopSweeps() {
	if o.sweepTimer != nil {
		o.sweepTimer.Cancel()
		o.sweepTimer = nil
	}
	o.sweepCfg = nil
}

// SweepsRunning reports whether the scheduler is installed.
func (o *Orchestrator) SweepsRunning() bool { return o.sweepCfg != nil }

// AwaitSweepsIdle parks the caller until no sweep pass is in flight.
// Call it after StopSweeps for a clean teardown boundary.
func (o *Orchestrator) AwaitSweepsIdle(p *sim.Proc) {
	for o.sweeping > 0 {
		o.parkOnChange(p)
	}
}

// underSavePressure reports the conditions under which the scheduler
// stands aside: launches queued for RAM or wire admission (a ramp or
// migration wants the wire and the chip first; cover-traffic budgets
// count too) or the preemption machinery armed or mid-pass
// (checkpointing a victim it is about to evict would race the
// eviction's own save).
func (o *Orchestrator) underSavePressure() bool {
	return o.ram.queued() > 0 || o.wire.queued() > 0 || o.preemptArmed || o.preempting
}

// sweepTick is one scheduler firing.
func (o *Orchestrator) sweepTick() {
	cfg := o.sweepCfg
	if cfg == nil {
		return
	}
	if o.underSavePressure() && o.sweepDelay < cfg.MaxBackoff {
		o.sweepRecs = append(o.sweepRecs, SweepRecord{At: o.eng.Now(), BackedOff: true})
		o.sweepDelay *= 2
		if o.sweepDelay > cfg.MaxBackoff {
			o.sweepDelay = cfg.MaxBackoff
		}
		o.sweepTimer = o.eng.Schedule(o.sweepDelay, o.sweepTick)
		return
	}
	// Either calm, or the backoff is saturated at MaxBackoff: sweep
	// anyway. Sustained pressure (a fleet pinned at capacity keeps its
	// admission queue non-empty forever) must defer checkpoints, never
	// starve them — MaxBackoff is the staleness ceiling.
	if !o.underSavePressure() {
		o.sweepDelay = cfg.Interval
	}
	if o.sweeping > 0 {
		// A manual SweepOnce (or cluster-coordinated pass) is mid-
		// flight; piling a second pass on top would double-checkpoint.
		o.sweepTimer = o.eng.Schedule(cfg.Interval, o.sweepTick)
		return
	}
	// Count the pass as in flight from this instant, not from when its
	// proc first runs: eng.Go only schedules a zero-delay start event,
	// and a StopSweeps+AwaitSweepsIdle at the same timestamp would
	// otherwise see zero in flight and let StopAll race the escaped
	// pass's saves.
	o.sweeping++
	o.eng.Go("fleet/sweep", func(p *sim.Proc) {
		o.SweepOnce(p, *cfg)
		o.sweeping--
		o.notify()
		// Re-arm only if THIS scheduler installation is still the live
		// one: a StopSweeps/StartSweeps cycle during the pass has
		// already armed its own tick chain, and re-arming here would
		// run two chains at double cadence.
		if o.sweepCfg == cfg {
			o.sweepTimer = o.eng.Schedule(o.sweepDelay, o.sweepTick)
		}
	})
}

// SweepOnce runs one checkpoint sweep pass immediately on the calling
// process and records its telemetry: every Running persistent member
// is considered; clean members are skipped (unless SaveAll), members
// already mid-save are left alone, and the rest are checkpointed with
// the pass's stagger and concurrency bound. The cluster-wide sweep
// coordinator calls this per host inside its stagger slots.
func (o *Orchestrator) SweepOnce(p *sim.Proc, cfg SweepConfig) (SweepRecord, error) {
	cfg.fillDefaults(o.cfg)
	o.sweeping++
	rec, err := o.runSweep(p, cfg)
	o.sweeping--
	o.sweepRecs = append(o.sweepRecs, rec)
	if err != nil {
		o.sweepErrs = append(o.sweepErrs, err)
	}
	o.notify()
	return rec, err
}

// runSweep is the shared sweep engine under SaveSweep (SaveAll, the
// caller-driven full checkpoint) and SweepOnce (the scheduler's
// dirty-skipping pass).
func (o *Orchestrator) runSweep(p *sim.Proc, cfg SweepConfig) (SweepRecord, error) {
	o.opStarted()
	defer o.opDone()
	rec := SweepRecord{At: p.Now()}
	gate := newSem(o.eng, int64(cfg.Concurrency))
	var futs []*sim.Future[core.SaveResult]
	var saved []*Member
	var dests []core.VaultDest
	var claims []*saveClaim
	first := true
	for _, m := range o.Members() {
		if m.state != StateRunning || m.nym == nil || m.nym.Model() != core.ModelPersistent {
			continue
		}
		rec.Eligible++
		if m.saving != nil {
			// Another pass (a migration's CheckpointNym, an eviction)
			// holds this member's save slot; touching it here would
			// double-checkpoint a nym mid-operation.
			rec.Busy++
			continue
		}
		if !cfg.SaveAll && !m.nym.StateDirty() {
			rec.Skipped++
			continue
		}
		if !first {
			p.Sleep(cfg.Stagger)
		}
		first = false
		sim.Await(p, gate.reserve(1))
		// The stagger sleep and the gate wait both yield; the member
		// may have crashed, stopped, or been claimed by a migration's
		// checkpoint in the meantime. Count it as Busy so every
		// eligible member lands in exactly one outcome bucket and the
		// dirty-skip ratio stays honest.
		if m.state != StateRunning || m.nym == nil || m.saving != nil {
			gate.release(1)
			rec.Busy++
			continue
		}
		dest := cfg.DestFor(m)
		claim := &saveClaim{}
		m.saving = claim
		fut := o.mgr.StoreNymVaultAsync(m.nym, cfg.Password, dest)
		member := m
		// Release the claim and the gate slot (and wake saving-flag
		// waiters) the moment the save completes, so later launches in
		// this pass overlap with it. The claim is ALSO released in the
		// await loop below: OnDone fires as a zero-delay event, which
		// would leave it visibly stale to whoever runs right after this
		// pass's final await returns. Both releases are token-guarded,
		// so whichever runs second — possibly after a waiter has
		// re-claimed the member for its own save — is a no-op.
		fut.OnDone(func() {
			o.releaseClaim(member, claim)
			gate.release(1)
		})
		futs = append(futs, fut)
		saved = append(saved, m)
		dests = append(dests, dest)
		claims = append(claims, claim)
		rec.LoginBytes += int64(len(dest.Providers)) * cloud.LoginWireBytes
	}
	var errs []error
	for i, f := range futs {
		res, err := sim.Await(p, f)
		o.releaseClaim(saved[i], claims[i])
		if err != nil {
			rec.Errors++
			werr := fmt.Errorf("fleet: save %q: %w", res.Nym, err)
			errs = append(errs, werr)
			o.recordFailure(res.Nym, "sweep", werr)
			continue
		}
		rec.Saves++
		rec.UploadedBytes += res.Stats.UploadedBytes
		rec.BaselineBytes += res.Stats.BaselineWireBytes
		rec.NewChunks += res.Stats.NewChunks
		rec.TotalChunks += res.Stats.TotalChunks
		// A successful save becomes the member's restart checkpoint.
		saved[i].checkpoint = &Checkpoint{Password: cfg.Password, Dest: dests[i]}
	}
	rec.Elapsed = p.Now() - rec.At
	o.sampleRAM()
	return rec, errors.Join(errs...)
}
