package fleet

// The checkpoint sweep scheduler: the daemonized, incremental save
// path. SaveSweep (fleet.go) is caller-driven and saves every
// persistent member whether or not it mutated; the scheduler here
// fires on an interval, reads each nym's dirty state (plumbed up from
// internal/vm through core.Nym), skips clean members entirely — no
// upload, no login, no provider round trip — and backs off
// exponentially while the orchestrator is under admission pressure or
// a preemption pass is armed, so checkpointing never competes with
// ramps or evictions for the wire and the chip.
//
// Unlike the KSM/preemption daemons, the sweep scheduler is
// explicitly started and stopped (StartSweeps/StopSweeps): a periodic
// checkpoint is open-ended work, so only the caller knows when the
// fleet's useful life is over and the engine should drain.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nymix/internal/cloud"
	"nymix/internal/core"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// ErrSweepsRunning is returned by StartSweeps when a scheduler is
// already installed.
var ErrSweepsRunning = nymerr.New(CodeSweepsRunning, "fleet: sweep scheduler already running")

// saveClaim is one holder's claim on a member's in-flight save (see
// Member.saving). Each claimant allocates its own token and releases
// only a claim it still holds.
type saveClaim struct{}

// releaseClaim clears m's save claim if tok still holds it, waking
// anyone parked on the flag. Releasing a claim another holder has
// since taken is a no-op. The release also re-arms the preemption
// daemon: victims() excludes saving members, so a pressure episode
// that found every adequate victim mid-save disarmed itself and
// nothing else would re-evaluate it — the freed member may be the
// victim a parked launch is waiting on.
func (o *Orchestrator) releaseClaim(m *Member, tok *saveClaim) {
	if m.saving == tok {
		m.saving = nil
		o.schedulePreempt()
		o.notify()
	}
}

// SweepConfig parameterizes the checkpoint sweep scheduler (and a
// single SweepOnce pass). Zero values take defaults.
type SweepConfig struct {
	// Interval is the scheduler's firing period (default 30s).
	Interval time.Duration
	// Password seals the checkpoints; DestFor maps each member to its
	// vault destination. Both are required for StartSweeps.
	Password string
	DestFor  func(*Member) core.VaultDest
	// Stagger spaces successive save launches inside one sweep
	// (default: the orchestrator's SaveStagger). Concurrency caps
	// in-flight saves per sweep (default: SaveConcurrency).
	Stagger     time.Duration
	Concurrency int
	// SaveAll disables dirty-skip: every Running persistent member is
	// saved, mutated or not — the naive mode the scheduled sweep is
	// benchmarked against.
	SaveAll bool
	// MaxBackoff caps the exponential backoff applied while the
	// orchestrator is under admission pressure or preempting
	// (default 4x Interval). It is also the staleness ceiling: once
	// the delay is fully backed off, ticks sweep even under pressure —
	// pressure defers checkpoints, it never cancels them, so a fleet
	// pinned at capacity still checkpoints at MaxBackoff cadence.
	MaxBackoff time.Duration
	// Adaptive scales each member's sweep eligibility from its
	// observed dirty byte-rate: a pass still considers every Running
	// persistent member, but a dirty member whose churn has not yet
	// accumulated a delta worth shipping is Deferred rather than
	// saved. Hot members checkpoint every Interval; cold members
	// stretch toward their RPO ceiling.
	Adaptive bool
	// RPO is the per-member checkpoint-staleness ceiling the adaptive
	// cadence enforces (default 4x MaxBackoff): no dirty member is
	// deferred past the point where its oldest unsaved mutation could
	// be RPO old, provided passes keep starting within NextPassIn of
	// each other and complete within one Interval. It is the
	// per-member analogue of MaxBackoff's scheduler-wide saturation
	// guarantee — and composes with it: the scheduler's own tick
	// horizon (backoff included) is folded into NextPassIn, so the
	// ceiling holds through pressure episodes, not just calm ones.
	RPO time.Duration
	// RPOFor overrides the staleness ceiling per member (nil or a
	// non-positive return: the member uses RPO).
	RPOFor func(*Member) time.Duration
	// TargetDeltaBytes is the dirty disk delta one save should
	// amortize (default 256 KiB): the adaptive cadence stretches a
	// member's interval until its observed rate would accumulate this
	// much, and a member already holding this much dirt saves now.
	TargetDeltaBytes int64
	// NextPassIn is the caller's expected time until the next pass
	// over this fleet (default MaxBackoff — the scheduler's own
	// worst-case re-arm). The adaptive cadence never defers a member
	// whose RPO deadline falls inside this horizon: deferral is only
	// legal when a later pass can still honor the ceiling.
	NextPassIn time.Duration
}

func (c *SweepConfig) fillDefaults(base Config) {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Stagger <= 0 {
		c.Stagger = base.SaveStagger
	}
	if c.Concurrency <= 0 {
		c.Concurrency = base.SaveConcurrency
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 4 * c.Interval
	}
	if c.RPO <= 0 {
		c.RPO = 4 * c.MaxBackoff
	}
	if c.TargetDeltaBytes <= 0 {
		c.TargetDeltaBytes = 256 << 10
	}
	if c.NextPassIn <= 0 {
		c.NextPassIn = c.MaxBackoff
	}
}

// SweepRecord is the telemetry of one scheduled sweep pass (or one
// backed-off tick).
type SweepRecord struct {
	At      sim.Time      // when the pass started
	Elapsed time.Duration // launch of first save to completion of last
	// BackedOff marks a tick the scheduler skipped under admission or
	// preemption pressure; all other fields are zero.
	BackedOff bool
	Eligible  int // Running persistent members considered
	Saves     int // checkpoints performed
	Skipped   int // clean members skipped (the dirty-skip win)
	Deferred  int // dirty members whose adaptive cadence was not yet due
	Busy      int // members already mid-save, left alone
	Errors    int // failed checkpoints
	// UploadedBytes is vault wire actually shipped; LoginBytes is the
	// per-provider session-setup wire charged for each launched save.
	// BaselineBytes prices the monolithic re-upload of what was saved.
	UploadedBytes int64
	LoginBytes    int64
	BaselineBytes int64
	NewChunks     int
	TotalChunks   int
}

// WireBytes is the pass's total checkpoint wire: uploads plus session
// setup.
func (r SweepRecord) WireBytes() int64 { return r.UploadedBytes + r.LoginBytes }

// DirtySkipRatio is the fraction of eligible members skipped as clean
// (1.0 = a fully idle fleet cost nothing).
func (r SweepRecord) DirtySkipRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(r.Eligible)
}

// SweepReport aggregates every recorded sweep pass — the typed
// telemetry the experiments render: total wire, dirty-skip ratio, and
// per-sweep latency percentiles.
type SweepReport struct {
	Sweeps   int // completed passes (backed-off ticks excluded)
	Backoffs int // ticks skipped under pressure
	Eligible int
	Saves    int
	Skips    int
	Deferred int // adaptive-cadence deferrals (dirty, not yet due)
	Busy     int
	Errors   int
	// UploadedBytes/LoginBytes/BaselineBytes sum the per-pass figures.
	UploadedBytes int64
	LoginBytes    int64
	BaselineBytes int64
	NewChunks     int
	// TotalChunks sums each saved checkpoint's full manifest chunk
	// count — the dedup denominator NewChunks is read against.
	TotalChunks int
	// LatencyP50/P95 are nearest-rank percentiles over completed
	// passes' Elapsed times.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	// StalenessP50/P95/Max are nearest-rank percentiles over the
	// per-save checkpoint-staleness samples (see CheckpointStaleness):
	// how old each saved member's oldest unsaved mutation could have
	// been when its save launched.
	StalenessP50 time.Duration
	StalenessP95 time.Duration
	StalenessMax time.Duration
	Records      []SweepRecord
}

// WireBytes is the total checkpoint wire across all passes.
func (r SweepReport) WireBytes() int64 { return r.UploadedBytes + r.LoginBytes }

// DirtySkipRatio is the overall fraction of eligible member-passes
// skipped as clean.
func (r SweepReport) DirtySkipRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Skips) / float64(r.Eligible)
}

// SweepReport builds the aggregate report from every pass recorded so
// far (scheduler ticks and explicit SweepOnce calls alike).
func (o *Orchestrator) SweepReport() SweepReport {
	rep := SweepReport{Records: append([]SweepRecord(nil), o.sweepRecs...)}
	var lats []time.Duration
	for _, rec := range o.sweepRecs {
		if rec.BackedOff {
			rep.Backoffs++
			continue
		}
		rep.Sweeps++
		rep.Eligible += rec.Eligible
		rep.Saves += rec.Saves
		rep.Skips += rec.Skipped
		rep.Deferred += rec.Deferred
		rep.Busy += rec.Busy
		rep.Errors += rec.Errors
		rep.UploadedBytes += rec.UploadedBytes
		rep.LoginBytes += rec.LoginBytes
		rep.BaselineBytes += rec.BaselineBytes
		rep.NewChunks += rec.NewChunks
		rep.TotalChunks += rec.TotalChunks
		lats = append(lats, rec.Elapsed)
	}
	rep.LatencyP50 = LatencyPercentile(lats, 0.50)
	rep.LatencyP95 = LatencyPercentile(lats, 0.95)
	rep.StalenessP50 = LatencyPercentile(o.sweepStale, 0.50)
	rep.StalenessP95 = LatencyPercentile(o.sweepStale, 0.95)
	for _, s := range o.sweepStale {
		if s > rep.StalenessMax {
			rep.StalenessMax = s
		}
	}
	return rep
}

// CheckpointStaleness returns the per-save staleness samples behind
// the report's percentiles, in save-launch order. The cluster
// coordinator pools these across hosts so its staleness percentiles
// weigh every save equally rather than averaging per-host quantiles.
func (o *Orchestrator) CheckpointStaleness() []time.Duration {
	return append([]time.Duration(nil), o.sweepStale...)
}

// SweepErrors returns every error a recorded sweep pass produced, in
// order. Tests use it to assert that interleavings (crash injection,
// migration, preemption) never drive the save path into an illegal
// state, rather than just counting failures.
func (o *Orchestrator) SweepErrors() []error {
	return append([]error(nil), o.sweepErrs...)
}

// LatencyPercentile returns the nearest-rank q-quantile of ds, or 0.
// Exported so layered sweep telemetry (the cluster coordinator, the
// experiments) renders percentiles the same way.
func LatencyPercentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// StartSweeps installs the checkpoint sweep scheduler: the first pass
// fires one Interval from now and the scheduler re-arms after every
// pass until StopSweeps. While the orchestrator is under admission
// pressure (launches queued for RAM) or a preemption pass is armed or
// in flight, ticks are skipped and the delay doubles up to MaxBackoff;
// once saturated, ticks sweep even under pressure (MaxBackoff is the
// checkpoint-staleness ceiling), and the first calm tick resets the
// cadence.
func (o *Orchestrator) StartSweeps(cfg SweepConfig) error {
	if o.sweepCfg != nil {
		return ErrSweepsRunning
	}
	if cfg.Password == "" || cfg.DestFor == nil {
		return nymerr.New(CodeSweepUnconfigured, "fleet: sweep scheduler needs Password and DestFor")
	}
	cfg.fillDefaults(o.cfg)
	o.sweepCfg = &cfg
	o.sweepDelay = cfg.Interval
	o.sweepTimer = o.eng.Schedule(cfg.Interval, o.sweepTick)
	return nil
}

// StopSweeps uninstalls the scheduler. A pass already in flight runs
// to completion (AwaitSweepsIdle waits it out); no further tick fires.
func (o *Orchestrator) StopSweeps() {
	if o.sweepTimer != nil {
		o.sweepTimer.Cancel()
		o.sweepTimer = nil
	}
	o.sweepCfg = nil
}

// SweepsRunning reports whether the scheduler is installed.
func (o *Orchestrator) SweepsRunning() bool { return o.sweepCfg != nil }

// AwaitSweepsIdle parks the caller until no sweep pass is in flight.
// Call it after StopSweeps for a clean teardown boundary.
func (o *Orchestrator) AwaitSweepsIdle(p *sim.Proc) {
	for o.sweeping > 0 {
		o.parkOnChange(p)
	}
}

// underSavePressure reports the conditions under which the scheduler
// stands aside: launches queued for RAM or wire admission (a ramp or
// migration wants the wire and the chip first; cover-traffic budgets
// count too) or the preemption machinery armed or mid-pass
// (checkpointing a victim it is about to evict would race the
// eviction's own save).
func (o *Orchestrator) underSavePressure() bool {
	return o.ram.queued() > 0 || o.wire.queued() > 0 || o.preemptArmed || o.preempting
}

// sweepTick is one scheduler firing.
func (o *Orchestrator) sweepTick() {
	cfg := o.sweepCfg
	if cfg == nil {
		return
	}
	if o.underSavePressure() && o.sweepDelay < cfg.MaxBackoff {
		o.sweepRecs = append(o.sweepRecs, SweepRecord{At: o.eng.Now(), BackedOff: true})
		o.sweepDelay *= 2
		if o.sweepDelay > cfg.MaxBackoff {
			o.sweepDelay = cfg.MaxBackoff
		}
		o.sweepTimer = o.eng.Schedule(o.sweepDelay, o.sweepTick)
		return
	}
	// Either calm, or the backoff is saturated at MaxBackoff: sweep
	// anyway. Sustained pressure (a fleet pinned at capacity keeps its
	// admission queue non-empty forever) must defer checkpoints, never
	// starve them — MaxBackoff is the staleness ceiling.
	if !o.underSavePressure() {
		o.sweepDelay = cfg.Interval
	}
	if o.sweeping > 0 {
		// A manual SweepOnce (or cluster-coordinated pass) is mid-
		// flight; piling a second pass on top would double-checkpoint.
		o.sweepTimer = o.eng.Schedule(cfg.Interval, o.sweepTick)
		return
	}
	// Count the pass as in flight from this instant, not from when its
	// proc first runs: eng.Go only schedules a zero-delay start event,
	// and a StopSweeps+AwaitSweepsIdle at the same timestamp would
	// otherwise see zero in flight and let StopAll race the escaped
	// pass's saves.
	// The adaptive cadence may only defer a member when a later pass
	// can still honor its RPO. The next pass is NOT simply one
	// sweepDelay away: if pressure arrives right after this (calm)
	// pass, the following ticks back off — Interval, 2x, 4x, ... up
	// to MaxBackoff — before a pass is forced at saturation. That
	// chain sums to under twice MaxBackoff, so that is the horizon
	// the cadence must assume.
	run := *cfg
	run.NextPassIn = 2 * cfg.MaxBackoff
	o.sweeping++
	o.eng.Go("fleet/sweep", func(p *sim.Proc) {
		o.SweepOnce(p, run)
		o.sweeping--
		o.notify()
		// Re-arm only if THIS scheduler installation is still the live
		// one: a StopSweeps/StartSweeps cycle during the pass has
		// already armed its own tick chain, and re-arming here would
		// run two chains at double cadence.
		if o.sweepCfg == cfg {
			o.sweepTimer = o.eng.Schedule(o.sweepDelay, o.sweepTick)
		}
	})
}

// SweepOnce runs one checkpoint sweep pass immediately on the calling
// process and records its telemetry: every Running persistent member
// is considered; clean members are skipped (unless SaveAll), members
// already mid-save are left alone, and the rest are checkpointed with
// the pass's stagger and concurrency bound. The cluster-wide sweep
// coordinator calls this per host inside its stagger slots.
func (o *Orchestrator) SweepOnce(p *sim.Proc, cfg SweepConfig) (SweepRecord, error) {
	cfg.fillDefaults(o.cfg)
	o.sweeping++
	rec, err := o.runSweep(p, cfg)
	o.sweeping--
	o.sweepRecs = append(o.sweepRecs, rec)
	if err != nil {
		o.sweepErrs = append(o.sweepErrs, err)
	}
	o.notify()
	return rec, err
}

// cadenceDefers decides whether the adaptive cadence holds a dirty
// member back from this pass. The member saves now when any of:
//
//   - it has no baseline checkpoint yet (nothing to restore from, so
//     there is no cadence to stretch);
//   - its RPO deadline falls within NextPassIn plus one Interval —
//     this pass is the last one guaranteed to honor the ceiling (the
//     extra Interval absorbs the in-pass delay before a later pass
//     reaches this member: schedulers re-arm only after a pass
//     completes, so the true inter-visit gap is NextPassIn plus the
//     pass's own elapsed time);
//   - its accumulated dirty disk already amortizes a save
//     (>= TargetDeltaBytes);
//   - its observed byte-rate says TargetDeltaBytes accumulates in
//     less than the time already waited (clamped to [Interval, RPO]).
//
// Otherwise the member is deferred: its delta is not yet worth a
// login and a manifest, and a later pass can still meet its RPO.
func (o *Orchestrator) cadenceDefers(m *Member, cfg SweepConfig, now sim.Time) bool {
	m.cad.observe(now, m.nym.DirtyDiskTotal())
	if m.cad.lastSave == 0 && m.cad.cleanAt == 0 {
		return false
	}
	rpo := cfg.RPO
	if cfg.RPOFor != nil {
		if r := cfg.RPOFor(m); r > 0 {
			rpo = r
		}
	}
	since := m.dirtySince()
	if now+cfg.NextPassIn+cfg.Interval >= since+rpo {
		return false
	}
	if m.nym.DirtyState().DiskBytes >= cfg.TargetDeltaBytes {
		return false
	}
	desired := rpo
	if m.cad.rate > 0 {
		if d := time.Duration(float64(cfg.TargetDeltaBytes) / m.cad.rate * float64(time.Second)); d < desired {
			desired = d
		}
	}
	if desired < cfg.Interval {
		desired = cfg.Interval
	}
	return now < since+desired
}

// runSweep is the shared sweep engine under SaveSweep (SaveAll, the
// caller-driven full checkpoint) and SweepOnce (the scheduler's
// dirty-skipping pass).
func (o *Orchestrator) runSweep(p *sim.Proc, cfg SweepConfig) (SweepRecord, error) {
	o.opStarted()
	defer o.opDone()
	rec := SweepRecord{At: p.Now()}
	gate := newSem(o.eng, int64(cfg.Concurrency))
	var futs []*sim.Future[core.SaveResult]
	var saved []*Member
	var dests []core.VaultDest
	var claims []*saveClaim
	var stales []time.Duration // per-launch staleness; recorded on success
	var cleanAts []sim.Time    // pre-launch cleanAt; restored on failure
	var launchAts []sim.Time   // when each save launched
	first := true
	for _, m := range o.Members() {
		if m.state != StateRunning || m.nym == nil || m.nym.Model() != core.ModelPersistent {
			continue
		}
		rec.Eligible++
		if m.saving != nil {
			// Another pass (a migration's CheckpointNym, an eviction)
			// holds this member's save slot; touching it here would
			// double-checkpoint a nym mid-operation.
			rec.Busy++
			continue
		}
		dirty := m.nym.StateDirty()
		if !cfg.SaveAll && !dirty {
			// A clean observation re-anchors the staleness clock and
			// feeds the rate estimator a zero-delta round, so an idle
			// member's rate decays instead of reading hot forever.
			rec.Skipped++
			m.cad.observe(p.Now(), m.nym.DirtyDiskTotal())
			m.cad.cleanAt = p.Now()
			continue
		}
		if cfg.Adaptive && !cfg.SaveAll && o.cadenceDefers(m, cfg, p.Now()) {
			rec.Deferred++
			continue
		}
		if !first {
			p.Sleep(cfg.Stagger)
		}
		first = false
		sim.Await(p, gate.reserve(1))
		// The stagger sleep and the gate wait both yield; the member
		// may have crashed, stopped, or been claimed by a migration's
		// checkpoint in the meantime. Count it as Busy so every
		// eligible member lands in exactly one outcome bucket and the
		// dirty-skip ratio stays honest.
		if m.state != StateRunning || m.nym == nil || m.saving != nil {
			gate.release(1)
			rec.Busy++
			continue
		}
		// Sample staleness at launch: the checkpoint about to ship
		// captures everything up to now, so its staleness is the age
		// of the oldest mutation it could have been waiting on. Clean
		// members swept under SaveAll contribute no sample — nothing
		// was at risk.
		stale := time.Duration(-1)
		if dirty {
			stale = p.Now() - m.dirtySince()
		}
		cleanAts = append(cleanAts, m.cad.cleanAt)
		stales = append(stales, stale)
		launchAts = append(launchAts, p.Now())
		m.cad.cleanAt = p.Now()
		m.cad.lastSave = p.Now()
		dest := cfg.DestFor(m)
		claim := &saveClaim{}
		m.saving = claim
		fut := o.mgr.StoreNymVaultAsync(m.nym, cfg.Password, dest)
		member := m
		// Release the claim and the gate slot (and wake saving-flag
		// waiters) the moment the save completes, so later launches in
		// this pass overlap with it. The claim is ALSO released in the
		// await loop below: OnDone fires as a zero-delay event, which
		// would leave it visibly stale to whoever runs right after this
		// pass's final await returns. Both releases are token-guarded,
		// so whichever runs second — possibly after a waiter has
		// re-claimed the member for its own save — is a no-op.
		fut.OnDone(func() {
			o.releaseClaim(member, claim)
			gate.release(1)
		})
		futs = append(futs, fut)
		saved = append(saved, m)
		dests = append(dests, dest)
		claims = append(claims, claim)
		rec.LoginBytes += int64(len(dest.Providers)) * cloud.LoginWireBytes
	}
	var errs []error
	for i, f := range futs {
		res, err := sim.Await(p, f)
		o.releaseClaim(saved[i], claims[i])
		if err != nil {
			rec.Errors++
			werr := fmt.Errorf("fleet: save %q: %w", res.Nym, err)
			errs = append(errs, werr)
			o.recordFailure(res.Nym, "sweep", werr)
			// The checkpoint never landed, so the member's dirt is as
			// old as it was: put the staleness clock back unless some
			// later save of this member already moved it.
			if saved[i].cad.cleanAt == launchAts[i] {
				saved[i].cad.cleanAt = cleanAts[i]
			}
			continue
		}
		rec.Saves++
		if stales[i] >= 0 {
			o.sweepStale = append(o.sweepStale, stales[i])
		}
		rec.UploadedBytes += res.Stats.UploadedBytes
		rec.BaselineBytes += res.Stats.BaselineWireBytes
		rec.NewChunks += res.Stats.NewChunks
		rec.TotalChunks += res.Stats.TotalChunks
		// A successful save becomes the member's restart checkpoint.
		saved[i].checkpoint = &Checkpoint{Password: cfg.Password, Dest: dests[i]}
	}
	rec.Elapsed = p.Now() - rec.At
	o.sampleRAM()
	return rec, errors.Join(errs...)
}
