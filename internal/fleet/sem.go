package fleet

import (
	"fmt"

	"nymix/internal/sim"
)

// ErrOversized is returned (on the reservation future) for a request
// that exceeds the semaphore's total capacity: it could never be
// granted, and letting it queue would wedge everyone behind it.
var ErrOversized = fmt.Errorf("fleet: reservation exceeds semaphore capacity")

// sem is a weighted semaphore native to the simulation: acquisition
// returns a future the caller awaits, so oversubscribed requests queue
// in FIFO order instead of failing. The engine's single-threaded
// execution model makes the bookkeeping lock-free.
//
// Fairness is strict FIFO: a large request at the head of the queue
// blocks smaller ones behind it, so a 4 GB nym cannot be starved by a
// stream of 256 MB nyms slipping past it.
type sem struct {
	eng      *sim.Engine
	capacity int64
	used     int64
	q        []*semWaiter
}

type semWaiter struct {
	need int64
	fut  *sim.Future[struct{}]
}

// unlimited is the semaphore capacity used when the underlying
// resource is uncapped.
const unlimited = int64(1) << 62

// newSem builds a semaphore with the given capacity. A negative
// capacity means uncapped; zero is a real (nothing-admissible)
// capacity — a host already saturated past its headroom must reject
// launches, not wave them all through.
func newSem(eng *sim.Engine, capacity int64) *sem {
	if capacity < 0 {
		capacity = unlimited
	}
	return &sem{eng: eng, capacity: capacity}
}

// reserve returns a future that completes once need units are held by
// the caller. The grant is immediate (an already-completed future)
// when capacity is free and no earlier request is still queued. A
// request larger than the whole capacity fails fast with ErrOversized
// instead of queueing forever at the head and starving the FIFO.
func (s *sem) reserve(need int64) *sim.Future[struct{}] {
	if need > s.capacity {
		return sim.CompletedFuture(s.eng, struct{}{}, fmt.Errorf("%w: need %d, capacity %d", ErrOversized, need, s.capacity))
	}
	if len(s.q) == 0 && s.used+need <= s.capacity {
		s.used += need
		return sim.CompletedFuture(s.eng, struct{}{}, nil)
	}
	w := &semWaiter{need: need, fut: sim.NewFuture[struct{}](s.eng)}
	s.q = append(s.q, w)
	return w.fut
}

// release returns units and admits queued waiters in FIFO order.
func (s *sem) release(n int64) {
	s.used -= n
	if s.used < 0 {
		panic("fleet: semaphore over-released")
	}
	for len(s.q) > 0 && s.used+s.q[0].need <= s.capacity {
		w := s.q[0]
		s.q = s.q[1:]
		s.used += w.need
		w.fut.Complete(struct{}{}, nil)
	}
}

// queued reports how many requests are waiting for capacity.
func (s *sem) queued() int { return len(s.q) }
