package fleet

import (
	"fmt"

	"nymix/internal/nymerr"
	"nymix/internal/sim"
)

// ErrOversized is returned (on the reservation future) for a request
// that exceeds the semaphore's total capacity: it could never be
// granted, and letting it queue would wedge everyone behind it.
var ErrOversized = nymerr.New(CodeOversizedReservation, "fleet: reservation exceeds semaphore capacity")

// sem is a weighted semaphore native to the simulation: acquisition
// returns a future the caller awaits, so oversubscribed requests queue
// in priority order instead of failing. The engine's single-threaded
// execution model makes the bookkeeping lock-free.
//
// Fairness is strict priority-FIFO: waiters are ordered by descending
// priority, FIFO among equals, and only the head of the queue is ever
// admitted. A large request at the head blocks smaller same-priority
// ones behind it, so a 4 GB nym cannot be starved by a stream of
// 256 MB nyms slipping past it — but a higher-priority arrival is
// inserted ahead of the head and admitted as soon as it fits.
type sem struct {
	eng      *sim.Engine
	capacity int64
	used     int64
	q        []*semWaiter
}

type semWaiter struct {
	need int64
	pri  int
	fut  *sim.Future[struct{}]
}

// unlimited is the semaphore capacity used when the underlying
// resource is uncapped.
const unlimited = int64(1) << 62

// newSem builds a semaphore with the given capacity. A negative
// capacity means uncapped; zero is a real (nothing-admissible)
// capacity — a host already saturated past its headroom must reject
// launches, not wave them all through.
func newSem(eng *sim.Engine, capacity int64) *sem {
	if capacity < 0 {
		capacity = unlimited
	}
	return &sem{eng: eng, capacity: capacity}
}

// reserve returns a future that completes once need units are held by
// the caller, at the lowest priority. See reservePri.
func (s *sem) reserve(need int64) *sim.Future[struct{}] {
	return s.reservePri(need, 0)
}

// reservePri returns a future that completes once need units are held
// by the caller. The grant is immediate (an already-completed future)
// when capacity is free and no earlier-or-higher request is still
// queued. A request larger than the whole capacity fails fast with
// ErrOversized instead of queueing forever at the head and starving
// the queue.
func (s *sem) reservePri(need int64, pri int) *sim.Future[struct{}] {
	if need > s.capacity {
		return sim.CompletedFuture(s.eng, struct{}{}, fmt.Errorf("%w: need %d, capacity %d", ErrOversized, need, s.capacity))
	}
	w := &semWaiter{need: need, pri: pri, fut: sim.NewFuture[struct{}](s.eng)}
	// Insert before the first strictly-lower-priority waiter; equals
	// keep arrival order, so same-class admission stays FIFO.
	at := len(s.q)
	for i, x := range s.q {
		if x.pri < pri {
			at = i
			break
		}
	}
	s.q = append(s.q, nil)
	copy(s.q[at+1:], s.q[at:])
	s.q[at] = w
	s.admit()
	return w.fut
}

// release returns units and admits queued waiters in priority-FIFO
// order.
func (s *sem) release(n int64) {
	s.used -= n
	if s.used < 0 {
		panic("fleet: semaphore over-released")
	}
	s.admit()
}

// admit grants the queue head while it fits. Only the head is ever
// admitted: no lower-priority or later request barges past a head
// that does not fit.
func (s *sem) admit() {
	for len(s.q) > 0 && s.used+s.q[0].need <= s.capacity {
		w := s.q[0]
		s.q = s.q[1:]
		s.used += w.need
		w.fut.Complete(struct{}{}, nil)
	}
}

// queued reports how many requests are waiting for capacity.
func (s *sem) queued() int { return len(s.q) }

// head returns the queued head's need and priority, or ok=false when
// the queue is empty. The preemption machinery reads it to size the
// deficit a pass must free.
func (s *sem) head() (need int64, pri int, ok bool) {
	if len(s.q) == 0 {
		return 0, 0, false
	}
	return s.q[0].need, s.q[0].pri, true
}
