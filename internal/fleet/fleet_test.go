package fleet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nymix/internal/core"
	"nymix/internal/cpusched"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// smallOpts is a compact nym sizing for admission tests: 400 MiB
// footprint per nymbox.
func smallOpts(model core.UsageModel) core.Options {
	return core.Options{
		Model:    model,
		AnonRAM:  256 * guestos.MiB,
		AnonDisk: 64 * guestos.MiB,
		CommRAM:  64 * guestos.MiB,
		CommDisk: 16 * guestos.MiB,
	}
}

// newFleet builds a manager on a host with the given RAM and an
// orchestrator over it.
func newFleet(t *testing.T, seed uint64, hostRAM int64, cfg Config) (*sim.Engine, *Orchestrator) {
	t.Helper()
	eng := sim.NewEngine(seed)
	_, world := webworld.BuildDefault(eng)
	mgr, err := core.NewManager(eng, world, hypervisor.Config{
		RAMBytes: hostRAM,
		CPU:      cpusched.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(mgr, cfg)
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.Run()
}

func specs(n int, model core.UsageModel) []Spec {
	out := make([]Spec, n)
	for i := range out {
		out[i] = Spec{Name: fmt.Sprintf("nym%02d", i), Opts: smallOpts(model)}
	}
	return out
}

func TestParallelRampOverlapsStartups(t *testing.T) {
	// Serial baseline: start 4 nyms one after the other.
	engSerial := sim.NewEngine(7)
	_, world := webworld.BuildDefault(engSerial)
	mgr, err := core.NewManager(engSerial, world, hypervisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var serial time.Duration
	engSerial.Go("serial", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := mgr.StartNym(p, fmt.Sprintf("nym%02d", i), smallOpts(core.ModelEphemeral)); err != nil {
				t.Errorf("serial start: %v", err)
			}
		}
		serial = p.Now()
	})
	engSerial.Run()

	// Fleet ramp of the same 4 nyms on an identical world.
	eng, o := newFleet(t, 7, 16<<30, Config{})
	var parallel time.Duration
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(4, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
		}
		parallel = p.Now()
	})
	if o.Running() != 4 {
		t.Fatalf("running = %d", o.Running())
	}
	if parallel >= serial {
		t.Fatalf("parallel ramp %v not faster than serial %v", parallel, serial)
	}
}

func TestAdmissionQueuesWhenOversubscribed(t *testing.T) {
	// A 2 GiB host: the hypervisor holds ~715 MiB, so the 0.9 headroom
	// budget admits two 400 MiB nymboxes and queues the rest.
	eng, o := newFleet(t, 11, 2<<30, Config{})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(4, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await 2: %v", err)
		}
		if got := o.QueuedLaunches(); got != 2 {
			t.Errorf("queued = %d, want 2", got)
		}
		if o.Running() != 2 {
			t.Errorf("running = %d, want 2", o.Running())
		}
		// Stopping the admitted pair releases RAM; the queued pair must
		// then be admitted and come up without any new Launch call.
		if err := o.StopAll(p); err != nil {
			t.Errorf("stop: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await queued pair: %v", err)
		}
	})
	if got := o.CountState(StateStopped); got != 2 {
		t.Fatalf("stopped = %d, want 2", got)
	}
	if got := o.Running(); got != 2 {
		t.Fatalf("running after drain = %d, want 2", got)
	}
	// No member ever failed: oversubscription queues, it does not error.
	if got := o.CountState(StateFailed); got != 0 {
		t.Fatalf("failed = %d", got)
	}
}

func TestAdmissionRejectsImpossibleFootprint(t *testing.T) {
	eng, o := newFleet(t, 13, 2<<30, Config{})
	opts := smallOpts(core.ModelEphemeral)
	opts.AnonRAM = 8 << 30 // can never fit a 2 GiB host
	var launchErr error
	run(t, eng, func(p *sim.Proc) {
		_, launchErr = o.Launch(Spec{Name: "whale", Opts: opts})
		// A normal nym launched afterwards is unaffected.
		if _, err := o.Launch(Spec{Name: "minnow", Opts: smallOpts(core.ModelEphemeral)}); err != nil {
			t.Errorf("minnow: %v", err)
		}
		if err := o.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	if !errors.Is(launchErr, ErrNeverAdmissible) {
		t.Fatalf("launch err = %v, want ErrNeverAdmissible", launchErr)
	}
	if got := o.Member("whale").State(); got != StateFailed {
		t.Fatalf("whale state = %v", got)
	}
	if got := o.Member("minnow").State(); got != StateRunning {
		t.Fatalf("minnow state = %v", got)
	}
}

func TestRestartPolicyRevivesInjectedFailure(t *testing.T) {
	eng, o := newFleet(t, 17, 16<<30, Config{
		Restart: RestartPolicy{MaxRestarts: 2, Backoff: time.Second},
	})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(3, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
		victim := o.Members()[1]
		// First crash: the member must come back on its own.
		if err := o.FailNym(p, victim.Name(), nil); err != nil {
			t.Errorf("fail: %v", err)
		}
		if victim.State() == StateRunning {
			t.Error("victim still running immediately after crash")
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await revival: %v", err)
		}
		if victim.Restarts() != 1 {
			t.Errorf("restarts = %d, want 1", victim.Restarts())
		}
		// The other members never flinched.
		for _, m := range o.Members() {
			if m != victim && m.State() != StateRunning {
				t.Errorf("%s disturbed: %v", m.Name(), m.State())
			}
		}
		// Burn the rest of the budget: two more crashes exhaust it.
		for i := 0; i < 2; i++ {
			if err := o.FailNym(p, victim.Name(), nil); err != nil {
				t.Errorf("fail %d: %v", i, err)
			}
			o.AwaitSettled(p)
		}
	})
	victim := o.Members()[1]
	if victim.State() != StateFailed {
		t.Fatalf("victim state = %v, want failed after budget exhausted", victim.State())
	}
	if victim.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2", victim.Restarts())
	}
	if o.Running() != 2 {
		t.Fatalf("running = %d, want 2 survivors", o.Running())
	}
	// The failed nymbox leaked nothing: only the survivors' VM pairs
	// remain on the host.
	if got := o.Manager().Host().VMCount(); got != 4 {
		t.Fatalf("host VMs = %d, want 4", got)
	}
	// All three injected crashes are in the failure log, and every
	// record classifies to a registered code.
	recs := o.Failures()
	if len(recs) != 3 {
		t.Fatalf("failure log has %d records, want 3 injected crashes: %+v", len(recs), recs)
	}
	for _, rec := range recs {
		if rec.Code != CodeCrashInjected {
			t.Fatalf("record classified %q, want %s: %v", rec.Code, CodeCrashInjected, rec.Err)
		}
		if !nymerr.Registered(rec.Code) {
			t.Fatalf("code %q not in the registry", rec.Code)
		}
		if rec.Member != victim.Name() {
			t.Fatalf("record for %q, want %q", rec.Member, victim.Name())
		}
	}
}

func TestRestartPolicyRetriesFailedStart(t *testing.T) {
	// Tamper the base image so every launch fails integrity
	// verification; the supervisor must retry per policy and then mark
	// the member failed — without hanging the ramp.
	eng, o := newFleet(t, 19, 16<<30, Config{
		Restart: RestartPolicy{MaxRestarts: 2, Backoff: time.Second},
	})
	tampered := o.Manager().Host().BaseImage().Clone()
	tfs, err := unionfs.Stack(tampered)
	if err != nil {
		t.Fatal(err)
	}
	tfs.WriteFile("/usr/bin/keylogger", []byte("evil"))
	o.Manager().Host().ReplaceBaseImage(tampered.Seal())
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.Launch(Spec{Name: "doomed", Opts: smallOpts(core.ModelEphemeral)}); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 1); err == nil {
			t.Error("AwaitRunning succeeded against a tampered host")
		}
	})
	m := o.Member("doomed")
	if m.State() != StateFailed {
		t.Fatalf("state = %v", m.State())
	}
	if m.Restarts() != 2 {
		t.Fatalf("restarts = %d, want full budget", m.Restarts())
	}
	if !errors.Is(m.LastErr(), core.ErrHostTampered) {
		t.Fatalf("lastErr = %v", m.LastErr())
	}
	// Failed launches release their reservation.
	if o.ReservedBytes() != 0 {
		t.Fatalf("reserved = %d after total failure", o.ReservedBytes())
	}
}

func TestSaveSweepStaggersAndDeduplicates(t *testing.T) {
	stagger := 500 * time.Millisecond
	eng, o := newFleet(t, 23, 16<<30, Config{SaveStagger: stagger, SaveConcurrency: 2})
	destFor := func(m *Member) core.VaultDest {
		return core.VaultDest{
			Providers:       []string{"dropbin"},
			Account:         "fleet-" + m.Name(),
			AccountPassword: "cpw",
		}
	}
	var first, second SweepStats
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(3, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
		var err error
		first, err = o.SaveSweep(p, "pw", destFor)
		if err != nil {
			t.Errorf("first sweep: %v", err)
		}
		second, err = o.SaveSweep(p, "pw", destFor)
		if err != nil {
			t.Errorf("second sweep: %v", err)
		}
	})
	if first.Saves != 3 || second.Saves != 3 {
		t.Fatalf("saves = %d/%d, want 3/3", first.Saves, second.Saves)
	}
	if first.UploadedBytes <= 0 {
		t.Fatal("first sweep uploaded nothing")
	}
	// Nothing changed between sweeps, so the second is pure dedup: a
	// small fraction of the first (manifest and framing only).
	if second.UploadedBytes*5 > first.UploadedBytes {
		t.Fatalf("steady-state sweep %d bytes vs cold %d: dedup not engaged",
			second.UploadedBytes, first.UploadedBytes)
	}
	// Launches were spaced: three saves, two stagger gaps minimum.
	if first.Elapsed < 2*stagger {
		t.Fatalf("sweep elapsed %v, want >= %v of stagger", first.Elapsed, 2*stagger)
	}
}

func TestSaveSweepSkipsEphemeralMembers(t *testing.T) {
	eng, o := newFleet(t, 29, 16<<30, Config{})
	destFor := func(m *Member) core.VaultDest {
		return core.VaultDest{Providers: []string{"dropbin"}, Account: "a", AccountPassword: "p"}
	}
	var st SweepStats
	run(t, eng, func(p *sim.Proc) {
		sp := specs(3, core.ModelEphemeral)
		sp[1].Opts.Model = core.ModelPersistent
		if _, err := o.LaunchAll(sp); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 3); err != nil {
			t.Errorf("await: %v", err)
		}
		var err error
		st, err = o.SaveSweep(p, "pw", destFor)
		if err != nil {
			t.Errorf("sweep: %v", err)
		}
	})
	if st.Saves != 1 {
		t.Fatalf("saves = %d, want only the persistent member", st.Saves)
	}
}

func TestKSMDaemonKeepsRampUnderCapacity(t *testing.T) {
	// Ten 400 MiB nymboxes on a 6 GiB host: requested RAM (4000 MiB)
	// plus the hypervisor fits only because the merge daemon folds
	// shared base-image pages while the ramp is in flight.
	eng, o := newFleet(t, 31, 6<<30, Config{RAMHeadroom: 0.95})
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(10, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 10); err != nil {
			t.Errorf("await: %v", err)
		}
	})
	if o.Running() != 10 {
		t.Fatalf("running = %d", o.Running())
	}
	if o.PeakRAMBytes() > 6<<30 {
		t.Fatalf("peak RAM %d exceeded host capacity", o.PeakRAMBytes())
	}
	if o.PeakRAMBytes() == 0 {
		t.Fatal("peak RAM never sampled")
	}
}

func TestRampIsDeterministic(t *testing.T) {
	ramp := func() (time.Duration, int64) {
		eng, o := newFleet(t, 37, 8<<30, Config{})
		var done time.Duration
		run(t, eng, func(p *sim.Proc) {
			o.LaunchAll(specs(6, core.ModelEphemeral))
			if err := o.AwaitRunning(p, 6); err != nil {
				t.Errorf("await: %v", err)
			}
			done = p.Now()
		})
		return done, o.PeakRAMBytes()
	}
	d1, ram1 := ramp()
	d2, ram2 := ramp()
	if d1 != d2 || ram1 != ram2 {
		t.Fatalf("ramp not reproducible: %v/%d vs %v/%d", d1, ram1, d2, ram2)
	}
}

// Regression: a member crashing while a save sweep is parked in its
// stagger sleep or gate wait must be skipped, not dereferenced — the
// sweep used to check the member only at loop entry and then yield
// before using its nym.
func TestSaveSweepSurvivesMidSweepCrash(t *testing.T) {
	eng, o := newFleet(t, 41, 16<<30, Config{
		SaveStagger:     2 * time.Second,
		SaveConcurrency: 1,
		Restart:         RestartPolicy{MaxRestarts: 0},
	})
	destFor := func(m *Member) core.VaultDest {
		return core.VaultDest{Providers: []string{"dropbin"}, Account: "a-" + m.Name(), AccountPassword: "p"}
	}
	var st SweepStats
	var sweepErr error
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(4, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 4); err != nil {
			t.Errorf("await: %v", err)
		}
		sweepDone := eng.Go("sweep", func(sp *sim.Proc) {
			st, sweepErr = o.SaveSweep(sp, "pw", destFor)
		})
		// The sweep is now saving nym00 and parked ahead of nym01's
		// save; crash nym01 in that window.
		p.Sleep(time.Second)
		if err := o.FailNym(p, "nym01", nil); err != nil {
			t.Errorf("fail: %v", err)
		}
		sim.Await(p, sweepDone)
	})
	if sweepErr != nil {
		t.Fatalf("sweep: %v", sweepErr)
	}
	if st.Saves != 3 {
		t.Fatalf("saves = %d, want the 3 surviving members", st.Saves)
	}
	if got := o.Member("nym01").State(); got != StateFailed {
		t.Fatalf("crashed member state = %v", got)
	}
	// The crash-under-sweep interleaving left nothing unclassified.
	for _, rec := range o.Failures() {
		if nymerr.Classify(rec.Err) == "" {
			t.Fatalf("unclassified failure (member %s, op %s): %v", rec.Member, rec.Op, rec.Err)
		}
	}
}

// Regression: a fleet whose queued launches can never be admitted
// (nothing will free the RAM they wait for) must leave the engine
// drainable — the KSM daemon used to re-arm itself forever and
// Engine.Run never returned. An infeasible AwaitRunning target is a
// clean error, not an eternal park.
func TestStarvedQueueDoesNotLivelockEngine(t *testing.T) {
	eng, o := newFleet(t, 43, 2<<30, Config{})
	var infeasibleErr error
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(4, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await feasible: %v", err)
		}
		// The budget holds two 400 MiB nymboxes; four at once is
		// impossible and must be reported, not waited for.
		infeasibleErr = o.AwaitRunning(p, 4)
		// Return with two members queued forever: the engine must still
		// drain or this test times out the whole suite.
	})
	if infeasibleErr == nil {
		t.Fatal("AwaitRunning(4) on a 2-nym budget returned nil")
	}
	if o.Running() != 2 || o.QueuedLaunches() != 2 {
		t.Fatalf("running=%d queued=%d, want 2/2", o.Running(), o.QueuedLaunches())
	}
}

// Regression: FailNym transitions the member before the teardown
// yields, so a concurrent second FailNym (or sweep) cannot act on the
// half-destroyed nymbox and double-release its reservation.
func TestConcurrentFailNymResolvesToOneCrash(t *testing.T) {
	eng, o := newFleet(t, 47, 16<<30, Config{
		Restart: RestartPolicy{MaxRestarts: 3, Backoff: time.Second},
	})
	var err1, err2 error
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(2, core.ModelEphemeral)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await: %v", err)
		}
		d1 := eng.Go("crash1", func(cp *sim.Proc) { err1 = o.FailNym(cp, "nym00", nil) })
		d2 := eng.Go("crash2", func(cp *sim.Proc) { err2 = o.FailNym(cp, "nym00", nil) })
		sim.Await(p, d1)
		sim.Await(p, d2)
		if err := o.AwaitRunning(p, 2); err != nil {
			t.Errorf("await revival: %v", err)
		}
	})
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("want exactly one crash winner: err1=%v err2=%v", err1, err2)
	}
	lost := err1
	if lost == nil {
		lost = err2
	}
	if !errors.Is(lost, ErrNotRunning) {
		t.Fatalf("loser = %v, want ErrNotRunning", lost)
	}
	m := o.Member("nym00")
	if m.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1 (no double-counting)", m.Restarts())
	}
	// Reservation accounting survived: both members hold exactly one
	// footprint each.
	if got := o.ReservedBytes(); got != 2*m.Footprint() {
		t.Fatalf("reserved = %d, want %d", got, 2*m.Footprint())
	}
}

// Regression: a restarted persistent member restores its last vault
// checkpoint instead of booting blank — a crash must not cost a
// persistent nym its durable state (nor let the next sweep overwrite
// the checkpoint with empty state).
func TestRestartRestoresPersistentCheckpoint(t *testing.T) {
	eng, o := newFleet(t, 53, 16<<30, Config{
		Restart: RestartPolicy{MaxRestarts: 2, Backoff: time.Second},
	})
	destFor := func(m *Member) core.VaultDest {
		return core.VaultDest{Providers: []string{"dropbin"}, Account: "cp-" + m.Name(), AccountPassword: "p"}
	}
	var resweep SweepStats
	run(t, eng, func(p *sim.Proc) {
		if _, err := o.LaunchAll(specs(1, core.ModelPersistent)); err != nil {
			t.Errorf("launch: %v", err)
		}
		if err := o.AwaitRunning(p, 1); err != nil {
			t.Errorf("await: %v", err)
		}
		if _, err := o.SaveSweep(p, "pw", destFor); err != nil {
			t.Errorf("sweep: %v", err)
		}
		if err := o.FailNym(p, "nym00", nil); err != nil {
			t.Errorf("fail: %v", err)
		}
		if err := o.AwaitRunning(p, 1); err != nil {
			t.Errorf("await revival: %v", err)
		}
		m := o.Member("nym00")
		// A restored nym carries its save cycles; a blank boot has none.
		if m.Nym() == nil || m.Nym().Cycles() == 0 {
			t.Error("revived member booted blank instead of restoring its checkpoint")
		}
		var err error
		resweep, err = o.SaveSweep(p, "pw", destFor)
		if err != nil {
			t.Errorf("re-sweep: %v", err)
		}
	})
	// The post-revival sweep is a delta of unchanged state, proving the
	// checkpoint's content survived the crash round trip.
	if resweep.Saves != 1 || resweep.NewChunks > resweep.TotalChunks/4 {
		t.Fatalf("post-revival sweep = %+v: checkpoint content did not survive", resweep)
	}
}

// Page-load render/JS now runs through cpusched instead of being
// free: an identical fleet browsing workload on an identical network
// must slow down when the chip shrinks, because concurrent renders
// contend for cores. The uplink is raised to 1 Gbit/s so the network
// leg is constant and tiny; only the chip differs between the runs.
func TestFleetBrowsingContendsOnChip(t *testing.T) {
	browse := func(cores int) (time.Duration, int) {
		eng := sim.NewEngine(61)
		_, world := webworld.BuildDefault(eng)
		fast := vnet.LinkConfig{Latency: time.Millisecond, Capacity: 1e9 / 8}
		mgr, err := core.NewManagerWith(eng, world, hypervisor.Config{
			RAMBytes: 16 << 30,
			CPU:      cpusched.Config{Cores: cores, SMTFactor: 1.3},
		}, core.ManagerConfig{Uplink: &fast})
		if err != nil {
			t.Fatal(err)
		}
		o := New(mgr, Config{})
		var elapsed time.Duration
		run(t, eng, func(p *sim.Proc) {
			if _, err := o.LaunchAll(specs(8, core.ModelEphemeral)); err != nil {
				t.Errorf("launch: %v", err)
			}
			if err := o.AwaitRunning(p, 8); err != nil {
				t.Errorf("await: %v", err)
				return
			}
			// All eight browsers load a page at the same instant.
			start := p.Now()
			var futs []*sim.Future[struct{}]
			for _, m := range o.Members() {
				nym := m.Nym()
				futs = append(futs, eng.Go("visit-"+m.Name(), func(vp *sim.Proc) {
					if _, err := nym.Visit(vp, "youtube.com"); err != nil {
						t.Errorf("visit: %v", err)
					}
				}))
			}
			for _, f := range futs {
				sim.Await(p, f)
			}
			elapsed = p.Now() - start
		})
		return elapsed, mgr.Host().CPU().PeakRunning()
	}
	narrow, narrowPeak := browse(1)
	wide, widePeak := browse(16)
	if narrowPeak < 8 || widePeak < 8 {
		t.Fatalf("render tasks never reached the chip: peaks %d/%d", narrowPeak, widePeak)
	}
	// Eight renders on one core serialize; on sixteen cores they run
	// wide open and hide behind the network. The page-load gap — well
	// over a simulated second on ~0.5 core-seconds of render per page —
	// is chip contention, since the two runs share every network
	// parameter and differ only in cores.
	if narrow < wide+time.Second {
		t.Fatalf("8-way browsing on 1 core took %v vs %v on 16 cores: renders not contending", narrow, wide)
	}
}

// Regression: smallest-first packing says two of these three nyms can
// run together, but FIFO admission parks the small one behind a big
// one that never fits — AwaitRunning must report the stall instead of
// parking its caller forever while the engine drains.
func TestAwaitRunningDetectsFIFOStall(t *testing.T) {
	eng, o := newFleet(t, 59, 2<<30, Config{})
	big := core.Options{
		AnonRAM:  980 * guestos.MiB,
		AnonDisk: 64 * guestos.MiB,
		CommRAM:  64 * guestos.MiB,
		CommDisk: 16 * guestos.MiB,
	}
	var awaitErr error
	run(t, eng, func(p *sim.Proc) {
		for _, name := range []string{"big1", "big2"} {
			if _, err := o.Launch(Spec{Name: name, Opts: big}); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		if _, err := o.Launch(Spec{Name: "small", Opts: smallOpts(core.ModelEphemeral)}); err != nil {
			t.Errorf("small: %v", err)
		}
		awaitErr = o.AwaitRunning(p, 2)
	})
	if awaitErr == nil {
		t.Fatal("AwaitRunning parked on a stalled FIFO queue without error")
	}
	if o.Running() != 1 {
		t.Fatalf("running = %d, want only big1", o.Running())
	}
	if o.QueuedLaunches() != 2 {
		t.Fatalf("queued = %d, want big2+small", o.QueuedLaunches())
	}
}
