package unionfs

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustStack(t *testing.T, layers ...*Layer) *FS {
	t.Helper()
	fs, err := Stack(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func threeLayerFS(t *testing.T) (*FS, *Layer, *Layer, *Layer) {
	t.Helper()
	base := NewLayer("base")
	base.put("/etc/hostname", &File{Data: []byte("nymix")})
	base.put("/etc/rc.local", &File{Data: []byte("#!/bin/sh\n")})
	base.put("/usr/lib/libbig.so", &File{VirtualSize: 1 << 20, Entropy: 0.9})
	base.Seal()
	conf := NewLayer("conf-anonvm")
	conf.put("/etc/rc.local", &File{Data: []byte("#!/bin/sh\nstart-browser\n")})
	conf.put("/etc/network", &File{Data: []byte("iface eth0 -> commvm")})
	conf.Seal()
	top := NewLayer("tmpfs")
	return mustStack(t, top, conf, base), top, conf, base
}

func TestReadFallsThroughLayers(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	got, err := fs.ReadFile("/etc/hostname")
	if err != nil || string(got) != "nymix" {
		t.Fatalf("hostname = %q, %v", got, err)
	}
	// Config layer masks the base rc.local.
	got, err = fs.ReadFile("/etc/rc.local")
	if err != nil || string(got) != "#!/bin/sh\nstart-browser\n" {
		t.Fatalf("rc.local = %q, %v", got, err)
	}
	info, err := fs.Stat("/etc/rc.local")
	if err != nil || info.Layer != "conf-anonvm" {
		t.Fatalf("rc.local layer = %+v, %v", info, err)
	}
}

func TestWritesGoToTopLayerOnly(t *testing.T) {
	fs, top, _, base := threeLayerFS(t)
	if err := fs.WriteFile("/etc/hostname", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/etc/hostname")
	if string(got) != "changed" {
		t.Fatalf("read = %q", got)
	}
	if string(base.files["/etc/hostname"].Data) != "nymix" {
		t.Fatal("base layer mutated by write")
	}
	if _, ok := top.files["/etc/hostname"]; !ok {
		t.Fatal("write did not land in top layer")
	}
}

func TestWhiteoutMasksLowerLayers(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	if err := fs.Remove("/etc/hostname"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/etc/hostname") {
		t.Fatal("removed file still visible")
	}
	if _, err := fs.ReadFile("/etc/hostname"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	// Rewriting resurrects the path in the top layer.
	if err := fs.WriteFile("/etc/hostname", []byte("back")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/etc/hostname")
	if string(got) != "back" {
		t.Fatalf("read = %q", got)
	}
}

func TestRemoveTopOnlyFileNeedsNoWhiteout(t *testing.T) {
	fs, top, _, _ := threeLayerFS(t)
	fs.WriteFile("/tmp/scratch", []byte("x"))
	if err := fs.Remove("/tmp/scratch"); err != nil {
		t.Fatal(err)
	}
	if len(top.whiteouts) != 0 {
		t.Fatalf("needless whiteout created: %v", top.whiteouts)
	}
	if err := fs.Remove("/tmp/scratch"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestSealedLowerLayersRequired(t *testing.T) {
	top := NewLayer("top")
	lower := NewLayer("lower") // not sealed
	if _, err := Stack(top, lower); err == nil {
		t.Fatal("unsealed lower layer accepted")
	}
	if _, err := Stack(); err == nil {
		t.Fatal("empty stack accepted")
	}
}

func TestSealedTopRejectsWrites(t *testing.T) {
	top := NewLayer("top").Seal()
	fs := mustStack(t, top)
	if err := fs.WriteFile("/x", []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

func TestVirtualFilesAndGrow(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	if err := fs.WriteVirtual("/cache/blob", 1000, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := fs.GrowVirtual("/cache/blob", 3000, 1.0); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/cache/blob")
	if err != nil || info.Size != 4000 {
		t.Fatalf("size = %d, %v", info.Size, err)
	}
	// Entropy is the size-weighted mix: (0.5*1000 + 1.0*3000)/4000.
	if info.Entropy < 0.874 || info.Entropy > 0.876 {
		t.Fatalf("entropy = %v, want 0.875", info.Entropy)
	}
	if _, err := fs.ReadFile("/cache/blob"); err == nil {
		t.Fatal("virtual file returned bytes")
	}
}

func TestGrowVirtualCopiesUpFromLowerLayer(t *testing.T) {
	fs, top, _, base := threeLayerFS(t)
	if err := fs.GrowVirtual("/usr/lib/libbig.so", 4096, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, ok := top.files["/usr/lib/libbig.so"]; !ok {
		t.Fatal("grow did not copy up")
	}
	if base.files["/usr/lib/libbig.so"].VirtualSize != 1<<20 {
		t.Fatal("base layer mutated")
	}
	info, _ := fs.Stat("/usr/lib/libbig.so")
	if info.Size != 1<<20+4096 {
		t.Fatalf("size = %d", info.Size)
	}
}

func TestGrowVirtualClampsAtZero(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	fs.WriteVirtual("/c", 100, 1)
	if err := fs.GrowVirtual("/c", -500, 0); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/c")
	if info.Size != 0 {
		t.Fatalf("size = %d, want 0", info.Size)
	}
}

func TestListUnionView(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	fs.WriteFile("/etc/new", []byte("n"))
	fs.Remove("/etc/hostname")
	infos := fs.List("/etc")
	var paths []string
	for _, fi := range infos {
		paths = append(paths, fi.Path)
	}
	want := []string{"/etc/network", "/etc/new", "/etc/rc.local"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
	// rc.local must come from the conf layer, not base.
	for _, fi := range infos {
		if fi.Path == "/etc/rc.local" && fi.Layer != "conf-anonvm" {
			t.Fatalf("rc.local from %s", fi.Layer)
		}
	}
}

func TestDeltaHookTracksUsage(t *testing.T) {
	var ram int64
	top := NewLayer("tmpfs")
	top.SetDeltaFunc(func(d int64) { ram += d })
	fs := mustStack(t, top)
	fs.WriteFile("/a", make([]byte, 100))
	fs.WriteVirtual("/b", 1000, 1)
	if ram != 1100 {
		t.Fatalf("ram = %d, want 1100", ram)
	}
	fs.WriteFile("/a", make([]byte, 40)) // overwrite smaller
	if ram != 1040 {
		t.Fatalf("ram = %d, want 1040", ram)
	}
	fs.GrowVirtual("/b", 500, 1)
	if ram != 1540 {
		t.Fatalf("ram = %d, want 1540", ram)
	}
	fs.Remove("/a")
	if ram != 1500 {
		t.Fatalf("ram = %d, want 1500", ram)
	}
	top.Clear()
	if ram != 0 {
		t.Fatalf("ram = %d after clear, want 0", ram)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	_, top, _, _ := threeLayerFS(t)
	top.put("/w", &File{Data: []byte("www")})
	top.put("/v", &File{VirtualSize: 777, Entropy: 0.3})
	top.whiteouts["/gone"] = true
	img := top.Export()
	back := Import(img)
	if string(back.files["/w"].Data) != "www" {
		t.Fatal("data lost in round trip")
	}
	if back.files["/v"].VirtualSize != 777 || back.files["/v"].Entropy != 0.3 {
		t.Fatal("virtual metadata lost")
	}
	if !back.whiteouts["/gone"] {
		t.Fatal("whiteout lost")
	}
	// Mutating the export must not affect the original.
	img.Files["/w"].Data[0] = 'X'
	if top.files["/w"].Data[0] != 'w' {
		t.Fatal("export aliases original data")
	}
}

func TestEmptyRealFileStaysReal(t *testing.T) {
	// Regression: an empty real file must not degrade into a virtual
	// file through writes, clones, or export/import (nil vs empty
	// slice, and gob's inability to tell them apart).
	l := NewLayer("l")
	fs := mustStack(t, l)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/empty")
	if err != nil {
		t.Fatalf("empty real file became virtual: %v", err)
	}
	if data == nil || len(data) != 0 {
		t.Fatalf("data = %v", data)
	}
	info, _ := fs.Stat("/empty")
	if info.Virtual {
		t.Fatal("stat reports virtual")
	}
	// Survives clone.
	c := l.Clone()
	cfs := mustStack(t, c)
	if _, err := cfs.ReadFile("/empty"); err != nil {
		t.Fatalf("clone lost emptiness: %v", err)
	}
	// Survives export/import.
	back := Import(l.Export())
	bfs := mustStack(t, back)
	if _, err := bfs.ReadFile("/empty"); err != nil {
		t.Fatalf("export/import lost emptiness: %v", err)
	}
	// And is distinct from a zero-size virtual file.
	fs.WriteVirtual("/virt0", 0, 0)
	if _, err := fs.ReadFile("/virt0"); err == nil {
		t.Fatal("virtual file readable")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := NewLayer("l")
	l.put("/f", &File{Data: []byte("abc")})
	c := l.Clone()
	c.files["/f"].Data[0] = 'X'
	if l.files["/f"].Data[0] != 'a' {
		t.Fatal("clone aliases original")
	}
}

func TestPathNormalization(t *testing.T) {
	top := NewLayer("top")
	fs := mustStack(t, top)
	fs.WriteFile("etc//passwd", []byte("x"))
	if !fs.Exists("/etc/passwd") {
		t.Fatal("relative path not normalized")
	}
	got, err := fs.ReadFile("/etc/../etc/passwd")
	if err != nil || string(got) != "x" {
		t.Fatalf("dot-dot path: %q %v", got, err)
	}
}

func TestTotalSize(t *testing.T) {
	fs, _, _, _ := threeLayerFS(t)
	fs.WriteVirtual("/cache/a", 100, 1)
	fs.WriteVirtual("/cache/b", 200, 1)
	if got := fs.TotalSize("/cache"); got != 300 {
		t.Fatalf("total = %d", got)
	}
	all := fs.TotalSize("/")
	if all <= 300 {
		t.Fatalf("root total = %d, want > 300", all)
	}
}

// Property: the union view always reports exactly the contents of the
// most recent write per path, regardless of operation interleaving.
func TestPropertyLastWriteWins(t *testing.T) {
	paths := []string{"/a", "/b", "/c", "/d"}
	f := func(ops []uint8) bool {
		base := NewLayer("base")
		for _, p := range paths {
			base.put(p, &File{Data: []byte("base" + p)})
		}
		base.Seal()
		top := NewLayer("top")
		fs, _ := Stack(top, base)
		want := map[string]string{}
		for _, p := range paths {
			want[p] = "base" + p
		}
		for i, op := range ops {
			p := paths[int(op)%len(paths)]
			switch (op >> 2) % 3 {
			case 0, 1:
				v := string(rune('A' + i%26))
				if err := fs.WriteFile(p, []byte(v)); err != nil {
					return false
				}
				want[p] = v
			case 2:
				err := fs.Remove(p)
				if _, exists := want[p]; exists {
					if err != nil {
						return false
					}
					delete(want, p)
				} else if err == nil {
					return false
				}
			}
		}
		for _, p := range paths {
			got, err := fs.ReadFile(p)
			wantV, exists := want[p]
			if exists != (err == nil) {
				return false
			}
			if exists && string(got) != wantV {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: export/import is an exact round trip for any layer
// contents.
func TestPropertyExportImportIdentity(t *testing.T) {
	f := func(names []uint8, sizes []uint16) bool {
		l := NewLayer("x")
		for i, n := range names {
			p := "/" + string(rune('a'+n%16))
			if i < len(sizes) && sizes[i]%2 == 0 {
				l.put(p, &File{VirtualSize: int64(sizes[i]), Entropy: float64(n%100) / 100})
			} else {
				l.put(p, &File{Data: []byte{n, n + 1}})
			}
		}
		back := Import(l.Export())
		if len(back.files) != len(l.files) {
			return false
		}
		for p, f1 := range l.files {
			f2, ok := back.files[p]
			if !ok || f1.Size() != f2.Size() || f1.Entropy != f2.Entropy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
