// Package unionfs implements the layered, copy-on-write union file
// system at the heart of Nymix's image management (paper sections 3.4
// and 4.2, modeled on Linux OverlayFS).
//
// Every Nymix VM stacks three layers: the read-only base image (the
// same OS partition the hypervisor booted from), a read-only
// configuration layer that masks the handful of files differentiating
// an AnonVM from a CommVM or SaniVM, and a RAM-backed writable layer
// that absorbs all writes and is discarded (or archived as
// quasi-persistent nym state) when the pseudonym ends.
//
// Files carry either real bytes (data) or a virtual size plus an
// entropy coefficient. Virtual files model bulk content such as a
// browser cache, whose footprint matters for the evaluation but whose
// bytes do not. Entropy feeds the compression model used when nym
// state is archived (see internal/nymstate).
package unionfs

import (
	"bytes"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// ErrNotExist is returned when a path is absent from every layer.
var ErrNotExist = errors.New("unionfs: file does not exist")

// ErrReadOnly is returned on writes when the top layer is sealed.
var ErrReadOnly = errors.New("unionfs: top layer is read-only")

// File is one file's content: real bytes, or a virtual size with an
// entropy coefficient in [0,1] (0 = perfectly compressible, 1 =
// incompressible).
type File struct {
	Data        []byte
	VirtualSize int64
	Entropy     float64
}

// Size returns the file's logical size in bytes.
func (f *File) Size() int64 {
	if f.Data != nil {
		return int64(len(f.Data))
	}
	return f.VirtualSize
}

// clone returns a deep copy of the file. Nil-ness of Data is
// significant (nil = virtual file), so empty real files stay real.
func (f *File) clone() *File {
	c := &File{VirtualSize: f.VirtualSize, Entropy: f.Entropy}
	if f.Data != nil {
		c.Data = make([]byte, len(f.Data))
		copy(c.Data, f.Data)
	}
	return c
}

// Info describes a file in a union view.
type Info struct {
	Path    string
	Size    int64
	Entropy float64
	Layer   string // name of the layer providing the content
	Virtual bool
}

// Layer is a single file-system layer.
type Layer struct {
	name      string
	files     map[string]*File
	whiteouts map[string]bool
	sealed    bool
	onDelta   func(int64) // byte-usage accounting hook (may be nil)
	// onMutate fires when an existing file's content is rewritten (may
	// be nil) — the mutation the delta hook underreports or misses
	// entirely. The argument is the rewritten content beyond what the
	// delta hook already saw, so delta + mutate together account the
	// full rewrite.
	onMutate func(int64)
}

// NewLayer returns an empty, writable layer.
func NewLayer(name string) *Layer {
	return &Layer{
		name:      name,
		files:     make(map[string]*File),
		whiteouts: make(map[string]bool),
	}
}

// Name returns the layer's name.
func (l *Layer) Name() string { return l.name }

// Seal marks the layer read-only. Sealing is irreversible.
func (l *Layer) Seal() *Layer { l.sealed = true; return l }

// Sealed reports whether the layer is read-only.
func (l *Layer) Sealed() bool { return l.sealed }

// SetDeltaFunc registers fn to be called with the byte delta of every
// mutation, so a hypervisor can charge RAM-backed layers against host
// memory.
func (l *Layer) SetDeltaFunc(fn func(int64)) { l.onDelta = fn }

// SetMutateFunc registers fn for content rewrites of existing files —
// the mutation the delta hook underreports (a grown file's rewritten
// prefix) or misses entirely (a same-size rewrite). Dirty tracking
// (internal/vm) listens on both hooks; writing a file with the bytes
// it already holds fires neither.
func (l *Layer) SetMutateFunc(fn func(int64)) { l.onMutate = fn }

// UsedBytes returns the total logical bytes stored in this layer.
func (l *Layer) UsedBytes() int64 {
	var n int64
	for _, f := range l.files {
		n += f.Size()
	}
	return n
}

// FileCount returns the number of files stored in this layer.
func (l *Layer) FileCount() int { return len(l.files) }

func (l *Layer) delta(d int64) {
	if l.onDelta != nil && d != 0 {
		l.onDelta(d)
	}
}

func (l *Layer) put(p string, f *File) error {
	if l.sealed {
		return fmt.Errorf("%w (%s)", ErrReadOnly, l.name)
	}
	var old int64
	prev, existed := l.files[p]
	if existed {
		old = prev.Size()
	}
	l.files[p] = f
	delete(l.whiteouts, p)
	d := f.Size() - old
	l.delta(d)
	// Rewriting an existing file's content is more mutation than the
	// size delta conveys: the whole new content must be re-chunked by
	// a checkpoint, not just the grown tail. Report the portion the
	// delta hook did not already carry (all of it for a same-size or
	// shrinking rewrite, the retained prefix for a growing one). A new
	// zero-byte file is likewise a zero-delta image change: it adds an
	// entry (and may clear a whiteout) the exported image carries.
	if l.onMutate != nil {
		if existed {
			if !sameContent(prev, f) {
				c := f.Size()
				if d > 0 {
					c -= d
				}
				if c > 0 {
					l.onMutate(c)
				}
			}
		} else if d == 0 {
			l.onMutate(0)
		}
	}
	return nil
}

// sameContent reports whether two files hold identical content: equal
// bytes for real files, equal size and entropy for virtual ones. A
// kind change (real <-> virtual) is always a content change.
func sameContent(a, b *File) bool {
	if (a.Data == nil) != (b.Data == nil) {
		return false
	}
	if a.Data != nil {
		return bytes.Equal(a.Data, b.Data)
	}
	return a.VirtualSize == b.VirtualSize && a.Entropy == b.Entropy
}

// Clone returns a deep copy of the layer (unsealed, no delta hook).
func (l *Layer) Clone() *Layer {
	c := NewLayer(l.name)
	for p, f := range l.files {
		c.files[p] = f.clone()
	}
	for p := range l.whiteouts {
		c.whiteouts[p] = true
	}
	return c
}

// Clear removes all files and whiteouts, reporting freed bytes via the
// delta hook. Clear works even on sealed layers (it models discarding
// a RAM-backed layer wholesale, not file-level writes).
func (l *Layer) Clear() {
	var freed int64
	for _, f := range l.files {
		freed += f.Size()
	}
	l.files = make(map[string]*File)
	l.whiteouts = make(map[string]bool)
	l.delta(-freed)
}

// Image is the serializable form of a layer, used when nym state is
// compressed, encrypted, and shipped to cloud storage.
type Image struct {
	Name      string
	Files     map[string]FileImage
	Whiteouts []string
}

// FileImage is the serializable form of one file. Real marks a file
// with actual bytes; it exists because serializers (gob) cannot
// distinguish a nil Data slice from an empty real file.
type FileImage struct {
	Data        []byte
	Real        bool
	VirtualSize int64
	Entropy     float64
}

// Export converts the layer to its serializable image.
func (l *Layer) Export() Image {
	img := Image{Name: l.name, Files: make(map[string]FileImage, len(l.files))}
	for p, f := range l.files {
		fi := FileImage{VirtualSize: f.VirtualSize, Entropy: f.Entropy}
		if f.Data != nil {
			fi.Real = true
			fi.Data = make([]byte, len(f.Data))
			copy(fi.Data, f.Data)
		}
		img.Files[p] = fi
	}
	for p := range l.whiteouts {
		img.Whiteouts = append(img.Whiteouts, p)
	}
	sort.Strings(img.Whiteouts)
	return img
}

// Import reconstructs a layer from its serialized image.
func Import(img Image) *Layer {
	l := NewLayer(img.Name)
	for p, fi := range img.Files {
		f := &File{VirtualSize: fi.VirtualSize, Entropy: fi.Entropy}
		if fi.Real {
			f.Data = make([]byte, len(fi.Data))
			copy(f.Data, fi.Data)
		}
		l.files[p] = f
	}
	for _, p := range img.Whiteouts {
		l.whiteouts[p] = true
	}
	return l
}

// FS is a stack of layers; layers[0] is the top (writable) layer, and
// reads fall through the stack exactly as in OverlayFS: "the union
// file system responds to file read accesses with the contents of that
// file as it exists in the top most stack" (section 3.4).
type FS struct {
	layers []*Layer
}

// Stack builds a union from layers given top-first. All layers below
// the top must be sealed; the paper is explicit that the host OS
// partition "is always mounted read-only and never modified for any
// reason".
func Stack(layers ...*Layer) (*FS, error) {
	if len(layers) == 0 {
		return nil, errors.New("unionfs: empty stack")
	}
	for _, l := range layers[1:] {
		if !l.Sealed() {
			return nil, fmt.Errorf("unionfs: lower layer %q must be sealed", l.name)
		}
	}
	return &FS{layers: layers}, nil
}

// Top returns the writable top layer.
func (fs *FS) Top() *Layer { return fs.layers[0] }

// Layers returns the stack, top-first.
func (fs *FS) Layers() []*Layer { return fs.layers }

// clean canonicalizes a path: absolute, slash-separated, no trailing
// slash.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// lookup finds the topmost layer entry for p, honoring whiteouts.
func (fs *FS) lookup(p string) (*File, *Layer, bool) {
	for _, l := range fs.layers {
		if f, ok := l.files[p]; ok {
			return f, l, true
		}
		if l.whiteouts[p] {
			return nil, nil, false
		}
	}
	return nil, nil, false
}

// Stat returns metadata for the file at p.
func (fs *FS) Stat(p string) (Info, error) {
	p = clean(p)
	f, l, ok := fs.lookup(p)
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return Info{Path: p, Size: f.Size(), Entropy: f.Entropy, Layer: l.name, Virtual: f.Data == nil}, nil
}

// Exists reports whether p resolves to a file.
func (fs *FS) Exists(p string) bool {
	_, _, ok := fs.lookup(clean(p))
	return ok
}

// ReadFile returns the file's real bytes. Virtual files have no bytes
// and return an error; callers interested only in footprint use Stat.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	p = clean(p)
	f, _, ok := fs.lookup(p)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if f.Data == nil {
		return nil, fmt.Errorf("unionfs: %s is virtual (size %d)", p, f.VirtualSize)
	}
	out := make([]byte, len(f.Data))
	copy(out, f.Data)
	return out, nil
}

// WriteFile stores real bytes at p in the top layer. Empty content is
// still a real file (Data non-nil), distinct from a virtual file.
func (fs *FS) WriteFile(p string, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	return fs.Top().put(clean(p), &File{Data: buf})
}

// WriteVirtual stores a virtual file of the given size and entropy at
// p in the top layer.
func (fs *FS) WriteVirtual(p string, size int64, entropy float64) error {
	if size < 0 {
		return fmt.Errorf("unionfs: negative size for %s", p)
	}
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("unionfs: entropy %v out of [0,1] for %s", entropy, p)
	}
	return fs.Top().put(clean(p), &File{VirtualSize: size, Entropy: entropy})
}

// GrowVirtual extends (or shrinks, with negative delta) the virtual
// file at p, copying it up from a lower layer if needed. The file's
// entropy becomes the size-weighted mix of old and new content.
func (fs *FS) GrowVirtual(p string, delta int64, entropy float64) error {
	p = clean(p)
	f, l, ok := fs.lookup(p)
	if !ok {
		if delta < 0 {
			return fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		return fs.WriteVirtual(p, delta, entropy)
	}
	if f.Data != nil {
		return fmt.Errorf("unionfs: %s holds real data, cannot grow virtually", p)
	}
	newSize := f.VirtualSize + delta
	if newSize < 0 {
		newSize = 0
	}
	newEntropy := f.Entropy
	if delta > 0 && newSize > 0 {
		newEntropy = (f.Entropy*float64(f.VirtualSize) + entropy*float64(delta)) / float64(newSize)
	}
	if l == fs.Top() {
		// In-place update on the top layer.
		if fs.Top().sealed {
			return fmt.Errorf("%w (%s)", ErrReadOnly, fs.Top().name)
		}
		fs.Top().delta(newSize - f.VirtualSize)
		f.VirtualSize = newSize
		f.Entropy = newEntropy
		return nil
	}
	// Copy-up from a lower layer.
	return fs.Top().put(p, &File{VirtualSize: newSize, Entropy: newEntropy})
}

// Remove deletes p from the union view. If the file exists in a lower
// layer, a whiteout in the top layer masks it.
func (fs *FS) Remove(p string) error {
	p = clean(p)
	top := fs.Top()
	if top.sealed {
		return fmt.Errorf("%w (%s)", ErrReadOnly, top.name)
	}
	_, _, visible := fs.lookup(p)
	if !visible {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	// Track image changes the delta hook cannot see: removing a
	// zero-byte top-layer file, or deleting a file that lives only in
	// a lower layer (the removal is purely a new whiteout). Both
	// change the exported image — a checkpoint must record them, so
	// dirty tracking must fire.
	mutated := false
	if f, ok := top.files[p]; ok {
		top.delta(-f.Size())
		if f.Size() == 0 {
			mutated = true
		}
		delete(top.files, p)
	}
	// Mask any lower-layer copy.
	for _, l := range fs.layers[1:] {
		if _, ok := l.files[p]; ok {
			if !top.whiteouts[p] {
				mutated = true
			}
			top.whiteouts[p] = true
			break
		}
		if l.whiteouts[p] {
			break
		}
	}
	if mutated && top.onMutate != nil {
		top.onMutate(0)
	}
	return nil
}

// List returns the union view of all files under dir (recursively),
// sorted by path. Files masked by whiteouts or shadowed by upper
// layers are excluded.
func (fs *FS) List(dir string) []Info {
	dir = clean(dir)
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	seen := make(map[string]bool)
	hidden := make(map[string]bool)
	var out []Info
	for _, l := range fs.layers {
		for p, f := range l.files {
			if seen[p] || hidden[p] {
				continue
			}
			if p != dir && !strings.HasPrefix(p, prefix) {
				continue
			}
			seen[p] = true
			out = append(out, Info{Path: p, Size: f.Size(), Entropy: f.Entropy, Layer: l.name, Virtual: f.Data == nil})
		}
		for p := range l.whiteouts {
			if !seen[p] {
				hidden[p] = true
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// TotalSize returns the summed logical size of the union view under
// dir.
func (fs *FS) TotalSize(dir string) int64 {
	var n int64
	for _, fi := range fs.List(dir) {
		n += fi.Size
	}
	return n
}
