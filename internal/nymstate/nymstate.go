// Package nymstate implements the quasi-persistent nym archive format
// of paper section 3.5: the nym manager "pauses the nym's AnonVM and
// CommVM, syncs their file systems, compresses and encrypts their
// temporary file system disk images" before uploading them to cloud
// storage under a user-chosen password.
//
// The archive carries the writable disk layers of both VMs plus the
// anonymizer's persistent state (Tor entry guard, consensus cache).
// Encryption is AES-256-GCM under a PBKDF2-HMAC-SHA256 key, so a
// confiscated blob is indistinguishable from random bytes and a wrong
// password fails authentication rather than yielding garbage.
//
// Because bulk content (browser caches) is modeled virtually, archives
// carry real bytes for metadata and small files, plus a compression
// model that prices virtual content by its entropy — producing the
// on-disk sizes Figure 6 plots without materializing gigabytes.
package nymstate

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"nymix/internal/anonnet"
	"nymix/internal/unionfs"
)

// Errors.
var (
	ErrBadPassword = errors.New("nymstate: wrong password or corrupted archive")
	ErrBadArchive  = errors.New("nymstate: malformed archive")
)

// gob assigns wire type IDs from a process-global registry in
// first-encode order, and those IDs are varint-encoded into every
// stream — so the byte length of an archive would depend on which
// package happened to gob-encode first in the process. Pinning the
// IDs here makes archive wire sizes a pure function of content.
// (internal/vault imports this package and pins its own wire types
// the same way, so the combined assignment order is fixed too.)
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{&stateWire{}, &Archive{}} {
		if err := enc.Encode(v); err != nil {
			panic(err)
		}
	}
}

// KDF parameters.
const (
	KDFIterations = 4096
	keyLen        = 32
	saltLen       = 16
)

// State is everything a quasi-persistent nym needs to resume: the
// writable layers of both VMs and the anonymizer's persistent state.
type State struct {
	Name      string
	Model     string // usage model: "persistent" or "preconfigured"
	Cycles    int    // completed save/restore cycles
	AnonDisk  unionfs.Image
	CommDisk  unionfs.Image
	AnonState anonnet.State
}

// Archive is a sealed nym state.
type Archive struct {
	Salt       []byte
	Nonce      []byte
	Ciphertext []byte // real encrypted bytes (gob of State, gzipped)
	// WireSize is the simulated archive footprint: the modeled
	// compressed size of all disk content (virtual files priced by
	// entropy) plus encryption overhead. This is the number Figure 6
	// reports and what cloud storage and transfers charge.
	WireSize int64
}

// --- deterministic serialization ---------------------------------
//
// gob writes Go maps in iteration order, and Go randomizes that order
// per run: encoding a State directly would give the same nym state a
// different gzipped length — and so a different archive wire size —
// on every run. Everything downstream assumes identical state means
// identical bytes (reproducible experiment stats, stable manifest
// sizes), so State is flattened to sorted slices before encoding.

// fileWire is one file of an image in serialization order.
type fileWire struct {
	Path        string
	Data        []byte
	Real        bool
	VirtualSize int64
	Entropy     float64
}

// imageWire is a unionfs.Image with its file map flattened.
type imageWire struct {
	Name      string
	Files     []fileWire // sorted by path
	Whiteouts []string   // sorted
}

// kvWire is one anonymizer-state pair.
type kvWire struct{ K, V string }

// stateWire is the deterministic gob form of State.
type stateWire struct {
	Name      string
	Model     string
	Cycles    int
	AnonDisk  imageWire
	CommDisk  imageWire
	AnonState []kvWire // sorted by key
}

// sortedPaths returns an image's file paths in sorted order — the one
// deterministic walk order shared by serialization and size pricing.
func sortedPaths(files map[string]unionfs.FileImage) []string {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func imageToWire(img unionfs.Image) imageWire {
	w := imageWire{Name: img.Name, Whiteouts: append([]string(nil), img.Whiteouts...)}
	sort.Strings(w.Whiteouts)
	for _, p := range sortedPaths(img.Files) {
		f := img.Files[p]
		w.Files = append(w.Files, fileWire{
			Path: p, Data: f.Data, Real: f.Real,
			VirtualSize: f.VirtualSize, Entropy: f.Entropy,
		})
	}
	return w
}

func wireToImage(w imageWire) unionfs.Image {
	img := unionfs.Image{
		Name:      w.Name,
		Files:     make(map[string]unionfs.FileImage, len(w.Files)),
		Whiteouts: append([]string(nil), w.Whiteouts...),
	}
	for _, f := range w.Files {
		img.Files[f.Path] = unionfs.FileImage{
			Data: f.Data, Real: f.Real, VirtualSize: f.VirtualSize, Entropy: f.Entropy,
		}
	}
	return img
}

// FlattenStateMap converts an anonymizer-state map to sorted pairs —
// the shared deterministic form (internal/vault's manifests flatten
// the same way).
func FlattenStateMap(st map[string]string) [][2]string {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]string{k, st[k]})
	}
	return out
}

// encodeState gob-encodes st deterministically into w.
func encodeState(w io.Writer, st *State) error {
	sw := stateWire{
		Name: st.Name, Model: st.Model, Cycles: st.Cycles,
		AnonDisk: imageToWire(st.AnonDisk),
		CommDisk: imageToWire(st.CommDisk),
	}
	for _, kv := range FlattenStateMap(st.AnonState) {
		sw.AnonState = append(sw.AnonState, kvWire{K: kv[0], V: kv[1]})
	}
	return gob.NewEncoder(w).Encode(&sw)
}

// decodeState reverses encodeState.
func decodeState(r io.Reader) (*State, error) {
	var sw stateWire
	if err := gob.NewDecoder(r).Decode(&sw); err != nil {
		return nil, err
	}
	st := &State{
		Name: sw.Name, Model: sw.Model, Cycles: sw.Cycles,
		AnonDisk: wireToImage(sw.AnonDisk),
		CommDisk: wireToImage(sw.CommDisk),
	}
	if len(sw.AnonState) > 0 {
		st.AnonState = make(anonnet.State, len(sw.AnonState))
		for _, kv := range sw.AnonState {
			st.AnonState[kv.K] = kv.V
		}
	}
	return st, nil
}

// DeriveKey is PBKDF2-HMAC-SHA256 (RFC 2898). Implemented here because
// the standard library does not ship PBKDF2.
func DeriveKey(password, salt []byte, iterations, outLen int) []byte {
	if iterations < 1 {
		iterations = 1
	}
	var out []byte
	var block uint32
	for len(out) < outLen {
		block++
		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		var be [4]byte
		binary.BigEndian.PutUint32(be[:], block)
		mac.Write(be[:])
		u := mac.Sum(nil)
		acc := append([]byte(nil), u...)
		for i := 1; i < iterations; i++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for j := range acc {
				acc[j] ^= u[j]
			}
		}
		out = append(out, acc...)
	}
	return out[:outLen]
}

// GuardSeed derives the deterministic Tor guard seed of section 3.5:
// "seed critical CommVM state such as entry guard choices using a
// deterministic hash based on the nym's storage location and
// password".
func GuardSeed(password, location string) string {
	mac := hmac.New(sha256.New, []byte(password))
	mac.Write([]byte("nymix-guard-seed-v1"))
	mac.Write([]byte(location))
	return hex.EncodeToString(mac.Sum(nil)[:16])
}

// compressionFloor is the residual fraction even perfectly
// compressible content retains (container framing, dictionary resets).
const compressionFloor = 0.03

// VirtualWireSize prices virtual content post-compression:
// size*(floor + (1-floor)*entropy). It is the single entropy model
// shared by monolithic archives and internal/vault's chunk store.
func VirtualWireSize(size int64, entropy float64) int64 {
	return int64(float64(size) * (compressionFloor + (1-compressionFloor)*entropy))
}

// compressedSizeModel prices an image's content post-compression: real
// bytes are measured exactly (by gzipping them), virtual bytes via
// VirtualWireSize.
func compressedSizeModel(images ...unionfs.Image) int64 {
	var virtual int64
	var real bytes.Buffer
	zw := gzip.NewWriter(&real)
	for _, img := range images {
		// Walk files in sorted path order: gzip's output length depends
		// on input order, and map iteration would make the same image
		// price differently across runs.
		for _, path := range sortedPaths(img.Files) {
			f := img.Files[path]
			if f.Real {
				zw.Write([]byte(path))
				zw.Write(f.Data)
				continue
			}
			virtual += VirtualWireSize(f.VirtualSize, f.Entropy)
		}
	}
	zw.Close()
	return virtual + int64(real.Len())
}

// gcmNonceLen and gcmTagLen are AES-GCM's standard sizes, used when
// estimating an archive's wire footprint without sealing it.
const (
	gcmNonceLen = 12
	gcmTagLen   = 16
)

// EstimateArchiveWireSize prices the monolithic archive of st without
// sealing it: the same arithmetic as Seal (compression model over the
// disks, plus the gzipped serialized state as ciphertext with GCM tag,
// salt, and nonce) minus the key derivation and encryption work.
// Callers that only need the number — e.g. the vault's dedup
// comparison on every save — use this instead of paying PBKDF2+AES
// for a value they never store.
func EstimateArchiveWireSize(st *State) (int64, error) {
	var plain bytes.Buffer
	zw := gzip.NewWriter(&plain)
	if err := encodeState(zw, st); err != nil {
		return 0, fmt.Errorf("nymstate: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return 0, fmt.Errorf("nymstate: compress: %w", err)
	}
	return compressedSizeModel(st.AnonDisk, st.CommDisk) +
		int64(plain.Len()) + gcmTagLen + saltLen + gcmNonceLen, nil
}

// RandSource supplies nonce/salt bytes (the simulation's deterministic
// RNG in tests, crypto/rand-style in a deployment).
type RandSource interface{ Bytes(b []byte) }

// Seal compresses and encrypts a nym state under the password.
func Seal(st *State, password string, rnd RandSource) (*Archive, error) {
	var plain bytes.Buffer
	zw := gzip.NewWriter(&plain)
	if err := encodeState(zw, st); err != nil {
		return nil, fmt.Errorf("nymstate: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("nymstate: compress: %w", err)
	}
	salt := make([]byte, saltLen)
	rnd.Bytes(salt)
	key := DeriveKey([]byte(password), salt, KDFIterations, keyLen)
	blockCipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blockCipher)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	rnd.Bytes(nonce)
	ct := gcm.Seal(nil, nonce, plain.Bytes(), []byte(st.Name))
	wire := compressedSizeModel(st.AnonDisk, st.CommDisk) + int64(len(ct)) + int64(len(salt)+len(nonce))
	return &Archive{Salt: salt, Nonce: nonce, Ciphertext: ct, WireSize: wire}, nil
}

// Open decrypts an archive; a wrong password fails authentication.
func Open(a *Archive, password string, name string) (*State, error) {
	if a == nil || len(a.Salt) != saltLen || len(a.Ciphertext) == 0 {
		return nil, ErrBadArchive
	}
	key := DeriveKey([]byte(password), a.Salt, KDFIterations, keyLen)
	blockCipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blockCipher)
	if err != nil {
		return nil, err
	}
	if len(a.Nonce) != gcm.NonceSize() {
		return nil, ErrBadArchive
	}
	plain, err := gcm.Open(nil, a.Nonce, a.Ciphertext, []byte(name))
	if err != nil {
		return nil, ErrBadPassword
	}
	zr, err := gzip.NewReader(bytes.NewReader(plain))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	st, err := decodeState(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	return st, nil
}

// Encode serializes an archive for storage.
func (a *Archive) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeArchive parses a stored archive.
func DecodeArchive(data []byte) (*Archive, error) {
	var a Archive
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	return &a, nil
}

// Processing-rate constants for the simulated compress/encrypt work
// the nym manager performs during a save or restore (bytes/second of
// logical content).
const (
	CompressRate = 120 << 20
	CryptoRate   = 300 << 20
)

// LogicalSize returns the uncompressed content footprint of a state:
// what the compressor must chew through.
func LogicalSize(st *State) int64 {
	var n int64
	for _, img := range []unionfs.Image{st.AnonDisk, st.CommDisk} {
		for _, f := range img.Files {
			if f.Real {
				n += int64(len(f.Data))
			} else {
				n += f.VirtualSize
			}
		}
	}
	return n
}
