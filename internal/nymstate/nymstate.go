// Package nymstate implements the quasi-persistent nym archive format
// of paper section 3.5: the nym manager "pauses the nym's AnonVM and
// CommVM, syncs their file systems, compresses and encrypts their
// temporary file system disk images" before uploading them to cloud
// storage under a user-chosen password.
//
// The archive carries the writable disk layers of both VMs plus the
// anonymizer's persistent state (Tor entry guard, consensus cache).
// Encryption is AES-256-GCM under a PBKDF2-HMAC-SHA256 key, so a
// confiscated blob is indistinguishable from random bytes and a wrong
// password fails authentication rather than yielding garbage.
//
// Because bulk content (browser caches) is modeled virtually, archives
// carry real bytes for metadata and small files, plus a compression
// model that prices virtual content by its entropy — producing the
// on-disk sizes Figure 6 plots without materializing gigabytes.
package nymstate

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"

	"nymix/internal/anonnet"
	"nymix/internal/unionfs"
)

// Errors.
var (
	ErrBadPassword = errors.New("nymstate: wrong password or corrupted archive")
	ErrBadArchive  = errors.New("nymstate: malformed archive")
)

// KDF parameters.
const (
	KDFIterations = 4096
	keyLen        = 32
	saltLen       = 16
)

// State is everything a quasi-persistent nym needs to resume: the
// writable layers of both VMs and the anonymizer's persistent state.
type State struct {
	Name      string
	Model     string // usage model: "persistent" or "preconfigured"
	Cycles    int    // completed save/restore cycles
	AnonDisk  unionfs.Image
	CommDisk  unionfs.Image
	AnonState anonnet.State
}

// Archive is a sealed nym state.
type Archive struct {
	Salt       []byte
	Nonce      []byte
	Ciphertext []byte // real encrypted bytes (gob of State, gzipped)
	// WireSize is the simulated archive footprint: the modeled
	// compressed size of all disk content (virtual files priced by
	// entropy) plus encryption overhead. This is the number Figure 6
	// reports and what cloud storage and transfers charge.
	WireSize int64
}

// DeriveKey is PBKDF2-HMAC-SHA256 (RFC 2898). Implemented here because
// the standard library does not ship PBKDF2.
func DeriveKey(password, salt []byte, iterations, outLen int) []byte {
	if iterations < 1 {
		iterations = 1
	}
	var out []byte
	var block uint32
	for len(out) < outLen {
		block++
		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		var be [4]byte
		binary.BigEndian.PutUint32(be[:], block)
		mac.Write(be[:])
		u := mac.Sum(nil)
		acc := append([]byte(nil), u...)
		for i := 1; i < iterations; i++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for j := range acc {
				acc[j] ^= u[j]
			}
		}
		out = append(out, acc...)
	}
	return out[:outLen]
}

// GuardSeed derives the deterministic Tor guard seed of section 3.5:
// "seed critical CommVM state such as entry guard choices using a
// deterministic hash based on the nym's storage location and
// password".
func GuardSeed(password, location string) string {
	mac := hmac.New(sha256.New, []byte(password))
	mac.Write([]byte("nymix-guard-seed-v1"))
	mac.Write([]byte(location))
	return hex.EncodeToString(mac.Sum(nil)[:16])
}

// compressionFloor is the residual fraction even perfectly
// compressible content retains (container framing, dictionary resets).
const compressionFloor = 0.03

// VirtualWireSize prices virtual content post-compression:
// size*(floor + (1-floor)*entropy). It is the single entropy model
// shared by monolithic archives and internal/vault's chunk store.
func VirtualWireSize(size int64, entropy float64) int64 {
	return int64(float64(size) * (compressionFloor + (1-compressionFloor)*entropy))
}

// compressedSizeModel prices an image's content post-compression: real
// bytes are measured exactly (by gzipping them), virtual bytes via
// VirtualWireSize.
func compressedSizeModel(images ...unionfs.Image) int64 {
	var virtual int64
	var real bytes.Buffer
	zw := gzip.NewWriter(&real)
	for _, img := range images {
		for path, f := range img.Files {
			if f.Real {
				zw.Write([]byte(path))
				zw.Write(f.Data)
				continue
			}
			virtual += VirtualWireSize(f.VirtualSize, f.Entropy)
		}
	}
	zw.Close()
	return virtual + int64(real.Len())
}

// gcmNonceLen and gcmTagLen are AES-GCM's standard sizes, used when
// estimating an archive's wire footprint without sealing it.
const (
	gcmNonceLen = 12
	gcmTagLen   = 16
)

// EstimateArchiveWireSize prices the monolithic archive of st without
// sealing it: the same arithmetic as Seal (compression model over the
// disks, plus the gzipped serialized state as ciphertext with GCM tag,
// salt, and nonce) minus the key derivation and encryption work.
// Callers that only need the number — e.g. the vault's dedup
// comparison on every save — use this instead of paying PBKDF2+AES
// for a value they never store.
func EstimateArchiveWireSize(st *State) (int64, error) {
	var plain bytes.Buffer
	zw := gzip.NewWriter(&plain)
	if err := gob.NewEncoder(zw).Encode(st); err != nil {
		return 0, fmt.Errorf("nymstate: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return 0, fmt.Errorf("nymstate: compress: %w", err)
	}
	return compressedSizeModel(st.AnonDisk, st.CommDisk) +
		int64(plain.Len()) + gcmTagLen + saltLen + gcmNonceLen, nil
}

// RandSource supplies nonce/salt bytes (the simulation's deterministic
// RNG in tests, crypto/rand-style in a deployment).
type RandSource interface{ Bytes(b []byte) }

// Seal compresses and encrypts a nym state under the password.
func Seal(st *State, password string, rnd RandSource) (*Archive, error) {
	var plain bytes.Buffer
	zw := gzip.NewWriter(&plain)
	if err := gob.NewEncoder(zw).Encode(st); err != nil {
		return nil, fmt.Errorf("nymstate: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("nymstate: compress: %w", err)
	}
	salt := make([]byte, saltLen)
	rnd.Bytes(salt)
	key := DeriveKey([]byte(password), salt, KDFIterations, keyLen)
	blockCipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blockCipher)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	rnd.Bytes(nonce)
	ct := gcm.Seal(nil, nonce, plain.Bytes(), []byte(st.Name))
	wire := compressedSizeModel(st.AnonDisk, st.CommDisk) + int64(len(ct)) + int64(len(salt)+len(nonce))
	return &Archive{Salt: salt, Nonce: nonce, Ciphertext: ct, WireSize: wire}, nil
}

// Open decrypts an archive; a wrong password fails authentication.
func Open(a *Archive, password string, name string) (*State, error) {
	if a == nil || len(a.Salt) != saltLen || len(a.Ciphertext) == 0 {
		return nil, ErrBadArchive
	}
	key := DeriveKey([]byte(password), a.Salt, KDFIterations, keyLen)
	blockCipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blockCipher)
	if err != nil {
		return nil, err
	}
	if len(a.Nonce) != gcm.NonceSize() {
		return nil, ErrBadArchive
	}
	plain, err := gcm.Open(nil, a.Nonce, a.Ciphertext, []byte(name))
	if err != nil {
		return nil, ErrBadPassword
	}
	zr, err := gzip.NewReader(bytes.NewReader(plain))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	var st State
	if err := gob.NewDecoder(zr).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	return &st, nil
}

// Encode serializes an archive for storage.
func (a *Archive) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeArchive parses a stored archive.
func DecodeArchive(data []byte) (*Archive, error) {
	var a Archive
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArchive, err)
	}
	return &a, nil
}

// Processing-rate constants for the simulated compress/encrypt work
// the nym manager performs during a save or restore (bytes/second of
// logical content).
const (
	CompressRate = 120 << 20
	CryptoRate   = 300 << 20
)

// LogicalSize returns the uncompressed content footprint of a state:
// what the compressor must chew through.
func LogicalSize(st *State) int64 {
	var n int64
	for _, img := range []unionfs.Image{st.AnonDisk, st.CommDisk} {
		for _, f := range img.Files {
			if f.Real {
				n += int64(len(f.Data))
			} else {
				n += f.VirtualSize
			}
		}
	}
	return n
}
