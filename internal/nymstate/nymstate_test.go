package nymstate

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
)

func sampleState() *State {
	anonDisk := unionfs.NewLayer("anon/writable")
	fsA, _ := unionfs.Stack(anonDisk)
	fsA.WriteFile("/home/user/.config/chromium/cookies.json", []byte(`{"twitter.com":"ck-1"}`))
	fsA.WriteVirtual("/home/user/.cache/chromium/blob", 20<<20, 0.95)
	commDisk := unionfs.NewLayer("comm/writable")
	fsC, _ := unionfs.Stack(commDisk)
	fsC.WriteFile("/var/lib/tor/state", []byte("guard relay-b"))
	fsC.WriteVirtual("/var/lib/tor/cached-consensus", 2200<<10, 0.6)
	return &State{
		Name:      "alice-blog",
		Model:     "persistent",
		Cycles:    3,
		AnonDisk:  anonDisk.Export(),
		CommDisk:  commDisk.Export(),
		AnonState: anonnet.State{"guard": "relay-b", "consensus": "cached"},
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	st := sampleState()
	a, err := Seal(st, "correct horse", sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Open(a, "correct horse", "alice-blog")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != st.Name || back.Model != st.Model || back.Cycles != 3 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.AnonState["guard"] != "relay-b" {
		t.Fatalf("anon state lost: %v", back.AnonState)
	}
	restored := unionfs.Import(back.AnonDisk)
	fs, _ := unionfs.Stack(restored)
	data, err := fs.ReadFile("/home/user/.config/chromium/cookies.json")
	if err != nil || !bytes.Contains(data, []byte("ck-1")) {
		t.Fatalf("cookie file lost: %q %v", data, err)
	}
	info, err := fs.Stat("/home/user/.cache/chromium/blob")
	if err != nil || info.Size != 20<<20 {
		t.Fatalf("cache lost: %+v %v", info, err)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	a, _ := Seal(sampleState(), "right", sim.NewRand(1))
	if _, err := Open(a, "wrong", "alice-blog"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
}

func TestNameBindingPreventsSwap(t *testing.T) {
	// The nym name is authenticated data: an adversary cannot serve
	// Bob's archive when Alice asks for hers.
	a, _ := Seal(sampleState(), "pw", sim.NewRand(1))
	if _, err := Open(a, "pw", "other-nym"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
}

func TestCiphertextTamperDetected(t *testing.T) {
	a, _ := Seal(sampleState(), "pw", sim.NewRand(1))
	a.Ciphertext[len(a.Ciphertext)/2] ^= 0xFF
	if _, err := Open(a, "pw", "alice-blog"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	st := sampleState()
	a, _ := Seal(st, "pw", sim.NewRand(1))
	if bytes.Contains(a.Ciphertext, []byte("twitter")) || bytes.Contains(a.Ciphertext, []byte("guard")) {
		t.Fatal("plaintext visible in ciphertext")
	}
}

func TestWireSizeTracksContent(t *testing.T) {
	small := sampleState()
	a1, _ := Seal(small, "pw", sim.NewRand(1))
	big := sampleState()
	bigDisk := unionfs.Import(big.AnonDisk)
	fs, _ := unionfs.Stack(bigDisk)
	fs.GrowVirtual("/home/user/.cache/chromium/blob", 30<<20, 0.95)
	big.AnonDisk = bigDisk.Export()
	a2, _ := Seal(big, "pw", sim.NewRand(1))
	if a2.WireSize <= a1.WireSize {
		t.Fatalf("wire size did not grow: %d vs %d", a1.WireSize, a2.WireSize)
	}
	// High-entropy cache compresses barely; the 20 MiB cache alone
	// should keep the archive near its logical size.
	if a1.WireSize < 15<<20 {
		t.Fatalf("wire size %d implausibly small", a1.WireSize)
	}
	if a1.WireSize > int64(float64(LogicalSize(small))*1.05) {
		t.Fatalf("wire size %d exceeds logical %d", a1.WireSize, LogicalSize(small))
	}
}

func TestLowEntropyCompressesWell(t *testing.T) {
	st := sampleState()
	disk := unionfs.Import(st.AnonDisk)
	fs, _ := unionfs.Stack(disk)
	fs.Remove("/home/user/.cache/chromium/blob")
	fs.WriteVirtual("/home/user/logs", 20<<20, 0.05)
	st.AnonDisk = disk.Export()
	a, _ := Seal(st, "pw", sim.NewRand(1))
	if a.WireSize > 6<<20 {
		t.Fatalf("low-entropy archive = %d, want strong compression", a.WireSize)
	}
}

func TestArchiveEncodeDecode(t *testing.T) {
	a, _ := Seal(sampleState(), "pw", sim.NewRand(1))
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArchive(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.WireSize != a.WireSize || !bytes.Equal(back.Ciphertext, a.Ciphertext) {
		t.Fatal("archive round trip lost data")
	}
	if _, err := DecodeArchive([]byte("junk")); !errors.Is(err, ErrBadArchive) {
		t.Fatalf("junk decode: %v", err)
	}
}

func TestDeriveKeyKnownProperties(t *testing.T) {
	k1 := DeriveKey([]byte("pw"), []byte("salt"), 1000, 32)
	k2 := DeriveKey([]byte("pw"), []byte("salt"), 1000, 32)
	if !bytes.Equal(k1, k2) {
		t.Fatal("KDF not deterministic")
	}
	if bytes.Equal(k1, DeriveKey([]byte("pw"), []byte("other"), 1000, 32)) {
		t.Fatal("salt ignored")
	}
	if bytes.Equal(k1, DeriveKey([]byte("pw2"), []byte("salt"), 1000, 32)) {
		t.Fatal("password ignored")
	}
	if bytes.Equal(k1, DeriveKey([]byte("pw"), []byte("salt"), 999, 32)) {
		t.Fatal("iteration count ignored")
	}
	if len(DeriveKey([]byte("p"), []byte("s"), 10, 100)) != 100 {
		t.Fatal("multi-block output length wrong")
	}
}

// PBKDF2-HMAC-SHA256 test vector (RFC 7914 section 11 / community
// vectors): PBKDF2(P="passwd", S="salt", c=1, dkLen=64) prefix.
func TestDeriveKeyRFCVector(t *testing.T) {
	got := DeriveKey([]byte("passwd"), []byte("salt"), 1, 64)
	want := []byte{0x55, 0xac, 0x04, 0x6e, 0x56, 0xe3, 0x08, 0x9f}
	if !bytes.Equal(got[:8], want) {
		t.Fatalf("PBKDF2 vector mismatch: got %x", got[:8])
	}
}

func TestGuardSeedDeterministicAndDistinct(t *testing.T) {
	a := GuardSeed("pw", "dropbin/alice-blog")
	b := GuardSeed("pw", "dropbin/alice-blog")
	if a != b {
		t.Fatal("guard seed not deterministic")
	}
	if GuardSeed("pw2", "dropbin/alice-blog") == a {
		t.Fatal("password ignored")
	}
	if GuardSeed("pw", "gdrive/alice-blog") == a {
		t.Fatal("location ignored")
	}
}

// Property: seal/open is the identity for any state contents.
func TestPropertySealOpenIdentity(t *testing.T) {
	f := func(name string, cookie []byte, cacheKB uint16, entropyPct uint8, password string) bool {
		if name == "" {
			name = "n"
		}
		disk := unionfs.NewLayer("w")
		fs, _ := unionfs.Stack(disk)
		fs.WriteFile("/c", cookie)
		fs.WriteVirtual("/cache", int64(cacheKB)<<10, float64(entropyPct%101)/100)
		st := &State{Name: name, Model: "persistent", AnonDisk: disk.Export(), CommDisk: unionfs.NewLayer("c").Export()}
		a, err := Seal(st, password, sim.NewRand(42))
		if err != nil {
			return false
		}
		back, err := Open(a, password, name)
		if err != nil {
			return false
		}
		l := unionfs.Import(back.AnonDisk)
		fs2, _ := unionfs.Stack(l)
		got, err := fs2.ReadFile("/c")
		if err != nil || !bytes.Equal(got, cookie) {
			return false
		}
		info, err := fs2.Stat("/cache")
		return err == nil && info.Size == int64(cacheKB)<<10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateArchiveWireSizeMatchesSeal(t *testing.T) {
	// The estimate exists so callers can price the monolithic baseline
	// without paying PBKDF2+AES; it must agree with what Seal reports.
	st := sampleState()
	arch, err := Seal(st, "pw", sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	// gob walks maps in nondeterministic order, so two encodings of
	// the same state can gzip to slightly different lengths; the
	// estimate only has to agree to within that noise.
	got, err := EstimateArchiveWireSize(st)
	if err != nil {
		t.Fatal(err)
	}
	diff := got - arch.WireSize
	if diff < 0 {
		diff = -diff
	}
	if diff > 256 {
		t.Fatalf("estimate %d vs sealed wire size %d (|diff| %d > 256)", got, arch.WireSize, diff)
	}
}
