// Package guestos constructs the disk images Nymix boots its VMs
// from. The key trick (paper section 3.4): the OS image installed on
// the Nymix USB serves simultaneously as the host OS and as the base
// image for every AnonVM and CommVM. A small read-only configuration
// layer — network settings, /etc/rc.local, the window-manager startup
// script — differentiates the roles, and a RAM-backed writable layer
// absorbs all session writes.
//
// The package also carries each role's memory and boot profile: how
// many pages a freshly booted guest touches (split into KSM-mergeable
// base-image/zero content and private unique content) and how long its
// boot phases take. These calibrate Figures 3 and 7.
package guestos

import (
	"fmt"
	"time"

	"nymix/internal/unionfs"
)

// Role identifies what a VM is for.
type Role string

// The VM roles of the Nymix architecture.
const (
	RoleHypervisor Role = "hypervisor"
	RoleAnonVM     Role = "anonvm"
	RoleCommVM     Role = "commvm"
	RoleSaniVM     Role = "sanivm"
)

// MiB is 2^20 bytes.
const MiB = 1 << 20

// BuildBaseImage returns the sealed base image shared by the
// hypervisor and every VM: an Ubuntu 14.04-like system with the
// Chromium browser (chosen for StegoTorus support, section 4) and the
// pluggable anonymizers preinstalled.
func BuildBaseImage() *unionfs.Layer {
	l := unionfs.NewLayer("base-image")
	fs, err := unionfs.Stack(l)
	if err != nil {
		panic(err)
	}
	type entry struct {
		path    string
		size    int64
		entropy float64
	}
	entries := []entry{
		{"/boot/vmlinuz", 12 * MiB, 0.95},
		{"/boot/initrd.img", 28 * MiB, 0.97},
		{"/bin/core-utils", 45 * MiB, 0.75},
		{"/lib/system-libs", 310 * MiB, 0.8},
		{"/usr/bin/chromium", 165 * MiB, 0.85},
		{"/usr/bin/tor", 28 * MiB, 0.8},
		{"/usr/bin/dissent", 16 * MiB, 0.8},
		{"/usr/bin/sweet", 9 * MiB, 0.8},
		{"/usr/bin/mat", 11 * MiB, 0.7},
		{"/usr/lib/opencv", 64 * MiB, 0.85},
		{"/usr/share/x11", 140 * MiB, 0.8},
		{"/usr/share/fonts", 55 * MiB, 0.9},
		{"/usr/share/locale", 38 * MiB, 0.6},
		{"/var/lib/dpkg", 24 * MiB, 0.5},
	}
	for _, e := range entries {
		if err := fs.WriteVirtual(e.path, e.size, e.entropy); err != nil {
			panic(err)
		}
	}
	// Real config files the role layers will mask.
	fs.WriteFile("/etc/hostname", []byte("nymix"))
	fs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\n# base image: start nothing\nexit 0\n"))
	fs.WriteFile("/etc/network/interfaces", []byte("auto lo\niface lo inet loopback\n"))
	fs.WriteFile("/etc/xdg/autostart", []byte("# no autostart in base\n"))
	fs.WriteFile("/etc/resolution", []byte("1024x768\n")) // homogeneous fingerprint, section 4.2
	return l.Seal()
}

// ConfigLayer returns the sealed configuration layer that turns the
// base image into the given role. The anonymizer name selects which
// CommVM variant to build ("tor", "dissent", "incognito").
func ConfigLayer(role Role, anonymizer string) *unionfs.Layer {
	name := fmt.Sprintf("conf-%s", role)
	if role == RoleCommVM {
		name = fmt.Sprintf("conf-%s-%s", role, anonymizer)
	}
	l := unionfs.NewLayer(name)
	fs, err := unionfs.Stack(l)
	if err != nil {
		panic(err)
	}
	switch role {
	case RoleAnonVM:
		fs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\nconfigure-wire eth0 commvm\nexit 0\n"))
		fs.WriteFile("/etc/network/interfaces", []byte("auto eth0\niface eth0 inet static # virtual wire to CommVM\n"))
		fs.WriteFile("/etc/xdg/autostart", []byte("exec chromium --proxy-server=socks5://commvm:9050\n"))
	case RoleCommVM:
		fs.WriteFile("/etc/rc.local", []byte(fmt.Sprintf("#!/bin/sh\nstart-anonymizer %s\nexit 0\n", anonymizer)))
		fs.WriteFile("/etc/network/interfaces", []byte("auto eth0 eth1\n# eth0: virtual wire; eth1: KVM user-mode NAT\n"))
		fs.WriteFile("/etc/anonymizer", []byte(anonymizer+"\n"))
	case RoleSaniVM:
		fs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\nmount-foreign-filesystems readonly\nstart-scrub-watcher\nexit 0\n"))
		fs.WriteFile("/etc/network/interfaces", []byte("# SaniVM is non-networked\n"))
	case RoleHypervisor:
		fs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\nstart-nym-manager\nexit 0\n"))
	default:
		panic(fmt.Sprintf("guestos: unknown role %q", role))
	}
	return l.Seal()
}

// MemProfile describes a guest's resident-set behaviour in pages.
// Shared pages carry base-image content identical across VMs of the
// same role (KSM-mergeable); zero pages merge host-wide; unique pages
// never merge. Calibrated so eight nymboxes land near the paper's
// Figure 3: roughly 600 MB per nymbox with a >5% KSM saving.
type MemProfile struct {
	BootSharedPages int64   // resident base-image pages after boot
	BootZeroPages   int64   // zeroed free-list pages touched at init
	BootUniqueFrac  float64 // fraction of remaining RAM touched with unique content at init
	ActiveExtraFrac float64 // additional unique fraction dirtied by interaction
}

// MemProfileFor returns the role's memory profile.
func MemProfileFor(role Role) MemProfile {
	switch role {
	case RoleAnonVM:
		return MemProfile{
			BootSharedPages: 6400, // ~25 MiB of shared base-image pages
			BootZeroPages:   2048, // ~8 MiB zero pool
			BootUniqueFrac:  0.86,
			ActiveExtraFrac: 0.12,
		}
	case RoleCommVM:
		return MemProfile{
			BootSharedPages: 3100, // ~12 MiB
			BootZeroPages:   1024,
			BootUniqueFrac:  0.88,
			ActiveExtraFrac: 0.08,
		}
	case RoleSaniVM:
		return MemProfile{
			BootSharedPages: 4200,
			BootZeroPages:   1024,
			BootUniqueFrac:  0.55,
			ActiveExtraFrac: 0.10,
		}
	default: // hypervisor or installed OS
		return MemProfile{
			BootSharedPages: 9000,
			BootZeroPages:   4096,
			BootUniqueFrac:  0.5,
			ActiveExtraFrac: 0.1,
		}
	}
}

// BootProfile describes a guest's boot-time behaviour.
type BootProfile struct {
	Base   time.Duration // mean boot duration
	Jitter float64       // relative spread
}

// BootProfileFor returns the role's boot profile. The AnonVM is the
// "Boot VM" phase of Figure 7.
func BootProfileFor(role Role) BootProfile {
	switch role {
	case RoleAnonVM:
		return BootProfile{Base: 10 * time.Second, Jitter: 0.08}
	case RoleCommVM:
		return BootProfile{Base: 6 * time.Second, Jitter: 0.08}
	case RoleSaniVM:
		return BootProfile{Base: 8 * time.Second, Jitter: 0.08}
	default:
		return BootProfile{Base: 20 * time.Second, Jitter: 0.1}
	}
}
