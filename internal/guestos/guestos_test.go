package guestos

import (
	"strings"
	"testing"

	"nymix/internal/unionfs"
)

func TestBaseImageSealedAndPopulated(t *testing.T) {
	base := BuildBaseImage()
	if !base.Sealed() {
		t.Fatal("base image not sealed")
	}
	fs, err := unionfs.Stack(unionfs.NewLayer("top"), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/usr/bin/chromium", "/usr/bin/tor", "/usr/bin/dissent", "/etc/rc.local"} {
		if !fs.Exists(p) {
			t.Fatalf("base image missing %s", p)
		}
	}
	// A realistic live-USB image runs to at least a gigabyte.
	if total := fs.TotalSize("/"); total < 800*MiB {
		t.Fatalf("base image only %d bytes", total)
	}
}

func TestConfigLayersMaskRoleFiles(t *testing.T) {
	base := BuildBaseImage()
	for _, tc := range []struct {
		role Role
		anon string
		want string
	}{
		{RoleAnonVM, "", "configure-wire"},
		{RoleCommVM, "tor", "start-anonymizer tor"},
		{RoleCommVM, "dissent", "start-anonymizer dissent"},
		{RoleSaniVM, "", "mount-foreign-filesystems"},
		{RoleHypervisor, "", "start-nym-manager"},
	} {
		conf := ConfigLayer(tc.role, tc.anon)
		if !conf.Sealed() {
			t.Fatalf("%s config layer not sealed", tc.role)
		}
		fs, err := unionfs.Stack(unionfs.NewLayer("top"), conf, base)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := fs.ReadFile("/etc/rc.local")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(rc), tc.want) {
			t.Fatalf("%s rc.local = %q, want %q", tc.role, rc, tc.want)
		}
	}
}

func TestCommVMVariantsDiffer(t *testing.T) {
	tor := ConfigLayer(RoleCommVM, "tor")
	dis := ConfigLayer(RoleCommVM, "dissent")
	if tor.Name() == dis.Name() {
		t.Fatal("anonymizer variants share a layer name")
	}
}

func TestUnknownRolePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConfigLayer(Role("bogus"), "")
}

func TestMemProfilesReasonable(t *testing.T) {
	for _, role := range []Role{RoleAnonVM, RoleCommVM, RoleSaniVM, RoleHypervisor} {
		p := MemProfileFor(role)
		if p.BootSharedPages <= 0 || p.BootZeroPages < 0 {
			t.Fatalf("%s: bad page counts %+v", role, p)
		}
		if p.BootUniqueFrac <= 0 || p.BootUniqueFrac > 1 {
			t.Fatalf("%s: bad unique frac %+v", role, p)
		}
		if p.ActiveExtraFrac < 0 || p.BootUniqueFrac+p.ActiveExtraFrac > 1 {
			t.Fatalf("%s: fractions exceed RAM %+v", role, p)
		}
	}
}

func TestBootProfilesOrdered(t *testing.T) {
	// The CommVM is a minimal system and must boot faster than the
	// browser-laden AnonVM.
	if BootProfileFor(RoleCommVM).Base >= BootProfileFor(RoleAnonVM).Base {
		t.Fatal("CommVM should boot faster than AnonVM")
	}
}
