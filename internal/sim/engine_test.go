package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-time.Hour, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v for clamped event", e.Now())
	}
}

func TestRunUntilAdvancesClockExactly(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(10*time.Second, func() { fired++ })
	e.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	// Double-cancel and nil-safety.
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
}

func TestEventsScheduledInsideEvents(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(time.Second, func() {
		e.Schedule(time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 1 || times[0] != 2*time.Second {
		t.Fatalf("nested event fired at %v, want [2s]", times)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Go("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(3 * time.Second)
		marks = append(marks, p.Now())
		p.Sleep(2 * time.Second)
		marks = append(marks, p.Now())
	})
	e.Run()
	want := []Time{0, 3 * time.Second, 5 * time.Second}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(time.Second)
				}
			})
		}
		e.Run()
		return trace
	}
	first := run()
	second := run()
	if len(first) != 9 {
		t.Fatalf("trace length = %d, want 9", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nondeterministic traces:\n%v\n%v", first, second)
		}
	}
}

func TestFutureAwait(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	e.Schedule(4*time.Second, func() { f.Complete(99, nil) })
	var got int
	var at Time
	e.Go("waiter", func(p *Proc) {
		got, _ = Await(p, f)
		at = p.Now()
	})
	e.Run()
	if got != 99 || at != 4*time.Second {
		t.Fatalf("got %d at %v, want 99 at 4s", got, at)
	}
}

func TestAwaitCompletedFutureDoesNotBlock(t *testing.T) {
	e := NewEngine(1)
	f := CompletedFuture(e, "hello", nil)
	var got string
	e.Go("waiter", func(p *Proc) { got, _ = Await(p, f) })
	e.Run()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestGoFutureCompletesWhenProcExits(t *testing.T) {
	e := NewEngine(1)
	done := e.Go("worker", func(p *Proc) { p.Sleep(7 * time.Second) })
	var at Time = -1
	e.Go("watcher", func(p *Proc) {
		Await(p, done)
		at = p.Now()
	})
	e.Run()
	if at != 7*time.Second {
		t.Fatalf("worker completion observed at %v, want 7s", at)
	}
}

func TestAwaitAllCollectsFirstError(t *testing.T) {
	e := NewEngine(1)
	f1 := NewFuture[int](e)
	f2 := NewFuture[int](e)
	e.Schedule(time.Second, func() { f1.Complete(1, nil) })
	e.Schedule(2*time.Second, func() { f2.Complete(0, errSentinel) })
	var err error
	e.Go("w", func(p *Proc) { err = AwaitAll(p, f1, f2) })
	e.Run()
	if err != errSentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}

func TestFutureDoubleCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double complete")
		}
	}()
	e := NewEngine(1)
	f := NewFuture[int](e)
	f.Complete(1, nil)
	f.Complete(2, nil)
}

func TestProcCompletingFutureWakesAnotherProc(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[string](e)
	var order []string
	e.Go("producer", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "produce")
		f.Complete("v", nil)
		order = append(order, "after-complete")
	})
	e.Go("consumer", func(p *Proc) {
		v, _ := Await(p, f)
		order = append(order, "consume-"+v)
	})
	e.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "produce" {
		t.Fatalf("order = %v", order)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandJitterSpread(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("jitter out of range: %v", v)
		}
	}
	if r.Jitter(100, 0) != 100 {
		t.Fatal("zero spread must be identity")
	}
}

func TestRandBytesDeterministic(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	NewRand(9).Bytes(a)
	NewRand(9).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
	nonzero := 0
	for _, v := range a {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 20 {
		t.Fatalf("suspiciously many zero bytes: %d nonzero of %d", nonzero, len(a))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}
