// Package sim provides the deterministic discrete-event simulation
// kernel underneath every Nymix substrate: a virtual clock, an event
// queue, cooperative processes, futures, and a seeded random source.
//
// All simulated components — virtual machines, network links, CPU
// schedulers, anonymizers — advance time exclusively through an Engine.
// Exactly one process or event callback executes at a time, so shared
// simulation state needs no locking and every run is reproducible from
// its seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in simulated time, measured as an offset from the
// start of the simulation (t = 0).
type Time = time.Duration

// Engine is a discrete-event simulation executor. The zero value is
// not usable; construct one with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     int64
	rand    *Rand
	stopped bool
	// events processed since construction, for introspection and tests.
	processed int64
}

// event is a scheduled callback. Events at equal times fire in
// scheduling order (seq) so runs are deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// Timer is a handle to a scheduled event that may be canceled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// NewEngine returns an engine whose clock reads zero and whose random
// source is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rand: NewRand(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rand }

// Processed reports how many events the engine has executed.
func (e *Engine) Processed() int64 { return e.processed }

// Schedule runs fn after delay d of simulated time. A negative delay is
// treated as zero. It returns a Timer that can cancel the callback.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute simulated time t. Times in the past
// are clamped to the present.
func (e *Engine) ScheduleAt(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil processes events with timestamps at or before t, then
// advances the clock to exactly t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued (non-canceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	if ev.canceled {
		return
	}
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v but clock is %v", ev.at, e.now))
	}
	e.now = ev.at
	e.processed++
	ev.fn()
}
