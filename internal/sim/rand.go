package sim

import "math"

// Rand is a small, fast, deterministic random source (splitmix64 /
// xorshift-based). It exists so simulation runs are reproducible from
// a single seed without importing math/rand's global state.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed. A zero seed is remapped
// so the generator never degenerates.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Jitter returns base scaled by a factor uniform in [1-spread, 1+spread].
// It is the standard way simulated durations acquire realistic noise.
func (r *Rand) Jitter(base float64, spread float64) float64 {
	if spread <= 0 {
		return base
	}
	return base * (1 + spread*(2*r.Float64()-1))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Bytes fills b with deterministic pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for i+8 <= len(b) {
		v := r.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
		i += 8
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
