package sim

import "fmt"

// Proc is a cooperative simulated process. A Proc runs in its own
// goroutine but the engine guarantees that at most one Proc (or event
// callback) executes at a time: a Proc only runs between Sleep/await
// points, and the engine blocks while it does. This gives linear,
// blocking-style code (boot the VM, then start Tor, then load the
// page) deterministic discrete-event semantics without locks.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	dead   bool
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Rand returns the engine's random source.
func (p *Proc) Rand() *Rand { return p.eng.Rand() }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Go starts fn as a simulated process at the current simulated time.
// The returned future completes (with the zero value) when fn returns.
// fn must interact with simulated time only through p.
func (e *Engine) Go(name string, fn func(p *Proc)) *Future[struct{}] {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	done := NewFuture[struct{}](e)
	e.Schedule(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			done.Complete(struct{}{}, nil)
			p.parked <- struct{}{}
		}()
		p.handoff()
	})
	return done
}

// handoff transfers control from the engine to the process goroutine
// and blocks until the process parks again (sleeps, awaits, or exits).
// It must be called from the engine goroutine.
func (p *Proc) handoff() {
	p.resume <- struct{}{}
	<-p.parked
}

// yield parks the process, returning control to the engine, and blocks
// until the engine resumes it. It must be called from the process
// goroutine, after arranging a wake-up.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	if p.dead {
		panic("sim: Sleep on dead proc " + p.name)
	}
	p.eng.Schedule(d, p.handoff)
	p.yield()
}

// Await blocks the process until f completes and returns its result.
func Await[T any](p *Proc, f *Future[T]) (T, error) {
	if !f.done {
		f.onDone(p.handoff)
		p.yield()
	}
	if !f.done {
		panic(fmt.Sprintf("sim: proc %s woke before future completed", p.name))
	}
	return f.val, f.err
}

// AwaitAll blocks until every future in fs completes, returning the
// first error encountered (all futures are still drained).
func AwaitAll[T any](p *Proc, fs ...*Future[T]) error {
	var firstErr error
	for _, f := range fs {
		if _, err := Await(p, f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Future is a one-shot container for a value produced at a later
// simulated time. Completion callbacks run as zero-delay events.
type Future[T any] struct {
	eng  *Engine
	done bool
	val  T
	err  error
	subs []func()
}

// NewFuture returns an incomplete future bound to e.
func NewFuture[T any](e *Engine) *Future[T] { return &Future[T]{eng: e} }

// CompletedFuture returns a future that is already complete.
func CompletedFuture[T any](e *Engine, val T, err error) *Future[T] {
	return &Future[T]{eng: e, done: true, val: val, err: err}
}

// Complete resolves the future. Completing a future twice panics:
// futures are one-shot by contract.
func (f *Future[T]) Complete(val T, err error) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = val
	f.err = err
	subs := f.subs
	f.subs = nil
	for _, fn := range subs {
		fn()
	}
}

// Done reports whether the future has completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the result; it panics if the future is not done.
func (f *Future[T]) Value() (T, error) {
	if !f.done {
		panic("sim: Value on incomplete future")
	}
	return f.val, f.err
}

// onDone registers fn to run when the future completes (immediately if
// it already has). Callbacks run synchronously inside Complete, in
// registration order.
func (f *Future[T]) onDone(fn func()) {
	if f.done {
		fn()
		return
	}
	f.subs = append(f.subs, fn)
}

// OnDone schedules fn as a zero-delay event when the future completes.
func (f *Future[T]) OnDone(fn func()) {
	f.onDone(func() { f.eng.Schedule(0, fn) })
}

// Broadcast is a reusable wake-all condition: waiters take a Future
// (or Park), and Notify completes every outstanding one. It is the
// watcher idiom shared by the fleet orchestrator and the cluster
// placement layer — state changes wake everyone parked on progress.
type Broadcast struct {
	eng  *Engine
	subs []*Future[struct{}]
}

// NewBroadcast returns a broadcast bound to e.
func NewBroadcast(e *Engine) *Broadcast { return &Broadcast{eng: e} }

// Future returns a future completed at the next Notify.
func (b *Broadcast) Future() *Future[struct{}] {
	f := NewFuture[struct{}](b.eng)
	b.subs = append(b.subs, f)
	return f
}

// Park suspends the process until the next Notify.
func (b *Broadcast) Park(p *Proc) { Await(p, b.Future()) }

// Notify wakes every outstanding waiter.
func (b *Broadcast) Notify() {
	subs := b.subs
	b.subs = nil
	for _, f := range subs {
		f.Complete(struct{}{}, nil)
	}
}
