package vnet

import (
	"sort"
	"time"

	"nymix/internal/sim"
)

// LinkConfig parameterizes a link.
type LinkConfig struct {
	Latency  time.Duration // one-way propagation delay
	Capacity float64       // bytes per second, shared by both directions; 0 = unlimited
	Loss     float64       // fraction of wire bytes lost per crossing [0,0.9]; retransmission inflates the flow's wire volume
}

// Link direction indices: dirAB is traversal from endpoint a toward
// endpoint b, dirBA the reverse. Latency and capacity are symmetric;
// up/down state and loss are per direction, which is what makes
// asymmetric partitions expressible.
const (
	dirAB = 0
	dirBA = 1
)

// Link is a point-to-point link between two NICs. Capacity is shared
// by both directions (half-duplex fluid model); administrative state
// and loss are tracked per direction.
type Link struct {
	id       int
	a, b     *NIC
	cfg      LinkConfig
	down     [2]bool
	loss     [2]float64
	dpi      *DPIEngine
	active   map[*Transfer]struct{}
	captures []*Capture
	wire     [2]float64 // bytes settled across the link per direction (continuous)
	ledger   [2]float64 // bytes accounted at flow detach per direction (double entry)
}

// Connect joins two nodes with a link.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	loss := clampLoss(cfg.Loss)
	l := &Link{
		id:     len(n.links),
		cfg:    cfg,
		loss:   [2]float64{loss, loss},
		active: make(map[*Transfer]struct{}),
	}
	l.a = &NIC{node: a, link: l}
	l.b = &NIC{node: b, link: l}
	a.ifaces = append(a.ifaces, l.a)
	b.ifaces = append(b.ifaces, l.b)
	n.links = append(n.links, l)
	return l
}

func clampLoss(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.9 {
		return 0.9
	}
	return v
}

// Endpoints returns the two nodes the link joins.
func (l *Link) Endpoints() (*Node, *Node) { return l.a.node, l.b.node }

// Config returns the link's parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// A returns the NIC at the link's first endpoint.
func (l *Link) A() *NIC { return l.a }

// B returns the NIC at the link's second endpoint.
func (l *Link) B() *NIC { return l.b }

// NICFor returns the link's NIC attached to nd, or nil.
func (l *Link) NICFor(nd *Node) *NIC {
	switch nd {
	case l.a.node:
		return l.a
	case l.b.node:
		return l.b
	}
	return nil
}

// dirFrom returns the direction index for traffic transmitted by nd's
// side of the link. nd must be an endpoint.
func (l *Link) dirFrom(nd *Node) int {
	if nd == l.a.node {
		return dirAB
	}
	return dirBA
}

// txNIC and rxNIC return the transmitting and receiving NIC for a
// direction index.
func (l *Link) txNIC(dir int) *NIC {
	if dir == dirAB {
		return l.a
	}
	return l.b
}

func (l *Link) rxNIC(dir int) *NIC {
	if dir == dirAB {
		return l.b
	}
	return l.a
}

// SetDown takes the link down (true) or up (false) in both directions.
// Taking a link down fails every transfer currently crossing it.
func (l *Link) SetDown(n *Network, down bool) {
	l.down[dirAB] = down
	l.down[dirBA] = down
	if !down {
		return
	}
	l.failActive(func(*Transfer) bool { return true }, ErrLinkDown)
}

// SetDownOneWay takes the direction transmitted from `from` down
// (true) or up (false), leaving the reverse direction untouched: an
// asymmetric impairment. Taking a direction down fails every transfer
// whose path crosses the link in that direction.
func (l *Link) SetDownOneWay(n *Network, from *Node, down bool) {
	dir := l.dirFrom(from)
	l.down[dir] = down
	if !down {
		return
	}
	l.failActive(func(t *Transfer) bool { return t.crossesDir(l, dir) }, ErrLinkDown)
}

// Down reports whether the link is down in either direction.
func (l *Link) Down() bool { return l.down[dirAB] || l.down[dirBA] }

// DownFrom reports whether the direction transmitted from nd is down.
func (l *Link) DownFrom(nd *Node) bool { return l.down[l.dirFrom(nd)] }

// SetLoss sets the link's loss rate in both directions for flows
// started after the call (in-flight flows keep the wire volume they
// were admitted with). The rate is clamped to [0, 0.9].
func (l *Link) SetLoss(loss float64) {
	v := clampLoss(loss)
	l.cfg.Loss = v
	l.loss[dirAB] = v
	l.loss[dirBA] = v
}

// Loss returns the loss rate for the direction transmitted from nd.
func (l *Link) Loss(nd *Node) float64 { return l.loss[l.dirFrom(nd)] }

// SetDPI installs (or, with nil, removes) a DPI engine on the link.
// Every new flow crossing the link in either direction is classified
// at admission; installing an engine mid-run immediately re-inspects
// in-flight flows and fails the ones it would drop, the way a censor
// tears down established connections when a new rule ships.
func (l *Link) SetDPI(n *Network, e *DPIEngine) {
	l.dpi = e
	if e == nil {
		return
	}
	l.failActive(func(t *Transfer) bool {
		h := t.hopOn(l)
		if h == nil {
			return false
		}
		ruling := e.inspect(Flow{
			Src:         t.opts.From,
			ObservedSrc: h.observedSrc,
			Dst:         t.opts.To,
			Proto:       t.opts.Proto,
			Bytes:       t.opts.Bytes,
		})
		return ruling.Verdict == Drop
	}, ErrCensored)
}

// DPI returns the engine installed on the link, or nil.
func (l *Link) DPI() *DPIEngine { return l.dpi }

// WireBytesFrom returns the wire bytes settled across the link in the
// direction transmitted from nd.
func (l *Link) WireBytesFrom(nd *Node) int64 { return round64(l.wire[l.dirFrom(nd)]) }

// WireBytesTotal returns the wire bytes settled across the link in
// both directions since creation.
func (l *Link) WireBytesTotal() int64 { return round64(l.wire[dirAB] + l.wire[dirBA]) }

// LedgerBytesTotal returns the per-flow byte totals accounted when
// flows detached from the link. Once the network is quiescent this
// must equal WireBytesTotal — the double-entry cross-check behind the
// partition experiment's tap accounting.
func (l *Link) LedgerBytesTotal() int64 { return round64(l.ledger[dirAB] + l.ledger[dirBA]) }

// failActive fails the link's active transfers matching pred, in id
// order for determinism.
func (l *Link) failActive(pred func(*Transfer) bool, cause error) {
	var victims []*Transfer
	for t := range l.active {
		if pred(t) {
			victims = append(victims, t)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, t := range victims {
		t.fail(cause)
	}
}

// Capture is a passive tap on a link, the simulation's Wireshark. The
// paper's validation runs one on the host uplink to confirm an idle
// Nymix emits only DHCP and anonymizer traffic.
type Capture struct {
	link    *Link
	Entries []CaptureEntry
}

// CaptureEntry records one flow crossing a tapped link.
type CaptureEntry struct {
	Time        sim.Time
	ObservedSrc string // source as visible at this link (post-NAT)
	Dst         string
	Proto       string
	Bytes       int64
}

// Tap attaches a capture to the link.
func (l *Link) Tap() *Capture {
	c := &Capture{link: l}
	l.captures = append(l.captures, c)
	return c
}

// Protos returns the distinct protocol labels seen, sorted.
func (c *Capture) Protos() []string {
	set := map[string]bool{}
	for _, e := range c.Entries {
		set[e.Proto] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
