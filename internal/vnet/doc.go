// Package vnet simulates the network fabric underneath Nymix as a
// composition of three layers, in the netem idiom:
//
//	NIC    — an attachment point on a node; carries always-on byte
//	         counters and optional WireTap decorators, the ground
//	         truth for per-link wire accounting.
//	Link   — a point-to-point pipe with one-way latency, shared
//	         capacity, per-direction up/down state and loss rate, a
//	         passive Capture tap, and a pluggable DPI engine that can
//	         drop or throttle classified flows (a programmable
//	         censor).
//	Router — a forwarding node, optionally labelled with a region so
//	         multi-region topologies can be severed and healed along
//	         region boundaries.
//
// The fabric models the host-only "virtual wire" between an AnonVM
// and its CommVM, the host's NAT'd uplink, the DeterLab-like test
// deployment the paper evaluates against (80 ms RTT, 10 Mbit/s rate
// limit), and the public Internet of simulated web sites.
//
// Bulk data moves as fluid flows: concurrent transfers sharing a link
// receive max-min fair rates, recomputed whenever a flow starts or
// finishes. That reproduces the contention behaviour behind Figure 5
// without packet-level detail. As flows progress, each crossed NIC is
// credited with the bytes that moved, so tap totals and the per-flow
// detach ledger double-enter the same wire.
//
// Isolation — the property validated in section 5.1 — is enforced
// structurally: routes exist only where links exist and every
// intermediate node's forwarding policy admits the hop. A blocked
// probe behaves like a silent drop ("as if the host did not exist").
// Partitions extend the same idea to whole regions: a severed region
// pair removes every route crossing the boundary in that direction,
// fails in-flight flows with a typed vnet.partitioned code, and can
// be scripted ahead of time with a Fault schedule (Network.Play).
package vnet
