package vnet

import (
	"fmt"
	"time"

	"nymix/internal/sim"
)

// Result describes a finished transfer.
type Result struct {
	Bytes   int64
	Started sim.Time
	Ended   sim.Time
}

// Duration returns the transfer's elapsed simulated time.
func (r Result) Duration() time.Duration { return r.Ended - r.Started }

// TransferOpts parameterizes a flow.
type TransferOpts struct {
	From, To string
	Via      []string // proxy waypoints (e.g. Tor relays), in order
	Bytes    int64
	Proto    string  // protocol label, visible to captures, policies, and DPI
	Overhead float64 // fractional protocol overhead; wire bytes = Bytes*(1+Overhead)
	// NoHandshake skips the connection-setup round trip (datagrams).
	NoHandshake bool
	MaxRate     float64 // per-flow cap in bytes/s; 0 = DefaultMaxRate
}

// Transfer is an in-flight fluid flow.
type Transfer struct {
	id         int64
	net        *Network
	opts       TransferOpts
	hops       []hop
	segEnds    [][2]*Node // (origin, destination) of each proxy segment
	remaining  float64
	delivered  float64 // wire bytes settled so far (feeds the detach ledger)
	rate       float64
	lastUpdate sim.Time
	timer      *sim.Timer
	fut        *sim.Future[Result]
	started    sim.Time
	active     bool
	finished   bool
}

// crossesDir reports whether the flow's path crosses l in direction
// dir.
func (t *Transfer) crossesDir(l *Link, dir int) bool {
	for _, h := range t.hops {
		if h.link == l && h.dir == dir {
			return true
		}
	}
	return false
}

// hopOn returns the flow's first hop across l, or nil.
func (t *Transfer) hopOn(l *Link) *hop {
	for i := range t.hops {
		if t.hops[i].link == l {
			return &t.hops[i]
		}
	}
	return nil
}

// StartTransfer begins a flow and returns a future that completes when
// the last byte is delivered (or the flow fails).
func (n *Network) StartTransfer(opts TransferOpts) *sim.Future[Result] {
	fut := sim.NewFuture[Result](n.eng)
	src, dst := n.nodes[opts.From], n.nodes[opts.To]
	if src == nil || dst == nil {
		n.eng.Schedule(0, func() { fut.Complete(Result{}, fmt.Errorf("%w: unknown endpoint", ErrNoRoute)) })
		return fut
	}
	vias, err := n.viaNodes(opts.Via)
	if err != nil {
		n.eng.Schedule(0, func() { fut.Complete(Result{}, err) })
		return fut
	}
	hops, err := n.route(src, dst, vias, opts.Proto)
	if err != nil {
		// Silent drop: the failure surfaces only after a probe timeout.
		n.eng.Schedule(3*time.Second, func() { fut.Complete(Result{}, err) })
		return fut
	}
	if opts.MaxRate <= 0 {
		opts.MaxRate = DefaultMaxRate
	}
	// DPI admission: every engine on the path inspects the flow. A
	// drop behaves like the silent drop of a censoring middlebox; a
	// throttle caps the flow's rate below its own ceiling.
	for _, h := range hops {
		e := h.link.dpi
		if e == nil {
			continue
		}
		ruling := e.inspect(Flow{
			Src:         opts.From,
			ObservedSrc: h.observedSrc,
			Dst:         opts.To,
			Proto:       opts.Proto,
			Bytes:       opts.Bytes,
		})
		switch ruling.Verdict {
		case Drop:
			e.noteDrop(opts.Proto, opts.Bytes)
			dropErr := fmt.Errorf("%w (%s -> %s, proto %s)", ErrCensored, opts.From, opts.To, opts.Proto)
			n.eng.Schedule(3*time.Second, func() { fut.Complete(Result{}, dropErr) })
			return fut
		case Throttle:
			e.noteThrottle(opts.Proto, opts.Bytes)
			if ruling.Rate > 0 && ruling.Rate < opts.MaxRate {
				opts.MaxRate = ruling.Rate
			}
		}
	}
	wire := float64(opts.Bytes) * (1 + opts.Overhead)
	if wire < 1 {
		wire = 1
	}
	// Lossy hops inflate the wire volume: every crossing of a hop with
	// loss p must carry 1/(1-p) times the bytes to deliver the payload
	// (end-to-end retransmission in the fluid model).
	for _, h := range hops {
		if p := h.link.loss[h.dir]; p > 0 {
			wire /= 1 - p
		}
	}
	points := append([]*Node{src}, vias...)
	points = append(points, dst)
	segEnds := make([][2]*Node, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		segEnds = append(segEnds, [2]*Node{points[i], points[i+1]})
	}
	t := &Transfer{
		id:        n.nextID,
		net:       n,
		opts:      opts,
		hops:      hops,
		segEnds:   segEnds,
		remaining: wire,
		fut:       fut,
		started:   n.eng.Now(),
	}
	n.nextID++
	var setup time.Duration
	for _, h := range hops {
		setup += h.link.cfg.Latency
	}
	if !opts.NoHandshake {
		setup *= 2 // connection setup costs a full round trip first
	}
	n.eng.Schedule(setup, func() { n.activate(t) })
	return fut
}

func (n *Network) activate(t *Transfer) {
	if t.finished {
		return
	}
	// The fabric may have changed during the handshake window: a
	// direction gone down or a region severed kills the flow before
	// any byte moves.
	for _, h := range t.hops {
		if h.link.down[h.dir] {
			t.finished = true
			t.fut.Complete(Result{Started: t.started, Ended: n.eng.Now()}, ErrLinkDown)
			return
		}
	}
	if n.partitionBlocked(t) {
		t.finished = true
		t.fut.Complete(Result{Started: t.started, Ended: n.eng.Now()}, ErrPartitioned)
		return
	}
	t.active = true
	t.lastUpdate = n.eng.Now()
	for _, h := range t.hops {
		h.link.active[t] = struct{}{}
		for _, c := range h.link.captures {
			c.Entries = append(c.Entries, CaptureEntry{
				Time:        n.eng.Now(),
				ObservedSrc: h.observedSrc,
				Dst:         t.opts.To,
				Proto:       t.opts.Proto,
				Bytes:       t.opts.Bytes,
			})
		}
	}
	n.transfers = append(n.transfers, t)
	n.recompute()
}

// settle advances the flow to now at its current rate, moving the
// progressed bytes out of remaining and crediting them to every NIC,
// tap, and link counter on the path.
func (t *Transfer) settle(now sim.Time) {
	elapsed := (now - t.lastUpdate).Seconds()
	if elapsed > 0 && t.rate > 0 {
		moved := t.rate * elapsed
		if moved > t.remaining {
			moved = t.remaining
		}
		t.remaining -= moved
		if t.remaining < 0 {
			t.remaining = 0
		}
		t.credit(moved)
	}
	t.lastUpdate = now
}

// credit books moved wire bytes onto every hop of the path: the
// link's directional counter, both NICs, and any attached taps.
func (t *Transfer) credit(moved float64) {
	if moved <= 0 {
		return
	}
	t.delivered += moved
	for i := range t.hops {
		h := &t.hops[i]
		l := h.link
		l.wire[h.dir] += moved
		tx, rx := l.txNIC(h.dir), l.rxNIC(h.dir)
		tx.tx += moved
		rx.rx += moved
		for _, w := range tx.taps {
			w.tx += moved
		}
		for _, w := range rx.taps {
			w.rx += moved
		}
	}
}

// recompute reruns max-min fair allocation across all active flows and
// reschedules their completion events. Called on every flow start and
// finish.
func (n *Network) recompute() {
	now := n.eng.Now()
	// Settle progress at the old rates.
	for _, t := range n.transfers {
		t.settle(now)
		if t.timer != nil {
			t.timer.Cancel()
			t.timer = nil
		}
		t.rate = 0
	}
	// Progressive filling (max-min fairness).
	residual := make(map[*Link]float64)
	unfrozen := make(map[*Transfer]bool, len(n.transfers))
	for _, t := range n.transfers {
		unfrozen[t] = true
		for _, h := range t.hops {
			if h.link.cfg.Capacity > 0 {
				residual[h.link] = h.link.cfg.Capacity
			}
		}
	}
	for len(unfrozen) > 0 {
		// Count unfrozen flows per finite link.
		count := make(map[*Link]int)
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			seen := map[*Link]bool{}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && !seen[h.link] {
					count[h.link]++
					seen[h.link] = true
				}
			}
		}
		// Smallest allowable uniform increment.
		delta := -1.0
		for l, c := range count {
			if c == 0 {
				continue
			}
			share := residual[l] / float64(c)
			if delta < 0 || share < delta {
				delta = share
			}
		}
		for _, t := range n.transfers {
			if unfrozen[t] {
				head := t.opts.MaxRate - t.rate
				if delta < 0 || head < delta {
					delta = head
				}
			}
		}
		if delta <= 1e-9 {
			delta = 0
		}
		// Apply the increment and freeze saturated flows.
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			t.rate += delta
			seen := map[*Link]bool{}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && !seen[h.link] {
					residual[h.link] -= delta
					seen[h.link] = true
				}
			}
		}
		frozeAny := false
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			if t.rate >= t.opts.MaxRate-1e-9 {
				delete(unfrozen, t)
				frozeAny = true
				continue
			}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && residual[h.link] <= 1e-9 {
					delete(unfrozen, t)
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// Defensive: guarantees termination even with degenerate
			// capacities.
			break
		}
	}
	// Schedule completions.
	for _, t := range n.transfers {
		t := t
		if t.rate <= 0 {
			continue // starved (e.g. zero-capacity path); fails only on link-down
		}
		eta := time.Duration(t.remaining / t.rate * float64(time.Second))
		if eta < 0 {
			eta = 0
		}
		t.timer = n.eng.Schedule(eta, func() { n.finish(t) })
	}
}

func (n *Network) finish(t *Transfer) {
	if t.finished {
		return
	}
	t.settle(n.eng.Now())
	// Book any float dust so taps, ledger, and the wire volume agree
	// to the byte.
	if t.remaining > 0 {
		t.credit(t.remaining)
	}
	t.remaining = 0
	t.detach()
	// Last byte still needs to propagate to the receiver.
	var tail time.Duration
	for _, h := range t.hops {
		tail += h.link.cfg.Latency
	}
	end := n.eng.Now() + tail
	n.eng.Schedule(tail, func() {
		t.fut.Complete(Result{Bytes: t.opts.Bytes, Started: t.started, Ended: end}, nil)
	})
	n.recompute()
}

func (t *Transfer) fail(err error) {
	if t.finished {
		return
	}
	if t.active {
		t.settle(t.net.eng.Now())
	}
	t.detach()
	t.fut.Complete(Result{Started: t.started, Ended: t.net.eng.Now()}, err)
	t.net.recompute()
}

// detach removes the transfer from links and the active list, booking
// its settled bytes into each crossed link's ledger (the double-entry
// side of the tap accounting).
func (t *Transfer) detach() {
	t.finished = true
	t.active = false
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	for _, h := range t.hops {
		h.link.ledger[h.dir] += t.delivered
		delete(h.link.active, t)
	}
	for i, other := range t.net.transfers {
		if other == t {
			t.net.transfers = append(t.net.transfers[:i], t.net.transfers[i+1:]...)
			break
		}
	}
}
