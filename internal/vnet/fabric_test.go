package vnet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"nymix/internal/sim"
)

// chainNet builds a — r — b with r forwarding, using cfg on both
// links.
func chainNet(cfg LinkConfig) (*sim.Engine, *Network, *Link, *Link) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a")
	b := n.AddNode("b")
	r := n.AddRouter("r")
	la := n.Connect(a, r.Node, cfg)
	lb := n.Connect(r.Node, b, cfg)
	return eng, n, la, lb
}

func TestNICCountersAndAccessors(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	a, b := l.Endpoints()
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatalf("endpoints = %s, %s", a.Name(), b.Name())
	}
	if l.Config().Capacity != 1e6 {
		t.Fatalf("config capacity = %v", l.Config().Capacity)
	}
	if l.A().Node() != a || l.B().Node() != b {
		t.Fatal("A/B NICs attached to wrong nodes")
	}
	if l.A().Peer() != l.B() || l.B().Peer() != l.A() {
		t.Fatal("Peer does not cross the link")
	}
	if l.A().Link() != l {
		t.Fatal("NIC.Link mismatch")
	}
	if l.NICFor(a) != l.A() || l.NICFor(b) != l.B() {
		t.Fatal("NICFor endpoint mismatch")
	}
	if l.NICFor(n.AddNode("stranger")) != nil {
		t.Fatal("NICFor should be nil for a non-endpoint")
	}
	if len(a.Ifaces()) != 1 || a.Ifaces()[0] != l.A() {
		t.Fatal("Ifaces mismatch")
	}
	if n.Engine() != eng {
		t.Fatal("Engine mismatch")
	}
	if n.Node("a") != a || n.Node("nope") != nil {
		t.Fatal("Node lookup mismatch")
	}
	a.AddTag("lan")
	if !a.HasTag("lan") || a.HasTag("wan") {
		t.Fatal("tag mismatch")
	}

	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "http"})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatal(err)
	}
	if got := l.A().TxBytes(); got != 1e6 {
		t.Fatalf("a tx = %d, want 1e6", got)
	}
	if got := l.B().RxBytes(); got != 1e6 {
		t.Fatalf("b rx = %d, want 1e6", got)
	}
	if got := l.A().RxBytes(); got != 0 {
		t.Fatalf("a rx = %d, want 0", got)
	}
	if got := l.WireBytesFrom(a); got != 1e6 {
		t.Fatalf("wire from a = %d", got)
	}
	if got := l.WireBytesFrom(b); got != 0 {
		t.Fatalf("wire from b = %d", got)
	}
	if l.WireBytesTotal() != l.LedgerBytesTotal() {
		t.Fatalf("wire %d != ledger %d at quiescence", l.WireBytesTotal(), l.LedgerBytesTotal())
	}
}

func TestWireTapIntervalAccounting(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	early := l.A().WireTap()
	if early.NIC() != l.A() {
		t.Fatal("tap NIC mismatch")
	}
	var late *WireTap
	// The flow takes ~2s; attach the second tap halfway through. Taps
	// are credited at settle points, so force a settle (any flow
	// start does) just before attaching — otherwise the first settle
	// after attachment would retroactively include the first half.
	n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 2e6, Proto: "http", NoHandshake: true})
	eng.Schedule(999*time.Millisecond, func() {
		n.StartTransfer(TransferOpts{From: "b", To: "a", Bytes: 1, Proto: "http", NoHandshake: true})
	})
	eng.Schedule(1*time.Second, func() { late = l.A().WireTap() })
	eng.Run()
	if got := early.TxBytes(); got != 2e6 {
		t.Fatalf("early tap tx = %d, want 2e6", got)
	}
	if late.TxBytes() >= early.TxBytes() || late.TxBytes() == 0 {
		t.Fatalf("late tap tx = %d, want in (0, %d)", late.TxBytes(), early.TxBytes())
	}
	if early.Bytes() != early.TxBytes()+early.RxBytes() {
		t.Fatal("Bytes != Tx+Rx")
	}
	// The early tap saw everything the link moved a→b.
	if a, _ := l.Endpoints(); early.TxBytes() != l.WireBytesFrom(a) {
		t.Fatalf("tap %d != link wire %d", early.TxBytes(), l.WireBytesFrom(a))
	}
}

func TestSetDownOneWayAsymmetric(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	a, b := l.Endpoints()
	l.SetDownOneWay(n, a, true)
	if !l.Down() || !l.DownFrom(a) || l.DownFrom(b) {
		t.Fatalf("down state: Down=%v DownFrom(a)=%v DownFrom(b)=%v", l.Down(), l.DownFrom(a), l.DownFrom(b))
	}
	if n.CanReach("a", "b", "probe") {
		t.Fatal("a should not reach b")
	}
	if !n.CanReach("b", "a", "probe") {
		t.Fatal("b should still reach a")
	}
	futAB := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1000, Proto: "http"})
	futBA := n.StartTransfer(TransferOpts{From: "b", To: "a", Bytes: 1000, Proto: "http"})
	eng.Run()
	if _, err := futAB.Value(); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("a->b err = %v, want ErrNoRoute", err)
	}
	if _, err := futBA.Value(); err != nil {
		t.Fatalf("b->a err = %v", err)
	}
	l.SetDownOneWay(n, a, false)
	if l.Down() || !n.CanReach("a", "b", "probe") {
		t.Fatal("one-way heal did not restore the direction")
	}
}

func TestOneWayDownKillsOnlyCrossingFlows(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	a, _ := l.Endpoints()
	futAB := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 5e6, Proto: "http", NoHandshake: true})
	futBA := n.StartTransfer(TransferOpts{From: "b", To: "a", Bytes: 5e6, Proto: "http", NoHandshake: true})
	eng.Schedule(1*time.Second, func() { l.SetDownOneWay(n, a, true) })
	eng.Run()
	if _, err := futAB.Value(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("a->b err = %v, want ErrLinkDown", err)
	}
	if _, err := futBA.Value(); err != nil {
		t.Fatalf("b->a should have survived the one-way fault: %v", err)
	}
}

func TestActivateRecheckDuringHandshake(t *testing.T) {
	// The link drops during the connection handshake window, before
	// the flow has attached — the activation re-check must still kill
	// it rather than let it transfer over a dead link.
	eng, n, l := twoNodeNet(LinkConfig{Latency: 50 * time.Millisecond, Capacity: 1e6})
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1000, Proto: "http"})
	eng.Schedule(10*time.Millisecond, func() { l.SetDown(n, true) })
	eng.Run()
	if _, err := fut.Value(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
}

func TestLossInflatesWireVolume(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6, Loss: 0.2})
	a, _ := l.Endpoints()
	if l.Loss(a) != 0.2 {
		t.Fatalf("loss = %v", l.Loss(a))
	}
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "http", NoHandshake: true})
	eng.Run()
	res, err := fut.Value()
	if err != nil {
		t.Fatal(err)
	}
	// Retransmission: wire = 1e6 / (1-0.2) = 1.25e6 at 1e6 B/s.
	approx(t, res.Duration(), 1250*time.Millisecond, 5*time.Millisecond, "lossy duration")
	if got := l.WireBytesTotal(); got != 1.25e6 {
		t.Fatalf("wire = %d, want 1.25e6", got)
	}
	if l.LedgerBytesTotal() != l.WireBytesTotal() {
		t.Fatal("ledger != wire")
	}
}

func TestSetLossAffectsNewFlowsOnlyAndClamps(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	inflight := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "http", NoHandshake: true})
	eng.Schedule(100*time.Millisecond, func() { l.SetLoss(0.5) })
	var after *sim.Future[Result]
	eng.Schedule(1100*time.Millisecond, func() {
		after = n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "http", NoHandshake: true})
	})
	eng.Run()
	r1, err := inflight.Value()
	if err != nil {
		t.Fatal(err)
	}
	// Admitted loss-free: 1s, not 2s.
	approx(t, r1.Duration(), 1*time.Second, 10*time.Millisecond, "in-flight duration")
	r2, err := after.Value()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r2.Duration(), 2*time.Second, 10*time.Millisecond, "post-SetLoss duration")

	l.SetLoss(5)
	if a, _ := l.Endpoints(); l.Loss(a) != 0.9 {
		t.Fatalf("loss should clamp to 0.9, got %v", l.Loss(a))
	}
	l.SetLoss(-1)
	if a, _ := l.Endpoints(); l.Loss(a) != 0 {
		t.Fatalf("loss should clamp to 0, got %v", l.Loss(a))
	}
}

func TestDPIDropIsSilentAndTyped(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	dpi := NewDPI(DropProto("tor"))
	l.SetDPI(n, dpi)
	if l.DPI() != dpi {
		t.Fatal("DPI accessor mismatch")
	}
	tor := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "tor"})
	web := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "https"})
	eng.Run()
	if _, err := tor.Value(); !errors.Is(err, ErrCensored) {
		t.Fatalf("tor err = %v, want ErrCensored", err)
	} else if !strings.Contains(err.Error(), "proto tor") {
		t.Fatalf("drop error lacks flow context: %v", err)
	}
	// Silent drop: the failure surfaces only after the probe timeout,
	// so the run cannot end before it.
	if eng.Now() < sim.Time(3*time.Second) {
		t.Fatalf("run ended at %v, want >= 3s (silent drop timeout)", eng.Now())
	}
	if _, err := web.Value(); err != nil {
		t.Fatalf("https err = %v", err)
	}
	if dpi.Dropped() != 1 || dpi.Throttled() != 0 {
		t.Fatalf("counters dropped=%d throttled=%d", dpi.Dropped(), dpi.Throttled())
	}
	s := dpi.Stat("tor")
	if s.Dropped != 1 || s.DroppedBytes != 1e6 {
		t.Fatalf("tor stat = %+v", s)
	}
	if got := dpi.Protos(); len(got) != 1 || got[0] != "tor" {
		t.Fatalf("ruled protos = %v", got)
	}
	if dpi.Stat("https") != (DPIStat{}) {
		t.Fatal("https should have no stat entry")
	}
}

func TestDPIThrottleCapsRate(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	dpi := NewDPI(ThrottleProto(1e5, "https"))
	l.SetDPI(n, dpi)
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "https", NoHandshake: true})
	eng.Run()
	res, err := fut.Value()
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 bytes at the censor's 1e5 B/s cap, not the link's 1e6.
	approx(t, res.Duration(), 10*time.Second, 50*time.Millisecond, "throttled duration")
	if dpi.Throttled() != 1 || dpi.Stat("https").ThrottledBytes != 1e6 {
		t.Fatalf("throttle counters = %d / %+v", dpi.Throttled(), dpi.Stat("https"))
	}
}

func TestDPIFirstMatchComposes(t *testing.T) {
	c := FirstMatch(DropProto("tor"), ThrottleProto(5e4, "https"))
	if r := c(Flow{Proto: "tor"}); r.Verdict != Drop {
		t.Fatalf("tor verdict = %v", r.Verdict)
	}
	if r := c(Flow{Proto: "https"}); r.Verdict != Throttle || r.Rate != 5e4 {
		t.Fatalf("https ruling = %+v", r)
	}
	if r := c(Flow{Proto: "smtp"}); r.Verdict != Pass {
		t.Fatalf("smtp verdict = %v", r.Verdict)
	}
}

func TestSetDPIMidRunTearsDownClassifiedFlows(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	tor := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 5e6, Proto: "tor", NoHandshake: true})
	web := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 5e6, Proto: "https", NoHandshake: true})
	eng.Schedule(1*time.Second, func() { l.SetDPI(n, NewDPI(DropProto("tor"))) })
	eng.Run()
	if _, err := tor.Value(); !errors.Is(err, ErrCensored) {
		t.Fatalf("tor err = %v, want ErrCensored", err)
	}
	if _, err := web.Value(); err != nil {
		t.Fatalf("https err = %v", err)
	}
	// Removing the engine lets tor traffic through again.
	l.SetDPI(n, nil)
	if l.DPI() != nil {
		t.Fatal("SetDPI(nil) did not remove the engine")
	}
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1000, Proto: "tor"})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatalf("post-removal tor err = %v", err)
	}
}

func TestRouterForwardsAndCarriesRegion(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a").SetRegion("east")
	b := n.AddNode("b").SetRegion("west")
	r := n.AddRouter("r").WithRegion("core")
	if r.Region() != "core" || a.Region() != "east" || b.Region() == "" {
		t.Fatal("region labels not set")
	}
	n.Connect(a, r.Node, LinkConfig{Capacity: 1e6})
	n.Connect(r.Node, b, LinkConfig{Capacity: 1e6})
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1000, Proto: "http"})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatalf("transit through router failed: %v", err)
	}
}

// regionedChain builds a(east) — r(core) — b(west): the regions are
// not physically adjacent, so only the segment-endpoint check can
// catch an east|west sever.
func regionedChain() (*sim.Engine, *Network) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a").SetRegion("east")
	b := n.AddNode("b").SetRegion("west")
	r := n.AddRouter("r").WithRegion("core")
	n.Connect(a, r.Node, LinkConfig{Capacity: 1e6})
	n.Connect(r.Node, b, LinkConfig{Capacity: 1e6})
	return eng, n
}

func TestSeverRegionsBlocksNonAdjacentRegions(t *testing.T) {
	eng, n := regionedChain()
	n.SeverRegions("east", "west")
	if !n.RegionSevered("east", "west") || !n.RegionSevered("west", "east") {
		t.Fatal("sever map incomplete")
	}
	if n.CanReach("a", "b", "probe") || n.CanReach("b", "a", "probe") {
		t.Fatal("severed regions still reach each other")
	}
	// The backbone itself is untouched.
	if !n.CanReach("a", "r", "probe") || !n.CanReach("b", "r", "probe") {
		t.Fatal("sever leaked onto the core boundary")
	}
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1000, Proto: "http"})
	eng.Run()
	if _, err := fut.Value(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	n.HealRegions("east", "west")
	if n.RegionSevered("east", "west") || !n.CanReach("a", "b", "probe") {
		t.Fatal("heal did not restore the boundary")
	}
}

func TestSeverRegionsOneWayIsAsymmetric(t *testing.T) {
	_, n := regionedChain()
	n.SeverRegionsOneWay("east", "west")
	if n.CanReach("a", "b", "probe") {
		t.Fatal("east->west should be dark")
	}
	if !n.CanReach("b", "a", "probe") {
		t.Fatal("west->east should still route")
	}
	if !n.RegionSevered("east", "west") || n.RegionSevered("west", "east") {
		t.Fatal("one-way sever map wrong")
	}
}

func TestSeverKillsInFlightFlows(t *testing.T) {
	eng, n := regionedChain()
	cross := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 5e6, Proto: "http", NoHandshake: true})
	local := n.StartTransfer(TransferOpts{From: "a", To: "r", Bytes: 5e6, Proto: "http", NoHandshake: true})
	eng.Schedule(1*time.Second, func() { n.SeverRegions("east", "west") })
	eng.Run()
	if _, err := cross.Value(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-boundary err = %v, want ErrPartitioned", err)
	}
	if _, err := local.Value(); err != nil {
		t.Fatalf("intra-boundary flow should survive: %v", err)
	}
}

func TestSeverIgnoresUnlabelledAndDegenerate(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a") // unlabelled
	b := n.AddNode("b").SetRegion("west")
	n.Connect(a, b, LinkConfig{Capacity: 1e6})
	n.SeverRegions("", "west")
	n.SeverRegions("west", "west")
	if n.RegionSevered("", "west") || n.RegionSevered("west", "west") {
		t.Fatal("degenerate severs must be no-ops")
	}
	if !n.CanReach("a", "b", "probe") {
		t.Fatal("unlabelled node must never match a sever")
	}
	// ErrNoRoute, not ErrPartitioned, when there is simply no path.
	n.AddNode("island").SetRegion("east")
	fut := n.StartTransfer(TransferOpts{From: "a", To: "island", Bytes: 10, Proto: "http"})
	eng.Run()
	if _, err := fut.Value(); !errors.Is(err, ErrNoRoute) || errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want plain ErrNoRoute", err)
	}
}

func TestFaultSchedulePlaysInOrder(t *testing.T) {
	eng, n, la, _ := chainNet(LinkConfig{Capacity: 1e6})
	a, r := la.Endpoints()
	a.SetRegion("east")
	_ = r
	n.Node("b").SetRegion("west")
	dpi := NewDPI(DropProto("tor"))
	n.Play(
		LinkDownFault(1*time.Second, "a", "r"),
		LinkUpFault(2*time.Second, "a", "r"),
		LossFault(3*time.Second, "a", "r", 0.25),
		DPIFault(4*time.Second, "r", "b", dpi),
		SeverOneWayFault(5*time.Second, "east", "west"),
		SeverFault(6*time.Second, "east", "west"),
		HealFault(7*time.Second, "east", "west"),
	)
	eng.Run()
	log := n.FaultLog()
	if len(log) != 7 {
		t.Fatalf("fault log has %d entries, want 7", len(log))
	}
	wantLabels := []string{
		"link down a--r", "link up a--r", "loss a--r 25%", "dpi r--b",
		"sever east->west", "sever east<->west", "heal east<->west",
	}
	for i, f := range log {
		if f.Label != wantLabels[i] {
			t.Fatalf("log[%d] = %q, want %q", i, f.Label, wantLabels[i])
		}
		if f.At != sim.Time(i+1)*sim.Time(time.Second) {
			t.Fatalf("log[%d] at %v", i, f.At)
		}
	}
	if la.Down() {
		t.Fatal("link should be back up")
	}
	if la.Loss(a) != 0.25 {
		t.Fatalf("loss = %v", la.Loss(a))
	}
	if n.LinkBetween("r", "b").DPI() != dpi {
		t.Fatal("DPIFault did not install the engine")
	}
	if n.RegionSevered("east", "west") {
		t.Fatal("heal did not land")
	}
}

func TestLinkBetweenAndMustLink(t *testing.T) {
	_, n, la, _ := chainNet(LinkConfig{})
	if n.LinkBetween("a", "r") != la || n.LinkBetween("r", "a") != la {
		t.Fatal("LinkBetween should match either order")
	}
	if n.LinkBetween("a", "b") != nil {
		t.Fatal("a and b are not adjacent")
	}
	if n.LinkBetween("a", "ghost") != nil {
		t.Fatal("unknown node should yield nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mustLink should panic on a missing link")
		}
	}()
	n.mustLink("a", "b")
}

func TestTapLedgerDoubleEntryAcrossFailures(t *testing.T) {
	// Flows that fail mid-transfer must still reconcile: whatever the
	// taps saw settled is exactly what the ledger books at detach.
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	tapA := l.A().WireTap()
	tapB := l.B().WireTap()
	n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 10e6, Proto: "http", NoHandshake: true})
	n.StartTransfer(TransferOpts{From: "b", To: "a", Bytes: 1e6, Proto: "http", NoHandshake: true})
	eng.Schedule(3*time.Second, func() { l.SetDown(n, true) })
	eng.Run()
	wire := l.WireBytesTotal()
	ledger := l.LedgerBytesTotal()
	if wire == 0 {
		t.Fatal("no bytes settled before the fault")
	}
	if wire != ledger {
		t.Fatalf("wire %d != ledger %d after failures", wire, ledger)
	}
	tapTotal := tapA.TxBytes() + tapA.RxBytes()
	if tapTotal != tapB.TxBytes()+tapB.RxBytes() {
		t.Fatal("opposite taps disagree")
	}
	if tapTotal != wire {
		t.Fatalf("tap %d != wire %d", tapTotal, wire)
	}
}
