// Package vnet simulates the network fabric underneath Nymix: the
// host-only "virtual wire" between an AnonVM and its CommVM, the
// host's NAT'd uplink, the DeterLab-like test deployment the paper
// evaluates against (80 ms RTT, 10 Mbit/s rate limit), and the public
// Internet of simulated web sites.
//
// Topology is a graph of named nodes joined by point-to-point links
// with one-way latency and byte-per-second capacity. Bulk data moves
// as fluid flows: concurrent transfers sharing a link receive max-min
// fair rates, recomputed whenever a flow starts or finishes. That
// reproduces the contention behaviour behind Figure 5 without
// packet-level detail.
//
// Isolation — the property validated in section 5.1 — is enforced
// structurally: routes exist only where links exist and every
// intermediate node's forwarding policy admits the hop. A blocked
// probe behaves like a silent drop ("as if the host did not exist").
package vnet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nymix/internal/sim"
)

// Common errors.
var (
	ErrNoRoute  = errors.New("vnet: no route to host")
	ErrLinkDown = errors.New("vnet: link down")
	ErrCanceled = errors.New("vnet: transfer canceled")
)

// DefaultMaxRate caps flows whose path has no finite-capacity link
// (1 Gbit/s in bytes per second).
const DefaultMaxRate = 125e6

// Network is a simulated network bound to a simulation engine.
type Network struct {
	eng       *sim.Engine
	nodes     map[string]*Node
	nodeOrder []*Node
	links     []*Link
	transfers []*Transfer // active, ordered by id for determinism
	nextID    int64
}

// New returns an empty network on eng.
func New(eng *sim.Engine) *Network {
	return &Network{eng: eng, nodes: make(map[string]*Node)}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// ForwardPolicy decides whether a node forwards traffic arriving on in
// toward out, destined for dst (the segment's destination node, so a
// NAT firewall can drop private-range destinations). Endpoint nodes
// are not policy-checked for their own traffic; only transit hops are.
type ForwardPolicy func(in, out *Iface, proto string, dst *Node) bool

// Node is a host, VM, relay, or service attachment point.
type Node struct {
	net     *Network
	name    string
	ifaces  []*Iface
	policy  ForwardPolicy
	masq    bool // NAT masquerade: forwarded traffic appears to come from this node
	noTrans bool // refuses to forward entirely (end hosts)
	tags    map[string]bool
}

// AddNode creates a node. By default a node forwards nothing
// (end-host); call SetForwarding or SetPolicy to make it a router.
func (n *Network) AddNode(name string) *Node {
	if _, ok := n.nodes[name]; ok {
		panic(fmt.Sprintf("vnet: duplicate node %q", name))
	}
	nd := &Node{net: n, name: name, noTrans: true}
	n.nodes[name] = nd
	n.nodeOrder = append(n.nodeOrder, nd)
	return nd
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Ifaces returns the node's interfaces in link-creation order.
func (nd *Node) Ifaces() []*Iface { return nd.ifaces }

// AddTag labels the node (e.g. "lan" for intranet hosts whose private
// address range a NAT firewall filters).
func (nd *Node) AddTag(tag string) *Node {
	if nd.tags == nil {
		nd.tags = make(map[string]bool)
	}
	nd.tags[tag] = true
	return nd
}

// HasTag reports whether the node carries the tag.
func (nd *Node) HasTag(tag string) bool { return nd.tags[tag] }

// SetForwarding enables or disables transit through this node.
func (nd *Node) SetForwarding(on bool) *Node { nd.noTrans = !on; return nd }

// SetPolicy installs a forwarding policy (implies forwarding enabled).
func (nd *Node) SetPolicy(p ForwardPolicy) *Node {
	nd.policy = p
	nd.noTrans = false
	return nd
}

// SetMasquerade makes the node a NAT: traffic it forwards is observed
// downstream with this node as its source, hiding the true origin —
// KVM user-mode NAT in the paper's prototype.
func (nd *Node) SetMasquerade(on bool) *Node { nd.masq = on; return nd }

// Iface is one end of a link.
type Iface struct {
	node *Node
	link *Link
}

// Node returns the interface's node.
func (i *Iface) Node() *Node { return i.node }

// Link returns the interface's link.
func (i *Iface) Link() *Link { return i.link }

// Peer returns the interface at the other end of the link.
func (i *Iface) Peer() *Iface {
	if i.link.a == i {
		return i.link.b
	}
	return i.link.a
}

// LinkConfig parameterizes a link.
type LinkConfig struct {
	Latency  time.Duration // one-way propagation delay
	Capacity float64       // bytes per second; 0 = unlimited
}

// Link is a bidirectional point-to-point link.
type Link struct {
	id       int
	a, b     *Iface
	cfg      LinkConfig
	down     bool
	active   map[*Transfer]struct{}
	captures []*Capture
}

// Connect joins two nodes with a link.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	l := &Link{id: len(n.links), cfg: cfg, active: make(map[*Transfer]struct{})}
	l.a = &Iface{node: a, link: l}
	l.b = &Iface{node: b, link: l}
	a.ifaces = append(a.ifaces, l.a)
	b.ifaces = append(b.ifaces, l.b)
	n.links = append(n.links, l)
	return l
}

// Endpoints returns the two nodes the link joins.
func (l *Link) Endpoints() (*Node, *Node) { return l.a.node, l.b.node }

// Config returns the link's parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetDown takes the link down (true) or up (false). Taking a link down
// fails every transfer currently crossing it.
func (l *Link) SetDown(n *Network, down bool) {
	l.down = down
	if !down {
		return
	}
	var victims []*Transfer
	for t := range l.active {
		victims = append(victims, t)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, t := range victims {
		t.fail(ErrLinkDown)
	}
}

// Capture is a passive tap on a link, the simulation's Wireshark. The
// paper's validation runs one on the host uplink to confirm an idle
// Nymix emits only DHCP and anonymizer traffic.
type Capture struct {
	link    *Link
	Entries []CaptureEntry
}

// CaptureEntry records one flow crossing a tapped link.
type CaptureEntry struct {
	Time        sim.Time
	ObservedSrc string // source as visible at this link (post-NAT)
	Dst         string
	Proto       string
	Bytes       int64
}

// Tap attaches a capture to the link.
func (l *Link) Tap() *Capture {
	c := &Capture{link: l}
	l.captures = append(l.captures, c)
	return c
}

// Protos returns the distinct protocol labels seen, sorted.
func (c *Capture) Protos() []string {
	set := map[string]bool{}
	for _, e := range c.Entries {
		set[e.Proto] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// hop is one step of a computed route.
type hop struct {
	link        *Link
	observedSrc string // source name visible on this link
}

// route finds a policy-respecting path from src to dst, optionally
// through waypoints (each waypoint acts as a proxy terminating and
// re-originating the flow, like a Tor relay). It returns the hops in
// order.
func (n *Network) route(src, dst *Node, via []*Node, proto string) ([]hop, error) {
	points := append([]*Node{src}, via...)
	points = append(points, dst)
	var hops []hop
	for i := 0; i+1 < len(points); i++ {
		seg, err := n.segment(points[i], points[i+1], proto)
		if err != nil {
			return nil, fmt.Errorf("%w (%s -> %s)", err, points[i].name, points[i+1].name)
		}
		// The segment originates at points[i]; NAT nodes along it rewrite
		// the observed source.
		observed := points[i].name
		node := points[i]
		for _, l := range seg {
			hops = append(hops, hop{link: l, observedSrc: observed})
			var next *Iface
			if l.a.node == node {
				next = l.b
			} else {
				next = l.a
			}
			node = next.node
			if node.masq {
				observed = node.name
			}
		}
	}
	return hops, nil
}

// segment runs a BFS from src to dst honoring link state and transit
// policies. Deterministic: neighbors expand in link-creation order.
func (n *Network) segment(src, dst *Node, proto string) ([]*Link, error) {
	if src == dst {
		return nil, nil
	}
	type visit struct {
		node *Node
		in   *Iface // iface we arrived on (nil at src)
	}
	prev := map[*Node]*Iface{} // node -> iface we arrived through
	seen := map[*Node]bool{src: true}
	queue := []visit{{node: src}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// A transit node must permit forwarding; endpoints are exempt.
		for _, out := range v.node.ifaces {
			if out.link.down {
				continue
			}
			if v.node != src {
				if v.node.noTrans {
					continue
				}
				if v.node.policy != nil && !v.node.policy(v.in, out, proto, dst) {
					continue
				}
			}
			peer := out.Peer()
			if seen[peer.node] {
				continue
			}
			seen[peer.node] = true
			prev[peer.node] = peer
			if peer.node == dst {
				// Reconstruct.
				var links []*Link
				at := dst
				for at != src {
					in := prev[at]
					links = append(links, in.link)
					at = in.Peer().node
				}
				// Reverse.
				for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
					links[i], links[j] = links[j], links[i]
				}
				return links, nil
			}
			queue = append(queue, visit{node: peer.node, in: peer})
		}
	}
	return nil, ErrNoRoute
}

// CanReach reports whether src can currently route proto traffic to
// dst. This is the probe primitive behind the section 5.1 isolation
// matrix.
func (n *Network) CanReach(src, dst string, proto string) bool {
	s, d := n.nodes[src], n.nodes[dst]
	if s == nil || d == nil {
		return false
	}
	_, err := n.segment(s, d, proto)
	return err == nil
}

// PathLatency returns the one-way latency between two nodes along the
// current route, or an error if unreachable.
func (n *Network) PathLatency(src, dst string, via ...string) (time.Duration, error) {
	s, d := n.nodes[src], n.nodes[dst]
	if s == nil || d == nil {
		return 0, ErrNoRoute
	}
	vias, err := n.viaNodes(via)
	if err != nil {
		return 0, err
	}
	hops, err := n.route(s, d, vias, "probe")
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for _, h := range hops {
		total += h.link.cfg.Latency
	}
	return total, nil
}

func (n *Network) viaNodes(names []string) ([]*Node, error) {
	var out []*Node
	for _, name := range names {
		nd := n.nodes[name]
		if nd == nil {
			return nil, fmt.Errorf("%w: waypoint %q", ErrNoRoute, name)
		}
		out = append(out, nd)
	}
	return out, nil
}

// Result describes a finished transfer.
type Result struct {
	Bytes   int64
	Started sim.Time
	Ended   sim.Time
}

// Duration returns the transfer's elapsed simulated time.
func (r Result) Duration() time.Duration { return r.Ended - r.Started }

// TransferOpts parameterizes a flow.
type TransferOpts struct {
	From, To string
	Via      []string // proxy waypoints (e.g. Tor relays), in order
	Bytes    int64
	Proto    string  // protocol label, visible to captures and policies
	Overhead float64 // fractional protocol overhead; wire bytes = Bytes*(1+Overhead)
	// NoHandshake skips the connection-setup round trip (datagrams).
	NoHandshake bool
	MaxRate     float64 // per-flow cap in bytes/s; 0 = DefaultMaxRate
}

// Transfer is an in-flight fluid flow.
type Transfer struct {
	id         int64
	net        *Network
	opts       TransferOpts
	hops       []hop
	remaining  float64
	rate       float64
	lastUpdate sim.Time
	timer      *sim.Timer
	fut        *sim.Future[Result]
	started    sim.Time
	active     bool
	finished   bool
}

// StartTransfer begins a flow and returns a future that completes when
// the last byte is delivered (or the flow fails).
func (n *Network) StartTransfer(opts TransferOpts) *sim.Future[Result] {
	fut := sim.NewFuture[Result](n.eng)
	src, dst := n.nodes[opts.From], n.nodes[opts.To]
	if src == nil || dst == nil {
		n.eng.Schedule(0, func() { fut.Complete(Result{}, fmt.Errorf("%w: unknown endpoint", ErrNoRoute)) })
		return fut
	}
	vias, err := n.viaNodes(opts.Via)
	if err != nil {
		n.eng.Schedule(0, func() { fut.Complete(Result{}, err) })
		return fut
	}
	hops, err := n.route(src, dst, vias, opts.Proto)
	if err != nil {
		// Silent drop: the failure surfaces only after a probe timeout.
		n.eng.Schedule(3*time.Second, func() { fut.Complete(Result{}, err) })
		return fut
	}
	if opts.MaxRate <= 0 {
		opts.MaxRate = DefaultMaxRate
	}
	wire := float64(opts.Bytes) * (1 + opts.Overhead)
	if wire < 1 {
		wire = 1
	}
	t := &Transfer{
		id:        n.nextID,
		net:       n,
		opts:      opts,
		hops:      hops,
		remaining: wire,
		fut:       fut,
		started:   n.eng.Now(),
	}
	n.nextID++
	var setup time.Duration
	for _, h := range hops {
		setup += h.link.cfg.Latency
	}
	if !opts.NoHandshake {
		setup *= 2 // connection setup costs a full round trip first
	}
	n.eng.Schedule(setup, func() { n.activate(t) })
	return fut
}

func (n *Network) activate(t *Transfer) {
	if t.finished {
		return
	}
	t.active = true
	t.lastUpdate = n.eng.Now()
	for _, h := range t.hops {
		h.link.active[t] = struct{}{}
		for _, c := range h.link.captures {
			c.Entries = append(c.Entries, CaptureEntry{
				Time:        n.eng.Now(),
				ObservedSrc: h.observedSrc,
				Dst:         t.opts.To,
				Proto:       t.opts.Proto,
				Bytes:       t.opts.Bytes,
			})
		}
	}
	n.transfers = append(n.transfers, t)
	n.recompute()
}

// recompute reruns max-min fair allocation across all active flows and
// reschedules their completion events. Called on every flow start and
// finish.
func (n *Network) recompute() {
	now := n.eng.Now()
	// Settle progress at the old rates.
	for _, t := range n.transfers {
		elapsed := (now - t.lastUpdate).Seconds()
		if elapsed > 0 && t.rate > 0 {
			t.remaining -= t.rate * elapsed
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
		t.lastUpdate = now
		if t.timer != nil {
			t.timer.Cancel()
			t.timer = nil
		}
		t.rate = 0
	}
	// Progressive filling (max-min fairness).
	residual := make(map[*Link]float64)
	unfrozen := make(map[*Transfer]bool, len(n.transfers))
	for _, t := range n.transfers {
		unfrozen[t] = true
		for _, h := range t.hops {
			if h.link.cfg.Capacity > 0 {
				residual[h.link] = h.link.cfg.Capacity
			}
		}
	}
	for len(unfrozen) > 0 {
		// Count unfrozen flows per finite link.
		count := make(map[*Link]int)
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			seen := map[*Link]bool{}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && !seen[h.link] {
					count[h.link]++
					seen[h.link] = true
				}
			}
		}
		// Smallest allowable uniform increment.
		delta := -1.0
		for l, c := range count {
			if c == 0 {
				continue
			}
			share := residual[l] / float64(c)
			if delta < 0 || share < delta {
				delta = share
			}
		}
		for _, t := range n.transfers {
			if unfrozen[t] {
				head := t.opts.MaxRate - t.rate
				if delta < 0 || head < delta {
					delta = head
				}
			}
		}
		if delta <= 1e-9 {
			delta = 0
		}
		// Apply the increment and freeze saturated flows.
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			t.rate += delta
			seen := map[*Link]bool{}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && !seen[h.link] {
					residual[h.link] -= delta
					seen[h.link] = true
				}
			}
		}
		frozeAny := false
		for _, t := range n.transfers {
			if !unfrozen[t] {
				continue
			}
			if t.rate >= t.opts.MaxRate-1e-9 {
				delete(unfrozen, t)
				frozeAny = true
				continue
			}
			for _, h := range t.hops {
				if h.link.cfg.Capacity > 0 && residual[h.link] <= 1e-9 {
					delete(unfrozen, t)
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// Defensive: guarantees termination even with degenerate
			// capacities.
			break
		}
	}
	// Schedule completions.
	for _, t := range n.transfers {
		t := t
		if t.rate <= 0 {
			continue // starved (e.g. zero-capacity path); fails only on link-down
		}
		eta := time.Duration(t.remaining / t.rate * float64(time.Second))
		if eta < 0 {
			eta = 0
		}
		t.timer = n.eng.Schedule(eta, func() { n.finish(t) })
	}
}

func (n *Network) finish(t *Transfer) {
	if t.finished {
		return
	}
	t.remaining = 0
	t.detach()
	// Last byte still needs to propagate to the receiver.
	var tail time.Duration
	for _, h := range t.hops {
		tail += h.link.cfg.Latency
	}
	end := n.eng.Now() + tail
	n.eng.Schedule(tail, func() {
		t.fut.Complete(Result{Bytes: t.opts.Bytes, Started: t.started, Ended: end}, nil)
	})
	n.recompute()
}

func (t *Transfer) fail(err error) {
	if t.finished {
		return
	}
	t.detach()
	t.fut.Complete(Result{Started: t.started, Ended: t.net.eng.Now()}, err)
	t.net.recompute()
}

// detach removes the transfer from links and the active list.
func (t *Transfer) detach() {
	t.finished = true
	t.active = false
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	for _, h := range t.hops {
		delete(h.link.active, t)
	}
	for i, other := range t.net.transfers {
		if other == t {
			t.net.transfers = append(t.net.transfers[:i], t.net.transfers[i+1:]...)
			break
		}
	}
}

// ActiveTransfers returns the number of in-flight flows.
func (n *Network) ActiveTransfers() int { return len(n.transfers) }
