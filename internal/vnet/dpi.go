package vnet

import "sort"

// Verdict is a DPI engine's ruling on a flow.
type Verdict int

// DPI verdicts. Pass admits the flow untouched; Drop kills it the way
// a censoring middlebox does (silent drop, typed vnet.censored
// surfacing only after the probe timeout); Throttle admits it but
// caps its rate.
const (
	Pass Verdict = iota
	Drop
	Throttle
)

// Flow is what a DPI engine sees when it inspects a transfer at a
// link: the true endpoints, the source as observed at that link
// (post-NAT — a censor behind the NAT sees the masqueraded origin),
// the protocol label, and the payload size.
type Flow struct {
	Src         string
	ObservedSrc string
	Dst         string
	Proto       string
	Bytes       int64
}

// Ruling is a classifier's decision: the verdict, plus the rate cap
// in bytes/s when the verdict is Throttle.
type Ruling struct {
	Verdict Verdict
	Rate    float64
}

// Classifier maps an observed flow to a ruling.
type Classifier func(Flow) Ruling

// DropProto returns a classifier that drops flows carrying any of the
// given protocol labels — the firewall from the paper's censorship
// scenario, which fingerprints and blocks vanilla Tor.
func DropProto(protos ...string) Classifier {
	set := protoSet(protos)
	return func(f Flow) Ruling {
		if set[f.Proto] {
			return Ruling{Verdict: Drop}
		}
		return Ruling{}
	}
}

// ThrottleProto returns a classifier that throttles flows carrying
// any of the given protocol labels to rate bytes/s.
func ThrottleProto(rate float64, protos ...string) Classifier {
	set := protoSet(protos)
	return func(f Flow) Ruling {
		if set[f.Proto] {
			return Ruling{Verdict: Throttle, Rate: rate}
		}
		return Ruling{}
	}
}

// FirstMatch composes classifiers: the first non-Pass ruling wins.
func FirstMatch(cs ...Classifier) Classifier {
	return func(f Flow) Ruling {
		for _, c := range cs {
			if r := c(f); r.Verdict != Pass {
				return r
			}
		}
		return Ruling{}
	}
}

func protoSet(protos []string) map[string]bool {
	set := make(map[string]bool, len(protos))
	for _, p := range protos {
		set[p] = true
	}
	return set
}

// DPIStat aggregates one protocol's censor treatment.
type DPIStat struct {
	Dropped        int
	Throttled      int
	DroppedBytes   int64
	ThrottledBytes int64
}

// DPIEngine is the pluggable censor hook a Link carries. It
// classifies every flow admitted across the link and keeps counters
// of what it dropped and throttled, so a censorship experiment can
// report measured censor activity rather than assumed policy.
type DPIEngine struct {
	classify Classifier
	byProto  map[string]*DPIStat
	dropped  int
	throttld int
}

// NewDPI returns an engine running the classifier. Install it on a
// link with Link.SetDPI.
func NewDPI(c Classifier) *DPIEngine {
	return &DPIEngine{classify: c, byProto: make(map[string]*DPIStat)}
}

func (e *DPIEngine) inspect(f Flow) Ruling {
	if e.classify == nil {
		return Ruling{}
	}
	return e.classify(f)
}

func (e *DPIEngine) stat(proto string) *DPIStat {
	s := e.byProto[proto]
	if s == nil {
		s = &DPIStat{}
		e.byProto[proto] = s
	}
	return s
}

func (e *DPIEngine) noteDrop(proto string, bytes int64) {
	e.dropped++
	s := e.stat(proto)
	s.Dropped++
	s.DroppedBytes += bytes
}

func (e *DPIEngine) noteThrottle(proto string, bytes int64) {
	e.throttld++
	s := e.stat(proto)
	s.Throttled++
	s.ThrottledBytes += bytes
}

// Dropped returns the number of flows the engine dropped.
func (e *DPIEngine) Dropped() int { return e.dropped }

// Throttled returns the number of flows the engine throttled.
func (e *DPIEngine) Throttled() int { return e.throttld }

// Stat returns the engine's counters for one protocol label.
func (e *DPIEngine) Stat(proto string) DPIStat {
	if s := e.byProto[proto]; s != nil {
		return *s
	}
	return DPIStat{}
}

// Protos returns the protocol labels the engine has ruled on
// (dropped or throttled), sorted.
func (e *DPIEngine) Protos() []string {
	out := make([]string, 0, len(e.byProto))
	for p := range e.byProto {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
