package vnet

import "sort"

// Router is a forwarding node: the third fabric layer. It is a thin
// wrapper over Node — everything a Node can do, a Router can — whose
// constructor enables transit, so topologies read as what they are:
// NICs attach nodes to Links, Links meet at Routers.
type Router struct {
	*Node
}

// AddRouter creates a forwarding node. Use WithRegion to place it in
// a severable region.
func (n *Network) AddRouter(name string) *Router {
	r := &Router{n.AddNode(name)}
	r.SetForwarding(true)
	return r
}

// WithRegion labels the router's node with a region and returns the
// router (chainable).
func (r *Router) WithRegion(region string) *Router {
	r.SetRegion(region)
	return r
}

// regionPair is one direction of a region boundary.
type regionPair struct{ from, to string }

// SeverRegions severs the boundary between two regions in both
// directions: no flow may cross from a into b or from b into a, and
// every in-flight flow whose path crosses the boundary (or whose
// segment endpoints straddle it) fails with a vnet.partitioned error.
func (n *Network) SeverRegions(a, b string) {
	n.severOne(a, b)
	n.severOne(b, a)
}

// SeverRegionsOneWay severs only the from→to direction: traffic
// transmitted out of `from` into `to` is blocked while the reverse
// direction still routes. This is the asymmetric-partition primitive.
func (n *Network) SeverRegionsOneWay(from, to string) {
	n.severOne(from, to)
}

// HealRegions removes the sever between two regions in both
// directions.
func (n *Network) HealRegions(a, b string) {
	delete(n.severed, regionPair{a, b})
	delete(n.severed, regionPair{b, a})
}

// RegionSevered reports whether the from→to direction of the boundary
// is currently severed.
func (n *Network) RegionSevered(from, to string) bool {
	return n.severed[regionPair{from, to}]
}

func (n *Network) severOne(from, to string) {
	if from == "" || to == "" || from == to {
		return
	}
	n.severed[regionPair{from, to}] = true
	// Fail the in-flight flows the new sever cuts, in id order.
	var victims []*Transfer
	for _, t := range n.transfers {
		if n.partitionBlocked(t) {
			victims = append(victims, t)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, t := range victims {
		t.fail(ErrPartitioned)
	}
}

// regionCut reports whether traffic moving from node f to node t
// crosses a severed boundary. Same-region and unlabelled hops never
// cut.
func (n *Network) regionCut(f, t *Node) bool {
	if f.region == t.region || f.region == "" || t.region == "" {
		return false
	}
	return n.severed[regionPair{f.region, t.region}]
}

// partitionBlocked reports whether the transfer's path is cut by the
// current sever map: either a hop crosses a severed boundary in its
// traversal direction, or a segment's endpoints straddle one (which
// covers regions that are not physically adjacent).
func (n *Network) partitionBlocked(t *Transfer) bool {
	for _, seg := range t.segEnds {
		if n.regionCut(seg[0], seg[1]) {
			return true
		}
	}
	for _, h := range t.hops {
		if n.regionCut(h.link.txNIC(h.dir).node, h.link.rxNIC(h.dir).node) {
			return true
		}
	}
	return false
}
