package vnet

import (
	"fmt"

	"nymix/internal/sim"
)

// DefaultMaxRate caps flows whose path has no finite-capacity link
// (1 Gbit/s in bytes per second).
const DefaultMaxRate = 125e6

// Network is a simulated network bound to a simulation engine.
type Network struct {
	eng       *sim.Engine
	nodes     map[string]*Node
	nodeOrder []*Node
	links     []*Link
	transfers []*Transfer // active, ordered by id for determinism
	nextID    int64
	severed   map[regionPair]bool
	faultLog  []AppliedFault
}

// New returns an empty network on eng.
func New(eng *sim.Engine) *Network {
	return &Network{
		eng:     eng,
		nodes:   make(map[string]*Node),
		severed: make(map[regionPair]bool),
	}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// ForwardPolicy decides whether a node forwards traffic arriving on in
// toward out, destined for dst (the segment's destination node, so a
// NAT firewall can drop private-range destinations). Endpoint nodes
// are not policy-checked for their own traffic; only transit hops are.
type ForwardPolicy func(in, out *NIC, proto string, dst *Node) bool

// Node is a host, VM, relay, or service attachment point.
type Node struct {
	net     *Network
	name    string
	region  string // "" = unlabelled; used by region severing
	ifaces  []*NIC
	policy  ForwardPolicy
	masq    bool // NAT masquerade: forwarded traffic appears to come from this node
	noTrans bool // refuses to forward entirely (end hosts)
	tags    map[string]bool
}

// AddNode creates a node. By default a node forwards nothing
// (end-host); call SetForwarding or SetPolicy to make it a router, or
// use AddRouter directly.
func (n *Network) AddNode(name string) *Node {
	if _, ok := n.nodes[name]; ok {
		panic(fmt.Sprintf("vnet: duplicate node %q", name))
	}
	nd := &Node{net: n, name: name, noTrans: true}
	n.nodes[name] = nd
	n.nodeOrder = append(n.nodeOrder, nd)
	return nd
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Ifaces returns the node's NICs in link-creation order.
func (nd *Node) Ifaces() []*NIC { return nd.ifaces }

// AddTag labels the node (e.g. "lan" for intranet hosts whose private
// address range a NAT firewall filters).
func (nd *Node) AddTag(tag string) *Node {
	if nd.tags == nil {
		nd.tags = make(map[string]bool)
	}
	nd.tags[tag] = true
	return nd
}

// HasTag reports whether the node carries the tag.
func (nd *Node) HasTag(tag string) bool { return nd.tags[tag] }

// SetForwarding enables or disables transit through this node.
func (nd *Node) SetForwarding(on bool) *Node { nd.noTrans = !on; return nd }

// SetPolicy installs a forwarding policy (implies forwarding enabled).
func (nd *Node) SetPolicy(p ForwardPolicy) *Node {
	nd.policy = p
	nd.noTrans = false
	return nd
}

// SetMasquerade makes the node a NAT: traffic it forwards is observed
// downstream with this node as its source, hiding the true origin —
// KVM user-mode NAT in the paper's prototype.
func (nd *Node) SetMasquerade(on bool) *Node { nd.masq = on; return nd }

// SetRegion labels the node with a region name. Region labels drive
// SeverRegions: a flow whose path crosses from one labelled region
// into another follows the sever map. Unlabelled nodes ("") belong to
// no region and never match a sever.
func (nd *Node) SetRegion(region string) *Node { nd.region = region; return nd }

// Region returns the node's region label ("" if unlabelled).
func (nd *Node) Region() string { return nd.region }

// ActiveTransfers returns the number of in-flight flows.
func (n *Network) ActiveTransfers() int { return len(n.transfers) }
