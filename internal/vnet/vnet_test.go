package vnet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"nymix/internal/sim"
)

const mbit10 = 10e6 / 8 // 10 Mbit/s in bytes/s

// twoNodeNet builds a-/-b with the given link config.
func twoNodeNet(cfg LinkConfig) (*sim.Engine, *Network, *Link) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.Connect(a, b, cfg)
	return eng, n, l
}

func approx(t *testing.T, got, want, tol time.Duration, what string) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestSingleTransferTiming(t *testing.T) {
	eng, n, _ := twoNodeNet(LinkConfig{Latency: 10 * time.Millisecond, Capacity: 1e6})
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "http"})
	eng.Run()
	res, err := fut.Value()
	if err != nil {
		t.Fatal(err)
	}
	// 20ms handshake + 1s transmission + 10ms tail.
	approx(t, res.Duration(), 1030*time.Millisecond, 5*time.Millisecond, "duration")
	if res.Bytes != 1e6 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestOverheadInflatesWireTime(t *testing.T) {
	eng, n, _ := twoNodeNet(LinkConfig{Capacity: 1e6})
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "tor", Overhead: 0.12})
	eng.Run()
	res, _ := fut.Value()
	approx(t, res.Duration(), 1120*time.Millisecond, 5*time.Millisecond, "duration")
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng, n, _ := twoNodeNet(LinkConfig{Capacity: 1e6})
	f1 := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "x"})
	f2 := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "x"})
	eng.Run()
	r1, _ := f1.Value()
	r2, _ := f2.Value()
	approx(t, r1.Duration(), 2*time.Second, 20*time.Millisecond, "flow1")
	approx(t, r2.Duration(), 2*time.Second, 20*time.Millisecond, "flow2")
}

func TestLateFlowPreemptsBandwidth(t *testing.T) {
	eng, n, _ := twoNodeNet(LinkConfig{Capacity: 1e6})
	var d1, d2 time.Duration
	f1 := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 2e6, Proto: "x"})
	f1.OnDone(func() { r, _ := f1.Value(); d1 = r.Duration() })
	eng.Schedule(time.Second, func() {
		f2 := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "x"})
		f2.OnDone(func() { r, _ := f2.Value(); d2 = r.Duration() })
	})
	eng.Run()
	// Flow 1 alone for 1s (1 MB done), then shares: 1 MB left at 0.5 MB/s
	// = 2 more seconds. Total ~3s. Flow 2: 2s at half rate.
	approx(t, d1, 3*time.Second, 30*time.Millisecond, "flow1")
	approx(t, d2, 2*time.Second, 30*time.Millisecond, "flow2")
}

func TestMaxRateCapsUncongestedFlow(t *testing.T) {
	eng, n, _ := twoNodeNet(LinkConfig{Capacity: 0}) // unlimited link
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 1e6, Proto: "x", MaxRate: 1e5})
	eng.Run()
	res, _ := fut.Value()
	approx(t, res.Duration(), 10*time.Second, 50*time.Millisecond, "capped flow")
}

func TestNoRouteFailsAfterTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	n.AddNode("a")
	n.AddNode("b") // no link
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 100, Proto: "x"})
	eng.Run()
	_, err := fut.Value()
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if eng.Now() < 3*time.Second {
		t.Fatalf("silent drop surfaced too early: %v", eng.Now())
	}
}

func TestEndHostsDoNotForward(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a")
	mid := n.AddNode("mid") // end-host by default
	b := n.AddNode("b")
	n.Connect(a, mid, LinkConfig{})
	n.Connect(mid, b, LinkConfig{})
	if n.CanReach("a", "b", "x") {
		t.Fatal("end-host forwarded traffic")
	}
	mid.SetForwarding(true)
	if !n.CanReach("a", "b", "x") {
		t.Fatal("router did not forward")
	}
}

func TestPolicyBlocksSelectively(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	anon := n.AddNode("anonvm")
	host := n.AddNode("host")
	inet := n.AddNode("internet")
	n.Connect(anon, host, LinkConfig{})
	uplink := n.Connect(host, inet, LinkConfig{})
	// Host forwards only anonymizer traffic to the uplink.
	host.SetPolicy(func(in, out *Iface, proto string, dst *Node) bool {
		return out.Link() == uplink && proto == "tor"
	})
	if n.CanReach("anonvm", "internet", "http") {
		t.Fatal("raw http escaped through host")
	}
	if !n.CanReach("anonvm", "internet", "tor") {
		t.Fatal("tor traffic blocked")
	}
	_ = eng
}

func TestMasqueradeHidesSource(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	vm := n.AddNode("commvm")
	host := n.AddNode("host").SetForwarding(true).SetMasquerade(true)
	inet := n.AddNode("internet")
	n.Connect(vm, host, LinkConfig{})
	up := n.Connect(host, inet, LinkConfig{})
	cap := up.Tap()
	fut := n.StartTransfer(TransferOpts{From: "commvm", To: "internet", Bytes: 100, Proto: "tor"})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatal(err)
	}
	if len(cap.Entries) != 1 {
		t.Fatalf("capture entries = %d", len(cap.Entries))
	}
	if cap.Entries[0].ObservedSrc != "host" {
		t.Fatalf("observed src = %q, want host (NAT)", cap.Entries[0].ObservedSrc)
	}
}

func TestViaWaypointsProxyAndResetSource(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	client := n.AddNode("client")
	guard := n.AddNode("guard")
	exit := n.AddNode("exit")
	server := n.AddNode("server")
	n.Connect(client, guard, LinkConfig{Latency: 10 * time.Millisecond})
	n.Connect(guard, exit, LinkConfig{Latency: 10 * time.Millisecond})
	last := n.Connect(exit, server, LinkConfig{Latency: 10 * time.Millisecond})
	cap := last.Tap()
	fut := n.StartTransfer(TransferOpts{
		From: "client", To: "server", Via: []string{"guard", "exit"},
		Bytes: 1000, Proto: "tor",
	})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatal(err)
	}
	// The server-side link must see the exit, not the client.
	if cap.Entries[0].ObservedSrc != "exit" {
		t.Fatalf("observed src = %q, want exit", cap.Entries[0].ObservedSrc)
	}
}

func TestViaRoutesThroughNonForwardingProxies(t *testing.T) {
	// Waypoints terminate the flow, so they work even on nodes that
	// refuse transit forwarding — exactly how an application-level
	// relay differs from an IP router.
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a")
	relay := n.AddNode("relay") // no forwarding
	b := n.AddNode("b")
	n.Connect(a, relay, LinkConfig{})
	n.Connect(relay, b, LinkConfig{})
	if n.CanReach("a", "b", "x") {
		t.Fatal("transit through end-host")
	}
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Via: []string{"relay"}, Bytes: 10, Proto: "x"})
	eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatalf("via-relay transfer failed: %v", err)
	}
}

func TestLinkDownFailsActiveTransfers(t *testing.T) {
	eng, n, l := twoNodeNet(LinkConfig{Capacity: 1e6})
	fut := n.StartTransfer(TransferOpts{From: "a", To: "b", Bytes: 10e6, Proto: "x"})
	eng.Schedule(2*time.Second, func() { l.SetDown(n, true) })
	eng.Run()
	_, err := fut.Value()
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if n.ActiveTransfers() != 0 {
		t.Fatal("failed transfer still active")
	}
}

func TestPathLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddNode("a")
	r := n.AddNode("r").SetForwarding(true)
	b := n.AddNode("b")
	n.Connect(a, r, LinkConfig{Latency: 15 * time.Millisecond})
	n.Connect(r, b, LinkConfig{Latency: 25 * time.Millisecond})
	lat, err := n.PathLatency("a", "b")
	if err != nil || lat != 40*time.Millisecond {
		t.Fatalf("latency = %v, %v", lat, err)
	}
}

func TestBottleneckSharedAcrossPaths(t *testing.T) {
	// Two flows from different sources share a common bottleneck; a
	// third flow on a disjoint path is unaffected.
	eng := sim.NewEngine(1)
	n := New(eng)
	s1 := n.AddNode("s1")
	s2 := n.AddNode("s2")
	r := n.AddNode("r").SetForwarding(true)
	dst := n.AddNode("dst")
	other := n.AddNode("other")
	n.Connect(s1, r, LinkConfig{Capacity: 10e6})
	n.Connect(s2, r, LinkConfig{Capacity: 10e6})
	n.Connect(r, dst, LinkConfig{Capacity: 1e6}) // bottleneck
	n.Connect(s1, other, LinkConfig{Capacity: 1e6})
	f1 := n.StartTransfer(TransferOpts{From: "s1", To: "dst", Bytes: 1e6, Proto: "x"})
	f2 := n.StartTransfer(TransferOpts{From: "s2", To: "dst", Bytes: 1e6, Proto: "x"})
	f3 := n.StartTransfer(TransferOpts{From: "s1", To: "other", Bytes: 1e6, Proto: "x"})
	eng.Run()
	r1, _ := f1.Value()
	r2, _ := f2.Value()
	r3, _ := f3.Value()
	approx(t, r1.Duration(), 2*time.Second, 20*time.Millisecond, "f1")
	approx(t, r2.Duration(), 2*time.Second, 20*time.Millisecond, "f2")
	approx(t, r3.Duration(), 1*time.Second, 20*time.Millisecond, "f3 (disjoint)")
}

func TestMaxMinAsymmetricBottlenecks(t *testing.T) {
	// Flow A uses only the shared 1 MB/s link; flow B additionally
	// crosses a 0.3 MB/s link. Max-min: B is frozen at 0.3, A takes the
	// residual 0.7 — not an equal split.
	eng := sim.NewEngine(1)
	n := New(eng)
	src := n.AddNode("src")
	mid := n.AddNode("mid").SetForwarding(true)
	dstA := n.AddNode("dstA")
	dstB := n.AddNode("dstB")
	n.Connect(src, mid, LinkConfig{Capacity: 1e6})
	n.Connect(mid, dstA, LinkConfig{Capacity: 100e6})
	n.Connect(mid, dstB, LinkConfig{Capacity: 0.3e6})
	fa := n.StartTransfer(TransferOpts{From: "src", To: "dstA", Bytes: 1.4e6, Proto: "x"})
	fb := n.StartTransfer(TransferOpts{From: "src", To: "dstB", Bytes: 0.3e6, Proto: "x"})
	eng.Run()
	ra, _ := fa.Value()
	rb, _ := fb.Value()
	// B: 0.3 MB at 0.3 MB/s = 1s. A: 0.7 MB in the first second, then
	// the full 1 MB/s for the remaining 0.7 MB = 1.7s total.
	approx(t, rb.Duration(), time.Second, 30*time.Millisecond, "flowB")
	approx(t, ra.Duration(), 1700*time.Millisecond, 50*time.Millisecond, "flowA")
}

func TestNParallelDownloadsScaleLinearly(t *testing.T) {
	// The Figure 5 mechanism: k flows through one 10 Mbit/s uplink take
	// ~k times as long as one.
	var base time.Duration
	for _, k := range []int{1, 2, 4, 8} {
		eng := sim.NewEngine(1)
		n := New(eng)
		host := n.AddNode("host").SetForwarding(true)
		inet := n.AddNode("inet")
		n.Connect(host, inet, LinkConfig{Capacity: mbit10})
		futs := make([]*sim.Future[Result], k)
		for i := 0; i < k; i++ {
			src := n.AddNode(string(rune('A' + i)))
			n.Connect(src, host, LinkConfig{Capacity: 100e6})
			futs[i] = n.StartTransfer(TransferOpts{From: src.Name(), To: "inet", Bytes: 10e6, Proto: "x"})
		}
		eng.Run()
		var last time.Duration
		for _, f := range futs {
			r, err := f.Value()
			if err != nil {
				t.Fatal(err)
			}
			if r.Duration() > last {
				last = r.Duration()
			}
		}
		if k == 1 {
			base = last
			continue
		}
		ratio := float64(last) / float64(base)
		if math.Abs(ratio-float64(k)) > 0.1*float64(k) {
			t.Fatalf("k=%d: ratio %.2f, want ~%d", k, ratio, k)
		}
	}
}

// Property: aggregate goodput through a shared bottleneck never
// exceeds its capacity, and every flow's bytes are delivered.
func TestPropertyCapacityConserved(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		eng := sim.NewEngine(7)
		n := New(eng)
		host := n.AddNode("host").SetForwarding(true)
		inet := n.AddNode("inet")
		cap := 1e6
		n.Connect(host, inet, LinkConfig{Capacity: cap})
		var futs []*sim.Future[Result]
		var total float64
		for i, s := range sizes {
			bytes := int64(s)%100000 + 1000
			total += float64(bytes)
			src := n.AddNode(string(rune('A' + i)))
			n.Connect(src, host, LinkConfig{Capacity: 10e6})
			futs = append(futs, n.StartTransfer(TransferOpts{
				From: src.Name(), To: "inet", Bytes: bytes, Proto: "x",
			}))
		}
		eng.Run()
		var maxEnd sim.Time
		for _, f := range futs {
			r, err := f.Value()
			if err != nil {
				return false
			}
			if r.Ended > maxEnd {
				maxEnd = r.Ended
			}
		}
		elapsed := maxEnd.Seconds()
		if elapsed <= 0 {
			return false
		}
		// Goodput cannot beat the bottleneck (within 1% numeric slack).
		return total/elapsed <= cap*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with equal flows, max-min gives equal completion times.
func TestPropertyFairnessEqualFlows(t *testing.T) {
	f := func(k uint8) bool {
		count := int(k)%7 + 2
		eng := sim.NewEngine(3)
		n := New(eng)
		host := n.AddNode("host").SetForwarding(true)
		inet := n.AddNode("inet")
		n.Connect(host, inet, LinkConfig{Capacity: 1e6})
		var futs []*sim.Future[Result]
		for i := 0; i < count; i++ {
			src := n.AddNode(string(rune('A' + i)))
			n.Connect(src, host, LinkConfig{})
			futs = append(futs, n.StartTransfer(TransferOpts{From: src.Name(), To: "inet", Bytes: 1e6, Proto: "x"}))
		}
		eng.Run()
		var first, last time.Duration
		for i, f := range futs {
			r, err := f.Value()
			if err != nil {
				return false
			}
			if i == 0 || r.Duration() < first {
				first = r.Duration()
			}
			if r.Duration() > last {
				last = r.Duration()
			}
		}
		// All equal within a tiny numerical tolerance.
		return (last - first) < 50*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New(sim.NewEngine(1))
	n.AddNode("x")
	n.AddNode("x")
}
