package vnet

import "nymix/internal/nymerr"

// Registered error codes for the network fabric. Everything a
// simulated network can do to a flow — no route, a dead link, a
// severed region, a censor verdict — surfaces under one of these, so
// the layers above (cloud, fleet, cluster, slo) classify network
// trouble without string matching.
var (
	// CodeNoRoute: no policy-respecting path exists between the
	// endpoints.
	CodeNoRoute = nymerr.Register("vnet.no_route",
		"no policy-respecting path between the endpoints")
	// CodeLinkDown: a link on the flow's path was administratively
	// down in the traversal direction.
	CodeLinkDown = nymerr.Register("vnet.link_down",
		"a link on the path is down in the traversal direction")
	// CodeCanceled: the transfer was canceled by its originator.
	CodeCanceled = nymerr.Register("vnet.canceled",
		"the transfer was canceled by its originator")
	// CodePartitioned: the path crosses a severed region boundary.
	CodePartitioned = nymerr.Register("vnet.partitioned",
		"the path crosses a severed region boundary")
	// CodeCensored: a DPI engine on the path classified the flow and
	// dropped it.
	CodeCensored = nymerr.Register("vnet.censored",
		"a DPI engine on the path dropped the classified flow")
)

// Sentinel errors. Each is a typed nymerr root carrying the matching
// vnet.* code, so errors.Is against the sentinel and
// nymerr.Classify/HasCode against the code both work on any error
// derived from these (including fmt.Errorf("%w ...") wraps).
var (
	ErrNoRoute     = nymerr.New(CodeNoRoute, "no route to host")
	ErrLinkDown    = nymerr.New(CodeLinkDown, "link down")
	ErrCanceled    = nymerr.New(CodeCanceled, "transfer canceled")
	ErrPartitioned = nymerr.New(CodePartitioned, "region severed")
	ErrCensored    = nymerr.New(CodeCensored, "flow dropped by censor")
)
