package vnet

import (
	"fmt"
	"time"
)

// hop is one step of a computed route.
type hop struct {
	link        *Link
	dir         int    // traversal direction across the link
	observedSrc string // source name visible on this link (post-NAT)
}

// route finds a policy-respecting path from src to dst, optionally
// through waypoints (each waypoint acts as a proxy terminating and
// re-originating the flow, like a Tor relay). It returns the hops in
// order.
func (n *Network) route(src, dst *Node, via []*Node, proto string) ([]hop, error) {
	points := append([]*Node{src}, via...)
	points = append(points, dst)
	var hops []hop
	for i := 0; i+1 < len(points); i++ {
		seg, err := n.segment(points[i], points[i+1], proto)
		if err != nil {
			return nil, fmt.Errorf("%w (%s -> %s)", err, points[i].name, points[i+1].name)
		}
		// The segment originates at points[i]; NAT nodes along it rewrite
		// the observed source.
		observed := points[i].name
		node := points[i]
		for _, l := range seg {
			var next *NIC
			dir := dirAB
			if l.a.node == node {
				next = l.b
			} else {
				next = l.a
				dir = dirBA
			}
			hops = append(hops, hop{link: l, dir: dir, observedSrc: observed})
			node = next.node
			if node.masq {
				observed = node.name
			}
		}
	}
	return hops, nil
}

// segment runs a BFS from src to dst honoring per-direction link
// state, region severs, and transit policies. Deterministic: neighbors
// expand in link-creation order. When the only thing standing between
// src and dst is a severed region boundary, the error is
// vnet.partitioned rather than vnet.no_route, so callers can tell a
// partition from a topology hole.
func (n *Network) segment(src, dst *Node, proto string) ([]*Link, error) {
	if src == dst {
		return nil, nil
	}
	// Endpoint check first: severed regions are unreachable even when
	// no single link crosses the boundary directly (e.g. east→west
	// through an unlabelled or third-region backbone).
	if n.regionCut(src, dst) {
		return nil, ErrPartitioned
	}
	type visit struct {
		node *Node
		in   *NIC // NIC we arrived on (nil at src)
	}
	sawSever := false
	prev := map[*Node]*NIC{} // node -> NIC we arrived through
	seen := map[*Node]bool{src: true}
	queue := []visit{{node: src}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// A transit node must permit forwarding; endpoints are exempt.
		for _, out := range v.node.ifaces {
			if out.link.down[out.link.dirFrom(v.node)] {
				continue
			}
			peer := out.Peer()
			if n.regionCut(v.node, peer.node) {
				sawSever = true
				continue
			}
			if v.node != src {
				if v.node.noTrans {
					continue
				}
				if v.node.policy != nil && !v.node.policy(v.in, out, proto, dst) {
					continue
				}
			}
			if seen[peer.node] {
				continue
			}
			seen[peer.node] = true
			prev[peer.node] = peer
			if peer.node == dst {
				// Reconstruct.
				var links []*Link
				at := dst
				for at != src {
					in := prev[at]
					links = append(links, in.link)
					at = in.Peer().node
				}
				// Reverse.
				for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
					links[i], links[j] = links[j], links[i]
				}
				return links, nil
			}
			queue = append(queue, visit{node: peer.node, in: peer})
		}
	}
	if sawSever {
		return nil, ErrPartitioned
	}
	return nil, ErrNoRoute
}

// CanReach reports whether src can currently route proto traffic to
// dst. This is the probe primitive behind the section 5.1 isolation
// matrix.
func (n *Network) CanReach(src, dst string, proto string) bool {
	s, d := n.nodes[src], n.nodes[dst]
	if s == nil || d == nil {
		return false
	}
	_, err := n.segment(s, d, proto)
	return err == nil
}

// PathLatency returns the one-way latency between two nodes along the
// current route, or an error if unreachable.
func (n *Network) PathLatency(src, dst string, via ...string) (time.Duration, error) {
	s, d := n.nodes[src], n.nodes[dst]
	if s == nil || d == nil {
		return 0, ErrNoRoute
	}
	vias, err := n.viaNodes(via)
	if err != nil {
		return 0, err
	}
	hops, err := n.route(s, d, vias, "probe")
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for _, h := range hops {
		total += h.link.cfg.Latency
	}
	return total, nil
}

func (n *Network) viaNodes(names []string) ([]*Node, error) {
	var out []*Node
	for _, name := range names {
		nd := n.nodes[name]
		if nd == nil {
			return nil, fmt.Errorf("%w: waypoint %q", ErrNoRoute, name)
		}
		out = append(out, nd)
	}
	return out, nil
}
