package vnet

// NIC is one end of a link: the attachment point of a node. Every NIC
// carries always-on byte counters — the simulation's ground truth for
// what actually crossed the wire at this attachment — and can be
// decorated with WireTaps for interval accounting.
type NIC struct {
	node *Node
	link *Link
	taps []*WireTap
	tx   float64 // bytes transmitted through this NIC since creation
	rx   float64 // bytes received through this NIC since creation
}

// Iface is the NIC's historical name; consumer packages written
// against the flat-star vnet use it interchangeably.
type Iface = NIC

// Node returns the NIC's node.
func (i *NIC) Node() *Node { return i.node }

// Link returns the NIC's link.
func (i *NIC) Link() *Link { return i.link }

// Peer returns the NIC at the other end of the link.
func (i *NIC) Peer() *NIC {
	if i.link.a == i {
		return i.link.b
	}
	return i.link.a
}

// TxBytes returns the wire bytes transmitted through this NIC since
// creation, credited as flows progress (not at completion).
func (i *NIC) TxBytes() int64 { return round64(i.tx) }

// RxBytes returns the wire bytes received through this NIC since
// creation.
func (i *NIC) RxBytes() int64 { return round64(i.rx) }

// WireTap attaches a byte tap to the NIC. The tap starts at zero and
// accumulates from the moment of attachment, independent of the NIC's
// lifetime counters and of any other tap.
func (i *NIC) WireTap() *WireTap {
	w := &WireTap{nic: i}
	i.taps = append(i.taps, w)
	return w
}

// WireTap is a byte-tap decorator on a NIC: ground-truth wire
// accounting over the interval since it was attached. Fluid flows
// credit their taps continuously (at every rate change and at
// completion), so a tap read mid-experiment reflects bytes actually
// moved, not bytes promised.
type WireTap struct {
	nic    *NIC
	tx, rx float64
}

// NIC returns the tapped attachment point.
func (w *WireTap) NIC() *NIC { return w.nic }

// TxBytes returns bytes transmitted through the NIC since the tap was
// attached.
func (w *WireTap) TxBytes() int64 { return round64(w.tx) }

// RxBytes returns bytes received through the NIC since the tap was
// attached.
func (w *WireTap) RxBytes() int64 { return round64(w.rx) }

// Bytes returns the tap's total in both directions.
func (w *WireTap) Bytes() int64 { return round64(w.tx + w.rx) }

// round64 converts an accumulated fluid byte count to the nearest
// integer; fluid settlement leaves sub-byte float dust.
func round64(v float64) int64 { return int64(v + 0.5) }
