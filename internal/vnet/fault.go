package vnet

import (
	"fmt"
	"time"

	"nymix/internal/sim"
)

// Fault is one scripted event in a fault schedule: at At (relative to
// when the schedule is played), Apply mutates the fabric. The
// constructors below cover the common impairments; arbitrary faults
// can be built directly.
type Fault struct {
	At    time.Duration
	Label string
	Apply func(*Network)
}

// AppliedFault records a fault the network actually executed.
type AppliedFault struct {
	At    sim.Time
	Label string
}

// Play schedules every fault relative to now. Faults fire in At
// order; each application is appended to the fault log.
func (n *Network) Play(faults ...Fault) {
	for _, f := range faults {
		f := f
		n.eng.Schedule(f.At, func() {
			f.Apply(n)
			n.faultLog = append(n.faultLog, AppliedFault{At: n.eng.Now(), Label: f.Label})
		})
	}
}

// FaultLog returns the faults applied so far, in execution order.
func (n *Network) FaultLog() []AppliedFault { return n.faultLog }

// SeverFault severs the region boundary a|b in both directions.
func SeverFault(at time.Duration, a, b string) Fault {
	return Fault{At: at, Label: fmt.Sprintf("sever %s<->%s", a, b),
		Apply: func(n *Network) { n.SeverRegions(a, b) }}
}

// SeverOneWayFault severs only the from→to direction of a region
// boundary (asymmetric partition).
func SeverOneWayFault(at time.Duration, from, to string) Fault {
	return Fault{At: at, Label: fmt.Sprintf("sever %s->%s", from, to),
		Apply: func(n *Network) { n.SeverRegionsOneWay(from, to) }}
}

// HealFault heals the region boundary a|b in both directions.
func HealFault(at time.Duration, a, b string) Fault {
	return Fault{At: at, Label: fmt.Sprintf("heal %s<->%s", a, b),
		Apply: func(n *Network) { n.HealRegions(a, b) }}
}

// LinkDownFault takes the first link between the named nodes down in
// both directions. It panics at apply time if no such link exists —
// a schedule naming a missing link is a scripting bug.
func LinkDownFault(at time.Duration, a, b string) Fault {
	return Fault{At: at, Label: fmt.Sprintf("link down %s--%s", a, b),
		Apply: func(n *Network) { n.mustLink(a, b).SetDown(n, true) }}
}

// LinkUpFault brings the first link between the named nodes back up.
func LinkUpFault(at time.Duration, a, b string) Fault {
	return Fault{At: at, Label: fmt.Sprintf("link up %s--%s", a, b),
		Apply: func(n *Network) { n.mustLink(a, b).SetDown(n, false) }}
}

// LossFault sets the loss rate on the first link between the named
// nodes (both directions, flows admitted after the fault).
func LossFault(at time.Duration, a, b string, loss float64) Fault {
	return Fault{At: at, Label: fmt.Sprintf("loss %s--%s %.0f%%", a, b, loss*100),
		Apply: func(n *Network) { n.mustLink(a, b).SetLoss(loss) }}
}

// DPIFault installs a DPI engine on the first link between the named
// nodes (nil removes it).
func DPIFault(at time.Duration, a, b string, e *DPIEngine) Fault {
	return Fault{At: at, Label: fmt.Sprintf("dpi %s--%s", a, b),
		Apply: func(n *Network) { n.mustLink(a, b).SetDPI(n, e) }}
}

// LinkBetween returns the first link joining the two named nodes (in
// either order), or nil.
func (n *Network) LinkBetween(a, b string) *Link {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return nil
	}
	for _, i := range na.ifaces {
		if i.Peer().node == nb {
			return i.link
		}
	}
	return nil
}

func (n *Network) mustLink(a, b string) *Link {
	l := n.LinkBetween(a, b)
	if l == nil {
		panic(fmt.Sprintf("vnet: no link between %q and %q", a, b))
	}
	return l
}
