// Package vdisk models the virtual disks Nymix attaches to its VMs: a
// union-file-system stack with a capacity-limited, RAM-backed writable
// layer. Per the paper (section 4.2), "the writable image can either
// be tossed at the end of a session or stored in the cloud for
// quasi-persistent data stores", and its bytes are charged against
// host RAM.
package vdisk

import (
	"errors"
	"fmt"

	"nymix/internal/unionfs"
)

// ErrDiskFull is returned when a write would exceed the disk's
// writable capacity.
var ErrDiskFull = errors.New("vdisk: disk full")

// Disk is one VM-attached virtual disk.
type Disk struct {
	name     string
	capacity int64 // writable-layer capacity in bytes; 0 = unlimited
	fs       *unionfs.FS
}

// New builds a disk from sealed base layers (given top-most lower
// layer first) with a fresh writable layer of the given capacity.
func New(name string, capacity int64, lower ...*unionfs.Layer) (*Disk, error) {
	layers := append([]*unionfs.Layer{unionfs.NewLayer(name + "/writable")}, lower...)
	fs, err := unionfs.Stack(layers...)
	if err != nil {
		return nil, err
	}
	return &Disk{name: name, capacity: capacity, fs: fs}, nil
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// Capacity returns the writable layer's capacity in bytes.
func (d *Disk) Capacity() int64 { return d.capacity }

// Used returns bytes currently stored in the writable layer.
func (d *Disk) Used() int64 { return d.fs.Top().UsedBytes() }

// Free returns remaining writable capacity.
func (d *Disk) Free() int64 {
	if d.capacity == 0 {
		return 1 << 62
	}
	return d.capacity - d.Used()
}

// FS exposes the union view for reads (and direct writes by callers
// that have already checked capacity, such as image builders).
func (d *Disk) FS() *unionfs.FS { return d.fs }

// SetDeltaFunc forwards a byte-accounting hook to the writable layer,
// so the hypervisor can charge tmpfs usage against host RAM.
func (d *Disk) SetDeltaFunc(fn func(int64)) { d.fs.Top().SetDeltaFunc(fn) }

// SetMutateFunc forwards the size-preserving-rewrite hook to the
// writable layer, so dirty tracking sees content changes the byte
// delta cannot.
func (d *Disk) SetMutateFunc(fn func(int64)) { d.fs.Top().SetMutateFunc(fn) }

func (d *Disk) checkRoom(delta int64) error {
	if d.capacity != 0 && delta > 0 && d.Used()+delta > d.capacity {
		return fmt.Errorf("%w: %s (%d used of %d)", ErrDiskFull, d.name, d.Used(), d.capacity)
	}
	return nil
}

// WriteFile writes real bytes, enforcing capacity.
func (d *Disk) WriteFile(path string, data []byte) error {
	var old int64
	if info, err := d.fs.Stat(path); err == nil && info.Layer == d.fs.Top().Name() {
		old = info.Size
	}
	if err := d.checkRoom(int64(len(data)) - old); err != nil {
		return err
	}
	return d.fs.WriteFile(path, data)
}

// WriteVirtual writes a virtual file, enforcing capacity.
func (d *Disk) WriteVirtual(path string, size int64, entropy float64) error {
	var old int64
	if info, err := d.fs.Stat(path); err == nil && info.Layer == d.fs.Top().Name() {
		old = info.Size
	}
	if err := d.checkRoom(size - old); err != nil {
		return err
	}
	return d.fs.WriteVirtual(path, size, entropy)
}

// GrowVirtual extends a virtual file, enforcing capacity.
func (d *Disk) GrowVirtual(path string, delta int64, entropy float64) error {
	if err := d.checkRoom(delta); err != nil {
		return err
	}
	return d.fs.GrowVirtual(path, delta, entropy)
}

// Remove deletes a path from the union view.
func (d *Disk) Remove(path string) error { return d.fs.Remove(path) }

// Snapshot exports the writable layer for archiving (the
// quasi-persistent nym state of section 3.5).
func (d *Disk) Snapshot() unionfs.Image { return d.fs.Top().Export() }

// Restore replaces the writable layer's contents with a previously
// snapshotted image, preserving the delta hook and capacity.
func (d *Disk) Restore(img unionfs.Image) error {
	restored := unionfs.Import(img)
	if d.capacity != 0 && restored.UsedBytes() > d.capacity {
		return fmt.Errorf("%w: restore of %d bytes into %d-byte disk %s",
			ErrDiskFull, restored.UsedBytes(), d.capacity, d.name)
	}
	top := d.fs.Top()
	top.Clear()
	for p, fi := range img.Files {
		if fi.Real {
			if err := d.fs.WriteFile(p, fi.Data); err != nil {
				return err
			}
			continue
		}
		if err := d.fs.WriteVirtual(p, fi.VirtualSize, fi.Entropy); err != nil {
			return err
		}
	}
	for _, p := range img.Whiteouts {
		if d.fs.Exists(p) {
			if err := d.fs.Remove(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Discard clears the writable layer: the fate of every ephemeral nym's
// disk, wiped when the pseudonym ends.
func (d *Disk) Discard() { d.fs.Top().Clear() }
