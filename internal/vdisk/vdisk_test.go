package vdisk

import (
	"errors"
	"testing"

	"nymix/internal/unionfs"
)

func baseLayer() *unionfs.Layer {
	base := unionfs.NewLayer("base")
	fs, _ := unionfs.Stack(base)
	fs.WriteFile("/etc/os-release", []byte("nymix"))
	fs.WriteVirtual("/usr/big", 1<<20, 0.8)
	return base.Seal()
}

func TestNewAndReadThrough(t *testing.T) {
	d, err := New("anonvm-disk", 1000, baseLayer())
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.FS().ReadFile("/etc/os-release")
	if err != nil || string(got) != "nymix" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if d.Used() != 0 {
		t.Fatalf("fresh disk used = %d", d.Used())
	}
}

func TestCapacityEnforced(t *testing.T) {
	d, _ := New("d", 100, baseLayer())
	if err := d.WriteFile("/a", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("/b", make([]byte, 60)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("err = %v, want ErrDiskFull", err)
	}
	// Overwriting the same file only charges the delta.
	if err := d.WriteFile("/a", make([]byte, 100)); err != nil {
		t.Fatalf("overwrite within capacity failed: %v", err)
	}
	if d.Used() != 100 || d.Free() != 0 {
		t.Fatalf("used=%d free=%d", d.Used(), d.Free())
	}
}

func TestVirtualCapacity(t *testing.T) {
	d, _ := New("d", 1000, baseLayer())
	if err := d.WriteVirtual("/cache", 800, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.GrowVirtual("/cache", 300, 1); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("err = %v, want ErrDiskFull", err)
	}
	if err := d.GrowVirtual("/cache", 200, 1); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 1000 {
		t.Fatalf("used = %d", d.Used())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d, _ := New("d", 10000, baseLayer())
	d.WriteFile("/home/user/creds", []byte("tok"))
	d.WriteVirtual("/home/user/cache", 5000, 0.9)
	d.Remove("/etc/os-release") // whiteout over base
	img := d.Snapshot()

	d2, _ := New("d2", 10000, baseLayer())
	if err := d2.Restore(img); err != nil {
		t.Fatal(err)
	}
	got, err := d2.FS().ReadFile("/home/user/creds")
	if err != nil || string(got) != "tok" {
		t.Fatalf("creds = %q, %v", got, err)
	}
	info, err := d2.FS().Stat("/home/user/cache")
	if err != nil || info.Size != 5000 {
		t.Fatalf("cache = %+v, %v", info, err)
	}
	if d2.FS().Exists("/etc/os-release") {
		t.Fatal("whiteout not restored")
	}
}

func TestRestoreTooLargeRejected(t *testing.T) {
	big, _ := New("big", 0, baseLayer())
	big.WriteVirtual("/x", 5000, 1)
	img := big.Snapshot()
	small, _ := New("small", 100, baseLayer())
	if err := small.Restore(img); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("err = %v, want ErrDiskFull", err)
	}
}

func TestDiscardWipesWritableKeepsBase(t *testing.T) {
	d, _ := New("d", 1000, baseLayer())
	d.WriteFile("/secret", []byte("s"))
	d.Discard()
	if d.Used() != 0 {
		t.Fatalf("used = %d after discard", d.Used())
	}
	if d.FS().Exists("/secret") {
		t.Fatal("secret survived discard")
	}
	if !d.FS().Exists("/etc/os-release") {
		t.Fatal("base content lost on discard")
	}
}

func TestDeltaHookCharged(t *testing.T) {
	var ram int64
	d, _ := New("d", 0, baseLayer())
	d.SetDeltaFunc(func(delta int64) { ram += delta })
	d.WriteFile("/a", make([]byte, 64))
	d.WriteVirtual("/b", 1000, 1)
	if ram != 1064 {
		t.Fatalf("ram = %d", ram)
	}
	d.Discard()
	if ram != 0 {
		t.Fatalf("ram = %d after discard", ram)
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	d, _ := New("d", 0, baseLayer())
	if err := d.WriteVirtual("/huge", 1<<40, 1); err != nil {
		t.Fatal(err)
	}
	if d.Free() < 1<<61 {
		t.Fatalf("free = %d", d.Free())
	}
}
