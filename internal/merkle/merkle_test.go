package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"nymix/internal/guestos"
	"nymix/internal/unionfs"
)

func testLayer(files map[string]string) *unionfs.Layer {
	l := unionfs.NewLayer("base")
	fs, _ := unionfs.Stack(l)
	for p, content := range files {
		fs.WriteFile(p, []byte(content))
	}
	return l
}

func TestRootDeterministic(t *testing.T) {
	a := BuildLayer(testLayer(map[string]string{"/a": "1", "/b": "2", "/c": "3"}))
	b := BuildLayer(testLayer(map[string]string{"/c": "3", "/a": "1", "/b": "2"}))
	if a.Root() != b.Root() {
		t.Fatal("insertion order changed the root")
	}
}

func TestRootSensitiveToContentAndPath(t *testing.T) {
	base := BuildLayer(testLayer(map[string]string{"/a": "1", "/b": "2"}))
	changedContent := BuildLayer(testLayer(map[string]string{"/a": "1", "/b": "X"}))
	changedPath := BuildLayer(testLayer(map[string]string{"/a": "1", "/bb": "2"}))
	extraFile := BuildLayer(testLayer(map[string]string{"/a": "1", "/b": "2", "/c": ""}))
	for name, tree := range map[string]*Tree{
		"content": changedContent, "path": changedPath, "extra": extraFile,
	} {
		if tree.Root() == base.Root() {
			t.Fatalf("%s change not reflected in root", name)
		}
	}
}

func TestVerifyLayerDetectsTampering(t *testing.T) {
	// The realistic threat: the base image is modified while the USB
	// sits in another machine.
	original := guestos.BuildBaseImage()
	root := BuildLayer(original).Root()
	if err := VerifyLayer(original, root); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	// An attacker stains one config file.
	img := original.Export()
	tampered := unionfs.Import(img)
	tfs, _ := unionfs.Stack(tampered)
	tfs.WriteFile("/etc/rc.local", []byte("#!/bin/sh\nreport-home\n"))
	if err := VerifyLayer(tampered.Seal(), root); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered image accepted: %v", err)
	}
}

func TestVerifyFilePerAccess(t *testing.T) {
	layer := testLayer(map[string]string{"/a": "1", "/b": "2", "/c": "3", "/d": "4", "/e": "5"})
	tree := BuildLayer(layer)
	for _, p := range []string{"/a", "/b", "/c", "/d", "/e"} {
		if err := tree.VerifyFile(layer, p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	// Tamper with one file; only it fails, others still verify.
	img := layer.Export()
	bad := unionfs.Import(img)
	bfs, _ := unionfs.Stack(bad)
	bfs.WriteFile("/c", []byte("evil"))
	if err := tree.VerifyFile(bad, "/c"); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered file passed: %v", err)
	}
	if err := tree.VerifyFile(bad, "/a"); err != nil {
		t.Fatalf("untouched file failed: %v", err)
	}
	if err := tree.VerifyFile(bad, "/nonexistent"); !errors.Is(err, ErrTampered) {
		t.Fatalf("unknown path: %v", err)
	}
}

func TestProofRoundTrip(t *testing.T) {
	for n := 1; n <= 17; n++ {
		files := map[string]string{}
		for i := 0; i < n; i++ {
			files[fmt.Sprintf("/f%02d", i)] = fmt.Sprintf("content-%d", i)
		}
		layer := testLayer(files)
		tree := BuildLayer(layer)
		img := layer.Export()
		for i := 0; i < tree.Leaves(); i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatal(err)
			}
			path := tree.paths[i]
			leaf := leafDigest(path, img.Files[path])
			if !VerifyProof(tree.Root(), leaf, proof) {
				t.Fatalf("n=%d leaf %d proof failed", n, i)
			}
			// A proof for the wrong leaf must fail.
			other := tree.paths[(i+1)%len(tree.paths)]
			if n > 1 && VerifyProof(tree.Root(), leafDigest(other, img.Files[other]), proof) {
				t.Fatalf("n=%d: proof for leaf %d verified wrong leaf", n, i)
			}
		}
	}
}

func TestProofOutOfRange(t *testing.T) {
	tree := BuildLayer(testLayer(map[string]string{"/a": "1"}))
	if _, err := tree.Proof(5); err == nil {
		t.Fatal("out-of-range proof accepted")
	}
	if _, err := tree.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestEmptyLayerHasStableRoot(t *testing.T) {
	a := BuildLayer(unionfs.NewLayer("x"))
	b := BuildLayer(unionfs.NewLayer("y"))
	if a.Root() != b.Root() {
		t.Fatal("empty roots differ")
	}
}

// Property: any single-byte flip in any file is detected by
// VerifyLayer.
func TestPropertyAnyFlipDetected(t *testing.T) {
	f := func(contents [][]byte, whichFile, whichByte uint8) bool {
		if len(contents) == 0 {
			return true
		}
		files := map[string]string{}
		for i, c := range contents {
			files[fmt.Sprintf("/f%03d", i)] = string(c)
		}
		layer := testLayer(files)
		root := BuildLayer(layer).Root()

		// Flip one byte in one file (skip empty files).
		target := fmt.Sprintf("/f%03d", int(whichFile)%len(contents))
		data := []byte(files[target])
		if len(data) == 0 {
			return true
		}
		data[int(whichByte)%len(data)] ^= 0xFF
		img := layer.Export()
		bad := unionfs.Import(img)
		bfs, _ := unionfs.Stack(bad)
		bfs.WriteFile(target, data)
		return errors.Is(VerifyLayer(bad, root), ErrTampered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual files' size and entropy are integrity-covered.
func TestPropertyVirtualMetadataCovered(t *testing.T) {
	f := func(size uint32, entPct uint8) bool {
		l := unionfs.NewLayer("v")
		fs, _ := unionfs.Stack(l)
		fs.WriteVirtual("/blob", int64(size), float64(entPct%101)/100)
		root := BuildLayer(l).Root()

		l2 := unionfs.NewLayer("v")
		fs2, _ := unionfs.Stack(l2)
		fs2.WriteVirtual("/blob", int64(size)+1, float64(entPct%101)/100)
		return BuildLayer(l2).Root() != root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHashesMatchesAndProves(t *testing.T) {
	// BuildHashes over arbitrary leaf digests (internal/vault's chunk
	// addresses) must behave like a layer tree: deterministic root,
	// order sensitivity, and working membership proofs — including the
	// odd-leaf promotion case.
	for _, n := range []int{0, 1, 2, 3, 7, 8} {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = sha256.Sum256([]byte{byte(i)})
		}
		tree := BuildHashes(leaves)
		if tree.Root() != BuildHashes(leaves).Root() {
			t.Fatalf("n=%d: root not deterministic", n)
		}
		for i := range leaves {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d proof %d: %v", n, i, err)
			}
			if !VerifyProof(tree.Root(), leaves[i], proof) {
				t.Fatalf("n=%d: leaf %d proof rejected", n, i)
			}
			bad := leaves[i]
			bad[0] ^= 1
			if VerifyProof(tree.Root(), bad, proof) {
				t.Fatalf("n=%d: tampered leaf %d accepted", n, i)
			}
		}
	}
	// Order matters: swapping two leaves changes the root.
	a := []Hash{sha256.Sum256([]byte{1}), sha256.Sum256([]byte{2})}
	b := []Hash{a[1], a[0]}
	if BuildHashes(a).Root() == BuildHashes(b).Root() {
		t.Fatal("leaf order not committed")
	}
	// The caller's slice is copied, not aliased.
	c := []Hash{sha256.Sum256([]byte{9})}
	tree := BuildHashes(c)
	c[0][0] ^= 1
	if tree.Root() != BuildHashes([]Hash{sha256.Sum256([]byte{9})}).Root() {
		t.Fatal("BuildHashes aliased the caller's leaves")
	}
}
