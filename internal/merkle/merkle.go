// Package merkle implements the base-image integrity mechanism the
// paper proposes in section 3.4: "adding a mechanism to check all disk
// blocks loaded from the host OS partition into an AnonVM or CommVM
// against a well-known Merkle tree as they are accessed, and safely
// shut down rather than risk vulnerability if a modified block is
// detected."
//
// The threat: Nymix mounts its host partition strictly read-only, but
// while the USB drive is plugged into some other machine, another OS
// could modify it — and any modification, however minute, would
// manifest identically in every subsequently created VM, making the
// user trackable.
//
// Leaves are per-file digests of a union-file-system layer in sorted
// path order; the tree is a standard binary SHA-256 Merkle tree with
// membership proofs.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"nymix/internal/unionfs"
)

// Hash is a SHA-256 digest.
type Hash [sha256.Size]byte

// ErrTampered is returned when content fails verification.
var ErrTampered = errors.New("merkle: content does not match the well-known root")

// leafDigest hashes one file's identity and content. Virtual files
// hash their size and entropy coefficient (their content identity in
// the simulation); real files hash their bytes.
func leafDigest(path string, f unionfs.FileImage) Hash {
	h := sha256.New()
	h.Write([]byte("leaf\x00"))
	h.Write([]byte(path))
	h.Write([]byte{0})
	var meta [17]byte
	binary.BigEndian.PutUint64(meta[0:8], uint64(f.VirtualSize))
	binary.BigEndian.PutUint64(meta[8:16], math.Float64bits(f.Entropy))
	if f.Real {
		meta[16] = 1 // an empty real file differs from a zero-size virtual one
	}
	h.Write(meta[:])
	h.Write(f.Data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

func interior(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte("node\x00"))
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is a Merkle tree over a layer's files.
type Tree struct {
	paths  []string
	levels [][]Hash // levels[0] = leaves, last = [root]
}

// BuildLayer constructs the tree for a layer (typically the sealed
// base image, built once at distribution time).
func BuildLayer(layer *unionfs.Layer) *Tree {
	img := layer.Export()
	paths := make([]string, 0, len(img.Files))
	for p := range img.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	leaves := make([]Hash, len(paths))
	for i, p := range paths {
		leaves[i] = leafDigest(p, img.Files[p])
	}
	return build(paths, leaves)
}

func build(paths []string, leaves []Hash) *Tree {
	if len(leaves) == 0 {
		leaves = []Hash{sha256.Sum256([]byte("empty"))}
	}
	t := &Tree{paths: paths, levels: [][]Hash{leaves}}
	for len(t.levels[len(t.levels)-1]) > 1 {
		prev := t.levels[len(t.levels)-1]
		var next []Hash
		for i := 0; i < len(prev); i += 2 {
			if i+1 < len(prev) {
				next = append(next, interior(prev[i], prev[i+1]))
			} else {
				next = append(next, prev[i]) // odd node promoted
			}
		}
		t.levels = append(t.levels, next)
	}
	return t
}

// BuildHashes constructs a tree over precomputed leaf digests, in
// order. It serves consumers whose leaves are not union-fs files —
// internal/vault uses it to commit to a checkpoint's chunk list, so a
// restore can verify every fetched chunk against the manifest root the
// same way section 3.4 checks disk blocks against a well-known tree.
func BuildHashes(leaves []Hash) *Tree {
	return build(nil, append([]Hash(nil), leaves...))
}

// Root returns the well-known root hash.
func (t *Tree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// ProofStep is one audit-path element.
type ProofStep struct {
	Sibling Hash
	// Left is true when the sibling sits to the left of the running
	// hash.
	Left bool
}

// Proof returns the membership proof for the i-th leaf.
func (t *Tree) Proof(i int) ([]ProofStep, error) {
	if i < 0 || i >= len(t.levels[0]) {
		return nil, fmt.Errorf("merkle: leaf %d out of range", i)
	}
	var proof []ProofStep
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		if idx%2 == 0 {
			if idx+1 < len(level) {
				proof = append(proof, ProofStep{Sibling: level[idx+1], Left: false})
			}
			// Odd promoted node contributes no step.
		} else {
			proof = append(proof, ProofStep{Sibling: level[idx-1], Left: true})
		}
		idx /= 2
	}
	return proof, nil
}

// PathIndex returns the leaf index of a file path, or -1.
func (t *Tree) PathIndex(path string) int {
	i := sort.SearchStrings(t.paths, path)
	if i < len(t.paths) && t.paths[i] == path {
		return i
	}
	return -1
}

// VerifyProof checks a leaf digest against a root via its audit path.
func VerifyProof(root Hash, leaf Hash, proof []ProofStep) bool {
	h := leaf
	for _, step := range proof {
		if step.Left {
			h = interior(step.Sibling, h)
		} else {
			h = interior(h, step.Sibling)
		}
	}
	return h == root
}

// VerifyFile checks one file of a layer against the well-known tree —
// the per-access check the paper describes.
func (t *Tree) VerifyFile(layer *unionfs.Layer, path string) error {
	i := t.PathIndex(path)
	if i < 0 {
		return fmt.Errorf("%w: unexpected file %q", ErrTampered, path)
	}
	img := layer.Export()
	f, ok := img.Files[path]
	if !ok {
		return fmt.Errorf("%w: file %q missing", ErrTampered, path)
	}
	proof, err := t.Proof(i)
	if err != nil {
		return err
	}
	if !VerifyProof(t.Root(), leafDigest(path, f), proof) {
		return fmt.Errorf("%w: %q", ErrTampered, path)
	}
	return nil
}

// VerifyLayer recomputes a layer's root and compares it to the
// well-known root — the whole-partition check run before VMs boot.
func VerifyLayer(layer *unionfs.Layer, wellKnown Hash) error {
	if BuildLayer(layer).Root() != wellKnown {
		return ErrTampered
	}
	return nil
}
