// Package workload implements the paper's evaluation workloads: the
// Peacekeeper JavaScript CPU benchmark (Figure 4), the Linux-kernel
// bulk download (Figure 5), and the scripted browsing sessions behind
// Figures 3 and 6.
package workload

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/browser"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/vm"
)

// Peacekeeper calibration: a native run completes the suite's work in
// peacekeeperWork core-seconds and scores scoreConstant/duration, so a
// native single instance scores 3000 and a single vCPU at 80%
// efficiency scores 2400 — the ~20% virtualization overhead Figure 4
// reports.
const (
	peacekeeperWork = 30.0
	scoreConstant   = 90000.0
	// PeacekeeperMinRAM models the paper's observation that "certain
	// experiments with Peacekeeper consume too much memory causing
	// Chrome to crash", which forced the AnonVM RAM up to ~1 GB.
	PeacekeeperMinRAM = 768 << 20
)

// ErrBrowserCrash is returned when Peacekeeper runs in a VM with too
// little RAM.
var ErrBrowserCrash = errors.New("workload: Chrome crashed (insufficient AnonVM RAM for Peacekeeper)")

// RunPeacekeeperNative runs the benchmark directly on the host (the
// x=0 point of Figure 4) and returns the score.
func RunPeacekeeperNative(p *sim.Proc, host *hypervisor.Host) float64 {
	fut := host.SubmitNativeTask("peacekeeper-native", peacekeeperWork)
	res, _ := sim.Await(p, fut)
	return scoreConstant / res.Duration().Seconds()
}

// StartPeacekeeperVM launches the benchmark inside an AnonVM and
// returns a future scoring it on completion. Launch all contenders
// before awaiting so they truly contend for the chip.
func StartPeacekeeperVM(host *hypervisor.Host, v *vm.VM) (*sim.Future[float64], error) {
	if v.Config().RAMBytes < PeacekeeperMinRAM {
		return nil, fmt.Errorf("%w: %d MiB", ErrBrowserCrash, v.Config().RAMBytes>>20)
	}
	if v.State() != vm.StateRunning {
		return nil, fmt.Errorf("workload: VM %s not running", v.Name())
	}
	out := sim.NewFuture[float64](host.Engine())
	fut := host.SubmitVMTask("peacekeeper-"+v.Name(), peacekeeperWork)
	fut.OnDone(func() {
		res, err := fut.Value()
		if err != nil {
			out.Complete(0, err)
			return
		}
		out.Complete(scoreConstant/res.Duration().Seconds(), nil)
	})
	return out, nil
}

// KernelBytes is the size of linux-3.14.2.tar.xz, the Figure 5
// download object.
const KernelBytes = 77 << 20

// KernelHost is the DeterLab-resident file server.
const KernelHost = "kernel.deterlab.net"

// DownloadKernel pulls the kernel tarball through the nym's browser
// and anonymizer, returning the elapsed download time.
func DownloadKernel(p *sim.Proc, b *browser.Browser) (time.Duration, error) {
	res, err := b.Download(p, KernelHost, KernelBytes)
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// Figure3Sites is the visit order of the memory experiment: "We
// accessed the following websites in order: Gmail, Twitter, Youtube,
// Tor Blog, BBC, Facebook, Slashdot, and ESPN" (section 5.2).
var Figure3Sites = []string{
	"gmail.com", "twitter.com", "youtube.com", "blog.torproject.org",
	"bbc.co.uk", "facebook.com", "slashdot.org", "espn.com",
}

// VisitAndMaybeLogin visits host; if the site requires login, it signs
// in with a per-nym pseudonymous account.
func VisitAndMaybeLogin(p *sim.Proc, b *browser.Browser, requiresLogin bool, host, account string) error {
	if requiresLogin {
		if _, err := b.Login(p, host, account, "pw-"+account); err != nil {
			return err
		}
		return nil
	}
	_, err := b.Visit(p, host)
	return err
}
