package workload

import (
	"errors"
	"math"
	"testing"

	"nymix/internal/anonnet/tor"
	"nymix/internal/browser"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/vm"
	"nymix/internal/webworld"
)

type rig struct {
	eng   *sim.Engine
	world *webworld.World
	host  *hypervisor.Host
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(61)
	net, world := webworld.BuildDefault(eng)
	host, err := hypervisor.New(eng, net, hypervisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	host.ConnectUplink(world.Gateway(), webworld.UplinkConfig)
	return &rig{eng: eng, world: world, host: host}
}

func (r *rig) nymbox(t *testing.T, id string, anonRAM int64) (*vm.VM, *browser.Browser) {
	t.Helper()
	anon, err := r.host.LaunchVM(vm.Config{
		Name: "anon-" + id, Role: guestos.RoleAnonVM,
		RAMBytes: anonRAM, DiskBytes: 128 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := r.host.LaunchVM(vm.Config{
		Name: "comm-" + id, Role: guestos.RoleCommVM,
		RAMBytes: 128 * guestos.MiB, DiskBytes: 16 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.WireNymbox(anon, comm); err != nil {
		t.Fatal(err)
	}
	tc := tor.New(r.host.Net(), comm.Name(), r.world.Relays(), r.world.Resolver())
	r.eng.Go("setup-"+id, func(p *sim.Proc) {
		anon.Boot(p)
		comm.Boot(p)
		tc.Start(p)
	})
	r.eng.Run()
	return anon, browser.New(r.world, r.host.Net(), anon, comm.Name(), tc, browser.Config{})
}

func TestPeacekeeperNativeScore(t *testing.T) {
	r := newRig(t)
	var score float64
	r.eng.Go("pk", func(p *sim.Proc) { score = RunPeacekeeperNative(p, r.host) })
	r.eng.Run()
	if math.Abs(score-3000) > 1 {
		t.Fatalf("native score = %v, want 3000", score)
	}
}

func TestPeacekeeperVMScoreHasOverhead(t *testing.T) {
	r := newRig(t)
	anon, _ := r.nymbox(t, "0", PeacekeeperMinRAM)
	var score float64
	fut, err := StartPeacekeeperVM(r.host, anon)
	if err != nil {
		t.Fatal(err)
	}
	fut.OnDone(func() { score, _ = fut.Value() })
	r.eng.Run()
	if math.Abs(score-2400) > 1 {
		t.Fatalf("vm score = %v, want 2400 (20%% under native)", score)
	}
}

func TestPeacekeeperCrashesOnSmallVM(t *testing.T) {
	r := newRig(t)
	anon, _ := r.nymbox(t, "small", 384*guestos.MiB)
	if _, err := StartPeacekeeperVM(r.host, anon); !errors.Is(err, ErrBrowserCrash) {
		t.Fatalf("err = %v, want ErrBrowserCrash", err)
	}
}

func TestPeacekeeperRequiresRunningVM(t *testing.T) {
	r := newRig(t)
	anon, err := r.host.LaunchVM(vm.Config{
		Name: "cold", Role: guestos.RoleAnonVM, RAMBytes: PeacekeeperMinRAM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartPeacekeeperVM(r.host, anon); err == nil {
		t.Fatal("benchmark ran on an unbooted VM")
	}
}

func TestDownloadKernelTiming(t *testing.T) {
	r := newRig(t)
	_, b := r.nymbox(t, "dl", 384*guestos.MiB)
	var dur float64
	r.eng.Go("dl", func(p *sim.Proc) {
		d, err := DownloadKernel(p, b)
		if err != nil {
			t.Errorf("download: %v", err)
		}
		dur = d.Seconds()
	})
	r.eng.Run()
	// 77 MiB * ~1.12 over 1.25 MB/s is ~72s; allow for circuit setup.
	if dur < 65 || dur > 90 {
		t.Fatalf("kernel download took %.1fs", dur)
	}
}

func TestFigure3SitesOrder(t *testing.T) {
	want := []string{"gmail.com", "twitter.com", "youtube.com", "blog.torproject.org",
		"bbc.co.uk", "facebook.com", "slashdot.org", "espn.com"}
	if len(Figure3Sites) != len(want) {
		t.Fatalf("sites = %v", Figure3Sites)
	}
	for i := range want {
		if Figure3Sites[i] != want[i] {
			t.Fatalf("site %d = %q, want %q (paper's visit order)", i, Figure3Sites[i], want[i])
		}
	}
}

func TestVisitAndMaybeLogin(t *testing.T) {
	r := newRig(t)
	_, b := r.nymbox(t, "v", 384*guestos.MiB)
	r.eng.Go("v", func(p *sim.Proc) {
		if err := VisitAndMaybeLogin(p, b, true, "twitter.com", "acct-1"); err != nil {
			t.Errorf("login visit: %v", err)
		}
		if err := VisitAndMaybeLogin(p, b, false, "bbc.co.uk", "acct-1"); err != nil {
			t.Errorf("plain visit: %v", err)
		}
	})
	r.eng.Run()
	tw := r.world.Site("twitter.com").Visits()
	if len(tw) != 1 || tw[0].Account != "acct-1" || tw[0].Action != "login" {
		t.Fatalf("twitter visits = %+v", tw)
	}
	bbc := r.world.Site("bbc.co.uk").Visits()
	if len(bbc) != 1 || bbc[0].Account != "" {
		t.Fatalf("bbc visits = %+v", bbc)
	}
}
