package hypervisor

import (
	"testing"
	"time"

	"nymix/internal/guestos"
	"nymix/internal/sim"
	"nymix/internal/vm"
	"nymix/internal/vnet"
)

// testRig builds a host with an uplink to a small internet: gateway ->
// internet router -> site, plus an intranet host hanging off the
// gateway.
type testRig struct {
	eng  *sim.Engine
	net  *vnet.Network
	host *Host
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	eng := sim.NewEngine(1)
	net := vnet.New(eng)
	host, err := New(eng, net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gw := net.AddNode("gateway").SetForwarding(true)
	inet := net.AddNode("internet").SetForwarding(true)
	net.AddNode("site")
	net.AddNode("intranet-host").AddTag(LANTag)
	net.Connect(gw, inet, vnet.LinkConfig{Latency: 5 * time.Millisecond, Capacity: 100e6})
	net.Connect(net.Node("internet"), net.Node("site"), vnet.LinkConfig{Latency: time.Millisecond, Capacity: 100e6})
	net.Connect(gw, net.Node("intranet-host"), vnet.LinkConfig{Latency: time.Millisecond, Capacity: 100e6})
	host.ConnectUplink(gw, vnet.LinkConfig{Latency: 5 * time.Millisecond, Capacity: 10e6 / 8})
	return &testRig{eng: eng, net: net, host: host}
}

func (r *testRig) launchNymbox(t *testing.T, id string) (*vm.VM, *vm.VM) {
	t.Helper()
	anon, err := r.host.LaunchVM(vm.Config{
		Name: "anon-" + id, Role: guestos.RoleAnonVM,
		RAMBytes: 384 * guestos.MiB, DiskBytes: 128 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := r.host.LaunchVM(vm.Config{
		Name: "comm-" + id, Role: guestos.RoleCommVM,
		RAMBytes: 128 * guestos.MiB, DiskBytes: 16 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.WireNymbox(anon, comm); err != nil {
		t.Fatal(err)
	}
	return anon, comm
}

func TestHostBaselineFootprint(t *testing.T) {
	r := newRig(t)
	used := r.host.Mem().UsedBytes()
	if used < 500*guestos.MiB || used > 900*guestos.MiB {
		t.Fatalf("host baseline = %d MiB, want a plausible Ubuntu footprint", used/guestos.MiB)
	}
}

func TestIsolationMatrix(t *testing.T) {
	// The section 5.1 validation: "The AnonVM can only communicate with
	// a functional CommVM and the CommVM could only communicate with
	// the Internet not local intranets."
	r := newRig(t)
	r.launchNymbox(t, "0")
	r.launchNymbox(t, "1")

	cases := []struct {
		src, dst string
		want     bool
	}{
		{"anon-0", "comm-0", true},  // own CommVM: the virtual wire
		{"anon-0", "anon-1", false}, // other AnonVM
		{"anon-0", "comm-1", false}, // other CommVM
		{"anon-0", "host", false},   // hypervisor
		{"anon-0", "site", false},   // direct Internet escape
		{"anon-0", "intranet-host", false},
		{"comm-0", "site", true}, // Internet via NAT
		{"comm-0", "intranet-host", false},
		{"comm-0", "comm-1", false},
		{"comm-0", "anon-1", false},
		{"comm-0", "host", true}, // its NAT gateway (the host itself)
	}
	for _, c := range cases {
		if got := r.net.CanReach(c.src, c.dst, "tcp"); got != c.want {
			t.Errorf("CanReach(%s -> %s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestUplinkCaptureShowsOnlyNATSource(t *testing.T) {
	r := newRig(t)
	_, comm := r.launchNymbox(t, "0")
	cap := r.host.Uplink().Tap()
	fut := r.net.StartTransfer(vnet.TransferOpts{
		From: comm.Name(), To: "site", Bytes: 1000, Proto: "tor",
	})
	r.eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatal(err)
	}
	if len(cap.Entries) != 1 {
		t.Fatalf("capture = %d entries", len(cap.Entries))
	}
	if cap.Entries[0].ObservedSrc != "host" {
		t.Fatalf("uplink saw src %q, want masqueraded host", cap.Entries[0].ObservedSrc)
	}
}

func TestDHCPBeacon(t *testing.T) {
	r := newRig(t)
	cap := r.host.Uplink().Tap()
	fut := r.host.EmitDHCP()
	r.eng.Run()
	if _, err := fut.Value(); err != nil {
		t.Fatal(err)
	}
	if protos := cap.Protos(); len(protos) != 1 || protos[0] != "dhcp" {
		t.Fatalf("protos = %v", protos)
	}
}

func TestDestroyVMDropsLinksAndMemory(t *testing.T) {
	r := newRig(t)
	anon, comm := r.launchNymbox(t, "0")
	r.eng.Go("life", func(p *sim.Proc) {
		if err := anon.Boot(p); err != nil {
			t.Errorf("boot anon: %v", err)
		}
		if err := comm.Boot(p); err != nil {
			t.Errorf("boot comm: %v", err)
		}
		if err := r.host.DestroyVM(p, anon); err != nil {
			t.Errorf("destroy anon: %v", err)
		}
		if err := r.host.DestroyVM(p, comm); err != nil {
			t.Errorf("destroy comm: %v", err)
		}
	})
	r.eng.Run()
	if r.host.VMCount() != 0 {
		t.Fatalf("vm count = %d", r.host.VMCount())
	}
	if r.net.CanReach("anon-0", "comm-0", "tcp") {
		t.Fatal("virtual wire survived destruction")
	}
	// Only the hypervisor's own baseline remains.
	used := r.host.Mem().UsedBytes()
	if used > 900*guestos.MiB {
		t.Fatalf("memory not reclaimed: %d MiB", used/guestos.MiB)
	}
}

func TestVirtFSMoveFile(t *testing.T) {
	r := newRig(t)
	sani, err := r.host.LaunchVM(vm.Config{
		Name: "sanivm", Role: guestos.RoleSaniVM,
		RAMBytes: 256 * guestos.MiB, DiskBytes: 64 * guestos.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sani.Node() != nil {
		t.Fatal("SaniVM must be non-networked")
	}
	anon, _ := r.launchNymbox(t, "0")
	if err := sani.Disk().WriteFile("/outbox/photo.jpg", []byte("scrubbed-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := r.host.MoveFile(sani, "/outbox/photo.jpg", anon, "/media/inbox/photo.jpg"); err != nil {
		t.Fatal(err)
	}
	got, err := anon.Disk().FS().ReadFile("/media/inbox/photo.jpg")
	if err != nil || string(got) != "scrubbed-bytes" {
		t.Fatalf("moved file = %q, %v", got, err)
	}
}

func TestDuplicateVMRejected(t *testing.T) {
	r := newRig(t)
	r.launchNymbox(t, "0")
	_, err := r.host.LaunchVM(vm.Config{Name: "anon-0", Role: guestos.RoleAnonVM, RAMBytes: guestos.MiB})
	if err == nil {
		t.Fatal("duplicate VM accepted")
	}
}

func TestWireNymboxValidatesRoles(t *testing.T) {
	r := newRig(t)
	anon, comm := r.launchNymbox(t, "0")
	if err := r.host.WireNymbox(comm, anon); err == nil {
		t.Fatal("role-swapped wiring accepted")
	}
}

func TestCPUTaskEfficiency(t *testing.T) {
	r := newRig(t)
	nat := r.host.SubmitNativeTask("native", 10)
	r.eng.Run()
	rn, _ := nat.Value()
	vmf := r.host.SubmitVMTask("invm", 10)
	r.eng.Run()
	rv, _ := vmf.Value()
	ratio := rv.Duration().Seconds() / rn.Duration().Seconds()
	if ratio < 1.2 || ratio > 1.3 {
		t.Fatalf("vm/native duration ratio = %.3f, want ~1.25 (20%% overhead)", ratio)
	}
}

func TestMemStatsScansBeforeReporting(t *testing.T) {
	r := newRig(t)
	a, c := r.launchNymbox(t, "0")
	r.eng.Go("boot", func(p *sim.Proc) {
		a.Boot(p)
		c.Boot(p)
	})
	r.eng.Run()
	st := r.host.MemStats()
	if st.PendingScan != 0 {
		t.Fatalf("pending scan = %d after MemStats", st.PendingScan)
	}
	if st.PagesSharing == 0 {
		t.Fatal("no sharing after booting a nymbox next to the hypervisor")
	}
}
