// Package hypervisor models the Nymix host: the machine booted from
// the Nymix USB drive, running Ubuntu 14.04 with QEMU/KVM. The
// hypervisor owns host RAM (from which all VM RAM and RAM-backed
// disks are allocated), the physical CPU, the host's single NAT'd
// uplink, KSM, and the VirtFS shared folders used to move sanitized
// files between VMs.
//
// Isolation is structural, mirroring section 4.2: each AnonVM has
// exactly one link — a host-only virtual wire to its CommVM — and each
// CommVM reaches the Internet only through the host's masquerading
// uplink. The host forwards exclusively between CommVM wires and the
// uplink, so no VM can reach another nymbox's VMs, the hypervisor, or
// the local intranet.
package hypervisor

import (
	"errors"
	"fmt"
	"time"

	"nymix/internal/cpusched"
	"nymix/internal/guestos"
	"nymix/internal/mem"
	"nymix/internal/merkle"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vm"
	"nymix/internal/vnet"
)

// VirtualizationEfficiency is the fraction of native CPU speed a vCPU
// achieves (Figure 4 measures ~20% overhead).
const VirtualizationEfficiency = 0.8

// Config sizes the host.
type Config struct {
	RAMBytes int64           // physical memory (paper testbed: 16 GiB)
	CPU      cpusched.Config // chip model
	// Name is the host's network identity. The default ("host")
	// matches the paper's single-machine deployment; a cluster of
	// simulated hosts on one network gives each a distinct name.
	Name string
}

// DefaultConfig is the paper's evaluation desktop: an Intel i7 quad
// core with 16 GB of RAM.
func DefaultConfig() Config {
	return Config{RAMBytes: 16 << 30, CPU: cpusched.DefaultConfig()}
}

// Host is the Nymix machine.
type Host struct {
	eng       *sim.Engine
	cfg       Config
	mem       *mem.Host
	cpu       *cpusched.Host
	net       *vnet.Network
	node      *vnet.Node
	uplink    *vnet.Link
	baseImage *unionfs.Layer
	baseRoot  merkle.Hash // well-known root stamped at distribution time
	hostSpace *mem.Space
	vms       map[string]*vm.VM
	commLinks map[*vnet.Link]bool
	wires     map[string]*vnet.Link // AnonVM name -> virtual wire
}

// hypervisor baseline footprint: the host Ubuntu system itself.
const (
	hostSharedPages = 9000   // base-image pages resident in the host (~35 MiB)
	hostZeroPages   = 4096   // ~16 MiB
	hostUniquePages = 170000 // ~665 MiB of host-private state
)

// New boots a Nymix host on the engine and network. The base image is
// built once and shared — it is the very partition the host booted
// from, reused read-only as every VM's bottom layer (section 3.4).
func New(eng *sim.Engine, net *vnet.Network, cfg Config) (*Host, error) {
	if cfg.Name == "" {
		cfg.Name = "host"
	}
	h := &Host{
		eng:       eng,
		cfg:       cfg,
		mem:       mem.NewHost(cfg.RAMBytes),
		cpu:       cpusched.NewHost(eng, cfg.CPU),
		net:       net,
		baseImage: guestos.BuildBaseImage(),
		vms:       make(map[string]*vm.VM),
		commLinks: make(map[*vnet.Link]bool),
		wires:     make(map[string]*vnet.Link),
	}
	h.baseRoot = merkle.BuildLayer(h.baseImage).Root()
	h.node = net.AddNode(cfg.Name)
	space, err := h.mem.NewSpace("hypervisor")
	if err != nil {
		return nil, err
	}
	h.hostSpace = space
	if err := space.WriteClass(0, hostSharedPages, "baseimg", 0); err != nil {
		return nil, err
	}
	if err := space.WriteZero(hostSharedPages, hostZeroPages); err != nil {
		return nil, err
	}
	if err := space.WriteUnique(hostSharedPages+hostZeroPages, hostUniquePages); err != nil {
		return nil, err
	}
	h.node.SetPolicy(h.forward).SetMasquerade(true)
	return h, nil
}

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Mem returns the host memory manager.
func (h *Host) Mem() *mem.Host { return h.mem }

// CPU returns the host CPU scheduler.
func (h *Host) CPU() *cpusched.Host { return h.cpu }

// Net returns the network the host lives on.
func (h *Host) Net() *vnet.Network { return h.net }

// Node returns the host's network identity.
func (h *Host) Node() *vnet.Node { return h.node }

// BaseImage returns the sealed shared base image.
func (h *Host) BaseImage() *unionfs.Layer { return h.baseImage }

// BaseImageRoot returns the well-known Merkle root of the host OS
// partition, stamped when the Nymix image was built.
func (h *Host) BaseImageRoot() merkle.Hash { return h.baseRoot }

// VerifyBaseImage checks the host partition against the well-known
// Merkle root (the section 3.4 integrity mechanism). Nymix refuses to
// launch VMs from a modified partition, since "those modifications,
// however minute... would manifest in the initial states of all
// AnonVMs subsequently created, potentially offering adversaries a way
// to track the user".
func (h *Host) VerifyBaseImage() error {
	return merkle.VerifyLayer(h.baseImage, h.baseRoot)
}

// ReplaceBaseImage models the USB partition having been modified
// while plugged into another machine: the next boot reads the
// attacker's layer. Verification is expected to catch it.
func (h *Host) ReplaceBaseImage(tampered *unionfs.Layer) { h.baseImage = tampered }

// VM returns a VM by name, or nil.
func (h *Host) VM(name string) *vm.VM { return h.vms[name] }

// VMCount returns the number of live (not destroyed) VMs.
func (h *Host) VMCount() int { return len(h.vms) }

// LANTag marks intranet nodes. The host's NAT firewall refuses to
// forward CommVM traffic to destinations carrying it, implementing
// "the CommVM could only communicate with the Internet not local
// intranets" (section 5.1) by filtering private address ranges.
const LANTag = "lan"

// forward is the host's forwarding policy: CommVM wire <-> uplink
// only, and never toward the local intranet. Everything else — VM to
// VM, VM to hypervisor, intranet to VM — is silently dropped.
func (h *Host) forward(in, out *vnet.Iface, proto string, dst *vnet.Node) bool {
	if in == nil || out == nil || h.uplink == nil {
		return false
	}
	if dst != nil && dst.HasTag(LANTag) {
		return false
	}
	if h.commLinks[in.Link()] && out.Link() == h.uplink {
		return true
	}
	if in.Link() == h.uplink && h.commLinks[out.Link()] {
		return true
	}
	return false
}

// ConnectUplink joins the host to its gateway (the physical NIC). The
// paper's evaluation rate-limits this path to 10 Mbit/s.
func (h *Host) ConnectUplink(gateway *vnet.Node, cfg vnet.LinkConfig) *vnet.Link {
	h.uplink = h.net.Connect(h.node, gateway, cfg)
	return h.uplink
}

// Uplink returns the host's uplink link (nil before ConnectUplink).
func (h *Host) Uplink() *vnet.Link { return h.uplink }

// EmitDHCP sends one DHCP renewal toward the gateway — the only
// traffic an idle Nymix host originates (section 5.1 validation).
func (h *Host) EmitDHCP() *sim.Future[vnet.Result] {
	gw, _ := h.uplink.Endpoints()
	if gw == h.node {
		_, gw = h.uplink.Endpoints()
	}
	return h.net.StartTransfer(vnet.TransferOpts{
		From: h.node.Name(), To: gw.Name(),
		Bytes: 590, Proto: "dhcp", NoHandshake: true,
	})
}

// LaunchVM creates a VM of the given role with the standard layer
// stack (role config over the shared base image) and a network node.
// The SaniVM is deliberately not given a node: it is non-networked by
// construction.
func (h *Host) LaunchVM(cfg vm.Config) (*vm.VM, error) {
	if _, exists := h.vms[cfg.Name]; exists {
		return nil, fmt.Errorf("hypervisor: VM %q already exists", cfg.Name)
	}
	conf := guestos.ConfigLayer(cfg.Role, cfg.Anonymizer)
	v, err := vm.New(h.eng, h.mem, cfg, conf, h.baseImage)
	if err != nil {
		return nil, err
	}
	if cfg.Role != guestos.RoleSaniVM {
		// VM nodes live in the host's region: a region sever cuts the
		// host's guests off along with the host itself.
		v.AttachNode(h.net.AddNode(cfg.Name).SetRegion(h.node.Region()))
	}
	h.vms[cfg.Name] = v
	return v, nil
}

// wire parameters: the AnonVM-CommVM UDP "virtual wire" lives entirely
// in hypervisor memory, and the CommVM-host leg is KVM user-mode NAT.
var (
	wireCfg     = vnet.LinkConfig{Latency: 200 * time.Microsecond, Capacity: 500e6}
	natLegCfg   = vnet.LinkConfig{Latency: 150 * time.Microsecond, Capacity: 500e6}
	errNotAnon  = errors.New("hypervisor: first VM must be an AnonVM")
	errNotComm  = errors.New("hypervisor: second VM must be a CommVM")
	errNoUplink = errors.New("hypervisor: uplink not connected")
)

// WireNymbox connects an AnonVM to its CommVM with the private virtual
// wire and gives the CommVM its NAT leg to the host. This is the
// entire network fabric a nymbox gets.
func (h *Host) WireNymbox(anon, comm *vm.VM) error {
	if anon.Role() != guestos.RoleAnonVM {
		return errNotAnon
	}
	if comm.Role() != guestos.RoleCommVM {
		return errNotComm
	}
	if h.uplink == nil {
		return errNoUplink
	}
	wire := h.net.Connect(anon.Node(), comm.Node(), wireCfg)
	natLeg := h.net.Connect(comm.Node(), h.node, natLegCfg)
	h.commLinks[natLeg] = true
	h.wires[anon.Name()] = wire
	return nil
}

// DestroyVM shuts the VM down (securely erasing its memory), tears
// down its links, and forgets it.
func (h *Host) DestroyVM(p *sim.Proc, v *vm.VM) error {
	if _, ok := h.vms[v.Name()]; !ok {
		return fmt.Errorf("hypervisor: unknown VM %q", v.Name())
	}
	if v.State() != vm.StateStopped {
		if err := v.Shutdown(p); err != nil {
			return err
		}
	}
	if n := v.Node(); n != nil {
		for _, l := range allLinks(n) {
			l.SetDown(h.net, true)
			delete(h.commLinks, l)
		}
	}
	delete(h.wires, v.Name())
	delete(h.vms, v.Name())
	return nil
}

// allLinks lists a node's links.
func allLinks(n *vnet.Node) []*vnet.Link {
	var out []*vnet.Link
	seen := map[*vnet.Link]bool{}
	for _, ifc := range n.Ifaces() {
		if !seen[ifc.Link()] {
			seen[ifc.Link()] = true
			out = append(out, ifc.Link())
		}
	}
	return out
}

// MoveFile copies a file between two VMs' disks through hypervisor
// shared folders (VirtFS): "the SaniVM moves it into a shared folder
// with the hypervisor. The hypervisor, then in turn, moves it into a
// shared folder with the specific AnonVM" (section 4.3).
func (h *Host) MoveFile(from *vm.VM, fromPath string, to *vm.VM, toPath string) error {
	data, err := from.Disk().FS().ReadFile(fromPath)
	if err != nil {
		return fmt.Errorf("hypervisor: virtfs read: %w", err)
	}
	if err := to.Disk().WriteFile(toPath, data); err != nil {
		return fmt.Errorf("hypervisor: virtfs write: %w", err)
	}
	return nil
}

// KSMScan runs one bounded KSM pass (budget pages; negative drains).
func (h *Host) KSMScan(budget int) int { return h.mem.Scan(budget) }

// MemStats returns the host memory snapshot after letting KSM catch
// up, which is how the Figure 3 measurements are taken.
func (h *Host) MemStats() mem.Stats {
	h.mem.ScanAll()
	return h.mem.Stats()
}

// SubmitVMTask runs CPU work on behalf of a VM at virtualized
// efficiency.
func (h *Host) SubmitVMTask(name string, work float64) *sim.Future[cpusched.TaskResult] {
	return h.cpu.Submit(name, work, VirtualizationEfficiency)
}

// SubmitNativeTask runs CPU work natively on the host.
func (h *Host) SubmitNativeTask(name string, work float64) *sim.Future[cpusched.TaskResult] {
	return h.cpu.Submit(name, work, 1.0)
}
