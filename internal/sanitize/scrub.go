package sanitize

import (
	"fmt"
	"strings"
)

// Severity grades a detected risk.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// Risk is one finding from the automated analysis the SaniVM presents
// to the user before a transfer (section 3.6: "attempt to identify
// potential risks such as hidden metadata or visible faces in photos,
// present the user a list of these files and potential risks").
type Risk struct {
	Severity Severity
	Code     string // stable identifier, e.g. "exif-gps"
	Detail   string
}

func (r Risk) String() string {
	return fmt.Sprintf("[%s] %s: %s", r.Severity, r.Code, r.Detail)
}

// Analyze inspects a file and reports every identifying risk found.
func Analyze(name string, data []byte) []Risk {
	var risks []Risk
	switch {
	case IsJPEG(data):
		meta, _, err := ParseJPEG(data)
		if err != nil {
			return []Risk{{Warning, "jpeg-malformed", err.Error()}}
		}
		if meta.GPSLat != "" || meta.GPSLon != "" {
			risks = append(risks, Risk{Critical, "exif-gps",
				fmt.Sprintf("GPS coordinates %s/%s reveal where the photo was taken", meta.GPSLat, meta.GPSLon)})
		}
		if meta.Serial != "" {
			risks = append(risks, Risk{Critical, "exif-serial",
				"camera body serial number " + meta.Serial + " links this photo to the device owner"})
		}
		if meta.Make != "" || meta.Model != "" {
			risks = append(risks, Risk{Warning, "exif-device",
				fmt.Sprintf("camera make/model %q %q narrows the device population", meta.Make, meta.Model)})
		}
		if meta.Software != "" {
			risks = append(risks, Risk{Info, "exif-software", "editing software " + meta.Software})
		}
	case IsPNG(data):
		meta, err := PNGTextMeta(data)
		if err != nil {
			return []Risk{{Warning, "png-malformed", err.Error()}}
		}
		for k, v := range meta {
			sev := Warning
			if strings.EqualFold(k, "author") || strings.EqualFold(k, "location") {
				sev = Critical
			}
			risks = append(risks, Risk{sev, "png-text", fmt.Sprintf("text chunk %s=%q", k, v)})
		}
	case IsDOCX(data):
		meta, err := ParseDOCXMeta(data)
		if err != nil {
			return []Risk{{Warning, "docx-malformed", err.Error()}}
		}
		if meta.Creator != "" {
			risks = append(risks, Risk{Critical, "docx-creator", "document creator " + meta.Creator})
		}
		if meta.LastModifiedBy != "" {
			risks = append(risks, Risk{Warning, "docx-modifier", "last modified by " + meta.LastModifiedBy})
		}
	case IsPDF(data):
		meta, err := ParsePDFMeta(data)
		if err != nil {
			return []Risk{{Warning, "pdf-malformed", err.Error()}}
		}
		if meta.Author != "" {
			risks = append(risks, Risk{Critical, "pdf-author", "PDF author " + meta.Author})
		}
		if meta.Creator != "" {
			risks = append(risks, Risk{Warning, "pdf-creator", "producing application " + meta.Creator})
		}
		if hidden := PDFHiddenText(data); len(hidden) > 0 {
			risks = append(risks, Risk{Critical, "pdf-hidden-text",
				fmt.Sprintf("%d invisible text object(s); metadata stripping cannot remove them", len(hidden))})
		}
	case IsSIMG(data):
		faces, err := DetectFaces(data)
		if err != nil {
			return []Risk{{Warning, "image-malformed", err.Error()}}
		}
		if len(faces) > 0 {
			risks = append(risks, Risk{Critical, "image-faces",
				fmt.Sprintf("%d detectable face(s)", len(faces))})
		}
		if wm, _ := HasWatermark(data); wm {
			risks = append(risks, Risk{Warning, "image-watermark",
				"embedded watermark signal may identify the source device or purchaser"})
		}
	default:
		risks = append(risks, Risk{Info, "unknown-format",
			fmt.Sprintf("no analyzer for %q; scrubbers cannot inspect it", name)})
	}
	return risks
}

// Options selects scrubbing transformations — the user's "paranoia
// level" (section 3.6).
type Options struct {
	StripMetadata     bool // (a) scrub EXIF/text/core metadata
	BlurFaces         bool // (b) blur detectable faces
	DisruptWatermarks bool // (c) reduce resolution + noise
	Rasterize         bool // documents: rebuild as page bitmaps
}

// AllOptions is the maximum-paranoia setting.
var AllOptions = Options{StripMetadata: true, BlurFaces: true, DisruptWatermarks: true, Rasterize: true}

// Result reports what the scrubber did.
type Result struct {
	Data     []byte
	Applied  []string // transformations performed
	Residual []Risk   // risks remaining after scrubbing
}

// Scrub applies the selected transformations to a file.
func Scrub(name string, data []byte, opts Options) (Result, error) {
	out := append([]byte(nil), data...)
	var applied []string
	var err error
	switch {
	case IsJPEG(out):
		if opts.StripMetadata {
			if out, err = ScrubJPEG(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "jpeg-metadata-strip")
		}
	case IsPNG(out):
		if opts.StripMetadata {
			if out, err = ScrubPNG(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "png-metadata-strip")
		}
	case IsDOCX(out):
		if opts.StripMetadata {
			if out, err = ScrubDOCX(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "docx-metadata-strip")
		}
	case IsPDF(out):
		if opts.Rasterize {
			if out, err = RasterizePDF(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "pdf-rasterize")
		} else if opts.StripMetadata {
			if out, err = ScrubPDFMeta(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "pdf-metadata-strip")
		}
	case IsSIMG(out):
		if opts.BlurFaces {
			if out, err = BlurFaces(out); err != nil {
				return Result{}, err
			}
			applied = append(applied, "face-blur")
		}
		if opts.DisruptWatermarks {
			if out, err = DisruptWatermark(out, 0x2A); err != nil {
				return Result{}, err
			}
			applied = append(applied, "watermark-disrupt")
		}
	}
	residual := Analyze(name, out)
	// Informational findings are not residual risks.
	filtered := residual[:0]
	for _, r := range residual {
		if r.Severity > Info {
			filtered = append(filtered, r)
		}
	}
	return Result{Data: out, Applied: applied, Residual: filtered}, nil
}
