package sanitize

import (
	"bytes"
	"fmt"
	"strings"
)

// PDF handling. The generator emits a small but structurally honest
// PDF: header, numbered objects, an Info dictionary, visible text
// streams, and optionally hidden text (invisible render mode Tr 3) —
// the kind of concealed content rasterization exists to destroy
// (section 3.6: "reconstruct the document completely as a series of
// bitmaps, effectively scrubbing any nonvisual information").

// PDFDoc describes a document to generate.
type PDFDoc struct {
	Author      string
	Creator     string
	Title       string
	VisibleText []string // one string per page
	HiddenText  []string // invisible-layer strings
}

// MakePDF renders the document.
func MakePDF(doc PDFDoc) []byte {
	var out bytes.Buffer
	out.WriteString("%PDF-1.4\n")
	obj := 1
	writeObj := func(body string) int {
		fmt.Fprintf(&out, "%d 0 obj\n%s\nendobj\n", obj, body)
		obj++
		return obj - 1
	}
	if doc.Author != "" || doc.Creator != "" || doc.Title != "" {
		writeObj(fmt.Sprintf("<< /Author (%s) /Creator (%s) /Title (%s) >>",
			doc.Author, doc.Creator, doc.Title))
	}
	for _, text := range doc.VisibleText {
		writeObj(fmt.Sprintf("<< /Length %d >>\nstream\nBT /F1 12 Tf (%s) Tj ET\nendstream", len(text), text))
	}
	for _, text := range doc.HiddenText {
		writeObj(fmt.Sprintf("<< /Length %d >>\nstream\nBT 3 Tr (%s) Tj ET\nendstream", len(text), text))
	}
	out.WriteString("trailer\n<< /Root 1 0 R >>\n%%EOF\n")
	return out.Bytes()
}

// IsPDF sniffs the header.
func IsPDF(data []byte) bool { return bytes.HasPrefix(data, []byte("%PDF-")) }

// pdfField extracts a literal-string field like /Author (...) from the
// Info dictionary.
func pdfField(data []byte, key string) string {
	idx := bytes.Index(data, []byte("/"+key+" ("))
	if idx < 0 {
		return ""
	}
	start := idx + len(key) + 3
	end := bytes.IndexByte(data[start:], ')')
	if end < 0 {
		return ""
	}
	return string(data[start : start+end])
}

// PDFMeta is the identifying metadata of a PDF.
type PDFMeta struct {
	Author  string
	Creator string
	Title   string
}

// ParsePDFMeta extracts Info-dictionary fields.
func ParsePDFMeta(data []byte) (PDFMeta, error) {
	if !IsPDF(data) {
		return PDFMeta{}, ErrFormat
	}
	return PDFMeta{
		Author:  pdfField(data, "Author"),
		Creator: pdfField(data, "Creator"),
		Title:   pdfField(data, "Title"),
	}, nil
}

// PDFVisibleText returns the text drawn with a visible render mode.
func PDFVisibleText(data []byte) []string { return pdfStreams(data, false) }

// PDFHiddenText returns text in invisible render mode (Tr 3) —
// content a viewer never shows but a forensic reader extracts.
func PDFHiddenText(data []byte) []string { return pdfStreams(data, true) }

func pdfStreams(data []byte, hidden bool) []string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		isHidden := strings.Contains(line, "3 Tr")
		if !strings.Contains(line, "Tj") || isHidden != hidden {
			continue
		}
		start := strings.IndexByte(line, '(')
		end := strings.LastIndexByte(line, ')')
		if start >= 0 && end > start {
			out = append(out, line[start+1:end])
		}
	}
	return out
}

// ScrubPDFMeta removes the Info dictionary, preserving all content
// streams (including hidden ones — metadata stripping alone cannot
// remove those; that is what rasterization is for).
func ScrubPDFMeta(data []byte) ([]byte, error) {
	meta, err := ParsePDFMeta(data)
	if err != nil {
		return nil, err
	}
	out := string(data)
	for _, kv := range []struct{ key, val string }{
		{"Author", meta.Author}, {"Creator", meta.Creator}, {"Title", meta.Title},
	} {
		if kv.val != "" {
			out = strings.Replace(out, fmt.Sprintf("/%s (%s)", kv.key, kv.val), fmt.Sprintf("/%s ()", kv.key), 1)
		}
	}
	return []byte(out), nil
}

// RasterizePDF reconstructs the document as page images: visible text
// survives (as rendered bitmaps, represented by image objects tagged
// with the text they show), while metadata, hidden layers, and all
// structural complexity are destroyed.
func RasterizePDF(data []byte) ([]byte, error) {
	if !IsPDF(data) {
		return nil, ErrFormat
	}
	visible := PDFVisibleText(data)
	var out bytes.Buffer
	out.WriteString("%PDF-1.4\n")
	for i, text := range visible {
		// Each page becomes one opaque bitmap. The bitmap "pixels" are a
		// rendering of the visible glyphs only.
		fmt.Fprintf(&out, "%d 0 obj\n<< /Subtype /Image /Width 1024 /Height 768 >>\nstream\nBITMAP:%s\nendstream\nendobj\n", i+1, text)
	}
	out.WriteString("trailer\n<< /Root 1 0 R >>\n%%EOF\n")
	return out.Bytes(), nil
}
