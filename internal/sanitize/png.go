package sanitize

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
)

// PNG chunk handling: real chunk framing with correct CRC-32s, as any
// downstream consumer would verify.

var pngSignature = []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'}

// metadata chunk types stripped by the scrubber.
var pngMetaChunks = map[string]bool{
	"tEXt": true, "zTXt": true, "iTXt": true, "eXIf": true, "tIME": true,
}

type pngChunk struct {
	typ  string
	data []byte
}

func writeChunk(out *bytes.Buffer, c pngChunk) {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(c.data)))
	out.Write(lenBuf[:])
	out.WriteString(c.typ)
	out.Write(c.data)
	crc := crc32.NewIEEE()
	crc.Write([]byte(c.typ))
	crc.Write(c.data)
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc.Sum32())
	out.Write(crcBuf[:])
}

// MakePNG builds a PNG with the given text metadata (key -> value
// tEXt chunks) around an IDAT payload.
func MakePNG(textMeta map[string]string, idat []byte) []byte {
	var out bytes.Buffer
	out.Write(pngSignature)
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:4], 640)
	binary.BigEndian.PutUint32(ihdr[4:8], 480)
	ihdr[8] = 8 // bit depth
	ihdr[9] = 2 // color type RGB
	writeChunk(&out, pngChunk{"IHDR", ihdr})
	keys := make([]string, 0, len(textMeta))
	for k := range textMeta {
		keys = append(keys, k)
	}
	// Deterministic chunk order.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		data := append(append([]byte(k), 0), []byte(textMeta[k])...)
		writeChunk(&out, pngChunk{"tEXt", data})
	}
	writeChunk(&out, pngChunk{"IDAT", idat})
	writeChunk(&out, pngChunk{"IEND", nil})
	return out.Bytes()
}

// IsPNG sniffs the signature.
func IsPNG(data []byte) bool { return bytes.HasPrefix(data, pngSignature) }

// parsePNG splits a PNG into chunks, verifying CRCs.
func parsePNG(data []byte) ([]pngChunk, error) {
	if !IsPNG(data) {
		return nil, ErrFormat
	}
	var chunks []pngChunk
	i := len(pngSignature)
	for i+12 <= len(data) {
		length := int(binary.BigEndian.Uint32(data[i:]))
		if i+12+length > len(data) {
			return nil, ErrFormat
		}
		typ := string(data[i+4 : i+8])
		body := data[i+8 : i+8+length]
		crc := crc32.NewIEEE()
		crc.Write([]byte(typ))
		crc.Write(body)
		if crc.Sum32() != binary.BigEndian.Uint32(data[i+8+length:]) {
			return nil, ErrFormat
		}
		chunks = append(chunks, pngChunk{typ, body})
		i += 12 + length
		if typ == "IEND" {
			return chunks, nil
		}
	}
	return nil, ErrFormat
}

// PNGTextMeta extracts tEXt metadata.
func PNGTextMeta(data []byte) (map[string]string, error) {
	chunks, err := parsePNG(data)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, c := range chunks {
		if c.typ == "tEXt" {
			if sep := bytes.IndexByte(c.data, 0); sep >= 0 {
				out[string(c.data[:sep])] = string(c.data[sep+1:])
			}
		}
	}
	return out, nil
}

// ScrubPNG drops all metadata chunks, preserving image chunks
// byte-identically (with recomputed framing).
func ScrubPNG(data []byte) ([]byte, error) {
	chunks, err := parsePNG(data)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Write(pngSignature)
	for _, c := range chunks {
		if pngMetaChunks[c.typ] {
			continue
		}
		writeChunk(&out, c)
	}
	return out.Bytes(), nil
}
