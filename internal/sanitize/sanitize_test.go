package sanitize

import (
	"bytes"
	"testing"
	"testing/quick"
)

var bobPhoto = EXIFMeta{
	Make:   "SmartPhoneCo",
	Model:  "SP-7",
	Serial: "SN-0042-TYR",
	GPSLat: "41.2995N",
	GPSLon: "69.2401E",
}

func TestJPEGRoundTrip(t *testing.T) {
	body := []byte("entropy-coded-scan-data-here")
	jpg := MakeJPEG(bobPhoto, body)
	if !IsJPEG(jpg) {
		t.Fatal("not sniffed as JPEG")
	}
	meta, gotBody, err := ParseJPEG(jpg)
	if err != nil {
		t.Fatal(err)
	}
	if meta != bobPhoto {
		t.Fatalf("meta = %v", meta)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatalf("body = %q", gotBody)
	}
}

func TestScrubJPEGRemovesAllMetadataKeepsImage(t *testing.T) {
	body := []byte("pixel-payload")
	jpg := MakeJPEG(bobPhoto, body)
	clean, err := ScrubJPEG(jpg)
	if err != nil {
		t.Fatal(err)
	}
	meta, gotBody, err := ParseJPEG(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.empty() {
		t.Fatalf("metadata survived: %v", meta)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatal("image body damaged")
	}
	if bytes.Contains(clean, []byte("SN-0042-TYR")) || bytes.Contains(clean, []byte("41.2995N")) {
		t.Fatal("identifying strings still present in raw bytes")
	}
}

func TestJPEGWithoutEXIF(t *testing.T) {
	jpg := MakeJPEG(EXIFMeta{}, []byte("x"))
	meta, _, err := ParseJPEG(jpg)
	if err != nil || !meta.empty() {
		t.Fatalf("meta=%v err=%v", meta, err)
	}
}

func TestJPEGMalformed(t *testing.T) {
	if _, _, err := ParseJPEG([]byte("not a jpeg")); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, _, err := ParseJPEG([]byte{0xFF, 0xD8, 0x00}); err == nil {
		t.Fatal("truncated jpeg parsed")
	}
}

func TestPNGRoundTripAndScrub(t *testing.T) {
	idat := []byte("compressed-pixels")
	png := MakePNG(map[string]string{"Author": "Bob D.", "Location": "Tyrannimen Sq"}, idat)
	if !IsPNG(png) {
		t.Fatal("not sniffed")
	}
	meta, err := PNGTextMeta(png)
	if err != nil || meta["Author"] != "Bob D." {
		t.Fatalf("meta = %v, %v", meta, err)
	}
	clean, err := ScrubPNG(png)
	if err != nil {
		t.Fatal(err)
	}
	meta, err = PNGTextMeta(clean)
	if err != nil || len(meta) != 0 {
		t.Fatalf("post-scrub meta = %v, %v", meta, err)
	}
	if !bytes.Contains(clean, idat) {
		t.Fatal("image data lost")
	}
}

func TestPNGCRCValidation(t *testing.T) {
	png := MakePNG(map[string]string{"k": "v"}, []byte("d"))
	png[len(pngSignature)+9] ^= 0xFF // corrupt IHDR body
	if _, err := PNGTextMeta(png); err == nil {
		t.Fatal("CRC corruption undetected")
	}
}

func TestPDFMetaAndHiddenText(t *testing.T) {
	doc := PDFDoc{
		Author:      "B. Dissident",
		Creator:     "LibreOffice",
		Title:       "Notes",
		VisibleText: []string{"Public statement."},
		HiddenText:  []string{"draft: meet at the river 9pm"},
	}
	pdf := MakePDF(doc)
	meta, err := ParsePDFMeta(pdf)
	if err != nil || meta.Author != "B. Dissident" {
		t.Fatalf("meta = %v, %v", meta, err)
	}
	if got := PDFVisibleText(pdf); len(got) != 1 || got[0] != "Public statement." {
		t.Fatalf("visible = %v", got)
	}
	if got := PDFHiddenText(pdf); len(got) != 1 || got[0] != "draft: meet at the river 9pm" {
		t.Fatalf("hidden = %v", got)
	}
}

func TestScrubPDFMetaLeavesHiddenText(t *testing.T) {
	pdf := MakePDF(PDFDoc{Author: "Bob", VisibleText: []string{"v"}, HiddenText: []string{"secret"}})
	clean, err := ScrubPDFMeta(pdf)
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := ParsePDFMeta(clean)
	if meta.Author != "" {
		t.Fatal("author survived metadata strip")
	}
	if got := PDFHiddenText(clean); len(got) != 1 {
		t.Fatal("metadata strip should NOT remove hidden text (that's rasterization's job)")
	}
}

func TestRasterizeDestroysHiddenContent(t *testing.T) {
	pdf := MakePDF(PDFDoc{Author: "Bob", VisibleText: []string{"public"}, HiddenText: []string{"secret"}})
	raster, err := RasterizePDF(pdf)
	if err != nil {
		t.Fatal(err)
	}
	if got := PDFHiddenText(raster); len(got) != 0 {
		t.Fatalf("hidden text survived rasterization: %v", got)
	}
	if meta, _ := ParsePDFMeta(raster); meta.Author != "" {
		t.Fatal("metadata survived rasterization")
	}
	if !bytes.Contains(raster, []byte("BITMAP:public")) {
		t.Fatal("visible content lost")
	}
}

func TestDOCXRoundTripAndScrub(t *testing.T) {
	docx := MakeDOCX(DOCXMeta{Creator: "bob@real-name.tyr", LastModifiedBy: "Bob"}, "report text")
	if !IsDOCX(docx) {
		t.Fatal("not sniffed")
	}
	meta, err := ParseDOCXMeta(docx)
	if err != nil || meta.Creator != "bob@real-name.tyr" {
		t.Fatalf("meta = %v, %v", meta, err)
	}
	clean, err := ScrubDOCX(docx)
	if err != nil {
		t.Fatal(err)
	}
	meta, err = ParseDOCXMeta(clean)
	if err != nil || meta != (DOCXMeta{}) {
		t.Fatalf("post-scrub meta = %v, %v", meta, err)
	}
	body, err := DOCXBody(clean)
	if err != nil || body != "report text" {
		t.Fatalf("body = %q, %v", body, err)
	}
}

func TestSIMGFacesAndWatermark(t *testing.T) {
	img := MakeSIMG(1024, 768, []SIMGRegion{
		{Kind: RegionPixels, X: 0, Y: 0, W: 1024, H: 768, Payload: []byte("background-pixels")},
		{Kind: RegionFace, X: 100, Y: 50, W: 64, H: 64, Payload: []byte("bobs-face-pixels")},
		{Kind: RegionWatermark, X: 0, Y: 0, W: 8, H: 8, Payload: []byte("device-id-signal")},
	})
	faces, err := DetectFaces(img)
	if err != nil || len(faces) != 1 {
		t.Fatalf("faces = %v, %v", faces, err)
	}
	blurred, err := BlurFaces(img)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blurred, []byte("bobs-face-pixels")) {
		t.Fatal("face pixels survived blur")
	}
	faces, _ = DetectFaces(blurred)
	if len(faces) != 1 || faces[0].W != 64 {
		t.Fatal("blur should preserve geometry")
	}
	noWM, err := DisruptWatermark(blurred, 0x55)
	if err != nil {
		t.Fatal(err)
	}
	if wm, _ := HasWatermark(noWM); wm {
		t.Fatal("watermark survived disruption")
	}
	w, _, _, _ := ParseSIMG(noWM)
	if w != 512 {
		t.Fatalf("resolution not reduced: %d", w)
	}
}

func TestAnalyzeFindsAllRisks(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want []string
	}{
		{"photo.jpg", MakeJPEG(bobPhoto, []byte("x")), []string{"exif-gps", "exif-serial", "exif-device"}},
		{"shot.png", MakePNG(map[string]string{"Author": "B"}, []byte("x")), []string{"png-text"}},
		{"doc.pdf", MakePDF(PDFDoc{Author: "B", HiddenText: []string{"h"}}), []string{"pdf-author", "pdf-hidden-text"}},
		{"memo.docx", MakeDOCX(DOCXMeta{Creator: "B"}, "t"), []string{"docx-creator"}},
		{"img.simg", MakeSIMG(10, 10, []SIMGRegion{{Kind: RegionFace, Payload: []byte("f")}}), []string{"image-faces"}},
		{"blob.bin", []byte("???"), []string{"unknown-format"}},
	}
	for _, tc := range cases {
		risks := Analyze(tc.name, tc.data)
		found := map[string]bool{}
		for _, r := range risks {
			found[r.Code] = true
		}
		for _, code := range tc.want {
			if !found[code] {
				t.Errorf("%s: missing risk %q in %v", tc.name, code, risks)
			}
		}
	}
}

func TestScrubEndToEndClearsCriticalRisks(t *testing.T) {
	files := map[string][]byte{
		"photo.jpg": MakeJPEG(bobPhoto, []byte("pixels")),
		"scan.png":  MakePNG(map[string]string{"Location": "here"}, []byte("pix")),
		"doc.pdf":   MakePDF(PDFDoc{Author: "Bob", VisibleText: []string{"v"}, HiddenText: []string{"s"}}),
		"memo.docx": MakeDOCX(DOCXMeta{Creator: "Bob"}, "body"),
	}
	for name, data := range files {
		res, err := Scrub(name, data, AllOptions)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range res.Residual {
			if r.Severity == Critical {
				t.Errorf("%s: critical risk survived full scrub: %v", name, r)
			}
		}
		if len(res.Applied) == 0 {
			t.Errorf("%s: nothing applied", name)
		}
	}
}

func TestScrubRespectsOptions(t *testing.T) {
	img := MakeSIMG(100, 100, []SIMGRegion{
		{Kind: RegionFace, Payload: []byte("face")},
		{Kind: RegionWatermark, Payload: []byte("wm")},
	})
	res, err := Scrub("x.simg", img, Options{BlurFaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if wm, _ := HasWatermark(res.Data); !wm {
		t.Fatal("watermark removed without being requested")
	}
	// The residual report must still flag it.
	foundWM := false
	for _, r := range res.Residual {
		if r.Code == "image-watermark" {
			foundWM = true
		}
	}
	if !foundWM {
		t.Fatalf("residual risks missing watermark: %v", res.Residual)
	}
}

// Property: scrubbing a JPEG with arbitrary metadata always yields a
// parsable JPEG with no metadata and the identical body.
func TestPropertyScrubJPEGTotal(t *testing.T) {
	f := func(mk, mdl, serial, lat string, body []byte) bool {
		meta := EXIFMeta{Make: clamp(mk), Model: clamp(mdl), Serial: clamp(serial), GPSLat: clamp(lat)}
		jpg := MakeJPEG(meta, body)
		clean, err := ScrubJPEG(jpg)
		if err != nil {
			return false
		}
		got, gotBody, err := ParseJPEG(clean)
		return err == nil && got.empty() && bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// clamp keeps generated strings printable-ASCII and NUL-free so they
// are valid TIFF ASCII fields.
func clamp(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 32 && r < 127 {
			out = append(out, r)
		}
		if len(out) >= 40 {
			break
		}
	}
	return string(out)
}

// Property: SIMG round trip preserves regions exactly.
func TestPropertySIMGRoundTrip(t *testing.T) {
	f := func(xs []uint16, payload []byte) bool {
		var regions []SIMGRegion
		kinds := []string{RegionPixels, RegionFace, RegionWatermark}
		for i := 0; i+3 < len(xs) && i/4 < 8; i += 4 {
			regions = append(regions, SIMGRegion{
				Kind: kinds[i%3], X: xs[i], Y: xs[i+1], W: xs[i+2], H: xs[i+3],
				Payload: payload,
			})
		}
		img := MakeSIMG(2000, 1000, regions)
		w, h, back, err := ParseSIMG(img)
		if err != nil || w != 2000 || h != 1000 || len(back) != len(regions) {
			return false
		}
		for i := range regions {
			if back[i].Kind != regions[i].Kind || back[i].X != regions[i].X ||
				!bytes.Equal(back[i].Payload, regions[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
