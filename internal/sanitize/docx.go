package sanitize

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// DOCX handling: real ZIP archives (archive/zip) with the OOXML
// members that leak identity — docProps/core.xml carries dc:creator
// and cp:lastModifiedBy, the fields that have outed document authors
// in practice (the paper's reference [8], Byers).

// DOCXMeta is the identifying metadata of a DOCX.
type DOCXMeta struct {
	Creator        string
	LastModifiedBy string
}

// MakeDOCX builds a minimal OOXML package.
func MakeDOCX(meta DOCXMeta, bodyText string) []byte {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	add := func(name, content string) {
		w, err := zw.Create(name)
		if err != nil {
			panic(err)
		}
		io.WriteString(w, content)
	}
	add("[Content_Types].xml", `<?xml version="1.0"?><Types/>`)
	add("word/document.xml", fmt.Sprintf(`<?xml version="1.0"?><w:document><w:body><w:t>%s</w:t></w:body></w:document>`, bodyText))
	add("docProps/core.xml", fmt.Sprintf(
		`<?xml version="1.0"?><cp:coreProperties><dc:creator>%s</dc:creator><cp:lastModifiedBy>%s</cp:lastModifiedBy></cp:coreProperties>`,
		meta.Creator, meta.LastModifiedBy))
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// IsDOCX sniffs the ZIP signature and the OOXML document member.
func IsDOCX(data []byte) bool {
	if !bytes.HasPrefix(data, []byte("PK\x03\x04")) {
		return false
	}
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return false
	}
	for _, f := range zr.File {
		if f.Name == "word/document.xml" {
			return true
		}
	}
	return false
}

func xmlField(doc, tag string) string {
	open, close := "<"+tag+">", "</"+tag+">"
	i := strings.Index(doc, open)
	if i < 0 {
		return ""
	}
	j := strings.Index(doc[i:], close)
	if j < 0 {
		return ""
	}
	return doc[i+len(open) : i+j]
}

// ParseDOCXMeta extracts the core properties.
func ParseDOCXMeta(data []byte) (DOCXMeta, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return DOCXMeta{}, ErrFormat
	}
	for _, f := range zr.File {
		if f.Name != "docProps/core.xml" {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return DOCXMeta{}, ErrFormat
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return DOCXMeta{}, ErrFormat
		}
		doc := string(content)
		return DOCXMeta{
			Creator:        xmlField(doc, "dc:creator"),
			LastModifiedBy: xmlField(doc, "cp:lastModifiedBy"),
		}, nil
	}
	return DOCXMeta{}, nil
}

// DOCXBody returns the document text.
func DOCXBody(data []byte) (string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return "", ErrFormat
	}
	for _, f := range zr.File {
		if f.Name != "word/document.xml" {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return "", ErrFormat
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return "", ErrFormat
		}
		return xmlField(string(content), "w:t"), nil
	}
	return "", ErrFormat
}

// ScrubDOCX rewrites the archive without the docProps members,
// preserving document content byte-identically.
func ScrubDOCX(data []byte) ([]byte, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, ErrFormat
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range zr.File {
		if strings.HasPrefix(f.Name, "docProps/") {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		w, err := zw.Create(f.Name)
		if err != nil {
			rc.Close()
			return nil, err
		}
		if _, err := io.Copy(w, rc); err != nil {
			rc.Close()
			return nil, err
		}
		rc.Close()
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
