package sanitize

import (
	"bytes"
	"encoding/binary"
)

// SIMG is the simulation's raster image format with annotated regions,
// standing in for what OpenCV extracts from real photos: face
// bounding boxes (to blur) and embedded watermark signals (to disrupt
// with noise and downscaling). The paper's scrubber offers exactly
// those transformations as user-selectable "paranoia levels"
// (section 3.6).

// Region kinds.
const (
	RegionFace      = "FACE"
	RegionWatermark = "WMRK"
	RegionPixels    = "PIXL"
)

// SIMGRegion is one annotated region.
type SIMGRegion struct {
	Kind    string // FACE, WMRK, PIXL
	X, Y    uint16
	W, H    uint16
	Payload []byte // pixel data / signal
}

var simgMagic = []byte("SIMG")

// MakeSIMG assembles an image from regions.
func MakeSIMG(width, height uint16, regions []SIMGRegion) []byte {
	var out bytes.Buffer
	out.Write(simgMagic)
	binary.BigEndian.PutUint16(appendSpace(&out, 2), width)
	binary.BigEndian.PutUint16(appendSpace(&out, 2), height)
	binary.BigEndian.PutUint16(appendSpace(&out, 2), uint16(len(regions)))
	for _, r := range regions {
		kind := []byte(r.Kind)
		if len(kind) != 4 {
			panic("sanitize: SIMG region kind must be 4 bytes")
		}
		out.Write(kind)
		for _, v := range []uint16{r.X, r.Y, r.W, r.H} {
			binary.BigEndian.PutUint16(appendSpace(&out, 2), v)
		}
		binary.BigEndian.PutUint32(appendSpace(&out, 4), uint32(len(r.Payload)))
		out.Write(r.Payload)
	}
	return out.Bytes()
}

// appendSpace grows the buffer by n bytes and returns the new slice
// region for in-place encoding.
func appendSpace(b *bytes.Buffer, n int) []byte {
	start := b.Len()
	b.Write(make([]byte, n))
	return b.Bytes()[start:]
}

// IsSIMG sniffs the magic.
func IsSIMG(data []byte) bool { return bytes.HasPrefix(data, simgMagic) }

// ParseSIMG decodes an image.
func ParseSIMG(data []byte) (width, height uint16, regions []SIMGRegion, err error) {
	if !IsSIMG(data) || len(data) < 10 {
		return 0, 0, nil, ErrFormat
	}
	width = binary.BigEndian.Uint16(data[4:])
	height = binary.BigEndian.Uint16(data[6:])
	n := int(binary.BigEndian.Uint16(data[8:]))
	i := 10
	for k := 0; k < n; k++ {
		if i+16 > len(data) {
			return 0, 0, nil, ErrFormat
		}
		r := SIMGRegion{
			Kind: string(data[i : i+4]),
			X:    binary.BigEndian.Uint16(data[i+4:]),
			Y:    binary.BigEndian.Uint16(data[i+6:]),
			W:    binary.BigEndian.Uint16(data[i+8:]),
			H:    binary.BigEndian.Uint16(data[i+10:]),
		}
		plen := int(binary.BigEndian.Uint32(data[i+12:]))
		if i+16+plen > len(data) {
			return 0, 0, nil, ErrFormat
		}
		r.Payload = append([]byte(nil), data[i+16:i+16+plen]...)
		regions = append(regions, r)
		i += 16 + plen
	}
	return width, height, regions, nil
}

// DetectFaces returns the face regions (the OpenCV step).
func DetectFaces(data []byte) ([]SIMGRegion, error) {
	_, _, regions, err := ParseSIMG(data)
	if err != nil {
		return nil, err
	}
	var faces []SIMGRegion
	for _, r := range regions {
		if r.Kind == RegionFace {
			faces = append(faces, r)
		}
	}
	return faces, nil
}

// HasWatermark reports embedded watermark signals.
func HasWatermark(data []byte) (bool, error) {
	_, _, regions, err := ParseSIMG(data)
	if err != nil {
		return false, err
	}
	for _, r := range regions {
		if r.Kind == RegionWatermark {
			return true, nil
		}
	}
	return false, nil
}

// BlurFaces replaces every face region's pixels with uniform blurred
// content, keeping geometry.
func BlurFaces(data []byte) ([]byte, error) {
	w, h, regions, err := ParseSIMG(data)
	if err != nil {
		return nil, err
	}
	for i, r := range regions {
		if r.Kind == RegionFace {
			blurred := make([]byte, len(r.Payload))
			for j := range blurred {
				blurred[j] = 0x7F // flat gray: no identifying structure left
			}
			regions[i].Payload = blurred
		}
	}
	return MakeSIMG(w, h, regions), nil
}

// DisruptWatermark reduces resolution and adds noise: watermark
// regions are destroyed and pixel payloads are halved (the resolution
// reduction) with a noise byte mixed in.
func DisruptWatermark(data []byte, noise byte) ([]byte, error) {
	w, h, regions, err := ParseSIMG(data)
	if err != nil {
		return nil, err
	}
	var out []SIMGRegion
	for _, r := range regions {
		if r.Kind == RegionWatermark {
			continue // signal destroyed
		}
		half := append([]byte(nil), r.Payload[:len(r.Payload)/2]...)
		for j := range half {
			half[j] ^= noise
		}
		r.Payload = half
		r.W /= 2
		r.H /= 2
		out = append(out, r)
	}
	return MakeSIMG(w/2, h/2, out), nil
}
