// Package sanitize implements the SaniVM's scrubbing suite (paper
// sections 3.6 and 4.3): metadata analysis and removal for the file
// formats users move into nymboxes, automated risk identification, a
// MAT-style strip mode plus a rasterization mode that reduces
// documents to images, face blurring, and watermark disruption.
//
// The binary formats are real: JPEG files carry genuine EXIF/TIFF
// structures, PNGs have CRC-correct chunks, DOCX files are actual ZIP
// archives. What the paper delegated to MAT and OpenCV is reimplemented
// here from scratch on those bytes.
package sanitize

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrFormat is returned when bytes do not parse as the claimed format.
var ErrFormat = errors.New("sanitize: malformed file")

// EXIFMeta is the identifying metadata a JPEG can carry.
type EXIFMeta struct {
	Make     string // camera manufacturer
	Model    string // camera model
	Serial   string // body serial number — the Oakes case identifier
	Software string
	GPSLat   string // e.g. "37.7749N"
	GPSLon   string // e.g. "122.4194W"
}

// empty reports whether no field is set.
func (m EXIFMeta) empty() bool {
	return m == EXIFMeta{}
}

// TIFF/EXIF tag numbers used.
const (
	tagMake       = 0x010F
	tagModel      = 0x0110
	tagSoftware   = 0x0131
	tagGPSIFD     = 0x8825
	tagSerial     = 0xA431
	tagGPSLat     = 0x0002
	tagGPSLon     = 0x0004
	tiffTypeASCII = 2
	tiffTypeLong  = 4
)

// tiffEntry is one IFD entry before layout.
type tiffEntry struct {
	tag   uint16
	typ   uint16
	value []byte // ASCII value (NUL-terminated) or 4-byte LONG
}

// encodeIFD lays out one IFD with its out-of-line values, starting at
// base offset within the TIFF body.
func encodeIFD(entries []tiffEntry, base uint32) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].tag < entries[j].tag })
	head := 2 + 12*len(entries) + 4
	var tail bytes.Buffer
	buf := make([]byte, head)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(entries)))
	for i, e := range entries {
		off := 2 + 12*i
		binary.LittleEndian.PutUint16(buf[off:], e.tag)
		binary.LittleEndian.PutUint16(buf[off+2:], e.typ)
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(len(e.value)))
		if len(e.value) <= 4 {
			copy(buf[off+8:off+12], e.value)
		} else {
			binary.LittleEndian.PutUint32(buf[off+8:], base+uint32(head)+uint32(tail.Len()))
			tail.Write(e.value)
		}
	}
	// next-IFD pointer = 0 (already zero).
	return append(buf, tail.Bytes()...)
}

func asciiValue(s string) []byte { return append([]byte(s), 0) }

// buildTIFF assembles the EXIF TIFF body: header, IFD0, and an
// optional GPS sub-IFD.
func buildTIFF(meta EXIFMeta) []byte {
	var ifd0 []tiffEntry
	if meta.Make != "" {
		ifd0 = append(ifd0, tiffEntry{tagMake, tiffTypeASCII, asciiValue(meta.Make)})
	}
	if meta.Model != "" {
		ifd0 = append(ifd0, tiffEntry{tagModel, tiffTypeASCII, asciiValue(meta.Model)})
	}
	if meta.Software != "" {
		ifd0 = append(ifd0, tiffEntry{tagSoftware, tiffTypeASCII, asciiValue(meta.Software)})
	}
	if meta.Serial != "" {
		ifd0 = append(ifd0, tiffEntry{tagSerial, tiffTypeASCII, asciiValue(meta.Serial)})
	}
	hasGPS := meta.GPSLat != "" || meta.GPSLon != ""
	if hasGPS {
		ifd0 = append(ifd0, tiffEntry{tagGPSIFD, tiffTypeLong, []byte{0, 0, 0, 0}})
	}
	// First pass to learn IFD0's size, then patch the GPS offset into
	// the pointer entry (located by tag: encodeIFD sorts the slice).
	header := []byte{'I', 'I', 0x2A, 0x00, 8, 0, 0, 0}
	ifd0Bytes := encodeIFD(ifd0, 8)
	gpsOffset := uint32(8 + len(ifd0Bytes))
	if hasGPS {
		for i := range ifd0 {
			if ifd0[i].tag == tagGPSIFD {
				binary.LittleEndian.PutUint32(ifd0[i].value, gpsOffset)
			}
		}
		ifd0Bytes = encodeIFD(ifd0, 8)
	}
	out := append(header, ifd0Bytes...)
	if hasGPS {
		var gps []tiffEntry
		if meta.GPSLat != "" {
			gps = append(gps, tiffEntry{tagGPSLat, tiffTypeASCII, asciiValue(meta.GPSLat)})
		}
		if meta.GPSLon != "" {
			gps = append(gps, tiffEntry{tagGPSLon, tiffTypeASCII, asciiValue(meta.GPSLon)})
		}
		out = append(out, encodeIFD(gps, gpsOffset)...)
	}
	return out
}

// parseIFD reads entries at off, returning tag -> raw value.
func parseIFD(tiff []byte, off uint32) (map[uint16][]byte, error) {
	if int(off)+2 > len(tiff) {
		return nil, ErrFormat
	}
	n := binary.LittleEndian.Uint16(tiff[off:])
	out := make(map[uint16][]byte, n)
	for i := 0; i < int(n); i++ {
		e := int(off) + 2 + 12*i
		if e+12 > len(tiff) {
			return nil, ErrFormat
		}
		tag := binary.LittleEndian.Uint16(tiff[e:])
		count := binary.LittleEndian.Uint32(tiff[e+4:])
		var val []byte
		if count <= 4 {
			val = tiff[e+8 : e+8+int(count)]
		} else {
			voff := binary.LittleEndian.Uint32(tiff[e+8:])
			if int(voff)+int(count) > len(tiff) {
				return nil, ErrFormat
			}
			val = tiff[voff : voff+count]
		}
		out[tag] = val
	}
	return out, nil
}

func asciiField(v []byte) string {
	return string(bytes.TrimRight(v, "\x00"))
}

// parseTIFF extracts EXIFMeta from a TIFF body.
func parseTIFF(tiff []byte) (EXIFMeta, error) {
	var meta EXIFMeta
	if len(tiff) < 8 || tiff[0] != 'I' || tiff[1] != 'I' {
		return meta, ErrFormat
	}
	ifd0Off := binary.LittleEndian.Uint32(tiff[4:])
	ifd0, err := parseIFD(tiff, ifd0Off)
	if err != nil {
		return meta, err
	}
	if v, ok := ifd0[tagMake]; ok {
		meta.Make = asciiField(v)
	}
	if v, ok := ifd0[tagModel]; ok {
		meta.Model = asciiField(v)
	}
	if v, ok := ifd0[tagSoftware]; ok {
		meta.Software = asciiField(v)
	}
	if v, ok := ifd0[tagSerial]; ok {
		meta.Serial = asciiField(v)
	}
	if v, ok := ifd0[tagGPSIFD]; ok && len(v) == 4 {
		gps, err := parseIFD(tiff, binary.LittleEndian.Uint32(v))
		if err != nil {
			return meta, err
		}
		if lat, ok := gps[tagGPSLat]; ok {
			meta.GPSLat = asciiField(lat)
		}
		if lon, ok := gps[tagGPSLon]; ok {
			meta.GPSLon = asciiField(lon)
		}
	}
	return meta, nil
}

// JPEG segment markers.
const (
	markerSOI  = 0xD8
	markerEOI  = 0xD9
	markerAPP1 = 0xE1
	markerSOS  = 0xDA
)

var exifHeader = []byte("Exif\x00\x00")

// MakeJPEG builds a JPEG with the given EXIF metadata and an
// image-body payload (uninterpreted scan data).
func MakeJPEG(meta EXIFMeta, body []byte) []byte {
	var out bytes.Buffer
	out.Write([]byte{0xFF, markerSOI})
	if !meta.empty() {
		tiff := buildTIFF(meta)
		payload := append(append([]byte(nil), exifHeader...), tiff...)
		out.Write([]byte{0xFF, markerAPP1})
		length := len(payload) + 2
		out.WriteByte(byte(length >> 8))
		out.WriteByte(byte(length))
		out.Write(payload)
	}
	// Start-of-scan and entropy-coded body.
	out.Write([]byte{0xFF, markerSOS, 0x00, 0x02})
	out.Write(body)
	out.Write([]byte{0xFF, markerEOI})
	return out.Bytes()
}

// IsJPEG sniffs the SOI marker.
func IsJPEG(data []byte) bool {
	return len(data) >= 2 && data[0] == 0xFF && data[1] == markerSOI
}

// ParseJPEG extracts EXIF metadata and the image body.
func ParseJPEG(data []byte) (EXIFMeta, []byte, error) {
	var meta EXIFMeta
	if !IsJPEG(data) {
		return meta, nil, ErrFormat
	}
	i := 2
	for i+4 <= len(data) {
		if data[i] != 0xFF {
			return meta, nil, ErrFormat
		}
		marker := data[i+1]
		if marker == markerSOS {
			// Body runs to EOI.
			end := bytes.LastIndex(data, []byte{0xFF, markerEOI})
			if end < i {
				return meta, nil, ErrFormat
			}
			return meta, data[i+4 : end], nil
		}
		length := int(data[i+2])<<8 | int(data[i+3])
		seg := data[i+4 : i+2+length]
		if marker == markerAPP1 && bytes.HasPrefix(seg, exifHeader) {
			m, err := parseTIFF(seg[len(exifHeader):])
			if err != nil {
				return meta, nil, err
			}
			meta = m
		}
		i += 2 + length
	}
	return meta, nil, ErrFormat
}

// ScrubJPEG removes every metadata segment, keeping the image body
// byte-identical.
func ScrubJPEG(data []byte) ([]byte, error) {
	meta, body, err := ParseJPEG(data)
	if err != nil {
		return nil, err
	}
	_ = meta
	return MakeJPEG(EXIFMeta{}, body), nil
}

// String renders the metadata for risk reports.
func (m EXIFMeta) String() string {
	return fmt.Sprintf("make=%q model=%q serial=%q gps=%q/%q software=%q",
		m.Make, m.Model, m.Serial, m.GPSLat, m.GPSLon, m.Software)
}
