// Package buddies implements the Buddies integration the paper plans
// in section 7: "Buddies offers users anonymity metrics and safe
// guards a user from falling below a desirable anonymity threshold"
// (Wolinsky, Syta & Ford, the paper's reference [77]).
//
// The monitor tracks, per pseudonym, the long-term intersection
// attack's candidate set: the users who were online during *every*
// round in which the pseudonym posted. Before each new post it
// projects what the set would shrink to if the post were published
// now, and refuses posts that would push the pseudonym below its
// policy floor — trading liveness for anonymity exactly as Buddies
// does.
package buddies

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBelowThreshold is returned when posting would shrink the
// pseudonym's anonymity set below its policy.
var ErrBelowThreshold = errors.New("buddies: posting now would drop the anonymity set below the policy floor")

// Policy is a pseudonym's anonymity requirement.
type Policy struct {
	// MinAnonymitySet is the smallest tolerable candidate-set size. A
	// value of 1 disables protection (the user alone still posts).
	MinAnonymitySet int
}

// Monitor tracks rounds and per-pseudonym candidate sets.
type Monitor struct {
	policies   map[string]Policy
	candidates map[string]map[string]bool // nym -> remaining candidate users
	online     map[string]bool            // current round's online set
	rounds     int
	posts      map[string]int
	suppressed map[string]int
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		policies:   make(map[string]Policy),
		candidates: make(map[string]map[string]bool),
		posts:      make(map[string]int),
		suppressed: make(map[string]int),
	}
}

// Register installs a pseudonym's policy. The candidate set starts
// undefined and is initialized by the first posting round.
func (m *Monitor) Register(nym string, p Policy) {
	if p.MinAnonymitySet < 1 {
		p.MinAnonymitySet = 1
	}
	m.policies[nym] = p
}

// BeginRound starts a new epoch with the given online user
// population (as an adversary would observe it).
func (m *Monitor) BeginRound(online []string) {
	m.rounds++
	m.online = make(map[string]bool, len(online))
	for _, u := range online {
		m.online[u] = true
	}
}

// Rounds returns the number of rounds observed.
func (m *Monitor) Rounds() int { return m.rounds }

// project computes the candidate set that would result from posting
// this round.
func (m *Monitor) project(nym string) map[string]bool {
	cur, initialized := m.candidates[nym]
	out := make(map[string]bool)
	if !initialized {
		for u := range m.online {
			out[u] = true
		}
		return out
	}
	for u := range cur {
		if m.online[u] {
			out[u] = true
		}
	}
	return out
}

// AnonymitySet returns the pseudonym's current candidate-set size
// (the intersection over all its posting rounds so far), or the
// current online population if it has never posted.
func (m *Monitor) AnonymitySet(nym string) int {
	if cur, ok := m.candidates[nym]; ok {
		return len(cur)
	}
	return len(m.online)
}

// ProjectedSet returns what the set would shrink to if the pseudonym
// posted in the current round — the metric Buddies surfaces to users.
func (m *Monitor) ProjectedSet(nym string) int { return len(m.project(nym)) }

// RequestPost gates a post in the current round: allowed only if the
// projected candidate set stays at or above the policy floor. On
// success the set is committed (the adversary learned the round).
func (m *Monitor) RequestPost(nym string) error {
	policy, ok := m.policies[nym]
	if !ok {
		return fmt.Errorf("buddies: pseudonym %q not registered", nym)
	}
	if m.online == nil {
		return errors.New("buddies: no active round")
	}
	projected := m.project(nym)
	if len(projected) < policy.MinAnonymitySet {
		m.suppressed[nym]++
		return fmt.Errorf("%w: projected %d < floor %d", ErrBelowThreshold, len(projected), policy.MinAnonymitySet)
	}
	m.candidates[nym] = projected
	m.posts[nym]++
	return nil
}

// Posts returns the number of posts the pseudonym published.
func (m *Monitor) Posts(nym string) int { return m.posts[nym] }

// Suppressed returns the number of posts the monitor blocked.
func (m *Monitor) Suppressed(nym string) int { return m.suppressed[nym] }

// Candidates returns the current candidate users, sorted (the
// adversary's suspect list — useful for reports and tests).
func (m *Monitor) Candidates(nym string) []string {
	out := make([]string, 0, len(m.candidates[nym]))
	for u := range m.candidates[nym] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
