package buddies

import (
	"errors"
	"testing"
	"testing/quick"

	"nymix/internal/sim"
)

func users(names ...string) []string { return names }

func TestFirstPostInitializesCandidateSet(t *testing.T) {
	m := NewMonitor()
	m.Register("blog", Policy{MinAnonymitySet: 2})
	m.BeginRound(users("alice", "bob", "carol"))
	if err := m.RequestPost("blog"); err != nil {
		t.Fatal(err)
	}
	if m.AnonymitySet("blog") != 3 {
		t.Fatalf("set = %d", m.AnonymitySet("blog"))
	}
}

func TestIntersectionShrinksAcrossRounds(t *testing.T) {
	m := NewMonitor()
	m.Register("blog", Policy{MinAnonymitySet: 1})
	m.BeginRound(users("alice", "bob", "carol", "dave"))
	m.RequestPost("blog")
	m.BeginRound(users("alice", "bob"))
	m.RequestPost("blog")
	if got := m.Candidates("blog"); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("candidates = %v", got)
	}
	m.BeginRound(users("alice", "eve"))
	m.RequestPost("blog")
	if got := m.Candidates("blog"); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("candidates = %v", got)
	}
}

func TestGateBlocksBelowFloor(t *testing.T) {
	m := NewMonitor()
	m.Register("blog", Policy{MinAnonymitySet: 3})
	m.BeginRound(users("alice", "bob", "carol", "dave"))
	if err := m.RequestPost("blog"); err != nil {
		t.Fatal(err)
	}
	// Only two candidates online: posting would identify Alice too
	// narrowly; Buddies suppresses it.
	m.BeginRound(users("alice", "bob"))
	err := m.RequestPost("blog")
	if !errors.Is(err, ErrBelowThreshold) {
		t.Fatalf("err = %v", err)
	}
	// The candidate set is NOT committed by a suppressed post.
	if m.AnonymitySet("blog") != 4 {
		t.Fatalf("set = %d after suppression, want 4", m.AnonymitySet("blog"))
	}
	if m.Suppressed("blog") != 1 || m.Posts("blog") != 1 {
		t.Fatalf("suppressed=%d posts=%d", m.Suppressed("blog"), m.Posts("blog"))
	}
	// A later round with enough overlap lets the post through.
	m.BeginRound(users("alice", "bob", "carol"))
	if err := m.RequestPost("blog"); err != nil {
		t.Fatal(err)
	}
	if m.AnonymitySet("blog") != 3 {
		t.Fatalf("set = %d", m.AnonymitySet("blog"))
	}
}

func TestProjectedSetIsAdvisory(t *testing.T) {
	m := NewMonitor()
	m.Register("blog", Policy{MinAnonymitySet: 1})
	m.BeginRound(users("a", "b", "c"))
	m.RequestPost("blog")
	m.BeginRound(users("a"))
	if m.ProjectedSet("blog") != 1 {
		t.Fatalf("projected = %d", m.ProjectedSet("blog"))
	}
	// Projection alone must not commit anything.
	if m.AnonymitySet("blog") != 3 {
		t.Fatalf("set = %d", m.AnonymitySet("blog"))
	}
}

func TestUnregisteredAndNoRound(t *testing.T) {
	m := NewMonitor()
	if err := m.RequestPost("ghost"); err == nil {
		t.Fatal("unregistered pseudonym posted")
	}
	m.Register("n", Policy{MinAnonymitySet: 1})
	if err := m.RequestPost("n"); err == nil {
		t.Fatal("post without a round")
	}
}

func TestPolicyFloorClamped(t *testing.T) {
	m := NewMonitor()
	m.Register("n", Policy{MinAnonymitySet: 0})
	m.BeginRound(users("only-me"))
	if err := m.RequestPost("n"); err != nil {
		t.Fatalf("clamped policy blocked: %v", err)
	}
}

func TestTwoNymsIndependentSets(t *testing.T) {
	m := NewMonitor()
	m.Register("a", Policy{MinAnonymitySet: 1})
	m.Register("b", Policy{MinAnonymitySet: 1})
	m.BeginRound(users("u1", "u2", "u3"))
	m.RequestPost("a")
	m.BeginRound(users("u1"))
	m.RequestPost("a")
	m.RequestPost("b")
	if m.AnonymitySet("a") != 1 {
		t.Fatalf("a set = %d", m.AnonymitySet("a"))
	}
	if m.AnonymitySet("b") != 1 { // b's first post: current online set
		t.Fatalf("b set = %d", m.AnonymitySet("b"))
	}
}

// Property: the candidate set never grows, and with the gate enabled
// it never drops below the floor after a successful post.
func TestPropertyMonotoneAndGated(t *testing.T) {
	f := func(rounds []uint16, floor uint8) bool {
		minSet := int(floor)%5 + 1
		m := NewMonitor()
		m.Register("n", Policy{MinAnonymitySet: minSet})
		rng := sim.NewRand(uint64(floor) + 1)
		prev := 1 << 30
		for _, r := range rounds {
			// Random online population of 1-16 users from a pool of 20.
			var online []string
			n := int(r)%16 + 1
			for i := 0; i < n; i++ {
				online = append(online, string(rune('A'+rng.Intn(20))))
			}
			m.BeginRound(online)
			if err := m.RequestPost("n"); err == nil {
				set := m.AnonymitySet("n")
				if set < minSet {
					return false // gate failed
				}
				if set > prev {
					return false // set grew
				}
				prev = set
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
