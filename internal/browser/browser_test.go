package browser

import (
	"strings"
	"testing"

	"nymix/internal/anonnet"
	"nymix/internal/anonnet/tor"
	"nymix/internal/guestos"
	"nymix/internal/hypervisor"
	"nymix/internal/sim"
	"nymix/internal/vm"
	"nymix/internal/webworld"
)

// rig: a hypervisor with one wired nymbox running Tor.
type rig struct {
	eng   *sim.Engine
	world *webworld.World
	host  *hypervisor.Host
	anon  *vm.VM
	comm  *vm.VM
	tor   *tor.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(31)
	net, world := webworld.BuildDefault(eng)
	host, err := hypervisor.New(eng, net, hypervisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	host.ConnectUplink(world.Gateway(), webworld.UplinkConfig)
	anon, err := host.LaunchVM(vm.Config{
		Name: "anon-0", Role: guestos.RoleAnonVM,
		RAMBytes: 384 * guestos.MiB, DiskBytes: 128 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := host.LaunchVM(vm.Config{
		Name: "comm-0", Role: guestos.RoleCommVM,
		RAMBytes: 128 * guestos.MiB, DiskBytes: 16 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := host.WireNymbox(anon, comm); err != nil {
		t.Fatal(err)
	}
	tc := tor.New(net, comm.Name(), world.Relays(), world.Resolver())
	r := &rig{eng: eng, world: world, host: host, anon: anon, comm: comm, tor: tc}
	eng.Go("setup", func(p *sim.Proc) {
		if err := anon.Boot(p); err != nil {
			t.Errorf("boot anon: %v", err)
		}
		if err := comm.Boot(p); err != nil {
			t.Errorf("boot comm: %v", err)
		}
		if err := tc.Start(p); err != nil {
			t.Errorf("start tor: %v", err)
		}
	})
	eng.Run()
	return r
}

func (r *rig) browser() *Browser {
	return New(r.world, r.host.Net(), r.anon, r.comm.Name(), r.tor, Config{})
}

func run(t *testing.T, r *rig, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Go("test", fn)
	r.eng.Run()
}

func TestVisitUpdatesClientAndServerState(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	var res VisitResult
	run(t, r, func(p *sim.Proc) {
		var err error
		res, err = b.Visit(p, "bbc.co.uk")
		if err != nil {
			t.Errorf("visit: %v", err)
		}
	})
	if !res.FirstVisit || res.Bytes <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if b.CacheBytes() == 0 {
		t.Fatal("cache did not grow")
	}
	if len(b.History()) != 1 || !strings.Contains(b.History()[0], "bbc.co.uk") {
		t.Fatalf("history = %v", b.History())
	}
	visits := r.world.Site("bbc.co.uk").Visits()
	if len(visits) != 1 {
		t.Fatalf("server saw %d visits", len(visits))
	}
	v := visits[0]
	if v.SourceAddr != r.tor.ExitIdentity() {
		t.Fatalf("server saw source %q, want tor exit", v.SourceAddr)
	}
	if v.Fingerprint != BaseFingerprint {
		t.Fatalf("fingerprint = %q", v.Fingerprint)
	}
	if v.CookieID == "" {
		t.Fatal("no cookie set")
	}
}

func TestRevisitIsCheaperAndKeepsCookie(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	var first, second VisitResult
	run(t, r, func(p *sim.Proc) {
		first, _ = b.Visit(p, "bbc.co.uk")
		second, _ = b.Visit(p, "bbc.co.uk")
	})
	if second.Bytes >= first.Bytes {
		t.Fatalf("revisit %d >= first %d", second.Bytes, first.Bytes)
	}
	if second.FirstVisit {
		t.Fatal("second visit marked first")
	}
	if first.Cookie != second.Cookie {
		t.Fatal("cookie changed across visits")
	}
}

func TestLoginStoresCredentialsAndAccount(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		if _, err := b.Login(p, "twitter.com", "dissident47", "hunter2"); err != nil {
			t.Errorf("login: %v", err)
		}
		if _, err := b.Post(p, "twitter.com", "protest at noon"); err != nil {
			t.Errorf("post: %v", err)
		}
	})
	cred, ok := b.Credentials("twitter.com")
	if !ok || cred.Account != "dissident47" {
		t.Fatalf("creds = %+v, %v", cred, ok)
	}
	visits := r.world.Site("twitter.com").Visits()
	if len(visits) != 2 {
		t.Fatalf("visits = %d", len(visits))
	}
	if visits[1].Action != "post" || visits[1].Account != "dissident47" || visits[1].Payload != "protest at noon" {
		t.Fatalf("post visit = %+v", visits[1])
	}
	// Saved credentials allow LoginSaved.
	run(t, r, func(p *sim.Proc) {
		if _, err := b.LoginSaved(p, "twitter.com"); err != nil {
			t.Errorf("login saved: %v", err)
		}
	})
}

func TestPostWithoutLoginFails(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		if _, err := b.Post(p, "twitter.com", "x"); err == nil {
			t.Error("post without login succeeded")
		}
	})
}

func TestThirdPartyTrackersSeeCrossSiteCookie(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		b.Visit(p, "gmail.com")   // embeds doubleclick
		b.Visit(p, "youtube.com") // embeds doubleclick
	})
	log := r.world.TrackerLog()
	var dc []webworld.Visit
	for _, v := range log {
		if v.Site == "doubleclick.net" {
			dc = append(dc, v)
		}
	}
	if len(dc) != 2 {
		t.Fatalf("doubleclick observations = %d", len(dc))
	}
	if dc[0].CookieID != dc[1].CookieID {
		t.Fatal("tracker cookie not shared across sites (it must be, within one nym)")
	}
	if dc[0].Payload == dc[1].Payload {
		t.Fatal("expected distinct first-party pages in tracker log")
	}
}

func TestEvercookieSurvivesClearCookies(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	var before, after string
	run(t, r, func(p *sim.Proc) {
		b.Visit(p, "gmail.com")
		log := r.world.TrackerLog()
		before = log[len(log)-1].CookieID
		b.Stain("exploit-77") // plants evercookies
		b.ClearCookies()
		b.Visit(p, "gmail.com")
		log = r.world.TrackerLog()
		after = log[len(log)-1].CookieID
	})
	if after == before {
		t.Fatal("tracker cookie survived clearing without evercookie")
	}
	if !strings.HasPrefix(after, "ever-exploit-77") {
		t.Fatalf("evercookie not resurrected: %q", after)
	}
}

func TestStainMakesFingerprintUnique(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	if b.Fingerprint() != BaseFingerprint {
		t.Fatalf("clean fingerprint = %q", b.Fingerprint())
	}
	b.Stain("mullenize-1")
	if b.Fingerprint() == BaseFingerprint {
		t.Fatal("stain did not change fingerprint")
	}
	if !b.Stained() {
		t.Fatal("Stained() = false")
	}
}

func TestCacheLRUEvictionAtCap(t *testing.T) {
	r := newRig(t)
	b := New(r.world, r.host.Net(), r.anon, r.comm.Name(), r.tor, Config{CacheCap: 6 << 20})
	run(t, r, func(p *sim.Proc) {
		b.Visit(p, "gmail.com")    // ~2.4 MB fill
		b.Visit(p, "facebook.com") // ~4.6 MB fill -> evicts gmail
	})
	if b.CacheBytes() > 6<<20 {
		t.Fatalf("cache %d exceeds cap", b.CacheBytes())
	}
	if _, ok := b.cacheBySite["facebook.com"]; !ok {
		t.Fatal("MRU site evicted")
	}
}

func TestProfilePersistsThroughDiskRoundTrip(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		b.Login(p, "twitter.com", "alice", "pw")
		b.Visit(p, "gmail.com")
	})
	snap := r.anon.Disk().Snapshot()

	// A brand-new browser on a restored disk sees the same profile.
	if err := r.anon.Disk().Restore(snap); err != nil {
		t.Fatal(err)
	}
	b2 := r.browser()
	cred, ok := b2.Credentials("twitter.com")
	if !ok || cred.Account != "alice" {
		t.Fatalf("restored creds = %+v, %v", cred, ok)
	}
	if len(b2.History()) != len(b.History()) {
		t.Fatalf("history %d != %d", len(b2.History()), len(b.History()))
	}
	if b2.CacheBytes() != b.CacheBytes() {
		t.Fatalf("cache %d != %d", b2.CacheBytes(), b.CacheBytes())
	}
	var res VisitResult
	run(t, r, func(p *sim.Proc) { res, _ = b2.Visit(p, "gmail.com") })
	if res.FirstVisit {
		t.Fatal("restored profile lost cache state")
	}
}

func TestUnknownSite(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		if _, err := b.Visit(p, "no-such.example"); err == nil {
			t.Error("unknown site visit succeeded")
		}
	})
}

func TestDownloadBypassesCache(t *testing.T) {
	r := newRig(t)
	b := r.browser()
	run(t, r, func(p *sim.Proc) {
		before := b.CacheBytes()
		if _, err := b.Download(p, "kernel.deterlab.net", 1<<20); err != nil {
			t.Errorf("download: %v", err)
		}
		if b.CacheBytes() != before {
			t.Error("download polluted the cache")
		}
	})
}

func TestTwoNymsHaveUnlinkableCookiesButSameFingerprint(t *testing.T) {
	// The structural core of Nymix: separate nymboxes share nothing
	// client-side, yet look identical to fingerprinting.
	r := newRig(t)
	b1 := r.browser()

	anon2, err := r.host.LaunchVM(vm.Config{
		Name: "anon-1", Role: guestos.RoleAnonVM,
		RAMBytes: 384 * guestos.MiB, DiskBytes: 128 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	comm2, err := r.host.LaunchVM(vm.Config{
		Name: "comm-1", Role: guestos.RoleCommVM,
		RAMBytes: 128 * guestos.MiB, DiskBytes: 16 * guestos.MiB, Anonymizer: "tor",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.WireNymbox(anon2, comm2); err != nil {
		t.Fatal(err)
	}
	tor2 := tor.New(r.host.Net(), comm2.Name(), r.world.Relays(), r.world.Resolver())
	run(t, r, func(p *sim.Proc) {
		anon2.Boot(p)
		comm2.Boot(p)
		if err := tor2.Start(p); err != nil {
			t.Errorf("tor2: %v", err)
		}
	})
	b2 := New(r.world, r.host.Net(), anon2, comm2.Name(), tor2, Config{})
	run(t, r, func(p *sim.Proc) {
		b1.Visit(p, "gmail.com")
		b2.Visit(p, "gmail.com")
	})
	visits := r.world.Site("gmail.com").Visits()
	if len(visits) != 2 {
		t.Fatalf("visits = %d", len(visits))
	}
	if visits[0].CookieID == visits[1].CookieID {
		t.Fatal("nyms share a cookie")
	}
	if visits[0].Fingerprint != visits[1].Fingerprint {
		t.Fatal("nyms distinguishable by fingerprint")
	}
}

var _ anonnet.Anonymizer = (*tor.Client)(nil)
