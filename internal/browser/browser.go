// Package browser simulates the Chromium instance inside an AnonVM:
// profile state (cookies, cache with the 83 MB default cap Figure 6
// mentions, history, saved credentials), page fetches proxied through
// the nym's CommVM anonymizer, the homogeneous browser fingerprint
// Nymix enforces, and the client-side attack vectors the paper
// defends against — evercookies and malware "stains".
//
// All profile state is written through to the AnonVM's disk, so
// snapshotting the disk (quasi-persistent nyms) captures exactly what
// a browser would persist, and discarding it scrubs everything.
package browser

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/cpusched"
	"nymix/internal/sim"
	"nymix/internal/vm"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// DefaultCacheCap is Chromium's default cache size, "which could have
// been configured to be smaller than the default of 83 MB" (section
// 5.3).
const DefaultCacheCap = 83 << 20

// BaseFingerprint is the homogeneous fingerprint every Nymix browser
// presents: same browser build, same virtual CPU, same resolution.
const BaseFingerprint = "chromium-34/qemu-vcpu-1/1024x768/nymix"

// Profile file locations on the AnonVM disk.
const (
	cookiesPath     = "/home/user/.config/chromium/cookies.json"
	evercookiesPath = "/home/user/.config/chromium/evercookies.dat"
	credsPath       = "/home/user/.config/chromium/logins.json"
	historyPath     = "/home/user/.config/chromium/history"
	cachePath       = "/home/user/.cache/chromium/blob"
	cacheIdxPath    = "/home/user/.cache/chromium/index.json"
	stainPath       = "/home/user/.config/chromium/.stain"
	boilerplatePath = "/home/user/.config/chromium/first-run-profile"
)

// boilerplateBytes is the disk footprint Chromium creates on first
// run regardless of browsing: GPU shader cache, safe-browsing lists,
// font cache, Local State. It makes the AnonVM dominate archived nym
// size even for light sites (Figure 6's ~85% AnonVM share).
const boilerplateBytes = 7 << 20

// Credential is a saved site login.
type Credential struct {
	Account  string
	Password string
}

// RenderFunc submits page render/JS CPU work to the host chip on
// behalf of the browser's AnonVM (core wires it to SubmitVMTask, so
// the work runs at virtualized efficiency and contends fairly with
// every other vCPU on the host). work is native core-seconds.
type RenderFunc func(name string, work float64) *sim.Future[cpusched.TaskResult]

// RenderRate is the native parse/layout/JS throughput of a page load:
// bytes of page content rendered per core-second. On an uncontended
// chip the render leg of a typical page finishes well inside its
// network transfer (a 4 MB page costs ~0.2 core-seconds against
// multiple seconds on the rate-limited uplink), so single-nym page
// timings match the flat model; when a fleet's browsers outnumber the
// chip's threads, rendering becomes the bottleneck and page loads
// stretch — honest CPU contention instead of free parallelism.
const RenderRate = 20 << 20

// Config parameterizes a browser.
type Config struct {
	CacheCap    int64  // bytes; 0 means DefaultCacheCap
	Fingerprint string // "" means the homogeneous Nymix BaseFingerprint
	// RenderCPU routes page render/JS time through the host CPU
	// scheduler. Nil keeps page loads network-only (a bare browser in
	// tests); core always wires it.
	RenderCPU RenderFunc
}

// Browser is one browser instance bound to an AnonVM and its
// anonymizer.
type Browser struct {
	world    *webworld.World
	net      *vnet.Network
	anonVM   *vm.VM
	commNode string
	anon     anonnet.Anonymizer
	cacheCap int64
	baseFP   string
	render   RenderFunc

	cookies     map[string]string // site host -> first-party cookie
	evercookies map[string]string // tracker -> evercookie (survives clearing)
	trackerCk   map[string]string // tracker -> live third-party cookie
	creds       map[string]Credential
	loggedIn    map[string]string // site host -> account (session state)
	history     []string
	cacheBySite map[string]int64
	cacheOrder  []string
	cacheTotal  int64
	stain       string
	nextID      int
}

// VisitResult reports one page visit.
type VisitResult struct {
	Bytes      int64
	Elapsed    time.Duration
	FirstVisit bool
	Cookie     string
}

// New creates a browser inside anonVM whose traffic exits through the
// anonymizer running at commNode.
func New(world *webworld.World, net *vnet.Network, anonVM *vm.VM, commNode string, anon anonnet.Anonymizer, cfg Config) *Browser {
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = DefaultCacheCap
	}
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = BaseFingerprint
	}
	b := &Browser{
		world:       world,
		net:         net,
		anonVM:      anonVM,
		commNode:    commNode,
		anon:        anon,
		cacheCap:    cfg.CacheCap,
		baseFP:      cfg.Fingerprint,
		render:      cfg.RenderCPU,
		cookies:     make(map[string]string),
		evercookies: make(map[string]string),
		trackerCk:   make(map[string]string),
		creds:       make(map[string]Credential),
		loggedIn:    make(map[string]string),
		cacheBySite: make(map[string]int64),
	}
	b.LoadFromDisk()
	if !anonVM.Disk().FS().Exists(boilerplatePath) {
		anonVM.Disk().WriteVirtual(boilerplatePath, boilerplateBytes, 0.7)
	}
	return b
}

// Fingerprint returns the fingerprint servers can compute. A stain
// (client-side exploit marker) makes it unique; otherwise every Nymix
// browser looks identical.
func (b *Browser) Fingerprint() string {
	if b.stain != "" {
		return b.baseFP + "/stain:" + b.stain
	}
	return b.baseFP
}

// Stained reports whether a stain marker is present.
func (b *Browser) Stained() bool { return b.stain != "" }

// Stain injects a tracking stain (models the GCHQ "MULLENIZE"-style
// attack of section 3.3): the marker persists on disk and in
// evercookies, so it survives within a persistent nym but dies with an
// ephemeral or pre-configured one.
func (b *Browser) Stain(id string) {
	b.stain = id
	for _, tracker := range []string{"doubleclick.net", "adnet.example", "facebook-pixel"} {
		b.evercookies[tracker] = "ever-" + id
	}
	b.saveToDisk()
}

// CacheBytes returns current cache occupancy.
func (b *Browser) CacheBytes() int64 { return b.cacheTotal }

// History returns the visit history.
func (b *Browser) History() []string { return append([]string(nil), b.history...) }

// Credentials returns the saved login for a site, if any.
func (b *Browser) Credentials(host string) (Credential, bool) {
	c, ok := b.creds[host]
	return c, ok
}

// newID mints a locally unique identifier.
func (b *Browser) newID(prefix string) string {
	b.nextID++
	return fmt.Sprintf("%s-%s-%d-%d", prefix, b.anonVM.Name(), b.nextID, b.net.Engine().Rand().Intn(1<<30))
}

// drainRender awaits an in-flight render task on a failed page load,
// so an aborted fetch does not leave a phantom task stealing chip
// throughput from live nyms (the bootVM lesson).
func (b *Browser) drainRender(p *sim.Proc, render *sim.Future[cpusched.TaskResult]) {
	if render != nil {
		sim.Await(p, render)
	}
}

// wire moves bytes across the AnonVM-CommVM virtual wire.
func (b *Browser) wire(p *sim.Proc, toComm bool, bytes int64) error {
	from, to := b.anonVM.Node().Name(), b.commNode
	if !toComm {
		from, to = to, from
	}
	fut := b.net.StartTransfer(vnet.TransferOpts{
		From: from, To: to, Bytes: bytes, Proto: "socks", NoHandshake: true,
	})
	_, err := sim.Await(p, fut)
	return err
}

// Visit loads a site's page through the anonymizer, updating cookies,
// cache, history, and the server-side observation logs.
func (b *Browser) Visit(p *sim.Proc, host string) (VisitResult, error) {
	return b.request(p, host, "browse", "", 0)
}

// request is the common exchange path for browse/login/post/download.
func (b *Browser) request(p *sim.Proc, host, action, payload string, extraUp int64) (VisitResult, error) {
	site := b.world.Site(host)
	if site == nil {
		return VisitResult{}, fmt.Errorf("browser: unknown site %q", host)
	}
	start := p.Now()
	node, err := b.anon.Resolve(p, host)
	if err != nil {
		return VisitResult{}, err
	}
	prof := site.Profile
	_, visited := b.cacheBySite[host]
	pageBytes := prof.InitialPage
	if visited {
		pageBytes = prof.RevisitPage
	}
	if action == "download" {
		pageBytes = extraUp // callers pass the download size via extraUp for downloads
		extraUp = 0
	}
	upBytes := int64(2048) + extraUp
	// Page render/JS runs on the AnonVM's vCPU concurrently with the
	// transfer (browsers parse and lay out progressively as bytes
	// arrive); the load completes when both network and render have.
	// Downloads bypass the renderer the same way they bypass the cache.
	var render *sim.Future[cpusched.TaskResult]
	if b.render != nil && action != "download" {
		render = b.render(b.anonVM.Name()+"/render", float64(pageBytes)/RenderRate)
	}
	// SOCKS request across the wire, the anonymized exchange, and the
	// response back over the wire.
	if err := b.wire(p, true, upBytes); err != nil {
		b.drainRender(p, render)
		return VisitResult{}, err
	}
	if _, err := b.anon.Fetch(p, anonnet.Request{SiteNode: node, SendBytes: upBytes, RecvBytes: pageBytes}); err != nil {
		b.drainRender(p, render)
		return VisitResult{}, err
	}
	if err := b.wire(p, false, pageBytes); err != nil {
		b.drainRender(p, render)
		return VisitResult{}, err
	}
	if render != nil {
		if _, err := sim.Await(p, render); err != nil {
			return VisitResult{}, err
		}
	}

	// Cookies: present the stored one or accept a fresh one; an
	// evercookie silently resurrects a cleared first-party cookie.
	ck, had := b.cookies[host]
	if !had {
		if ec, ok := b.evercookies[host]; ok {
			ck = ec
		} else {
			ck = b.newID("ck")
		}
		b.cookies[host] = ck
	}

	// Server-side observation.
	site.RecordVisit(webworld.Visit{
		Time:        p.Now(),
		SourceAddr:  b.anon.ExitIdentity(),
		CookieID:    ck,
		Fingerprint: b.Fingerprint(),
		Account:     b.loggedIn[host],
		Action:      action,
		Payload:     payload,
	})
	// Third-party trackers embedded in the page see their own cookie,
	// shared across every site embedding them.
	for _, tracker := range prof.Trackers {
		tck, ok := b.trackerCk[tracker]
		if !ok {
			if ec, ok := b.evercookies[tracker]; ok {
				tck = ec
			} else {
				tck = b.newID("3p")
			}
			b.trackerCk[tracker] = tck
		}
		b.world.RecordTracker(webworld.Visit{
			Time:        p.Now(),
			Site:        tracker,
			SourceAddr:  b.anon.ExitIdentity(),
			CookieID:    tck,
			Fingerprint: b.Fingerprint(),
			Payload:     host,
		})
	}

	// Client-side state: cache growth (halved on warm revisits), LRU
	// eviction at the cap, history, dirtied guest pages.
	fill := prof.CacheFill
	if visited {
		fill /= 2
	}
	if action != "download" { // downloads bypass the cache
		b.addCache(host, fill, prof.CacheEntropy)
	}
	b.history = append(b.history, fmt.Sprintf("%d %s %s", p.Now()/time.Millisecond, action, host))
	if b.anonVM.State() == vm.StateRunning {
		b.anonVM.DirtyPages(pageBytes / 4096 / 2)
	}
	b.saveToDisk()
	return VisitResult{Bytes: pageBytes, Elapsed: p.Now() - start, FirstVisit: !visited, Cookie: ck}, nil
}

// Login visits the site and authenticates. Unknown accounts are
// registered (pseudonymous signup); credentials are saved so the nym
// binds them structurally ("when using the correct nymbox the user
// need not enter those credentials at all", section 1).
func (b *Browser) Login(p *sim.Proc, host, account, password string) (VisitResult, error) {
	site := b.world.Site(host)
	if site == nil {
		return VisitResult{}, fmt.Errorf("browser: unknown site %q", host)
	}
	if !site.CheckLogin(account, password) {
		site.CreateAccount(account, password)
	}
	b.loggedIn[host] = account
	b.creds[host] = Credential{Account: account, Password: password}
	res, err := b.request(p, host, "login", "", 1024)
	if err != nil {
		delete(b.loggedIn, host)
		return res, err
	}
	return res, nil
}

// LoginSaved logs in using the nym's stored credentials.
func (b *Browser) LoginSaved(p *sim.Proc, host string) (VisitResult, error) {
	c, ok := b.creds[host]
	if !ok {
		return VisitResult{}, fmt.Errorf("browser: no saved credentials for %q", host)
	}
	return b.Login(p, host, c.Account, c.Password)
}

// Post publishes content to a site the browser is logged in to.
func (b *Browser) Post(p *sim.Proc, host, content string) (VisitResult, error) {
	if b.loggedIn[host] == "" {
		return VisitResult{}, fmt.Errorf("browser: not logged in to %q", host)
	}
	return b.request(p, host, "post", content, int64(len(content))+2048)
}

// Upload posts a file (e.g. a scrubbed photo) to a site.
func (b *Browser) Upload(p *sim.Proc, host string, data []byte) (VisitResult, error) {
	if b.loggedIn[host] == "" {
		return VisitResult{}, fmt.Errorf("browser: not logged in to %q", host)
	}
	return b.request(p, host, "post", fmt.Sprintf("file[%d bytes]", len(data)), int64(len(data)))
}

// Download fetches a bulk file of the given size (the Figure 5
// workload), bypassing the cache.
func (b *Browser) Download(p *sim.Proc, host string, bytes int64) (VisitResult, error) {
	return b.request(p, host, "download", "", bytes)
}

// ClearCookies deletes first- and third-party cookies — but not
// evercookies, which is precisely why private browsing modes fail
// ("the evercookie that sticks around even if you disable cookies",
// section 2).
func (b *Browser) ClearCookies() {
	b.cookies = make(map[string]string)
	b.trackerCk = make(map[string]string)
	b.saveToDisk()
}

// addCache grows the per-site cache with LRU eviction at the cap.
func (b *Browser) addCache(host string, bytes int64, entropy float64) {
	if _, ok := b.cacheBySite[host]; !ok {
		b.cacheOrder = append(b.cacheOrder, host)
	} else {
		// Move to MRU position.
		for i, h := range b.cacheOrder {
			if h == host {
				b.cacheOrder = append(b.cacheOrder[:i], b.cacheOrder[i+1:]...)
				break
			}
		}
		b.cacheOrder = append(b.cacheOrder, host)
	}
	b.cacheBySite[host] += bytes
	b.cacheTotal += bytes
	for b.cacheTotal > b.cacheCap && len(b.cacheOrder) > 0 {
		victim := b.cacheOrder[0]
		evict := b.cacheBySite[victim]
		need := b.cacheTotal - b.cacheCap
		if evict <= need || victim == host && len(b.cacheOrder) == 1 {
			b.cacheTotal -= evict
			delete(b.cacheBySite, victim)
			b.cacheOrder = b.cacheOrder[1:]
		} else {
			b.cacheBySite[victim] -= need
			b.cacheTotal -= need
		}
	}
	disk := b.anonVM.Disk()
	if disk.FS().Exists(cachePath) {
		delta := b.cacheTotal - b.diskCacheSize()
		disk.GrowVirtual(cachePath, delta, entropy)
	} else {
		disk.WriteVirtual(cachePath, b.cacheTotal, entropy)
	}
}

func (b *Browser) diskCacheSize() int64 {
	if info, err := b.anonVM.Disk().FS().Stat(cachePath); err == nil {
		return info.Size
	}
	return 0
}

// profileDump is the serialized profile metadata.
type profileDump struct {
	Cookies     map[string]string
	Evercookies map[string]string
	TrackerCk   map[string]string
	Creds       map[string]Credential
	CacheBySite map[string]int64
	CacheOrder  []string
	NextID      int
}

// saveToDisk writes profile state through to the AnonVM disk.
func (b *Browser) saveToDisk() {
	disk := b.anonVM.Disk()
	dump := profileDump{
		Cookies:     b.cookies,
		Evercookies: b.evercookies,
		TrackerCk:   b.trackerCk,
		Creds:       b.creds,
		CacheBySite: b.cacheBySite,
		CacheOrder:  b.cacheOrder,
		NextID:      b.nextID,
	}
	meta, err := json.Marshal(dump)
	if err != nil {
		panic(fmt.Sprintf("browser: marshal profile: %v", err))
	}
	disk.WriteFile(cookiesPath, meta)
	histBytes := []byte{}
	for _, h := range b.history {
		histBytes = append(histBytes, h...)
		histBytes = append(histBytes, '\n')
	}
	disk.WriteFile(historyPath, histBytes)
	if b.stain != "" {
		disk.WriteFile(stainPath, []byte(b.stain))
	}
	idx := []byte(strconv.FormatInt(b.cacheTotal, 10))
	disk.WriteFile(cacheIdxPath, idx)
}

// LoadFromDisk restores profile state from the AnonVM disk (after a
// quasi-persistent nym is resumed).
func (b *Browser) LoadFromDisk() {
	fs := b.anonVM.Disk().FS()
	if data, err := fs.ReadFile(cookiesPath); err == nil {
		var dump profileDump
		if json.Unmarshal(data, &dump) == nil {
			if dump.Cookies != nil {
				b.cookies = dump.Cookies
			}
			if dump.Evercookies != nil {
				b.evercookies = dump.Evercookies
			}
			if dump.TrackerCk != nil {
				b.trackerCk = dump.TrackerCk
			}
			if dump.Creds != nil {
				b.creds = dump.Creds
			}
			if dump.CacheBySite != nil {
				b.cacheBySite = dump.CacheBySite
				b.cacheOrder = dump.CacheOrder
				b.cacheTotal = 0
				for _, v := range b.cacheBySite {
					b.cacheTotal += v
				}
			}
			b.nextID = dump.NextID
		}
	}
	if data, err := fs.ReadFile(historyPath); err == nil && len(data) > 0 {
		b.history = nil
		start := 0
		for i, c := range data {
			if c == '\n' {
				b.history = append(b.history, string(data[start:i]))
				start = i + 1
			}
		}
	}
	if data, err := fs.ReadFile(stainPath); err == nil {
		b.stain = string(data)
	}
}
