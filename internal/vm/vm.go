// Package vm models the QEMU/KVM virtual machines a nymbox is made
// of. A VM owns an address space on the host (its RAM plus its
// RAM-backed writable disk, since "the host allocates disk and RAM
// from its own stash of RAM", section 5.2), a union-file-system disk
// stack, and a lifecycle state machine with boot, pause, resume,
// snapshot, and secure-erase transitions.
//
// To keep fingerprints homogeneous (section 4.2), every VM reports a
// single QEMU virtual CPU, a 1024x768 display, and identical
// Ethernet/IP addresses on its private wire.
package vm

import (
	"errors"
	"fmt"

	"nymix/internal/guestos"
	"nymix/internal/mem"
	"nymix/internal/sim"
	"nymix/internal/unionfs"
	"nymix/internal/vdisk"
	"nymix/internal/vnet"
)

// State is a VM lifecycle state.
type State int

// Lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StatePaused
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// ErrBadState is returned for illegal lifecycle transitions.
var ErrBadState = errors.New("vm: operation invalid in current state")

// Config describes a VM to be launched.
type Config struct {
	Name       string
	Role       guestos.Role
	RAMBytes   int64
	DiskBytes  int64 // writable layer capacity
	Anonymizer string
}

// Fingerprint is what guest-visible probing reveals. Nymix pins these
// to identical values on every machine so that VMs cannot be told
// apart (section 4.2: "we want Nymix to run the same on every
// machine").
type Fingerprint struct {
	CPUModel   string
	CPUCount   int
	Resolution string
	MAC        string
	WireIP     string
}

// HomogeneousFingerprint is the fingerprint every Nymix VM presents.
var HomogeneousFingerprint = Fingerprint{
	CPUModel:   "QEMU Virtual CPU version 2.0.0",
	CPUCount:   1,
	Resolution: "1024x768",
	MAC:        "52:54:00:12:34:56",
	WireIP:     "10.13.37.2",
}

// VM is one virtual machine instance.
type VM struct {
	eng     *sim.Engine
	cfg     Config
	state   State
	space   *mem.Space
	disk    *vdisk.Disk
	node    *vnet.Node
	memProf guestos.MemProfile
	boot    guestos.BootProfile

	ramPages     int64 // page indices [0, ramPages) are RAM
	uniqueCursor int64 // next unique RAM page to dirty
	diskPages    int64 // pages charged for disk content
	diskPageMax  int64
	pendingDisk  int64 // sub-page disk bytes awaiting a full page
	bootedAt     sim.Time
	dirty        DirtyStats
}

// DirtyStats is a VM's cumulative mutation accounting: the raw signal
// a checkpoint scheduler needs to tell a mutated nymbox from a clean
// one without exporting or hashing any state. All three counters are
// monotonic over the VM's lifetime; a checkpointing layer snapshots
// them at save time and compares later readings against the snapshot,
// so concurrent mutation between snapshot and comparison is never
// lost to a reset.
type DirtyStats struct {
	// Gen is the mutation generation stamp, bumped on every
	// state-mutating write (unique RAM dirtying or a writable-disk
	// change). Two equal readings mean no mutation happened between
	// them.
	Gen uint64
	// RAMPages counts unique RAM pages dirtied (boot's private
	// fraction, session activity, workload writes).
	RAMPages int64
	// DiskBytes counts absolute writable-disk byte churn: grown,
	// shrunk, and discarded bytes all accumulate, because any of them
	// changes the disk image a checkpoint would export.
	DiskBytes int64
}

// New creates a VM: allocates its address space on host memory,
// builds its disk from the supplied sealed lower layers (config layer
// first, then base image), and wires disk usage accounting into the
// space. The VM is not yet booted.
func New(eng *sim.Engine, host *mem.Host, cfg Config, lower ...*unionfs.Layer) (*VM, error) {
	if cfg.RAMBytes <= 0 {
		return nil, fmt.Errorf("vm %s: non-positive RAM", cfg.Name)
	}
	space, err := host.NewSpace(cfg.Name)
	if err != nil {
		return nil, err
	}
	disk, err := vdisk.New(cfg.Name, cfg.DiskBytes, lower...)
	if err != nil {
		space.Release()
		return nil, err
	}
	v := &VM{
		eng:         eng,
		cfg:         cfg,
		space:       space,
		disk:        disk,
		memProf:     guestos.MemProfileFor(cfg.Role),
		boot:        guestos.BootProfileFor(cfg.Role),
		ramPages:    cfg.RAMBytes / mem.PageSize,
		diskPageMax: cfg.DiskBytes / mem.PageSize,
	}
	disk.SetDeltaFunc(v.chargeDisk)
	disk.SetMutateFunc(v.noteDiskRewrite)
	return v, nil
}

// Name returns the VM's name.
func (v *VM) Name() string { return v.cfg.Name }

// Role returns the VM's role.
func (v *VM) Role() guestos.Role { return v.cfg.Role }

// Config returns the VM's configuration.
func (v *VM) Config() Config { return v.cfg }

// State returns the lifecycle state.
func (v *VM) State() State { return v.state }

// Disk returns the VM's virtual disk.
func (v *VM) Disk() *vdisk.Disk { return v.disk }

// Fingerprint returns the guest-visible hardware identity.
func (v *VM) Fingerprint() Fingerprint { return HomogeneousFingerprint }

// AttachNode binds the VM to its network identity.
func (v *VM) AttachNode(n *vnet.Node) { v.node = n }

// Node returns the VM's network node (nil for the non-networked
// SaniVM).
func (v *VM) Node() *vnet.Node { return v.node }

// BootedAt returns when the VM finished booting.
func (v *VM) BootedAt() sim.Time { return v.bootedAt }

// DirtyStats returns the VM's cumulative mutation counters.
func (v *VM) DirtyStats() DirtyStats { return v.dirty }

// chargeDisk exists for the accounting hook; with Nymix's KVM
// configuration the writable disk is preallocated from host RAM at VM
// initialization ("the host allocates disk and RAM from its own stash
// of RAM", section 5.2), so individual file writes change nothing.
// The hook still tracks logical usage for introspection, and feeds
// the dirty counters: any writable-layer delta means the disk image a
// checkpoint would export has changed.
func (v *VM) chargeDisk(delta int64) {
	v.pendingDisk += delta
	if delta != 0 {
		v.dirty.Gen++
		if delta < 0 {
			delta = -delta
		}
		v.dirty.DiskBytes += delta
	}
}

// noteDiskRewrite covers what the delta hook underreports: rewriting
// an existing file changes content a checkpoint must re-chunk beyond
// the size delta — all of it for a same-size or shrinking rewrite,
// the retained prefix for a growing one. (Writing a file with the
// content it already holds fires neither hook — a no-op save-path
// re-export must not mark the nym dirty.)
func (v *VM) noteDiskRewrite(rewritten int64) {
	v.dirty.Gen++
	v.dirty.DiskBytes += rewritten
}

// Boot starts the VM: KVM touches most of the requested memory at
// initialization (the Figure 3 observation), then the guest runs its
// boot sequence for the role's boot duration.
func (v *VM) Boot(p *sim.Proc) error {
	if v.state != StateCreated {
		return fmt.Errorf("%w: boot from %v", ErrBadState, v.state)
	}
	if err := v.touchInitMemory(); err != nil {
		return err
	}
	v.state = StateRunning
	d := sim.Time(p.Rand().Jitter(float64(v.boot.Base), v.boot.Jitter))
	p.Sleep(d)
	v.bootedAt = p.Now()
	return nil
}

// touchInitMemory populates the address space per the role's profile:
// shared base-image pages, the zeroed pool, and the private unique
// portion.
func (v *VM) touchInitMemory() error {
	prof := v.memProf
	shared := prof.BootSharedPages
	zero := prof.BootZeroPages
	if shared+zero > v.ramPages {
		shared = v.ramPages
		zero = 0
	}
	if err := v.space.WriteClass(0, shared, "baseimg", 0); err != nil {
		return err
	}
	if err := v.space.WriteZero(shared, zero); err != nil {
		return err
	}
	v.uniqueCursor = shared + zero
	rest := v.ramPages - v.uniqueCursor
	uniq := int64(float64(rest) * prof.BootUniqueFrac)
	if err := v.dirtyUnique(uniq); err != nil {
		return err
	}
	// The RAM-backed writable disk is preallocated at init; its pages
	// are private (tmpfs contents never merge).
	if v.diskPageMax > 0 {
		if err := v.space.WriteUnique(v.ramPages, v.diskPageMax); err != nil {
			return err
		}
		v.diskPages = v.diskPageMax
	}
	return nil
}

// dirtyUnique advances the unique-page cursor by up to n pages.
func (v *VM) dirtyUnique(n int64) error {
	room := v.ramPages - v.uniqueCursor
	if n > room {
		n = room
	}
	if n <= 0 {
		return nil
	}
	if err := v.space.WriteUnique(v.uniqueCursor, n); err != nil {
		return err
	}
	v.uniqueCursor += n
	v.dirty.Gen++
	v.dirty.RAMPages += n
	return nil
}

// DirtyActive models a session interacting with the guest (the
// "after" measurements of Figure 3): the guest dirties its
// active-extra fraction of RAM with private content.
func (v *VM) DirtyActive() error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: dirty in %v", ErrBadState, v.state)
	}
	extra := int64(float64(v.ramPages) * v.memProf.ActiveExtraFrac)
	return v.dirtyUnique(extra)
}

// DirtyPages dirties exactly n unique RAM pages (workload-driven).
func (v *VM) DirtyPages(n int64) error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: dirty in %v", ErrBadState, v.state)
	}
	return v.dirtyUnique(n)
}

// ResidentBytes returns the VM's logical resident size (before KSM).
func (v *VM) ResidentBytes() int64 { return v.space.TouchedBytes() }

// Pause suspends the VM (used while its file systems are synced for a
// nym snapshot, section 3.5).
func (v *VM) Pause() error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: pause from %v", ErrBadState, v.state)
	}
	v.state = StatePaused
	return nil
}

// Resume continues a paused VM.
func (v *VM) Resume() error {
	if v.state != StatePaused {
		return fmt.Errorf("%w: resume from %v", ErrBadState, v.state)
	}
	v.state = StateRunning
	return nil
}

// eraseRate is the simulated throughput of the secure memory wipe.
const eraseRate = 4 << 30 // 4 GiB/s

// Shutdown stops the VM and securely erases its memory: "Nymix wipes
// any traces that the pseudonym ever existed and securely erases the
// AnonVM's and CommVM's memory immediately on shutting down a
// pseudonym" (section 3.4). The wipe takes simulated time proportional
// to the resident set.
func (v *VM) Shutdown(p *sim.Proc) error {
	if v.state == StateStopped {
		return fmt.Errorf("%w: already stopped", ErrBadState)
	}
	resident := v.space.TouchedBytes()
	wipe := sim.Time(float64(resident) / float64(eraseRate) * float64(sim.Time(1e9)))
	p.Sleep(wipe)
	v.space.Release()
	v.disk.Discard()
	v.state = StateStopped
	return nil
}
