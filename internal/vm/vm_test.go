package vm

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/guestos"
	"nymix/internal/mem"
	"nymix/internal/sim"
)

func newTestVM(t *testing.T, eng *sim.Engine, host *mem.Host, name string, role guestos.Role) *VM {
	t.Helper()
	cfg := Config{
		Name:      name,
		Role:      role,
		RAMBytes:  384 * guestos.MiB,
		DiskBytes: 128 * guestos.MiB,
	}
	conf := guestos.ConfigLayer(role, "tor")
	base := guestos.BuildBaseImage()
	v, err := New(eng, host, cfg, conf, base)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBootTransitionsAndTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	if v.State() != StateCreated {
		t.Fatalf("state = %v", v.State())
	}
	var bootDur time.Duration
	eng.Go("boot", func(p *sim.Proc) {
		start := p.Now()
		if err := v.Boot(p); err != nil {
			t.Errorf("boot: %v", err)
		}
		bootDur = p.Now() - start
	})
	eng.Run()
	if v.State() != StateRunning {
		t.Fatalf("state = %v after boot", v.State())
	}
	prof := guestos.BootProfileFor(guestos.RoleAnonVM)
	min := time.Duration(float64(prof.Base) * (1 - prof.Jitter - 0.01))
	max := time.Duration(float64(prof.Base) * (1 + prof.Jitter + 0.01))
	if bootDur < min || bootDur > max {
		t.Fatalf("boot took %v, want within [%v, %v]", bootDur, min, max)
	}
}

func TestDoubleBootRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	eng.Go("boot", func(p *sim.Proc) {
		v.Boot(p)
		if err := v.Boot(p); !errors.Is(err, ErrBadState) {
			t.Errorf("second boot: %v", err)
		}
	})
	eng.Run()
}

func TestBootTouchesMostMemoryAtInit(t *testing.T) {
	// "KVM obtains most of the requested memory for a VM at VM
	// initialization and not during run time" (section 5.2). RAM-backed
	// disk is preallocated too, per "the host allocates disk and RAM
	// from its own stash of RAM".
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	eng.Go("boot", func(p *sim.Proc) { v.Boot(p) })
	eng.Run()
	resident := v.ResidentBytes()
	budget := v.Config().RAMBytes + v.Config().DiskBytes
	if resident < budget*8/10 {
		t.Fatalf("resident %d < 80%% of %d RAM+disk", resident, budget)
	}
	if resident > budget {
		t.Fatalf("resident %d exceeds RAM+disk %d", resident, budget)
	}
}

func TestDirtyActiveGrowsResidentSet(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	eng.Go("boot", func(p *sim.Proc) { v.Boot(p) })
	eng.Run()
	before := v.ResidentBytes()
	if err := v.DirtyActive(); err != nil {
		t.Fatal(err)
	}
	after := v.ResidentBytes()
	if after <= before {
		t.Fatalf("resident did not grow: %d -> %d", before, after)
	}
	if after > v.Config().RAMBytes+v.Config().DiskBytes {
		t.Fatalf("resident %d exceeds RAM+disk", after)
	}
}

func TestTwoVMsShareBaseImagePages(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	a := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	b := newTestVM(t, eng, host, "anon1", guestos.RoleAnonVM)
	eng.Go("boot", func(p *sim.Proc) {
		a.Boot(p)
		b.Boot(p)
	})
	eng.Run()
	host.ScanAll()
	st := host.Stats()
	prof := guestos.MemProfileFor(guestos.RoleAnonVM)
	// All boot-shared pages plus the zero pool merge across the pair.
	wantMin := prof.BootSharedPages // each shared page pairs once
	if st.PagesShared < wantMin {
		t.Fatalf("pages shared = %d, want >= %d", st.PagesShared, wantMin)
	}
	if st.SavedBytes <= 0 {
		t.Fatal("KSM saved nothing across identical VMs")
	}
}

func TestDiskPreallocatedNotGrownByWrites(t *testing.T) {
	// The disk's host-RAM footprint is claimed at init; file writes
	// within capacity change nothing.
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	eng.Go("boot", func(p *sim.Proc) { v.Boot(p) })
	eng.Run()
	before := v.ResidentBytes()
	if before < v.Config().DiskBytes {
		t.Fatalf("resident %d below preallocated disk %d", before, v.Config().DiskBytes)
	}
	if err := v.Disk().WriteVirtual("/home/cache", 8*guestos.MiB, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := v.ResidentBytes(); got != before {
		t.Fatalf("disk write changed resident: %d -> %d", before, got)
	}
	// Logical disk usage is still tracked at the vdisk level.
	if v.Disk().Used() != 8*guestos.MiB {
		t.Fatalf("disk used = %d", v.Disk().Used())
	}
}

func TestPauseResume(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	if err := v.Pause(); !errors.Is(err, ErrBadState) {
		t.Fatalf("pause before boot: %v", err)
	}
	eng.Go("t", func(p *sim.Proc) {
		v.Boot(p)
		if err := v.Pause(); err != nil {
			t.Errorf("pause: %v", err)
		}
		if err := v.DirtyActive(); !errors.Is(err, ErrBadState) {
			t.Errorf("dirty while paused: %v", err)
		}
		if err := v.Resume(); err != nil {
			t.Errorf("resume: %v", err)
		}
	})
	eng.Run()
	if v.State() != StateRunning {
		t.Fatalf("state = %v", v.State())
	}
}

func TestShutdownErasesMemory(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	eng.Go("t", func(p *sim.Proc) {
		v.Boot(p)
		v.Disk().WriteFile("/secret", []byte("evidence"))
		if err := v.Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	eng.Run()
	if v.State() != StateStopped {
		t.Fatalf("state = %v", v.State())
	}
	if host.UsedBytes() != 0 {
		t.Fatalf("host still holds %d bytes after shutdown", host.UsedBytes())
	}
	if host.Stats().ScrubbedBytes == 0 {
		t.Fatal("no secure erase recorded")
	}
	if v.Disk().FS().Exists("/secret") {
		t.Fatal("disk evidence survived shutdown")
	}
	// The space name is free for a new VM (names recycle after wipe).
	if _, err := host.NewSpace("anon0"); err != nil {
		t.Fatalf("space not released: %v", err)
	}
}

func TestShutdownTakesTimeProportionalToResident(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	var wipe time.Duration
	eng.Go("t", func(p *sim.Proc) {
		v.Boot(p)
		start := p.Now()
		v.Shutdown(p)
		wipe = p.Now() - start
	})
	eng.Run()
	if wipe <= 0 || wipe > time.Second {
		t.Fatalf("wipe took %v", wipe)
	}
}

func TestFingerprintHomogeneous(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	a := newTestVM(t, eng, host, "a", guestos.RoleAnonVM)
	b := newTestVM(t, eng, host, "b", guestos.RoleCommVM)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("VM fingerprints differ")
	}
	if a.Fingerprint().CPUCount != 1 {
		t.Fatal("VMs must expose a single CPU")
	}
	if a.Fingerprint().Resolution != "1024x768" {
		t.Fatal("resolution must be pinned to 1024x768")
	}
}

func TestHostCapacityLimitsVMs(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(700 * guestos.MiB) // tiny host: room for one VM only
	v := newTestVM(t, eng, host, "anon0", guestos.RoleAnonVM)
	w := newTestVM(t, eng, host, "anon1", guestos.RoleAnonVM)
	var err1, err2 error
	eng.Go("t", func(p *sim.Proc) {
		err1 = v.Boot(p)
		err2 = w.Boot(p)
	})
	eng.Run()
	if err1 != nil {
		t.Fatalf("first VM failed: %v", err1)
	}
	if !errors.Is(err2, mem.ErrOutOfMemory) {
		t.Fatalf("second VM: %v, want out-of-memory", err2)
	}
}

func TestZeroRAMRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	host := mem.NewHost(0)
	_, err := New(eng, host, Config{Name: "x", Role: guestos.RoleAnonVM}, guestos.BuildBaseImage())
	if err == nil {
		t.Fatal("zero-RAM VM accepted")
	}
}

func TestDirtyStatsTrackMutations(t *testing.T) {
	eng := sim.NewEngine(9)
	host := mem.NewHost(0)
	v := newTestVM(t, eng, host, "dirty0", guestos.RoleAnonVM)
	if d := v.DirtyStats(); d.Gen != 0 {
		t.Fatalf("pre-boot gen = %d, want 0", d.Gen)
	}
	eng.Go("drive", func(p *sim.Proc) {
		if err := v.Boot(p); err != nil {
			t.Errorf("boot: %v", err)
			return
		}
		booted := v.DirtyStats()
		if booted.Gen == 0 || booted.RAMPages == 0 {
			t.Errorf("boot left no dirt: %+v", booted)
		}
		// Workload dirtying advances the generation and the page count.
		if err := v.DirtyPages(64); err != nil {
			t.Errorf("dirty: %v", err)
		}
		after := v.DirtyStats()
		if after.Gen <= booted.Gen {
			t.Errorf("gen did not advance: %d -> %d", booted.Gen, after.Gen)
		}
		if got := after.RAMPages - booted.RAMPages; got != 64 {
			t.Errorf("RAM pages dirtied = %d, want 64", got)
		}
		// A disk write of new bytes churns DiskBytes; rewriting the
		// identical content is not a mutation.
		if err := v.Disk().WriteFile("/tmp/f", []byte("abcdef")); err != nil {
			t.Errorf("write: %v", err)
		}
		wrote := v.DirtyStats()
		if wrote.DiskBytes-after.DiskBytes != 6 || wrote.Gen <= after.Gen {
			t.Errorf("disk write not tracked: %+v -> %+v", after, wrote)
		}
		if err := v.Disk().WriteFile("/tmp/f", []byte("abcdef")); err != nil {
			t.Errorf("rewrite: %v", err)
		}
		if got := v.DirtyStats(); got != wrote {
			t.Errorf("identical rewrite mutated dirty stats: %+v -> %+v", wrote, got)
		}
		// A same-length rewrite with DIFFERENT bytes changes the disk
		// image a checkpoint would export, even though the size delta
		// is zero — it must read as a mutation.
		if err := v.Disk().WriteFile("/tmp/f", []byte("ABCDEF")); err != nil {
			t.Errorf("in-place rewrite: %v", err)
		}
		inPlace := v.DirtyStats()
		if inPlace.Gen <= wrote.Gen || inPlace.DiskBytes <= wrote.DiskBytes {
			t.Errorf("same-size content rewrite not tracked: %+v -> %+v", wrote, inPlace)
		}
		// Deleting a file that lives only in a lower layer is a pure
		// whiteout: zero byte delta, but the exported image changes —
		// a crash-restore that missed it would resurrect the file.
		var lowerPath string
		topName := v.Disk().Name() + "/writable"
		for _, info := range v.Disk().FS().List("/") {
			if info.Layer != topName {
				lowerPath = info.Path
				break
			}
		}
		if lowerPath == "" {
			t.Error("test setup: no lower-layer file to remove")
			return
		}
		before := v.DirtyStats()
		if err := v.Disk().Remove(lowerPath); err != nil {
			t.Errorf("remove: %v", err)
		}
		if got := v.DirtyStats(); got.Gen <= before.Gen {
			t.Errorf("whiteout-only deletion of %s not tracked: %+v -> %+v", lowerPath, before, got)
		}
	})
	eng.Run()
}
