package anonnet

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/sim"
)

// fakeAnon is a scriptable anonymizer for chain tests.
type fakeAnon struct {
	name     string
	overhead float64
	exit     string
	startErr error
	started  bool
	stopped  bool
	state    State
	// lastReq records what Fetch saw, to verify overhead composition.
	lastReq Request
}

func (f *fakeAnon) Name() string          { return f.name }
func (f *fakeAnon) Proto() string         { return f.name }
func (f *fakeAnon) Ready() bool           { return f.started }
func (f *fakeAnon) OverheadFrac() float64 { return f.overhead }
func (f *fakeAnon) ExitIdentity() string  { return f.exit }
func (f *fakeAnon) Stop()                 { f.stopped = true; f.started = false }

func (f *fakeAnon) Start(p *sim.Proc) error {
	if f.startErr != nil {
		return f.startErr
	}
	p.Sleep(time.Second)
	f.started = true
	return nil
}

func (f *fakeAnon) Fetch(p *sim.Proc, req Request) (FetchResult, error) {
	f.lastReq = req
	return FetchResult{Sent: req.SendBytes, Received: req.RecvBytes, Elapsed: time.Second}, nil
}

func (f *fakeAnon) Resolve(p *sim.Proc, host string) (string, error) {
	return "node:" + host, nil
}

func (f *fakeAnon) ExportState() State { return f.state }
func (f *fakeAnon) ImportState(s State) {
	if f.state == nil {
		f.state = State{}
	}
	for k, v := range s {
		f.state[k] = v
	}
}

func runChain(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	eng := sim.NewEngine(1)
	eng.Go("t", fn)
	eng.Run()
}

func TestChainNameAndProto(t *testing.T) {
	c := NewChain(&fakeAnon{name: "dissent"}, &fakeAnon{name: "tor"})
	if c.Name() != "dissent+tor" {
		t.Fatalf("name = %q", c.Name())
	}
	// The host uplink observes the first stage's wire protocol.
	if c.Proto() != "dissent" {
		t.Fatalf("proto = %q", c.Proto())
	}
}

func TestChainStartsAllStagesInOrder(t *testing.T) {
	a := &fakeAnon{name: "a"}
	b := &fakeAnon{name: "b"}
	c := NewChain(a, b)
	runChain(t, func(p *sim.Proc) {
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
		}
	})
	if !a.started || !b.started || !c.Ready() {
		t.Fatal("stages not started")
	}
}

func TestChainStartFailurePropagates(t *testing.T) {
	sentinel := errors.New("boom")
	a := &fakeAnon{name: "a"}
	b := &fakeAnon{name: "b", startErr: sentinel}
	c := NewChain(a, b)
	var err error
	runChain(t, func(p *sim.Proc) { err = c.Start(p) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if c.Ready() {
		t.Fatal("chain ready despite failed stage")
	}
}

func TestChainFetchComposesOverheads(t *testing.T) {
	inner := &fakeAnon{name: "inner", overhead: 0.5}
	outer := &fakeAnon{name: "outer", overhead: 0.1}
	c := NewChain(inner, outer)
	runChain(t, func(p *sim.Proc) {
		c.Start(p)
		res, err := c.Fetch(p, Request{SiteNode: "s", SendBytes: 1000, RecvBytes: 2000})
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
		if res.Received != 3000 {
			t.Errorf("received = %d (inner stage inflates 2000 by 50%%)", res.Received)
		}
	})
	// The final stage carries the inner-inflated payload.
	if outer.lastReq.SendBytes != 1500 || outer.lastReq.RecvBytes != 3000 {
		t.Fatalf("outer saw %+v, want inner-inflated sizes", outer.lastReq)
	}
	// Total composition: (1.5)(1.1) - 1 = 65%.
	if oh := c.OverheadFrac(); oh < 0.649 || oh > 0.651 {
		t.Fatalf("composed overhead = %v", oh)
	}
}

func TestChainFetchBeforeStart(t *testing.T) {
	c := NewChain(&fakeAnon{name: "a"})
	runChain(t, func(p *sim.Proc) {
		if _, err := c.Fetch(p, Request{SiteNode: "s"}); err != ErrNotReady {
			t.Errorf("err = %v", err)
		}
	})
}

func TestChainExitIsFinalStage(t *testing.T) {
	c := NewChain(&fakeAnon{name: "a", exit: "exit-a"}, &fakeAnon{name: "b", exit: "exit-b"})
	if c.ExitIdentity() != "exit-b" {
		t.Fatalf("exit = %q", c.ExitIdentity())
	}
}

func TestChainStateRoundTripPerStage(t *testing.T) {
	a := &fakeAnon{name: "tor", state: State{"guard": "relay-1"}}
	b := &fakeAnon{name: "tor", state: State{"guard": "relay-2"}}
	c := NewChain(a, b)
	exported := c.ExportState()

	a2 := &fakeAnon{name: "tor"}
	b2 := &fakeAnon{name: "tor"}
	c2 := NewChain(a2, b2)
	c2.ImportState(exported)
	if a2.state["guard"] != "relay-1" || b2.state["guard"] != "relay-2" {
		t.Fatalf("per-stage state mixed up: %v / %v", a2.state, b2.state)
	}
}

func TestChainStopStopsEveryStage(t *testing.T) {
	a := &fakeAnon{name: "a"}
	b := &fakeAnon{name: "b"}
	c := NewChain(a, b)
	runChain(t, func(p *sim.Proc) { c.Start(p) })
	c.Stop()
	if !a.stopped || !b.stopped {
		t.Fatal("stages not stopped")
	}
}

func TestChainResolveUsesFinalStage(t *testing.T) {
	c := NewChain(&fakeAnon{name: "a"}, &fakeAnon{name: "b"})
	runChain(t, func(p *sim.Proc) {
		c.Start(p)
		node, err := c.Resolve(p, "x.com")
		if err != nil || node != "node:x.com" {
			t.Errorf("resolve = %q, %v", node, err)
		}
	})
}
