package sweet

import (
	"testing"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

type rig struct {
	eng   *sim.Engine
	net   *vnet.Network
	world *webworld.World
}

func newRig() *rig {
	eng := sim.NewEngine(71)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	return &rig{eng: eng, net: net, world: world}
}

func (r *rig) client() *Client {
	return New(r.net, "commvm", r.world.MailGateway().Name(), r.world.SweetProxy().Name(), r.world.Resolver())
}

func TestStartEstablishesTunnel(t *testing.T) {
	r := newRig()
	c := r.client()
	var dur time.Duration
	r.eng.Go("start", func(p *sim.Proc) {
		start := p.Now()
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
		}
		dur = p.Now() - start
	})
	r.eng.Run()
	if !c.Ready() {
		t.Fatal("not ready")
	}
	// Two spool delays minimum: SWEET startup is slow by nature.
	if dur < 8*time.Second {
		t.Fatalf("tunnel setup took %v, implausibly fast for email", dur)
	}
	if c.EmailsSent() < 2 {
		t.Fatalf("emails = %d", c.EmailsSent())
	}
}

func TestFetchThroughEmailTunnel(t *testing.T) {
	r := newRig()
	c := r.client()
	site, _ := r.world.Lookup("twitter.com")
	var res anonnet.FetchResult
	r.eng.Go("run", func(p *sim.Proc) {
		c.Start(p)
		var err error
		res, err = c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 1024, RecvBytes: 1 << 20})
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
	})
	r.eng.Run()
	if res.Received != 1<<20 {
		t.Fatalf("received = %d", res.Received)
	}
	// 1 MiB = 6 chunks of response email, each with a ~6s spool delay.
	if res.Elapsed < 40*time.Second {
		t.Fatalf("1 MiB fetch took only %v — spool delays missing", res.Elapsed)
	}
}

func TestCensorSeesOnlySMTP(t *testing.T) {
	r := newRig()
	c := r.client()
	var tap *vnet.Capture
	for _, ifc := range r.net.Node("commvm").Ifaces() {
		tap = ifc.Link().Tap()
	}
	site, _ := r.world.Lookup("bbc.co.uk")
	r.eng.Go("run", func(p *sim.Proc) {
		c.Start(p)
		c.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 4096})
	})
	r.eng.Run()
	if len(tap.Entries) == 0 {
		t.Fatal("no traffic captured")
	}
	for _, e := range tap.Entries {
		if e.Proto != "smtp" {
			t.Fatalf("censor saw %q, want only smtp", e.Proto)
		}
	}
	if c.Proto() != "smtp" {
		t.Fatalf("proto = %q", c.Proto())
	}
}

func TestExitIdentityIsProxy(t *testing.T) {
	r := newRig()
	c := r.client()
	if c.ExitIdentity() != r.world.SweetProxy().Name() {
		t.Fatalf("exit = %q", c.ExitIdentity())
	}
}

func TestResolveViaTunnel(t *testing.T) {
	r := newRig()
	c := r.client()
	var node string
	var err error
	r.eng.Go("run", func(p *sim.Proc) {
		c.Start(p)
		node, err = c.Resolve(p, "gmail.com")
	})
	r.eng.Run()
	want, _ := r.world.Lookup("gmail.com")
	if err != nil || node != want {
		t.Fatalf("resolve = %q, %v", node, err)
	}
}

func TestStateKeepsMailbox(t *testing.T) {
	r := newRig()
	c := r.client()
	r.eng.Go("run", func(p *sim.Proc) { c.Start(p) })
	r.eng.Run()
	st := c.ExportState()
	if st["mailbox"] == "" {
		t.Fatal("mailbox not exported")
	}
	c2 := r.client()
	c2.ImportState(st)
	if c2.mailbox != c.mailbox {
		t.Fatal("mailbox not restored")
	}
}
