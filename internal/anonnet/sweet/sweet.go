// Package sweet implements the SWEET circumvention tool ("our own
// implementation of SWEET", paper section 4.1; Houmansadr et al.,
// "Serving the Web by Exploiting Email Tunnels"): web traffic is
// tunneled inside ordinary emails between the user and a SWEET proxy,
// so a censor that permits email cannot block it without blocking
// email itself.
//
// Requests are chunked into MIME-encoded messages relayed through a
// public mail gateway; the SWEET proxy fetches the page and mails the
// response back. Latency is dominated by mail-spool delivery delays,
// making SWEET usable but slow — exactly the trade-off the pluggable
// anonymizer framework exists to offer.
package sweet

import (
	"fmt"
	"strconv"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

func init() {
	anonnet.RegisterTransport("sweet", anonnet.TransportInfo{},
		func(env anonnet.Env) (anonnet.Transport, error) {
			return New(env.Net, env.CommNode, env.World.MailGateway().Name(),
				env.World.SweetProxy().Name(), env.World.Resolver()), nil
		})
}

// Tunnel parameters.
const (
	// ChunkBytes is the payload carried per email.
	ChunkBytes = 192 << 10
	// WireOverhead is the MIME/base64 encoding cost.
	WireOverhead = 0.4
	// spoolDelay is the mean one-way mail delivery delay.
	spoolDelay = 6 * time.Second
	// mailboxSetup is the account registration cost at Start.
	mailboxSetup = 2 * time.Second
)

// Client is a SWEET endpoint inside a CommVM.
type Client struct {
	net      *vnet.Network
	commNode string
	mailGW   string // public mail exchange node
	proxy    string // SWEET proxy node (the exit servers observe)
	resolver func(string) (string, bool)
	ready    bool
	mailbox  string
	sent     int // lifetime emails sent, for tests/stats
}

// New creates a SWEET client tunneling through the mail gateway to
// the proxy.
func New(net *vnet.Network, commNode, mailGW, proxy string, resolver func(string) (string, bool)) *Client {
	return &Client{net: net, commNode: commNode, mailGW: mailGW, proxy: proxy, resolver: resolver}
}

// Name implements anonnet.Anonymizer.
func (c *Client) Name() string { return "sweet" }

// Proto implements anonnet.Anonymizer: the censor sees SMTP.
func (c *Client) Proto() string { return "smtp" }

// OverheadFrac implements anonnet.Anonymizer.
func (c *Client) OverheadFrac() float64 { return WireOverhead }

// Ready implements anonnet.Anonymizer.
func (c *Client) Ready() bool { return c.ready }

// EmailsSent returns the lifetime count of tunnel emails.
func (c *Client) EmailsSent() int { return c.sent }

// Start implements anonnet.Anonymizer: register a throwaway mailbox
// and exchange a hello with the proxy.
func (c *Client) Start(p *sim.Proc) error {
	p.Sleep(sim.Time(p.Rand().Jitter(float64(mailboxSetup), 0.2)))
	c.mailbox = fmt.Sprintf("swt-%d@mail", p.Rand().Intn(1<<30))
	if err := c.email(p, true, 2048); err != nil {
		return fmt.Errorf("sweet: hello: %w", err)
	}
	if err := c.email(p, false, 2048); err != nil {
		return fmt.Errorf("sweet: hello ack: %w", err)
	}
	c.ready = true
	return nil
}

// email delivers one tunnel message: a transfer to (or from) the mail
// gateway plus the spool delay before the recipient polls it.
func (c *Client) email(p *sim.Proc, outbound bool, payload int64) error {
	from, to := c.commNode, c.mailGW
	if !outbound {
		from, to = c.mailGW, c.commNode
	}
	fut := c.net.StartTransfer(vnet.TransferOpts{
		From: from, To: to,
		Bytes: payload, Proto: "smtp", Overhead: WireOverhead,
	})
	if _, err := sim.Await(p, fut); err != nil {
		return err
	}
	c.sent++
	p.Sleep(sim.Time(p.Rand().Jitter(float64(spoolDelay), 0.3)))
	return nil
}

// Fetch implements anonnet.Anonymizer: chunk the request out, let the
// proxy fetch the page, and chunk the response back.
func (c *Client) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if !c.ready {
		return anonnet.FetchResult{}, anonnet.ErrNotReady
	}
	if req.SiteNode == "" {
		return anonnet.FetchResult{}, anonnet.ErrBadRequest
	}
	start := p.Now()
	for sent := int64(0); ; sent += ChunkBytes {
		n := req.SendBytes - sent
		if n <= 0 && sent > 0 {
			break
		}
		if n > ChunkBytes {
			n = ChunkBytes
		}
		if n < 512 {
			n = 512
		}
		if err := c.email(p, true, n); err != nil {
			return anonnet.FetchResult{}, err
		}
		if sent+ChunkBytes >= req.SendBytes {
			break
		}
	}
	// Proxy-side fetch (server network, fast).
	fut := c.net.StartTransfer(vnet.TransferOpts{
		From: req.SiteNode, To: c.proxy, Bytes: maxI64(req.RecvBytes, 512), Proto: "http",
	})
	if _, err := sim.Await(p, fut); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("sweet: proxy fetch: %w", err)
	}
	for recvd := int64(0); ; recvd += ChunkBytes {
		n := req.RecvBytes - recvd
		if n <= 0 && recvd > 0 {
			break
		}
		if n > ChunkBytes {
			n = ChunkBytes
		}
		if n < 512 {
			n = 512
		}
		if err := c.email(p, false, n); err != nil {
			return anonnet.FetchResult{}, err
		}
		if recvd+ChunkBytes >= req.RecvBytes {
			break
		}
	}
	return anonnet.FetchResult{Sent: req.SendBytes, Received: req.RecvBytes, Elapsed: p.Now() - start}, nil
}

// Resolve implements anonnet.Anonymizer: one email round trip to the
// proxy's resolver.
func (c *Client) Resolve(p *sim.Proc, host string) (string, error) {
	if !c.ready {
		return "", anonnet.ErrNotReady
	}
	if err := c.email(p, true, 512); err != nil {
		return "", err
	}
	if err := c.email(p, false, 512); err != nil {
		return "", err
	}
	node, ok := c.resolver(host)
	if !ok {
		return "", fmt.Errorf("%w: %s", anonnet.ErrResolve, host)
	}
	return node, nil
}

// ExitIdentity implements anonnet.Anonymizer: servers observe the
// SWEET proxy.
func (c *Client) ExitIdentity() string { return c.proxy }

// ExportState implements anonnet.Anonymizer: the mailbox persists so
// a restored nym keeps its tunnel endpoint.
func (c *Client) ExportState() anonnet.State {
	st := anonnet.State{"emails": strconv.Itoa(c.sent)}
	if c.mailbox != "" {
		st["mailbox"] = c.mailbox
	}
	return st
}

// ImportState implements anonnet.Anonymizer.
func (c *Client) ImportState(st anonnet.State) {
	if mb, ok := st["mailbox"]; ok {
		c.mailbox = mb
	}
}

// Stop implements anonnet.Anonymizer.
func (c *Client) Stop() { c.ready = false }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ anonnet.Anonymizer = (*Client)(nil)
