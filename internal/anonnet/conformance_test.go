package anonnet_test

import (
	"errors"
	"testing"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"

	_ "nymix/internal/anonnet/dissent"
	_ "nymix/internal/anonnet/incognito"
	_ "nymix/internal/anonnet/mixnet"
	_ "nymix/internal/anonnet/sweet"
	_ "nymix/internal/anonnet/tor"
)

// The cross-backend conformance suite: every registered transport —
// tor, tor-bridge, dissent, sweet, incognito, mixnet — is driven
// through the same table of Transport-contract assertions. Backend
// packages keep their mechanism-specific tests (guard selection, DC-net
// blame, SMTP camouflage, cover-traffic pacing); the shared lifecycle
// contract lives only here.

// conformanceEnv attaches a bare CommVM-like node and a host node to
// the default world, the way a nymbox's hypervisor wiring would.
func conformanceEnv(seed uint64) (*sim.Engine, anonnet.Env) {
	eng := sim.NewEngine(seed)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	host := net.AddNode("hostbox")
	net.Connect(host, world.Gateway(), webworld.UplinkConfig)
	return eng, anonnet.Env{Net: net, World: world, CommNode: "commvm", HostNode: "hostbox"}
}

func TestTransportKindsComplete(t *testing.T) {
	want := map[string]bool{
		"tor": true, "tor-bridge": true, "dissent": true,
		"sweet": true, "incognito": true, "mixnet": true,
	}
	kinds := anonnet.TransportKinds()
	if len(kinds) != len(want) {
		t.Fatalf("registered kinds = %v, want %d backends", kinds, len(want))
	}
	for _, k := range kinds {
		if !want[k] {
			t.Fatalf("unexpected transport kind %q", k)
		}
	}
}

func TestUnknownTransportTyped(t *testing.T) {
	_, env := conformanceEnv(1)
	_, err := anonnet.NewTransport("warp-drive", env)
	if err == nil {
		t.Fatal("unknown transport built")
	}
	if !nymerr.HasCode(err, anonnet.CodeUnknownTransport) {
		t.Fatalf("err = %v, want %s", err, anonnet.CodeUnknownTransport)
	}
}

func TestIdleWireRates(t *testing.T) {
	if r := anonnet.IdleWireRate("mixnet"); r <= 0 {
		t.Fatalf("mixnet idle wire rate = %v, want > 0 (cover traffic is load-bearing)", r)
	}
	for _, kind := range []string{"tor", "tor-bridge", "dissent", "sweet", "incognito"} {
		if r := anonnet.IdleWireRate(kind); r != 0 {
			t.Fatalf("%s idle wire rate = %v, want 0 (demand-driven)", kind, r)
		}
	}
}

// TestTransportConformance drives every backend through the shared
// Transport lifecycle contract.
func TestTransportConformance(t *testing.T) {
	for _, kind := range anonnet.TransportKinds() {
		t.Run(kind, func(t *testing.T) {
			eng, env := conformanceEnv(7)
			tr, err := anonnet.NewTransport(kind, env)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if tr.Name() == "" || tr.Proto() == "" {
				t.Fatalf("empty identity: name=%q proto=%q", tr.Name(), tr.Proto())
			}
			if tr.OverheadFrac() < 0 {
				t.Fatalf("negative overhead %v", tr.OverheadFrac())
			}
			if tr.Ready() {
				t.Fatal("ready before Start")
			}

			site, ok := env.World.Lookup("twitter.com")
			if !ok {
				t.Fatal("no twitter.com in world")
			}
			eng.Go("conformance", func(p *sim.Proc) {
				defer tr.Stop()

				// Fetch before Start fails typed, not by panic or hang.
				if _, err := tr.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 1}); !errors.Is(err, anonnet.ErrNotReady) {
					t.Errorf("fetch before start: %v, want ErrNotReady", err)
				} else if !nymerr.HasCode(err, anonnet.CodeNotReady) {
					t.Errorf("fetch before start not coded: %v", err)
				}

				if err := tr.Start(p); err != nil {
					t.Errorf("start: %v", err)
					return
				}
				if !tr.Ready() {
					t.Error("not ready after Start")
				}

				// A fetch moves the requested bytes.
				res, err := tr.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 2048, RecvBytes: 256 << 10})
				if err != nil {
					t.Errorf("fetch: %v", err)
				} else if res.Received != 256<<10 {
					t.Errorf("received %d bytes, want %d", res.Received, 256<<10)
				}

				// A request without a destination is a bad request.
				if _, err := tr.Fetch(p, anonnet.Request{RecvBytes: 1}); !errors.Is(err, anonnet.ErrBadRequest) {
					t.Errorf("empty-site fetch: %v, want ErrBadRequest", err)
				}

				// Resolution works through the transport, and misses are
				// typed.
				node, err := tr.Resolve(p, "facebook.com")
				if err != nil {
					t.Errorf("resolve: %v", err)
				} else if want, _ := env.World.Lookup("facebook.com"); node != want {
					t.Errorf("resolved %q, want %q", node, want)
				}
				if _, err := tr.Resolve(p, "no-such-host.example"); !nymerr.HasCode(err, anonnet.CodeResolve) {
					t.Errorf("bogus resolve: %v, want %s", err, anonnet.CodeResolve)
				}

				// The site must never see the client's own identity.
				exit := tr.ExitIdentity()
				if exit == "" {
					t.Error("no exit identity while ready")
				}
				if exit == env.CommNode {
					t.Errorf("exit identity %q is the client itself", exit)
				}

				// Durable state survives an export/import round trip into
				// a fresh instance.
				warm, err := anonnet.NewTransport(kind, env)
				if err != nil {
					t.Errorf("rebuild: %v", err)
					return
				}
				defer warm.Stop()
				warm.ImportState(tr.ExportState())
				if err := warm.Start(p); err != nil {
					t.Errorf("warm start after import: %v", err)
				} else if !warm.Ready() {
					t.Error("warm instance not ready")
				}

				// Stop tears the session down and fetches fail typed again.
				tr.Stop()
				if tr.Ready() {
					t.Error("ready after Stop")
				}
				if _, err := tr.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 1}); !errors.Is(err, anonnet.ErrNotReady) {
					t.Errorf("fetch after stop: %v, want ErrNotReady", err)
				}
			})
			eng.Run()
		})
	}
}

// TestTransportChainability composes every backend as the first hop of
// a two-stage chain and checks the chain contract holds end to end.
func TestTransportChainability(t *testing.T) {
	for _, kind := range anonnet.TransportKinds() {
		t.Run(kind, func(t *testing.T) {
			eng, env := conformanceEnv(13)
			first, err := anonnet.NewTransport(kind, env)
			if err != nil {
				t.Fatalf("build %s: %v", kind, err)
			}
			last, err := anonnet.NewTransport("incognito", env)
			if err != nil {
				t.Fatalf("build incognito: %v", err)
			}
			chain := anonnet.NewChain(first, last)
			site, _ := env.World.Lookup("bbc.co.uk")
			eng.Go("chain", func(p *sim.Proc) {
				defer chain.Stop()
				if err := chain.Start(p); err != nil {
					t.Errorf("chain start: %v", err)
					return
				}
				if !chain.Ready() {
					t.Error("chain not ready")
				}
				if _, err := chain.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 512, RecvBytes: 64 << 10}); err != nil {
					t.Errorf("chain fetch: %v", err)
				}
				if got := chain.ExitIdentity(); got != last.ExitIdentity() {
					t.Errorf("chain exit %q, want final stage %q", got, last.ExitIdentity())
				}
				if chain.OverheadFrac() < first.OverheadFrac() {
					t.Errorf("chain overhead %v below first stage %v", chain.OverheadFrac(), first.OverheadFrac())
				}
				chain.Stop()
				if chain.Ready() {
					t.Error("chain ready after Stop")
				}
			})
			eng.Run()
		})
	}
}

// TestLegacySentinelsKeepErrorsIs pins the nymerr migration: code that
// compared against the old errors.New sentinels via errors.Is keeps
// working, and the sentinels now classify.
func TestLegacySentinelsKeepErrorsIs(t *testing.T) {
	cases := []struct {
		sentinel error
		code     nymerr.Code
	}{
		{anonnet.ErrNotReady, anonnet.CodeNotReady},
		{anonnet.ErrNoExit, anonnet.CodeNoExit},
		{anonnet.ErrResolve, anonnet.CodeResolve},
		{anonnet.ErrBadRequest, anonnet.CodeBadRequest},
		{anonnet.ErrBadFrame, anonnet.CodeBadFrame},
	}
	for _, c := range cases {
		wrapped := nymerr.Wrap(vnet.CodePartitioned, c.sentinel, "outer context")
		if !errors.Is(wrapped, c.sentinel) {
			t.Errorf("errors.Is lost through wrap for %v", c.sentinel)
		}
		if !nymerr.HasCode(c.sentinel, c.code) {
			t.Errorf("%v does not carry %s", c.sentinel, c.code)
		}
		if nymerr.Classify(wrapped) != vnet.CodePartitioned {
			t.Errorf("outermost code not preserved: %v", nymerr.Classify(wrapped))
		}
	}
}
