// Package incognito implements Nymix's lightweight incognito mode: an
// iptables-MASQUERADE NAT relay in the CommVM (paper section 4.1).
// It imposes minimal overhead but provides no network-level
// anonymity: servers observe the user's NAT'd public address, and DNS
// queries go straight to the ISP resolver — both deliberately modeled
// so the tracker experiments can show the difference.
package incognito

import (
	"fmt"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

func init() {
	anonnet.RegisterTransport("incognito", anonnet.TransportInfo{},
		func(env anonnet.Env) (anonnet.Transport, error) {
			return New(env.Net, env.CommNode, env.HostNode,
				env.World.ISPDNS().Name(), env.World.Resolver()), nil
		})
}

// WireOverhead is the NAT path's negligible overhead.
const WireOverhead = 0.02

// setupTime is the iptables configuration cost.
const setupTime = 300 * time.Millisecond

// Relay is the incognito-mode relay.
type Relay struct {
	net      *vnet.Network
	commNode string
	hostNode string // the masquerading host whose address servers see
	dnsNode  string // the ISP resolver the direct DNS path leaks to
	resolver func(string) (string, bool)
	ready    bool
	// DNSQueries records every name leaked to the ISP resolver.
	DNSQueries []string
}

// New creates an incognito relay for the CommVM at commNode. hostNode
// is the Nymix host (the NAT identity servers observe); dnsNode is the
// ISP resolver.
func New(net *vnet.Network, commNode, hostNode, dnsNode string, resolver func(string) (string, bool)) *Relay {
	return &Relay{
		net:      net,
		commNode: commNode,
		hostNode: hostNode,
		dnsNode:  dnsNode,
		resolver: resolver,
	}
}

// Name implements anonnet.Anonymizer.
func (r *Relay) Name() string { return "incognito" }

// Proto implements anonnet.Anonymizer.
func (r *Relay) Proto() string { return "incognito" }

// OverheadFrac implements anonnet.Anonymizer.
func (r *Relay) OverheadFrac() float64 { return WireOverhead }

// Ready implements anonnet.Anonymizer.
func (r *Relay) Ready() bool { return r.ready }

// Start implements anonnet.Anonymizer: just the iptables setup.
func (r *Relay) Start(p *sim.Proc) error {
	p.Sleep(sim.Time(p.Rand().Jitter(float64(setupTime), 0.2)))
	r.ready = true
	return nil
}

// Fetch implements anonnet.Anonymizer: a direct NAT'd exchange.
func (r *Relay) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if !r.ready {
		return anonnet.FetchResult{}, anonnet.ErrNotReady
	}
	if req.SiteNode == "" {
		return anonnet.FetchResult{}, anonnet.ErrBadRequest
	}
	start := p.Now()
	up := r.net.StartTransfer(vnet.TransferOpts{
		From: r.commNode, To: req.SiteNode,
		Bytes: maxI64(req.SendBytes, 256), Proto: "incognito", Overhead: WireOverhead,
	})
	if _, err := sim.Await(p, up); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("incognito: upstream: %w", err)
	}
	if req.RecvBytes > 0 {
		down := r.net.StartTransfer(vnet.TransferOpts{
			From: req.SiteNode, To: r.commNode,
			Bytes: req.RecvBytes, Proto: "incognito", Overhead: WireOverhead,
			NoHandshake: true,
		})
		if _, err := sim.Await(p, down); err != nil {
			return anonnet.FetchResult{}, fmt.Errorf("incognito: downstream: %w", err)
		}
	}
	return anonnet.FetchResult{Sent: req.SendBytes, Received: req.RecvBytes, Elapsed: p.Now() - start}, nil
}

// Resolve implements anonnet.Anonymizer — by asking the ISP resolver
// directly over UDP. The query is visible to (and recorded by) the
// resolver: the tracking exposure that separates incognito mode from
// Tor.
func (r *Relay) Resolve(p *sim.Proc, host string) (string, error) {
	if !r.ready {
		return "", anonnet.ErrNotReady
	}
	q := r.net.StartTransfer(vnet.TransferOpts{
		From: r.commNode, To: r.dnsNode,
		Bytes: 64, Proto: "dns", NoHandshake: true,
	})
	if _, err := sim.Await(p, q); err != nil {
		return "", fmt.Errorf("incognito: dns: %w", err)
	}
	r.DNSQueries = append(r.DNSQueries, host)
	node, ok := r.resolver(host)
	if !ok {
		return "", fmt.Errorf("%w: %s", anonnet.ErrResolve, host)
	}
	return node, nil
}

// ExitIdentity implements anonnet.Anonymizer: the NAT'd host address —
// i.e., the user's own public IP. No anonymity.
func (r *Relay) ExitIdentity() string { return r.hostNode }

// ExportState implements anonnet.Anonymizer (nothing worth keeping).
func (r *Relay) ExportState() anonnet.State { return anonnet.State{} }

// ImportState implements anonnet.Anonymizer.
func (r *Relay) ImportState(anonnet.State) {}

// Stop implements anonnet.Anonymizer.
func (r *Relay) Stop() { r.ready = false }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ anonnet.Anonymizer = (*Relay)(nil)
