package incognito

import (
	"testing"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

type rig struct {
	eng   *sim.Engine
	net   *vnet.Network
	world *webworld.World
}

func newRig() *rig {
	eng := sim.NewEngine(23)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	return &rig{eng: eng, net: net, world: world}
}

func (r *rig) relay() *Relay {
	return New(r.net, "commvm", "host", r.world.ISPDNS().Name(), r.world.Resolver())
}

func TestStartIsFast(t *testing.T) {
	r := newRig()
	rel := r.relay()
	var dur time.Duration
	r.eng.Go("start", func(p *sim.Proc) {
		start := p.Now()
		if err := rel.Start(p); err != nil {
			t.Errorf("start: %v", err)
		}
		dur = p.Now() - start
	})
	r.eng.Run()
	if !rel.Ready() {
		t.Fatal("not ready")
	}
	if dur > time.Second {
		t.Fatalf("incognito start took %v, should be sub-second", dur)
	}
}

func TestFetchDirect(t *testing.T) {
	r := newRig()
	rel := r.relay()
	site, _ := r.world.Lookup("bbc.co.uk")
	var res anonnet.FetchResult
	var err error
	r.eng.Go("run", func(p *sim.Proc) {
		rel.Start(p)
		res, err = rel.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 512, RecvBytes: 1 << 20})
	})
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// ~1 MiB over 1.25 MB/s with 2% overhead: under 1.5 seconds.
	if res.Elapsed > 1500*time.Millisecond {
		t.Fatalf("fetch took %v", res.Elapsed)
	}
}

func TestExitIdentityIsHost(t *testing.T) {
	// No network anonymity: servers see the user's NAT address.
	r := newRig()
	rel := r.relay()
	if rel.ExitIdentity() != "host" {
		t.Fatalf("exit = %q", rel.ExitIdentity())
	}
}

func TestDNSLeaksToISPResolver(t *testing.T) {
	r := newRig()
	rel := r.relay()
	var node string
	var err error
	r.eng.Go("run", func(p *sim.Proc) {
		rel.Start(p)
		node, err = rel.Resolve(p, "facebook.com")
	})
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.world.Lookup("facebook.com")
	if node != want {
		t.Fatalf("resolved %q", node)
	}
	if len(rel.DNSQueries) != 1 || rel.DNSQueries[0] != "facebook.com" {
		t.Fatalf("ISP resolver log = %v, want the leaked query", rel.DNSQueries)
	}
}

func TestMinimalOverheadVersusTor(t *testing.T) {
	if WireOverhead >= 0.12 {
		t.Fatal("incognito overhead should be well under Tor's 12%")
	}
}

func TestStateExportEmpty(t *testing.T) {
	r := newRig()
	rel := r.relay()
	if len(rel.ExportState()) != 0 {
		t.Fatal("incognito should have no persistent state")
	}
	rel.ImportState(anonnet.State{"junk": "x"}) // must not panic
}
