package mixnet

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// coverRig builds a world with one mixnet client behind its own uplink
// and a wire tap on the client side of that uplink, the vantage point
// of an observer at the user's ISP.
func coverRig(seed uint64) (*sim.Engine, *vnet.Network, *webworld.World, *Client, *vnet.Link, *vnet.WireTap) {
	eng := sim.NewEngine(seed)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	link := net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	tap := link.NICFor(comm).WireTap()
	c := New(net, "commvm", world.MixCascade(), world.Resolver())
	return eng, net, world, c, link, tap
}

// coverSamples runs one rig to quiescence, sampling the uplink tap's
// transmitted bytes at the given absolute sim times. The workload
// callback drives whatever browsing the scenario wants between Start
// and stopAt; an idle scenario passes nil.
func coverSamples(t *testing.T, seed uint64, sampleAt []time.Duration, stopAt time.Duration,
	workload func(*sim.Proc, *Client)) ([]int64, *Client, *vnet.Link, *vnet.WireTap) {
	t.Helper()
	eng, _, _, c, link, tap := coverRig(seed)
	samples := make([]int64, len(sampleAt))
	for i, at := range sampleAt {
		i, at := i, at
		eng.ScheduleAt(sim.Time(at), func() { samples[i] = tap.TxBytes() })
	}
	eng.Go("drive", func(p *sim.Proc) {
		defer c.Stop()
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if workload != nil {
			workload(p, c)
		}
		if rem := sim.Time(stopAt) - p.Now(); rem > 0 {
			p.Sleep(rem)
		}
	})
	eng.Run()
	return samples, c, link, tap
}

// TestCoverRateConstantProperty pins the mixnet's defining invariant:
// the uplink transmit rate a wire observer measures is the same
// whether the user is browsing hard or doing nothing, to within one
// packet quantum. Two rigs share a seed — so bootstrap lands the cover
// clock on the identical tick grid — and only one of them browses.
// Payload frames displace cover frames one-for-one on that grid, so
// every observation window must contain the same byte count.
func TestCoverRateConstantProperty(t *testing.T) {
	const seed = 41
	sampleAt := []time.Duration{20 * time.Second, 50 * time.Second, 80 * time.Second}
	const stopAt = 90 * time.Second

	idle, _, _, _ := coverSamples(t, seed, sampleAt, stopAt, nil)
	busy, c, link, tap := coverSamples(t, seed, sampleAt, stopAt, func(p *sim.Proc, c *Client) {
		sites := []string{"bbc.co.uk", "espn.com", "slashdot.org", "twitter.com"}
		for i := 0; i < 6; i++ {
			site := sites[i%len(sites)]
			node, err := c.Resolve(p, site)
			if err != nil {
				t.Errorf("resolve %s: %v", site, err)
				return
			}
			req := anonnet.Request{
				SiteNode:  node,
				SendBytes: int64(p.Rand().Float64() * (8 << 10)),
				RecvBytes: int64(p.Rand().Float64() * (128 << 10)),
			}
			if _, err := c.Fetch(p, req); err != nil {
				t.Errorf("fetch %s: %v", site, err)
				return
			}
			p.Sleep(sim.Time(p.Rand().Float64() * float64(5*time.Second)))
		}
	})

	if c.PayloadFrames() == 0 {
		t.Fatal("busy run sent no payload frames; the property is vacuous")
	}
	for w := 1; w < len(sampleAt); w++ {
		idleDelta := idle[w] - idle[w-1]
		busyDelta := busy[w] - busy[w-1]
		if diff := absI64(idleDelta - busyDelta); diff > PacketSize {
			t.Errorf("window %d: idle tx %d vs busy tx %d bytes, differ by %d > one packet quantum",
				w, idleDelta, busyDelta, diff)
		}
		if idleDelta == 0 {
			t.Errorf("window %d: no cover traffic flowed at all", w)
		}
	}

	// The same runs reconcile to the byte once the engine drains: the
	// client's own completed-frame counters are exactly what the tap
	// saw leave the NIC, and the link's double-entry ledger agrees with
	// its wire total.
	if got, want := tap.TxBytes(), c.CoverWireBytes()+c.PayloadWireBytes(); got != want {
		t.Errorf("tap tx %d bytes != cover %d + payload %d", got, c.CoverWireBytes(), c.PayloadWireBytes())
	}
	if w, l := link.WireBytesTotal(), link.LedgerBytesTotal(); absI64(w-l) > 1 {
		t.Errorf("uplink wire total %d disagrees with ledger %d", w, l)
	}
	if c.CoverDrops() != 0 {
		t.Errorf("cover drops %d on a healthy fabric", c.CoverDrops())
	}
}

// TestWireReconcilesAcrossSeeds fuzzes the reconciliation identity over
// randomized workloads: whatever mix of fetches, resolves, and idle
// gaps runs, total wire == cover + padded payload to the byte, and
// every frame is a whole packet quantum.
func TestWireReconcilesAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		eng, _, world, c, link, tap := coverRig(seed)
		eng.Go("workload", func(p *sim.Proc) {
			defer c.Stop()
			if err := c.Start(p); err != nil {
				t.Errorf("seed %d: start: %v", seed, err)
				return
			}
			r := p.Rand()
			rounds := 2 + int(r.Float64()*4)
			for i := 0; i < rounds; i++ {
				site, _ := world.Lookup("bbc.co.uk")
				req := anonnet.Request{
					SiteNode:  site,
					SendBytes: int64(r.Float64() * (16 << 10)),
					RecvBytes: int64(r.Float64() * (64 << 10)),
				}
				if _, err := c.Fetch(p, req); err != nil {
					t.Errorf("seed %d: fetch: %v", seed, err)
					return
				}
				p.Sleep(sim.Time(r.Float64() * float64(10*time.Second)))
			}
		})
		eng.Run()

		if got, want := tap.TxBytes(), c.CoverWireBytes()+c.PayloadWireBytes(); got != want {
			t.Errorf("seed %d: tap tx %d != cover %d + payload %d",
				seed, got, c.CoverWireBytes(), c.PayloadWireBytes())
		}
		if c.CoverWireBytes() != c.CoverPackets()*PacketSize {
			t.Errorf("seed %d: cover wire %d is not %d whole packets",
				seed, c.CoverWireBytes(), c.CoverPackets())
		}
		if c.PayloadWireBytes() != c.PayloadFrames()*PacketSize {
			t.Errorf("seed %d: payload wire %d is not %d whole packets",
				seed, c.PayloadWireBytes(), c.PayloadFrames())
		}
		if w, l := link.WireBytesTotal(), link.LedgerBytesTotal(); absI64(w-l) > 1 {
			t.Errorf("seed %d: wire total %d disagrees with ledger %d", seed, w, l)
		}
	}
}

// TestCascadeTooShort: a cascade below the minimum hop count must not
// come up — there is no anonymity in a one-hop "mixnet".
func TestCascadeTooShort(t *testing.T) {
	eng, net, world, _, _, _ := coverRig(5)
	c := New(net, "commvm", world.MixCascade()[:2], world.Resolver())
	eng.Go("short", func(p *sim.Proc) {
		err := c.Start(p)
		if err == nil {
			c.Stop()
			t.Error("two-hop cascade started")
			return
		}
		if !nymerr.HasCode(err, anonnet.CodeNoExit) {
			t.Errorf("err = %v, want %s", err, anonnet.CodeNoExit)
		}
	})
	eng.Run()
}

// TestStopFailsQueuedFrames: Stop must complete queued payload frames
// with a typed error so no Fetch blocks forever on a dead cover clock.
func TestStopFailsQueuedFrames(t *testing.T) {
	eng, _, world, c, _, _ := coverRig(7)
	// A glacial cover clock guarantees the frame is still queued when
	// Stop lands.
	c.SetCoverInterval(time.Hour)
	site, _ := world.Lookup("bbc.co.uk")
	eng.Go("fetcher", func(p *sim.Proc) {
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		_, err := c.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 1 << 10})
		if !errors.Is(err, anonnet.ErrNotReady) {
			t.Errorf("queued fetch after stop: %v, want ErrNotReady", err)
		}
	})
	eng.Go("stopper", func(p *sim.Proc) {
		p.Sleep(10 * time.Second)
		c.Stop()
	})
	eng.Run()
}

// TestTunablesClampInvalid: non-positive overrides are ignored rather
// than wedging the cover clock.
func TestTunablesClampInvalid(t *testing.T) {
	_, net, world, _, _, _ := coverRig(9)
	c := New(net, "commvm", world.MixCascade(), world.Resolver())
	c.SetCoverInterval(0)
	if c.CoverInterval() != DefaultCoverInterval {
		t.Errorf("zero interval accepted: %v", c.CoverInterval())
	}
	c.SetCoverInterval(time.Second)
	if c.CoverInterval() != time.Second {
		t.Errorf("interval override lost: %v", c.CoverInterval())
	}
	c.SetHopDelayMean(-time.Second)
	if c.hopDelayMean != DefaultHopDelayMean {
		t.Errorf("negative hop delay accepted: %v", c.hopDelayMean)
	}
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestClientSurface covers the registry factory and the small
// Transport-surface accessors in-package (the cross-backend
// conformance suite drives them from outside).
func TestClientSurface(t *testing.T) {
	eng, net, world, c, _, _ := coverRig(11)
	if c.Name() != "mixnet" || c.Proto() != Proto {
		t.Fatalf("identity = %q/%q", c.Name(), c.Proto())
	}
	if c.OverheadFrac() != NominalOverhead {
		t.Fatalf("overhead = %v", c.OverheadFrac())
	}
	if got := c.Cascade(); len(got) != cascadeHops || c.ExitIdentity() != got[len(got)-1] {
		t.Fatalf("cascade %v, exit %q", got, c.ExitIdentity())
	}
	if bare := New(net, "commvm", nil, world.Resolver()); bare.ExitIdentity() != "" {
		t.Fatalf("empty cascade has exit %q", bare.ExitIdentity())
	}
	c.SetHopDelayMean(10 * time.Millisecond)

	tr, err := anonnet.NewTransport("mixnet", anonnet.Env{Net: net, World: world, CommNode: "commvm"})
	if err != nil {
		t.Fatalf("registry build: %v", err)
	}
	eng.Go("surface", func(p *sim.Proc) {
		defer c.Stop()
		defer tr.Stop()
		if c.Ready() {
			t.Error("ready before Start")
		}
		if _, err := c.Resolve(p, "bbc.co.uk"); !errors.Is(err, anonnet.ErrNotReady) {
			t.Errorf("resolve before start: %v", err)
		}
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if !c.Ready() {
			t.Error("not ready after Start")
		}
		if _, err := c.Fetch(p, anonnet.Request{}); !errors.Is(err, anonnet.ErrBadRequest) {
			t.Errorf("empty-site fetch: %v", err)
		}
		if _, err := c.Resolve(p, "no-such-host.example"); !nymerr.HasCode(err, anonnet.CodeResolve) {
			t.Errorf("bogus resolve: %v", err)
		}
		node, err := c.Resolve(p, "bbc.co.uk")
		if err != nil {
			t.Errorf("resolve: %v", err)
		} else if want, _ := world.Lookup("bbc.co.uk"); node != want {
			t.Errorf("resolved %q, want %q", node, want)
		}

		// Durable state: the cascade choice and directory freshness
		// survive into a fresh client, which then starts without
		// re-fetching the directory.
		st := c.ExportState()
		if st["directory"] != "cached" {
			t.Errorf("directory not cached in state: %v", st)
		}
		warm := New(net, "commvm", nil, world.Resolver())
		warm.ImportState(st)
		if got := warm.Cascade(); len(got) != cascadeHops {
			t.Errorf("cascade did not survive import: %v", got)
		}
		before := p.Now()
		if err := warm.Start(p); err != nil {
			t.Errorf("warm start: %v", err)
		}
		warm.Stop()
		if took := p.Now() - before; took != 0 {
			t.Errorf("warm start re-bootstrapped (%v)", took)
		}
	})
	eng.Run()
}

// TestPartitionDropsCoverAndFailsFetchTyped: when the cascade enclave
// is cut off, cover frames count as drops (the wire rate is the one
// thing the client cannot keep constant through a partition) and an
// in-flight fetch fails with vnet.partitioned in its chain.
func TestPartitionDropsCoverAndFailsFetchTyped(t *testing.T) {
	eng, net, world, c, _, _ := coverRig(13)
	eng.Go("partition", func(p *sim.Proc) {
		defer c.Stop()
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		p.Sleep(2 * time.Second)
		net.SeverRegions(webworld.CoreRegion, webworld.MixRegion)
		// Severed routes are silent drops: the failure surfaces only
		// after the fabric's probe timeout, so give the window a few
		// ticks past it.
		p.Sleep(8 * time.Second)
		if c.CoverDrops() == 0 {
			t.Error("no cover drops while the cascade is dark")
		}
		site, _ := world.Lookup("bbc.co.uk")
		_, err := c.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 4 << 10})
		if err == nil {
			t.Error("fetch crossed a severed cascade")
			return
		}
		if !nymerr.HasCode(err, vnet.CodePartitioned) {
			t.Errorf("fetch failure chain lacks %s: %v", vnet.CodePartitioned, err)
		}
	})
	eng.Run()
}
