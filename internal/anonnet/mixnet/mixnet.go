// Package mixnet implements a Nym-style mix-network transport for the
// CommVM: a SOCKS-fronted client that frames every request into
// Sphinx-style fixed-size packets, forwards them through a three-hop
// mix cascade whose hops each impose an exponentially distributed mix
// delay, and — the part that distinguishes it from every other
// transport — keeps transmitting fixed-size cover packets at a
// constant rate for as long as the client is up. A wire observer at
// the uplink sees an unvarying packet stream whether the user is
// browsing or idle, which is exactly what defeats traffic-volume
// correlation and exactly what makes anonymity cost uplink bytes
// around the clock. Fleet wire admission reserves against that idle
// rate (IdleWireRate), and the MixnetFrontier experiment measures the
// resulting anonymity-vs-cost trade.
package mixnet

import (
	"fmt"
	"math"
	"strings"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

// Proto is the wire-protocol label mixnet flows carry; DPI engines
// classify on it.
const Proto = "mixnet"

// Defaults. CoverInterval fixes the client's observable uplink rate
// at PacketSize/CoverInterval bytes per second; HopDelayMean is the
// mean of each hop's exponential mix delay.
const (
	DefaultCoverInterval = 250 * time.Millisecond
	DefaultHopDelayMean  = 50 * time.Millisecond
	// NominalOverhead is the padding-only overhead figure used for
	// chain composition; the true wire cost is dominated by cover
	// traffic and is time-based, not per-byte.
	NominalOverhead = 0.25
	// directoryBytes is the cascade directory fetched at bootstrap.
	directoryBytes = 96 << 10
	// bootstrapSettle covers key derivation and the directory parse.
	bootstrapSettle = 1500 * time.Millisecond
	// cascadeHops is the required cascade length.
	cascadeHops = 3
)

// IdleWireRate is the uplink bytes/second a mixnet client transmits
// even when idle, at the default cover interval.
var IdleWireRate = float64(PacketSize) / DefaultCoverInterval.Seconds()

func init() {
	anonnet.RegisterTransport("mixnet", anonnet.TransportInfo{IdleWireRate: IdleWireRate},
		func(env anonnet.Env) (anonnet.Transport, error) {
			return New(env.Net, env.CommNode, env.World.MixCascade(), env.World.Resolver()), nil
		})
}

// pendingFrame is one queued payload frame awaiting its cover-clock
// slot.
type pendingFrame struct {
	done *sim.Future[struct{}]
}

// Client is one mixnet instance inside a CommVM.
type Client struct {
	net      *vnet.Network
	eng      *sim.Engine
	commNode string
	cascade  []string // entry, middle(s), exit
	resolver func(string) (string, bool)

	coverInterval time.Duration
	hopDelayMean  time.Duration

	ready  bool
	hasDir bool
	timer  *sim.Timer
	sendQ  []*pendingFrame

	// Wire accounting, split so the cover-traffic property test can
	// reconcile the NIC tap to the byte: wire counters credit only
	// transfers that completed, matching what the tap settled.
	coverSent   int64 // cover frames transmitted (attempts)
	coverWire   int64 // wire bytes of completed cover frames
	coverDrops  int64 // cover frames lost to fabric faults
	payloadSent int64 // payload frames transmitted (attempts)
	payloadWire int64 // wire bytes of completed payload frames
}

// New creates a mixnet client for the CommVM at commNode over the
// given cascade (entry first, exit last).
func New(net *vnet.Network, commNode string, cascade []string, resolver func(string) (string, bool)) *Client {
	return &Client{
		net:           net,
		eng:           net.Engine(),
		commNode:      commNode,
		cascade:       append([]string(nil), cascade...),
		resolver:      resolver,
		coverInterval: DefaultCoverInterval,
		hopDelayMean:  DefaultHopDelayMean,
	}
}

// SetCoverInterval overrides the cover clock (tests compress it).
func (c *Client) SetCoverInterval(d time.Duration) {
	if d > 0 {
		c.coverInterval = d
	}
}

// CoverInterval returns the cover clock period.
func (c *Client) CoverInterval() time.Duration { return c.coverInterval }

// SetHopDelayMean overrides the per-hop mean mix delay.
func (c *Client) SetHopDelayMean(d time.Duration) {
	if d > 0 {
		c.hopDelayMean = d
	}
}

// Name implements anonnet.Transport.
func (c *Client) Name() string { return "mixnet" }

// Proto implements anonnet.Transport.
func (c *Client) Proto() string { return Proto }

// OverheadFrac implements anonnet.Transport: the per-payload padding
// figure only — cover traffic is charged by time, not per request.
func (c *Client) OverheadFrac() float64 { return NominalOverhead }

// Ready implements anonnet.Transport.
func (c *Client) Ready() bool { return c.ready }

// Cascade returns the cascade node names in hop order.
func (c *Client) Cascade() []string { return append([]string(nil), c.cascade...) }

// CoverPackets returns cover frames transmitted so far.
func (c *Client) CoverPackets() int64 { return c.coverSent }

// CoverWireBytes returns completed cover-frame wire bytes — the cost
// of idling. The fleet's SLO report sums this across members.
func (c *Client) CoverWireBytes() int64 { return c.coverWire }

// CoverDrops returns cover frames lost to fabric faults.
func (c *Client) CoverDrops() int64 { return c.coverDrops }

// PayloadFrames returns payload frames transmitted so far.
func (c *Client) PayloadFrames() int64 { return c.payloadSent }

// PayloadWireBytes returns completed padded-payload wire bytes.
func (c *Client) PayloadWireBytes() int64 { return c.payloadWire }

// exit returns the cascade's last hop.
func (c *Client) exit() string { return c.cascade[len(c.cascade)-1] }

// mids returns the cascade hops before the exit, the Via waypoints.
func (c *Client) mids() []string { return c.cascade[:len(c.cascade)-1] }

// Start implements anonnet.Transport: fetch the cascade directory
// (once; it is quasi-persistent state), settle, and light the cover
// clock.
func (c *Client) Start(p *sim.Proc) error {
	if len(c.cascade) < cascadeHops {
		return nymerr.Newf(anonnet.CodeNoExit, "mixnet: cascade has %d hops, need %d",
			len(c.cascade), cascadeHops)
	}
	if !c.hasDir {
		fut := c.net.StartTransfer(vnet.TransferOpts{
			From: c.cascade[0], To: c.commNode,
			Bytes: directoryBytes, Proto: Proto,
		})
		if _, err := sim.Await(p, fut); err != nil {
			return fmt.Errorf("mixnet: directory fetch: %w", err)
		}
		p.Sleep(sim.Time(p.Rand().Jitter(float64(bootstrapSettle), 0.15)))
		c.hasDir = true
	}
	c.ready = true
	c.armTick()
	return nil
}

// armTick schedules the next cover-clock slot. The clock exists only
// while the client is up, so Stop lets the engine drain.
func (c *Client) armTick() {
	if !c.ready {
		return
	}
	c.timer = c.eng.Schedule(c.coverInterval, func() { c.tick() })
}

// tick transmits exactly one fixed-size packet: the oldest queued
// payload frame if any, a cover frame otherwise. Every frame is the
// same PacketSize bytes over the same cascade path with zero
// per-flow overhead, which makes the client's uplink rate constant by
// construction — the cover-traffic invariant the property test pins.
func (c *Client) tick() {
	if !c.ready {
		return
	}
	opts := vnet.TransferOpts{
		From: c.commNode, To: c.exit(), Via: c.mids(),
		Bytes: PacketSize, Proto: Proto, NoHandshake: true,
	}
	if len(c.sendQ) > 0 {
		f := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		c.payloadSent++
		fut := c.net.StartTransfer(opts)
		fut.OnDone(func() {
			if _, err := fut.Value(); err != nil {
				f.done.Complete(struct{}{}, err)
				return
			}
			c.payloadWire += PacketSize
			f.done.Complete(struct{}{}, nil)
		})
	} else {
		c.coverSent++
		fut := c.net.StartTransfer(opts)
		fut.OnDone(func() {
			if _, err := fut.Value(); err != nil {
				c.coverDrops++
				return
			}
			c.coverWire += PacketSize
		})
	}
	c.armTick()
}

// enqueue parks one payload frame on the cover clock and returns its
// completion future.
func (c *Client) enqueue() *sim.Future[struct{}] {
	f := &pendingFrame{done: sim.NewFuture[struct{}](c.eng)}
	c.sendQ = append(c.sendQ, f)
	return f.done
}

// sleepMixDelay charges one exponential mix delay per cascade hop to
// sim time: batching mixes hold each packet for an unpredictable
// interval to break timing correlation.
func (c *Client) sleepMixDelay(p *sim.Proc) {
	for range c.cascade {
		u := p.Rand().Float64()
		d := -float64(c.hopDelayMean) * math.Log(1-u)
		p.Sleep(sim.Time(d))
	}
}

// frameCount returns how many fixed-size frames carry n payload
// bytes (minimum one: even an empty request occupies a frame).
func frameCount(n int64) int64 {
	frames := (n + PayloadCap - 1) / PayloadCap
	if frames < 1 {
		frames = 1
	}
	return frames
}

// Fetch implements anonnet.Transport: the request is framed into
// fixed-size packets that ride the cover clock upstream, the exit mix
// performs the exchange with the site, and the response returns as
// padded frames through the reverse cascade.
func (c *Client) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if !c.ready {
		return anonnet.FetchResult{}, anonnet.ErrNotReady
	}
	if req.SiteNode == "" {
		return anonnet.FetchResult{}, anonnet.ErrBadRequest
	}
	start := p.Now()
	// Upstream: each frame waits for a cover-clock slot, so payload
	// transmission displaces cover one-for-one and the wire rate never
	// moves.
	frames := frameCount(req.SendBytes)
	futs := make([]*sim.Future[struct{}], frames)
	for i := range futs {
		futs[i] = c.enqueue()
	}
	for _, fut := range futs {
		if _, err := sim.Await(p, fut); err != nil {
			return anonnet.FetchResult{}, fmt.Errorf("mixnet: upstream: %w", err)
		}
	}
	c.sleepMixDelay(p)
	// The exit mix exchanges with the site in the clear.
	upFut := c.net.StartTransfer(vnet.TransferOpts{
		From: c.exit(), To: req.SiteNode,
		Bytes: maxI64(req.SendBytes, 512), Proto: "http",
	})
	if _, err := sim.Await(p, upFut); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("mixnet: exit fetch: %w", err)
	}
	if req.RecvBytes > 0 {
		downFut := c.net.StartTransfer(vnet.TransferOpts{
			From: req.SiteNode, To: c.exit(),
			Bytes: req.RecvBytes, Proto: "http", NoHandshake: true,
		})
		if _, err := sim.Await(p, downFut); err != nil {
			return anonnet.FetchResult{}, fmt.Errorf("mixnet: exit response: %w", err)
		}
	}
	// Downstream: the response returns as padded frames through the
	// reverse cascade.
	if err := c.receiveFrames(p, frameCount(req.RecvBytes)); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("mixnet: downstream: %w", err)
	}
	return anonnet.FetchResult{
		Sent:     req.SendBytes,
		Received: req.RecvBytes,
		Elapsed:  p.Now() - start,
	}, nil
}

// receiveFrames carries n padded frames from the exit back to the
// client through the reverse cascade, charging the return mix delays.
func (c *Client) receiveFrames(p *sim.Proc, n int64) error {
	fut := c.net.StartTransfer(vnet.TransferOpts{
		From: c.exit(), To: c.commNode, Via: reverse(c.mids()),
		Bytes: n * PacketSize, Proto: Proto, NoHandshake: true,
	})
	if _, err := sim.Await(p, fut); err != nil {
		return err
	}
	c.sleepMixDelay(p)
	return nil
}

// Resolve implements anonnet.Transport: the query rides one frame to
// the exit mix, which resolves on the client's behalf.
func (c *Client) Resolve(p *sim.Proc, host string) (string, error) {
	if !c.ready {
		return "", anonnet.ErrNotReady
	}
	if _, err := sim.Await(p, c.enqueue()); err != nil {
		return "", fmt.Errorf("mixnet: resolve query: %w", err)
	}
	c.sleepMixDelay(p)
	if err := c.receiveFrames(p, 1); err != nil {
		return "", fmt.Errorf("mixnet: resolve response: %w", err)
	}
	node, ok := c.resolver(host)
	if !ok {
		return "", fmt.Errorf("%w: %s", anonnet.ErrResolve, host)
	}
	return node, nil
}

// ExitIdentity implements anonnet.Transport: sites observe the exit
// mix.
func (c *Client) ExitIdentity() string {
	if len(c.cascade) == 0 {
		return ""
	}
	return c.exit()
}

// ExportState implements anonnet.Transport: the cascade choice and
// directory freshness persist, the mixnet analog of Tor's guard
// persistence — a restored nym re-enters through the same cascade.
func (c *Client) ExportState() anonnet.State {
	st := anonnet.State{"cascade": strings.Join(c.cascade, ",")}
	if c.hasDir {
		st["directory"] = "cached"
	}
	return st
}

// ImportState implements anonnet.Transport.
func (c *Client) ImportState(st anonnet.State) {
	if cs := st["cascade"]; cs != "" {
		c.cascade = strings.Split(cs, ",")
	}
	if st["directory"] == "cached" {
		c.hasDir = true
	}
}

// Stop implements anonnet.Transport: the cover clock dies with the
// client, and queued frames fail closed so no Fetch blocks forever.
func (c *Client) Stop() {
	c.ready = false
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	for _, f := range c.sendQ {
		f.done.Complete(struct{}{}, anonnet.ErrNotReady)
	}
	c.sendQ = nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func reverse(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

var _ anonnet.Transport = (*Client)(nil)
