package mixnet

import (
	"encoding/binary"
	"hash/crc32"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
)

// Sphinx-style fixed-size framing: every packet on the wire — cover
// or payload — is exactly PacketSize bytes, so a wire observer cannot
// distinguish idle from active clients by packet length. The header
// carries a magic, a version, the frame kind, and the true payload
// length; a CRC over the whole packet makes corruption fail closed.
const (
	// PacketSize is the fixed on-wire size of every mixnet packet.
	PacketSize = 2048
	// headerSize is magic(4) + version(1) + kind(1) + length(2) +
	// crc(4).
	headerSize = 12
	// PayloadCap is the payload bytes one packet can carry; the rest
	// is zero padding covered by the checksum.
	PayloadCap = PacketSize - headerSize
)

// Wire constants.
const (
	packetMagic   = uint32(0x4e594d58) // "NYMX"
	packetVersion = byte(1)
)

// Kind distinguishes frame roles. On the wire both kinds are
// indistinguishable to anyone without the header key; the simulation
// keeps them explicit so accounting can split cover from payload.
type Kind byte

// Frame kinds.
const (
	KindPayload Kind = 1
	KindCover   Kind = 2
)

// Frame is one decoded mixnet packet.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// EncodeFrame serializes a frame into exactly PacketSize bytes,
// padding with zeros. Oversize payloads and unknown kinds fail closed
// with anonnet.bad_frame: a frame that cannot be fixed-size must
// never reach the wire.
func EncodeFrame(f Frame) ([]byte, error) {
	if f.Kind != KindPayload && f.Kind != KindCover {
		return nil, nymerr.Newf(anonnet.CodeBadFrame, "mixnet: unknown frame kind %d", f.Kind)
	}
	if len(f.Payload) > PayloadCap {
		return nil, nymerr.Newf(anonnet.CodeBadFrame,
			"mixnet: payload %d bytes exceeds frame capacity %d", len(f.Payload), PayloadCap)
	}
	buf := make([]byte, PacketSize)
	binary.BigEndian.PutUint32(buf[0:4], packetMagic)
	buf[4] = packetVersion
	buf[5] = byte(f.Kind)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(f.Payload)))
	copy(buf[headerSize:], f.Payload)
	// CRC over the whole packet with the checksum field zeroed, so
	// padding bit-flips are caught too.
	binary.BigEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeFrame validates and decodes one fixed-size packet. Truncated,
// oversized, or corrupted input fails closed with anonnet.bad_frame;
// the decoder never panics on hostile bytes.
func DecodeFrame(buf []byte) (Frame, error) {
	if len(buf) != PacketSize {
		return Frame{}, nymerr.Newf(anonnet.CodeBadFrame,
			"mixnet: packet is %d bytes, want %d", len(buf), PacketSize)
	}
	if binary.BigEndian.Uint32(buf[0:4]) != packetMagic {
		return Frame{}, nymerr.New(anonnet.CodeBadFrame, "mixnet: bad packet magic")
	}
	if buf[4] != packetVersion {
		return Frame{}, nymerr.Newf(anonnet.CodeBadFrame, "mixnet: unsupported version %d", buf[4])
	}
	kind := Kind(buf[5])
	if kind != KindPayload && kind != KindCover {
		return Frame{}, nymerr.Newf(anonnet.CodeBadFrame, "mixnet: unknown frame kind %d", buf[5])
	}
	length := int(binary.BigEndian.Uint16(buf[6:8]))
	if length > PayloadCap {
		return Frame{}, nymerr.Newf(anonnet.CodeBadFrame,
			"mixnet: declared length %d exceeds capacity %d", length, PayloadCap)
	}
	sum := binary.BigEndian.Uint32(buf[8:12])
	scratch := make([]byte, PacketSize)
	copy(scratch, buf)
	scratch[8], scratch[9], scratch[10], scratch[11] = 0, 0, 0, 0
	if crc32.ChecksumIEEE(scratch) != sum {
		return Frame{}, nymerr.New(anonnet.CodeBadFrame, "mixnet: checksum mismatch")
	}
	payload := make([]byte, length)
	copy(payload, buf[headerSize:headerSize+length])
	return Frame{Kind: kind, Payload: payload}, nil
}
