package mixnet

import (
	"bytes"
	"testing"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, tc := range []Frame{
		{Kind: KindPayload, Payload: []byte("GET /index.html")},
		{Kind: KindPayload, Payload: bytes.Repeat([]byte{0xAB}, PayloadCap)},
		{Kind: KindPayload, Payload: nil},
		{Kind: KindCover, Payload: nil},
	} {
		buf, err := EncodeFrame(tc)
		if err != nil {
			t.Fatalf("encode kind=%d len=%d: %v", tc.Kind, len(tc.Payload), err)
		}
		if len(buf) != PacketSize {
			t.Fatalf("encoded %d bytes, want fixed %d", len(buf), PacketSize)
		}
		got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != tc.Kind || !bytes.Equal(got.Payload, tc.Payload) {
			t.Fatalf("round trip mangled frame: got kind=%d len=%d", got.Kind, len(got.Payload))
		}
	}
}

func TestEncodeFailsClosed(t *testing.T) {
	if _, err := EncodeFrame(Frame{Kind: KindPayload, Payload: make([]byte, PayloadCap+1)}); !nymerr.HasCode(err, anonnet.CodeBadFrame) {
		t.Errorf("oversize payload: %v, want %s", err, anonnet.CodeBadFrame)
	}
	if _, err := EncodeFrame(Frame{Kind: 99}); !nymerr.HasCode(err, anonnet.CodeBadFrame) {
		t.Errorf("unknown kind: %v, want %s", err, anonnet.CodeBadFrame)
	}
}

func TestDecodeFailsClosed(t *testing.T) {
	valid, err := EncodeFrame(Frame{Kind: KindPayload, Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		buf := append([]byte(nil), valid...)
		mutate(buf)
		return buf
	}
	cases := map[string][]byte{
		"truncated":       valid[:PacketSize-1],
		"oversize":        append(append([]byte(nil), valid...), 0),
		"empty":           nil,
		"bad magic":       corrupt(func(b []byte) { b[0] ^= 0xFF }),
		"bad version":     corrupt(func(b []byte) { b[4] = 0x7F }),
		"bad kind":        corrupt(func(b []byte) { b[5] = 0 }),
		"length over cap": corrupt(func(b []byte) { b[6], b[7] = 0xFF, 0xFF }),
		"payload flip":    corrupt(func(b []byte) { b[headerSize] ^= 0x01 }),
		"padding flip":    corrupt(func(b []byte) { b[PacketSize-1] ^= 0x80 }),
		"checksum flip":   corrupt(func(b []byte) { b[8] ^= 0x01 }),
	}
	for name, buf := range cases {
		if _, err := DecodeFrame(buf); !nymerr.HasCode(err, anonnet.CodeBadFrame) {
			t.Errorf("%s: err = %v, want %s", name, err, anonnet.CodeBadFrame)
		}
	}
}

// FuzzPacketFrame throws arbitrary bytes at the decoder: it must never
// panic, every rejection must carry the typed anonnet.bad_frame code,
// and anything it accepts must re-encode to the identical packet
// (the format admits exactly one encoding per frame).
func FuzzPacketFrame(f *testing.F) {
	seed1, _ := EncodeFrame(Frame{Kind: KindPayload, Payload: []byte("seed payload")})
	seed2, _ := EncodeFrame(Frame{Kind: KindCover})
	seed3, _ := EncodeFrame(Frame{Kind: KindPayload, Payload: bytes.Repeat([]byte{0x5A}, PayloadCap)})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, PacketSize))
	truncated := append([]byte(nil), seed1[:100]...)
	f.Add(truncated)
	flipped := append([]byte(nil), seed1...)
	flipped[headerSize+3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			if !nymerr.HasCode(err, anonnet.CodeBadFrame) {
				t.Fatalf("rejection not typed %s: %v", anonnet.CodeBadFrame, err)
			}
			return
		}
		reenc, err := EncodeFrame(frame)
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("decode/encode not canonical: %d bytes differ", PacketSize)
		}
	})
}
