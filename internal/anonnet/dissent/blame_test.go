package dissent

import (
	"bytes"
	"testing"
	"testing/quick"
)

// honestTranscript builds a round where every client behaves,
// returning the transcript and the declared messages.
func honestTranscript(t *testing.T, nClients int, msgs map[string][]byte) (*Transcript, map[string][]byte) {
	t.Helper()
	sched := testSchedule(nClients)
	tr := NewTranscript(sched, testServers, 5)
	declared := map[string][]byte{}
	for _, cl := range sched.Clients {
		ct, err := ClientCiphertext(sched, testServers, cl, 5, msgs[cl])
		if err != nil {
			t.Fatal(err)
		}
		tr.Submit(cl, ct)
		if m, ok := msgs[cl]; ok {
			declared[cl] = m
		}
	}
	return tr, declared
}

func TestHonestRoundNoBlame(t *testing.T) {
	msgs := map[string][]byte{"client-b": []byte("legit message")}
	tr, declared := honestTranscript(t, 4, msgs)
	slots, verdicts, err := AuditRound(tr, declared)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 0 {
		t.Fatalf("honest round blamed: %v", verdicts)
	}
	if !bytes.Equal(slots[1][:len(msgs["client-b"])], msgs["client-b"]) {
		t.Fatal("message not recovered")
	}
}

func TestJammerBlamed(t *testing.T) {
	// client-c jams client-b's slot by XORing garbage into it.
	msgs := map[string][]byte{"client-b": []byte("protest info")}
	sched := testSchedule(4)
	tr := NewTranscript(sched, testServers, 5)
	declared := map[string][]byte{"client-b": msgs["client-b"]}
	for _, cl := range sched.Clients {
		ct, _ := ClientCiphertext(sched, testServers, cl, 5, msgs[cl])
		if cl == "client-c" {
			// Jam slot 1 (client-b's).
			for i := 0; i < sched.SlotLen; i++ {
				ct[sched.SlotLen+i] ^= 0xAA
			}
		}
		tr.Submit(cl, ct)
	}
	slots, verdicts, err := AuditRound(tr, declared)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(slots[1][:len(msgs["client-b"])], msgs["client-b"]) {
		t.Fatal("jamming had no effect — test is vacuous")
	}
	if len(verdicts) != 1 || verdicts[0].Client != "client-c" {
		t.Fatalf("verdicts = %v, want client-c", verdicts)
	}
	if verdicts[0].Reason != "ciphertext deviates from pads" {
		t.Fatalf("reason = %q", verdicts[0].Reason)
	}
}

func TestEquivocatorBlamed(t *testing.T) {
	msgs := map[string][]byte{"client-a": []byte("m")}
	tr, declared := honestTranscript(t, 3, msgs)
	// client-b swaps its ciphertext after committing.
	fake, _ := ClientCiphertext(tr.Sched, testServers, "client-b", 99, nil)
	tr.Ciphertexts["client-b"] = fake
	verdicts, err := Blame(tr, declared)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range verdicts {
		if v.Client == "client-b" && v.Reason == "commitment equivocation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestLiarBlamed(t *testing.T) {
	// client-a sends one message but declares another: its own
	// ciphertext won't match pads XOR declaration.
	tr, _ := honestTranscript(t, 3, map[string][]byte{"client-a": []byte("actual")})
	declared := map[string][]byte{"client-a": []byte("claimed")}
	_, verdicts, err := AuditRound(tr, declared)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Client != "client-a" {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestSilentClientsNeverBlamed(t *testing.T) {
	tr, declared := honestTranscript(t, 6, nil) // all silent
	slots, verdicts, err := AuditRound(tr, declared)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 0 {
		t.Fatalf("silent round blamed: %v", verdicts)
	}
	for i, slot := range slots {
		for _, b := range slot {
			if b != 0 {
				t.Fatalf("slot %d not silent", i)
			}
		}
	}
}

// Property: exactly the set of deviating clients is blamed, never an
// honest one.
func TestPropertyBlameSoundAndComplete(t *testing.T) {
	f := func(nClients uint8, jammerMask uint8, noise byte) bool {
		n := int(nClients)%5 + 2
		if noise == 0 {
			noise = 0x5C
		}
		sched := testSchedule(n)
		tr := NewTranscript(sched, testServers, 9)
		declared := map[string][]byte{}
		wantBlamed := map[string]bool{}
		for i, cl := range sched.Clients {
			msg := []byte{byte(i + 1)}
			declared[cl] = msg
			ct, err := ClientCiphertext(sched, testServers, cl, 9, msg)
			if err != nil {
				return false
			}
			if jammerMask&(1<<uint(i)) != 0 {
				ct[(i*7)%len(ct)] ^= noise
				wantBlamed[cl] = true
			}
			tr.Submit(cl, ct)
		}
		verdicts, err := Blame(tr, declared)
		if err != nil {
			return false
		}
		got := map[string]bool{}
		for _, v := range verdicts {
			got[v.Client] = true
		}
		if len(got) != len(wantBlamed) {
			return false
		}
		for cl := range wantBlamed {
			if !got[cl] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
