package dissent

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// --- DC-net core ---

func testSchedule(n int) *Schedule {
	clients := make([]string, n)
	for i := range clients {
		clients[i] = "client-" + string(rune('a'+i))
	}
	return &Schedule{Clients: clients, SlotLen: 64}
}

var testServers = []string{"srv-0", "srv-1", "srv-2"}

func TestRoundRecoversSingleMessage(t *testing.T) {
	sched := testSchedule(4)
	msg := []byte("rendezvous at midnight")
	slots, err := RunRound(sched, testServers, 1, map[string][]byte{"client-b": msg})
	if err != nil {
		t.Fatal(err)
	}
	got := slots[1][:len(msg)]
	if !bytes.Equal(got, msg) {
		t.Fatalf("slot = %q, want %q", got, msg)
	}
	// Other slots are all zero (no senders).
	for i, slot := range slots {
		if i == 1 {
			continue
		}
		for _, b := range slot {
			if b != 0 {
				t.Fatalf("slot %d not silent", i)
			}
		}
	}
}

func TestRoundRecoversAllSenders(t *testing.T) {
	sched := testSchedule(3)
	msgs := map[string][]byte{
		"client-a": []byte("aaa"),
		"client-b": []byte("bbbb"),
		"client-c": []byte("c"),
	}
	slots, err := RunRound(sched, testServers, 7, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cl := range sched.Clients {
		want := msgs[cl]
		if !bytes.Equal(slots[i][:len(want)], want) {
			t.Fatalf("slot %d = %q, want %q", i, slots[i][:len(want)], want)
		}
	}
}

func TestCiphertextsLookRandomIndividually(t *testing.T) {
	// No single ciphertext (or strict subset missing a server share)
	// reveals the message: unconditional sender anonymity.
	sched := testSchedule(2)
	msg := []byte("secret")
	ct, err := ClientCiphertext(sched, testServers, "client-a", 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, msg) {
		t.Fatal("plaintext visible in single ciphertext")
	}
	// Combining without one server's share yields garbage, not the
	// message.
	ctB, _ := ClientCiphertext(sched, testServers, "client-b", 3, nil)
	partialShares := [][]byte{
		ServerShare(sched, testServers[0], 3),
		ServerShare(sched, testServers[1], 3),
		// srv-2 withheld
	}
	out, err := CombineRound([][]byte{ct, ctB}, partialShares)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out, msg) {
		t.Fatal("message recovered without all server shares")
	}
}

func TestDifferentRoundsDifferentPads(t *testing.T) {
	sched := testSchedule(2)
	ct1, _ := ClientCiphertext(sched, testServers, "client-a", 1, nil)
	ct2, _ := ClientCiphertext(sched, testServers, "client-a", 2, nil)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("pad reuse across rounds")
	}
}

func TestCollisionCorruptsSlot(t *testing.T) {
	// Two clients writing the same slot XOR together — the DC-net
	// collision behaviour.
	sched := &Schedule{Clients: []string{"a"}, SlotLen: 8}
	msgs := map[string][]byte{"a": {0xFF, 0x0F}}
	slots, err := RunRound(sched, testServers, 1, msgs)
	if err != nil {
		t.Fatal(err)
	}
	// Manually add a colliding write from a non-slot-owner by XORing
	// another message into the same slot region.
	collide := []byte{0xF0, 0xF0}
	for i := range collide {
		slots[0][i] ^= collide[i]
	}
	if slots[0][0] != 0x0F || slots[0][1] != 0xFF {
		t.Fatalf("collision algebra wrong: %x", slots[0][:2])
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	sched := testSchedule(2)
	_, err := ClientCiphertext(sched, testServers, "client-a", 1, make([]byte, 65))
	if err == nil {
		t.Fatal("oversize message accepted")
	}
}

func TestUnknownClientRejected(t *testing.T) {
	sched := testSchedule(2)
	_, err := ClientCiphertext(sched, testServers, "stranger", 1, nil)
	if err == nil {
		t.Fatal("unknown client accepted")
	}
}

func TestLengthMismatchDetected(t *testing.T) {
	_, err := CombineRound([][]byte{make([]byte, 8), make([]byte, 9)}, nil)
	if err != ErrLengthMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedSecretSymmetricDerivation(t *testing.T) {
	// The same (client, server) pair always derives the same secret;
	// distinct pairs derive distinct secrets.
	s1 := SharedSecret("alice", "srv-0")
	s2 := SharedSecret("alice", "srv-0")
	if s1 != s2 {
		t.Fatal("nondeterministic secret")
	}
	if SharedSecret("alice", "srv-1") == s1 {
		t.Fatal("secret collision across servers")
	}
	if SharedSecret("bob", "srv-0") == s1 {
		t.Fatal("secret collision across clients")
	}
}

// Property: for any set of senders and messages, every slot reveals
// exactly its owner's message.
func TestPropertyRoundCorrectness(t *testing.T) {
	f := func(nClients, nServers uint8, round uint64, raw []byte) bool {
		nc := int(nClients)%6 + 2
		ns := int(nServers)%4 + 1
		sched := testSchedule(nc)
		servers := make([]string, ns)
		for i := range servers {
			servers[i] = "srv-" + string(rune('0'+i))
		}
		msgs := map[string][]byte{}
		for i, cl := range sched.Clients {
			if i < len(raw) && raw[i]%2 == 0 {
				end := i * 8
				if end > len(raw) {
					end = len(raw)
				}
				m := raw[:end]
				if len(m) > sched.SlotLen {
					m = m[:sched.SlotLen]
				}
				msgs[cl] = m
			}
		}
		slots, err := RunRound(sched, servers, round, msgs)
		if err != nil {
			return false
		}
		for i, cl := range sched.Clients {
			want := msgs[cl]
			if !bytes.Equal(slots[i][:len(want)], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- network client ---

type rig struct {
	eng   *sim.Engine
	net   *vnet.Network
	world *webworld.World
}

func newRig() *rig {
	eng := sim.NewEngine(17)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	return &rig{eng: eng, net: net, world: world}
}

func TestClientStartAndFetch(t *testing.T) {
	r := newRig()
	c := New(r.net, "commvm", r.world.DissentServers(), 16, r.world.Resolver())
	site, _ := r.world.Lookup("twitter.com")
	var res anonnet.FetchResult
	var err error
	r.eng.Go("run", func(p *sim.Proc) {
		if err = c.Start(p); err != nil {
			return
		}
		res, err = c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 1024, RecvBytes: 1 << 20})
	})
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Ready() {
		t.Fatal("not ready")
	}
	if res.Received != 1<<20 {
		t.Fatalf("received = %d", res.Received)
	}
	if c.Rounds() < 5 {
		t.Fatalf("rounds = %d, want several for a 1 MiB fetch", c.Rounds())
	}
}

func TestDissentSlowerThanDirect(t *testing.T) {
	// Round-trip amplification makes Dissent much slower than a direct
	// transfer of the same size.
	r := newRig()
	c := New(r.net, "commvm", r.world.DissentServers(), 16, r.world.Resolver())
	site, _ := r.world.Lookup("twitter.com")
	var dissentDur time.Duration
	r.eng.Go("run", func(p *sim.Proc) {
		c.Start(p)
		res, err := c.Fetch(p, anonnet.Request{SiteNode: site, RecvBytes: 2 << 20})
		if err != nil {
			t.Errorf("fetch: %v", err)
			return
		}
		dissentDur = res.Elapsed
	})
	r.eng.Run()
	direct := r.net.StartTransfer(vnet.TransferOpts{From: site, To: "commvm", Bytes: 2 << 20, Proto: "x"})
	r.eng.Run()
	dres, _ := direct.Value()
	if dissentDur < 2*dres.Duration() {
		t.Fatalf("dissent %v not meaningfully slower than direct %v", dissentDur, dres.Duration())
	}
}

func TestExitIdentityIsServer(t *testing.T) {
	r := newRig()
	c := New(r.net, "commvm", r.world.DissentServers(), 8, r.world.Resolver())
	if c.ExitIdentity() != r.world.DissentServers()[0] {
		t.Fatalf("exit = %q", c.ExitIdentity())
	}
}

func TestStateRoundTripSkipsKeyExchange(t *testing.T) {
	r := newRig()
	a := New(r.net, "commvm", r.world.DissentServers(), 24, r.world.Resolver())
	r.eng.Go("a", func(p *sim.Proc) { a.Start(p) })
	r.eng.Run()
	b := New(r.net, "commvm", r.world.DissentServers(), 2, r.world.Resolver())
	b.ImportState(a.ExportState())
	if !b.keysUp {
		t.Fatal("keys not restored")
	}
	if b.Members() != 24 {
		t.Fatalf("members = %d", b.Members())
	}
}

func TestNoServersFails(t *testing.T) {
	r := newRig()
	c := New(r.net, "commvm", nil, 8, r.world.Resolver())
	var err error
	r.eng.Go("run", func(p *sim.Proc) { err = c.Start(p) })
	r.eng.Run()
	if err == nil {
		t.Fatal("start with no servers succeeded")
	}
}

func TestResolveViaRound(t *testing.T) {
	r := newRig()
	c := New(r.net, "commvm", r.world.DissentServers(), 8, r.world.Resolver())
	var node string
	var err error
	r.eng.Go("run", func(p *sim.Proc) {
		c.Start(p)
		node, err = c.Resolve(p, "gmail.com")
	})
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.world.Lookup("gmail.com")
	if node != want {
		t.Fatalf("resolved %q", node)
	}
}
