package dissent

import (
	"fmt"
	"strconv"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
)

func init() {
	anonnet.RegisterTransport("dissent", anonnet.TransportInfo{},
		func(env anonnet.Env) (anonnet.Transport, error) {
			return New(env.Net, env.CommNode, env.World.DissentServers(),
				env.Opts.DissentMembers, env.World.Resolver()), nil
		})
}

// Protocol constants. Dissent trades throughput for traffic-analysis
// resistance: every byte costs a DC-net round, so bulk transfer is
// far slower than Tor ("less mature and currently less scalable",
// section 3.3).
const (
	// SlotBytes is the per-client slot capacity of one bulk round.
	SlotBytes = 256 << 10
	// WireOverhead covers ciphertext padding and accountability
	// metadata.
	WireOverhead = 0.35
	// serverProcessing is per-round server-side combine/broadcast cost.
	serverProcessing = 120 * time.Millisecond
	// keyExchangeCrypto is the per-server setup handshake cost.
	keyExchangeCrypto = 150 * time.Millisecond
	// perMemberCost is the per-round scheduling cost per anonymity-set
	// member.
	perMemberCost = 2 * time.Millisecond
)

// Client is a Dissent client inside a CommVM, implementing
// anonnet.Anonymizer over the anytrust server set.
type Client struct {
	net      *vnet.Network
	commNode string
	servers  []string
	resolver func(string) (string, bool)
	// members is the anonymity set size N the deployment is configured
	// for; the paper's Dissent evaluations use group sizes in the tens.
	members int
	ready   bool
	rounds  uint64
	keysUp  bool
}

// New creates a Dissent client. members is the configured anonymity
// set size (minimum 2).
func New(net *vnet.Network, commNode string, servers []string, members int, resolver func(string) (string, bool)) *Client {
	if members < 2 {
		members = 2
	}
	return &Client{
		net:      net,
		commNode: commNode,
		servers:  servers,
		members:  members,
		resolver: resolver,
	}
}

// Name implements anonnet.Anonymizer.
func (c *Client) Name() string { return "dissent" }

// Proto implements anonnet.Anonymizer.
func (c *Client) Proto() string { return "dissent" }

// OverheadFrac implements anonnet.Anonymizer.
func (c *Client) OverheadFrac() float64 { return WireOverhead }

// Ready implements anonnet.Anonymizer.
func (c *Client) Ready() bool { return c.ready }

// Members returns the configured anonymity set size.
func (c *Client) Members() int { return c.members }

// Rounds returns the number of DC-net rounds run.
func (c *Client) Rounds() uint64 { return c.rounds }

// Start implements anonnet.Anonymizer: pairwise key establishment
// with every anytrust server plus a scheduling round.
func (c *Client) Start(p *sim.Proc) error {
	if len(c.servers) == 0 {
		return nymerr.New(anonnet.CodeNoExit, "dissent: no anytrust servers configured")
	}
	if !c.keysUp {
		for _, srv := range c.servers {
			lat, err := c.net.PathLatency(c.commNode, srv)
			if err != nil {
				return fmt.Errorf("dissent: server %s unreachable: %w", srv, err)
			}
			p.Sleep(2*lat + sim.Time(p.Rand().Jitter(float64(keyExchangeCrypto), 0.2)))
		}
		c.keysUp = true
	}
	// Scheduling (shuffle) round to assign slots.
	if err := c.runRound(p, 4096, 4096); err != nil {
		return err
	}
	c.ready = true
	return nil
}

// runRound performs one DC-net round on the wire: the client submits
// its ciphertext upstream to its server, servers combine, and the
// round output is broadcast back.
func (c *Client) runRound(p *sim.Proc, upBytes, downBytes int64) error {
	srv := c.servers[int(c.rounds)%len(c.servers)]
	c.rounds++
	up := c.net.StartTransfer(vnet.TransferOpts{
		From: c.commNode, To: srv,
		Bytes: upBytes, Proto: "dissent", Overhead: WireOverhead,
		NoHandshake: true,
	})
	if _, err := sim.Await(p, up); err != nil {
		return fmt.Errorf("dissent: round upstream: %w", err)
	}
	p.Sleep(sim.Time(p.Rand().Jitter(float64(serverProcessing), 0.15)) +
		time.Duration(c.members)*perMemberCost)
	down := c.net.StartTransfer(vnet.TransferOpts{
		From: srv, To: c.commNode,
		Bytes: downBytes, Proto: "dissent", Overhead: WireOverhead,
		NoHandshake: true,
	})
	if _, err := sim.Await(p, down); err != nil {
		return fmt.Errorf("dissent: round downstream: %w", err)
	}
	return nil
}

// Fetch implements anonnet.Anonymizer: the request is split across
// bulk rounds; the response is proxied back by the serving server
// inside subsequent round outputs.
func (c *Client) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if !c.ready {
		return anonnet.FetchResult{}, anonnet.ErrNotReady
	}
	if req.SiteNode == "" {
		return anonnet.FetchResult{}, anonnet.ErrBadRequest
	}
	start := p.Now()
	// Upstream rounds carry the request; the exit server then fetches
	// from the site and feeds the response into downstream rounds.
	upRounds := (req.SendBytes + SlotBytes - 1) / SlotBytes
	if upRounds < 1 {
		upRounds = 1
	}
	for i := int64(0); i < upRounds; i++ {
		n := req.SendBytes - i*SlotBytes
		if n > SlotBytes {
			n = SlotBytes
		}
		if n < 512 {
			n = 512
		}
		if err := c.runRound(p, n, 512); err != nil {
			return anonnet.FetchResult{}, err
		}
	}
	// Server-side fetch from the site (fast server-to-site path).
	srv := c.servers[0]
	siteFut := c.net.StartTransfer(vnet.TransferOpts{
		From: req.SiteNode, To: srv, Bytes: maxI64(req.RecvBytes, 512), Proto: "dissent",
	})
	if _, err := sim.Await(p, siteFut); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("dissent: exit fetch: %w", err)
	}
	downRounds := (req.RecvBytes + SlotBytes - 1) / SlotBytes
	if downRounds < 1 {
		downRounds = 1
	}
	for i := int64(0); i < downRounds; i++ {
		n := req.RecvBytes - i*SlotBytes
		if n > SlotBytes {
			n = SlotBytes
		}
		if n < 512 {
			n = 512
		}
		if err := c.runRound(p, 512, n); err != nil {
			return anonnet.FetchResult{}, err
		}
	}
	return anonnet.FetchResult{
		Sent:     req.SendBytes,
		Received: req.RecvBytes,
		Elapsed:  p.Now() - start,
	}, nil
}

// Resolve implements anonnet.Anonymizer: Dissent supports UDP
// proxying, so DNS queries travel inside rounds.
func (c *Client) Resolve(p *sim.Proc, host string) (string, error) {
	if !c.ready {
		return "", anonnet.ErrNotReady
	}
	if err := c.runRound(p, 512, 512); err != nil {
		return "", err
	}
	node, ok := c.resolver(host)
	if !ok {
		return "", fmt.Errorf("%w: %s", anonnet.ErrResolve, host)
	}
	return node, nil
}

// ExitIdentity implements anonnet.Anonymizer: servers front all
// client traffic, so sites observe the serving server.
func (c *Client) ExitIdentity() string {
	if len(c.servers) == 0 {
		return ""
	}
	return c.servers[0]
}

// ExportState implements anonnet.Anonymizer.
func (c *Client) ExportState() anonnet.State {
	st := anonnet.State{"members": strconv.Itoa(c.members)}
	if c.keysUp {
		st["keys"] = "established"
	}
	return st
}

// ImportState implements anonnet.Anonymizer.
func (c *Client) ImportState(st anonnet.State) {
	if st["keys"] == "established" {
		c.keysUp = true
	}
	if m, err := strconv.Atoi(st["members"]); err == nil && m >= 2 {
		c.members = m
	}
}

// Stop implements anonnet.Anonymizer.
func (c *Client) Stop() { c.ready = false }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ anonnet.Anonymizer = (*Client)(nil)
