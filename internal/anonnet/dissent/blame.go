package dissent

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
)

// Accountability. Dissent's defining property over plain DC-nets is
// that disruption is traceable: "Dissent" literally stands for
// "dining-cryptographers shuffled-send network" with accountability.
// In the anytrust model, every client's pads are derived from secrets
// it shares with the servers, so the servers can jointly reconstruct
// what an honest client's ciphertext *should* have been. A client who
// jams another slot or equivocates on its commitment is identified
// and expelled, instead of being able to deny service anonymously
// forever.
//
// The protocol here is the simulation-sized version: clients commit
// to their ciphertexts, the round is combined, and if the output is
// corrupted the transcript is audited — pads are reconstructed per
// client and any ciphertext that is not pads XOR own-slot-message
// exposes its sender.

// Commitment is a binding commitment to a client's round ciphertext.
type Commitment [sha256.Size]byte

// Commit produces the ciphertext commitment a client publishes before
// the round output is revealed.
func Commit(ciphertext []byte) Commitment {
	return sha256.Sum256(ciphertext)
}

// Transcript is everything the blame protocol needs: the round
// parameters plus each client's published commitment and the
// ciphertext it subsequently submitted.
type Transcript struct {
	Sched       *Schedule
	Servers     []string
	Round       uint64
	Ciphertexts map[string][]byte
	Commitments map[string]Commitment
}

// NewTranscript records a round.
func NewTranscript(sched *Schedule, servers []string, round uint64) *Transcript {
	return &Transcript{
		Sched:       sched,
		Servers:     servers,
		Round:       round,
		Ciphertexts: make(map[string][]byte),
		Commitments: make(map[string]Commitment),
	}
}

// Submit records a client's commitment and ciphertext.
func (tr *Transcript) Submit(client string, ciphertext []byte) {
	ct := append([]byte(nil), ciphertext...)
	tr.Ciphertexts[client] = ct
	tr.Commitments[client] = Commit(ct)
}

// expectedCiphertext reconstructs what an honest client's ciphertext
// must be, given its declared message (nil for a silent round).
func (tr *Transcript) expectedCiphertext(client string, declared []byte) ([]byte, error) {
	return ClientCiphertext(tr.Sched, tr.Servers, client, tr.Round, declared)
}

// Verdict is the blame protocol's outcome for one client.
type Verdict struct {
	Client string
	Reason string
}

// Blame audits a round: declared maps each client to the message it
// claims to have sent (absent = silent). It returns the misbehaving
// clients — those whose ciphertext does not match their commitment
// (equivocation) or does not equal pads XOR declared message
// (disruption: jamming another slot, flipping bits, or lying about
// its own message).
func Blame(tr *Transcript, declared map[string][]byte) ([]Verdict, error) {
	var verdicts []Verdict
	clients := make([]string, 0, len(tr.Ciphertexts))
	for c := range tr.Ciphertexts {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, client := range clients {
		ct := tr.Ciphertexts[client]
		if Commit(ct) != tr.Commitments[client] {
			verdicts = append(verdicts, Verdict{Client: client, Reason: "commitment equivocation"})
			continue
		}
		want, err := tr.expectedCiphertext(client, declared[client])
		if err != nil {
			return nil, fmt.Errorf("dissent: blame reconstruction for %q: %w", client, err)
		}
		if !bytes.Equal(ct, want) {
			verdicts = append(verdicts, Verdict{Client: client, Reason: "ciphertext deviates from pads"})
		}
	}
	return verdicts, nil
}

// AuditRound is the full accountable round: run it, and if the
// combined output disagrees with the declared messages, blame. It
// returns the revealed slots and any verdicts.
func AuditRound(tr *Transcript, declared map[string][]byte) ([][]byte, []Verdict, error) {
	var cts [][]byte
	clients := make([]string, 0, len(tr.Ciphertexts))
	for c := range tr.Ciphertexts {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		cts = append(cts, tr.Ciphertexts[c])
	}
	var shares [][]byte
	for _, srv := range tr.Servers {
		shares = append(shares, ServerShare(tr.Sched, srv, tr.Round))
	}
	combined, err := CombineRound(cts, shares)
	if err != nil {
		return nil, nil, err
	}
	slots := make([][]byte, len(tr.Sched.Clients))
	corrupted := false
	for i, cl := range tr.Sched.Clients {
		slots[i] = combined[i*tr.Sched.SlotLen : (i+1)*tr.Sched.SlotLen]
		want := declared[cl]
		if !bytes.Equal(slots[i][:len(want)], want) {
			corrupted = true
		}
		for _, b := range slots[i][len(want):] {
			if b != 0 {
				corrupted = true
			}
		}
	}
	if !corrupted {
		return slots, nil, nil
	}
	verdicts, err := Blame(tr, declared)
	if err != nil {
		return nil, nil, err
	}
	return slots, verdicts, nil
}
