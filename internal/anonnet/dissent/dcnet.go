// Package dissent implements the Dissent anonymizer in the anytrust
// model (Wolinsky et al., the paper's reference [76]): N clients and a
// small set of M servers run DC-net rounds in which every client
// submits a ciphertext and anonymity holds as long as at least one
// server is honest.
//
// This file is the cryptographic core, implemented for real: pairwise
// client-server secrets seed a PRG; a client's ciphertext is the XOR
// of its pads (plus its message, in its own slot), a server's share is
// the XOR of the pads it holds, and XOR-combining everything reveals
// exactly the plaintext slots — unconditionally hiding who sent what.
package dissent

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
)

// Secret is a pairwise client-server shared secret.
type Secret [32]byte

// SharedSecret derives the pairwise secret for a client-server pair.
// Both sides derive the same value regardless of argument order in
// their own call, because the pair is canonicalized. (A deployment
// would run Diffie-Hellman; the simulation derives from identities.)
func SharedSecret(client, server string) Secret {
	mac := hmac.New(sha256.New, []byte("dissent-pairwise-v1"))
	mac.Write([]byte(client))
	mac.Write([]byte{0})
	mac.Write([]byte(server))
	var s Secret
	copy(s[:], mac.Sum(nil))
	return s
}

// prg expands a secret into n pseudo-random pad bytes for a round,
// via SHA-256 in counter mode.
func prg(secret Secret, round uint64, n int) []byte {
	out := make([]byte, 0, n+sha256.Size)
	var ctr uint64
	for len(out) < n {
		h := sha256.New()
		h.Write(secret[:])
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], round)
		binary.BigEndian.PutUint64(buf[8:16], ctr)
		h.Write(buf[:])
		out = h.Sum(out)
		ctr++
	}
	return out[:n]
}

// xorInto dst ^= src (lengths must match).
func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Schedule assigns each client one slot per round, in a fixed order
// agreed during setup (a real deployment runs a verifiable shuffle;
// the simulation sorts deterministically by the order given).
type Schedule struct {
	Clients []string
	SlotLen int
}

// SlotOf returns the slot index of a client, or -1.
func (s *Schedule) SlotOf(client string) int {
	for i, c := range s.Clients {
		if c == client {
			return i
		}
	}
	return -1
}

// RoundLen returns the total bytes of one round's combined output.
func (s *Schedule) RoundLen() int { return len(s.Clients) * s.SlotLen }

// ClientCiphertext produces a client's DC-net ciphertext for a round:
// the XOR of its pads with every server, with msg XORed into the
// client's own slot. msg longer than the slot is an error.
func ClientCiphertext(sched *Schedule, servers []string, client string, round uint64, msg []byte) ([]byte, error) {
	slot := sched.SlotOf(client)
	if slot < 0 {
		return nil, nymerr.Newf(anonnet.CodeBadRequest, "dissent: client %q not in schedule", client)
	}
	if len(msg) > sched.SlotLen {
		return nil, nymerr.Newf(anonnet.CodeBadFrame, "dissent: message %d bytes exceeds slot %d", len(msg), sched.SlotLen)
	}
	ct := make([]byte, sched.RoundLen())
	for _, srv := range servers {
		xorInto(ct, prg(SharedSecret(client, srv), round, len(ct)))
	}
	xorInto(ct[slot*sched.SlotLen:slot*sched.SlotLen+len(msg)], msg)
	return ct, nil
}

// ServerShare produces a server's share: the XOR of the pads it
// shares with every client.
func ServerShare(sched *Schedule, server string, round uint64) []byte {
	share := make([]byte, sched.RoundLen())
	for _, cl := range sched.Clients {
		xorInto(share, prg(SharedSecret(cl, server), round, len(share)))
	}
	return share
}

// ErrLengthMismatch is returned when round inputs disagree on length.
var ErrLengthMismatch = nymerr.New(anonnet.CodeBadFrame, "dissent: ciphertext length mismatch")

// CombineRound XORs all client ciphertexts and server shares,
// revealing the round's plaintext slots.
func CombineRound(ciphertexts, shares [][]byte) ([]byte, error) {
	if len(ciphertexts) == 0 {
		return nil, nymerr.New(anonnet.CodeBadRequest, "dissent: no ciphertexts")
	}
	n := len(ciphertexts[0])
	out := make([]byte, n)
	for _, ct := range ciphertexts {
		if len(ct) != n {
			return nil, ErrLengthMismatch
		}
		xorInto(out, ct)
	}
	for _, sh := range shares {
		if len(sh) != n {
			return nil, ErrLengthMismatch
		}
		xorInto(out, sh)
	}
	return out, nil
}

// RunRound executes a full round for the schedule: messages maps
// client name to its (optional) message. It returns the revealed
// slots, one per client in schedule order. It is the reference
// execution used by tests and by the simulated wire protocol for
// small payloads.
func RunRound(sched *Schedule, servers []string, round uint64, messages map[string][]byte) ([][]byte, error) {
	var cts [][]byte
	for _, cl := range sched.Clients {
		ct, err := ClientCiphertext(sched, servers, cl, round, messages[cl])
		if err != nil {
			return nil, err
		}
		cts = append(cts, ct)
	}
	var shares [][]byte
	for _, srv := range servers {
		shares = append(shares, ServerShare(sched, srv, round))
	}
	combined, err := CombineRound(cts, shares)
	if err != nil {
		return nil, err
	}
	slots := make([][]byte, len(sched.Clients))
	for i := range sched.Clients {
		slots[i] = combined[i*sched.SlotLen : (i+1)*sched.SlotLen]
	}
	return slots, nil
}
