package anonnet

import "nymix/internal/nymerr"

// Registered error codes for the anonymizer layer. Every transport
// (tor, dissent, sweet, incognito, mixnet) classifies its trouble
// under one of these, so the layers above (core, fleet, slo) can
// bucket anonymizer failures without string matching.
var (
	// CodeNotReady: Fetch or Resolve was called before Start (or after
	// Stop).
	CodeNotReady = nymerr.Register("anonnet.not_ready",
		"transport used before Start or after Stop")
	// CodeNoExit: the deployment offers no usable exit, guard, relay,
	// or mix for the transport to build its path from.
	CodeNoExit = nymerr.Register("anonnet.no_exit",
		"deployment offers no usable exit or relay")
	// CodeResolve: the transport's resolution path cannot map the host
	// name to a network node.
	CodeResolve = nymerr.Register("anonnet.resolve",
		"transport cannot resolve the host name")
	// CodeBadRequest: the fetch request is malformed (empty site node).
	CodeBadRequest = nymerr.Register("anonnet.bad_request",
		"malformed fetch request")
	// CodeBadFrame: a fixed-size mixnet packet failed to decode —
	// truncated, oversized, or corrupted on the wire. Decoders fail
	// closed under this code.
	CodeBadFrame = nymerr.Register("anonnet.bad_frame",
		"fixed-size packet failed validation; decoder fails closed")
	// CodeUnknownTransport: no factory is registered under the
	// requested transport kind.
	CodeUnknownTransport = nymerr.Register("anonnet.unknown_transport",
		"no transport factory registered under that kind")
)

// Sentinel errors shared by transport implementations. Each is a
// typed nymerr root, so errors.Is against the sentinel and
// nymerr.HasCode against the code both match any error derived from
// one (including fmt.Errorf("%w") wraps).
var (
	ErrNotReady   = nymerr.New(CodeNotReady, "anonnet: anonymizer not started")
	ErrNoExit     = nymerr.New(CodeNoExit, "anonnet: no usable exit")
	ErrResolve    = nymerr.New(CodeResolve, "anonnet: cannot resolve host")
	ErrBadRequest = nymerr.New(CodeBadRequest, "anonnet: bad request")
	ErrBadFrame   = nymerr.New(CodeBadFrame, "anonnet: bad packet frame")
)
