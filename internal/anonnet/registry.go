package anonnet

import (
	"fmt"
	"sort"

	"nymix/internal/nymerr"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// Env is the world wiring a transport factory receives: the network
// fabric, the simulated Internet, and the nodes the transport speaks
// from. CommNode is the CommVM's attachment point (every client-side
// flow originates there); HostNode is the physical host's node, the
// NAT exit the incognito mode re-originates from.
type Env struct {
	Net      *vnet.Network
	World    *webworld.World
	CommNode string
	HostNode string
	Opts     TransportOpts
}

// TransportOpts carries the per-nym knobs a factory may honour.
type TransportOpts struct {
	// GuardSeed derives the Tor entry guard deterministically
	// (section 3.5's fix for the ephemeral-loader intersection hole).
	GuardSeed string
	// DissentMembers is the anonymity set size for Dissent nyms.
	DissentMembers int
}

// Factory builds one transport instance for a nym.
type Factory func(Env) (Transport, error)

// TransportInfo describes a registered kind's static properties,
// readable without building an instance.
type TransportInfo struct {
	// IdleWireRate is the uplink rate in bytes per second the
	// transport transmits even when no request is in flight — the
	// mixnet's constant-rate cover traffic. Zero for demand-driven
	// transports. Fleet wire admission reserves against this figure.
	IdleWireRate float64
}

type registration struct {
	info    TransportInfo
	factory Factory
}

var registry = map[string]registration{}

// RegisterTransport records a factory under a kind name. Transports
// self-register from init, so importing an implementation package is
// what makes its kind buildable. Duplicate kinds panic: two packages
// claiming one name is a wiring bug.
func RegisterTransport(kind string, info TransportInfo, f Factory) {
	if kind == "" || f == nil {
		panic("anonnet: RegisterTransport with empty kind or nil factory")
	}
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("anonnet: transport %q registered twice", kind))
	}
	registry[kind] = registration{info: info, factory: f}
}

// NewTransport builds a transport of the registered kind.
func NewTransport(kind string, env Env) (Transport, error) {
	reg, ok := registry[kind]
	if !ok {
		return nil, nymerr.Newf(CodeUnknownTransport, "anonnet: unknown transport %q", kind)
	}
	return reg.factory(env)
}

// IdleWireRate returns the registered kind's idle uplink rate in
// bytes per second (0 for unknown or demand-driven kinds).
func IdleWireRate(kind string) float64 { return registry[kind].info.IdleWireRate }

// TransportKinds returns the registered kind names, sorted.
func TransportKinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
