// Package anonnet defines Nymix's pluggable anonymizer framework
// (paper section 3.3). A Transport runs inside a nym's CommVM and is
// the AnonVM's only path to the Internet: it accepts SOCKS-style
// fetch requests on the virtual wire, carries them across the
// anonymity network, and re-originates them so that servers observe
// the transport's exit identity rather than the user's address.
//
// Implementations: anonnet/tor (onion routing with persistent entry
// guards), anonnet/dissent (anytrust DC-nets), anonnet/sweet
// (mail-tunneled proxying), anonnet/incognito (plain NAT relaying
// with minimal overhead and no network-level anonymity), and
// anonnet/mixnet (a fixed-cascade mix network with fixed-size packet
// framing and constant-rate cover traffic). Each registers a factory
// under its kind name (RegisterTransport), so the nym manager builds
// transports through NewTransport without linking against every
// implementation by name. Transports can be chained in series
// (section 3.3's "best of both worlds" configurations) with Chain.
package anonnet

import (
	"time"

	"nymix/internal/sim"
)

// Request is one SOCKS-style exchange: send the request upstream,
// receive the response downstream.
type Request struct {
	SiteNode  string // destination network node name
	SendBytes int64  // upstream payload (request, uploads, posts)
	RecvBytes int64  // downstream payload (page, download)
}

// FetchResult reports a completed exchange.
type FetchResult struct {
	Sent     int64
	Received int64
	Elapsed  time.Duration
}

// State is a transport's quasi-persistent state (for Tor, the entry
// guard and cached consensus), serialized into the nym archive so
// that restoring a nym restores its guard — the property section 3.5
// identifies as critical against long-term intersection attacks.
type State map[string]string

// Anonymizer is the historical name for Transport, kept as an alias
// for existing callers.
type Anonymizer = Transport

// Transport is a communication tool pluggable into a CommVM.
type Transport interface {
	// Name identifies the tool ("tor", "dissent", "incognito").
	Name() string
	// Proto is the wire-protocol label observers see on captures.
	Proto() string
	// Start bootstraps the tool inside the CommVM; it blocks the
	// calling process for the bootstrap duration (the "Start Tor" phase
	// of Figure 7).
	Start(p *sim.Proc) error
	// Ready reports whether Fetch may be called.
	Ready() bool
	// Fetch performs one request/response exchange with a site.
	Fetch(p *sim.Proc, req Request) (FetchResult, error)
	// Resolve maps a DNS name to a network node through the tool's own
	// resolution path (Tor's built-in DNS, Dissent's UDP tunnel, or the
	// incognito mode's leaky direct query).
	Resolve(p *sim.Proc, host string) (string, error)
	// ExitIdentity is the source address servers observe.
	ExitIdentity() string
	// OverheadFrac is the tool's fractional wire overhead (~0.12 for
	// Tor's cells and control traffic, per Figure 5).
	OverheadFrac() float64
	// ExportState captures quasi-persistent state; ImportState restores
	// it before Start.
	ExportState() State
	ImportState(State)
	// Stop tears the tool down.
	Stop()
}

// Chain runs requests through anonymizers in series: traffic enters
// the first and exits from the last, so the observed exit identity and
// overheads compose. Start and Stop apply to every stage.
type Chain struct {
	stages []Anonymizer
}

// NewChain composes stages in order (first = closest to the user).
func NewChain(stages ...Anonymizer) *Chain { return &Chain{stages: stages} }

// Name returns the composed name, e.g. "tor+dissent".
func (c *Chain) Name() string {
	name := ""
	for i, s := range c.stages {
		if i > 0 {
			name += "+"
		}
		name += s.Name()
	}
	return name
}

// Proto returns the first stage's wire protocol (what the host uplink
// observes).
func (c *Chain) Proto() string { return c.stages[0].Proto() }

// Start bootstraps every stage in order.
func (c *Chain) Start(p *sim.Proc) error {
	for _, s := range c.stages {
		if err := s.Start(p); err != nil {
			return err
		}
	}
	return nil
}

// Ready reports whether every stage is ready.
func (c *Chain) Ready() bool {
	for _, s := range c.stages {
		if !s.Ready() {
			return false
		}
	}
	return true
}

// Fetch sends the request through the full chain. Each inner stage
// adds its overhead; the exchange is carried by the final stage.
func (c *Chain) Fetch(p *sim.Proc, req Request) (FetchResult, error) {
	if !c.Ready() {
		return FetchResult{}, ErrNotReady
	}
	// Inflate payloads by the overhead of every stage but the last;
	// the last stage performs the transfer (adding its own overhead).
	inflated := req
	for _, s := range c.stages[:len(c.stages)-1] {
		inflated.SendBytes = int64(float64(inflated.SendBytes) * (1 + s.OverheadFrac()))
		inflated.RecvBytes = int64(float64(inflated.RecvBytes) * (1 + s.OverheadFrac()))
	}
	return c.stages[len(c.stages)-1].Fetch(p, inflated)
}

// Resolve resolves through the final stage.
func (c *Chain) Resolve(p *sim.Proc, host string) (string, error) {
	return c.stages[len(c.stages)-1].Resolve(p, host)
}

// ExitIdentity is the final stage's exit.
func (c *Chain) ExitIdentity() string { return c.stages[len(c.stages)-1].ExitIdentity() }

// OverheadFrac composes multiplicatively.
func (c *Chain) OverheadFrac() float64 {
	total := 1.0
	for _, s := range c.stages {
		total *= 1 + s.OverheadFrac()
	}
	return total - 1
}

// ExportState merges stage states under prefixed keys.
func (c *Chain) ExportState() State {
	out := State{}
	for i, s := range c.stages {
		for k, v := range s.ExportState() {
			out[c.stageKey(i, s)+k] = v
		}
	}
	return out
}

// ImportState splits prefixed keys back to stages.
func (c *Chain) ImportState(st State) {
	for i, s := range c.stages {
		prefix := c.stageKey(i, s)
		sub := State{}
		for k, v := range st {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				sub[k[len(prefix):]] = v
			}
		}
		if len(sub) > 0 {
			s.ImportState(sub)
		}
	}
}

func (c *Chain) stageKey(i int, s Anonymizer) string {
	return s.Name() + "#" + string(rune('0'+i)) + "/"
}

// Stop tears down every stage, last first.
func (c *Chain) Stop() {
	for i := len(c.stages) - 1; i >= 0; i-- {
		c.stages[i].Stop()
	}
}

var _ Anonymizer = (*Chain)(nil)
