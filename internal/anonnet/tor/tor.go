// Package tor implements the onion-routing anonymizer that Nymix runs
// in a CommVM by default. The model covers the protocol behaviour the
// paper's evaluation depends on:
//
//   - Bootstrap: fetching a directory consensus and relay descriptors,
//     selecting a persistent entry guard, and telescoping a three-hop
//     circuit — the "Start Tor" phase of Figure 7. A client restored
//     from quasi-persistent state skips the directory fetch and keeps
//     its guard, which is why quasi-persistent nyms start faster and
//     resist intersection attacks better (section 3.5).
//   - Streams: request/response exchanges relayed through the circuit
//     with a fixed ~12% wire overhead from cell framing and control
//     traffic (the fixed cost Figure 5 observes).
//   - DNS: Tor's built-in resolver, so no UDP queries leak to the ISP.
//   - Deterministic guard seeding (section 3.5's proposed fix for the
//     ephemeral-loader hole): with a seed set, guard choice is a pure
//     function of the seed.
package tor

import (
	"fmt"
	"strconv"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/nymerr"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

func init() {
	newClient := func(env anonnet.Env) *Client {
		c := New(env.Net, env.CommNode, env.World.Relays(), env.World.Resolver())
		if env.Opts.GuardSeed != "" {
			c.SetGuardSeed(env.Opts.GuardSeed)
		}
		return c
	}
	anonnet.RegisterTransport("tor", anonnet.TransportInfo{},
		func(env anonnet.Env) (anonnet.Transport, error) { return newClient(env), nil })
	// Tor behind a StegoTorus-style camouflage transport: the censor's
	// wire capture shows HTTPS, never Tor.
	anonnet.RegisterTransport("tor-bridge", anonnet.TransportInfo{},
		func(env anonnet.Env) (anonnet.Transport, error) {
			c := newClient(env)
			c.SetBridgeTransport("https")
			return c, nil
		})
}

// CellOverhead is Tor's fixed fractional wire overhead (cell headers
// plus circuit-level control traffic); Figure 5 measures ~12%.
const CellOverhead = 0.12

// Bootstrap size/time constants, calibrated against Figure 7.
const (
	consensusBytes   = 2_200_000 // network consensus document
	descriptorBytes  = 1_400_000 // relay descriptors
	circuitHops      = 3
	extendCryptoCost = 220 * time.Millisecond // per-hop handshake crypto
	bootstrapSettle  = 4 * time.Second        // directory parsing, self-test circuit
	resolveCells     = 600                    // RESOLVE/RESOLVED cell bytes
)

// Client is one Tor instance inside a CommVM.
type Client struct {
	net      *vnet.Network
	commNode string
	relays   []webworld.Relay
	resolver func(string) (string, bool)
	rng      *sim.Rand

	guard     string
	circuit   []string // guard, middle, exit
	hasDir    bool
	guardSeed string // deterministic guard derivation (section 3.5)
	wireProto string // protocol label a wire observer sees ("tor", or a camouflage)
	ready     bool
	built     int // circuits built over the client's lifetime
}

// New creates a Tor client for the CommVM at commNode, using the
// given relay set and resolver.
func New(net *vnet.Network, commNode string, relays []webworld.Relay, resolver func(string) (string, bool)) *Client {
	return &Client{
		net:       net,
		commNode:  commNode,
		relays:    relays,
		resolver:  resolver,
		rng:       net.Engine().Rand(),
		wireProto: "tor",
	}
}

// SetBridgeTransport camouflages the client's wire protocol as proto
// ("https" for a StegoTorus-like transport, section 4): every
// client-side flow — directory fetches and circuit traffic — is
// labeled proto, so a censor capturing the uplink never observes
// "tor". The steganographic encoding costs extra overhead.
func (c *Client) SetBridgeTransport(proto string) {
	if proto == "" {
		proto = "tor"
	}
	c.wireProto = proto
}

// BridgeOverhead is the extra fractional cost of the steganographic
// encoding when a bridge transport is active.
const BridgeOverhead = 0.35

// Name implements anonnet.Anonymizer.
func (c *Client) Name() string { return "tor" }

// Proto implements anonnet.Anonymizer: the label a wire observer sees.
func (c *Client) Proto() string { return c.wireProto }

// OverheadFrac implements anonnet.Anonymizer.
func (c *Client) OverheadFrac() float64 {
	if c.wireProto != "tor" {
		return CellOverhead + BridgeOverhead
	}
	return CellOverhead
}

// Ready implements anonnet.Anonymizer.
func (c *Client) Ready() bool { return c.ready }

// SetGuardSeed makes guard selection a deterministic function of the
// seed, so even the ephemeral CommVM that downloads a nym's state can
// use the nym's own guard (section 3.5).
func (c *Client) SetGuardSeed(seed string) { c.guardSeed = seed }

// Guard returns the selected entry guard ("" before selection).
func (c *Client) Guard() string { return c.guard }

// CircuitsBuilt returns how many circuits this client has built.
func (c *Client) CircuitsBuilt() int { return c.built }

// dirNode returns the directory authority: the first relay.
func (c *Client) dirNode() string { return c.relays[0].NodeName }

// Start implements anonnet.Anonymizer: the full Tor bootstrap.
func (c *Client) Start(p *sim.Proc) error {
	if len(c.relays) < circuitHops {
		return nymerr.Newf(anonnet.CodeNoExit, "tor: deployment has %d relays, need %d",
			len(c.relays), circuitHops)
	}
	if !c.hasDir {
		// Fetch consensus and descriptors from a directory authority.
		for _, bytes := range []int64{consensusBytes, descriptorBytes} {
			fut := c.net.StartTransfer(vnet.TransferOpts{
				From: c.dirNode(), To: c.commNode,
				Bytes: bytes, Proto: c.wireProto,
			})
			if _, err := sim.Await(p, fut); err != nil {
				return fmt.Errorf("tor: directory fetch: %w", err)
			}
		}
		// Parsing and self-test overhead dominates small deployments.
		p.Sleep(sim.Time(p.Rand().Jitter(float64(bootstrapSettle), 0.15)))
		c.hasDir = true
	}
	if c.guard == "" {
		if err := c.selectGuard(); err != nil {
			return err
		}
	}
	if err := c.buildCircuit(p); err != nil {
		return err
	}
	c.ready = true
	return nil
}

// selectGuard picks the persistent entry guard: deterministically from
// the guard seed when set, uniformly otherwise. "Tor normally
// maintains the same entry relay for several months" (section 3.5).
func (c *Client) selectGuard() error {
	var guards []string
	for _, r := range c.relays {
		if r.Guard {
			guards = append(guards, r.NodeName)
		}
	}
	if len(guards) == 0 {
		return anonnet.ErrNoExit
	}
	if c.guardSeed != "" {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(c.guardSeed); i++ {
			h ^= uint64(c.guardSeed[i])
			h *= 1099511628211
		}
		c.guard = guards[h%uint64(len(guards))]
		return nil
	}
	c.guard = guards[c.rng.Intn(len(guards))]
	return nil
}

// buildCircuit telescopes a fresh three-hop circuit through the guard.
func (c *Client) buildCircuit(p *sim.Proc) error {
	middle, exit, err := c.pickMiddleAndExit()
	if err != nil {
		return err
	}
	c.circuit = []string{c.guard, middle, exit}
	// Telescoping: each extend costs a round trip over the
	// progressively longer partial circuit plus handshake crypto.
	for i := 1; i <= circuitHops; i++ {
		var rtt time.Duration
		if i == 1 {
			lat, err := c.net.PathLatency(c.commNode, c.guard)
			if err != nil {
				return fmt.Errorf("tor: guard unreachable: %w", err)
			}
			rtt = 2 * lat
		} else {
			lat, err := c.net.PathLatency(c.commNode, c.circuit[i-1], c.circuit[:i-1]...)
			if err != nil {
				return fmt.Errorf("tor: extend %d: %w", i, err)
			}
			rtt = 2 * lat
		}
		p.Sleep(rtt + sim.Time(p.Rand().Jitter(float64(extendCryptoCost), 0.2)))
	}
	c.built++
	return nil
}

// pickMiddleAndExit selects distinct middle and exit relays avoiding
// the guard.
func (c *Client) pickMiddleAndExit() (middle, exit string, err error) {
	var exits, middles []string
	for _, r := range c.relays {
		if r.NodeName == c.guard {
			continue
		}
		if r.Exit {
			exits = append(exits, r.NodeName)
		} else {
			middles = append(middles, r.NodeName)
		}
	}
	if len(exits) == 0 {
		return "", "", anonnet.ErrNoExit
	}
	exit = exits[c.rng.Intn(len(exits))]
	if len(middles) == 0 {
		// Small deployments: reuse a non-guard, non-exit-chosen relay.
		for _, r := range c.relays {
			if r.NodeName != c.guard && r.NodeName != exit {
				middles = append(middles, r.NodeName)
			}
		}
	}
	if len(middles) == 0 {
		return "", "", anonnet.ErrNoExit
	}
	middle = middles[c.rng.Intn(len(middles))]
	return middle, exit, nil
}

// Fetch implements anonnet.Anonymizer: one stream over the circuit.
func (c *Client) Fetch(p *sim.Proc, req anonnet.Request) (anonnet.FetchResult, error) {
	if !c.ready {
		return anonnet.FetchResult{}, anonnet.ErrNotReady
	}
	if req.SiteNode == "" {
		return anonnet.FetchResult{}, anonnet.ErrBadRequest
	}
	start := p.Now()
	up := req.SendBytes
	if up < 512 {
		up = 512 // at least one cell
	}
	fut := c.net.StartTransfer(vnet.TransferOpts{
		From: c.commNode, To: req.SiteNode, Via: c.circuit,
		Bytes: up, Proto: c.wireProto, Overhead: c.OverheadFrac(),
	})
	if _, err := sim.Await(p, fut); err != nil {
		return anonnet.FetchResult{}, fmt.Errorf("tor: upstream: %w", err)
	}
	if req.RecvBytes > 0 {
		down := c.net.StartTransfer(vnet.TransferOpts{
			From: req.SiteNode, To: c.commNode, Via: reverse(c.circuit),
			Bytes: req.RecvBytes, Proto: c.wireProto, Overhead: c.OverheadFrac(),
			NoHandshake: true, // response rides the established stream
		})
		if _, err := sim.Await(p, down); err != nil {
			return anonnet.FetchResult{}, fmt.Errorf("tor: downstream: %w", err)
		}
	}
	return anonnet.FetchResult{
		Sent:     req.SendBytes,
		Received: req.RecvBytes,
		Elapsed:  p.Now() - start,
	}, nil
}

// Resolve implements anonnet.Anonymizer using Tor's built-in DNS:
// RESOLVE cells travel the circuit, so nothing leaks to the local
// resolver.
func (c *Client) Resolve(p *sim.Proc, host string) (string, error) {
	if !c.ready {
		return "", anonnet.ErrNotReady
	}
	lat, err := c.net.PathLatency(c.commNode, c.circuit[len(c.circuit)-1], c.circuit[:len(c.circuit)-1]...)
	if err != nil {
		return "", err
	}
	p.Sleep(2*lat + sim.Time(resolveCells)*sim.Time(time.Microsecond))
	node, ok := c.resolver(host)
	if !ok {
		return "", fmt.Errorf("%w: %s", anonnet.ErrResolve, host)
	}
	return node, nil
}

// ExitIdentity implements anonnet.Anonymizer.
func (c *Client) ExitIdentity() string {
	if len(c.circuit) == 0 {
		return ""
	}
	return c.circuit[len(c.circuit)-1]
}

// ExportState implements anonnet.Anonymizer: the guard and directory
// freshness are the state worth persisting.
func (c *Client) ExportState() anonnet.State {
	st := anonnet.State{}
	if c.guard != "" {
		st["guard"] = c.guard
	}
	if c.hasDir {
		st["consensus"] = "cached"
	}
	st["circuits_built"] = strconv.Itoa(c.built)
	return st
}

// ImportState implements anonnet.Anonymizer.
func (c *Client) ImportState(st anonnet.State) {
	if g, ok := st["guard"]; ok {
		c.guard = g
	}
	if st["consensus"] == "cached" {
		c.hasDir = true
	}
}

// Stop implements anonnet.Anonymizer.
func (c *Client) Stop() {
	c.ready = false
	c.circuit = nil
}

func reverse(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

var _ anonnet.Anonymizer = (*Client)(nil)
