package tor

import (
	"errors"
	"testing"
	"time"

	"nymix/internal/anonnet"
	"nymix/internal/sim"
	"nymix/internal/vnet"
	"nymix/internal/webworld"
)

// rig attaches a bare CommVM-like node to the default world.
type rig struct {
	eng   *sim.Engine
	net   *vnet.Network
	world *webworld.World
}

func newRig() *rig {
	eng := sim.NewEngine(11)
	net, world := webworld.BuildDefault(eng)
	comm := net.AddNode("commvm")
	net.Connect(comm, world.Gateway(), webworld.UplinkConfig)
	return &rig{eng: eng, net: net, world: world}
}

func (r *rig) client() *Client {
	return New(r.net, "commvm", r.world.Relays(), r.world.Resolver())
}

func TestBootstrapBuildsCircuit(t *testing.T) {
	r := newRig()
	c := r.client()
	var dur time.Duration
	r.eng.Go("start", func(p *sim.Proc) {
		start := p.Now()
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
		}
		dur = p.Now() - start
	})
	r.eng.Run()
	if !c.Ready() {
		t.Fatal("client not ready after Start")
	}
	if c.Guard() == "" {
		t.Fatal("no guard selected")
	}
	if len(c.circuit) != 3 {
		t.Fatalf("circuit = %v", c.circuit)
	}
	if c.circuit[0] != c.Guard() {
		t.Fatal("circuit does not enter through the guard")
	}
	// Fresh bootstrap includes the directory fetch: several seconds.
	if dur < 5*time.Second || dur > 30*time.Second {
		t.Fatalf("fresh bootstrap took %v", dur)
	}
}

func TestCachedStateBootsFaster(t *testing.T) {
	r := newRig()
	fresh := r.client()
	var freshDur time.Duration
	r.eng.Go("fresh", func(p *sim.Proc) {
		start := p.Now()
		fresh.Start(p)
		freshDur = p.Now() - start
	})
	r.eng.Run()

	warm := r.client()
	warm.ImportState(fresh.ExportState())
	var warmDur time.Duration
	r.eng.Go("warm", func(p *sim.Proc) {
		start := p.Now()
		if err := warm.Start(p); err != nil {
			t.Errorf("warm start: %v", err)
		}
		warmDur = p.Now() - start
	})
	r.eng.Run()
	if warmDur >= freshDur/2 {
		t.Fatalf("cached bootstrap %v not much faster than fresh %v", warmDur, freshDur)
	}
	if warm.Guard() != fresh.Guard() {
		t.Fatalf("guard not preserved: %q vs %q", warm.Guard(), fresh.Guard())
	}
}

func TestGuardPersistsAcrossExportImport(t *testing.T) {
	r := newRig()
	c := r.client()
	r.eng.Go("start", func(p *sim.Proc) { c.Start(p) })
	r.eng.Run()
	st := c.ExportState()
	if st["guard"] != c.Guard() {
		t.Fatalf("state guard = %q", st["guard"])
	}
	if st["consensus"] != "cached" {
		t.Fatal("consensus not marked cached")
	}
}

func TestGuardSeedDeterministic(t *testing.T) {
	r := newRig()
	a := r.client()
	a.SetGuardSeed("nym:alice@dropbin:pw-derived")
	b := r.client()
	b.SetGuardSeed("nym:alice@dropbin:pw-derived")
	c := r.client()
	c.SetGuardSeed("different-seed-0")
	a.selectGuard()
	b.selectGuard()
	if a.Guard() != b.Guard() {
		t.Fatalf("same seed, different guards: %q %q", a.Guard(), b.Guard())
	}
	// Different seeds should usually differ; try several.
	differs := false
	for i := 0; i < 8 && !differs; i++ {
		d := r.client()
		d.SetGuardSeed("seed-" + string(rune('a'+i)))
		d.selectGuard()
		if d.Guard() != a.Guard() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("guard seed appears to be ignored")
	}
	_ = c
}

func TestFetchTravelsCircuitWithOverhead(t *testing.T) {
	r := newRig()
	c := r.client()
	site, _ := r.world.Lookup("twitter.com")
	var res anonnet.FetchResult
	var ferr error
	r.eng.Go("fetch", func(p *sim.Proc) {
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		res, ferr = c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 2048, RecvBytes: 4 << 20})
	})
	r.eng.Run()
	if ferr != nil {
		t.Fatal(ferr)
	}
	// 4 MiB * 1.12 over a 1.25 MB/s uplink: at least 3.5 seconds.
	if res.Elapsed < 3500*time.Millisecond {
		t.Fatalf("fetch too fast for rate-limited uplink: %v", res.Elapsed)
	}
	if res.Received != 4<<20 {
		t.Fatalf("received = %d", res.Received)
	}
}

func TestFetchObservedFromExit(t *testing.T) {
	r := newRig()
	c := r.client()
	site, _ := r.world.Lookup("twitter.com")
	siteNode := r.net.Node(site)
	var tap *vnet.Capture
	for _, ifc := range siteNode.Ifaces() {
		tap = ifc.Link().Tap()
	}
	r.eng.Go("fetch", func(p *sim.Proc) {
		c.Start(p)
		c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 1024, RecvBytes: 1024})
	})
	r.eng.Run()
	if len(tap.Entries) == 0 {
		t.Fatal("no traffic observed at site")
	}
	srcSeen := tap.Entries[0].ObservedSrc
	if srcSeen != c.ExitIdentity() {
		t.Fatalf("site saw %q, want exit %q", srcSeen, c.ExitIdentity())
	}
	if srcSeen == "commvm" || srcSeen == "host" {
		t.Fatalf("site saw the client side: %q", srcSeen)
	}
}

func TestResolveThroughCircuit(t *testing.T) {
	r := newRig()
	c := r.client()
	var node string
	var err error
	r.eng.Go("resolve", func(p *sim.Proc) {
		c.Start(p)
		node, err = c.Resolve(p, "facebook.com")
	})
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.world.Lookup("facebook.com")
	if node != want {
		t.Fatalf("resolved %q, want %q", node, want)
	}
	r.eng.Go("bad", func(p *sim.Proc) {
		_, err = c.Resolve(p, "no-such-host.example")
	})
	r.eng.Run()
	if err == nil {
		t.Fatal("bogus name resolved")
	}
}

func TestTooFewRelays(t *testing.T) {
	r := newRig()
	c := New(r.net, "commvm", r.world.Relays()[:2], r.world.Resolver())
	var err error
	r.eng.Go("start", func(p *sim.Proc) { err = c.Start(p) })
	r.eng.Run()
	if err == nil {
		t.Fatal("start succeeded with 2 relays")
	}
}

func TestBootstrapFailsWhenGuardUnreachable(t *testing.T) {
	// Failure injection: the seeded guard's link goes down before the
	// client bootstraps; Start must fail cleanly, not hang.
	r := newRig()
	c := r.client()
	c.SetGuardSeed("pin-a-guard")
	c.selectGuard()
	guardNode := r.net.Node(c.Guard())
	for _, ifc := range guardNode.Ifaces() {
		ifc.Link().SetDown(r.net, true)
	}
	var err error
	r.eng.Go("start", func(p *sim.Proc) { err = c.Start(p) })
	r.eng.Run()
	if err == nil {
		t.Fatal("bootstrap succeeded with an unreachable guard")
	}
	if c.Ready() {
		t.Fatal("client ready despite failed bootstrap")
	}
}

func TestFetchFailsWhenPathDiesMidTransfer(t *testing.T) {
	// Failure injection: the DeterLab enclave link drops mid-download.
	r := newRig()
	c := r.client()
	site, _ := r.world.Lookup("twitter.com")
	var fetchErr error
	r.eng.Go("run", func(p *sim.Proc) {
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		_, fetchErr = c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 512, RecvBytes: 40 << 20})
	})
	// Cut every relay link mid-download (bootstrap ends ~10s in; the
	// ~38s download is still streaming at 30s).
	r.eng.Schedule(30*time.Second, func() {
		for _, relay := range r.world.Relays() {
			for _, ifc := range r.net.Node(relay.NodeName).Ifaces() {
				ifc.Link().SetDown(r.net, true)
			}
		}
	})
	r.eng.Run()
	if !errors.Is(fetchErr, vnet.ErrLinkDown) {
		t.Fatalf("fetch err = %v, want link-down failure", fetchErr)
	}
}

func TestBridgeTransportHidesTorFromCensor(t *testing.T) {
	// StegoTorus-style camouflage (section 4): the state ISP taps the
	// client's uplink; with a bridge transport it must never see "tor".
	r := newRig()
	c := r.client()
	c.SetBridgeTransport("https")
	if c.Proto() != "https" {
		t.Fatalf("proto = %q", c.Proto())
	}
	var censorTap *vnet.Capture
	for _, ifc := range r.net.Node("commvm").Ifaces() {
		censorTap = ifc.Link().Tap()
	}
	site, _ := r.world.Lookup("twitter.com")
	r.eng.Go("run", func(p *sim.Proc) {
		if err := c.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if _, err := c.Fetch(p, anonnet.Request{SiteNode: site, SendBytes: 1024, RecvBytes: 1 << 20}); err != nil {
			t.Errorf("fetch: %v", err)
		}
	})
	r.eng.Run()
	if len(censorTap.Entries) == 0 {
		t.Fatal("censor saw nothing")
	}
	for _, e := range censorTap.Entries {
		if e.Proto == "tor" {
			t.Fatalf("censor observed tor traffic: %+v", e)
		}
	}
	// Camouflage costs extra overhead.
	if c.OverheadFrac() <= CellOverhead {
		t.Fatal("bridge transport should cost more than bare tor")
	}
	// Switching back restores the plain transport.
	c.SetBridgeTransport("")
	if c.Proto() != "tor" || c.OverheadFrac() != CellOverhead {
		t.Fatal("reset to plain tor failed")
	}
}

func TestStopClearsCircuit(t *testing.T) {
	r := newRig()
	c := r.client()
	r.eng.Go("start", func(p *sim.Proc) { c.Start(p) })
	r.eng.Run()
	c.Stop()
	if c.Ready() || c.ExitIdentity() != "" {
		t.Fatal("stop did not clear state")
	}
	// Guard survives Stop (it is persistent state, not circuit state).
	if c.Guard() == "" {
		t.Fatal("guard lost on stop")
	}
}
