package vault

import (
	"bytes"
	"testing"
)

// fuzzSeedCorpus is the seed corpus for the chunker fuzzers: empty
// and tiny inputs, boundary-straddling sizes, low-entropy runs the
// rolling hash never fires on, and pseudo-random bytes that exercise
// real content-defined cuts.
func fuzzSeedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello, vault"))
	f.Add(bytes.Repeat([]byte{0}, MinChunk-1))
	f.Add(bytes.Repeat([]byte{0xAA}, MinChunk+1))
	f.Add(bytes.Repeat([]byte("abcd"), MaxChunk/4+17))
	f.Add(bytes.Repeat([]byte{0xFF}, 3*MaxChunk))
	// Deterministic pseudo-random content (splitmix64, same generator
	// idiom as the buzhash table) long enough for several cuts.
	rndData := make([]byte, 5*MaxChunk+13)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range rndData {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		rndData[i] = byte(z ^ (z >> 31))
	}
	f.Add(rndData)
}

// FuzzCutReal pins the CDC chunker's contract for arbitrary inputs:
// boundaries are deterministic (the same bytes always cut the same
// way — the property content addressing and dedup stand on),
// reassembling the chunks reproduces the input byte-for-byte, and
// every chunk respects the size bounds (MaxChunk always; MinChunk for
// all but a short tail).
func FuzzCutReal(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks := cutReal(data)
		if len(data) == 0 {
			// An empty real file is still a real file: one empty chunk.
			if len(chunks) != 1 || len(chunks[0]) != 0 {
				t.Fatalf("empty input: got %d chunks", len(chunks))
			}
			return
		}
		var rejoined []byte
		for i, ch := range chunks {
			if len(ch) > MaxChunk {
				t.Fatalf("chunk %d is %d bytes, exceeds MaxChunk %d", i, len(ch), MaxChunk)
			}
			if i < len(chunks)-1 && len(data) > MinChunk && len(ch) < MinChunk {
				t.Fatalf("non-tail chunk %d is %d bytes, below MinChunk %d", i, len(ch), MinChunk)
			}
			rejoined = append(rejoined, ch...)
		}
		if !bytes.Equal(rejoined, data) {
			t.Fatalf("reassembly mismatch: %d bytes in, %d bytes out", len(data), len(rejoined))
		}
		// Boundary determinism: cutting the same bytes again must yield
		// identical boundaries.
		again := cutReal(append([]byte(nil), data...))
		if len(again) != len(chunks) {
			t.Fatalf("non-deterministic cut: %d chunks then %d", len(chunks), len(again))
		}
		for i := range chunks {
			if !bytes.Equal(chunks[i], again[i]) {
				t.Fatalf("non-deterministic boundary at chunk %d", i)
			}
		}
	})
}

// FuzzCutVirtual pins the virtual segmenter: segments sum to the file
// size, all full segments are VirtualChunkBytes, and only the tail
// may be short.
func FuzzCutVirtual(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(VirtualChunkBytes))
	f.Add(int64(VirtualChunkBytes + 1))
	f.Add(int64(10*VirtualChunkBytes - 1))
	f.Fuzz(func(t *testing.T, size int64) {
		if size < 0 || size > 1<<40 {
			t.Skip()
		}
		segs := cutVirtual(size)
		var sum int64
		for i, s := range segs {
			if s <= 0 || s > VirtualChunkBytes {
				t.Fatalf("segment %d has size %d", i, s)
			}
			if i < len(segs)-1 && s != VirtualChunkBytes {
				t.Fatalf("non-tail segment %d is %d bytes", i, s)
			}
			sum += s
		}
		if sum != size {
			t.Fatalf("segments sum to %d, want %d", sum, size)
		}
	})
}
